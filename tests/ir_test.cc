// IR engine tests: text pipeline, Porter stemmer vectors, content index
// statistics, inference network semantics and relevance feedback.

#include <cmath>

#include <gtest/gtest.h>

#include "ir/content_index.h"
#include "ir/feedback.h"
#include "ir/inference_network.h"
#include "ir/porter_stemmer.h"
#include "ir/synthetic_text.h"
#include "ir/text_pipeline.h"

namespace mirror::ir {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnumAndLowercases) {
  Tokenizer tok;
  EXPECT_EQ(tok.Tokenize("Hello, World! x2"),
            (std::vector<std::string>{"hello", "world", "x2"}));
}

TEST(TokenizerTest, UnderscoreModeKeepsVisualTerms) {
  Tokenizer plain(false);
  EXPECT_EQ(plain.Tokenize("gabor_21").size(), 2u);
  Tokenizer visual(true);
  EXPECT_EQ(visual.Tokenize("gabor_21"),
            (std::vector<std::string>{"gabor_21"}));
}

TEST(StopListTest, CommonWordsStopped) {
  StopList stops;
  EXPECT_TRUE(stops.IsStopword("the"));
  EXPECT_TRUE(stops.IsStopword("and"));
  EXPECT_FALSE(stops.IsStopword("sunset"));
}

TEST(PorterStemmerTest, ClassicVectors) {
  // Reference pairs from Porter's paper and the canonical test set.
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("ties"), "ti");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("bled"), "bled");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("tanned"), "tan");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("fizzed"), "fizz");
  EXPECT_EQ(PorterStem("failing"), "fail");
  EXPECT_EQ(PorterStem("filing"), "file");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("sky"), "sky");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("valenci"), "valenc");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("feudalism"), "feudal");
  EXPECT_EQ(PorterStem("decisiveness"), "decis");
  EXPECT_EQ(PorterStem("hopefulness"), "hope");
  EXPECT_EQ(PorterStem("formaliti"), "formal");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("formative"), "form");
  EXPECT_EQ(PorterStem("formalize"), "formal");
  EXPECT_EQ(PorterStem("electrical"), "electr");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("allowance"), "allow");
  EXPECT_EQ(PorterStem("inference"), "infer");
  EXPECT_EQ(PorterStem("airliner"), "airlin");
  EXPECT_EQ(PorterStem("adjustable"), "adjust");
  EXPECT_EQ(PorterStem("defensible"), "defens");
  EXPECT_EQ(PorterStem("irritant"), "irrit");
  EXPECT_EQ(PorterStem("replacement"), "replac");
  EXPECT_EQ(PorterStem("adjustment"), "adjust");
  EXPECT_EQ(PorterStem("dependent"), "depend");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("communism"), "commun");
  EXPECT_EQ(PorterStem("activate"), "activ");
  EXPECT_EQ(PorterStem("angulariti"), "angular");
  EXPECT_EQ(PorterStem("homologous"), "homolog");
  EXPECT_EQ(PorterStem("effective"), "effect");
  EXPECT_EQ(PorterStem("bowdlerize"), "bowdler");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("cease"), "ceas");
  EXPECT_EQ(PorterStem("controll"), "control");
  EXPECT_EQ(PorterStem("roll"), "roll");
}

TEST(PorterStemmerTest, ShortWordsUntouched) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
}

TEST(TextPipelineTest, FullChain) {
  TextPipeline pipeline;
  auto terms = pipeline.Process("The connected RIVERS are flowing");
  EXPECT_EQ(terms, (std::vector<std::string>{"connect", "river", "flow"}));
}

ContentIndex SmallIndex() {
  ContentIndex index;
  index.AddDocument(0, {"cat", "dog", "cat"});
  index.AddDocument(1, {"dog", "bird"});
  index.AddDocument(2, {"fish"});
  index.Finalize();
  return index;
}

TEST(ContentIndexTest, StatsAndFrequencies) {
  ContentIndex index = SmallIndex();
  EXPECT_EQ(index.stats().num_docs, 3);
  EXPECT_EQ(index.stats().vocab_size, 4);
  EXPECT_EQ(index.stats().num_postings, 5);
  EXPECT_EQ(index.stats().total_terms, 6);
  EXPECT_DOUBLE_EQ(index.stats().avg_doclen, 2.0);

  int64_t cat = index.vocab().Lookup("cat");
  int64_t dog = index.vocab().Lookup("dog");
  EXPECT_EQ(index.TermFrequency(0, cat), 2);
  EXPECT_EQ(index.TermFrequency(1, cat), 0);
  EXPECT_EQ(index.DocFreq(dog), 2);
  EXPECT_EQ(index.DocLen(0), 3);
  EXPECT_EQ(index.DocLen(2), 1);
}

TEST(ContentIndexTest, InvertedAndScanAgree) {
  ContentIndex index = SmallIndex();
  int64_t dog = index.vocab().Lookup("dog");
  std::vector<const Posting*> inverted;
  std::vector<const Posting*> scanned;
  index.PostingsForTerm(dog, EvalStrategy::kInverted, &inverted);
  index.PostingsForTerm(dog, EvalStrategy::kScan, &scanned);
  ASSERT_EQ(inverted.size(), 2u);
  ASSERT_EQ(scanned.size(), 2u);
  for (size_t i = 0; i < inverted.size(); ++i) {
    EXPECT_EQ(inverted[i]->doc, scanned[i]->doc);
    EXPECT_EQ(inverted[i]->tf, scanned[i]->tf);
  }
}

TEST(ContentIndexTest, BatExportShapes) {
  ContentIndex index = SmallIndex();
  EXPECT_EQ(index.DocBat().size(), 5u);
  EXPECT_EQ(index.TermBat().size(), 5u);
  EXPECT_EQ(index.TfBat().size(), 5u);
  EXPECT_EQ(index.DfBat().size(), 4u);
  EXPECT_EQ(index.DocLenBat().size(), 3u);
  // Postings sorted by term: term column non-decreasing.
  monet::Bat terms = index.TermBat();
  for (size_t i = 1; i < terms.size(); ++i) {
    EXPECT_LE(terms.tail().IntAt(i - 1), terms.tail().IntAt(i));
  }
}

TEST(InferenceNetworkTest, BeliefBoundsAndDefault) {
  ContentIndex index = SmallIndex();
  InferenceNetwork network(&index);
  int64_t cat = index.vocab().Lookup("cat");
  double present = network.Belief(0, cat);
  double absent = network.Belief(1, cat);
  EXPECT_GT(present, network.DefaultBelief());
  EXPECT_LT(present, 1.0);
  EXPECT_DOUBLE_EQ(absent, network.DefaultBelief());
}

TEST(InferenceNetworkTest, RankSumPrefersMatchingDocs) {
  ContentIndex index = SmallIndex();
  InferenceNetwork network(&index);
  int64_t cat = index.vocab().Lookup("cat");
  int64_t dog = index.vocab().Lookup("dog");
  auto ranking = network.RankSum({cat, dog});
  ASSERT_GE(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].doc, 0u);  // has both terms
}

TEST(InferenceNetworkTest, QueryNetworkOperatorSemantics) {
  ContentIndex index = SmallIndex();
  InferenceNetwork network(&index);
  int64_t cat = index.vocab().Lookup("cat");
  int64_t dog = index.vocab().Lookup("dog");
  double alpha = network.DefaultBelief();

  // #and: product of beliefs; for doc 1 (no cat) = alpha * bel(dog|1).
  auto and_rank = network.Evaluate(
      QueryNode::And({QueryNode::Term(cat), QueryNode::Term(dog)}));
  double bel_dog_1 = network.Belief(1, dog);
  bool found = false;
  for (const auto& sd : and_rank) {
    if (sd.doc == 1) {
      EXPECT_NEAR(sd.score, alpha * bel_dog_1, 1e-12);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // #or >= #and pointwise.
  auto or_rank = network.Evaluate(
      QueryNode::Or({QueryNode::Term(cat), QueryNode::Term(dog)}));
  for (const auto& o : or_rank) {
    for (const auto& a : and_rank) {
      if (a.doc == o.doc) EXPECT_GE(o.score + 1e-12, a.score);
    }
  }

  // #not inverts: doc with cat scores lower than doc without.
  auto not_rank = network.Evaluate(QueryNode::Not(QueryNode::Term(cat)));
  double score_doc0 = -1;
  for (const auto& sd : not_rank) {
    if (sd.doc == 0) score_doc0 = sd.score;
  }
  EXPECT_GE(score_doc0, 0.0);
  EXPECT_LT(score_doc0, 1.0 - alpha + 1e-12);

  // #max picks the best child.
  auto max_rank = network.Evaluate(
      QueryNode::Max({QueryNode::Term(cat), QueryNode::Term(dog)}));
  for (const auto& sd : max_rank) {
    EXPECT_GE(sd.score, alpha - 1e-12);
  }

  // #wsum weighting shifts ranking toward the heavier term.
  auto wsum = network.Evaluate(QueryNode::WSum(
      {QueryNode::Term(cat, 10.0), QueryNode::Term(dog, 0.1)}));
  ASSERT_FALSE(wsum.empty());
  EXPECT_EQ(wsum[0].doc, 0u);  // only doc with cat
}

TEST(InferenceNetworkTest, EvaluateToStringRoundTrip) {
  QueryNode q = QueryNode::WSum(
      {QueryNode::Term(0, 1.0), QueryNode::Not(QueryNode::Term(1))});
  std::string s = q.ToString();
  EXPECT_NE(s.find("#wsum"), std::string::npos);
  EXPECT_NE(s.find("#not"), std::string::npos);
}

TEST(SyntheticTextTest, GeneratesZipfianCollection) {
  SyntheticTextOptions options;
  options.num_docs = 200;
  options.vocab_size = 500;
  options.seed = 3;
  ContentIndex index = MakeSyntheticIndex(options);
  EXPECT_EQ(index.stats().num_docs, 200);
  EXPECT_GT(index.stats().vocab_size, 50);
  // Zipf: the most frequent term's df dominates the median term's.
  int64_t t0 = index.vocab().Lookup("t0");
  ASSERT_GE(t0, 0);
  EXPECT_GT(index.DocFreq(t0), 100);
}

TEST(SyntheticTextTest, QuerySamplingAvoidsExtremes) {
  SyntheticTextOptions options;
  options.num_docs = 300;
  options.seed = 5;
  ContentIndex index = MakeSyntheticIndex(options);
  base::Rng rng(7);
  auto terms = SampleQueryTerms(index, 8, &rng);
  EXPECT_EQ(terms.size(), 8u);
  for (int64_t t : terms) {
    EXPECT_GE(index.DocFreq(t), 2);
    EXPECT_LE(index.DocFreq(t), index.stats().num_docs / 4);
  }
}

TEST(FeedbackTest, ExpansionAddsRelevantTerms) {
  ContentIndex index;
  // Relevant docs share "sunset"/"beach"; irrelevant are about cities.
  index.AddDocument(0, {"sunset", "beach", "sand"});
  index.AddDocument(1, {"sunset", "beach", "wave"});
  index.AddDocument(2, {"city", "street", "car"});
  index.AddDocument(3, {"city", "building", "car"});
  index.Finalize();
  InferenceNetwork network(&index);
  RelevanceFeedback feedback(FeedbackOptions{.expansion_terms = 2});

  int64_t sunset = index.vocab().Lookup("sunset");
  std::vector<std::pair<int64_t, double>> query = {{sunset, 1.0}};
  auto expanded = feedback.ExpandQuery(query, {0, 1}, network);
  ASSERT_GT(expanded.size(), 1u);
  // Original term reinforced.
  EXPECT_GT(expanded[0].second, 1.0);
  // Expansion terms come from the relevant docs, never the city docs.
  for (size_t i = 1; i < expanded.size(); ++i) {
    std::string term = index.vocab().TermOf(expanded[i].first);
    EXPECT_TRUE(term == "beach" || term == "sand" || term == "wave")
        << term;
  }
}

TEST(FeedbackTest, FeedbackImprovesRankingOfRelatedDocs) {
  SyntheticTextOptions options;
  options.num_docs = 150;
  options.seed = 11;
  ContentIndex index = MakeSyntheticIndex(options);
  InferenceNetwork network(&index);
  base::Rng rng(13);
  auto qterms = SampleQueryTerms(index, 2, &rng);
  std::vector<std::pair<int64_t, double>> query;
  for (int64_t t : qterms) query.emplace_back(t, 1.0);
  auto before = network.RankWSum(query);
  ASSERT_GT(before.size(), 3u);
  std::vector<monet::Oid> relevant = {before[0].doc, before[1].doc};
  RelevanceFeedback feedback;
  auto expanded = feedback.ExpandQuery(query, relevant, network);
  EXPECT_GT(expanded.size(), query.size());
  auto after = network.RankWSum(expanded);
  // The judged docs must stay at the top after reinforcement.
  ASSERT_GE(after.size(), 2u);
  EXPECT_TRUE(after[0].doc == relevant[0] || after[0].doc == relevant[1]);
}

}  // namespace
}  // namespace mirror::ir
