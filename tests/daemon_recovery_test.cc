// Crash recovery of the daemon's durable write path: checkpoint + WAL
// round trips through MirrorDb, MM-DIRECT-style instant (lazy) recovery
// vs the classic full-replay restart, and the headline property — a
// SIGKILL mid-write-storm over the wire loses no acknowledged write.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/query_server.h"
#include "daemon/wire.h"
#include "daemon/wire_client.h"
#include "mirror/mirror_db.h"

namespace mirror::daemon {
namespace {

namespace wire = mirror::daemon::wire;

std::string TempDir(const char* tag) {
  std::string path =
      (std::filesystem::temp_directory_path() /
       (std::string("mirror_recovery_") + tag + "_" +
        std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

constexpr int kBaseRows = 64;

constexpr const char* kWords[] = {"sun", "sea", "sky", "rock", "tree",
                                  "bird", "sand", "wave", "moss", "dune"};

/// A small atomic catalog plus a CONTREP-annotated library (the library
/// exercises the eager-set recovery path: inverted indexes cannot be
/// rebuilt lazily per BAT).
void BuildSmallDb(db::MirrorDb* database, bool with_lib) {
  ASSERT_TRUE(database
                  ->Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, Atomic<int>: rating>>;")
                  .ok());
  std::vector<moa::MoaValue> rows;
  for (int i = 0; i < kBaseRows; ++i) {
    rows.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("u" + std::to_string(i)),
         moa::MoaValue::Int(1970 + (i % 50)), moa::MoaValue::Int(i * 10)}));
  }
  ASSERT_TRUE(database->Load("Cat", std::move(rows)).ok());
  if (!with_lib) return;

  ASSERT_TRUE(database
                  ->Define("define Lib as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, CONTREP<Text>: doc>>;")
                  .ok());
  std::vector<moa::MoaValue> docs;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::string> terms;
    for (int t = 0; t < 4 + (i % 5); ++t) {
      terms.push_back(kWords[(i + 2 * t) % std::size(kWords)]);
    }
    docs.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("d" + std::to_string(i)),
         moa::MoaValue::Int(1970 + (i % 40)), moa::MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(database->Load("Lib", std::move(docs)).ok());
}

void ExpectSameOutput(const moa::EvalOutput& a, const moa::EvalOutput& b) {
  ASSERT_EQ(a.is_scalar, b.is_scalar);
  if (a.is_scalar) {
    EXPECT_TRUE(a.scalar == b.scalar);
    return;
  }
  ASSERT_TRUE(a.bat != nullptr);
  ASSERT_TRUE(b.bat != nullptr);
  ASSERT_EQ(a.bat->size(), b.bat->size());
  for (size_t i = 0; i < a.bat->size(); ++i) {
    auto [ah, at] = a.bat->Row(i);
    auto [bh, bt] = b.bat->Row(i);
    EXPECT_TRUE(ah == bh) << "head mismatch at row " << i;
    EXPECT_TRUE(at == bt) << "tail mismatch at row " << i;
  }
}

// ---------------------------------------------------------------------------
// In-process checkpoint + WAL round trips.

TEST(DaemonRecoveryTest, FullRecoveryReplaysPostCheckpointWrites) {
  std::string dir = TempDir("full");
  std::string wal = dir + "/wal.log";
  {
    db::MirrorDb builder;
    BuildSmallDb(&builder, /*with_lib=*/false);
    ASSERT_TRUE(builder.AttachWal(wal).ok());
    ASSERT_TRUE(builder.Checkpoint(dir).ok());
    // Post-checkpoint writes live only in the WAL. Keep the sibling BATs
    // of Cat row-aligned: append one row to each.
    auto a1 = builder.Append("Cat.u", monet::Column::MakeStrs({"u-new"}));
    ASSERT_TRUE(a1.ok());
    EXPECT_GT(a1.value().lsn, 0u);
    EXPECT_EQ(a1.value().visible_rows, static_cast<uint64_t>(kBaseRows) + 1);
    ASSERT_TRUE(
        builder.Append("Cat.year", monet::Column::MakeInts({2026})).ok());
    ASSERT_TRUE(
        builder.Append("Cat.rating", monet::Column::MakeInts({777})).ok());
    // And one aligned delete across the three BATs.
    for (const char* name : {"Cat.u", "Cat.year", "Cat.rating"}) {
      auto del = builder.DeleteRows(name, {3});
      ASSERT_TRUE(del.ok()) << name;
      EXPECT_EQ(del.value().deleted, 1u);
    }
  }  // "crash": the builder dies without another checkpoint

  db::MirrorDb recovered;
  ASSERT_TRUE(recovered
                  .Recover(dir, wal, db::RecoveryMode::kFull,
                           /*background_drain=*/false)
                  .ok());
  EXPECT_FALSE(recovered.recovery_pending());
  EXPECT_EQ(recovered.catalog()->VisibleRows("Cat.rating").value(),
            static_cast<size_t>(kBaseRows));  // +1 append, −1 delete
  auto bat = recovered.catalog()->Get("Cat.rating");
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(bat.value()->tail().IntAt(bat.value()->size() - 1), 777);
  auto stats = recovered.recovery_stats();
  EXPECT_EQ(stats.wal_replayed_records, 6u);
  EXPECT_FALSE(stats.recovery_pending);

  moa::QueryContext ctx;
  auto count = recovered.Query("count(select[THIS.rating >= 0](Cat));", ctx);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_TRUE(count.value().is_scalar);
  EXPECT_EQ(count.value().scalar.AsDouble(), static_cast<double>(kBaseRows));
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecoveryTest, LazyRecoveryMatchesFullAndServesEagerSets) {
  std::string dir = TempDir("lazy");
  std::string wal = dir + "/wal.log";
  {
    db::MirrorDb builder;
    BuildSmallDb(&builder, /*with_lib=*/true);
    ASSERT_TRUE(builder.AttachWal(wal).ok());
    ASSERT_TRUE(builder.Checkpoint(dir).ok());
    ASSERT_TRUE(builder.Append("Cat.u", monet::Column::MakeStrs({"ux"})).ok());
    ASSERT_TRUE(
        builder.Append("Cat.year", monet::Column::MakeInts({1999})).ok());
    ASSERT_TRUE(
        builder.Append("Cat.rating", monet::Column::MakeInts({555})).ok());
  }

  db::MirrorDb full;
  ASSERT_TRUE(full.Recover(dir, wal, db::RecoveryMode::kFull,
                           /*background_drain=*/false)
                  .ok());
  db::MirrorDb lazy;
  ASSERT_TRUE(lazy.Recover(dir, wal, db::RecoveryMode::kLazy,
                           /*background_drain=*/false)
                  .ok());
  // The atomic Cat fragments are still unrecovered; the CONTREP set was
  // recovered eagerly at Recover() (its inverted index cannot wait).
  EXPECT_TRUE(lazy.recovery_pending());

  moa::QueryContext ctx;
  ctx.BindTerms("q", {kWords[0], kWords[3]});
  const std::vector<std::string> queries = {
      "count(select[THIS.year >= 1990](Cat));",
      "map[THIS.rating * 2 + 1](select[THIS.year >= 1985](Cat));",
      "map[sum(THIS)](map[getBL(THIS.doc, q, stats)](select[THIS.year >= "
      "1975](Lib)));",
  };
  for (const std::string& q : queries) {
    auto want = full.Query(q, ctx);
    ASSERT_TRUE(want.ok()) << q << ": " << want.status().ToString();
    auto got = lazy.Query(q, ctx);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status().ToString();
    ExpectSameOutput(got.value(), want.value());
  }
  // The Cat queries forced query-driven fragment loads.
  EXPECT_GE(lazy.recovery_stats().recovery_lazy_loads, 1u);

  ASSERT_TRUE(lazy.DrainRecovery().ok());
  EXPECT_FALSE(lazy.recovery_pending());
  for (const std::string& q : queries) {
    auto want = full.Query(q, ctx);
    auto got = lazy.Query(q, ctx);
    ASSERT_TRUE(want.ok() && got.ok());
    ExpectSameOutput(got.value(), want.value());
  }
  std::filesystem::remove_all(dir);
}

TEST(DaemonRecoveryTest, BackgroundDrainFinishesWithoutQueries) {
  std::string dir = TempDir("drain");
  std::string wal = dir + "/wal.log";
  {
    db::MirrorDb builder;
    BuildSmallDb(&builder, /*with_lib=*/false);
    ASSERT_TRUE(builder.AttachWal(wal).ok());
    ASSERT_TRUE(builder.Checkpoint(dir).ok());
    ASSERT_TRUE(
        builder.Append("Cat.rating", monet::Column::MakeInts({1, 2, 3})).ok());
  }
  db::MirrorDb lazy;
  ASSERT_TRUE(lazy.Recover(dir, wal, db::RecoveryMode::kLazy,
                           /*background_drain=*/true)
                  .ok());
  for (int i = 0; i < 5000 && lazy.recovery_pending(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(lazy.recovery_pending());
  EXPECT_EQ(lazy.catalog()->VisibleRows("Cat.rating").value(),
            static_cast<size_t>(kBaseRows) + 3);
  // Nothing was query-driven.
  EXPECT_EQ(lazy.recovery_stats().recovery_lazy_loads, 0u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The headline crash test: SIGKILL a serving daemon mid-write-storm; no
// acknowledged write may be lost, and the restarted instance serves
// queries before replay completes.

TEST(DaemonRecoveryTest, CrashKillLosesNoAcknowledgedWrites) {
  std::string dir = TempDir("crashkill");
  std::string wal = dir + "/wal.log";
  {
    db::MirrorDb builder;
    BuildSmallDb(&builder, /*with_lib=*/false);
    ASSERT_TRUE(builder.AttachWal(wal).ok());
    ASSERT_TRUE(builder.Checkpoint(dir).ok());
  }

  int port_pipe[2];
  ASSERT_EQ(::pipe(port_pipe), 0);
  pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: the serving daemon that will be crash-killed. Never returns
    // into the test runner.
    ::close(port_pipe[0]);
    db::MirrorDb serving;
    if (!serving.Recover(dir, wal, db::RecoveryMode::kFull).ok()) _exit(2);
    QueryServer server(&serving);
    auto port = server.ListenTcp(0);
    if (!port.ok()) _exit(3);
    uint32_t p = static_cast<uint32_t>(port.value());
    if (::write(port_pipe[1], &p, sizeof(p)) != sizeof(p)) _exit(4);
    ::close(port_pipe[1]);
    for (;;) ::pause();
  }
  ::close(port_pipe[1]);
  uint32_t port = 0;
  ASSERT_EQ(::read(port_pipe[0], &port, sizeof(port)),
            static_cast<ssize_t>(sizeof(port)));
  ::close(port_pipe[0]);

  auto conn = wire::TcpConnect("127.0.0.1", static_cast<int>(port));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  wire::WireClient client(std::move(conn).TakeValue());
  ASSERT_TRUE(client.Hello("storm").ok());

  // Storm single-row appends; an independent thread SIGKILLs the daemon
  // once enough are acknowledged, so the kill lands mid-storm.
  std::atomic<int> acked{0};
  std::atomic<bool> storm_done{false};
  std::thread killer([&] {
    while (acked.load() < 50 && !storm_done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ::kill(child, SIGKILL);
  });
  for (int i = 0; i < 100000; ++i) {
    auto ack =
        client.Append("Cat.rating", monet::Column::MakeInts({10000 + i}));
    if (!ack.ok()) break;  // connection died: the daemon was killed
    EXPECT_EQ(ack.value().visible_rows,
              static_cast<uint64_t>(kBaseRows) + static_cast<uint64_t>(i) + 1);
    acked.fetch_add(1);
  }
  storm_done.store(true);
  killer.join();
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));
  const int n = acked.load();
  ASSERT_GE(n, 50);

  // Instant recovery: the restarted instance answers queries while the
  // rest of the catalog still awaits replay.
  db::MirrorDb recovered;
  ASSERT_TRUE(recovered
                  .Recover(dir, wal, db::RecoveryMode::kLazy,
                           /*background_drain=*/false)
                  .ok());
  EXPECT_TRUE(recovered.recovery_pending());
  QueryServer server(&recovered);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient survivor(std::move(client_end));
  ASSERT_TRUE(survivor.Hello("survivor").ok());
  moa::QueryContext ctx;
  auto count = survivor.Query("count(select[THIS.rating >= 10000](Cat));", ctx);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  ASSERT_TRUE(count.value().is_scalar);
  // ZERO lost acknowledged writes. (More than `n` may survive: a record
  // can reach the disk without its ack reaching the client.)
  EXPECT_GE(count.value().scalar.AsDouble(), static_cast<double>(n));
  auto stats = recovered.recovery_stats();
  EXPECT_GE(stats.recovery_lazy_loads, 1u);
  EXPECT_GT(stats.wal_replayed_records, 0u);

  // The durable writes are exactly the storm's prefix, in order.
  auto bat = recovered.catalog()->Get("Cat.rating");
  ASSERT_TRUE(bat.ok());
  ASSERT_GE(bat.value()->size(),
            static_cast<size_t>(kBaseRows) + static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(bat.value()->tail().IntAt(static_cast<size_t>(kBaseRows + i)),
              10000 + i)
        << "acknowledged write " << i << " lost or reordered";
  }

  ASSERT_TRUE(recovered.DrainRecovery().ok());
  EXPECT_FALSE(recovered.recovery_pending());
  // Untouched sibling BATs recovered to their checkpointed state.
  EXPECT_EQ(recovered.catalog()->VisibleRows("Cat.u").value(),
            static_cast<size_t>(kBaseRows));
  ASSERT_TRUE(survivor.Close().ok());
  server.Shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mirror::daemon
