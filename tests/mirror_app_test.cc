// End-to-end tests of the Mirror DBMS and the §5 demo application: schema
// definition, the paper's queries through the full engine, dual-coding
// retrieval and relevance feedback on the synthetic library.

#include <set>

#include <gtest/gtest.h>

#include "mirror/mirror_db.h"
#include "mirror/retrieval_app.h"
#include "mm/synthetic_library.h"

namespace mirror::db {
namespace {

TEST(MirrorDbTest, DefineLoadQueryRoundTrip) {
  MirrorDb db;
  ASSERT_TRUE(db.Define("define Lib as SET<TUPLE<Atomic<URL>: source, "
                        "Atomic<int>: year, CONTREP<Text>: annotation>>;")
                  .ok());
  std::vector<moa::MoaValue> objects;
  objects.push_back(moa::MoaValue::Tuple(
      {moa::MoaValue::Str("u0"), moa::MoaValue::Int(1998),
       moa::MoaValue::Str("sunset over the beach")}));
  objects.push_back(moa::MoaValue::Tuple(
      {moa::MoaValue::Str("u1"), moa::MoaValue::Int(1999),
       moa::MoaValue::Str("city streets at night")}));
  ASSERT_TRUE(db.Load("Lib", std::move(objects)).ok());

  moa::QueryContext ctx;
  ctx.BindTerms("query", {"sunset"});
  auto result = db.Query(
      "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib));",
      ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const monet::Bat& bat = *result.value().bat;
  ASSERT_EQ(bat.size(), 2u);
  double score0 = -1;
  double score1 = -1;
  for (size_t i = 0; i < bat.size(); ++i) {
    if (bat.head().OidAt(i) == 0) score0 = bat.tail().NumAt(i);
    if (bat.head().OidAt(i) == 1) score1 = bat.tail().NumAt(i);
  }
  EXPECT_GT(score0, score1);  // the sunset document wins
}

TEST(MirrorDbTest, PrepareExposesPlanAndOptimizerReport) {
  MirrorDb db;
  ASSERT_TRUE(db.Define("define T as SET<TUPLE<Atomic<int>: x>>;").ok());
  std::vector<moa::MoaValue> objects;
  for (int i = 0; i < 10; ++i) {
    objects.push_back(moa::MoaValue::Tuple({moa::MoaValue::Int(i)}));
  }
  ASSERT_TRUE(db.Load("T", std::move(objects)).ok());
  moa::QueryContext ctx;
  auto prepared =
      db.Prepare("map[THIS * 2](map[THIS.x + 1](T));", ctx, QueryOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_EQ(prepared.value().optimizer.map_fusions, 1);
  EXPECT_GT(prepared.value().program.instrs().size(), 0u);
  auto run = db.Execute(prepared.value());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().bat->size(), 10u);
}

TEST(MirrorDbTest, NaiveModeMatchesFlattenedMode) {
  MirrorDb db;
  ASSERT_TRUE(db.Define("define T as SET<TUPLE<Atomic<int>: x>>;").ok());
  std::vector<moa::MoaValue> objects;
  for (int i = 0; i < 25; ++i) {
    objects.push_back(moa::MoaValue::Tuple({moa::MoaValue::Int(i % 7)}));
  }
  ASSERT_TRUE(db.Load("T", std::move(objects)).ok());
  moa::QueryContext ctx;
  QueryOptions naive;
  naive.flattened = false;
  auto a = db.Query("count(select[THIS.x == 3](T));", ctx);
  auto b = db.Query("count(select[THIS.x == 3](T));", ctx, naive);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a.value().is_scalar);
  ASSERT_TRUE(b.value().is_scalar);
  EXPECT_DOUBLE_EQ(a.value().scalar.AsDouble(), b.value().scalar.AsDouble());
}

class RetrievalAppTest : public ::testing::Test {
 protected:
  static ImageRetrievalApp::Options FastOptions() {
    ImageRetrievalApp::Options options;
    options.pipeline.feature_spaces = {"rgb", "hsv", "lbp"};
    options.pipeline.autoclass.min_k = 3;
    options.pipeline.autoclass.max_k = 6;
    return options;
  }

  static mm::LibraryOptions LibraryConfig() {
    mm::LibraryOptions options;
    options.num_images = 60;
    options.image_size = 32;
    options.num_classes = 4;
    options.annotated_fraction = 0.5;
    options.seed = 19;
    return options;
  }

  // Precision at k against the planted class of the query.
  static double PrecisionAtK(const std::vector<RankedImage>& ranked,
                             const std::vector<mm::LibraryImage>& library,
                             int want_class, int k) {
    int hits = 0;
    int considered = 0;
    for (const RankedImage& r : ranked) {
      if (considered >= k) break;
      ++considered;
      if (library[static_cast<size_t>(r.oid)].true_class == want_class) {
        ++hits;
      }
    }
    return considered == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(considered);
  }
};

TEST_F(RetrievalAppTest, BuildCreatesBothSchemasAndThesaurus) {
  auto library = mm::SyntheticLibrary(LibraryConfig()).Generate();
  ImageRetrievalApp app(FastOptions());
  ASSERT_TRUE(app.Build(library).ok());

  auto names = app.db()->logical()->SetNames();
  EXPECT_EQ(names, (std::vector<std::string>{"ImageLibrary",
                                             "ImageLibraryInternal"}));
  EXPECT_TRUE(app.thesaurus().finalized());
  EXPECT_EQ(app.indexed().size(), library.size());
  // The dictionary records the derivations of Figure 1.
  auto derivations = app.dictionary().DerivationsOf("ImageLibrary");
  EXPECT_EQ(derivations.at("image_segments"), "segmenter");
  EXPECT_GT(app.orb().stats().invocations, 0u);
}

TEST_F(RetrievalAppTest, DualCodingRetrievesUnannotatedImages) {
  auto library = mm::SyntheticLibrary(LibraryConfig()).Generate();
  ImageRetrievalApp app(FastOptions());
  ASSERT_TRUE(app.Build(library).ok());

  mm::SyntheticLibrary generator(LibraryConfig());
  const int query_class = 1;
  std::string query = generator.ClassWords(query_class)[0];

  // Cutoff = class size: each class has 15 of the 60 images.
  const int cutoff = 15;
  auto text_only = app.Search(query, RetrievalMode::kTextOnly, cutoff);
  ASSERT_TRUE(text_only.ok()) << text_only.status().ToString();
  auto dual = app.Search(query, RetrievalMode::kDualCoding, cutoff);
  ASSERT_TRUE(dual.ok()) << dual.status().ToString();

  // Text-only retrieval can only surface annotated images (others score
  // the background default, and the class words never appear in other
  // classes' annotations). Dual coding reaches unannotated members of
  // the class through the visual clusters.
  std::set<monet::Oid> text_tops;
  for (const auto& r : text_only.value()) text_tops.insert(r.oid);
  bool dual_found_unannotated_relevant = false;
  for (const auto& r : dual.value()) {
    const auto& entry = library[static_cast<size_t>(r.oid)];
    if (entry.annotation.empty() && entry.true_class == query_class) {
      dual_found_unannotated_relevant = true;
    }
  }
  EXPECT_TRUE(dual_found_unannotated_relevant)
      << "dual coding should reach unannotated class members";

  double p_text =
      PrecisionAtK(text_only.value(), library, query_class, cutoff);
  double p_dual = PrecisionAtK(dual.value(), library, query_class, cutoff);
  EXPECT_GE(p_dual + 1e-9, p_text)
      << "dual coding must not lose precision on this library";
}

TEST_F(RetrievalAppTest, VisualOnlySearchWorksThroughThesaurus) {
  auto library = mm::SyntheticLibrary(LibraryConfig()).Generate();
  ImageRetrievalApp app(FastOptions());
  ASSERT_TRUE(app.Build(library).ok());
  mm::SyntheticLibrary generator(LibraryConfig());
  auto ranked =
      app.Search(generator.ClassWords(2)[1], RetrievalMode::kVisualOnly, 5);
  ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
  EXPECT_LE(ranked.value().size(), 5u);
  EXPECT_FALSE(ranked.value().empty());
}

TEST_F(RetrievalAppTest, FeedbackImprovesOrKeepsPrecision) {
  auto library = mm::SyntheticLibrary(LibraryConfig()).Generate();
  ImageRetrievalApp app(FastOptions());
  ASSERT_TRUE(app.Build(library).ok());
  mm::SyntheticLibrary generator(LibraryConfig());
  const int query_class = 0;
  std::string query = generator.ClassWords(query_class)[0];

  std::vector<moa::WeightedTerm> session;
  auto round1 = app.SearchWithFeedback(query, {}, &session, 10);
  ASSERT_TRUE(round1.ok()) << round1.status().ToString();
  double p1 = PrecisionAtK(round1.value(), library, query_class, 10);

  // Judge the relevant results of round 1.
  std::vector<monet::Oid> relevant;
  for (const RankedImage& r : round1.value()) {
    if (library[static_cast<size_t>(r.oid)].true_class == query_class) {
      relevant.push_back(r.oid);
    }
  }
  if (relevant.empty()) {
    GTEST_SKIP() << "no relevant seeds in round 1; nothing to feed back";
  }
  auto round2 = app.SearchWithFeedback(query, relevant, &session, 10);
  ASSERT_TRUE(round2.ok()) << round2.status().ToString();
  double p2 = PrecisionAtK(round2.value(), library, query_class, 10);
  EXPECT_GE(p2 + 1e-9, p1) << "feedback must not hurt precision here";
}

TEST_F(RetrievalAppTest, PaperQueryRunsVerbatimOnInternalSchema) {
  auto library = mm::SyntheticLibrary(LibraryConfig()).Generate();
  ImageRetrievalApp app(FastOptions());
  ASSERT_TRUE(app.Build(library).ok());
  // The §5.2 retrieval query, with `query` bound to thesaurus output.
  auto visual = app.thesaurus().FormulateVisualQuery({"sunset"}, 4);
  moa::QueryContext ctx;
  ctx.Bind("query", visual);
  auto result = app.db()->Query(
      "map[sum(THIS)](map[getBL(THIS.image, query, stats)]("
      "ImageLibraryInternal));",
      ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().bat->size(), library.size());
}

}  // namespace
}  // namespace mirror::db
