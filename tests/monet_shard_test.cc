// Sharded catalogs and the shard-parallel scatter/gather engine: the
// oid-range fragment layout must partition every void-headed BAT
// exactly, and MIL programs fanned out over shard-local catalogs must
// reproduce the unsharded engine bit for bit across the awkward shapes —
// empty shards, skewed oid ranges and bases, string-heap BATs whose
// fragments share one interned heap, cross-shard joins (broadcast build
// sides), TopN merges with cross-shard ties, and scalar folds over
// shards emptied by selection. Also covers MirrorDb::LoadSharded running
// existing query code sharded transparently.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "mirror/mirror_db.h"
#include "moa/moa_value.h"
#include "moa/query_context.h"
#include "monet/bat_ops.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/profiler.h"

namespace mirror::monet {
namespace {

namespace mil = monet::mil;

void ExpectBatsEqual(const Bat& a, const Bat& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Row(i).first.ToString(), b.Row(i).first.ToString())
        << what << " head row " << i;
    EXPECT_EQ(a.Row(i).second.ToString(), b.Row(i).second.ToString())
        << what << " tail row " << i;
  }
}

/// Runs `program` unsharded and with `num_shards` shards (same thread
/// count) and checks the results are identical; returns the sharded-run
/// kernel stats for profiler assertions.
KernelStats ExpectShardedMatches(const Catalog& catalog,
                                 const mil::Program& program,
                                 size_t num_shards, int threads,
                                 const char* what) {
  mil::ExecOptions plain;
  plain.num_threads = threads;
  plain.num_shards = 1;
  mil::ExecOptions sharded = plain;
  sharded.num_shards = num_shards;
  auto base = mil::ExecutionEngine(&catalog, plain).Run(program);
  EXPECT_TRUE(base.ok()) << what << ": " << base.status().ToString();
  ResetKernelStats();
  auto shard = mil::ExecutionEngine(&catalog, sharded).Run(program);
  KernelStats stats = SnapshotKernelStats();
  EXPECT_TRUE(shard.ok()) << what << ": " << shard.status().ToString();
  if (!base.ok() || !shard.ok()) return stats;
  EXPECT_EQ(base.value().is_scalar, shard.value().is_scalar) << what;
  if (base.value().is_scalar) {
    EXPECT_DOUBLE_EQ(base.value().scalar, shard.value().scalar) << what;
  } else {
    ExpectBatsEqual(*base.value().bat, *shard.value().bat, what);
  }
  return stats;
}

mil::Instr Load(const std::string& name) {
  mil::Instr i;
  i.op = mil::OpCode::kLoadNamed;
  i.name = name;
  return i;
}

// ---------------------------------------------------------------------------
// Catalog layout.

TEST(ShardedCatalogTest, PartitionsVoidHeadedBatsByOidRange) {
  Catalog catalog;
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 10; ++i) vals.push_back(i * 100);
  catalog.Put("S.val", Bat::DenseInts(vals, /*base=*/5));  // skewed base
  catalog.Put("dim", Bat(Column::MakeInts({1, 2, 3}),
                         Column::MakeDbls({0.1, 0.2, 0.3})));

  const ShardedCatalog* layout = catalog.Shards(4);
  ASSERT_NE(layout, nullptr);
  EXPECT_EQ(layout->num_shards(), 4u);
  // Value-keyed (non-void-headed) BATs are not sharded: they replicate.
  EXPECT_FALSE(layout->IsSharded("dim"));
  EXPECT_EQ(layout->ShardedNames(), std::vector<std::string>{"S.val"});

  const std::vector<ShardRange>* ranges = layout->RangesFor("S.val");
  ASSERT_NE(ranges, nullptr);
  ASSERT_EQ(ranges->size(), 4u);
  // 10 rows over 4 shards with base 5: uneven 2/3/2/3 split, contiguous
  // and covering [5, 15).
  EXPECT_EQ((*ranges)[0].begin, 5u);
  EXPECT_EQ((*ranges)[3].end, 15u);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    if (s > 0) EXPECT_EQ((*ranges)[s].begin, (*ranges)[s - 1].end);
    total += (*ranges)[s].size();
    auto frag = layout->shard(s).Get("S.val");
    ASSERT_TRUE(frag.ok());
    EXPECT_EQ(frag.value()->size(), (*ranges)[s].size());
    // Fragment oids stay global: the void base is the range start.
    EXPECT_TRUE(frag.value()->head().is_void());
    EXPECT_EQ(frag.value()->head().void_base(), (*ranges)[s].begin);
    for (size_t i = 0; i < frag.value()->size(); ++i) {
      size_t global_row = (*ranges)[s].begin - 5 + i;
      EXPECT_EQ(frag.value()->tail().IntAt(i),
                static_cast<int64_t>(global_row) * 100);
    }
  }
  EXPECT_EQ(total, 10u);
  // Fragments of one shard-local catalog never contain replicated names.
  EXPECT_FALSE(layout->shard(0).Contains("dim"));
}

TEST(ShardedCatalogTest, EmptyAndUndersizedBatsYieldEmptyShards) {
  Catalog catalog;
  catalog.Put("tiny", Bat::DenseInts({7, 8, 9}));
  catalog.Put("none", Bat::Empty(ValueType::kVoid, ValueType::kDbl));
  const ShardedCatalog* layout = catalog.Shards(8);
  ASSERT_NE(layout, nullptr);
  size_t tiny_rows = 0;
  size_t empty_shards = 0;
  for (size_t s = 0; s < 8; ++s) {
    auto tiny = layout->shard(s).Get("tiny");
    ASSERT_TRUE(tiny.ok());
    tiny_rows += tiny.value()->size();
    if (tiny.value()->empty()) ++empty_shards;
    auto none = layout->shard(s).Get("none");
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none.value()->empty());
  }
  EXPECT_EQ(tiny_rows, 3u);
  EXPECT_EQ(empty_shards, 5u);
}

TEST(ShardedCatalogTest, LayoutsAreCachedPerCountAndDropOnMutation) {
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1, 2, 3, 4}));
  const ShardedCatalog* two = catalog.Shards(2);
  const ShardedCatalog* four = catalog.Shards(4);
  ASSERT_NE(two, nullptr);
  ASSERT_NE(four, nullptr);
  EXPECT_NE(two, four);                    // counts coexist
  EXPECT_EQ(two, catalog.Shards(2));       // cached
  EXPECT_EQ(catalog.Shards(1), nullptr);   // 1 = unsharded
  catalog.Put("a", Bat::DenseInts({9, 9}));
  const ShardedCatalog* rebuilt = catalog.Shards(2);
  ASSERT_NE(rebuilt, nullptr);
  auto frag = rebuilt->shard(0).Get("a");
  ASSERT_TRUE(frag.ok());
  EXPECT_EQ(frag.value()->tail().IntAt(0), 9);
}

TEST(ShardedCatalogTest, StringFragmentsShareTheBaseHeap) {
  Catalog catalog;
  catalog.Put("S.u", Bat::DenseStrs({"sun", "sea", "sun", "sky", "sea",
                                     "dune"}));
  auto base = catalog.Get("S.u");
  ASSERT_TRUE(base.ok());
  const ShardedCatalog* layout = catalog.Shards(3);
  ASSERT_NE(layout, nullptr);
  for (size_t s = 0; s < 3; ++s) {
    auto frag = layout->shard(s).Get("S.u");
    ASSERT_TRUE(frag.ok());
    // Shared heap: equal spellings keep equal offsets across shards, so
    // gathered fragments re-merge by offset append, not re-interning.
    EXPECT_EQ(frag.value()->tail().heap(), base.value()->tail().heap());
  }
}

// ---------------------------------------------------------------------------
// Shard-parallel engine equivalence.

/// A 200-row two-column catalog whose `val` distribution is heavily
/// skewed (80% of rows share one value) plus a value-keyed dimension.
Catalog BuildSkewedCatalog() {
  Catalog catalog;
  base::Rng rng(11);
  std::vector<int64_t> val;
  std::vector<double> score;
  std::vector<int64_t> ref;
  for (int i = 0; i < 200; ++i) {
    val.push_back(i % 5 == 0 ? rng.UniformInt(0, 40) : 7);
    score.push_back(rng.UniformDouble(-2.0, 2.0));
    ref.push_back(rng.UniformInt(0, 199));
  }
  catalog.Put("S.val", Bat::DenseInts(val));
  catalog.Put("S.score", Bat::DenseDbls(score));
  catalog.Put("S.ref", Bat::DenseInts(ref));
  std::vector<int64_t> keys;
  std::vector<double> w;
  for (int i = 0; i < 50; ++i) {
    keys.push_back(rng.UniformInt(0, 199));
    w.push_back(rng.UniformDouble(0.0, 1.0));
  }
  catalog.Put("dim", Bat(Column::MakeInts(std::move(keys)),
                         Column::MakeDbls(std::move(w))));
  return catalog;
}

TEST(ShardEngineTest, SelectSemijoinAggregateIsShardLocal) {
  Catalog catalog = BuildSkewedCatalog();
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int val = emit(Load("S.val"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectEq;
  sel.src0 = val;
  sel.imm0 = Value::MakeInt(7);  // skew: most shards keep ~80%
  int selected = emit(std::move(sel));
  int score = emit(Load("S.score"));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;  // co-sharded sides, same domain
  semi.src0 = score;
  semi.src1 = selected;
  int kept = emit(std::move(semi));
  mil::Instr agg;
  agg.op = mil::OpCode::kSumPerHead;
  agg.src0 = kept;
  p.set_result_reg(emit(std::move(agg)));

  for (size_t shards : {2ul, 4ul, 7ul}) {
    for (int threads : {1, 4}) {
      KernelStats stats = ExpectShardedMatches(catalog, p, shards, threads,
                                               "select-semijoin-agg");
      EXPECT_GT(stats.shard_fanouts, 0u);
      // The whole chain is shard-local and fused: the only fan-in is
      // result delivery, and nothing materializes.
      EXPECT_EQ(stats.materializations, 0u);
      EXPECT_EQ(stats.shard_fanins, 1u);
    }
  }
}

TEST(ShardEngineTest, CrossShardJoinBroadcastsTheBuildSide) {
  Catalog catalog = BuildSkewedCatalog();
  // S.ref's tails are foreign keys into S's own oid domain: the join's
  // build side (S.score, sharded void-headed) must be broadcast because
  // probe tails cross shard boundaries.
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int val = emit(Load("S.val"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.src0 = val;
  sel.cmp_op = CmpOp::kGe;
  sel.imm0 = Value::MakeInt(5);
  int selected = emit(std::move(sel));
  int ref = emit(Load("S.ref"));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;
  semi.src0 = ref;
  semi.src1 = selected;
  int kept = emit(std::move(semi));
  int score = emit(Load("S.score"));
  mil::Instr join;
  join.op = mil::OpCode::kJoin;
  join.src0 = kept;
  join.src1 = score;
  int joined = emit(std::move(join));
  mil::Instr agg;
  agg.op = mil::OpCode::kSumPerHead;
  agg.src0 = joined;
  p.set_result_reg(emit(std::move(agg)));

  KernelStats stats =
      ExpectShardedMatches(catalog, p, 4, 4, "cross-shard fetch join");
  EXPECT_GT(stats.shard_fanouts, 0u);
  EXPECT_GT(stats.shard_fanins, 0u);  // the broadcast gather

  // Hash-join flavor: a value-keyed (replicated) build side probed by
  // sharded candidates needs no broadcast and exactly one shared build.
  mil::Program q;
  auto emit_q = [&q](mil::Instr i) {
    i.dst = q.NewReg();
    return q.Emit(std::move(i));
  };
  int val_q = emit_q(Load("S.val"));
  mil::Instr sel_q;
  sel_q.op = mil::OpCode::kSelectCmp;
  sel_q.src0 = val_q;
  sel_q.cmp_op = CmpOp::kLe;
  sel_q.imm0 = Value::MakeInt(20);
  int selected_q = emit_q(std::move(sel_q));
  int ref_q = emit_q(Load("S.ref"));
  mil::Instr semi_q;
  semi_q.op = mil::OpCode::kSemiJoinHead;
  semi_q.src0 = ref_q;
  semi_q.src1 = selected_q;
  int kept_q = emit_q(std::move(semi_q));
  int dim = emit_q(Load("dim"));
  mil::Instr join_q;
  join_q.op = mil::OpCode::kJoin;
  join_q.src0 = kept_q;
  join_q.src1 = dim;
  int joined_q = emit_q(std::move(join_q));
  mil::Instr agg_q;
  agg_q.op = mil::OpCode::kSumPerHead;
  agg_q.src0 = joined_q;
  q.set_result_reg(emit_q(std::move(agg_q)));

  stats = ExpectShardedMatches(catalog, q, 4, 4, "replicated-build join");
  EXPECT_GT(stats.shard_fanouts, 0u);
  EXPECT_EQ(stats.materializations, 0u);  // probes consume candidate views
}

TEST(ShardEngineTest, StringHeapBatsAcrossShards) {
  Catalog catalog;
  std::vector<std::string> urls;
  for (int i = 0; i < 37; ++i) {
    urls.push_back(i % 3 == 0 ? "sun" : (i % 3 == 1 ? "sea" : "dune"));
  }
  catalog.Put("S.u", Bat::DenseStrs(urls));

  // Selection over a sharded string column, delivered as a BAT (the
  // gather materializes per-shard candidate views and appends their
  // shared-heap fragments).
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int u = emit(Load("S.u"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectEq;
  sel.src0 = u;
  sel.imm0 = Value::MakeStr("sea");
  p.set_result_reg(emit(std::move(sel)));
  ExpectShardedMatches(catalog, p, 5, 4, "string select");

  // Histogram fan-in over the sharded string column (a global-only op:
  // the input gathers off the base catalog for free).
  mil::Program h;
  auto emit_h = [&h](mil::Instr i) {
    i.dst = h.NewReg();
    return h.Emit(std::move(i));
  };
  int u2 = emit_h(Load("S.u"));
  mil::Instr hist;
  hist.op = mil::OpCode::kCountPerTailValue;
  hist.src0 = u2;
  h.set_result_reg(emit_h(std::move(hist)));
  ExpectShardedMatches(catalog, h, 5, 1, "string histogram");
}

TEST(ShardEngineTest, TopNMergesCrossShardTiesExactly) {
  Catalog catalog;
  // Many duplicate scores spread across shard boundaries: the two-phase
  // merge must keep the stable global tie order.
  std::vector<double> score;
  for (int i = 0; i < 101; ++i) score.push_back((i * 7 % 10) * 1.0);
  catalog.Put("S.score", Bat::DenseDbls(score));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int s = emit(Load("S.score"));
  mil::Instr top;
  top.op = mil::OpCode::kTopN;
  top.src0 = s;
  top.n = 17;
  top.flag0 = true;
  p.set_result_reg(emit(std::move(top)));
  for (size_t shards : {2ul, 4ul, 8ul}) {
    ExpectShardedMatches(catalog, p, shards, 4, "topn ties");
  }
  // n larger than the input: the merge degenerates to a full sort.
  mil::Program q;
  auto emit_q = [&q](mil::Instr i) {
    i.dst = q.NewReg();
    return q.Emit(std::move(i));
  };
  int s2 = emit_q(Load("S.score"));
  mil::Instr top2;
  top2.op = mil::OpCode::kTopN;
  top2.src0 = s2;
  top2.n = 500;
  top2.flag0 = false;
  q.set_result_reg(emit_q(std::move(top2)));
  ExpectShardedMatches(catalog, q, 4, 4, "topn oversized");
}

TEST(ShardEngineTest, ScalarFoldsSkipShardsEmptiedBySelection) {
  Catalog catalog;
  // All-negative scores, and a selection that leaves survivors in only
  // one shard: empty shards must contribute nothing to the fold (a 0
  // partial would wrongly beat every real maximum).
  std::vector<double> score(64, -5.0);
  score[3] = -1.25;  // the global max, in shard 0 of any split
  catalog.Put("S.score", Bat::DenseDbls(score));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int s = emit(Load("S.score"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.src0 = s;
  sel.cmp_op = CmpOp::kLt;
  sel.imm0 = Value::MakeDbl(-1.5);  // drops the max; all shards nonempty
  int lows = emit(std::move(sel));
  mil::Instr fold;
  fold.op = mil::OpCode::kScalarFold;
  fold.src0 = lows;
  fold.fold_op = FoldOp::kMax;
  p.set_result_reg(emit(std::move(fold)));
  ExpectShardedMatches(catalog, p, 4, 4, "fold max all-negative");

  // Now empty ALL shards: the fold must land on the empty-input value.
  mil::Program q;
  auto emit_q = [&q](mil::Instr i) {
    i.dst = q.NewReg();
    return q.Emit(std::move(i));
  };
  int s2 = emit_q(Load("S.score"));
  mil::Instr sel2;
  sel2.op = mil::OpCode::kSelectCmp;
  sel2.src0 = s2;
  sel2.cmp_op = CmpOp::kGt;
  sel2.imm0 = Value::MakeDbl(100.0);
  int none = emit_q(std::move(sel2));
  mil::Instr fold2;
  fold2.op = mil::OpCode::kScalarFold;
  fold2.src0 = none;
  fold2.fold_op = FoldOp::kMax;
  q.set_result_reg(emit_q(std::move(fold2)));
  ExpectShardedMatches(catalog, q, 4, 4, "fold max empty");

  // Scalar sum/count partials add across shards.
  mil::Program r;
  auto emit_r = [&r](mil::Instr i) {
    i.dst = r.NewReg();
    return r.Emit(std::move(i));
  };
  int s3 = emit_r(Load("S.score"));
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = s3;
  r.set_result_reg(emit_r(std::move(sum)));
  ExpectShardedMatches(catalog, r, 4, 1, "scalar sum");
}

TEST(ShardEngineTest, ShardedFilterSidesFromForeignDomainsGatherFully) {
  // Regression: a semijoin whose filter side is sharded but NOT
  // co-sharded (tail membership, or a foreign oid domain) must see the
  // WHOLE filter side on every shard — matching values deliberately
  // live in the "wrong" shard here, so filtering each fragment against
  // only its own counterpart returns nothing.
  Catalog catalog;
  catalog.Put("S.a", Bat::DenseInts({0, 1, 100, 101}));
  catalog.Put("S.b", Bat::DenseInts({100, 101, 0, 1}));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int a = emit(Load("S.a"));
  int b = emit(Load("S.b"));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinTail;
  semi.src0 = a;
  semi.src1 = b;
  p.set_result_reg(emit(std::move(semi)));
  mil::ExecOptions sharded;
  sharded.num_threads = 1;
  sharded.num_shards = 2;
  auto run = mil::ExecutionEngine(&catalog, sharded).Run(p);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().bat->size(), 4u);  // every tail is a member
  ExpectShardedMatches(catalog, p, 2, 4, "cross-shard semijoin.tail");

  // Head membership across differently-sized (incompatible) domains.
  Catalog two;
  two.Put("S.x", Bat::DenseInts({10, 11, 12, 13}));
  two.Put("T.y", Bat::DenseInts({20, 21, 22, 23, 24, 25}));
  mil::Program q;
  auto emit_q = [&q](mil::Instr i) {
    i.dst = q.NewReg();
    return q.Emit(std::move(i));
  };
  int x = emit_q(Load("S.x"));
  int y = emit_q(Load("T.y"));
  mil::Instr head;
  head.op = mil::OpCode::kSemiJoinHead;
  head.src0 = x;
  head.src1 = y;
  q.set_result_reg(emit_q(std::move(head)));
  ExpectShardedMatches(two, q, 2, 1, "foreign-domain semijoin.head");
}

TEST(ShardEngineTest, NonSsaSelfFoldKeepsItsInput) {
  // Regression: folding a register onto itself (dst == src0, a legal
  // non-SSA program) must read the per-shard input sizes before the
  // per-shard write clobbers them — otherwise every shard looks empty
  // and the merge returns the empty-fold value instead of the max.
  Catalog catalog;
  catalog.Put("S.v", Bat::DenseDbls({-5.0, -1.25, -3.0, -4.0}));
  mil::Program p;
  int r0 = p.NewReg();
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "S.v";
  load.dst = r0;
  p.Emit(std::move(load));
  mil::Instr fold;
  fold.op = mil::OpCode::kScalarFold;
  fold.src0 = r0;
  fold.fold_op = FoldOp::kMax;
  fold.dst = r0;  // overwrites its own input
  p.Emit(std::move(fold));
  p.set_result_reg(r0);
  mil::ExecOptions sharded;
  sharded.num_threads = 1;
  sharded.num_shards = 2;
  auto run = mil::ExecutionEngine(&catalog, sharded).Run(p);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run.value().is_scalar);
  EXPECT_DOUBLE_EQ(run.value().scalar, -1.25);
}

TEST(ShardEngineTest, MoreShardsThanRows) {
  Catalog catalog;
  catalog.Put("S.val", Bat::DenseInts({3, 1, 2}));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int v = emit(Load("S.val"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.src0 = v;
  sel.cmp_op = CmpOp::kGe;
  sel.imm0 = Value::MakeInt(2);
  p.set_result_reg(emit(std::move(sel)));
  ExpectShardedMatches(catalog, p, 8, 4, "more shards than rows");
}

// ---------------------------------------------------------------------------
// Scalar fold kernels (the opcode's definition of truth).

TEST(ScalarFoldKernelTest, FoldsMatchDefinitionsAndCandForms) {
  Bat b = Bat::DenseDbls({0.5, -2.0, 0.25, 3.0, -1.0});
  EXPECT_DOUBLE_EQ(ScalarFold(b, FoldOp::kMax), 3.0);
  EXPECT_DOUBLE_EQ(ScalarFold(b, FoldOp::kMin), -2.0);
  EXPECT_DOUBLE_EQ(ScalarFold(b, FoldOp::kProd),
                   0.5 * -2.0 * 0.25 * 3.0 * -1.0);
  Bat probs = Bat::DenseDbls({0.5, 0.25});
  EXPECT_DOUBLE_EQ(ScalarFold(probs, FoldOp::kPor),
                   1.0 - (1.0 - 0.5) * (1.0 - 0.25));
  Bat empty = Bat::Empty(ValueType::kVoid, ValueType::kDbl);
  EXPECT_DOUBLE_EQ(ScalarFold(empty, FoldOp::kMax), 0.0);
  EXPECT_DOUBLE_EQ(ScalarFold(empty, FoldOp::kProd), 1.0);

  // Candidate form over tiny morsels on a real pool must agree with the
  // materialized form (including partial-merge order effects for
  // max/min, which are order-insensitive).
  WorkerPool pool;
  pool.EnsureWorkers(4);
  MorselExec mx{&pool, 3};
  base::Rng rng(5);
  std::vector<double> vals;
  for (int i = 0; i < 100; ++i) vals.push_back(rng.UniformDouble(-4, 4));
  Bat big = Bat::DenseDbls(vals);
  CandidateList cands = SelectCmpCand(big, CmpOp::kGt, Value::MakeDbl(0));
  Bat mat = Materialize(big, cands);
  for (FoldOp op : {FoldOp::kMax, FoldOp::kMin}) {
    EXPECT_DOUBLE_EQ(ScalarFoldCand(big, cands, op, mx),
                     ScalarFold(mat, op));
  }
  CandidateList none = SelectCmpCand(big, CmpOp::kGt, Value::MakeDbl(99));
  EXPECT_DOUBLE_EQ(ScalarFoldCand(big, none, FoldOp::kMax, mx), 0.0);
}

// ---------------------------------------------------------------------------
// MirrorDb: sharded databases open transparently.

TEST(MirrorDbShardingTest, LoadShardedAppliesDefaultShardCount) {
  db::MirrorDb database;
  ASSERT_TRUE(database
                  .Define("define N as SET<TUPLE<Atomic<int>: x, "
                          "Atomic<int>: y>>;")
                  .ok());
  std::vector<moa::MoaValue> objects;
  for (int i = 0; i < 120; ++i) {
    objects.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Int(i % 17), moa::MoaValue::Int(i % 5)}));
  }
  std::vector<moa::MoaValue> copy = objects;
  ASSERT_TRUE(database.LoadSharded("N", std::move(objects), 4).ok());
  EXPECT_EQ(database.default_shard_count(), 4u);

  db::MirrorDb plain;
  ASSERT_TRUE(plain
                  .Define("define N as SET<TUPLE<Atomic<int>: x, "
                          "Atomic<int>: y>>;")
                  .ok());
  ASSERT_TRUE(plain.Load("N", std::move(copy)).ok());

  moa::QueryContext ctx;
  const char* queries[] = {
      "map[THIS.x + THIS.y](select[THIS.x >= 3 and THIS.x <= 12](N));",
      "sum(map[THIS.x * 2](select[THIS.y < 3](N)));",
      "max(map[THIS.x - THIS.y](N));",
  };
  for (const char* query : queries) {
    SCOPED_TRACE(query);
    ResetKernelStats();
    auto sharded = database.Query(query, ctx);  // default options: inherit
    KernelStats stats = SnapshotKernelStats();
    auto unsharded = plain.Query(query, ctx);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
    EXPECT_GT(stats.shard_fanouts, 0u);  // ran on the shard engine
    ASSERT_EQ(sharded.value().is_scalar, unsharded.value().is_scalar);
    if (sharded.value().is_scalar) {
      EXPECT_DOUBLE_EQ(sharded.value().scalar.AsDouble(),
                       unsharded.value().scalar.AsDouble());
    } else {
      ExpectBatsEqual(*sharded.value().bat, *unsharded.value().bat, query);
    }
  }

  // An explicit num_shards = 1 pins the unsharded engine.
  db::QueryOptions pinned;
  pinned.exec.num_shards = 1;
  ResetKernelStats();
  ASSERT_TRUE(database.Query(queries[0], ctx, pinned).ok());
  EXPECT_EQ(SnapshotKernelStats().shard_fanouts, 0u);
}

}  // namespace
}  // namespace mirror::monet
