// Zone-map statistics and WAND-style top-k early termination: per-block
// min/max bounds must be exact (including int64 values past 2^53, which
// widen outward in double space), block classification must be sound in
// all three states, the shared top-k threshold must stay -infinity until
// k offers and rise monotonically, and — the property everything above
// exists to protect — pruned execution must reproduce the unpruned
// engines bit for bit: zoned selects, threshold-pruned ranking plans
// with boundary ties, whole-shard prunes, and partition-wise probe
// joins. Also covers the derived-cache invalidation contract: replacing
// a BAT must drop its zone maps so stale bounds can never mis-prune.

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "monet/bat.h"
#include "monet/bat_ops.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/profiler.h"
#include "monet/worker_pool.h"
#include "monet/zone_map.h"

namespace mirror::monet {
namespace {

namespace mil = monet::mil;

constexpr double kInf = std::numeric_limits<double>::infinity();

void ExpectBatsEqual(const Bat& a, const Bat& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Row(i).first.ToString(), b.Row(i).first.ToString())
        << what << " head row " << i;
    EXPECT_EQ(a.Row(i).second.ToString(), b.Row(i).second.ToString())
        << what << " tail row " << i;
  }
}

mil::Instr Load(const std::string& name) {
  mil::Instr i;
  i.op = mil::OpCode::kLoadNamed;
  i.name = name;
  return i;
}

// ---------------------------------------------------------------------------
// Zone map construction.

TEST(ZoneMapBuildTest, PerBlockBoundsAreExact) {
  std::vector<double> vals;
  for (size_t i = 0; i < 10; ++i) {
    vals.push_back(static_cast<double>(i) + 0.5);   // block floor + 0.5
    vals.push_back(static_cast<double>(i) - 0.25);  // block min
    vals.push_back(static_cast<double>(i) + 0.75);  // block max
    vals.push_back(static_cast<double>(i));
  }
  ZoneMap z = BuildZoneMap(Column::MakeDbls(vals), /*block_rows=*/4);
  ASSERT_TRUE(z.valid);
  EXPECT_EQ(z.num_blocks(), 10u);
  EXPECT_DOUBLE_EQ(z.min, -0.25);
  EXPECT_DOUBLE_EQ(z.max, 9.75);
  for (size_t b = 0; b < 10; ++b) {
    EXPECT_DOUBLE_EQ(z.block_min[b], static_cast<double>(b) - 0.25) << b;
    EXPECT_DOUBLE_EQ(z.block_max[b], static_cast<double>(b) + 0.75) << b;
  }
  // RangeMax covers exactly the touched blocks.
  EXPECT_DOUBLE_EQ(z.RangeMax(0, 4), 0.75);
  EXPECT_DOUBLE_EQ(z.RangeMax(4, 12), 2.75);
  EXPECT_DOUBLE_EQ(z.RangeMax(0, vals.size()), 9.75);
  EXPECT_EQ(z.BlocksIn(0, 4), 1u);
  EXPECT_EQ(z.BlocksIn(2, 9), 3u);
}

TEST(ZoneMapBuildTest, InvalidColumnsPruneNothing) {
  EXPECT_FALSE(BuildZoneMap(Column::MakeDbls({1.0, std::nan(""), 2.0})).valid);
  EXPECT_FALSE(BuildZoneMap(Column::MakeStrs({"a", "b"})).valid);
  EXPECT_FALSE(BuildZoneMap(Column::MakeDbls({})).valid);
}

TEST(ZoneMapBuildTest, VoidColumnBoundsAreArithmetic) {
  Bat b = Bat::DenseInts(std::vector<int64_t>(20, 7), /*base=*/100);
  BatZones z = BuildBatZones(b, /*block_rows=*/8);
  ASSERT_TRUE(z.head.valid);
  EXPECT_DOUBLE_EQ(z.head.min, 100.0);
  EXPECT_DOUBLE_EQ(z.head.max, 119.0);
  EXPECT_EQ(z.head.num_blocks(), 3u);
  EXPECT_DOUBLE_EQ(z.head.block_min[1], 108.0);
  EXPECT_DOUBLE_EQ(z.head.block_max[2], 119.0);
  ASSERT_TRUE(z.tail.valid);
  EXPECT_DOUBLE_EQ(z.tail.min, 7.0);
  EXPECT_DOUBLE_EQ(z.tail.max, 7.0);
}

TEST(ZoneMapBuildTest, HugeInt64BoundsWidenOutward) {
  // 2^53 + 1 is the first int64 a double cannot represent; bounds must
  // bracket the exact value from both sides.
  int64_t v = (int64_t{1} << 53) + 1;
  EXPECT_LT(DoubleLowerBound(v), static_cast<double>(v) + 1.0);
  EXPECT_LE(DoubleLowerBound(v), static_cast<double>(v));
  EXPECT_GE(DoubleUpperBound(v), static_cast<double>(v));
  EXPECT_GT(DoubleUpperBound(v), DoubleLowerBound(v));
  EXPECT_LE(DoubleLowerBound(-v), static_cast<double>(-v));
  EXPECT_GE(DoubleUpperBound(-v), static_cast<double>(-v));
  // Small values are exact: no widening.
  EXPECT_DOUBLE_EQ(DoubleLowerBound(42), 42.0);
  EXPECT_DOUBLE_EQ(DoubleUpperBound(42), 42.0);
  ZoneMap z = BuildZoneMap(Column::MakeInts({v, -v}));
  ASSERT_TRUE(z.valid);
  EXPECT_LE(z.min, static_cast<double>(-v));
  EXPECT_GE(z.max, static_cast<double>(v));
}

TEST(ZoneMapBuildTest, ClassifyZoneTristate) {
  // Block [10, 20] against assorted predicate intervals.
  EXPECT_EQ(ClassifyZone(10, 20, 25, true, kInf, true), ZoneMatch::kNone);
  EXPECT_EQ(ClassifyZone(10, 20, -kInf, true, 5, true), ZoneMatch::kNone);
  EXPECT_EQ(ClassifyZone(10, 20, 20, false, kInf, true), ZoneMatch::kNone);
  EXPECT_EQ(ClassifyZone(10, 20, 15, true, kInf, true), ZoneMatch::kSome);
  EXPECT_EQ(ClassifyZone(10, 20, 10, true, 20, true), ZoneMatch::kAll);
  EXPECT_EQ(ClassifyZone(10, 20, 5, true, 25, true), ZoneMatch::kAll);
  EXPECT_EQ(ClassifyZone(10, 20, 10, false, kInf, true), ZoneMatch::kSome);
  EXPECT_EQ(ClassifyZone(10, 20, -kInf, true, 20, false), ZoneMatch::kSome);
}

// ---------------------------------------------------------------------------
// Top-k threshold.

TEST(TopKThresholdTest, StaysUnboundedUntilKOffersThenRisesMonotonically) {
  TopKThreshold t(3);
  EXPECT_EQ(t.bound(), -kInf);
  t.Offer({0.5, 0.2});
  EXPECT_EQ(t.bound(), -kInf) << "only 2 of 3 scores offered";
  t.Offer({0.9});
  EXPECT_DOUBLE_EQ(t.bound(), 0.2) << "3rd best of {0.9, 0.5, 0.2}";
  t.Offer({0.1});
  EXPECT_DOUBLE_EQ(t.bound(), 0.2) << "a losing offer cannot lower it";
  t.Offer({0.7, std::nan("")});
  EXPECT_DOUBLE_EQ(t.bound(), 0.5) << "NaN ignored; {0.9, 0.7, 0.5}";
  t.Offer({0.6, 0.65});
  EXPECT_DOUBLE_EQ(t.bound(), 0.65);
}

// ---------------------------------------------------------------------------
// Zoned selection pruning.

TEST(ZonePruneTest, ZonedSelectsMatchUnzonedAndSkipBlocks) {
  // Values clustered by position so block bounds are tight: block b holds
  // values in [100 b, 100 b + 50].
  size_t n = kZoneBlockRows * 6;
  std::vector<double> vals(n);
  base::Rng rng(7);
  for (size_t i = 0; i < n; ++i) {
    vals[i] = static_cast<double>(i / kZoneBlockRows) * 100.0 +
              rng.UniformDouble() * 50.0;
  }
  Catalog catalog;
  catalog.Put("S.val", Bat::DenseDbls(vals));

  for (int threads : {1, 4}) {
    mil::Program p;
    auto emit = [&p](mil::Instr i) {
      i.dst = p.NewReg();
      return p.Emit(std::move(i));
    };
    int val = emit(Load("S.val"));
    mil::Instr sel;
    sel.op = mil::OpCode::kSelectCmp;
    sel.src0 = val;
    sel.cmp_op = CmpOp::kGe;
    sel.imm0 = Value::MakeDbl(400.0);  // only blocks 4 and 5 can match
    p.set_result_reg(emit(std::move(sel)));

    mil::ExecOptions zoned;
    zoned.num_threads = threads;
    mil::ExecOptions unzoned = zoned;
    unzoned.zone_maps = false;

    ResetKernelStats();
    auto with = mil::ExecutionEngine(&catalog, zoned).Run(p);
    KernelStats stats = SnapshotKernelStats();
    auto without = mil::ExecutionEngine(&catalog, unzoned).Run(p);
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    ExpectBatsEqual(*with.value().bat, *without.value().bat, "zoned select");
    EXPECT_EQ(with.value().bat->size(), kZoneBlockRows * 2);
    EXPECT_GE(stats.zone_blocks_skipped, 4u) << "threads=" << threads;
  }
}

TEST(ZonePruneTest, IntEqualitySelectNeverTrustsBlockWideMatches) {
  // A block whose [min, max] collapses to the probe value must still be
  // scanned for equality (kAll is downgraded): rows equal in double
  // space need not be equal as int64.
  std::vector<int64_t> vals(kZoneBlockRows * 2, 77);
  vals[kZoneBlockRows] = 78;  // one mismatch inside an all-77 block
  Catalog catalog;
  catalog.Put("S.v", Bat::DenseInts(vals));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int v = emit(Load("S.v"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectEq;
  sel.src0 = v;
  sel.imm0 = Value::MakeInt(77);
  p.set_result_reg(emit(std::move(sel)));
  auto got = mil::ExecutionEngine(&catalog, {}).Run(p);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bat->size(), vals.size() - 1);
}

// ---------------------------------------------------------------------------
// Top-k pruned ranking plans.

// A score column whose top scores sit in the first block (so a
// sequential scan raises the threshold early) with exact-tie rows at the
// k'th boundary scattered into later blocks: stable tie order is the
// bit-identity acid test.
std::vector<double> RankingScores(size_t n) {
  std::vector<double> scores(n);
  base::Rng rng(99);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = 0.05 + rng.UniformDouble() * 0.2;  // background noise
  }
  for (size_t i = 0; i < 12; ++i) scores[i] = 0.9;  // spike, k'th score ties
  scores[kZoneBlockRows * 3 + 17] = 0.9;            // boundary tie, late block
  scores[kZoneBlockRows * 4 + 5] = 0.95;            // a winner past the spike
  return scores;
}

mil::Program RankingPlan(const std::string& name, int64_t k) {
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int s = emit(Load(name));
  mil::Instr agg;
  agg.op = mil::OpCode::kProdPerHead;
  agg.src0 = s;
  int ranked = emit(std::move(agg));
  mil::Instr top;
  top.op = mil::OpCode::kTopN;
  top.src0 = ranked;
  top.n = k;
  top.flag0 = true;  // descending: a ranking
  p.set_result_reg(emit(std::move(top)));
  return p;
}

TEST(TopKPruneTest, PrunedRankingMatchesNaiveExecutorBitForBit) {
  Catalog catalog;
  catalog.Put("S.score", Bat::DenseDbls(RankingScores(kZoneBlockRows * 6)));
  for (int64_t k : {1, 10, 64}) {
    mil::Program p = RankingPlan("S.score", k);
    auto naive = mil::Executor(&catalog).Run(p);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();
    ASSERT_EQ(naive.value().bat->size(), static_cast<size_t>(k));
    for (int threads : {1, 4}) {
      for (size_t shards : {1ul, 4ul}) {
        mil::ExecOptions opts;
        opts.num_threads = threads;
        opts.num_shards = shards;
        auto pruned = mil::ExecutionEngine(&catalog, opts).Run(p);
        ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
        ExpectBatsEqual(*naive.value().bat, *pruned.value().bat,
                        "pruned ranking");
      }
    }
  }
}

TEST(TopKPruneTest, SequentialScanSkipsBlocksBehindTheThreshold) {
  // Single-threaded unsharded: the spike block is scanned first and
  // raises the bound to 0.9, so later all-noise blocks are provably
  // losing and must be skipped (the tie and winner blocks stay).
  Catalog catalog;
  catalog.Put("S.score", Bat::DenseDbls(RankingScores(kZoneBlockRows * 6)));
  catalog.EnsureZones();
  mil::Program p = RankingPlan("S.score", 10);
  mil::ExecOptions opts;
  opts.num_threads = 1;
  opts.num_shards = 1;
  ResetKernelStats();
  auto pruned = mil::ExecutionEngine(&catalog, opts).Run(p);
  ASSERT_TRUE(pruned.ok());
  KernelStats stats = SnapshotKernelStats();
  EXPECT_GE(stats.zone_blocks_skipped, 3u);
  ResetKernelStats();
  mil::ExecOptions off = opts;
  off.topk_prune = false;
  auto unpruned = mil::ExecutionEngine(&catalog, off).Run(p);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_EQ(SnapshotKernelStats().zone_blocks_skipped, 0u);
  ExpectBatsEqual(*unpruned.value().bat, *pruned.value().bat, "prune knob");
}

TEST(TopKPruneTest, WholeShardsPruneWhenTheirBoundsCannotWin) {
  // All winners in shard 0; shards 1..3 hold only background noise.
  // Sequential shard order (1 thread) guarantees the threshold is full
  // before the noise shards run, so each is dropped whole.
  size_t n = kZoneBlockRows * 8;
  std::vector<double> scores(n);
  base::Rng rng(13);
  for (size_t i = 0; i < n; ++i) scores[i] = 0.05 + rng.UniformDouble() * 0.2;
  for (size_t i = 0; i < 16; ++i) scores[i] = 0.8 + 0.01 * (i % 4);
  Catalog catalog;
  catalog.Put("S.score", Bat::DenseDbls(scores));
  mil::Program p = RankingPlan("S.score", 10);
  mil::ExecOptions opts;
  opts.num_threads = 1;
  opts.num_shards = 4;
  ResetKernelStats();
  auto pruned = mil::ExecutionEngine(&catalog, opts).Run(p);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(SnapshotKernelStats().topk_shards_pruned, 3u);
  auto naive = mil::Executor(&catalog).Run(p);
  ASSERT_TRUE(naive.ok());
  ExpectBatsEqual(*naive.value().bat, *pruned.value().bat, "shard prune");
}

TEST(TopKPruneTest, SharedAggregatesAreNeverPruned) {
  // The aggregate feeds both the TopN and a scalar fold: dropping losing
  // rows would corrupt the fold, so the plan must run unpruned — same
  // fold either way.
  Catalog catalog;
  catalog.Put("S.score", Bat::DenseDbls(RankingScores(kZoneBlockRows * 2)));
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int s = emit(Load("S.score"));
  mil::Instr agg;
  agg.op = mil::OpCode::kProdPerHead;
  agg.src0 = s;
  int ranked = emit(std::move(agg));
  mil::Instr top;
  top.op = mil::OpCode::kTopN;
  top.src0 = ranked;
  top.n = 5;
  top.flag0 = true;
  emit(std::move(top));
  mil::Instr fold;
  fold.op = mil::OpCode::kScalarFold;
  fold.src0 = ranked;
  fold.fold_op = FoldOp::kMax;
  p.set_result_reg(emit(std::move(fold)));

  auto naive = mil::Executor(&catalog).Run(p);
  auto engine = mil::ExecutionEngine(&catalog, {}).Run(p);
  ASSERT_TRUE(naive.ok());
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine.value().is_scalar);
  EXPECT_DOUBLE_EQ(naive.value().scalar, engine.value().scalar);
}

// ---------------------------------------------------------------------------
// Derived-cache invalidation.

TEST(ZoneInvalidationTest, ReplacingABatDropsItsZoneMapsAndShardLayouts) {
  Catalog catalog;
  catalog.Put("S.v", Bat::DenseDbls(std::vector<double>(kZoneBlockRows, 1.0)));
  const BatZones* before = catalog.Zones("S.v");
  ASSERT_NE(before, nullptr);
  EXPECT_DOUBLE_EQ(before->tail.max, 1.0);
  ASSERT_NE(catalog.Shards(2), nullptr);

  // Replace with data whose bounds differ: stale statistics claiming
  // max == 1.0 would prune the new 9.0 rows out of existence.
  std::vector<double> fresh(kZoneBlockRows, 1.0);
  for (size_t i = kZoneBlockRows / 2; i < fresh.size(); ++i) fresh[i] = 9.0;
  catalog.Put("S.v", Bat::DenseDbls(fresh));
  const BatZones* after = catalog.Zones("S.v");
  ASSERT_NE(after, nullptr);
  EXPECT_DOUBLE_EQ(after->tail.max, 9.0) << "zone maps rebuilt after Put";

  // End to end: a zoned select for the new rows finds every one.
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int v = emit(Load("S.v"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.src0 = v;
  sel.cmp_op = CmpOp::kGt;
  sel.imm0 = Value::MakeDbl(5.0);
  p.set_result_reg(emit(std::move(sel)));
  auto got = mil::ExecutionEngine(&catalog, {}).Run(p);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().bat->size(), kZoneBlockRows / 2);
}

// ---------------------------------------------------------------------------
// Partition-wise probe joins.

TEST(PartitionWiseJoinTest, MatchesLegacyJoinAndCountsProbePartitions) {
  base::Rng rng(21);
  std::vector<int64_t> probes;
  std::vector<int64_t> keys;
  std::vector<double> payload;
  for (size_t i = 0; i < 6000; ++i) probes.push_back(rng.UniformInt(0, 300));
  for (size_t i = 0; i < 900; ++i) {
    keys.push_back(rng.UniformInt(0, 300));  // duplicate build keys
    payload.push_back(static_cast<double>(i) * 0.25);
  }
  Bat l = Bat::DenseInts(probes);
  Bat r(Column::MakeInts(keys), Column::MakeDbls(payload));

  WorkerPool pool;
  pool.EnsureWorkers(4);
  MorselExec mx{&pool, /*morsel_size=*/512, /*radix_partitions=*/8};
  ResetKernelStats();
  Bat radix = Join(l, r, mx);
  KernelStats stats = SnapshotKernelStats();
  ExpectBatsEqual(JoinLegacy(l, r), radix, "partition-wise probe join");
  EXPECT_GE(stats.probe_partitions, 8u)
      << "a 6000-row probe side over 8 partitions must radix-cluster";

  // Below the partition-wise threshold the classic probe runs: same rows.
  std::vector<int64_t> tiny(probes.begin(), probes.begin() + 100);
  Bat lt = Bat::DenseInts(tiny);
  ExpectBatsEqual(JoinLegacy(lt, r), Join(lt, r, mx), "small probe");
}

}  // namespace
}  // namespace mirror::monet
