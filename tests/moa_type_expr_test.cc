// Moa structural type system: the paper's schemas verbatim, structure
// extensibility, and the query expression parser.

#include <gtest/gtest.h>

#include "moa/expr.h"
#include "moa/structure_registry.h"
#include "moa/structure_type.h"

namespace mirror::moa {
namespace {

TEST(SchemaParserTest, PaperSection3SchemaVerbatim) {
  // The paper's TraditionalImgLib definition, exactly as printed.
  auto def = ParseSchemaDef(
      "define TraditionalimgLib as \n"
      "SET< \n"
      " TUPLE< \n"
      "  Atomic<URL>: source, \n"
      "  CONTREP<Text>: annotation \n"
      ">>;");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def.value().name, "TraditionalimgLib");
  const StructType& type = *def.value().type;
  ASSERT_EQ(type.kind(), StructType::Kind::kSet);
  const StructType& tuple = *type.element();
  ASSERT_EQ(tuple.kind(), StructType::Kind::kTuple);
  ASSERT_EQ(tuple.fields().size(), 2u);
  EXPECT_EQ(tuple.fields()[0].name, "source");
  EXPECT_EQ(tuple.fields()[0].type->kind(), StructType::Kind::kAtomic);
  EXPECT_EQ(tuple.fields()[0].type->base(), BaseType::kUrl);
  EXPECT_EQ(tuple.fields()[1].name, "annotation");
  EXPECT_EQ(tuple.fields()[1].type->kind(), StructType::Kind::kContRep);
  EXPECT_EQ(tuple.fields()[1].type->base(), BaseType::kText);
}

TEST(SchemaParserTest, PaperSection5IntermediateSchema) {
  // The internal intermediate schema with a nested segment set.
  auto type = ParseStructType(
      "SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation, "
      "SET< TUPLE< Atomic<Image>: segment, Atomic<Vector>: RGB, "
      "Atomic<Vector>: Gabor > >: image_segments >>");
  ASSERT_TRUE(type.ok()) << type.status().ToString();
  const StructType& tuple = *type.value()->element();
  ASSERT_EQ(tuple.fields().size(), 3u);
  const StructType& segments = *tuple.fields()[2].type;
  EXPECT_EQ(segments.kind(), StructType::Kind::kSet);
  EXPECT_EQ(segments.element()->fields()[1].type->base(), BaseType::kVector);
}

TEST(SchemaParserTest, ToStringRoundTrips) {
  auto type = ParseStructType(
      "SET<TUPLE<Atomic<int>: a, LIST<TUPLE<Atomic<str>: b>>: items>>");
  ASSERT_TRUE(type.ok());
  auto reparsed = ParseStructType(type.value()->ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(type.value()->Equals(*reparsed.value()));
}

TEST(SchemaParserTest, Errors) {
  EXPECT_FALSE(ParseSchemaDef("define X as BANANA<int>;").ok());
  EXPECT_FALSE(ParseSchemaDef("define as SET<TUPLE<Atomic<int>: x>>;").ok());
  EXPECT_FALSE(ParseSchemaDef("X as SET<TUPLE<Atomic<int>: x>>;").ok());
  EXPECT_FALSE(ParseStructType("TUPLE<Atomic<int> x>").ok());  // missing ':'
  EXPECT_FALSE(ParseStructType("SET<Atomic<int>").ok());       // unbalanced
  EXPECT_FALSE(ParseStructType("Atomic<quaternion>").ok());
}

TEST(StructureRegistryTest, OpenExtensibility) {
  // Register a domain-specific structure (paper §2: structural
  // extensibility) and use it in a schema.
  StructureInfo info;
  info.name = "INTERVAL2";
  info.description = "closed numeric interval as a 2-tuple";
  info.make_type = [](std::string_view) -> base::Result<StructTypePtr> {
    return StructType::Tuple(
        {{"lo", StructType::Atomic(BaseType::kDbl)},
         {"hi", StructType::Atomic(BaseType::kDbl)}});
  };
  auto status = StructureRegistry::Global().RegisterStructure(info);
  ASSERT_TRUE(status.ok()) << status.ToString();

  auto def =
      ParseSchemaDef("define Spans as SET<TUPLE<INTERVAL2: span>>;");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  const StructType& span =
      *def.value().type->element()->fields()[0].type;
  EXPECT_EQ(span.kind(), StructType::Kind::kTuple);
  EXPECT_EQ(span.FieldIndex("hi"), 1);

  // Kernel names cannot be shadowed; duplicates are rejected.
  StructureInfo clash;
  clash.name = "SET";
  clash.make_type = info.make_type;
  EXPECT_FALSE(StructureRegistry::Global().RegisterStructure(clash).ok());
  EXPECT_FALSE(StructureRegistry::Global().RegisterStructure(info).ok());
}

TEST(ExprParserTest, PaperSection3QueryVerbatim) {
  auto expr = ParseExpr(
      "map[sum(THIS)] (\n"
      "  map[getBL(THIS.annotation,\n"
      "      query, stats)] ( TraditionalimgLib ));");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  const Expr& outer = *expr.value();
  ASSERT_EQ(outer.op, Expr::Op::kMap);
  EXPECT_EQ(outer.children[0]->op, Expr::Op::kAgg);
  EXPECT_EQ(outer.children[0]->agg, AggKind::kSum);
  const Expr& inner = *outer.children[1];
  ASSERT_EQ(inner.op, Expr::Op::kMap);
  const Expr& getbl = *inner.children[0];
  ASSERT_EQ(getbl.op, Expr::Op::kGetBL);
  EXPECT_EQ(getbl.qvar, "query");
  EXPECT_EQ(getbl.statsvar, "stats");
  EXPECT_EQ(getbl.children[0]->op, Expr::Op::kField);
  EXPECT_EQ(getbl.children[0]->name, "annotation");
  EXPECT_EQ(inner.children[1]->name, "TraditionalimgLib");
}

TEST(ExprParserTest, PaperSection5QueryVerbatim) {
  auto expr = ParseExpr(
      "map [sum (THIS)] (\n"
      "  map[getBL(THIS.image,\n"
      "    query, stats)] ( ImageLibraryinternal )) ;");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  EXPECT_EQ(expr.value()->children[1]->children[0]->children[0]->name,
            "image");
}

TEST(ExprParserTest, PredicatePrecedence) {
  auto expr =
      ParseExpr("select[THIS.a < 3 and THIS.b == 'x' or THIS.c >= 2](S)");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  // 'and' binds tighter than 'or'.
  const Expr& pred = *expr.value()->children[0];
  EXPECT_EQ(pred.op, Expr::Op::kOr);
  EXPECT_EQ(pred.children[0]->op, Expr::Op::kAnd);
  EXPECT_EQ(pred.children[1]->op, Expr::Op::kCmp);
  EXPECT_EQ(pred.children[1]->cmp, CmpKind::kGe);
}

TEST(ExprParserTest, ArithmeticPrecedence) {
  auto expr = ParseExpr("map[THIS.x + THIS.y * 2](S)");
  ASSERT_TRUE(expr.ok());
  const Expr& body = *expr.value()->children[0];
  ASSERT_EQ(body.op, Expr::Op::kArith);
  EXPECT_EQ(body.arith, ArithKind::kAdd);
  EXPECT_EQ(body.children[1]->op, Expr::Op::kArith);
  EXPECT_EQ(body.children[1]->arith, ArithKind::kMul);
}

TEST(ExprParserTest, LiteralsAndTopN) {
  auto expr = ParseExpr("topN(map[THIS.x * 2.5](S), 10)");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->op, Expr::Op::kTopN);
  EXPECT_EQ(expr.value()->n, 10);
  auto str = ParseExpr("select[THIS.name == 'mirror'](S)");
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(str.value()->children[0]->children[1]->literal.s(), "mirror");
}

TEST(ExprParserTest, ToStringReparses) {
  const char* queries[] = {
      "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)](Lib))",
      "select[THIS.year >= 1995](Lib)",
      "topN(map[THIS.x + 1](S), 5)",
      "count(semijoin(A, B))",
  };
  for (const char* q : queries) {
    auto first = ParseExpr(q);
    ASSERT_TRUE(first.ok()) << q;
    auto second = ParseExpr(first.value()->ToString());
    ASSERT_TRUE(second.ok()) << first.value()->ToString();
    EXPECT_EQ(first.value()->ToString(), second.value()->ToString());
  }
}

TEST(ExprParserTest, Errors) {
  EXPECT_FALSE(ParseExpr("map[sum(THIS)](").ok());
  EXPECT_FALSE(ParseExpr("map[](S)").ok());
  EXPECT_FALSE(ParseExpr("getBL(THIS.a)").ok());
  EXPECT_FALSE(ParseExpr("select[THIS.x >](S)").ok());
  EXPECT_FALSE(ParseExpr("topN(S)").ok());
  EXPECT_FALSE(ParseExpr("map[sum(THIS)](S) trailing").ok());
  EXPECT_FALSE(ParseExpr("'unterminated").ok());
}

}  // namespace
}  // namespace mirror::moa
