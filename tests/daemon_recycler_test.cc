// The recycler observed through the daemon: a hot query is answered
// from the result cache bit-identically to direct execution, the
// exec.recycle knob gates it per session (both SET spellings), every
// catalog mutation path — APPEND, DELETE, Load, Recover — bumps the
// load generation and drops cached state, and no session ever reads a
// stale reply, including coalesced followers racing a concurrent
// writer. Runs under TSan in CI (see ci.sh).

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "daemon/query_server.h"
#include "daemon/wire.h"
#include "daemon/wire_client.h"
#include "mirror/mirror_db.h"
#include "monet/column.h"
#include "monet/recycler.h"

namespace mirror::daemon {
namespace {

namespace wire = mirror::daemon::wire;

/// A small atomic catalog: enough rows that selections are non-trivial,
/// small enough that TSan-instrumented runs stay fast.
void BuildDb(db::MirrorDb* database, uint64_t seed, int rows) {
  base::Rng rng(seed);
  ASSERT_TRUE(database
                  ->Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, Atomic<int>: rating>>;")
                  .ok());
  std::vector<moa::MoaValue> tuples;
  tuples.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    tuples.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("u" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::Int(rng.UniformInt(0, 1000))}));
  }
  ASSERT_TRUE(database->Load("Cat", std::move(tuples)).ok());
}

/// Scalar replies compared exactly; BAT replies row by row.
void ExpectRepliesIdentical(const wire::ResultReply& a,
                            const wire::ResultReply& b) {
  ASSERT_EQ(a.is_scalar, b.is_scalar);
  if (a.is_scalar) {
    ASSERT_TRUE(a.scalar == b.scalar);
    return;
  }
  ASSERT_TRUE(a.bat != nullptr);
  ASSERT_TRUE(b.bat != nullptr);
  ASSERT_EQ(a.bat->size(), b.bat->size());
  for (size_t i = 0; i < a.bat->size(); ++i) {
    auto [ah, at] = a.bat->Row(i);
    auto [bh, bt] = b.bat->Row(i);
    ASSERT_TRUE(ah == bh) << "head mismatch at row " << i;
    ASSERT_TRUE(at == bt) << "tail mismatch at row " << i;
  }
}

TEST(DaemonRecyclerTest, HotQueryIsServedFromCacheBitIdentically) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/7, /*rows=*/4000);
  QueryServer server(&database);
  auto [ca, sa] = wire::CreateChannelPair();
  auto [cb, sb] = wire::CreateChannelPair();
  server.Serve(std::move(sa));
  server.Serve(std::move(sb));
  wire::WireClient alice(std::move(ca));
  wire::WireClient bob(std::move(cb));
  ASSERT_TRUE(alice.Hello("alice").ok());
  ASSERT_TRUE(bob.Hello("bob").ok());

  const std::string query = "select[THIS.rating >= 500](Cat);";
  moa::QueryContext ctx;
  auto first = alice.Query(query, ctx);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // The second arrival — a different session — replays the cached
  // encoded bytes; the third exercises the repeat-hit path.
  auto second = bob.Query(query, ctx);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto third = alice.Query(query, ctx);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  ExpectRepliesIdentical(first.value(), second.value());
  ExpectRepliesIdentical(first.value(), third.value());

  auto stats = alice.Stats();
  ASSERT_TRUE(stats.ok());
  const wire::ServerWireStats& s = stats.value().server;
  EXPECT_GE(s.result_cache_hits, 2u);
  EXPECT_GE(s.result_cache_misses, 1u);
  EXPECT_GT(s.recycler_bytes_held, 0u);
  EXPECT_LE(s.recycler_bytes_held, database.recycler()->budget_bytes());
  ASSERT_TRUE(alice.Close().ok());
  ASSERT_TRUE(bob.Close().ok());
  server.Shutdown();
}

TEST(DaemonRecyclerTest, RecycleKnobAcceptsBothSpellingsAndGatesTheCache) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/8, /*rows=*/1000);
  QueryServer server(&database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("knobs").ok());

  // Every SET knob accepts the bare and the exec.-prefixed spelling.
  for (const char* key :
       {"num_shards", "num_threads", "query_deadline_ms",
        "memory_budget_bytes", "morsel_joins", "fuse_aggregates",
        "zone_maps", "topk_prune", "recycle"}) {
    auto bare = client.Set({{key, 0}});
    ASSERT_TRUE(bare.ok()) << key << ": " << bare.status().ToString();
    auto prefixed = client.Set({{std::string("exec.") + key, 0}});
    ASSERT_TRUE(prefixed.ok())
        << "exec." << key << ": " << prefixed.status().ToString();
  }
  // The SET reply echoes the knob; a bad key still fails atomically.
  auto off = client.Set({{"exec.recycle", 0}});
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off.value().recycle);
  auto bad = client.Set({{"recycle", 1}, {"no_such_knob", 1}});
  ASSERT_FALSE(bad.ok());
  auto echo = client.Stats();
  ASSERT_TRUE(echo.ok());
  ASSERT_EQ(echo.value().sessions.size(), 1u);
  EXPECT_FALSE(echo.value().sessions[0].options.recycle)
      << "failed SET must not have flipped the knob back on";

  // With recycle off, a repeated query never creates or serves entries.
  moa::QueryContext ctx;
  ASSERT_TRUE(client.Query("count(select[THIS.rating >= 0](Cat));", ctx).ok());
  ASSERT_TRUE(client.Query("count(select[THIS.rating >= 0](Cat));", ctx).ok());
  monet::RecyclerStats rs = database.recycler()->stats();
  EXPECT_EQ(rs.result_entries, 0u);
  EXPECT_EQ(rs.result_hits, 0u);

  // Back on: the same query now populates and replays.
  auto on = client.Set({{"recycle", 1}});
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on.value().recycle);
  ASSERT_TRUE(client.Query("count(select[THIS.rating >= 0](Cat));", ctx).ok());
  ASSERT_TRUE(client.Query("count(select[THIS.rating >= 0](Cat));", ctx).ok());
  rs = database.recycler()->stats();
  EXPECT_EQ(rs.result_entries, 1u);
  EXPECT_GE(rs.result_hits, 1u);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(DaemonRecyclerTest, EveryMutationPathInvalidatesAndBumpsGeneration) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/9, /*rows=*/2000);
  QueryServer server(&database);  // mutable: writes allowed
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("writer").ok());
  moa::QueryContext ctx;

  const std::string query = "count(select[THIS.rating >= 0](Cat));";
  auto before = client.Query(query, ctx);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(client.Query(query, ctx).ok());  // now cached + hit
  ASSERT_GE(database.recycler()->stats().result_hits, 1u);

  // APPEND: generation bumps, the cached count is NOT replayed.
  const uint64_t gen_before = database.load_generation();
  ASSERT_TRUE(
      client.Append("Cat.rating", monet::Column::MakeInts({1, 2, 3})).ok());
  EXPECT_EQ(database.load_generation(), gen_before + 1);
  auto after_append = client.Query(query, ctx);
  ASSERT_TRUE(after_append.ok());
  EXPECT_EQ(after_append.value().scalar.AsDouble(),
            before.value().scalar.AsDouble() + 3)
      << "a stale cached reply would still show the pre-append count";

  // DELETE: same contract.
  ASSERT_TRUE(client.Query(query, ctx).ok());  // re-cache the new count
  ASSERT_TRUE(client.Delete("Cat.rating", {0, 1}).ok());
  EXPECT_EQ(database.load_generation(), gen_before + 2);
  auto after_delete = client.Query(query, ctx);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete.value().scalar.AsDouble(),
            before.value().scalar.AsDouble() + 1);

  // Load: a full replacement also fences the recycler.
  std::vector<moa::MoaValue> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back(moa::MoaValue::Tuple({moa::MoaValue::Str("x"),
                                         moa::MoaValue::Int(2000),
                                         moa::MoaValue::Int(i)}));
  }
  ASSERT_TRUE(database.Load("Cat", std::move(rows)).ok());
  EXPECT_EQ(database.load_generation(), gen_before + 3);
  auto after_load = client.Query(query, ctx);
  ASSERT_TRUE(after_load.ok());
  EXPECT_EQ(after_load.value().scalar.AsDouble(), 50.0);
  EXPECT_GE(database.recycler()->stats().invalidations, 6u)
      << "each mutation fences twice (before and after its apply window)";
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(DaemonRecyclerTest, RecoverFencesTheRecyclerAndBumpsGeneration) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mirror_recycler_recover_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    db::MirrorDb database;
    BuildDb(&database, /*seed=*/10, /*rows=*/300);
    ASSERT_TRUE(database.Checkpoint(dir).ok());
  }
  db::MirrorDb database;
  // Seed the recycler before recovery; Recover must fence it out.
  const uint64_t stale_gen = database.recycler()->generation();
  database.recycler()->InsertResult(
      stale_gen, "q",
      std::make_shared<const std::vector<uint8_t>>(16, uint8_t{1}), 10);
  const uint64_t lg_before = database.load_generation();
  ASSERT_TRUE(database
                  .Recover(dir, dir + "/wal.log", db::RecoveryMode::kFull,
                           /*background_drain=*/false)
                  .ok());
  EXPECT_GT(database.load_generation(), lg_before);
  EXPECT_EQ(database.recycler()->LookupResult(stale_gen, "q"), nullptr);
  EXPECT_EQ(database.recycler()->stats().result_entries, 0u);
}

TEST(DaemonRecyclerTest, CoalescedFollowersRacingAWriterNeverGoStale) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/12, /*rows=*/1000);
  QueryServer server(&database);
  constexpr int kReaders = 3;
  constexpr int kAppends = 20;
  constexpr int kQueriesPerReader = 40;

  // The writer appends 1 row at a time; count(Cat) is append-monotone,
  // so any reply showing fewer rows than a previously observed reply —
  // on any connection — is a stale cache read.
  std::atomic<int64_t> watermark{1000};
  std::atomic<bool> failed{false};

  auto reader = [&](int idx) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    wire::WireClient client(std::move(client_end));
    if (!client.Hello("reader" + std::to_string(idx)).ok()) {
      failed.store(true);
      return;
    }
    moa::QueryContext ctx;
    for (int i = 0; i < kQueriesPerReader; ++i) {
      int64_t floor = watermark.load();  // BEFORE issuing the query
      auto reply = client.Query("count(select[THIS.rating >= 0](Cat));", ctx);
      if (!reply.ok()) {
        failed.store(true);
        return;
      }
      int64_t got = static_cast<int64_t>(reply.value().scalar.AsDouble());
      if (got < floor || got > 1000 + kAppends) {
        ADD_FAILURE() << "stale reply: count " << got << " below watermark "
                      << floor;
        failed.store(true);
        return;
      }
      // Anything this reader saw is a floor for everyone afterwards.
      int64_t seen = watermark.load();
      while (got > seen && !watermark.compare_exchange_weak(seen, got)) {
      }
    }
    client.Close();
  };

  auto writer = [&] {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    wire::WireClient client(std::move(client_end));
    if (!client.Hello("writer").ok()) {
      failed.store(true);
      return;
    }
    for (int i = 0; i < kAppends; ++i) {
      if (!client.Append("Cat.rating", monet::Column::MakeInts({i})).ok()) {
        failed.store(true);
        return;
      }
    }
    client.Close();
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer);
  for (int i = 0; i < kReaders; ++i) threads.emplace_back(reader, i);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  server.Shutdown();
}

}  // namespace
}  // namespace mirror::daemon
