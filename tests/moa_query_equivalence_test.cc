// Integration tests for the central correctness theorem of the Mirror
// architecture: the flattened (set-at-a-time, BAT-level) execution of a Moa
// query produces exactly the same result as the naive (tuple-at-a-time,
// object-level) interpretation. [BWK98] relies on this equivalence; every
// experiment in EXPERIMENTS.md does too.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "moa/database.h"
#include "moa/expr.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "moa/query_context.h"
#include "monet/mil.h"

namespace mirror::moa {
namespace {

using monet::Oid;

// Builds the paper's §3 library: annotated images.
void BuildTraditionalImgLib(Database* db, int num_images, uint64_t seed) {
  ASSERT_TRUE(db->Define("define TraditionalImgLib as "
                         "SET< TUPLE< Atomic<URL>: source, "
                         "CONTREP<Text>: annotation >>;")
                  .ok());
  static const char* const kWords[] = {
      "sunset", "beach",  "mountain", "forest", "river", "city",
      "night",  "bridge", "flower",   "garden", "snow",  "desert",
      "cloud",  "storm",  "harbor",   "island", "valley", "meadow"};
  base::Rng rng(seed);
  std::vector<MoaValue> objects;
  for (int i = 0; i < num_images; ++i) {
    std::vector<std::string> terms;
    int len = 3 + static_cast<int>(rng.Uniform(8));
    for (int t = 0; t < len; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("http://img/" + std::to_string(i)),
         MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(db->Load("TraditionalImgLib", std::move(objects)).ok());
}

std::map<Oid, double> BatToMap(const monet::Bat& bat) {
  std::map<Oid, double> out;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

struct BothResults {
  std::map<Oid, double> naive;
  std::map<Oid, double> flattened;
};

BothResults RunBoth(Database* db, const QueryContext& ctx,
                    const std::string& query_text, bool optimize) {
  BothResults out;
  auto expr = ParseExpr(query_text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();

  NaiveEvaluator naive(db, &ctx);
  auto naive_result = naive.Evaluate(expr.value());
  EXPECT_TRUE(naive_result.ok()) << naive_result.status().ToString();
  out.naive = BatToMap(*naive_result.value().bat);

  ExprPtr logical = expr.value();
  OptimizerReport report;
  if (optimize) logical = RewriteLogical(logical, &report);
  Flattener flattener(db, &ctx, FlattenOptions{.optimize = optimize});
  auto program = flattener.Compile(logical);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  monet::mil::Program prog = program.TakeValue();
  if (optimize) OptimizeMil(&prog, &report);
  monet::mil::Executor executor(db->catalog());
  auto run = executor.Run(prog);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_FALSE(run.value().is_scalar);
  out.flattened = BatToMap(*run.value().bat);
  return out;
}

void ExpectSameScores(const std::map<Oid, double>& a,
                      const std::map<Oid, double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (const auto& [oid, score] : a) {
    auto it = b.find(oid);
    ASSERT_NE(it, b.end()) << "missing oid " << oid;
    EXPECT_NEAR(score, it->second, 1e-9) << "oid " << oid;
  }
}

class PaperQueryTest : public ::testing::TestWithParam<bool> {};

TEST_P(PaperQueryTest, Section3RankingQueryMatchesAcrossEngines) {
  Database db;
  BuildTraditionalImgLib(&db, 200, /*seed=*/7);
  QueryContext ctx;
  ctx.BindTerms("query", {"sunset", "beach"});

  BothResults r = RunBoth(&db, ctx,
                          "map[sum(THIS)]("
                          "  map[getBL(THIS.annotation, query, stats)]("
                          "    TraditionalImgLib));",
                          /*optimize=*/GetParam());
  EXPECT_EQ(r.naive.size(), 200u);  // map is total
  ExpectSameScores(r.naive, r.flattened);
}

TEST_P(PaperQueryTest, RankingWithUnknownQueryTermsMatches) {
  Database db;
  BuildTraditionalImgLib(&db, 64, /*seed=*/13);
  QueryContext ctx;
  ctx.BindTerms("query", {"sunset", "zeppelin", "quixotic"});

  BothResults r = RunBoth(&db, ctx,
                          "map[sum(THIS)](map[getBL(THIS.annotation, query, "
                          "stats)](TraditionalImgLib));",
                          GetParam());
  ExpectSameScores(r.naive, r.flattened);
}

TEST_P(PaperQueryTest, WeightedQueryMatches) {
  Database db;
  BuildTraditionalImgLib(&db, 100, /*seed=*/23);
  QueryContext ctx;
  ctx.Bind("query", {{"sunset", 2.0}, {"mountain", 0.5}, {"city", 1.25}});

  BothResults r = RunBoth(&db, ctx,
                          "map[sum(THIS)](map[getBL(THIS.annotation, query, "
                          "stats)](TraditionalImgLib));",
                          GetParam());
  ExpectSameScores(r.naive, r.flattened);
}

TEST_P(PaperQueryTest, SelectionThenRankingMatches) {
  Database db;
  ASSERT_TRUE(db.Define("define Lib as SET< TUPLE< Atomic<URL>: source, "
                        "Atomic<int>: year, CONTREP<Text>: annotation >>;")
                  .ok());
  base::Rng rng(31);
  std::vector<MoaValue> objects;
  static const char* const kWords[] = {"sunset", "beach", "city", "night"};
  for (int i = 0; i < 150; ++i) {
    std::vector<std::string> terms;
    for (int t = 0; t < 5; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("http://img/" + std::to_string(i)),
         MoaValue::Int(1990 + static_cast<int64_t>(rng.Uniform(12))),
         MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(db.Load("Lib", std::move(objects)).ok());
  QueryContext ctx;
  ctx.BindTerms("query", {"sunset", "night"});

  BothResults r =
      RunBoth(&db, ctx,
              "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]("
              "  select[THIS.year >= 1995](Lib)));",
              GetParam());
  ExpectSameScores(r.naive, r.flattened);
  // Selection must actually restrict the result.
  EXPECT_LT(r.naive.size(), 150u);
  EXPECT_GT(r.naive.size(), 0u);
}

TEST_P(PaperQueryTest, ScalarMapAndSelectMatches) {
  Database db;
  ASSERT_TRUE(
      db.Define(
            "define T as SET< TUPLE< Atomic<int>: x, Atomic<dbl>: y >>;")
          .ok());
  base::Rng rng(5);
  std::vector<MoaValue> objects;
  for (int i = 0; i < 50; ++i) {
    objects.push_back(
        MoaValue::Tuple({MoaValue::Int(static_cast<int64_t>(i % 10)),
                         MoaValue::Dbl(rng.UniformDouble())}));
  }
  ASSERT_TRUE(db.Load("T", std::move(objects)).ok());
  QueryContext ctx;

  BothResults r = RunBoth(&db, ctx,
                          "map[THIS.x * 2 + 1](select[THIS.x < 7 and "
                          "THIS.x != 3](T));",
                          GetParam());
  ExpectSameScores(r.naive, r.flattened);
  for (const auto& [oid, v] : r.naive) {
    EXPECT_EQ(static_cast<int64_t>(v) % 2, 1);  // 2x+1 is odd
  }
}

TEST_P(PaperQueryTest, InferenceNetworkCombinatorsMatch) {
  // The InQuery combination operators at the Moa level: probabilistic
  // AND (pand), probabilistic OR (por), max and avg over getBL.
  Database db;
  BuildTraditionalImgLib(&db, 120, /*seed=*/41);
  QueryContext ctx;
  ctx.BindTerms("query", {"sunset", "mountain", "harbor"});
  for (const char* agg : {"avg", "max", "pand", "por"}) {
    SCOPED_TRACE(agg);
    BothResults r = RunBoth(
        &db, ctx,
        std::string("map[") + agg +
            "(THIS)](map[getBL(THIS.annotation, query, stats)]("
            "TraditionalImgLib));",
        GetParam());
    EXPECT_EQ(r.naive.size(), 120u);
    ExpectSameScores(r.naive, r.flattened);
    // pand/por produce probabilities.
    if (std::string(agg) == "pand" || std::string(agg) == "por") {
      for (const auto& [oid, score] : r.flattened) {
        EXPECT_GT(score, 0.0);
        EXPECT_LT(score, 1.0);
      }
    }
  }
}

TEST_P(PaperQueryTest, ProbabilisticAndIsMorePeakedThanOr) {
  // por dominates pand pointwise (OR of evidence >= AND of evidence).
  Database db;
  BuildTraditionalImgLib(&db, 80, /*seed=*/43);
  QueryContext ctx;
  ctx.BindTerms("query", {"sunset", "beach"});
  BothResults pand = RunBoth(
      &db, ctx,
      "map[pand(THIS)](map[getBL(THIS.annotation, query, stats)]("
      "TraditionalImgLib));",
      GetParam());
  BothResults por = RunBoth(
      &db, ctx,
      "map[por(THIS)](map[getBL(THIS.annotation, query, stats)]("
      "TraditionalImgLib));",
      GetParam());
  for (const auto& [oid, and_score] : pand.flattened) {
    EXPECT_GE(por.flattened.at(oid) + 1e-12, and_score) << "oid " << oid;
  }
}

INSTANTIATE_TEST_SUITE_P(OptimizeOnOff, PaperQueryTest,
                         ::testing::Values(true, false),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Optimized" : "Unoptimized";
                         });

}  // namespace
}  // namespace mirror::moa
