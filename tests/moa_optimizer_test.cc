// Optimizer tests: logical rewrites preserve results and reduce physical
// work (kernel op counts / tuples touched via the profiler).

#include <map>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "moa/database.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "monet/profiler.h"

namespace mirror::moa {
namespace {

using monet::Oid;

void BuildNumbers(Database* db, int n) {
  ASSERT_TRUE(
      db->Define("define N as SET<TUPLE<Atomic<int>: x, Atomic<int>: y>>;")
          .ok());
  std::vector<MoaValue> objects;
  for (int i = 0; i < n; ++i) {
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Int(i), MoaValue::Int(i % 13)}));
  }
  ASSERT_TRUE(db->Load("N", std::move(objects)).ok());
}

void BuildAnnotated(Database* db, int n, uint64_t seed) {
  ASSERT_TRUE(db->Define("define Lib as SET<TUPLE<Atomic<URL>: u, "
                         "CONTREP<Text>: a>>;")
                  .ok());
  base::Rng rng(seed);
  static const char* const kWords[] = {"sun", "sea", "sky", "rock", "tree",
                                       "bird", "sand", "wave"};
  std::vector<MoaValue> objects;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> terms;
    for (int t = 0; t < 6; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("u" + std::to_string(i)), MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(db->Load("Lib", std::move(objects)).ok());
}

TEST(LogicalRewriteTest, MapMapFusion) {
  auto expr = ParseExpr("map[THIS * 2](map[THIS.x + 1](N))").TakeValue();
  OptimizerReport report;
  ExprPtr rewritten = RewriteLogical(expr, &report);
  EXPECT_EQ(report.map_fusions, 1);
  EXPECT_EQ(rewritten->op, Expr::Op::kMap);
  // Source is now the base set, not another map.
  EXPECT_EQ(rewritten->children[1]->op, Expr::Op::kVarRef);
  EXPECT_EQ(rewritten->ToString(), "map[((THIS.x + 1) * 2)](N)");
}

TEST(LogicalRewriteTest, SelectSelectFusion) {
  auto expr =
      ParseExpr("select[THIS.x < 5](select[THIS.y > 1](N))").TakeValue();
  OptimizerReport report;
  ExprPtr rewritten = RewriteLogical(expr, &report);
  EXPECT_EQ(report.select_fusions, 1);
  EXPECT_EQ(rewritten->op, Expr::Op::kSelect);
  EXPECT_EQ(rewritten->children[0]->op, Expr::Op::kAnd);
  EXPECT_EQ(rewritten->children[1]->op, Expr::Op::kVarRef);
}

TEST(LogicalRewriteTest, GetBLMapsAreNotFused) {
  auto expr = ParseExpr(
                  "map[sum(THIS)](map[getBL(THIS.a, query, stats)](Lib))")
                  .TakeValue();
  OptimizerReport report;
  ExprPtr rewritten = RewriteLogical(expr, &report);
  EXPECT_EQ(report.map_fusions, 0);
  EXPECT_EQ(rewritten->ToString(), expr->ToString());
}

std::map<Oid, double> RunFlattened(const Database& db, const QueryContext& ctx,
                          const ExprPtr& expr, bool optimize,
                          monet::KernelStats* stats_out) {
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = optimize});
  ExprPtr logical = expr;
  OptimizerReport report;
  if (optimize) logical = RewriteLogical(logical, &report);
  auto program = flattener.Compile(logical);
  EXPECT_TRUE(program.ok()) << program.status().ToString();
  monet::mil::Program prog = program.TakeValue();
  if (optimize) OptimizeMil(&prog, &report);
  monet::ResetKernelStats();
  auto run = monet::mil::Executor(&db.catalog()).Run(prog);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  *stats_out = monet::SnapshotKernelStats();
  std::map<Oid, double> out;
  const monet::Bat& bat = *run.value().bat;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

TEST(OptimizerEffectTest, FusionReducesWorkAndPreservesResults) {
  Database db;
  BuildNumbers(&db, 2000);
  QueryContext ctx;
  // The conjunctive selection distinguishes the two translations: the
  // optimizer threads the first conjunct's candidates into the second
  // (sequential filtering), while the naive translation evaluates both
  // conjuncts over the full column and intersects afterwards.
  auto expr =
      ParseExpr("map[THIS * 3](map[THIS.x + 1]("
                "select[THIS.x < 100 and THIS.y < 6](N)))")
          .TakeValue();
  monet::KernelStats with_opt;
  monet::KernelStats without_opt;
  auto optimized = RunFlattened(db, ctx, expr, true, &with_opt);
  auto unoptimized = RunFlattened(db, ctx, expr, false, &without_opt);
  ASSERT_EQ(optimized.size(), unoptimized.size());
  for (const auto& [oid, v] : optimized) {
    EXPECT_DOUBLE_EQ(v, unoptimized.at(oid));
  }
  EXPECT_LE(with_opt.TotalOps(), without_opt.TotalOps());
  EXPECT_LT(with_opt.tuples_in, without_opt.tuples_in);
}

TEST(OptimizerEffectTest, InvertedGetBLTouchesFewerTuples) {
  Database db;
  BuildAnnotated(&db, 3000, /*seed=*/17);
  QueryContext ctx;
  ctx.BindTerms("query", {"sun", "wave"});
  auto expr = ParseExpr(
                  "map[sum(THIS)](map[getBL(THIS.a, query, stats)](Lib))")
                  .TakeValue();
  monet::KernelStats with_opt;
  monet::KernelStats without_opt;
  auto optimized = RunFlattened(db, ctx, expr, true, &with_opt);
  auto unoptimized = RunFlattened(db, ctx, expr, false, &without_opt);
  ASSERT_EQ(optimized.size(), unoptimized.size());
  for (const auto& [oid, v] : optimized) {
    EXPECT_NEAR(v, unoptimized.at(oid), 1e-9);
  }
  // The un-optimized plan computes beliefs for every posting; the
  // optimized plan restricts to the query's postings first.
  uint64_t belief_idx = static_cast<uint64_t>(monet::KernelOp::kBelief);
  EXPECT_EQ(with_opt.op_count[belief_idx], 1u);
  EXPECT_EQ(without_opt.op_count[belief_idx], 1u);
  EXPECT_LT(with_opt.tuples_in, without_opt.tuples_in);
}

TEST(MilCseTest, DuplicateLoadsCollapse) {
  Database db;
  BuildAnnotated(&db, 50, /*seed=*/3);
  QueryContext ctx;
  ctx.BindTerms("query", {"sun"});
  auto expr = ParseExpr(
                  "map[sum(THIS)](map[getBL(THIS.a, query, stats)](Lib))")
                  .TakeValue();
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = true});
  auto program = flattener.Compile(expr);
  ASSERT_TRUE(program.ok());
  monet::mil::Program prog = program.TakeValue();
  size_t before = prog.instrs().size();
  OptimizerReport report;
  OptimizeMil(&prog, &report);
  EXPECT_LE(prog.instrs().size(), before);
  // Re-execution after CSE+DCE still works.
  auto run = monet::mil::Executor(db.catalog()).Run(prog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run.value().bat->size(), 50u);
}

TEST(MilJoinFusionTest, SelectFedJoinInputsAreCounted) {
  // select → semijoin → join: both candidate-producing inputs of kJoin
  // count as join-input fusions (Materialize() calls the radix engine's
  // JoinCand avoids); a load-fed join input does not.
  namespace mil = monet::mil;
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "t.a";
  int a = emit(std::move(load));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.src0 = a;
  sel.cmp_op = monet::CmpOp::kGt;
  sel.imm0 = monet::Value::MakeInt(3);
  int selected = emit(std::move(sel));
  mil::Instr load2;
  load2.op = mil::OpCode::kLoadNamed;
  load2.name = "t.b";
  int b = emit(std::move(load2));
  mil::Instr join;
  join.op = mil::OpCode::kJoin;
  join.src0 = selected;  // candidate-pipeline producer: counts
  join.src1 = b;         // plain load: does not count
  p.set_result_reg(emit(std::move(join)));
  OptimizerReport report;
  OptimizeMil(&p, &report);
  EXPECT_EQ(report.join_input_fusions, 1);
  // Load → select → join(probe) are all shard-fanout-eligible.
  EXPECT_EQ(report.shard_fanouts, 2);
}

TEST(MilFoldRewriteTest, ScalarMaxCollapsesToFoldAndPreservesResults) {
  // The flattener spells scalar max/min as scalar.sum(topn(x, 1));
  // OptimizeMil must rewrite the pair into one scalar.fold and DCE the
  // orphaned topn, and the rewritten plan must still agree with the
  // unoptimized one on both engines.
  Database db;
  BuildNumbers(&db, 500);
  QueryContext ctx;
  auto expr =
      ParseExpr("max(map[THIS.x - THIS.y * 2](select[THIS.y < 9](N)))")
          .TakeValue();
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = true});
  auto program = flattener.Compile(expr);
  ASSERT_TRUE(program.ok());
  monet::mil::Program prog = program.TakeValue();
  auto count_op = [&](monet::mil::OpCode op) {
    int n = 0;
    for (const monet::mil::Instr& i : prog.instrs()) n += i.op == op ? 1 : 0;
    return n;
  };
  ASSERT_EQ(count_op(monet::mil::OpCode::kTopN), 1);
  ASSERT_EQ(count_op(monet::mil::OpCode::kScalarFold), 0);
  auto baseline = monet::mil::Executor(db.catalog()).Run(prog);
  ASSERT_TRUE(baseline.ok());

  OptimizerReport report;
  OptimizeMil(&prog, &report);
  EXPECT_EQ(report.fold_rewrites, 1);
  EXPECT_EQ(count_op(monet::mil::OpCode::kTopN), 0);       // DCE'd
  EXPECT_EQ(count_op(monet::mil::OpCode::kScalarSum), 0);  // rewritten
  EXPECT_EQ(count_op(monet::mil::OpCode::kScalarFold), 1);
  // The fold chain stays shard-eligible end to end.
  EXPECT_GT(report.shard_fanouts, 0);

  auto seq = monet::mil::Executor(db.catalog()).Run(prog);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(seq.value().is_scalar);
  EXPECT_DOUBLE_EQ(seq.value().scalar, baseline.value().scalar);
  monet::mil::ExecutionEngine engine(db.catalog());
  auto fused = engine.Run(prog);
  ASSERT_TRUE(fused.ok());
  EXPECT_DOUBLE_EQ(fused.value().scalar, baseline.value().scalar);
}

TEST(MilFoldRewriteTest, MultiUseAndDeeperTopNsAreLeftAlone) {
  namespace mil = monet::mil;
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "t.a";
  int a = emit(std::move(load));
  mil::Instr top;
  top.op = mil::OpCode::kTopN;
  top.src0 = a;
  top.n = 5;  // not a scalar extremum
  top.flag0 = true;
  int top5 = emit(std::move(top));
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = top5;
  p.set_result_reg(emit(std::move(sum)));
  OptimizerReport report;
  OptimizeMil(&p, &report);
  EXPECT_EQ(report.fold_rewrites, 0);
}

TEST(ShardFanoutDiagnosticTest, CountsShardableChains) {
  // select → semijoin → sum.per.head over loads: every link fans out;
  // a sort (fan-in) breaks the chain, so ops above it don't count.
  Database db;
  BuildNumbers(&db, 100);
  QueryContext ctx;
  auto expr = ParseExpr(
                  "map[THIS.x + 1](select[THIS.x > 5 and THIS.y < 4](N))")
                  .TakeValue();
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = true});
  auto program = flattener.Compile(expr);
  ASSERT_TRUE(program.ok());
  monet::mil::Program prog = program.TakeValue();
  OptimizerReport report;
  OptimizeMil(&prog, &report);
  // At minimum the two selections, the candidate-threaded semijoin and
  // the map fan out shard-locally.
  EXPECT_GE(report.shard_fanouts, 3);
}

}  // namespace
}  // namespace mirror::moa
