// Randomized equivalence testing: generates random databases and random
// queries from the supported grammar and checks that the naive
// interpreter, the legacy sequential executor and the candidate-vector
// ExecutionEngine — at 1 and 4 worker threads, with morsel splitting
// forced on via a tiny morsel size, with fused aggregation switched
// off, with the pre-radix legacy join, with radix joins forced onto
// multiple partitions, with the program fanned out over 2- and
// 4-way oid-range shardings of the catalog, with zone-map +
// top-k pruning switched off, and with the recycler's candidate cache
// on (every query re-run hot, interleaved with catalog mutations that
// fence it) — all produce identical results (an 11-way check): the
// architecture's central theorem, probed far beyond the hand-written
// cases. The getBL ranking patterns flatten
// to join-heavy MIL, so the join and shard modes run over genuine
// multi-join plans with both shard-local and broadcast build sides;
// a coin flip wraps them in a truncated topN ranking so the WAND
// pruning path is exercised against the naive top-k.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/str_util.h"
#include "moa/database.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "monet/bat_ops.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/recycler.h"

namespace mirror::moa {
namespace {

using monet::Oid;

constexpr const char* kWords[] = {"sun", "sea",  "sky",  "rock", "tree",
                                  "bird", "sand", "wave", "moss", "dune"};

void BuildRandomDatabase(Database* db, base::Rng* rng) {
  // Up to ~620 rows so the morsel-257 mode genuinely splits its scans
  // into several morsels (including a non-divisible remainder).
  int n = 20 + static_cast<int>(rng->Uniform(600));
  ASSERT_TRUE(db->Define("define S as SET<TUPLE<Atomic<URL>: u, "
                         "Atomic<int>: a, Atomic<int>: b, Atomic<dbl>: x, "
                         "CONTREP<Text>: doc>>;")
                  .ok());
  std::vector<MoaValue> objects;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> terms;
    int len = static_cast<int>(rng->Uniform(9));  // possibly empty
    for (int t = 0; t < len; ++t) {
      terms.push_back(kWords[rng->Uniform(std::size(kWords))]);
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("u" + std::to_string(i)),
         MoaValue::Int(rng->UniformInt(0, 20)),
         MoaValue::Int(rng->UniformInt(-5, 5)),
         MoaValue::Dbl(rng->UniformDouble(-1, 1)),
         MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(db->Load("S", std::move(objects)).ok());
}

// Rebuild most dense catalog BATs as a shorter base plus catalog-level
// insert chunks with IDENTICAL visible contents.  The naive interpreter
// evaluates over the materialized MOA objects and never sees the
// catalog, so every engine mode must read straight through the delta
// layers (merged views, shard layouts, zone maps rebuilt per
// generation) and still agree bit-for-bit with the oracle.
void IntroduceDeltaTails(Database* db, base::Rng* rng) {
  monet::Catalog* catalog = db->catalog();
  bool any = false;
  for (const std::string& name : catalog->Names()) {
    auto bat = catalog->Get(name);
    ASSERT_TRUE(bat.ok()) << name;
    const monet::Bat& full = *bat.value();
    const size_t n = full.size();
    if (!full.head().is_void() || full.head().void_base() != 0 || n < 2) {
      continue;  // only dense oid-headed BATs support insert tails
    }
    if (rng->Uniform(4) == 0) continue;  // leave some BATs delta-free
    // Re-Put a truncated base, then re-append the suffix as one or two
    // insert chunks so multi-chunk tails get exercised too.
    const size_t cut = 1 + rng->Uniform(n - 1);
    std::vector<size_t> splits = {cut, n};
    if (n - cut >= 2 && rng->Uniform(2) == 0) {
      splits = {cut, cut + 1 + rng->Uniform(n - cut - 1), n};
    }
    auto slice = [&](size_t lo, size_t hi) -> monet::Column {
      switch (full.tail().type()) {
        case monet::ValueType::kInt: {
          std::vector<int64_t> v;
          for (size_t i = lo; i < hi; ++i) v.push_back(full.tail().IntAt(i));
          return monet::Column::MakeInts(std::move(v));
        }
        case monet::ValueType::kDbl: {
          std::vector<double> v;
          for (size_t i = lo; i < hi; ++i) v.push_back(full.tail().DblAt(i));
          return monet::Column::MakeDbls(std::move(v));
        }
        case monet::ValueType::kOid: {
          std::vector<Oid> v;
          for (size_t i = lo; i < hi; ++i) v.push_back(full.tail().OidAt(i));
          return monet::Column::MakeOids(std::move(v));
        }
        case monet::ValueType::kStr: {
          std::vector<std::string> v;
          for (size_t i = lo; i < hi; ++i) {
            v.emplace_back(full.tail().StrAt(i));
          }
          return monet::Column::MakeStrs(v);
        }
        default:
          ADD_FAILURE() << "unexpected tail type for " << name;
          return monet::Column::MakeVoid(0, 0);
      }
    };
    catalog->Put(name, monet::Bat(monet::Column::MakeVoid(0, cut),
                                  slice(0, cut)));
    size_t lo = cut;
    for (size_t hi : splits) {
      if (hi <= lo) continue;
      ASSERT_TRUE(catalog->Append(name, slice(lo, hi)).ok()) << name;
      lo = hi;
    }
    ASSERT_TRUE(catalog->HasDeltas(name)) << name;
    auto visible = catalog->VisibleRows(name);
    ASSERT_TRUE(visible.ok()) << name;
    ASSERT_EQ(visible.value(), n) << name;
    any = true;
  }
  ASSERT_TRUE(any);
}

// Random predicate over the atomic fields.
std::string RandomPredicate(base::Rng* rng) {
  auto clause = [&]() {
    const char* fields[] = {"THIS.a", "THIS.b"};
    const char* cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    return base::StrFormat(
        "%s %s %lld", fields[rng->Uniform(2)], cmps[rng->Uniform(6)],
        static_cast<long long>(rng->UniformInt(-4, 18)));
  };
  switch (rng->Uniform(3)) {
    case 0:
      return clause();
    case 1:
      return clause() + " and " + clause();
    default:
      return clause() + " or " + clause();
  }
}

// Random query: either a scalar map chain or a getBL ranking pattern
// with a random combination operator, over an optionally selected /
// semijoined set. max/pand/por only flatten unweighted queries. When the
// ranking is wrapped in a truncating topN, `untruncated` receives the
// inner query (the full ranking) — the oracle for row-identity checks;
// it stays empty otherwise.
std::string RandomQuery(base::Rng* rng, bool weighted,
                        std::string* untruncated) {
  untruncated->clear();
  std::string source = "S";
  if (rng->Uniform(2) == 0) {
    source = "select[" + RandomPredicate(rng) + "](" + source + ")";
  }
  if (rng->Uniform(4) == 0) {
    source = "semijoin(" + source + ", select[" + RandomPredicate(rng) +
             "](S))";
  }
  if (rng->Uniform(2) == 0) {
    const char* weighted_safe[] = {"sum", "avg", "count"};
    const char* unweighted_only[] = {"sum", "avg", "count",
                                     "max", "pand", "por"};
    const char* agg = weighted ? weighted_safe[rng->Uniform(3)]
                               : unweighted_only[rng->Uniform(6)];
    std::string ranked = base::StrFormat(
        "map[%s(THIS)](map[getBL(THIS.doc, query, stats)](%s))", agg,
        source.c_str());
    // Ranking plans: wrapping the scored set in a descending topN couples
    // the WAND top-k threshold when the aggregate is a sole-consumer prob
    // combinator (pand/por), so the pruned engines run against the naive
    // oracle here. k spans under-, at- and over-sized results.
    if (rng->Uniform(2) == 0) {
      constexpr int64_t kTopKs[] = {1, 10, 257};
      *untruncated = ranked + ";";
      ranked = base::StrFormat("topN(%s, %lld)", ranked.c_str(),
                               static_cast<long long>(
                                   kTopKs[rng->Uniform(std::size(kTopKs))]));
    }
    return ranked + ";";
  }
  // Scalar arithmetic map (possibly composed).
  const char* bodies[] = {"THIS.a + THIS.b", "THIS.a * 2 + 1",
                          "THIS.x * THIS.x", "THIS.a - THIS.b * 3"};
  std::string query =
      base::StrFormat("map[%s](%s)", bodies[rng->Uniform(4)], source.c_str());
  if (rng->Uniform(2) == 0) {
    query = base::StrFormat("map[THIS * %lld + 1](%s)",
                            static_cast<long long>(rng->UniformInt(2, 4)),
                            query.c_str());
  }
  // Scalar aggregate over the mapped set: sum/count/avg flatten to the
  // fused scalar forms; max/min flatten via the topN(1) rewrite.
  if (rng->Uniform(3) == 0) {
    const char* scalar_aggs[] = {"sum", "count", "avg", "max", "min"};
    query = base::StrFormat("%s(%s)", scalar_aggs[rng->Uniform(5)],
                            query.c_str());
  }
  return query + ";";
}

std::map<Oid, double> RunNaive(const Database& db, const QueryContext& ctx,
                               const ExprPtr& expr) {
  NaiveEvaluator naive(&db, &ctx);
  auto result = naive.Evaluate(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<Oid, double> out;
  if (result.value().is_scalar) {
    // Scalar results compare as a single pseudo-row keyed by oid 0.
    out[0] = result.value().scalar.AsDouble();
    return out;
  }
  const monet::Bat& bat = *result.value().bat;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

/// How to run the flattened program.
struct EngineMode {
  const char* label;
  bool use_engine;  // false = legacy sequential Executor
  int num_threads = 1;
  size_t morsel_size = 64 * 1024;
  bool fuse_aggregates = true;
  bool morsel_joins = true;
  size_t radix_partitions = 0;
  size_t num_shards = 0;
  bool zone_maps = true;
  bool topk_prune = true;
  /// Consult/populate a test-scoped Recycler for select candidates.
  bool recycle = false;
};

constexpr EngineMode kEngineModes[] = {
    {"sequential-executor", false},
    {"engine-1-thread", true, 1},
    {"engine-4-threads", true, 4},
    // Tiny morsel size: every scan over the few-hundred-row base splits
    // into several pool-dispatched morsels, exercising fragment concat
    // and partial-aggregate merging on every query.
    {"engine-4-threads-morsel-257", true, 4, 257},
    // Fused aggregation off: aggregates materialize their candidate
    // views, isolating the fused path as the only remaining variable.
    {"engine-1-thread-unfused", true, 1, 64 * 1024, false},
    // Pre-radix joins: kJoin materializes its inputs and runs the
    // single-threaded legacy build/probe — the PR 2 engine, kept as a
    // code-path-independent join oracle.
    {"engine-4-threads-legacy-join", true, 4, 64 * 1024, true, false},
    // Radix joins forced onto 8 partitions with tiny morsels: the
    // multi-partition cluster/build/probe pipeline runs even over the
    // few-hundred-row bases of these databases.
    {"engine-4-threads-radix-parts-8", true, 4, 257, true, true, 8},
    // Shard-parallel scatter/gather over the catalog's oid-range
    // sharding: 2 shards under a real pool with tiny morsels (shard and
    // morsel fan-out nest), and 4 shards single-threaded (deterministic
    // sequential shard execution, with several empty or tiny fragments
    // on the smallest databases).
    {"engine-4-threads-2-shards", true, 4, 257, true, true, 0, 2},
    {"engine-1-thread-4-shards", true, 1, 64 * 1024, true, true, 0, 4},
    // Statistics pruning off: zone maps and the top-k threshold are the
    // only difference from the default modes above, so any disagreement
    // pins the blame on the pruning layer.
    // (The default-flag modes above all run pruned — zone maps and the
    // top-k threshold default on — including the sharded ones, where
    // threshold offers race across shards.)
    {"engine-4-threads-unpruned", true, 4, 257, true, true, 0, 0, false,
     false},
    // The recycler's candidate cache on, with tiny morsels: selects
    // replay or get seeded from previously cached candidate lists (the
    // main loop runs this mode hot — every query twice — and fences the
    // recycler around the mid-run catalog mutation).
    {"engine-4-threads-recycler", true, 4, 257, true, true, 0, 0, true,
     true, true},
};

std::map<Oid, double> RunFlat(const Database& db, const QueryContext& ctx,
                              const ExprPtr& expr, bool optimize,
                              const EngineMode& mode,
                              monet::mil::ExecutionContext* session,
                              monet::Recycler* recycler = nullptr,
                              int* eligible_selects = nullptr) {
  ExprPtr logical = expr;
  OptimizerReport report;
  if (optimize) logical = RewriteLogical(logical, &report);
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = optimize},
                      session);
  auto program = flattener.Compile(logical);
  if (!program.ok()) {
    ADD_FAILURE() << program.status().ToString()
                  << "\nquery: " << expr->ToString();
    return {};
  }
  monet::mil::Program prog = program.TakeValue();
  if (optimize) OptimizeMil(&prog, &report);
  if (optimize && eligible_selects != nullptr) {
    *eligible_selects += report.recycle_eligible_selects;
  }
  base::Result<monet::mil::RunResult> run =
      base::Status::Internal("unreachable");
  if (mode.use_engine) {
    monet::mil::ExecutionEngine engine(
        &db.catalog(),
        monet::mil::ExecOptions{.num_threads = mode.num_threads,
                                .use_candidates = true,
                                .morsel_size = mode.morsel_size,
                                .fuse_aggregates = mode.fuse_aggregates,
                                .morsel_joins = mode.morsel_joins,
                                .radix_partitions = mode.radix_partitions,
                                .num_shards = mode.num_shards,
                                .zone_maps = mode.zone_maps,
                                .topk_prune = mode.topk_prune,
                                .recycle = mode.recycle,
                                .recycler = mode.recycle ? recycler : nullptr,
                                .recycler_generation =
                                    (mode.recycle && recycler != nullptr)
                                        ? recycler->generation()
                                        : 0});
    run = engine.Run(prog, session);
  } else {
    run = monet::mil::Executor(&db.catalog()).Run(prog);
  }
  if (!run.ok()) {
    ADD_FAILURE() << mode.label << ": " << run.status().ToString()
                  << "\nquery: " << expr->ToString();
    return {};
  }
  std::map<Oid, double> out;
  if (run.value().is_scalar) {
    out[0] = run.value().scalar;
    return out;
  }
  const monet::Bat& bat = *run.value().bat;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, NaiveAndFlattenedAgreeOnRandomQueries) {
  base::Rng rng(GetParam());
  Database db;
  BuildRandomDatabase(&db, &rng);
  IntroduceDeltaTails(&db, &rng);
  QueryContext ctx;
  // Random query binding: 1-4 terms, some possibly unknown, random
  // weights on half the runs.
  std::vector<WeightedTerm> binding;
  int qlen = 1 + static_cast<int>(rng.Uniform(4));
  bool weighted = rng.Uniform(2) == 0;
  std::set<std::string> used;
  for (int t = 0; t < qlen; ++t) {
    std::string term = rng.Uniform(5) == 0
                           ? "unknownword"
                           : kWords[rng.Uniform(std::size(kWords))];
    // Duplicate terms merge into weights at resolution; the nonlinear
    // aggregates (max/pand/por) only flatten with unit weights, so the
    // unweighted runs sample distinct terms.
    if (!weighted && !used.insert(term).second) continue;
    binding.push_back(
        {term, weighted ? rng.UniformDouble(0.25, 3.0) : 1.0});
  }
  ctx.Bind("query", binding);

  monet::mil::ExecutionContext session;
  // One recycler shared by the whole seed: entries cached by query q are
  // live for query q+1, exactly as the server-wide instance behaves.
  monet::Recycler recycler;
  int eligible_selects = 0;
  for (int q = 0; q < 12; ++q) {
    if (q == 6) {
      // Mid-run catalog mutation: delta tails grow under the cached
      // candidate lists. The MirrorDb write path fences the recycler
      // around every mutation; this test holds the same contract, and
      // the remaining 6 queries prove the fence suffices — the hot
      // re-runs below would otherwise replay stale positions.
      IntroduceDeltaTails(&db, &rng);
      recycler.Fence();
    }
    std::string untruncated;
    std::string text = RandomQuery(&rng, weighted, &untruncated);
    SCOPED_TRACE(text);
    auto expr = ParseExpr(text);
    ASSERT_TRUE(expr.ok()) << expr.status().ToString();
    auto naive = RunNaive(db, ctx, expr.value());
    // A truncating topN turns sub-epsilon score inversions at the k'th
    // boundary into membership differences (engine scores differ from
    // naive in last ulps), so ranked queries compare rank-by-rank scores
    // plus row identity against the full untruncated naive ranking —
    // the engine-vs-engine bit-identity (stable ties included) is pinned
    // by the deterministic monet_zone_map_test cases instead.
    std::map<Oid, double> naive_full;
    if (!untruncated.empty()) {
      auto full_expr = ParseExpr(untruncated);
      ASSERT_TRUE(full_expr.ok()) << full_expr.status().ToString();
      naive_full = RunNaive(db, ctx, full_expr.value());
    }
    // Every engine mode, optimized and unoptimized, must agree with the
    // naive interpreter exactly (same result set, scores within epsilon).
    for (const EngineMode& mode : kEngineModes) {
      SCOPED_TRACE(mode.label);
      for (bool optimize : {true, false}) {
        auto flat = RunFlat(db, ctx, expr.value(), optimize, mode, &session,
                            &recycler, &eligible_selects);
        if (mode.recycle) {
          // Hot re-run: the second execution replays / is seeded by the
          // candidate lists the first one just published, and must be
          // EXACTLY the first result — same rows, same score bits.
          auto hot = RunFlat(db, ctx, expr.value(), optimize, mode,
                             &session, &recycler);
          ASSERT_EQ(flat.size(), hot.size()) << "optimize=" << optimize;
          for (const auto& [oid, score] : flat) {
            ASSERT_TRUE(hot.count(oid)) << "oid " << oid;
            ASSERT_EQ(hot.at(oid), score)
                << "recycled run diverged at oid " << oid;
          }
        }
        ASSERT_EQ(naive.size(), flat.size()) << "optimize=" << optimize;
        if (untruncated.empty()) {
          for (const auto& [oid, score] : naive) {
            ASSERT_TRUE(flat.count(oid))
                << "oid " << oid << " naive score " << score;
            EXPECT_NEAR(flat.at(oid), score, 1e-9)
                << "oid " << oid << " optimize=" << optimize;
          }
        } else {
          // Row identity: every returned row exists and carries its own
          // true score (no row can ride in on another's score).
          for (const auto& [oid, score] : flat) {
            ASSERT_TRUE(naive_full.count(oid)) << "oid " << oid;
            EXPECT_NEAR(naive_full.at(oid), score, 1e-9) << "oid " << oid;
          }
          // Ranking identity: the k'th-ranked score agrees at every rank.
          std::vector<double> want;
          std::vector<double> got;
          for (const auto& [oid, score] : naive) want.push_back(score);
          for (const auto& [oid, score] : flat) got.push_back(score);
          std::sort(want.rbegin(), want.rend());
          std::sort(got.rbegin(), got.rend());
          for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_NEAR(want[i], got[i], 1e-9) << "rank " << i;
          }
        }
      }
    }
  }
  // The session's flatten-level plan cache must have been exercised: the
  // three modes compile the same (expr, bindings) pairs.
  EXPECT_GT(session.plan_cache_hits(), 0u);
  // And whenever the optimizer reported recyclable selects, the hot
  // re-runs above must actually have reused cached candidate lists.
  if (eligible_selects > 0) {
    monet::RecyclerStats rs = recycler.stats();
    EXPECT_GT(rs.candidate_hits + rs.candidate_subsumption_hits, 0u)
        << eligible_selects << " recycle-eligible selects never hit";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 21));

// ---------------------------------------------------------------------------
// String-heap sharing edge cases across Concat/Gather: operator outputs
// must stay correct whether columns share one interned heap or come from
// distinct heaps, including through candidate materialization.

TEST(StringHeapEdgeCases, ConcatAcrossDistinctHeapsReinterns) {
  using monet::Bat;
  using monet::Value;
  Bat a = Bat::DenseStrs({"sun", "sea", "sun"});
  Bat b = Bat::DenseStrs({"sea", "dune", "sun"}, /*base=*/3);
  ASSERT_NE(a.tail().heap(), b.tail().heap());
  Bat c = monet::Concat(a, b);
  ASSERT_EQ(c.size(), 6u);
  // Re-interned into a's heap: equal strings have equal offsets again.
  EXPECT_EQ(c.tail().heap(), a.tail().heap());
  EXPECT_EQ(c.tail().StrAt(1), "sea");
  EXPECT_EQ(c.tail().StrAt(3), "sea");
  EXPECT_EQ(c.tail().StrOffsetAt(1), c.tail().StrOffsetAt(3));
  EXPECT_EQ(c.tail().StrOffsetAt(0), c.tail().StrOffsetAt(5));
  EXPECT_EQ(c.tail().StrAt(4), "dune");
  // Selection over the concatenated column sees both halves.
  Bat suns = monet::SelectEq(c, Value::MakeStr("sun"));
  ASSERT_EQ(suns.size(), 3u);
  EXPECT_EQ(suns.head().OidAt(0), 0u);
  EXPECT_EQ(suns.head().OidAt(1), 2u);
  EXPECT_EQ(suns.head().OidAt(2), 5u);
}

TEST(StringHeapEdgeCases, ConcatOfGatheredSharedHeapColumnsStaysShared) {
  using monet::Bat;
  using monet::CandidateList;
  using monet::Value;
  Bat base = Bat::DenseStrs({"sun", "sea", "sky", "sun", "sea", "dune"});
  // Two candidate materializations off the same base share its heap...
  Bat first = monet::Materialize(
      base, monet::SelectEqCand(base, Value::MakeStr("sun")));
  Bat second = monet::Materialize(
      base, monet::SelectEqCand(base, Value::MakeStr("sea")));
  EXPECT_EQ(first.tail().heap(), base.tail().heap());
  EXPECT_EQ(second.tail().heap(), base.tail().heap());
  // ...so their concat takes the shared-heap fast path (offset append).
  Bat merged = monet::Concat(first, second);
  EXPECT_EQ(merged.tail().heap(), base.tail().heap());
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged.tail().StrAt(0), "sun");
  EXPECT_EQ(merged.tail().StrAt(2), "sea");
  // Histogram over the merged column groups by heap offset correctly.
  Bat hist = monet::CountPerTailValue(merged);
  ASSERT_EQ(hist.size(), 2u);
  EXPECT_EQ(hist.head().StrAt(0), "sea");
  EXPECT_EQ(hist.tail().IntAt(0), 2);
  EXPECT_EQ(hist.head().StrAt(1), "sun");
  EXPECT_EQ(hist.tail().IntAt(1), 2);
}

TEST(StringHeapEdgeCases, SemiJoinAcrossDistinctHeapsComparesBySpelling) {
  using monet::Bat;
  // Same spellings, different heaps: the kernel must fall back to string
  // comparison (not offset comparison).
  Bat l = Bat::DenseStrs({"sun", "sea", "sky"});
  Bat r = Bat::DenseStrs({"sky", "sun"});
  ASSERT_NE(l.tail().heap(), r.tail().heap());
  Bat kept = monet::SemiJoinTail(l, r);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept.tail().StrAt(0), "sun");
  EXPECT_EQ(kept.tail().StrAt(1), "sky");
  // Candidate form agrees.
  Bat kept_late =
      monet::Materialize(l, monet::SemiJoinTailCand(l, r));
  ASSERT_EQ(kept_late.size(), 2u);
  EXPECT_EQ(kept_late.tail().StrAt(0), "sun");
  EXPECT_EQ(kept_late.tail().StrAt(1), "sky");
}

}  // namespace
}  // namespace mirror::moa
