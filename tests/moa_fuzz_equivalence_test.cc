// Randomized equivalence testing: generates random databases and random
// queries from the supported grammar and checks that the naive
// interpreter and the flattened engine (optimized and unoptimized)
// produce identical results — the architecture's central theorem, probed
// far beyond the hand-written cases.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/str_util.h"
#include "moa/database.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "monet/mil.h"

namespace mirror::moa {
namespace {

using monet::Oid;

constexpr const char* kWords[] = {"sun", "sea",  "sky",  "rock", "tree",
                                  "bird", "sand", "wave", "moss", "dune"};

void BuildRandomDatabase(Database* db, base::Rng* rng) {
  int n = 20 + static_cast<int>(rng->Uniform(180));
  ASSERT_TRUE(db->Define("define S as SET<TUPLE<Atomic<URL>: u, "
                         "Atomic<int>: a, Atomic<int>: b, Atomic<dbl>: x, "
                         "CONTREP<Text>: doc>>;")
                  .ok());
  std::vector<MoaValue> objects;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> terms;
    int len = static_cast<int>(rng->Uniform(9));  // possibly empty
    for (int t = 0; t < len; ++t) {
      terms.push_back(kWords[rng->Uniform(std::size(kWords))]);
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("u" + std::to_string(i)),
         MoaValue::Int(rng->UniformInt(0, 20)),
         MoaValue::Int(rng->UniformInt(-5, 5)),
         MoaValue::Dbl(rng->UniformDouble(-1, 1)),
         MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(db->Load("S", std::move(objects)).ok());
}

// Random predicate over the atomic fields.
std::string RandomPredicate(base::Rng* rng) {
  auto clause = [&]() {
    const char* fields[] = {"THIS.a", "THIS.b"};
    const char* cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    return base::StrFormat(
        "%s %s %lld", fields[rng->Uniform(2)], cmps[rng->Uniform(6)],
        static_cast<long long>(rng->UniformInt(-4, 18)));
  };
  switch (rng->Uniform(3)) {
    case 0:
      return clause();
    case 1:
      return clause() + " and " + clause();
    default:
      return clause() + " or " + clause();
  }
}

// Random query: either a scalar map chain or a getBL ranking pattern
// with a random combination operator, over an optionally selected /
// semijoined set. max/pand/por only flatten unweighted queries.
std::string RandomQuery(base::Rng* rng, bool weighted) {
  std::string source = "S";
  if (rng->Uniform(2) == 0) {
    source = "select[" + RandomPredicate(rng) + "](" + source + ")";
  }
  if (rng->Uniform(4) == 0) {
    source = "semijoin(" + source + ", select[" + RandomPredicate(rng) +
             "](S))";
  }
  if (rng->Uniform(2) == 0) {
    const char* weighted_safe[] = {"sum", "avg", "count"};
    const char* unweighted_only[] = {"sum", "avg", "count",
                                     "max", "pand", "por"};
    const char* agg = weighted ? weighted_safe[rng->Uniform(3)]
                               : unweighted_only[rng->Uniform(6)];
    return base::StrFormat(
        "map[%s(THIS)](map[getBL(THIS.doc, query, stats)](%s));", agg,
        source.c_str());
  }
  // Scalar arithmetic map (possibly composed).
  const char* bodies[] = {"THIS.a + THIS.b", "THIS.a * 2 + 1",
                          "THIS.x * THIS.x", "THIS.a - THIS.b * 3"};
  std::string query =
      base::StrFormat("map[%s](%s)", bodies[rng->Uniform(4)], source.c_str());
  if (rng->Uniform(2) == 0) {
    query = base::StrFormat("map[THIS * %lld + 1](%s)",
                            static_cast<long long>(rng->UniformInt(2, 4)),
                            query.c_str());
  }
  return query + ";";
}

std::map<Oid, double> RunNaive(const Database& db, const QueryContext& ctx,
                               const ExprPtr& expr) {
  NaiveEvaluator naive(&db, &ctx);
  auto result = naive.Evaluate(expr);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::map<Oid, double> out;
  const monet::Bat& bat = *result.value().bat;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

std::map<Oid, double> RunFlat(const Database& db, const QueryContext& ctx,
                              const ExprPtr& expr, bool optimize) {
  ExprPtr logical = expr;
  OptimizerReport report;
  if (optimize) logical = RewriteLogical(logical, &report);
  Flattener flattener(&db, &ctx, FlattenOptions{.optimize = optimize});
  auto program = flattener.Compile(logical);
  EXPECT_TRUE(program.ok())
      << program.status().ToString() << "\nquery: " << expr->ToString();
  monet::mil::Program prog = program.TakeValue();
  if (optimize) OptimizeMil(&prog, &report);
  auto run = monet::mil::Executor(&db.catalog()).Run(prog);
  EXPECT_TRUE(run.ok()) << run.status().ToString();
  std::map<Oid, double> out;
  const monet::Bat& bat = *run.value().bat;
  for (size_t i = 0; i < bat.size(); ++i) {
    out[bat.head().OidAt(i)] = bat.tail().NumAt(i);
  }
  return out;
}

class FuzzEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzEquivalenceTest, NaiveAndFlattenedAgreeOnRandomQueries) {
  base::Rng rng(GetParam());
  Database db;
  BuildRandomDatabase(&db, &rng);
  QueryContext ctx;
  // Random query binding: 1-4 terms, some possibly unknown, random
  // weights on half the runs.
  std::vector<WeightedTerm> binding;
  int qlen = 1 + static_cast<int>(rng.Uniform(4));
  bool weighted = rng.Uniform(2) == 0;
  std::set<std::string> used;
  for (int t = 0; t < qlen; ++t) {
    std::string term = rng.Uniform(5) == 0
                           ? "unknownword"
                           : kWords[rng.Uniform(std::size(kWords))];
    // Duplicate terms merge into weights at resolution; the nonlinear
    // aggregates (max/pand/por) only flatten with unit weights, so the
    // unweighted runs sample distinct terms.
    if (!weighted && !used.insert(term).second) continue;
    binding.push_back(
        {term, weighted ? rng.UniformDouble(0.25, 3.0) : 1.0});
  }
  ctx.Bind("query", binding);

  for (int q = 0; q < 12; ++q) {
    std::string text = RandomQuery(&rng, weighted);
    SCOPED_TRACE(text);
    auto expr = ParseExpr(text);
    ASSERT_TRUE(expr.ok()) << expr.status().ToString();
    auto naive = RunNaive(db, ctx, expr.value());
    auto optimized = RunFlat(db, ctx, expr.value(), true);
    auto unoptimized = RunFlat(db, ctx, expr.value(), false);
    ASSERT_EQ(naive.size(), optimized.size());
    ASSERT_EQ(naive.size(), unoptimized.size());
    for (const auto& [oid, score] : naive) {
      ASSERT_TRUE(optimized.count(oid)) << "oid " << oid;
      EXPECT_NEAR(optimized.at(oid), score, 1e-9) << "oid " << oid;
      EXPECT_NEAR(unoptimized.at(oid), score, 1e-9) << "oid " << oid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace mirror::moa
