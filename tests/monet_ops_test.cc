// Unit and property tests for the column-at-a-time operator set. The
// property tests (TEST_P sweeps over sizes and seeds) check algebraic
// identities against brute-force reference implementations.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "monet/bat_ops.h"
#include "monet/prob_ops.h"
#include "monet/profiler.h"

namespace mirror::monet {
namespace {

Bat RandomIntBat(size_t n, int64_t domain, base::Rng* rng, Oid base = 0) {
  std::vector<int64_t> tails(n);
  for (auto& t : tails) t = rng->UniformInt(0, domain - 1);
  return Bat::DenseInts(std::move(tails), base);
}

TEST(StructuralOpsTest, ReverseSwapsColumns) {
  Bat b = Bat::DenseInts({7, 8});
  Bat r = Reverse(b);
  EXPECT_EQ(r.head().type(), ValueType::kInt);
  EXPECT_EQ(r.tail().type(), ValueType::kOid);
  EXPECT_EQ(r.head().IntAt(0), 7);
  EXPECT_EQ(r.tail().OidAt(1), 1u);
}

TEST(StructuralOpsTest, MirrorPairsHeadWithItself) {
  Bat m = Mirror(Bat::DenseInts({5, 6}, /*base=*/3));
  EXPECT_EQ(m.head().OidAt(0), 3u);
  EXPECT_EQ(m.tail().OidAt(0), 3u);
}

TEST(StructuralOpsTest, MarkNumbersDensely) {
  Bat m = Mark(Bat::DenseInts({5, 6, 7}), /*base=*/100);
  EXPECT_TRUE(m.tail().is_void());
  EXPECT_EQ(m.tail().OidAt(2), 102u);
}

TEST(StructuralOpsTest, SliceClampsBounds) {
  Bat b = Bat::DenseInts({1, 2, 3, 4});
  EXPECT_EQ(Slice(b, 1, 2).size(), 2u);
  EXPECT_EQ(Slice(b, 3, 10).size(), 1u);
  EXPECT_EQ(Slice(b, 9, 1).size(), 0u);
}

TEST(StructuralOpsTest, ConcatKeepsDenseVoidHeads) {
  Bat a = Bat::DenseInts({1, 2}, 0);
  Bat b = Bat::DenseInts({3}, 2);
  Bat c = Concat(a, b);
  EXPECT_TRUE(c.head().is_void());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.tail().IntAt(2), 3);
}

TEST(StructuralOpsTest, ConcatMaterializesNonContiguousHeads) {
  Bat a = Bat::DenseInts({1}, 0);
  Bat b = Bat::DenseInts({2}, 5);
  Bat c = Concat(a, b);
  EXPECT_EQ(c.head().type(), ValueType::kOid);
  EXPECT_EQ(c.head().OidAt(1), 5u);
}

TEST(StructuralOpsTest, ConcatWidensMixedNumerics) {
  Bat a = Bat::DenseInts({1});
  Bat b = Bat::DenseDbls({2.5}, 1);
  Bat c = Concat(a, b);
  EXPECT_EQ(c.tail().type(), ValueType::kDbl);
  EXPECT_EQ(c.tail().DblAt(0), 1.0);
  EXPECT_EQ(c.tail().DblAt(1), 2.5);
}

TEST(StructuralOpsTest, ConcatMergesStringHeaps) {
  Bat a = Bat::DenseStrs({"x", "y"});
  Bat b = Bat::DenseStrs({"y", "z"}, 2);
  Bat c = Concat(a, b);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.tail().StrAt(2), "y");
  EXPECT_EQ(c.tail().StrAt(3), "z");
  // Interned into a's heap: equal strings share offsets.
  EXPECT_EQ(c.tail().StrOffsetAt(1), c.tail().StrOffsetAt(2));
}

TEST(SelectTest, SelectEqOnInts) {
  Bat b = Bat::DenseInts({5, 3, 5, 1});
  Bat s = SelectEq(b, Value::MakeInt(5));
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.head().OidAt(0), 0u);
  EXPECT_EQ(s.head().OidAt(1), 2u);
}

TEST(SelectTest, SelectEqOnStrings) {
  Bat b = Bat::DenseStrs({"cat", "dog", "cat"});
  EXPECT_EQ(SelectEq(b, Value::MakeStr("cat")).size(), 2u);
  EXPECT_EQ(SelectEq(b, Value::MakeStr("bird")).size(), 0u);
}

TEST(SelectTest, SelectRangeInclusivity) {
  Bat b = Bat::DenseInts({1, 2, 3, 4, 5});
  EXPECT_EQ(SelectRange(b, Value::MakeInt(2), Value::MakeInt(4), true, true)
                .size(),
            3u);
  EXPECT_EQ(SelectRange(b, Value::MakeInt(2), Value::MakeInt(4), false, false)
                .size(),
            1u);
}

TEST(SelectTest, SelectCmpAllOperators) {
  Bat b = Bat::DenseInts({1, 2, 3});
  EXPECT_EQ(SelectCmp(b, CmpOp::kLt, Value::MakeInt(2)).size(), 1u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kLe, Value::MakeInt(2)).size(), 2u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kGt, Value::MakeInt(2)).size(), 1u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kGe, Value::MakeInt(2)).size(), 2u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kNeq, Value::MakeInt(2)).size(), 2u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kEq, Value::MakeInt(2)).size(), 1u);
}

TEST(SelectTest, SelectCmpOnStrings) {
  Bat b = Bat::DenseStrs({"apple", "banana", "cherry"});
  EXPECT_EQ(SelectCmp(b, CmpOp::kGe, Value::MakeStr("banana")).size(), 2u);
  EXPECT_EQ(SelectCmp(b, CmpOp::kLt, Value::MakeStr("banana")).size(), 1u);
}

TEST(JoinTest, FetchJoinThroughVoidHead) {
  // l: (void -> oid refs), r: (void -> str values).
  Bat l = Bat::DenseOids({2, 0, 7});  // 7 out of range
  Bat r = Bat::DenseStrs({"a", "b", "c"});
  Bat j = Join(l, r);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.tail().StrAt(0), "c");
  EXPECT_EQ(j.tail().StrAt(1), "a");
}

TEST(JoinTest, HashJoinWithDuplicates) {
  Bat l(Column::MakeOids({10, 11}), Column::MakeInts({1, 2}));
  Bat r(Column::MakeInts({2, 1, 2}), Column::MakeStrs({"x", "y", "z"}));
  Bat j = Join(l, r);
  // 10->1 matches "y"; 11->2 matches "x" and "z".
  ASSERT_EQ(j.size(), 3u);
  EXPECT_EQ(j.head().OidAt(0), 10u);
  EXPECT_EQ(j.tail().StrAt(0), "y");
  EXPECT_EQ(j.head().OidAt(1), 11u);
}

TEST(JoinTest, StringKeysAcrossDifferentHeaps) {
  Bat l = Bat::DenseStrs({"cat", "dog"});
  Bat r(Column::MakeStrs({"dog", "bird"}), Column::MakeInts({1, 2}));
  Bat j = Join(l, r);
  ASSERT_EQ(j.size(), 1u);
  EXPECT_EQ(j.head().OidAt(0), 1u);
  EXPECT_EQ(j.tail().IntAt(0), 1);
}

TEST(SemiJoinTest, HeadMembership) {
  Bat l = Bat::DenseInts({10, 20, 30});        // heads 0,1,2
  Bat r(Column::MakeOids({2, 0}), Column::MakeInts({0, 0}));
  Bat s = SemiJoinHead(l, r);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.tail().IntAt(0), 10);
  EXPECT_EQ(s.tail().IntAt(1), 30);
  Bat a = AntiJoinHead(l, r);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.tail().IntAt(0), 20);
}

TEST(SemiJoinTest, TailMembership) {
  Bat l = Bat::DenseInts({5, 6, 7});
  Bat r = Bat::DenseInts({7, 5});
  Bat s = SemiJoinTail(l, r);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.tail().IntAt(0), 5);
  EXPECT_EQ(s.tail().IntAt(1), 7);
}

TEST(SortTest, SortAndTopN) {
  Bat b = Bat::DenseInts({3, 1, 2});
  Bat asc = SortByTail(b, true);
  EXPECT_EQ(asc.tail().IntAt(0), 1);
  EXPECT_EQ(asc.tail().IntAt(2), 3);
  Bat top = TopNByTail(b, 2, /*descending=*/true);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top.tail().IntAt(0), 3);
  EXPECT_EQ(top.tail().IntAt(1), 2);
}

TEST(SortTest, SortIsStable) {
  Bat b(Column::MakeOids({0, 1, 2, 3}), Column::MakeInts({1, 0, 1, 0}));
  Bat s = SortByTail(b, true);
  // Equal keys keep original head order.
  EXPECT_EQ(s.head().OidAt(0), 1u);
  EXPECT_EQ(s.head().OidAt(1), 3u);
  EXPECT_EQ(s.head().OidAt(2), 0u);
  EXPECT_EQ(s.head().OidAt(3), 2u);
}

TEST(UniqueTest, FirstOccurrenceWins) {
  Bat b(Column::MakeOids({9, 8, 7}), Column::MakeInts({1, 1, 2}));
  Bat u = UniqueTail(b);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u.head().OidAt(0), 9u);
  Bat h = UniqueHead(Bat(Column::MakeOids({5, 5, 6}),
                         Column::MakeInts({1, 2, 3})));
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.tail().IntAt(0), 1);
}

TEST(AggregateTest, GroupedAggregates) {
  Bat b(Column::MakeOids({1, 0, 1, 0, 2}),
        Column::MakeDbls({1.0, 2.0, 3.0, 4.0, 5.0}));
  Bat sum = SumPerHead(b);
  ASSERT_EQ(sum.size(), 3u);
  EXPECT_EQ(sum.head().OidAt(0), 0u);  // ascending heads
  EXPECT_DOUBLE_EQ(sum.tail().DblAt(0), 6.0);
  EXPECT_DOUBLE_EQ(sum.tail().DblAt(1), 4.0);
  EXPECT_DOUBLE_EQ(sum.tail().DblAt(2), 5.0);

  Bat count = CountPerHead(b);
  EXPECT_EQ(count.tail().IntAt(0), 2);
  EXPECT_EQ(count.tail().IntAt(2), 1);

  EXPECT_DOUBLE_EQ(MaxPerHead(b).tail().DblAt(1), 3.0);
  EXPECT_DOUBLE_EQ(MinPerHead(b).tail().DblAt(1), 1.0);
  EXPECT_DOUBLE_EQ(AvgPerHead(b).tail().DblAt(0), 3.0);
}

TEST(AggregateTest, ScalarAggregates) {
  Bat b = Bat::DenseInts({2, 4, 6});
  EXPECT_DOUBLE_EQ(ScalarSum(b), 12.0);
  EXPECT_EQ(ScalarCount(b), 3);
  EXPECT_EQ(ScalarMax(b).i(), 6);
  EXPECT_EQ(ScalarMin(b).i(), 2);
}

TEST(AggregateTest, HistogramOverTails) {
  Bat b = Bat::DenseStrs({"b", "a", "b", "b"});
  Bat h = CountPerTailValue(b);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h.head().StrAt(0), "a");  // lexicographic order
  EXPECT_EQ(h.tail().IntAt(0), 1);
  EXPECT_EQ(h.head().StrAt(1), "b");
  EXPECT_EQ(h.tail().IntAt(1), 3);
}

TEST(MultiplexTest, BinaryOpsIntClosure) {
  Bat a = Bat::DenseInts({1, 2});
  Bat b = Bat::DenseInts({3, 4});
  Bat sum = MapBinary(a, b, BinOp::kAdd);
  EXPECT_EQ(sum.tail().type(), ValueType::kInt);
  EXPECT_EQ(sum.tail().IntAt(1), 6);
  Bat div = MapBinary(a, b, BinOp::kDiv);
  EXPECT_EQ(div.tail().type(), ValueType::kDbl);
  EXPECT_DOUBLE_EQ(div.tail().DblAt(0), 1.0 / 3.0);
}

TEST(MultiplexTest, ScalarAndUnary) {
  Bat a = Bat::DenseDbls({1.0, 4.0});
  Bat plus = MapBinaryScalar(a, Value::MakeDbl(0.5), BinOp::kAdd);
  EXPECT_DOUBLE_EQ(plus.tail().DblAt(0), 1.5);
  Bat root = MapUnary(a, UnOp::kSqrt);
  EXPECT_DOUBLE_EQ(root.tail().DblAt(1), 2.0);
  Bat complement = MapUnary(a, UnOp::kOneMinus);
  EXPECT_DOUBLE_EQ(complement.tail().DblAt(0), 0.0);
}

TEST(MultiplexTest, FillTailConstants) {
  Bat b = Bat::DenseInts({1, 2, 3});
  Bat f = FillTail(b, Value::MakeDbl(0.4));
  EXPECT_EQ(f.size(), 3u);
  EXPECT_DOUBLE_EQ(f.tail().DblAt(2), 0.4);
  Bat s = FillTail(b, Value::MakeStr("x"));
  EXPECT_EQ(s.tail().StrAt(0), "x");
}

TEST(ProbOpsTest, BeliefBoundsAndMonotonicity) {
  // One posting per doc, increasing tf.
  Bat tf = Bat::DenseInts({1, 2, 8, 32});
  Bat df = Bat::DenseInts({4, 4, 4, 4});
  Bat len = Bat::DenseInts({40, 40, 40, 40});
  BeliefParams params;
  Bat bel = BeliefTfIdf(tf, df, len, /*num_docs=*/100, /*avg_doclen=*/40.0,
                        params);
  for (size_t i = 0; i < bel.size(); ++i) {
    double b = bel.tail().DblAt(i);
    EXPECT_GT(b, params.alpha);
    EXPECT_LT(b, 1.0);
    if (i > 0) EXPECT_GT(b, bel.tail().DblAt(i - 1)) << "tf monotone";
  }
}

TEST(ProbOpsTest, RareTermsScoreHigher) {
  Bat tf = Bat::DenseInts({3, 3});
  Bat df = Bat::DenseInts({2, 50});
  Bat len = Bat::DenseInts({40, 40});
  Bat bel = BeliefTfIdf(tf, df, len, 100, 40.0, BeliefParams());
  EXPECT_GT(bel.tail().DblAt(0), bel.tail().DblAt(1));
}

TEST(ProbOpsTest, ProdAndProbOrPerHead) {
  Bat b(Column::MakeOids({0, 0, 1}), Column::MakeDbls({0.5, 0.5, 0.3}));
  Bat prod = ProdPerHead(b);
  EXPECT_DOUBLE_EQ(prod.tail().DblAt(0), 0.25);
  EXPECT_DOUBLE_EQ(prod.tail().DblAt(1), 0.3);
  Bat por = ProbOrPerHead(b);
  EXPECT_DOUBLE_EQ(por.tail().DblAt(0), 0.75);
  EXPECT_DOUBLE_EQ(por.tail().DblAt(1), 0.3);
}

// ---------------------------------------------------------------------------
// Property tests against brute-force references.

struct PropertyParam {
  size_t size;
  uint64_t seed;
};

class OpsPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(OpsPropertyTest, ReverseIsInvolution) {
  base::Rng rng(GetParam().seed);
  Bat b = RandomIntBat(GetParam().size, 50, &rng);
  Bat rr = Reverse(Reverse(b));
  ASSERT_EQ(rr.size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(rr.head().OidAt(i), b.head().OidAt(i));
    EXPECT_EQ(rr.tail().IntAt(i), b.tail().IntAt(i));
  }
}

TEST_P(OpsPropertyTest, JoinMatchesBruteForce) {
  base::Rng rng(GetParam().seed);
  size_t n = GetParam().size;
  Bat l(Column::MakeOids([&] {
          std::vector<Oid> v(n);
          for (auto& x : v) x = rng.Uniform(100);
          return v;
        }()),
        Column::MakeInts([&] {
          std::vector<int64_t> v(n);
          for (auto& x : v) x = rng.UniformInt(0, 19);
          return v;
        }()));
  Bat r(Column::MakeInts([&] {
          std::vector<int64_t> v(n / 2 + 1);
          for (auto& x : v) x = rng.UniformInt(0, 19);
          return v;
        }()),
        Column::MakeDbls([&] {
          std::vector<double> v(n / 2 + 1);
          for (auto& x : v) x = rng.UniformDouble();
          return v;
        }()));
  Bat j = Join(l, r);
  // Brute force count.
  size_t expected = 0;
  for (size_t i = 0; i < l.size(); ++i) {
    for (size_t k = 0; k < r.size(); ++k) {
      if (l.tail().IntAt(i) == r.head().IntAt(k)) ++expected;
    }
  }
  EXPECT_EQ(j.size(), expected);
  // Every output pair must be a genuine match (spot-check by multiset).
  std::multiset<std::pair<Oid, int64_t>> seen;
  for (size_t i = 0; i < j.size(); ++i) {
    seen.insert({j.head().OidAt(i), 0});
  }
  EXPECT_EQ(seen.size(), j.size());
}

TEST_P(OpsPropertyTest, SemiPlusAntiJoinPartitionInput) {
  base::Rng rng(GetParam().seed);
  size_t n = GetParam().size;
  Bat l(Column::MakeOids([&] {
          std::vector<Oid> v(n);
          for (auto& x : v) x = rng.Uniform(30);
          return v;
        }()),
        Column::MakeInts(std::vector<int64_t>(n, 1)));
  Bat r(Column::MakeOids([&] {
          std::vector<Oid> v(n / 3 + 1);
          for (auto& x : v) x = rng.Uniform(30);
          return v;
        }()),
        Column::MakeInts(std::vector<int64_t>(n / 3 + 1, 1)));
  EXPECT_EQ(SemiJoinHead(l, r).size() + AntiJoinHead(l, r).size(), l.size());
}

TEST_P(OpsPropertyTest, SumPerHeadMatchesScalarSum) {
  base::Rng rng(GetParam().seed);
  size_t n = GetParam().size;
  std::vector<Oid> heads(n);
  std::vector<double> tails(n);
  for (size_t i = 0; i < n; ++i) {
    heads[i] = rng.Uniform(10);
    tails[i] = rng.UniformDouble();
  }
  Bat b(Column::MakeOids(heads), Column::MakeDbls(tails));
  Bat grouped = SumPerHead(b);
  EXPECT_NEAR(ScalarSum(grouped), ScalarSum(b), 1e-9);
}

TEST_P(OpsPropertyTest, SortPreservesMultiset) {
  base::Rng rng(GetParam().seed);
  Bat b = RandomIntBat(GetParam().size, 25, &rng);
  Bat sorted = SortByTail(b, true);
  std::multiset<int64_t> before;
  std::multiset<int64_t> after;
  for (size_t i = 0; i < b.size(); ++i) {
    before.insert(b.tail().IntAt(i));
    after.insert(sorted.tail().IntAt(i));
  }
  EXPECT_EQ(before, after);
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted.tail().IntAt(i - 1), sorted.tail().IntAt(i));
  }
}

TEST_P(OpsPropertyTest, SelectEqPartitionWithSelectNeq) {
  base::Rng rng(GetParam().seed);
  Bat b = RandomIntBat(GetParam().size, 8, &rng);
  Value v = Value::MakeInt(3);
  EXPECT_EQ(SelectEq(b, v).size() + SelectNeq(b, v).size(), b.size());
}

TEST_P(OpsPropertyTest, HistogramCountsSumToSize) {
  base::Rng rng(GetParam().seed);
  Bat b = RandomIntBat(GetParam().size, 12, &rng);
  Bat h = CountPerTailValue(b);
  int64_t total = 0;
  for (size_t i = 0; i < h.size(); ++i) total += h.tail().IntAt(i);
  EXPECT_EQ(total, static_cast<int64_t>(b.size()));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OpsPropertyTest,
    ::testing::Values(PropertyParam{0, 1}, PropertyParam{1, 2},
                      PropertyParam{17, 3}, PropertyParam{256, 4},
                      PropertyParam{1000, 5}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return "n" + std::to_string(info.param.size) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(ProfilerTest, OpsAreCounted) {
  ResetKernelStats();
  Bat b = Bat::DenseInts({1, 2, 3});
  SelectEq(b, Value::MakeInt(2));
  Reverse(b);
  KernelStats stats = SnapshotKernelStats();
  EXPECT_EQ(stats.op_count[static_cast<int>(KernelOp::kSelect)], 1u);
  EXPECT_EQ(stats.op_count[static_cast<int>(KernelOp::kReverse)], 1u);
  EXPECT_GE(stats.TotalOps(), 2u);
  EXPECT_NE(stats.ToString().find("select=1"), std::string::npos);
}

TEST(ProfilerTest, CandidateAndMaterializationCountersTrack) {
  ResetKernelStats();
  Bat b = Bat::DenseInts({1, 2, 3, 4, 5});
  CandidateList c = SelectCmpCand(b, CmpOp::kGt, Value::MakeInt(2));
  Materialize(b, c);
  KernelStats stats = SnapshotKernelStats();
  EXPECT_EQ(stats.candidate_ops, 1u);
  EXPECT_EQ(stats.materializations, 1u);
  EXPECT_EQ(stats.materialized_tuples, 3u);
  EXPECT_EQ(stats.op_count[static_cast<int>(KernelOp::kMaterialize)], 1u);
}

// ---------------------------------------------------------------------------
// Candidate lists and candidate-vector kernels.

TEST(CandidateListTest, DenseAndSparseBasics) {
  CandidateList all = CandidateList::All(5);
  EXPECT_TRUE(all.is_dense());
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(all.PositionAt(3), 3u);

  CandidateList sparse = CandidateList::FromPositions({1, 4, 7});
  EXPECT_FALSE(sparse.is_dense());
  EXPECT_EQ(sparse.size(), 3u);
  EXPECT_EQ(sparse.PositionAt(2), 7u);

  CandidateList inter = sparse.Intersect(CandidateList::Dense(2, 10));
  ASSERT_EQ(inter.size(), 2u);
  EXPECT_EQ(inter.PositionAt(0), 4u);
  EXPECT_EQ(inter.PositionAt(1), 7u);

  CandidateList uni =
      sparse.Union(CandidateList::FromPositions({2, 4}));
  ASSERT_EQ(uni.size(), 4u);
  EXPECT_EQ(uni.PositionAt(0), 1u);
  EXPECT_EQ(uni.PositionAt(1), 2u);

  CandidateList sliced = sparse.Sliced(1, 5);
  ASSERT_EQ(sliced.size(), 2u);
  EXPECT_EQ(sliced.PositionAt(0), 4u);
}

TEST(CandidateOpsTest, SelectCandMatchesMaterializingSelect) {
  base::Rng rng(99);
  Bat b = RandomIntBat(500, 40, &rng);
  Value lo = Value::MakeInt(10);
  Bat classic = SelectCmp(b, CmpOp::kGe, lo);
  Bat late = Materialize(b, SelectCmpCand(b, CmpOp::kGe, lo));
  ASSERT_EQ(classic.size(), late.size());
  for (size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic.head().OidAt(i), late.head().OidAt(i));
    EXPECT_EQ(classic.tail().IntAt(i), late.tail().IntAt(i));
  }
}

TEST(CandidateOpsTest, ChainedCandidatesMatchChainedSelects) {
  base::Rng rng(7);
  Bat b = RandomIntBat(800, 50, &rng);
  // Classic: materialize after every operator.
  Bat step1 = SelectCmp(b, CmpOp::kGe, Value::MakeInt(10));
  Bat step2 = SelectCmp(step1, CmpOp::kLe, Value::MakeInt(35));
  Bat classic = SelectNeq(step2, Value::MakeInt(20));
  // Late: one candidate pipeline, one copy.
  CandidateList c1 = SelectCmpCand(b, CmpOp::kGe, Value::MakeInt(10));
  CandidateList c2 = SelectCmpCand(b, CmpOp::kLe, Value::MakeInt(35), &c1);
  CandidateList c3 = SelectNeqCand(b, Value::MakeInt(20), &c2);
  Bat late = Materialize(b, c3);
  ASSERT_EQ(classic.size(), late.size());
  for (size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic.head().OidAt(i), late.head().OidAt(i));
    EXPECT_EQ(classic.tail().IntAt(i), late.tail().IntAt(i));
  }
}

TEST(CandidateOpsTest, SemiAndAntiJoinCandMatchMaterializing) {
  Bat l = Bat(Column::MakeOids({0, 1, 2, 3, 4, 5}),
              Column::MakeInts({10, 11, 12, 13, 14, 15}));
  Bat r = Bat(Column::MakeOids({1, 3, 5, 9}),
              Column::MakeInts({0, 0, 0, 0}));
  Bat classic_semi = SemiJoinHead(l, r);
  Bat late_semi = Materialize(l, SemiJoinHeadCand(l, r));
  ASSERT_EQ(classic_semi.size(), late_semi.size());
  for (size_t i = 0; i < classic_semi.size(); ++i) {
    EXPECT_EQ(classic_semi.head().OidAt(i), late_semi.head().OidAt(i));
  }
  Bat classic_anti = AntiJoinHead(l, r);
  Bat late_anti = Materialize(l, AntiJoinHeadCand(l, r));
  ASSERT_EQ(classic_anti.size(), late_anti.size());
  for (size_t i = 0; i < classic_anti.size(); ++i) {
    EXPECT_EQ(classic_anti.head().OidAt(i), late_anti.head().OidAt(i));
  }
  // Candidate domain composes: semijoin after a selection.
  CandidateList sel = SelectCmpCand(l, CmpOp::kGe, Value::MakeInt(12));
  Bat late_chain = Materialize(l, SemiJoinHeadCand(l, r, &sel));
  Bat classic_chain = SemiJoinHead(SelectCmp(l, CmpOp::kGe, Value::MakeInt(12)), r);
  ASSERT_EQ(classic_chain.size(), late_chain.size());
  for (size_t i = 0; i < classic_chain.size(); ++i) {
    EXPECT_EQ(classic_chain.head().OidAt(i), late_chain.head().OidAt(i));
    EXPECT_EQ(classic_chain.tail().IntAt(i), late_chain.tail().IntAt(i));
  }
}

TEST(CandidateOpsTest, StringSelectionOverCandidates) {
  Bat b = Bat::DenseStrs({"sun", "sea", "sun", "sky", "sun", "sea"});
  CandidateList c1 = SelectNeqCand(b, Value::MakeStr("sea"));
  CandidateList c2 = SelectEqCand(b, Value::MakeStr("sun"), &c1);
  Bat late = Materialize(b, c2);
  ASSERT_EQ(late.size(), 3u);
  EXPECT_EQ(late.head().OidAt(0), 0u);
  EXPECT_EQ(late.head().OidAt(1), 2u);
  EXPECT_EQ(late.head().OidAt(2), 4u);
  // The materialized result still shares the base BAT's string heap.
  EXPECT_EQ(late.tail().heap(), b.tail().heap());
}

// ---------------------------------------------------------------------------
// TopN: bounded partial sort must reproduce the stable full-sort prefix.

TEST(TopNTest, TiesBreakTowardEarlierRowsLikeStableSort) {
  // Duplicate tails: 5 at positions 0,2,4 and 3 at positions 1,5.
  Bat b = Bat(Column::MakeOids({0, 1, 2, 3, 4, 5}),
              Column::MakeInts({5, 3, 5, 1, 5, 3}));
  Bat top3 = TopNByTail(b, 3, /*descending=*/true);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3.head().OidAt(0), 0u);
  EXPECT_EQ(top3.head().OidAt(1), 2u);
  EXPECT_EQ(top3.head().OidAt(2), 4u);
  // Crossing a tie boundary: top-4 takes the earlier of the two 3s.
  Bat top4 = TopNByTail(b, 4, /*descending=*/true);
  ASSERT_EQ(top4.size(), 4u);
  EXPECT_EQ(top4.head().OidAt(3), 1u);
  // Ascending ties as well.
  Bat bottom3 = TopNByTail(b, 3, /*descending=*/false);
  ASSERT_EQ(bottom3.size(), 3u);
  EXPECT_EQ(bottom3.head().OidAt(0), 3u);
  EXPECT_EQ(bottom3.head().OidAt(1), 1u);
  EXPECT_EQ(bottom3.head().OidAt(2), 5u);
}

TEST(TopNTest, BoundedPathMatchesFullSortPrefixOnRandomData) {
  base::Rng rng(4242);
  Bat b = RandomIntBat(2000, 25, &rng);  // dense duplicates
  for (size_t k : {1u, 7u, 100u, 1999u, 2000u, 5000u}) {
    Bat top = TopNByTail(b, k, /*descending=*/true);
    Bat full = SortByTail(b, /*ascending=*/false);
    ASSERT_EQ(top.size(), std::min<size_t>(k, b.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top.head().OidAt(i), full.head().OidAt(i)) << "k=" << k;
      EXPECT_EQ(top.tail().IntAt(i), full.tail().IntAt(i)) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace mirror::monet
