// Server-side observability: the TRACE frame round trip (per-session
// query traces as BAT tables), the latency-histogram bucket layout and
// percentile math, the STATS reset variant, the slow-query ring, and the
// Prometheus text rendering — daemon/wire.h, daemon/latency_histogram.h,
// daemon/query_server.h.

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "daemon/latency_histogram.h"
#include "daemon/query_server.h"
#include "daemon/wire.h"
#include "daemon/wire_client.h"
#include "mirror/mirror_db.h"
#include "moa/moa_value.h"
#include "moa/query_context.h"

namespace mirror::daemon {
namespace {

namespace wire = mirror::daemon::wire;

constexpr const char* kWords[] = {"sun",  "sea",  "sky",  "rock", "tree",
                                  "bird", "sand", "wave", "moss", "dune"};

/// A catalog set for selection/aggregation queries plus an annotated
/// library big enough that a ranking query takes well over a
/// millisecond (the slow-query tests key off a 1 ms threshold).
void BuildDb(db::MirrorDb* database, int catalog_rows, int lib_docs) {
  base::Rng rng(7);
  ASSERT_TRUE(database
                  ->Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, Atomic<int>: rating, "
                           "Atomic<int>: ref>>;")
                  .ok());
  std::vector<moa::MoaValue> rows;
  rows.reserve(static_cast<size_t>(catalog_rows));
  for (int i = 0; i < catalog_rows; ++i) {
    rows.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("u" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::Int(rng.UniformInt(0, 1000)),
         moa::MoaValue::Int(rng.UniformInt(0, catalog_rows - 1))}));
  }
  ASSERT_TRUE(database->Load("Cat", std::move(rows)).ok());
  ASSERT_TRUE(database
                  ->Define("define Lib as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, CONTREP<Text>: doc>>;")
                  .ok());
  std::vector<moa::MoaValue> docs;
  docs.reserve(static_cast<size_t>(lib_docs));
  for (int i = 0; i < lib_docs; ++i) {
    std::vector<std::string> terms;
    int len = 6 + static_cast<int>(rng.Uniform(8));
    for (int t = 0; t < len; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    docs.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("d" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(database->Load("Lib", std::move(docs)).ok());
}

db::MirrorDb* SharedDb() {
  static db::MirrorDb* database = [] {
    auto* d = new db::MirrorDb();
    BuildDb(d, /*catalog_rows=*/30000, /*lib_docs=*/3000);
    return d;
  }();
  return database;
}

// ---------------------------------------------------------------------------
// Histogram bucket layout and percentile math.

TEST(LatencyHistogramTest, BucketBoundsAreStrictlyIncreasing) {
  EXPECT_EQ(wire::HistogramBucketBound(0), 0u);
  EXPECT_EQ(wire::HistogramBucketBound(1), 1u);
  EXPECT_EQ(wire::HistogramBucketBound(2), 2u);
  EXPECT_EQ(wire::HistogramBucketBound(3), 3u);
  EXPECT_EQ(wire::HistogramBucketBound(4), 4u);
  EXPECT_EQ(wire::HistogramBucketBound(5), 6u);
  EXPECT_EQ(wire::HistogramBucketBound(6), 8u);
  EXPECT_EQ(wire::HistogramBucketBound(7), 12u);
  for (size_t i = 1; i + 1 < wire::kHistogramBuckets; ++i) {
    EXPECT_GT(wire::HistogramBucketBound(i), wire::HistogramBucketBound(i - 1))
        << "bucket " << i;
  }
  EXPECT_EQ(wire::HistogramBucketBound(wire::kHistogramBuckets - 1),
            UINT64_MAX);
}

TEST(LatencyHistogramTest, BucketIndexInvertsTheBounds) {
  for (size_t i = 0; i + 1 < wire::kHistogramBuckets; ++i) {
    const uint64_t bound = wire::HistogramBucketBound(i);
    EXPECT_EQ(wire::HistogramBucketIndex(bound), i) << "at bound " << bound;
    if (i > 0) {
      EXPECT_EQ(wire::HistogramBucketIndex(bound - 1),
                bound - 1 <= wire::HistogramBucketBound(i - 1) ? i - 1 : i);
    }
  }
  // Past the last finite bound everything lands in the overflow bucket.
  const uint64_t last =
      wire::HistogramBucketBound(wire::kHistogramBuckets - 2);
  EXPECT_EQ(wire::HistogramBucketIndex(last + 1),
            wire::kHistogramBuckets - 1);
  EXPECT_EQ(wire::HistogramBucketIndex(UINT64_MAX),
            wire::kHistogramBuckets - 1);
}

TEST(LatencyHistogramTest, RecordSnapshotPercentiles) {
  LatencyHistogram h;
  // 100 samples at 10 us, 10 at 1000 us: p50 sits in the 10 us bucket,
  // p99 in the 1000 us one, and max is exact.
  for (int i = 0; i < 100; ++i) h.Record(10);
  for (int i = 0; i < 10; ++i) h.Record(1000);
  wire::HistogramSummary s = h.Snapshot();
  EXPECT_EQ(s.count, 110u);
  EXPECT_EQ(s.sum_micros, 100u * 10 + 10u * 1000);
  EXPECT_EQ(s.max_micros, 1000u);
  EXPECT_GT(s.p50_micros, 0u);
  EXPECT_LE(s.p50_micros, 12u);
  EXPECT_GT(s.p99_micros, 500u);
  EXPECT_LE(s.p99_micros, 1000u);
  EXPECT_GE(s.p90_micros, s.p50_micros);
  EXPECT_GE(s.p99_micros, s.p90_micros);

  h.Reset();
  s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99_micros, 0u);
  EXPECT_EQ(s.max_micros, 0u);
}

TEST(LatencyHistogramTest, EmptyHistogramPercentileIsZero) {
  wire::HistogramSummary empty;
  EXPECT_EQ(wire::HistogramPercentile(empty, 0.5), 0u);
}

// ---------------------------------------------------------------------------
// Codec round trips for the new payloads.

TEST(ObservabilityCodecTest, StatsRequestRoundTrip) {
  // The empty payload (every pre-reset client) means "no reset".
  auto empty = wire::DecodeStatsRequest({});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().reset);
  wire::StatsRequest req;
  req.reset = true;
  auto decoded = wire::DecodeStatsRequest(wire::EncodeStatsRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().reset);
}

TEST(ObservabilityCodecTest, StatsReplyCarriesHistogramsAndSlowQueries) {
  wire::StatsReply reply;
  reply.server.requests = 5;
  reply.server.latency_query.total.count = 3;
  reply.server.latency_query.total.p99_micros = 777;
  reply.server.latency_query.total.buckets[7] = 3;
  reply.server.latency_delete.queue_wait.count = 1;
  wire::SlowQueryEntry slow;
  slow.session_id = 9;
  slow.total_micros = 120000;
  slow.exec_micros = 110000;
  slow.query = "count(Cat);";
  slow.bindings_key = "q=sun";
  slow.counters = "tuples_in=42";
  reply.server.slow_queries.push_back(slow);
  wire::SessionStatsEntry session;
  session.session_id = 4;
  session.client_name = "c";
  session.options.trace = true;
  reply.sessions.push_back(session);

  auto decoded = wire::DecodeStatsReply(wire::EncodeStatsReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().server.latency_query.total.count, 3u);
  EXPECT_EQ(decoded.value().server.latency_query.total.p99_micros, 777u);
  EXPECT_EQ(decoded.value().server.latency_query.total.buckets[7], 3u);
  EXPECT_EQ(decoded.value().server.latency_delete.queue_wait.count, 1u);
  ASSERT_EQ(decoded.value().server.slow_queries.size(), 1u);
  EXPECT_EQ(decoded.value().server.slow_queries[0].query, "count(Cat);");
  EXPECT_EQ(decoded.value().server.slow_queries[0].bindings_key, "q=sun");
  EXPECT_EQ(decoded.value().server.slow_queries[0].total_micros, 120000u);
  ASSERT_EQ(decoded.value().sessions.size(), 1u);
  EXPECT_TRUE(decoded.value().sessions[0].options.trace);
}

TEST(ObservabilityCodecTest, TraceReplyRoundTrip) {
  wire::TraceReply reply;
  reply.query_seq = 12;
  reply.rows = 2;
  reply.names = {"instr", "opcode"};
  reply.cols.push_back(monet::Bat::DenseInts({0, 1}));
  reply.cols.push_back(monet::Bat::DenseStrs({"select.eq", "sum"}));
  auto decoded = wire::DecodeTraceReply(wire::EncodeTraceReply(reply));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().query_seq, 12u);
  EXPECT_EQ(decoded.value().rows, 2u);
  ASSERT_EQ(decoded.value().names.size(), 2u);
  ASSERT_EQ(decoded.value().cols.size(), 2u);
  EXPECT_EQ(decoded.value().cols[0].tail().IntAt(1), 1);
  EXPECT_EQ(decoded.value().cols[1].tail().StrAt(0), "select.eq");
}

TEST(ObservabilityCodecTest, PrometheusRenderingCoversClassesAndStages) {
  wire::StatsReply reply;
  reply.server.requests = 2;
  reply.server.latency_query.total.count = 2;
  reply.server.latency_query.total.sum_micros = 30;
  reply.server.latency_query.total.buckets[5] = 2;
  std::string text = wire::RenderPrometheusText(reply);
  EXPECT_NE(text.find("mirror_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("mirror_request_latency_microseconds_count"
                      "{class=\"query\",stage=\"total\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("{class=\"delete\",stage=\"queue_wait\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// TRACE over the wire.

/// Finds a named column in a TRACE reply; null when absent.
const monet::Bat* TraceCol(const wire::TraceReply& t, const std::string& n) {
  for (size_t i = 0; i < t.names.size(); ++i) {
    if (t.names[i] == n) return &t.cols[i];
  }
  return nullptr;
}

TEST(TraceWireTest, ShardedTracedQueryReturnsFullInstructionCoverage) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("tracer").ok());

  // Before any traced query: full schema, zero rows.
  auto before = client.Trace();
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before.value().rows, 0u);
  EXPECT_GE(before.value().names.size(), 13u);

  auto set = client.Set({{"exec.trace", 1}, {"exec.recycle", 0},
                         {"num_shards", 2}, {"num_threads", 2}});
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_TRUE(set.value().trace);

  moa::QueryContext ctx;
  auto result =
      client.Query("count(select[THIS.rating >= 500](Cat));", ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto trace = client.Trace();
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  const wire::TraceReply& t = trace.value();
  ASSERT_GT(t.rows, 0u);
  ASSERT_EQ(t.names.size(), t.cols.size());
  for (const monet::Bat& col : t.cols) {
    ASSERT_EQ(col.size(), t.rows) << "ragged trace table";
  }
  const monet::Bat* instr = TraceCol(t, "instr");
  const monet::Bat* kind = TraceCol(t, "kind");
  const monet::Bat* shard = TraceCol(t, "shard");
  const monet::Bat* thread = TraceCol(t, "thread");
  const monet::Bat* dur = TraceCol(t, "dur_ns");
  ASSERT_NE(instr, nullptr);
  ASSERT_NE(kind, nullptr);
  ASSERT_NE(shard, nullptr);
  ASSERT_NE(thread, nullptr);
  ASSERT_NE(dur, nullptr);

  // Instruction spans must cover a contiguous instruction range exactly
  // once per (instruction, shard) execution site, with shard ids from
  // the session's 2-way sharding only.
  std::set<std::pair<int64_t, int64_t>> sites;
  std::set<int64_t> instrs_seen;
  std::set<int64_t> shards_seen;
  std::set<int64_t> threads_seen;
  int64_t max_instr = -1;
  for (size_t i = 0; i < t.rows; ++i) {
    EXPECT_GE(dur->tail().IntAt(i), 0);
    threads_seen.insert(thread->tail().IntAt(i));
    if (kind->tail().IntAt(i) != 0) continue;  // morsel span
    const int64_t ins = instr->tail().IntAt(i);
    const int64_t sh = shard->tail().IntAt(i);
    ASSERT_GE(ins, 0) << "instruction span without an index";
    EXPECT_TRUE(sites.insert({ins, sh}).second)
        << "duplicate span for instr " << ins << " shard " << sh;
    instrs_seen.insert(ins);
    shards_seen.insert(sh);
    max_instr = std::max(max_instr, ins);
  }
  ASSERT_GE(max_instr, 0);
  // Every instruction of the compiled plan left at least one span: the
  // indexes form the contiguous range [0, max_instr].
  EXPECT_EQ(instrs_seen.size(), static_cast<size_t>(max_instr + 1));
  // 2-way sharding: shard-local work on shards 0 and 1, fan-in global.
  EXPECT_TRUE(shards_seen.count(0) > 0 && shards_seen.count(1) > 0)
      << "sharded execution left no per-shard spans";
  for (int64_t sh : shards_seen) {
    EXPECT_TRUE(sh == -1 || sh == 0 || sh == 1) << "phantom shard " << sh;
  }
  EXPECT_GE(threads_seen.size(), 1u);

  // The trace sticks until the next traced query replaces it.
  auto again = client.Trace();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().rows, t.rows);
  EXPECT_EQ(again.value().query_seq, t.query_seq);
  EXPECT_TRUE(client.Close().ok());
}

TEST(TraceWireTest, UntracedSessionKeepsPreviousTrace) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("toggler").ok());
  ASSERT_TRUE(client.Set({{"exec.trace", 1}, {"exec.recycle", 0}}).ok());
  moa::QueryContext ctx;
  ASSERT_TRUE(client.Query("count(Cat);", ctx).ok());
  auto first = client.Trace();
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first.value().rows, 0u);

  // Knob off: the stored trace survives later untraced queries.
  ASSERT_TRUE(client.Set({{"exec.trace", 0}}).ok());
  ASSERT_TRUE(client.Query("count(select[THIS.year >= 1990](Cat));", ctx)
                  .ok());
  auto after = client.Trace();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().rows, first.value().rows);
  EXPECT_EQ(after.value().query_seq, first.value().query_seq);
  EXPECT_TRUE(client.Close().ok());
}

// ---------------------------------------------------------------------------
// Latency histograms and STATS reset over the wire.

TEST(LatencyWireTest, QueryLatencyShowsUpInStats) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("latency").ok());
  // Recycling off: inline cache hits record near-zero latencies that
  // would drag p50 to 0 and make the assertions below vacuous.
  ASSERT_TRUE(client.Set({{"exec.recycle", 0}}).ok());
  moa::QueryContext ctx;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        client.Query("count(select[THIS.rating >= 500](Cat));", ctx).ok());
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  const wire::RequestClassLatency& q = stats.value().server.latency_query;
  EXPECT_GE(q.total.count, 5u);
  EXPECT_GT(q.total.sum_micros, 0u);
  EXPECT_GT(q.total.p50_micros, 0u);
  EXPECT_GT(q.total.p99_micros, 0u);
  EXPECT_GE(q.total.p99_micros, q.total.p50_micros);
  EXPECT_GE(q.exec.count, q.total.count - 1);
  // No appends ran: that class stays empty.
  EXPECT_EQ(stats.value().server.latency_append.total.count, 0u);

  // Reset: the reply carries pre-reset numbers, the next snapshot is
  // a fresh epoch.
  auto pre = client.Stats(/*reset=*/true);
  ASSERT_TRUE(pre.ok());
  EXPECT_GE(pre.value().server.latency_query.total.count, 5u);
  auto post = client.Stats();
  ASSERT_TRUE(post.ok());
  // The reset STATS itself is inline (never queued), so the query-class
  // histograms stay at zero until the next query executes.
  EXPECT_EQ(post.value().server.latency_query.total.count, 0u);
  EXPECT_EQ(post.value().server.latency_query.total.p99_micros, 0u);
  EXPECT_TRUE(client.Close().ok());
}

// ---------------------------------------------------------------------------
// Slow-query ring.

TEST(SlowQueryTest, RingCapturesAndEvictsSlowQueries) {
  QueryServer::Options options;
  options.slow_query_ms = 1;   // a ranking query takes well over 1 ms
  options.slow_query_ring = 2;
  QueryServer server(SharedDb(), options);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("slow").ok());
  // Recycling off so every send re-executes (a cache hit would be fast
  // and never trip the threshold).
  ASSERT_TRUE(client.Set({{"exec.recycle", 0}, {"num_threads", 1}}).ok());

  const char* kRank =
      "map[sum(THIS)](map[getBL(THIS.doc, q, stats)](Lib));";
  const char* kTerms[] = {"sun", "sea", "sky", "rock"};
  std::vector<std::string> sent_keys;
  for (const char* term : kTerms) {
    moa::QueryContext ctx;
    ctx.Bind("q", {{term, 1.0}});
    sent_keys.push_back(ctx.CacheKey());
    ASSERT_TRUE(client.Query(kRank, ctx).ok());
  }
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  const auto& slow = stats.value().server.slow_queries;
  ASSERT_GE(slow.size(), 1u) << "no query crossed the 1 ms threshold";
  ASSERT_LE(slow.size(), 2u) << "ring exceeded its capacity";
  for (const wire::SlowQueryEntry& e : slow) {
    EXPECT_EQ(e.session_id, client.session_id());
    EXPECT_GE(e.total_micros, 1000u);
    EXPECT_GT(e.exec_micros, 0u);
    EXPECT_NE(e.query.find("getBL"), std::string::npos);
    EXPECT_NE(e.counters.find("tuples_in="), std::string::npos);
    bool known = false;
    for (const std::string& k : sent_keys) known = known || k == e.bindings_key;
    EXPECT_TRUE(known) << "unexpected bindings key " << e.bindings_key;
  }
  // If all four were slow, the ring kept the newest two (newest last).
  if (slow.size() == 2 && slow[0].bindings_key != slow[1].bindings_key) {
    EXPECT_NE(slow[1].bindings_key, sent_keys[0]);
  }
  // STATS reset drains the ring.
  ASSERT_TRUE(client.Stats(/*reset=*/true).ok());
  auto post = client.Stats();
  ASSERT_TRUE(post.ok());
  EXPECT_TRUE(post.value().server.slow_queries.empty());
  EXPECT_TRUE(client.Close().ok());
}

}  // namespace
}  // namespace mirror::daemon
