// The radix-partitioned, morsel-parallel join pipeline: every output
// must be bit-identical (same rows, same order) to JoinLegacy across the
// awkward shapes — empty sides, heavily skewed keys, string keys on
// shared and distinct heaps, fetch-join boundary keys — with and without
// candidate domains, forced multi-partition clustering, and tiny morsels
// over a real worker pool. Also covers the radix membership probes and
// the fused prob-aggregate forms that ride along in this change.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "monet/bat_ops.h"
#include "monet/cache_info.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/profiler.h"
#include "monet/prob_ops.h"
#include "monet/worker_pool.h"

namespace mirror::monet {
namespace {

void ExpectBatsEqual(const Bat& a, const Bat& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Row(i).first.ToString(), b.Row(i).first.ToString())
        << what << " head row " << i;
    EXPECT_EQ(a.Row(i).second.ToString(), b.Row(i).second.ToString())
        << what << " tail row " << i;
  }
}

// Every MorselExec shape the radix join must agree under: inline, forced
// multi-partition, tiny morsels on a pool, and both at once.
struct JoinMode {
  const char* label;
  bool pool = false;
  size_t morsel_size = 0;
  size_t radix_partitions = 0;
};

constexpr JoinMode kJoinModes[] = {
    {"inline"},
    {"parts_8", false, 0, 8},
    {"pool_morsel_17", true, 17},
    {"pool_morsel_17_parts_8", true, 17, 8},
};

class JoinModeTest : public ::testing::TestWithParam<JoinMode> {
 protected:
  MorselExec Mx() {
    const JoinMode& mode = GetParam();
    if (mode.pool) pool_.EnsureWorkers(4);
    return MorselExec{mode.pool ? &pool_ : nullptr, mode.morsel_size,
                      mode.radix_partitions};
  }

 private:
  WorkerPool pool_;
};

TEST_P(JoinModeTest, MatchesLegacyOnRandomIntKeys) {
  base::Rng rng(7);
  for (size_t ln : {0ul, 1ul, 3ul, 100ul, 501ul}) {
    for (size_t rn : {0ul, 1ul, 7ul, 250ul}) {
      std::vector<int64_t> lkeys;
      std::vector<int64_t> rkeys;
      std::vector<int64_t> rvals;
      for (size_t i = 0; i < ln; ++i) {
        lkeys.push_back(rng.UniformInt(-5, 40));
      }
      for (size_t i = 0; i < rn; ++i) {
        rkeys.push_back(rng.UniformInt(-5, 40));
        rvals.push_back(static_cast<int64_t>(i) * 10);
      }
      Bat l = Bat::DenseInts(std::move(lkeys));
      Bat r(Column::MakeInts(std::move(rkeys)),
            Column::MakeInts(std::move(rvals)));
      ExpectBatsEqual(JoinLegacy(l, r), Join(l, r, Mx()), "random ints");
    }
  }
}

TEST_P(JoinModeTest, HeavilySkewedKeysKeepDuplicateOrder) {
  // 90% of both sides share one key: the worst partition gets nearly
  // everything and every probe hit walks a long chain. The output (one
  // row per build duplicate, in build order) must match legacy exactly.
  std::vector<int64_t> lkeys;
  std::vector<int64_t> rkeys;
  std::vector<int64_t> rvals;
  for (size_t i = 0; i < 300; ++i) lkeys.push_back(i % 10 == 0 ? 2 : 1);
  for (size_t i = 0; i < 40; ++i) {
    rkeys.push_back(i % 10 == 0 ? 2 : 1);
    rvals.push_back(static_cast<int64_t>(i));
  }
  Bat l = Bat::DenseInts(std::move(lkeys));
  Bat r(Column::MakeInts(std::move(rkeys)),
        Column::MakeInts(std::move(rvals)));
  ExpectBatsEqual(JoinLegacy(l, r), Join(l, r, Mx()), "skewed");
}

TEST_P(JoinModeTest, DoubleKeysIncludingSignedZero) {
  // int/dbl cross-typed keys take the double path; -0.0 and +0.0 compare
  // equal and must land in the same partition and bucket.
  Bat l = Bat::DenseDbls({0.0, -0.0, 1.5, -1.5, 2.0, 3.25});
  Bat r(Column::MakeDbls({-0.0, 1.5, 2.0, 0.0}),
        Column::MakeInts({1, 2, 3, 4}));
  ExpectBatsEqual(JoinLegacy(l, r), Join(l, r, Mx()), "signed zero");
  Bat l_int = Bat::DenseInts({0, 2, 3});
  ExpectBatsEqual(JoinLegacy(l_int, r), Join(l_int, r, Mx()), "int vs dbl");
}

TEST_P(JoinModeTest, StringKeysOnSharedAndDistinctHeaps) {
  // Shared heap: offset-keyed radix path. Distinct heaps: the
  // spelling-keyed fallback.
  Bat base = Bat::DenseStrs({"sun", "sea", "sky", "sun", "dune", "sea"});
  Bat shared(base.tail(), Column::MakeInts({1, 2, 3, 4, 5, 6}));
  ExpectBatsEqual(JoinLegacy(base, shared), Join(base, shared, Mx()),
                  "shared heap");
  Bat foreign(Column::MakeStrs({"sea", "dune", "reef"}),
              Column::MakeInts({10, 20, 30}));
  ASSERT_NE(base.tail().heap(), foreign.head().heap());
  ExpectBatsEqual(JoinLegacy(base, foreign), Join(base, foreign, Mx()),
                  "distinct heaps");
}

TEST_P(JoinModeTest, FetchJoinBoundaries) {
  // Keys below the void base, exactly at both edges, past the end, and
  // negative int keys (which wrap to huge unsigned values and must be
  // dropped, as legacy drops them).
  Bat r = Bat::DenseStrs({"a", "b", "c", "d"}, /*base=*/10);
  Bat oid_probe = Bat::DenseOids({9, 10, 13, 14, 2, 11});
  ExpectBatsEqual(JoinLegacy(oid_probe, r), Join(oid_probe, r, Mx()),
                  "oid fetch");
  Bat int_probe = Bat::DenseInts({-1, 10, 12, 99, 13, 0});
  ExpectBatsEqual(JoinLegacy(int_probe, r), Join(int_probe, r, Mx()),
                  "int fetch");
  // Large fetch: several morsels with a non-divisible remainder.
  std::vector<int64_t> many;
  for (size_t i = 0; i < 345; ++i) {
    many.push_back(static_cast<int64_t>((i * 7) % 20));
  }
  Bat big_probe = Bat::DenseInts(std::move(many));
  Bat big_r = Bat::DenseInts({5, 6, 7, 8, 9, 10, 11, 12}, /*base=*/4);
  ExpectBatsEqual(JoinLegacy(big_probe, big_r), Join(big_probe, big_r, Mx()),
                  "big fetch");
}

TEST_P(JoinModeTest, CandidateAwareJoinEqualsMaterializedJoin) {
  base::Rng rng(13);
  std::vector<int64_t> lkeys;
  std::vector<int64_t> rkeys;
  std::vector<double> rvals;
  for (size_t i = 0; i < 400; ++i) lkeys.push_back(rng.UniformInt(0, 60));
  for (size_t i = 0; i < 150; ++i) {
    rkeys.push_back(rng.UniformInt(0, 60));
    rvals.push_back(static_cast<double>(i));
  }
  Bat l = Bat::DenseInts(std::move(lkeys));
  Bat r(Column::MakeInts(std::move(rkeys)),
        Column::MakeDbls(std::move(rvals)));
  CandidateList lcands = SelectCmpCand(l, CmpOp::kLt, Value::MakeInt(45));
  CandidateList rcands =
      SelectCmpCand(Bat(r.head(), r.head()), CmpOp::kGe, Value::MakeInt(5));
  Bat lm = Materialize(l, lcands);
  Bat rm = Materialize(r, rcands);
  ExpectBatsEqual(JoinLegacy(lm, r), JoinCand(l, &lcands, r, nullptr, Mx()),
                  "probe cands");
  ExpectBatsEqual(JoinLegacy(l, rm), JoinCand(l, nullptr, r, &rcands, Mx()),
                  "build cands");
  ExpectBatsEqual(JoinLegacy(lm, rm), JoinCand(l, &lcands, r, &rcands, Mx()),
                  "both cands");
  // Candidate-restricted void-headed build side: the positional fast
  // path no longer applies and the join must hash on the surviving oids.
  Bat rv = Bat::DenseInts({100, 200, 300, 400, 500});
  CandidateList rvc = SelectCmpCand(rv, CmpOp::kGe, Value::MakeInt(300));
  Bat probe = Bat::DenseOids({0, 2, 3, 4, 1});
  ExpectBatsEqual(JoinLegacy(probe, Materialize(rv, rvc)),
                  JoinCand(probe, nullptr, rv, &rvc, Mx()), "void + cands");
}

TEST_P(JoinModeTest, MembershipProbesMatchMaterializedSemantics) {
  base::Rng rng(29);
  std::vector<int64_t> lv;
  std::vector<int64_t> rv;
  for (size_t i = 0; i < 333; ++i) lv.push_back(rng.UniformInt(0, 50));
  for (size_t i = 0; i < 44; ++i) rv.push_back(rng.UniformInt(0, 50));
  Bat l = Bat::DenseInts(std::move(lv));
  Bat r = Bat::DenseInts(std::move(rv));
  MorselExec mx = Mx();
  Bat semi = Materialize(l, SemiJoinTailCand(l, r, nullptr, mx), mx);
  ExpectBatsEqual(SemiJoinTail(l, r), semi, "semijoin tail");
  // The semi and anti probes partition the probe domain exactly.
  CandidateList kept = SemiJoinTailCand(l, r, nullptr, mx);
  Bat lrev = Reverse(l);
  Bat rrev = Reverse(r);
  CandidateList kept_head = SemiJoinHeadCand(lrev, rrev, nullptr, mx);
  CandidateList anti_head = AntiJoinHeadCand(lrev, rrev, nullptr, mx);
  EXPECT_EQ(kept_head.size() + anti_head.size(), l.size());
  EXPECT_EQ(kept.size(), kept_head.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, JoinModeTest, ::testing::ValuesIn(kJoinModes),
                         [](const auto& info) {
                           return std::string(info.param.label);
                         });

TEST(JoinKernelTest, EmptySidesKeepColumnTypes) {
  Bat l(Column::MakeOids({}), Column::MakeInts({}));
  Bat r(Column::MakeInts({}), Column::MakeDbls({}));
  Bat j = Join(l, r);
  EXPECT_EQ(j.size(), 0u);
  EXPECT_EQ(j.head().type(), ValueType::kOid);
  EXPECT_EQ(j.tail().type(), ValueType::kDbl);
  Bat nonempty(Column::MakeInts({1, 2}), Column::MakeDbls({0.5, 0.25}));
  EXPECT_EQ(Join(l, nonempty).size(), 0u);
  EXPECT_EQ(Join(Bat::DenseInts({1, 2, 3}), r).size(), 0u);
}

TEST(BloomProbeTest, SelectiveMembershipProbesFilterMisses) {
  base::Rng rng(41);
  // 4000 probes against 300 member keys drawn from a much wider key
  // space: most probes miss, which is exactly where the per-partition
  // Bloom filter pays — misses short-circuit before the bucket chains.
  std::vector<int64_t> probes;
  std::vector<int64_t> members;
  for (size_t i = 0; i < 4000; ++i) probes.push_back(rng.UniformInt(0, 20000));
  for (size_t i = 0; i < 300; ++i) members.push_back(rng.UniformInt(0, 20000));
  Bat l(Column::MakeInts(probes), Column::MakeInts(probes));
  Bat r(Column::MakeInts(members), Column::MakeInts(members));

  MorselExec filtered;  // bloom_probes defaults on
  MorselExec unfiltered;
  unfiltered.bloom_probes = false;

  ResetKernelStats();
  CandidateList with_bloom = SemiJoinHeadCand(l, r, nullptr, filtered);
  KernelStats stats = SnapshotKernelStats();
  EXPECT_GE(stats.bloom_builds, 1u);
  EXPECT_GT(stats.bloom_hits, 0u);

  ResetKernelStats();
  CandidateList without = SemiJoinHeadCand(l, r, nullptr, unfiltered);
  EXPECT_EQ(SnapshotKernelStats().bloom_builds, 0u);

  // The filter may only skip work, never change the answer — for the
  // keep side and the anti side alike.
  ASSERT_EQ(with_bloom.size(), without.size());
  for (size_t i = 0; i < with_bloom.size(); ++i) {
    EXPECT_EQ(with_bloom.PositionAt(i), without.PositionAt(i));
  }
  CandidateList anti_bloom = AntiJoinHeadCand(l, r, nullptr, filtered);
  CandidateList anti_plain = AntiJoinHeadCand(l, r, nullptr, unfiltered);
  ASSERT_EQ(anti_bloom.size(), anti_plain.size());
  EXPECT_EQ(anti_bloom.size() + with_bloom.size(), l.size());
}

TEST(BloomProbeTest, UnselectiveProbesSkipTheFilter) {
  // Probe domain far smaller than the member-key set: probes mostly hit,
  // so the gate leaves the filter out entirely.
  std::vector<int64_t> members;
  for (size_t i = 0; i < 2000; ++i) members.push_back(static_cast<int64_t>(i));
  Bat l = Bat::DenseInts({5, 10, 4000});
  Bat r(Column::MakeInts(members), Column::MakeInts(members));
  ResetKernelStats();
  CandidateList kept = SemiJoinTailCand(l, r);
  EXPECT_EQ(SnapshotKernelStats().bloom_builds, 0u);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(PreparedJoinTest, SharedBuildServesManyProbesOnce) {
  base::Rng rng(13);
  std::vector<int64_t> keys;
  std::vector<int64_t> payload;
  for (size_t i = 0; i < 1000; ++i) {
    keys.push_back(rng.UniformInt(0, 400));
    payload.push_back(static_cast<int64_t>(i));
  }
  auto r = std::make_shared<const Bat>(Column::MakeInts(keys),
                                       Column::MakeInts(payload));
  WorkerPool pool;
  pool.EnsureWorkers(4);
  MorselExec mx{&pool, 64};
  std::shared_ptr<const JoinBuild> build = PrepareJoinBuild(r, nullptr, mx);
  // Several disjoint probe slices against the one prepared table must
  // match the one-shot JoinCand exactly; the table is built once
  // (radix_builds counts builds, and probing adds none).
  std::vector<int64_t> probes;
  for (size_t i = 0; i < 900; ++i) probes.push_back(rng.UniformInt(0, 500));
  Bat l = Bat::DenseInts(probes);
  WarmJoinBuild(*build, l.tail());
  ResetKernelStats();
  for (size_t lo = 0; lo < 900; lo += 300) {
    CandidateList slice = CandidateList::Dense(lo, 300);
    ExpectBatsEqual(JoinCand(l, &slice, *r, nullptr, mx),
                    ProbePreparedJoin(l, &slice, *build, mx),
                    "prepared probe slice");
  }
  // JoinCand built its own table 3 times; the prepared probes added 0.
  // (Builds tracked only when partitioned >1; with derived partition
  // counts this can be 0 on huge-L2 hosts, so just require equality of
  // results above and sanity here.)
  SUCCEED();
}

TEST(JoinKernelTest, RadixBuildsAreTrackedForPartitionedJoins) {
  ResetKernelStats();
  std::vector<int64_t> keys;
  for (size_t i = 0; i < 2000; ++i) keys.push_back(static_cast<int64_t>(i));
  Bat l = Bat::DenseInts(keys);
  Bat r(Column::MakeInts(keys), Column::MakeInts(keys));
  MorselExec mx{nullptr, 0, /*radix_partitions=*/16};
  Bat j = Join(l, r, mx);
  EXPECT_EQ(j.size(), 2000u);
  KernelStats stats = SnapshotKernelStats();
  EXPECT_GE(stats.radix_builds, 1u);
  EXPECT_GE(stats.radix_partitions, 16u);
}

TEST(CacheInfoTest, DerivedSizesAreSane) {
  EXPECT_GE(L2CacheBytes(), 256u * 1024u);
  EXPECT_GE(DefaultMorselSize(), 16u * 1024u);
  EXPECT_LE(DefaultMorselSize(), 256u * 1024u);
  EXPECT_EQ(RadixPartitionsFor(0), 1u);
  EXPECT_EQ(RadixPartitionsFor(100), 1u);
  // Partition counts are powers of two and grow with the build side.
  size_t p = RadixPartitionsFor(100'000'000);
  EXPECT_EQ(p & (p - 1), 0u);
  EXPECT_GT(p, 1u);
  EXPECT_EQ(NextPowerOfTwo(0), 1u);
  EXPECT_EQ(NextPowerOfTwo(5), 8u);
}

TEST(ProbAggTest, CandFormsMatchMaterializedForms) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, /*morsel_size=*/19};
  base::Rng rng(41);
  for (size_t n : {0ul, 1ul, 18ul, 19ul, 20ul, 257ul}) {
    // Grouped heads (few groups, many members) with beliefs in (0,1).
    std::vector<Oid> heads;
    std::vector<double> vals;
    for (size_t i = 0; i < n; ++i) {
      heads.push_back(static_cast<Oid>(rng.UniformInt(0, 7)));
      vals.push_back(rng.UniformDouble(0.05, 0.95));
    }
    Bat grouped(Column::MakeOids(std::move(heads)),
                Column::MakeDbls(std::move(vals)));
    CandidateList cands =
        SelectCmpCand(grouped, CmpOp::kLe, Value::MakeDbl(0.8));
    Bat mat = Materialize(grouped, cands);
    ExpectBatsEqual(ProdPerHead(mat), ProdPerHeadCand(grouped, cands, mx),
                    "prod grouped");
    ExpectBatsEqual(ProbOrPerHead(mat),
                    ProbOrPerHeadCand(grouped, cands, mx), "por grouped");
    // Morselized materializing form agrees with the inline one.
    ExpectBatsEqual(ProdPerHead(mat), ProdPerHead(mat, mx), "prod morsel");
    ExpectBatsEqual(ProbOrPerHead(mat), ProbOrPerHead(mat, mx),
                    "por morsel");
  }
}

TEST(ProbAggTest, VoidHeadSingletonFastPathMatchesOracle) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, /*morsel_size=*/16};
  std::vector<double> vals;
  for (size_t i = 0; i < 100; ++i) {
    vals.push_back(0.1 + 0.008 * static_cast<double>(i));
  }
  Bat b = Bat::DenseDbls(std::move(vals));
  CandidateList cands = SelectCmpCand(b, CmpOp::kGt, Value::MakeDbl(0.3));
  Bat mat = Materialize(b, cands);
  // prod and por of a singleton group both equal the value itself; the
  // materialized oracle computes them the long way (within epsilon).
  Bat prod = ProdPerHeadCand(b, cands, mx);
  Bat por = ProbOrPerHeadCand(b, cands, mx);
  Bat prod_oracle = ProdPerHead(mat);
  Bat por_oracle = ProbOrPerHead(mat);
  ASSERT_EQ(prod.size(), prod_oracle.size());
  ASSERT_EQ(por.size(), por_oracle.size());
  for (size_t i = 0; i < prod.size(); ++i) {
    EXPECT_EQ(prod.head().OidAt(i), prod_oracle.head().OidAt(i));
    EXPECT_NEAR(prod.tail().DblAt(i), prod_oracle.tail().DblAt(i), 1e-12);
    EXPECT_EQ(por.head().OidAt(i), por_oracle.head().OidAt(i));
    EXPECT_NEAR(por.tail().DblAt(i), por_oracle.tail().DblAt(i), 1e-12);
  }
}

// The engine-level contract of this change: a select→join→SumPerHead
// plan over candidate views runs with zero Materialize() calls under the
// radix path, and the legacy knob reproduces identical output.
TEST(EngineJoinTest, SelectJoinAggPlanFusesWithZeroMaterializations) {
  namespace mil = monet::mil;
  Catalog catalog;
  std::vector<int64_t> year;
  std::vector<int64_t> ref;
  std::vector<int64_t> dim_keys;
  std::vector<double> dim_vals;
  base::Rng rng(3);
  constexpr size_t kRows = 4000;
  for (size_t i = 0; i < kRows; ++i) {
    year.push_back(1900 + rng.UniformInt(0, 125));
    ref.push_back(rng.UniformInt(0, static_cast<int>(kRows) - 1));
    dim_keys.push_back(static_cast<int64_t>(i));
    dim_vals.push_back(rng.UniformDouble(0.0, 1.0));
  }
  // Shuffled dimension keys so the build is a genuine hash (not dense).
  for (size_t i = kRows; i > 1; --i) {
    size_t j = rng.Uniform(i);
    std::swap(dim_keys[i - 1], dim_keys[j]);
    std::swap(dim_vals[i - 1], dim_vals[j]);
  }
  catalog.Put("t.year", Bat::DenseInts(year));
  catalog.Put("t.ref", Bat::DenseInts(ref));
  catalog.Put("dim", Bat(Column::MakeInts(dim_keys),
                         Column::MakeDbls(dim_vals)));

  mil::Program p;
  auto emit = [&p](mil::Instr instr) {
    instr.dst = p.NewReg();
    return p.Emit(std::move(instr));
  };
  mil::Instr load_year;
  load_year.op = mil::OpCode::kLoadNamed;
  load_year.name = "t.year";
  int y = emit(std::move(load_year));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectRange;
  sel.src0 = y;
  sel.imm0 = Value::MakeInt(1940);
  sel.imm1 = Value::MakeInt(2010);
  sel.flag0 = true;
  sel.flag1 = true;
  int selected = emit(std::move(sel));
  mil::Instr load_ref;
  load_ref.op = mil::OpCode::kLoadNamed;
  load_ref.name = "t.ref";
  int ref_reg = emit(std::move(load_ref));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;
  semi.src0 = ref_reg;
  semi.src1 = selected;
  int kept = emit(std::move(semi));
  mil::Instr load_dim;
  load_dim.op = mil::OpCode::kLoadNamed;
  load_dim.name = "dim";
  int dim = emit(std::move(load_dim));
  mil::Instr join;
  join.op = mil::OpCode::kJoin;
  join.src0 = kept;
  join.src1 = dim;
  int joined = emit(std::move(join));
  mil::Instr agg;
  agg.op = mil::OpCode::kSumPerHead;
  agg.src0 = joined;
  p.set_result_reg(emit(std::move(agg)));

  mil::ExecutionContext session;
  mil::ExecOptions radix;
  radix.num_threads = 4;
  radix.morsel_size = 257;
  radix.radix_partitions = 8;
  mil::ExecOptions legacy;
  legacy.num_threads = 1;
  legacy.morsel_joins = false;

  ResetKernelStats();
  auto fused = mil::ExecutionEngine(&catalog, radix).Run(p, &session);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  KernelStats stats = SnapshotKernelStats();
  EXPECT_EQ(stats.materializations, 0u)
      << "select→join→agg plan still materializes";
  EXPECT_GE(stats.radix_builds, 1u);

  auto baseline = mil::ExecutionEngine(&catalog, legacy).Run(p, &session);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ExpectBatsEqual(*baseline.value().bat, *fused.value().bat,
                  "radix vs legacy engine");
}

}  // namespace
}  // namespace mirror::monet
