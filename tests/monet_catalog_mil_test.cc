// Catalog persistence round-trips and MIL program construction/execution.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "monet/catalog.h"
#include "monet/mil.h"

namespace mirror::monet {
namespace {

std::string TempDir(const char* tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("mirror_catalog_") + tag + "_" +
        std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("a", Bat::DenseInts({1, 2})).ok());
  EXPECT_FALSE(catalog.Register("a", Bat::DenseInts({3})).ok());
  auto bat = catalog.Get("a");
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(bat.value()->size(), 2u);
  EXPECT_FALSE(catalog.Get("missing").ok());
  EXPECT_TRUE(catalog.Drop("a").ok());
  EXPECT_FALSE(catalog.Drop("a").ok());
}

TEST(CatalogTest, PutReplaces) {
  Catalog catalog;
  catalog.Put("x", Bat::DenseInts({1}));
  catalog.Put("x", Bat::DenseInts({1, 2, 3}));
  EXPECT_EQ(catalog.Get("x").value()->size(), 3u);
  EXPECT_EQ(catalog.Names(), std::vector<std::string>{"x"});
}

TEST(CatalogTest, PersistenceRoundTripAllTypes) {
  std::string dir = TempDir("roundtrip");
  {
    Catalog catalog;
    catalog.Put("ints", Bat::DenseInts({-1, 0, 42}));
    catalog.Put("dbls", Bat::DenseDbls({0.5, -2.25}));
    catalog.Put("strs", Bat::DenseStrs({"alpha", "beta", "alpha"}));
    catalog.Put("oids",
                Bat(Column::MakeOids({7, 8}), Column::MakeOids({1, 2})));
    ASSERT_TRUE(catalog.SaveTo(dir).ok());
  }
  Catalog restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_EQ(restored.size(), 4u);
  auto ints = restored.Get("ints").value();
  EXPECT_EQ(ints->tail().IntAt(2), 42);
  EXPECT_TRUE(ints->head().is_void());
  auto strs = restored.Get("strs").value();
  EXPECT_EQ(strs->tail().StrAt(0), "alpha");
  EXPECT_EQ(strs->tail().StrAt(2), "alpha");
  EXPECT_EQ(strs->tail().StrOffsetAt(0), strs->tail().StrOffsetAt(2));
  auto dbls = restored.Get("dbls").value();
  EXPECT_DOUBLE_EQ(dbls->tail().DblAt(1), -2.25);
  std::filesystem::remove_all(dir);
}

TEST(CatalogTest, LoadFromMissingDirFails) {
  Catalog catalog;
  EXPECT_FALSE(catalog.LoadFrom("/nonexistent/mirror/dir").ok());
}

TEST(MilTest, ProgramExecutesAgainstCatalog) {
  Catalog catalog;
  catalog.Put("nums", Bat::DenseInts({5, 1, 7, 3}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "nums";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr select;
  select.op = mil::OpCode::kSelectCmp;
  select.cmp_op = CmpOp::kGt;
  select.imm0 = Value::MakeInt(2);
  select.src0 = load.dst;
  select.dst = prog.NewReg();
  prog.Emit(select);
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = select.dst;
  sum.dst = prog.NewReg();
  prog.Emit(sum);
  prog.set_result_reg(sum.dst);

  mil::Executor executor(&catalog);
  auto result = executor.Run(prog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().is_scalar);
  EXPECT_DOUBLE_EQ(result.value().scalar, 15.0);  // 5 + 7 + 3
}

TEST(MilTest, MissingBatReportsNotFound) {
  Catalog catalog;
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "ghost";
  load.dst = prog.NewReg();
  prog.Emit(load);
  prog.set_result_reg(load.dst);
  auto result = mil::Executor(&catalog).Run(prog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), base::StatusCode::kNotFound);
}

TEST(MilTest, DeadCodeEliminationDropsUnusedOps) {
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "a";
  load.dst = prog.NewReg();
  prog.Emit(load);
  // Dead: reversed but never used.
  mil::Instr dead;
  dead.op = mil::OpCode::kReverse;
  dead.src0 = load.dst;
  dead.dst = prog.NewReg();
  prog.Emit(dead);
  mil::Instr live;
  live.op = mil::OpCode::kMirror;
  live.src0 = load.dst;
  live.dst = prog.NewReg();
  prog.Emit(live);
  prog.set_result_reg(live.dst);

  EXPECT_EQ(prog.instrs().size(), 3u);
  size_t removed = prog.EliminateDeadCode();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(prog.instrs().size(), 2u);
  auto result = mil::Executor(&catalog).Run(prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().bat->size(), 1u);
}

TEST(MilTest, DisassemblyMentionsOpcodesAndRegisters) {
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "postings";
  load.dst = prog.NewReg();
  prog.Emit(load);
  prog.set_result_reg(load.dst);
  std::string text = prog.ToString();
  EXPECT_NE(text.find("r0 := load(\"postings\")"), std::string::npos);
  EXPECT_NE(text.find("return r0"), std::string::npos);
}

TEST(MilTest, KernelOpCountExcludesLoadsAndConstants) {
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "x";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr mirror;
  mirror.op = mil::OpCode::kMirror;
  mirror.src0 = load.dst;
  mirror.dst = prog.NewReg();
  prog.Emit(mirror);
  prog.set_result_reg(mirror.dst);
  EXPECT_EQ(prog.KernelOpCount(), 1u);
}

}  // namespace
}  // namespace mirror::monet
