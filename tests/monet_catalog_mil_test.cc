// Catalog persistence round-trips, MIL program construction/execution,
// and the vectorized ExecutionEngine (candidate pipelines, DAG
// scheduling, session plan cache).

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/profiler.h"

namespace mirror::monet {
namespace {

std::string TempDir(const char* tag) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("mirror_catalog_") + tag + "_" +
        std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Register("a", Bat::DenseInts({1, 2})).ok());
  EXPECT_FALSE(catalog.Register("a", Bat::DenseInts({3})).ok());
  auto bat = catalog.Get("a");
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(bat.value()->size(), 2u);
  EXPECT_FALSE(catalog.Get("missing").ok());
  EXPECT_TRUE(catalog.Drop("a").ok());
  EXPECT_FALSE(catalog.Drop("a").ok());
}

TEST(CatalogTest, PutReplaces) {
  Catalog catalog;
  catalog.Put("x", Bat::DenseInts({1}));
  catalog.Put("x", Bat::DenseInts({1, 2, 3}));
  EXPECT_EQ(catalog.Get("x").value()->size(), 3u);
  EXPECT_EQ(catalog.Names(), std::vector<std::string>{"x"});
}

TEST(CatalogTest, PersistenceRoundTripAllTypes) {
  std::string dir = TempDir("roundtrip");
  {
    Catalog catalog;
    catalog.Put("ints", Bat::DenseInts({-1, 0, 42}));
    catalog.Put("dbls", Bat::DenseDbls({0.5, -2.25}));
    catalog.Put("strs", Bat::DenseStrs({"alpha", "beta", "alpha"}));
    catalog.Put("oids",
                Bat(Column::MakeOids({7, 8}), Column::MakeOids({1, 2})));
    ASSERT_TRUE(catalog.SaveTo(dir).ok());
  }
  Catalog restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_EQ(restored.size(), 4u);
  auto ints = restored.Get("ints").value();
  EXPECT_EQ(ints->tail().IntAt(2), 42);
  EXPECT_TRUE(ints->head().is_void());
  auto strs = restored.Get("strs").value();
  EXPECT_EQ(strs->tail().StrAt(0), "alpha");
  EXPECT_EQ(strs->tail().StrAt(2), "alpha");
  EXPECT_EQ(strs->tail().StrOffsetAt(0), strs->tail().StrOffsetAt(2));
  auto dbls = restored.Get("dbls").value();
  EXPECT_DOUBLE_EQ(dbls->tail().DblAt(1), -2.25);
  std::filesystem::remove_all(dir);
}

TEST(CatalogTest, LoadFromMissingDirFails) {
  Catalog catalog;
  EXPECT_FALSE(catalog.LoadFrom("/nonexistent/mirror/dir").ok());
}

TEST(MilTest, ProgramExecutesAgainstCatalog) {
  Catalog catalog;
  catalog.Put("nums", Bat::DenseInts({5, 1, 7, 3}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "nums";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr select;
  select.op = mil::OpCode::kSelectCmp;
  select.cmp_op = CmpOp::kGt;
  select.imm0 = Value::MakeInt(2);
  select.src0 = load.dst;
  select.dst = prog.NewReg();
  prog.Emit(select);
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = select.dst;
  sum.dst = prog.NewReg();
  prog.Emit(sum);
  prog.set_result_reg(sum.dst);

  mil::Executor executor(&catalog);
  auto result = executor.Run(prog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().is_scalar);
  EXPECT_DOUBLE_EQ(result.value().scalar, 15.0);  // 5 + 7 + 3
}

TEST(MilTest, MissingBatReportsNotFound) {
  Catalog catalog;
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "ghost";
  load.dst = prog.NewReg();
  prog.Emit(load);
  prog.set_result_reg(load.dst);
  auto result = mil::Executor(&catalog).Run(prog);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), base::StatusCode::kNotFound);
}

TEST(MilTest, DeadCodeEliminationDropsUnusedOps) {
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "a";
  load.dst = prog.NewReg();
  prog.Emit(load);
  // Dead: reversed but never used.
  mil::Instr dead;
  dead.op = mil::OpCode::kReverse;
  dead.src0 = load.dst;
  dead.dst = prog.NewReg();
  prog.Emit(dead);
  mil::Instr live;
  live.op = mil::OpCode::kMirror;
  live.src0 = load.dst;
  live.dst = prog.NewReg();
  prog.Emit(live);
  prog.set_result_reg(live.dst);

  EXPECT_EQ(prog.instrs().size(), 3u);
  size_t removed = prog.EliminateDeadCode();
  EXPECT_EQ(removed, 1u);
  EXPECT_EQ(prog.instrs().size(), 2u);
  auto result = mil::Executor(&catalog).Run(prog);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().bat->size(), 1u);
}

TEST(MilTest, DisassemblyMentionsOpcodesAndRegisters) {
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "postings";
  load.dst = prog.NewReg();
  prog.Emit(load);
  prog.set_result_reg(load.dst);
  std::string text = prog.ToString();
  EXPECT_NE(text.find("r0 := load(\"postings\")"), std::string::npos);
  EXPECT_NE(text.find("return r0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ExecutionEngine.

namespace engine_test {

// A selection-heavy plan over `nums`: range + cmp + semijoin + slice.
mil::Program SelectionPipelineProgram() {
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "nums";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr range;
  range.op = mil::OpCode::kSelectRange;
  range.src0 = load.dst;
  range.imm0 = Value::MakeInt(10);
  range.imm1 = Value::MakeInt(800);
  range.flag0 = true;
  range.flag1 = true;
  range.dst = prog.NewReg();
  prog.Emit(range);
  mil::Instr neq;
  neq.op = mil::OpCode::kSelectNeq;
  neq.src0 = range.dst;
  neq.imm0 = Value::MakeInt(50);
  neq.dst = prog.NewReg();
  prog.Emit(neq);
  mil::Instr load2;
  load2.op = mil::OpCode::kLoadNamed;
  load2.name = "keys";
  load2.dst = prog.NewReg();
  prog.Emit(load2);
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;
  semi.src0 = neq.dst;
  semi.src1 = load2.dst;
  semi.dst = prog.NewReg();
  prog.Emit(semi);
  mil::Instr slice;
  slice.op = mil::OpCode::kSlice;
  slice.src0 = semi.dst;
  slice.n = 5;
  slice.n2 = 200;
  slice.dst = prog.NewReg();
  prog.Emit(slice);
  prog.set_result_reg(slice.dst);
  return prog;
}

Catalog MakeCatalog(size_t n, uint64_t seed) {
  base::Rng rng(seed);
  std::vector<int64_t> nums(n);
  for (auto& v : nums) v = rng.UniformInt(0, 999);
  Catalog catalog;
  catalog.Put("nums", Bat::DenseInts(std::move(nums)));
  std::vector<Oid> keys;
  for (Oid o = 0; o < n; o += 3) keys.push_back(o);
  catalog.Put("keys", Bat(Column::MakeOids(std::move(keys)),
                          Column::MakeInts(std::vector<int64_t>(
                              (n + 2) / 3, 0))));
  return catalog;
}

void ExpectSameBat(const Bat& a, const Bat& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.head().OidAt(i), b.head().OidAt(i)) << "row " << i;
    EXPECT_EQ(a.tail().IntAt(i), b.tail().IntAt(i)) << "row " << i;
  }
}

TEST(ExecutionEngineTest, CandidatePipelineMatchesSequentialExecutor) {
  Catalog catalog = MakeCatalog(3000, 11);
  mil::Program prog = SelectionPipelineProgram();
  auto baseline = mil::Executor(&catalog).Run(prog);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  for (int threads : {1, 4}) {
    for (bool cands : {false, true}) {
      mil::ExecutionEngine engine(
          &catalog, mil::ExecOptions{.num_threads = threads,
                                     .use_candidates = cands});
      auto run = engine.Run(prog);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      ExpectSameBat(*baseline.value().bat, *run.value().bat);
    }
  }
}

TEST(ExecutionEngineTest, CandidatePipelineAvoidsIntermediateCopies) {
  Catalog catalog = MakeCatalog(3000, 12);
  mil::Program prog = SelectionPipelineProgram();
  ResetKernelStats();
  mil::ExecutionEngine engine(&catalog, mil::ExecOptions{.num_threads = 1,
                                                         .use_candidates = true});
  ASSERT_TRUE(engine.Run(prog).ok());
  KernelStats with_cands = SnapshotKernelStats();
  // The whole select->select->semijoin->slice chain materializes exactly
  // once, at result delivery.
  EXPECT_EQ(with_cands.materializations, 1u);
  EXPECT_GE(with_cands.candidate_ops, 4u);

  ResetKernelStats();
  mil::ExecutionEngine eager(&catalog, mil::ExecOptions{.num_threads = 1,
                                                        .use_candidates = false});
  ASSERT_TRUE(eager.Run(prog).ok());
  KernelStats without_cands = SnapshotKernelStats();
  EXPECT_EQ(without_cands.materializations, 0u);
  // Late materialization copies strictly fewer tuples: only the final
  // result, vs. every intermediate the eager path gathers.
  EXPECT_LT(with_cands.materialized_tuples, without_cands.tuples_out);
}

TEST(ExecutionEngineTest, ParallelIndependentBranches) {
  // Two independent selection branches concatenated: the DAG scheduler
  // can run them on different workers; results must equal sequential.
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1, 5, 9, 13}, /*base=*/0));
  catalog.Put("b", Bat::DenseInts({2, 6, 10, 14}, /*base=*/100));
  mil::Program prog;
  auto emit_branch = [&prog](const std::string& name, int64_t bound) {
    mil::Instr load;
    load.op = mil::OpCode::kLoadNamed;
    load.name = name;
    load.dst = prog.NewReg();
    prog.Emit(load);
    mil::Instr sel;
    sel.op = mil::OpCode::kSelectCmp;
    sel.cmp_op = CmpOp::kGt;
    sel.imm0 = Value::MakeInt(bound);
    sel.src0 = load.dst;
    sel.dst = prog.NewReg();
    prog.Emit(sel);
    return sel.dst;
  };
  int left = emit_branch("a", 4);
  int right = emit_branch("b", 5);
  mil::Instr concat;
  concat.op = mil::OpCode::kConcat;
  concat.src0 = left;
  concat.src1 = right;
  concat.dst = prog.NewReg();
  prog.Emit(concat);
  prog.set_result_reg(concat.dst);

  auto baseline = mil::Executor(&catalog).Run(prog);
  ASSERT_TRUE(baseline.ok());
  mil::ExecutionEngine engine(&catalog, mil::ExecOptions{.num_threads = 4});
  auto run = engine.Run(prog);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameBat(*baseline.value().bat, *run.value().bat);
}

TEST(ExecutionEngineTest, ScalarResultAndErrorsPropagate) {
  Catalog catalog;
  catalog.Put("nums", Bat::DenseInts({5, 1, 7, 3}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "nums";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr select;
  select.op = mil::OpCode::kSelectCmp;
  select.cmp_op = CmpOp::kGt;
  select.imm0 = Value::MakeInt(2);
  select.src0 = load.dst;
  select.dst = prog.NewReg();
  prog.Emit(select);
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = select.dst;
  sum.dst = prog.NewReg();
  prog.Emit(sum);
  prog.set_result_reg(sum.dst);
  mil::ExecutionEngine engine(&catalog, mil::ExecOptions{.num_threads = 4});
  auto result = engine.Run(prog);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().is_scalar);
  EXPECT_DOUBLE_EQ(result.value().scalar, 15.0);

  // Missing BAT fails cleanly from worker threads too.
  mil::Program bad;
  mil::Instr ghost;
  ghost.op = mil::OpCode::kLoadNamed;
  ghost.name = "ghost";
  ghost.dst = bad.NewReg();
  bad.Emit(ghost);
  mil::Instr mirror_i;
  mirror_i.op = mil::OpCode::kMirror;
  mirror_i.src0 = ghost.dst;
  mirror_i.dst = bad.NewReg();
  bad.Emit(mirror_i);
  bad.set_result_reg(mirror_i.dst);
  auto failed = engine.Run(bad);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), base::StatusCode::kNotFound);
}

TEST(ExecutionContextTest, PlanCacheHitsAndNormalization) {
  mil::ExecutionContext ctx;
  EXPECT_EQ(mil::ExecutionContext::NormalizeText("  select\n\t[x]  (S) ; "),
            "select [x] (S) ;");
  EXPECT_EQ(ctx.CachedPlan("k"), nullptr);
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "x";
  load.dst = prog.NewReg();
  prog.Emit(load);
  prog.set_result_reg(load.dst);
  ctx.CachePlan("k", prog);
  auto hit = ctx.CachedPlan("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->instrs().size(), 1u);
  EXPECT_EQ(ctx.plan_cache_size(), 1u);
  EXPECT_EQ(ctx.plan_cache_lookups(), 2u);
  EXPECT_EQ(ctx.plan_cache_hits(), 1u);
  ctx.InvalidatePlans();
  EXPECT_EQ(ctx.plan_cache_size(), 0u);
}

TEST(ExecutionContextTest, RegisterScratchReusedAcrossRuns) {
  Catalog catalog;
  catalog.Put("nums", Bat::DenseInts({1, 2, 3}));
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "nums";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.cmp_op = CmpOp::kGt;
  sel.imm0 = Value::MakeInt(1);
  sel.src0 = load.dst;
  sel.dst = prog.NewReg();
  prog.Emit(sel);
  prog.set_result_reg(sel.dst);
  mil::ExecutionContext session;
  mil::ExecutionEngine engine(&catalog);
  for (int round = 0; round < 3; ++round) {
    auto run = engine.Run(prog, &session);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run.value().bat->size(), 2u);
  }
}

}  // namespace engine_test

TEST(MilTest, KernelOpCountExcludesLoadsAndConstants) {
  mil::Program prog;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "x";
  load.dst = prog.NewReg();
  prog.Emit(load);
  mil::Instr mirror;
  mirror.op = mil::OpCode::kMirror;
  mirror.src0 = load.dst;
  mirror.dst = prog.NewReg();
  prog.Emit(mirror);
  prog.set_result_reg(mirror.dst);
  EXPECT_EQ(prog.KernelOpCount(), 1u);
}

}  // namespace
}  // namespace mirror::monet
