// Per-query execution tracing (monet/trace.h): span completeness — every
// executed MIL instruction yields exactly one kInstr span per execution
// site (one global span unsharded, one span per shard for fanned-out
// instructions), shard and thread attribution stays consistent under the
// parallel scatter/gather engine, the knob-off path records nothing at
// all, and the trace-as-BATs projection is faithful to the span list.

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "monet/bat.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/trace.h"

namespace mirror::monet {
namespace {

namespace mil = monet::mil;

mil::Instr Load(const std::string& name) {
  mil::Instr i;
  i.op = mil::OpCode::kLoadNamed;
  i.name = name;
  return i;
}

Catalog BuildCatalog(int rows) {
  Catalog catalog;
  base::Rng rng(23);
  std::vector<int64_t> val;
  std::vector<double> score;
  for (int i = 0; i < rows; ++i) {
    val.push_back(i % 3 == 0 ? 7 : rng.UniformInt(0, 40));
    score.push_back(rng.UniformDouble(-2.0, 2.0));
  }
  catalog.Put("S.val", Bat::DenseInts(val));
  catalog.Put("S.score", Bat::DenseDbls(score));
  return catalog;
}

/// select(val == 7) -> semijoin(score) -> per-head sum: every
/// instruction in the chain is shard-local, so the sharded engine fans
/// each one out once per shard.
mil::Program BuildChain() {
  mil::Program p;
  auto emit = [&p](mil::Instr i) {
    i.dst = p.NewReg();
    return p.Emit(std::move(i));
  };
  int val = emit(Load("S.val"));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectEq;
  sel.src0 = val;
  sel.imm0 = Value::MakeInt(7);
  int selected = emit(std::move(sel));
  int score = emit(Load("S.score"));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;
  semi.src0 = score;
  semi.src1 = selected;
  int kept = emit(std::move(semi));
  mil::Instr agg;
  agg.op = mil::OpCode::kSumPerHead;
  agg.src0 = kept;
  p.set_result_reg(emit(std::move(agg)));
  return p;
}

std::vector<TraceSpan> InstrSpans(const std::vector<TraceSpan>& spans) {
  std::vector<TraceSpan> out;
  for (const TraceSpan& s : spans) {
    if (s.kind == TraceSpanKind::kInstr) out.push_back(s);
  }
  return out;
}

TEST(QueryTraceTest, SequentialRunCoversEveryInstructionExactlyOnce) {
  Catalog catalog = BuildCatalog(500);
  mil::Program p = BuildChain();
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 1;
  opts.trace = true;
  opts.trace_sink = &trace;
  auto result = mil::ExecutionEngine(&catalog, opts).Run(p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  std::vector<TraceSpan> spans = InstrSpans(trace.Merge());
  ASSERT_EQ(spans.size(), p.instrs().size());
  std::set<uint32_t> seen;
  for (const TraceSpan& s : spans) {
    EXPECT_TRUE(seen.insert(s.instr).second)
        << "instruction " << s.instr << " recorded twice";
    ASSERT_LT(s.instr, p.instrs().size());
    EXPECT_EQ(s.shard, -1) << "unsharded spans are global";
    EXPECT_LE(s.start_ns, s.end_ns);
    EXPECT_STREQ(s.opcode, mil::OpCodeName(p.instrs()[s.instr].op));
  }
  EXPECT_EQ(seen.size(), p.instrs().size());
}

TEST(QueryTraceTest, ShardedRunAttributesSpansToEveryShard) {
  Catalog catalog = BuildCatalog(2000);
  mil::Program p = BuildChain();
  constexpr size_t kShards = 2;
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 2;
  opts.num_shards = kShards;
  opts.trace = true;
  opts.trace_sink = &trace;
  const auto wall_start = std::chrono::steady_clock::now();
  auto result = mil::ExecutionEngine(&catalog, opts).Run(p);
  const uint64_t wall_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Exactly one span per (instruction, execution site): a fanned-out
  // instruction contributes one span per shard, a global instruction
  // one span with shard == -1 — never both, never a duplicate.
  std::map<uint32_t, std::set<int32_t>> sites;
  std::map<uint32_t, uint64_t> per_thread_ns;
  uint32_t max_thread = 0;
  for (const TraceSpan& s : InstrSpans(trace.Merge())) {
    ASSERT_LT(s.instr, p.instrs().size());
    EXPECT_TRUE(sites[s.instr].insert(s.shard).second)
        << "instr " << s.instr << " shard " << s.shard << " seen twice";
    max_thread = std::max(max_thread, s.thread);
    EXPECT_LE(s.end_ns - s.start_ns, wall_ns)
        << "a span outlasted the whole run";
    per_thread_ns[s.thread] += s.end_ns - s.start_ns;
  }
  // Spans on one thread never overlap, so each thread's summed span
  // time is bounded by the run's wall time (small slack for clock
  // granularity at the span edges).
  for (const auto& [thread, ns] : per_thread_ns) {
    EXPECT_LE(ns, wall_ns + wall_ns / 10)
        << "thread " << thread << " reports more span time than the run";
  }
  ASSERT_EQ(sites.size(), p.instrs().size()) << "an instruction left no span";
  size_t fanned_out = 0;
  for (const auto& [instr, shards] : sites) {
    if (shards.count(-1) > 0) {
      EXPECT_EQ(shards.size(), 1u)
          << "instr " << instr << " is both global and per-shard";
    } else {
      // Fanned out: every shard must report, no phantom shard ids.
      std::set<int32_t> want;
      for (size_t sh = 0; sh < kShards; ++sh) {
        want.insert(static_cast<int32_t>(sh));
      }
      EXPECT_EQ(shards, want) << "instr " << instr;
      ++fanned_out;
    }
  }
  EXPECT_GT(fanned_out, 0u) << "no instruction fanned out across shards";
  // Thread ids are dense per-trace ordinals; with a 2-thread pool plus
  // the coordinating thread they stay small.
  EXPECT_LE(max_thread, 3u);
}

TEST(QueryTraceTest, MorselSpansCarryTheDriverShard) {
  Catalog catalog = BuildCatalog(20000);
  mil::Program p = BuildChain();
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 4;
  opts.morsel_size = 1024;  // force multi-morsel kernels
  opts.trace = true;
  opts.trace_sink = &trace;
  auto result = mil::ExecutionEngine(&catalog, opts).Run(p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t morsel_spans = 0;
  for (const TraceSpan& s : trace.Merge()) {
    if (s.kind != TraceSpanKind::kMorsel) continue;
    ++morsel_spans;
    EXPECT_EQ(s.instr, kTraceNoInstr);
    EXPECT_NE(std::string(s.opcode), "");
  }
  EXPECT_GT(morsel_spans, 1u) << "morsel drivers recorded no spans";
}

TEST(QueryTraceTest, KnobOffRecordsNothing) {
  Catalog catalog = BuildCatalog(2000);
  mil::Program p = BuildChain();
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 2;
  opts.num_shards = 2;
  // trace defaults to false; a wired sink alone must stay silent.
  opts.trace_sink = &trace;
  const uint64_t before = TraceSpansRecorded();
  auto result = mil::ExecutionEngine(&catalog, opts).Run(p);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(TraceSpansRecorded(), before)
      << "untraced execution recorded spans";
  EXPECT_EQ(trace.span_count(), 0u);
}

TEST(QueryTraceTest, RerunClearsThePreviousTrace) {
  Catalog catalog = BuildCatalog(500);
  mil::Program p = BuildChain();
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 1;
  opts.trace = true;
  opts.trace_sink = &trace;
  mil::ExecutionEngine engine(&catalog, opts);
  ASSERT_TRUE(engine.Run(p).ok());
  const size_t first = trace.span_count();
  ASSERT_TRUE(engine.Run(p).ok());
  // The engine Clear()s the sink at Run() entry: the second trace
  // replaces the first instead of accumulating onto it.
  EXPECT_EQ(trace.span_count(), first);
}

TEST(QueryTraceTest, TraceToBatsProjectsSpansFaithfully) {
  Catalog catalog = BuildCatalog(2000);
  mil::Program p = BuildChain();
  QueryTrace trace;
  mil::ExecOptions opts;
  opts.num_threads = 2;
  opts.num_shards = 2;
  opts.trace = true;
  opts.trace_sink = &trace;
  ASSERT_TRUE(mil::ExecutionEngine(&catalog, opts).Run(p).ok());
  std::vector<TraceSpan> spans = trace.Merge();
  TraceTable table = TraceToBats(spans);
  ASSERT_EQ(table.names.size(), table.cols.size());
  ASSERT_EQ(table.rows, spans.size());
  // Spans arrive sorted by start time: the start_ns column must be
  // non-decreasing and each column row-aligned with the span list.
  auto col = [&table](const std::string& name) -> const Bat* {
    for (size_t i = 0; i < table.names.size(); ++i) {
      if (table.names[i] == name) return &table.cols[i];
    }
    return nullptr;
  };
  const Bat* instr = col("instr");
  const Bat* opcode = col("opcode");
  const Bat* shard = col("shard");
  const Bat* start = col("start_ns");
  ASSERT_NE(instr, nullptr);
  ASSERT_NE(opcode, nullptr);
  ASSERT_NE(shard, nullptr);
  ASSERT_NE(start, nullptr);
  int64_t prev = -1;
  for (size_t i = 0; i < spans.size(); ++i) {
    const int64_t want_instr =
        spans[i].instr == kTraceNoInstr
            ? -1
            : static_cast<int64_t>(spans[i].instr);
    EXPECT_EQ(instr->tail().IntAt(i), want_instr);
    EXPECT_EQ(opcode->tail().StrAt(i), spans[i].opcode);
    EXPECT_EQ(shard->tail().IntAt(i), spans[i].shard);
    const int64_t s = start->tail().IntAt(i);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace mirror::monet
