// Morsel-driven intra-operator parallelism and candidate-aware fused
// aggregation: per-morsel results must be bit-identical to the inline
// kernels across the awkward domain shapes (empty, single-morsel,
// non-divisible sizes), and the engine's fused select→aggregate path must
// agree with the sequential Executor while calling Materialize() zero
// times. Also covers the MirrorDb::Load plan-cache invalidation hook and
// the adaptive thread default.

#include <vector>

#include <gtest/gtest.h>

#include "mirror/mirror_db.h"
#include "moa/naive_eval.h"
#include "monet/bat_ops.h"
#include "monet/catalog.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/profiler.h"
#include "monet/worker_pool.h"

namespace mirror::monet {
namespace {

void ExpectBatsEqual(const Bat& a, const Bat& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.Row(i).first.ToString(), b.Row(i).first.ToString())
        << what << " head row " << i;
    EXPECT_EQ(a.Row(i).second.ToString(), b.Row(i).second.ToString())
        << what << " tail row " << i;
  }
}

void ExpectCandsEqual(const CandidateList& a, const CandidateList& b,
                      const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.PositionAt(i), b.PositionAt(i)) << what << " entry " << i;
  }
}

Bat MakeIntBat(size_t n) {
  std::vector<int64_t> vals;
  vals.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    vals.push_back(static_cast<int64_t>((i * 37 + 11) % 101));
  }
  return Bat::DenseInts(std::move(vals));
}

// The boundary shapes morsel splitting must get right: empty, one row,
// exactly one morsel, one over, several morsels with a remainder, and an
// exact multiple.
constexpr size_t kSizes[] = {0, 1, 64, 65, 200, 257, 258, 1000, 1024};
constexpr size_t kMorselSize = 64;

TEST(MorselBoundaryTest, SelectFragmentsMatchInlineKernel) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, kMorselSize};
  for (size_t n : kSizes) {
    Bat b = MakeIntBat(n);
    Value lo = Value::MakeInt(20);
    Value hi = Value::MakeInt(80);
    CandidateList inline_out = SelectRangeCand(b, lo, hi, true, true);
    CandidateList morsel_out = SelectRangeCand(b, lo, hi, true, true,
                                               /*cands=*/nullptr, mx);
    ExpectCandsEqual(inline_out, morsel_out, "select.range full domain");

    // Sparse domain: every third row survives a pre-selection.
    std::vector<uint32_t> every_third;
    for (size_t i = 0; i < n; i += 3) {
      every_third.push_back(static_cast<uint32_t>(i));
    }
    CandidateList domain = CandidateList::FromPositions(every_third);
    CandidateList inline_dom = SelectCmpCand(b, CmpOp::kGe, lo, &domain);
    CandidateList morsel_dom = SelectCmpCand(b, CmpOp::kGe, lo, &domain, mx);
    ExpectCandsEqual(inline_dom, morsel_dom, "select.cmp sparse domain");
  }
}

TEST(MorselBoundaryTest, SemiJoinProbeMorselsShareOneBuildSide) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, kMorselSize};
  Bat keys = Bat::DenseInts({4, 8, 15, 16, 23, 42});
  // Oid-headed key set for the head-membership probe (void heads compare
  // as oids, so the build side must be oid-typed too).
  Bat keys_rev(Column::MakeOids({4, 8, 15, 16, 23, 42}),
               Column::MakeVoid(0, 6));
  for (size_t n : kSizes) {
    Bat probe = MakeIntBat(n);
    // Tail membership: probe tails against key tails.
    CandidateList inline_out = SemiJoinTailCand(probe, keys);
    CandidateList morsel_out = SemiJoinTailCand(probe, keys, nullptr, mx);
    ExpectCandsEqual(inline_out, morsel_out, "semijoin.tail");
    // Head membership over oid heads.
    CandidateList inline_head = SemiJoinHeadCand(probe, keys_rev);
    CandidateList morsel_head = SemiJoinHeadCand(probe, keys_rev, nullptr, mx);
    ExpectCandsEqual(inline_head, morsel_head, "semijoin.head");
  }
}

TEST(MorselBoundaryTest, ParallelMaterializeMatchesSingleGather) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, kMorselSize};
  for (size_t n : kSizes) {
    Bat b = MakeIntBat(n);
    CandidateList cands = SelectCmpCand(b, CmpOp::kGe, Value::MakeInt(30));
    ExpectBatsEqual(Materialize(b, cands), Materialize(b, cands, mx),
                    "materialize ints");
  }
  // String columns: fragments share the base heap, so the multiway
  // append must stay on the shared-heap fast path.
  std::vector<std::string> words;
  for (size_t i = 0; i < 300; ++i) {
    words.push_back(i % 2 == 0 ? "sun" : "sea");
  }
  Bat strs = Bat::DenseStrs(words);
  CandidateList all = CandidateList::All(strs.size());
  Bat gathered = Materialize(strs, all, mx);
  ExpectBatsEqual(Materialize(strs, all), gathered, "materialize strings");
  EXPECT_EQ(gathered.tail().heap(), strs.tail().heap());
}

TEST(FusedAggTest, CandidateFormsMatchMaterializeThenAggregate) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, kMorselSize};
  // Duplicate oid heads (what join outputs look like) — the general
  // hash-grouping path with per-morsel partial maps.
  std::vector<Oid> heads;
  std::vector<double> vals;
  for (size_t i = 0; i < 500; ++i) {
    heads.push_back(static_cast<Oid>(i % 23));
    vals.push_back(static_cast<double>((i * 7) % 13) - 5.0);
  }
  Bat grouped(Column::MakeOids(std::move(heads)),
              Column::MakeDbls(std::move(vals)));
  CandidateList cands =
      SelectCmpCand(grouped, CmpOp::kGe, Value::MakeDbl(-2.5));
  ASSERT_GT(cands.size(), 0u);
  Bat mat = Materialize(grouped, cands);
  ExpectBatsEqual(SumPerHead(mat), SumPerHeadCand(grouped, cands, mx), "sum");
  ExpectBatsEqual(CountPerHead(mat), CountPerHeadCand(grouped, cands, mx),
                  "count");
  ExpectBatsEqual(MaxPerHead(mat), MaxPerHeadCand(grouped, cands, mx), "max");
  ExpectBatsEqual(MinPerHead(mat), MinPerHeadCand(grouped, cands, mx), "min");
  ExpectBatsEqual(AvgPerHead(mat), AvgPerHeadCand(grouped, cands, mx), "avg");
  EXPECT_DOUBLE_EQ(ScalarSum(mat), ScalarSumCand(grouped, cands));
  EXPECT_EQ(ScalarCount(mat), ScalarCountCand(grouped, cands));
}

TEST(FusedAggTest, VoidHeadSingletonFastPathMatchesHashPath) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, kMorselSize};
  for (size_t n : kSizes) {
    Bat b = MakeIntBat(n);  // void head: every group is a singleton
    CandidateList cands = SelectCmpCand(b, CmpOp::kLt, Value::MakeInt(60));
    Bat mat = Materialize(b, cands);
    ExpectBatsEqual(SumPerHead(mat), SumPerHeadCand(b, cands, mx),
                    "singleton sum");
    ExpectBatsEqual(CountPerHead(mat), CountPerHeadCand(b, cands, mx),
                    "singleton count");
  }
}

TEST(FusedAggTest, TopNOverCandidatesPreservesStableTieOrder) {
  WorkerPool pool;
  pool.EnsureWorkers(3);
  MorselExec mx{&pool, /*morsel_size=*/32};
  // Heavy ties: many equal tails, so per-morsel top-n merging must keep
  // the earlier-row-wins order a full stable sort would produce.
  std::vector<int64_t> vals;
  for (size_t i = 0; i < 400; ++i) vals.push_back((i * 5) % 7);
  Bat b = Bat::DenseInts(std::move(vals));
  CandidateList cands = SelectCmpCand(b, CmpOp::kGe, Value::MakeInt(1));
  Bat mat = Materialize(b, cands);
  for (size_t k : {0ul, 1ul, 9ul, 50ul, 1000ul}) {
    for (bool descending : {true, false}) {
      ExpectBatsEqual(TopNByTail(mat, k, descending),
                      TopNByTailCand(b, cands, k, descending, mx), "topn");
    }
  }
}

TEST(FusedAggTest, EngineSelectAggPlanFusesWithZeroMaterializations) {
  Catalog catalog;
  catalog.Put("t.year", MakeIntBat(1000));
  catalog.Put("t.rating", Bat::DenseInts([] {
    std::vector<int64_t> v;
    for (size_t i = 0; i < 1000; ++i) v.push_back(static_cast<int64_t>(i));
    return v;
  }()));

  // load year; select.range; load rating; semijoin; sum.per.head — the
  // canonical select→agg chain.
  mil::Program p;
  mil::Instr load_year;
  load_year.op = mil::OpCode::kLoadNamed;
  load_year.name = "t.year";
  load_year.dst = p.NewReg();
  int year = p.Emit(std::move(load_year));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectRange;
  sel.src0 = year;
  sel.imm0 = Value::MakeInt(20);
  sel.imm1 = Value::MakeInt(90);
  sel.flag0 = true;
  sel.flag1 = true;
  sel.dst = p.NewReg();
  int selected = p.Emit(std::move(sel));
  mil::Instr load_rating;
  load_rating.op = mil::OpCode::kLoadNamed;
  load_rating.name = "t.rating";
  load_rating.dst = p.NewReg();
  int rating = p.Emit(std::move(load_rating));
  mil::Instr semi;
  semi.op = mil::OpCode::kSemiJoinHead;
  semi.src0 = rating;
  semi.src1 = selected;
  semi.dst = p.NewReg();
  int kept = p.Emit(std::move(semi));
  mil::Instr agg;
  agg.op = mil::OpCode::kSumPerHead;
  agg.src0 = kept;
  agg.dst = p.NewReg();
  p.set_result_reg(p.Emit(std::move(agg)));

  auto oracle = mil::Executor(&catalog).Run(p);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  for (int threads : {1, 4}) {
    mil::ExecutionContext session;
    mil::ExecutionEngine engine(
        &catalog, mil::ExecOptions{.num_threads = threads,
                                   .use_candidates = true,
                                   .morsel_size = 128,
                                   .fuse_aggregates = true});
    ResetKernelStats();
    auto run = engine.Run(p, &session);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    KernelStats stats = SnapshotKernelStats();
    EXPECT_EQ(stats.materializations, 0u) << "threads=" << threads;
    EXPECT_GT(stats.fused_agg_ops, 0u) << "threads=" << threads;
    if (threads > 1) EXPECT_GT(stats.morsel_tasks, 0u);
    ExpectBatsEqual(*oracle.value().bat, *run.value().bat, "select→sum plan");
  }
}

TEST(AdaptiveThreadsTest, AutoModeRunsPlansCorrectly) {
  Catalog catalog;
  catalog.Put("t.x", MakeIntBat(500));
  mil::Program p;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "t.x";
  load.dst = p.NewReg();
  int x = p.Emit(std::move(load));
  mil::Instr sel;
  sel.op = mil::OpCode::kSelectCmp;
  sel.cmp_op = CmpOp::kGe;
  sel.src0 = x;
  sel.imm0 = Value::MakeInt(50);
  sel.dst = p.NewReg();
  int selected = p.Emit(std::move(sel));
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = selected;
  sum.dst = p.NewReg();
  p.set_result_reg(p.Emit(std::move(sum)));

  auto oracle = mil::Executor(&catalog).Run(p);
  ASSERT_TRUE(oracle.ok());
  // num_threads = 0: resolves to hardware concurrency (possibly clamped
  // back to 1 on narrow plans/hosts); the result must be unaffected.
  mil::ExecutionContext session;
  mil::ExecutionEngine engine(&catalog, mil::ExecOptions{.num_threads = 0});
  auto run = engine.Run(p, &session);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ASSERT_TRUE(run.value().is_scalar);
  EXPECT_DOUBLE_EQ(oracle.value().scalar, run.value().scalar);
}

TEST(ScalarBinTest, RegisterAndImmediateOperands) {
  Catalog catalog;
  catalog.Put("t.x", Bat::DenseInts({1, 2, 3, 4}));
  mil::Program p;
  mil::Instr load;
  load.op = mil::OpCode::kLoadNamed;
  load.name = "t.x";
  load.dst = p.NewReg();
  int x = p.Emit(std::move(load));
  mil::Instr sum;
  sum.op = mil::OpCode::kScalarSum;
  sum.src0 = x;
  sum.dst = p.NewReg();
  int s = p.Emit(std::move(sum));
  mil::Instr count;
  count.op = mil::OpCode::kScalarCount;
  count.src0 = x;
  count.dst = p.NewReg();
  int c = p.Emit(std::move(count));
  mil::Instr div;
  div.op = mil::OpCode::kScalarBin;
  div.bin_op = BinOp::kDiv;
  div.src0 = s;
  div.src1 = c;
  div.dst = p.NewReg();
  int avg = p.Emit(std::move(div));
  mil::Instr plus;
  plus.op = mil::OpCode::kScalarBin;
  plus.bin_op = BinOp::kAdd;
  plus.src0 = avg;
  plus.imm0 = Value::MakeDbl(0.5);  // immediate right operand
  plus.dst = p.NewReg();
  p.set_result_reg(p.Emit(std::move(plus)));

  for (bool use_engine : {false, true}) {
    base::Result<mil::RunResult> run = base::Status::Internal("unset");
    mil::ExecutionContext session;
    if (use_engine) {
      run = mil::ExecutionEngine(&catalog).Run(p, &session);
    } else {
      run = mil::Executor(&catalog).Run(p);
    }
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    ASSERT_TRUE(run.value().is_scalar);
    EXPECT_DOUBLE_EQ(run.value().scalar, 10.0 / 4.0 + 0.5);
  }
}

}  // namespace
}  // namespace mirror::monet

namespace mirror::db {
namespace {

moa::MoaValue IntRow(int64_t x) {
  return moa::MoaValue::Tuple({moa::MoaValue::Int(x)});
}

TEST(PlanCacheInvalidationTest, LoadNotifiesRegisteredSessions) {
  MirrorDb db;
  ASSERT_TRUE(db.Define("define S as SET<TUPLE<Atomic<int>: x>>;").ok());
  ASSERT_TRUE(db.Load("S", {IntRow(1), IntRow(2), IntRow(3)}).ok());

  monet::mil::ExecutionContext session;
  db.RegisterSession(&session);
  db.RegisterSession(&session);  // idempotent
  EXPECT_EQ(db.registered_session_count(), 1u);

  moa::QueryContext ctx;
  QueryOptions options;
  auto first = db.Query("sum(map[THIS.x](S));", ctx, options, &session);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first.value().is_scalar);
  EXPECT_DOUBLE_EQ(first.value().scalar.AsDouble(), 6.0);
  EXPECT_GT(session.plan_cache_size(), 0u);

  // Re-Load: the hook drops the stale plans, and the re-compiled query
  // sees the new contents (no manual InvalidatePlans()).
  ASSERT_TRUE(db.Load("S", {IntRow(10), IntRow(20)}).ok());
  EXPECT_EQ(session.plan_cache_size(), 0u);
  auto second = db.Query("sum(map[THIS.x](S));", ctx, options, &session);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second.value().scalar.AsDouble(), 30.0);

  // Unregistered sessions are left alone again.
  db.UnregisterSession(&session);
  EXPECT_EQ(db.registered_session_count(), 0u);
  ASSERT_TRUE(db.Load("S", {IntRow(5)}).ok());
  EXPECT_GT(session.plan_cache_size(), 0u);
}

TEST(ScalarAvgTest, FlattenedAvgMatchesNaiveOracle) {
  MirrorDb db;
  ASSERT_TRUE(db.Define("define S as SET<TUPLE<Atomic<int>: x>>;").ok());
  ASSERT_TRUE(db.Load("S", {IntRow(3), IntRow(4), IntRow(11)}).ok());
  moa::QueryContext ctx;
  const std::string query = "avg(map[THIS.x * 2 + 1](S));";
  QueryOptions flattened;
  auto flat = db.Query(query, ctx, flattened);
  ASSERT_TRUE(flat.ok()) << flat.status().ToString();
  QueryOptions naive;
  naive.flattened = false;
  auto oracle = db.Query(query, ctx, naive);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_TRUE(flat.value().is_scalar);
  ASSERT_TRUE(oracle.value().is_scalar);
  EXPECT_NEAR(flat.value().scalar.AsDouble(), oracle.value().scalar.AsDouble(),
              1e-9);
  EXPECT_DOUBLE_EQ(flat.value().scalar.AsDouble(), 13.0);
}

}  // namespace
}  // namespace mirror::db
