// The recycler's contracts in isolation: predicate normalization must
// refuse anything whose double-space interval is unsound (kSelectNeq,
// strings, int64 literals past 2^53, non-finite doubles), subsumption
// must respect inclusivity at shared endpoints, generation fencing must
// make both stale lookups and stale inserts impossible, and the
// cost x frequency admission policy must hold bytes under the budget
// while keeping hot entries over cold ones — including across a fence,
// which drops entries but not popularity.

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "monet/bat_ops.h"
#include "monet/candidate.h"
#include "monet/mil.h"
#include "monet/recycler.h"
#include "monet/value.h"

namespace mirror::monet {
namespace {

namespace mil = monet::mil;

constexpr double kInf = std::numeric_limits<double>::infinity();

mil::Instr SelectEq(Value v) {
  mil::Instr i;
  i.op = mil::OpCode::kSelectEq;
  i.imm0 = std::move(v);
  return i;
}

mil::Instr SelectCmp(CmpOp op, Value v) {
  mil::Instr i;
  i.op = mil::OpCode::kSelectCmp;
  i.cmp_op = op;
  i.imm0 = std::move(v);
  return i;
}

mil::Instr SelectRange(Value lo, Value hi, bool lo_incl, bool hi_incl) {
  mil::Instr i;
  i.op = mil::OpCode::kSelectRange;
  i.imm0 = std::move(lo);
  i.imm1 = std::move(hi);
  i.flag0 = lo_incl;
  i.flag1 = hi_incl;
  return i;
}

SelectPredicate Pred(const std::string& bat, double lo, double hi,
                     bool lo_incl = true, bool hi_incl = true) {
  SelectPredicate p;
  p.bat = bat;
  p.lo = lo;
  p.hi = hi;
  p.lo_incl = lo_incl;
  p.hi_incl = hi_incl;
  return p;
}

std::shared_ptr<const std::vector<uint8_t>> Payload(size_t n, uint8_t fill) {
  return std::make_shared<const std::vector<uint8_t>>(n, fill);
}

std::shared_ptr<const CandidateList> Cands(std::vector<uint32_t> positions) {
  return std::make_shared<const CandidateList>(
      CandidateList::FromPositions(std::move(positions)));
}

// -- Predicate normalization. ------------------------------------------------

TEST(SelectPredicateTest, NormalizesEveryIntervalShape) {
  SelectPredicate p;
  ASSERT_TRUE(SelectPredicate::FromInstr(SelectEq(Value::MakeInt(7)), "age", &p));
  EXPECT_EQ(p.bat, "age");
  EXPECT_EQ(p.lo, 7.0);
  EXPECT_EQ(p.hi, 7.0);
  EXPECT_TRUE(p.lo_incl);
  EXPECT_TRUE(p.hi_incl);

  ASSERT_TRUE(SelectPredicate::FromInstr(SelectCmp(CmpOp::kLt, Value::MakeDbl(2.5)),
                                         "score", &p));
  EXPECT_EQ(p.lo, -kInf);
  EXPECT_EQ(p.hi, 2.5);
  EXPECT_FALSE(p.hi_incl);

  ASSERT_TRUE(SelectPredicate::FromInstr(SelectCmp(CmpOp::kLe, Value::MakeInt(9)),
                                         "score", &p));
  EXPECT_EQ(p.hi, 9.0);
  EXPECT_TRUE(p.hi_incl);

  ASSERT_TRUE(SelectPredicate::FromInstr(SelectCmp(CmpOp::kGt, Value::MakeInt(30)),
                                         "age", &p));
  EXPECT_EQ(p.lo, 30.0);
  EXPECT_FALSE(p.lo_incl);
  EXPECT_EQ(p.hi, kInf);

  ASSERT_TRUE(SelectPredicate::FromInstr(SelectCmp(CmpOp::kGe, Value::MakeInt(30)),
                                         "age", &p));
  EXPECT_TRUE(p.lo_incl);

  ASSERT_TRUE(SelectPredicate::FromInstr(
      SelectRange(Value::MakeInt(10), Value::MakeInt(20), true, false), "age", &p));
  EXPECT_EQ(p.lo, 10.0);
  EXPECT_EQ(p.hi, 20.0);
  EXPECT_TRUE(p.lo_incl);
  EXPECT_FALSE(p.hi_incl);
}

TEST(SelectPredicateTest, RefusesUnsoundShapes) {
  SelectPredicate p;
  // Not-equal is not an interval.
  EXPECT_FALSE(SelectPredicate::FromInstr(
      SelectCmp(CmpOp::kNeq, Value::MakeInt(5)), "age", &p));
  // Strings are compared in string space, not double space.
  EXPECT_FALSE(
      SelectPredicate::FromInstr(SelectEq(Value::MakeStr("bob")), "name", &p));
  // An int64 past 2^53 does not round-trip through double: two distinct
  // literals could collapse onto one interval key.
  const int64_t big = (int64_t{1} << 53) + 1;
  EXPECT_FALSE(SelectPredicate::FromInstr(SelectEq(Value::MakeInt(big)), "id", &p));
  // The exact power of two itself is fine.
  EXPECT_TRUE(SelectPredicate::FromInstr(
      SelectEq(Value::MakeInt(int64_t{1} << 53)), "id", &p));
  // Non-finite double bounds are refused.
  EXPECT_FALSE(SelectPredicate::FromInstr(
      SelectEq(Value::MakeDbl(std::numeric_limits<double>::quiet_NaN())), "x",
      &p));
  EXPECT_FALSE(
      SelectPredicate::FromInstr(SelectEq(Value::MakeDbl(kInf)), "x", &p));
}

TEST(SelectPredicateTest, SubsumptionRespectsInclusivity) {
  // Strict containment.
  EXPECT_TRUE(Pred("a", 40, kInf).SubsumedBy(Pred("a", 30, kInf)));
  EXPECT_FALSE(Pred("a", 30, kInf).SubsumedBy(Pred("a", 40, kInf)));
  // Same interval subsumes itself.
  EXPECT_TRUE(Pred("a", 10, 20).SubsumedBy(Pred("a", 10, 20)));
  // Equal endpoint: inclusive narrow end needs an inclusive wide end.
  EXPECT_FALSE(
      Pred("a", 10, 20, true, true).SubsumedBy(Pred("a", 10, 20, false, true)));
  EXPECT_TRUE(
      Pred("a", 10, 20, false, true).SubsumedBy(Pred("a", 10, 20, true, true)));
  EXPECT_FALSE(
      Pred("a", 10, 20, true, true).SubsumedBy(Pred("a", 10, 20, true, false)));
  EXPECT_TRUE(
      Pred("a", 10, 20, true, false).SubsumedBy(Pred("a", 10, 20, true, true)));
  // Different base BATs never subsume.
  EXPECT_FALSE(Pred("a", 40, 50).SubsumedBy(Pred("b", 0, 100)));
}

TEST(SelectPredicateTest, IntervalKeySeparatesInclusivity) {
  EXPECT_NE(Pred("a", 10, 20, true, true).IntervalKey(),
            Pred("a", 10, 20, false, true).IntervalKey());
  EXPECT_NE(Pred("a", 10, 20, true, true).IntervalKey(),
            Pred("a", 10, 20, true, false).IntervalKey());
  EXPECT_EQ(Pred("a", 10, 20).IntervalKey(), Pred("b", 10, 20).IntervalKey())
      << "bat name is bucketed separately, not part of the interval key";
}

// -- Result section. ---------------------------------------------------------

TEST(RecyclerTest, ResultRoundTripIsBitIdentical) {
  Recycler r;
  const uint64_t gen = r.generation();
  auto payload = Payload(1000, 0xAB);
  r.InsertResult(gen, "q1", payload, 500);
  auto hit = r.LookupResult(gen, "q1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), payload.get()) << "the very same bytes, not a copy";
  EXPECT_EQ(r.LookupResult(gen, "q2"), nullptr);
  RecyclerStats s = r.stats();
  EXPECT_EQ(s.result_hits, 1u);
  EXPECT_EQ(s.result_misses, 1u);
  EXPECT_EQ(s.result_entries, 1u);
  EXPECT_GT(s.bytes_held, 1000u);
}

TEST(RecyclerTest, StaleGenerationNeitherServesNorAdmits) {
  Recycler r;
  const uint64_t old_gen = r.generation();
  r.InsertResult(old_gen, "q1", Payload(100, 1), 10);
  r.Fence();
  // The entry is gone and the old generation can do nothing.
  EXPECT_EQ(r.LookupResult(old_gen, "q1"), nullptr);
  EXPECT_EQ(r.LookupResult(r.generation(), "q1"), nullptr);
  r.InsertResult(old_gen, "q2", Payload(100, 2), 10);
  EXPECT_EQ(r.LookupResult(r.generation(), "q2"), nullptr)
      << "an execution that started before the fence must not publish";
  EXPECT_EQ(r.stats().result_entries, 0u);
  EXPECT_EQ(r.stats().bytes_held, 0u);
  EXPECT_GE(r.stats().invalidations, 1u);
}

TEST(RecyclerTest, FenceAdvancesGenerationTwicePerMutation) {
  Recycler r;
  const uint64_t g0 = r.generation();
  // The mutation protocol fences before and after the apply window.
  const uint64_t g1 = r.Fence();
  const uint64_t g2 = r.Fence();
  EXPECT_EQ(g1, g0 + 1);
  EXPECT_EQ(g2, g0 + 2);
  EXPECT_EQ(r.generation(), g2);
}

TEST(RecyclerTest, BudgetIsAHardCeiling) {
  Recycler r(/*budget_bytes=*/4096);
  const uint64_t gen = r.generation();
  for (int i = 0; i < 50; ++i) {
    r.InsertResult(gen, "q" + std::to_string(i), Payload(300, uint8_t(i)), 10);
    EXPECT_LE(r.stats().bytes_held, 4096u);
  }
  RecyclerStats s = r.stats();
  EXPECT_LE(s.bytes_held, 4096u);
  EXPECT_GT(s.evictions + s.admissions_rejected, 0u)
      << "50 x ~428-byte entries cannot all fit in 4096 bytes";
}

TEST(RecyclerTest, HotEntriesDisplaceColdOnesButNotViceVersa) {
  Recycler r(/*budget_bytes=*/1200);
  const uint64_t gen = r.generation();
  // Make "hot" popular before it is ever admitted (misses count).
  for (int i = 0; i < 10; ++i) r.LookupResult(gen, "hot");
  // Two cold entries fill the budget (each ~431 bytes).
  r.InsertResult(gen, "cold1", Payload(300, 1), 10);
  r.InsertResult(gen, "cold2", Payload(300, 2), 10);
  ASSERT_EQ(r.stats().result_entries, 2u);
  // The hot entry displaces a cold one.
  r.InsertResult(gen, "hot", Payload(300, 3), 10);
  EXPECT_NE(r.LookupResult(gen, "hot"), nullptr);
  EXPECT_GE(r.stats().evictions, 1u);
  // A fresh cold entry cannot displace the hot one: the remaining cold
  // entry and the newcomer tie, and ties do not evict.
  const uint64_t rejected_before = r.stats().admissions_rejected;
  r.InsertResult(gen, "cold3", Payload(300, 4), 10);
  EXPECT_NE(r.LookupResult(gen, "hot"), nullptr);
  EXPECT_GT(r.stats().admissions_rejected, rejected_before);
}

TEST(RecyclerTest, PopularitySurvivesTheFence) {
  Recycler r(/*budget_bytes=*/1200);
  uint64_t gen = r.generation();
  for (int i = 0; i < 10; ++i) r.LookupResult(gen, "hot");
  gen = r.Fence();
  // After the fence the cache is empty but "hot" is still hot: admitted
  // entries carry the surviving frequency, so it displaces cold ones.
  r.InsertResult(gen, "cold1", Payload(300, 1), 10);
  r.InsertResult(gen, "cold2", Payload(300, 2), 10);
  r.InsertResult(gen, "hot", Payload(300, 3), 10);
  EXPECT_NE(r.LookupResult(gen, "hot"), nullptr);
  EXPECT_GE(r.stats().evictions, 1u);
}

TEST(RecyclerTest, ShrinkingTheBudgetEvictsDownToFit) {
  Recycler r;
  const uint64_t gen = r.generation();
  for (int i = 0; i < 8; ++i) {
    r.InsertResult(gen, "q" + std::to_string(i), Payload(1000, uint8_t(i)),
                   10);
  }
  ASSERT_EQ(r.stats().result_entries, 8u);
  r.set_budget_bytes(2500);
  EXPECT_LE(r.stats().bytes_held, 2500u);
  EXPECT_LT(r.stats().result_entries, 8u);
  EXPECT_EQ(r.budget_bytes(), 2500u);
}

TEST(RecyclerTest, DuplicateInsertKeepsTheIncumbent) {
  Recycler r;
  const uint64_t gen = r.generation();
  auto first = Payload(100, 1);
  r.InsertResult(gen, "q", first, 10);
  r.InsertResult(gen, "q", Payload(100, 2), 10);
  auto hit = r.LookupResult(gen, "q");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), first.get());
}

// -- Candidate section. ------------------------------------------------------

TEST(RecyclerTest, CandidateExactMatchReplays) {
  Recycler r;
  const uint64_t gen = r.generation();
  auto list = Cands({1, 5, 9});
  r.InsertCandidates(gen, Pred("age", 30, kInf, false, true), list, 100);
  bool subsumed = true;
  auto hit =
      r.LookupCandidates(gen, Pred("age", 30, kInf, false, true), &subsumed);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), list.get());
  EXPECT_FALSE(subsumed);
  RecyclerStats s = r.stats();
  EXPECT_EQ(s.candidate_hits, 1u);
  EXPECT_EQ(s.candidate_entries, 1u);
}

TEST(RecyclerTest, SubsumptionServesTheSmallestSuperset) {
  Recycler r;
  const uint64_t gen = r.generation();
  auto wide = Cands({1, 2, 3, 4, 5, 6, 7, 8});
  auto tight = Cands({4, 5, 6});
  r.InsertCandidates(gen, Pred("age", 0, kInf), wide, 100);
  r.InsertCandidates(gen, Pred("age", 30, 60), tight, 100);
  bool subsumed = false;
  // [40, 50] is contained in both; the smaller list wins.
  auto hit = r.LookupCandidates(gen, Pred("age", 40, 50), &subsumed);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(subsumed);
  EXPECT_EQ(hit.get(), tight.get());
  EXPECT_EQ(r.stats().candidate_subsumption_hits, 1u);
  // A predicate contained in neither misses.
  subsumed = true;
  EXPECT_EQ(r.LookupCandidates(gen, Pred("other", 40, 50), &subsumed),
            nullptr);
  EXPECT_FALSE(subsumed);
}

TEST(RecyclerTest, SubsumptionHonorsInclusivityAtTheEdge) {
  Recycler r;
  const uint64_t gen = r.generation();
  // Cached: age > 30 (exclusive lower bound).
  r.InsertCandidates(gen, Pred("age", 30, kInf, false, true), Cands({1, 2}),
                     100);
  bool subsumed = false;
  // age >= 30 includes 30 itself, which the cached list may lack.
  EXPECT_EQ(r.LookupCandidates(gen, Pred("age", 30, kInf, true, true),
                               &subsumed),
            nullptr);
  // age > 40 is strictly inside.
  EXPECT_NE(r.LookupCandidates(gen, Pred("age", 40, kInf, false, true),
                               &subsumed),
            nullptr);
  EXPECT_TRUE(subsumed);
}

TEST(RecyclerTest, FenceDropsCandidatesToo) {
  Recycler r;
  const uint64_t gen = r.generation();
  r.InsertCandidates(gen, Pred("age", 0, 10), Cands({1}), 100);
  r.Fence();
  bool subsumed = false;
  EXPECT_EQ(r.LookupCandidates(r.generation(), Pred("age", 0, 10), &subsumed),
            nullptr);
  EXPECT_EQ(r.stats().candidate_entries, 0u);
  r.InsertCandidates(gen, Pred("age", 0, 10), Cands({1}), 100);
  EXPECT_EQ(r.stats().candidate_entries, 0u)
      << "stale-generation candidate insert must be refused";
}

}  // namespace
}  // namespace mirror::monet
