// Overload and chaos tests of the query-serving daemon: a 64-client
// mixed hostile/healthy storm over TCP, per-query memory budgets,
// streamed results and the result-size cap, the slow-client policy,
// quiesced reloads under live traffic, and the retry/backoff client.
// The invariants throughout: the server never crashes, every shed is a
// typed kOverloaded ERROR, healthy clients' results stay bit-identical
// to direct execution, and no acknowledged write is ever lost.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "daemon/query_server.h"
#include "daemon/wire.h"
#include "daemon/wire_client.h"
#include "mirror/mirror_db.h"
#include "monet/fault_injector.h"

namespace mirror::daemon {
namespace {

namespace wire = mirror::daemon::wire;

constexpr const char* kWords[] = {"sun",  "sea",  "sky",   "rock", "tree",
                                  "bird", "sand", "wave",  "moss", "dune",
                                  "reef", "palm", "surf",  "cliff", "cloud"};

void BuildCatalog(db::MirrorDb* database, uint64_t seed, int rows) {
  base::Rng rng(seed);
  ASSERT_TRUE(database
                  ->Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, Atomic<int>: rating, "
                           "Atomic<int>: ref>>;")
                  .ok());
  std::vector<moa::MoaValue> tuples;
  tuples.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    tuples.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("u" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::Int(rng.UniformInt(0, 1000)),
         moa::MoaValue::Int(rng.UniformInt(0, rows - 1))}));
  }
  ASSERT_TRUE(database->Load("Cat", std::move(tuples)).ok());
}

bool SameBits(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(double));
  std::memcpy(&ub, &b, sizeof(double));
  return ua == ub;
}

/// Bit-exact comparison, usable off the main thread (returns instead of
/// ASSERTing so storm workers can count failures).
bool ResultsIdentical(const wire::ResultReply& got,
                      const moa::EvalOutput& want) {
  if (got.is_scalar != want.is_scalar) return false;
  if (want.is_scalar) {
    if (want.scalar.type() == monet::ValueType::kDbl) {
      return SameBits(got.scalar.d(), want.scalar.d());
    }
    return got.scalar == want.scalar;
  }
  if (got.bat == nullptr || want.bat == nullptr) return false;
  if (got.bat->size() != want.bat->size()) return false;
  for (size_t i = 0; i < want.bat->size(); ++i) {
    auto [gh, gt] = got.bat->Row(i);
    auto [wh, wt] = want.bat->Row(i);
    if (!(gh == wh)) return false;
    bool tails_equal = wt.type() == monet::ValueType::kDbl
                           ? SameBits(gt.d(), wt.d())
                           : gt == wt;
    if (!tails_equal) return false;
  }
  return true;
}

template <typename Pred>
bool EventuallyTrue(Pred pred) {
  for (int i = 0; i < 4000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Chaos injectors (client-side, via wire::WrapChaos).

/// Passes writes through until the Nth one, which is cut short and the
/// connection hard-closed — a mid-frame disconnect.
class MidFrameDisconnector : public monet::NetFaultInjector {
 public:
  explicit MidFrameDisconnector(int writes_until_cut)
      : remaining_(writes_until_cut) {}

  WriteFault BeforeWrite(size_t n) override {
    WriteFault f;
    if (--remaining_ <= 0) {
      f.max_bytes = n > 3 ? 3 : 0;  // a few bytes of the frame escape
      f.disconnect_after = true;
    }
    return f;
  }

 private:
  int remaining_;
};

/// Every write lands one byte at a time: a maximally fragmented but
/// well-behaved peer. The server's incremental reassembly must not care.
class OneBytePerWrite : public monet::NetFaultInjector {
 public:
  WriteFault BeforeWrite(size_t) override {
    WriteFault f;
    f.max_bytes = 1;
    return f;
  }
};

/// Dawdles before every read — the server's outbound buffer absorbs the
/// latency (and its slow-client policy must NOT trip at this mild pace).
class SlowReader : public monet::NetFaultInjector {
 public:
  explicit SlowReader(uint64_t delay_micros) : delay_(delay_micros) {}

  ReadFault BeforeRead(size_t) override {
    ReadFault f;
    f.delay_micros = delay_;
    return f;
  }

 private:
  uint64_t delay_;
};

// ---------------------------------------------------------------------------
// The storm: 64 mixed clients against one small, shed-happy server.

TEST(ChaosStormTest, SixtyFourMixedClientsNoCrashNoCorruptionNoLostAcks) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/21, /*rows=*/20000);
  ASSERT_TRUE(database
                  .Define("define Pad as SET<TUPLE<Atomic<URL>: u, "
                          "Atomic<int>: val>>;")
                  .ok());
  {
    std::vector<moa::MoaValue> seedrows;
    for (int i = 0; i < 8; ++i) {
      seedrows.push_back(moa::MoaValue::Tuple(
          {moa::MoaValue::Str("p" + std::to_string(i)),
           moa::MoaValue::Int(i)}));
    }
    ASSERT_TRUE(database.Load("Pad", std::move(seedrows)).ok());
  }

  // Deliberately undersized: 3 workers and an 8-deep queue force real
  // sheds under 64 clients.
  QueryServer::Options opt;
  opt.worker_threads = 3;
  opt.request_queue_limit = 8;
  opt.retry_after_ms = 2;
  QueryServer server(&database, opt);
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // The healthy readers' ground truth, computed before the storm.
  std::vector<std::string> read_queries;
  std::vector<moa::EvalOutput> expected;
  moa::QueryContext ctx;
  for (int q = 0; q < 4; ++q) {
    int lo = 1975 + 6 * q;
    read_queries.push_back("count(select[THIS.year >= " + std::to_string(lo) +
                           "](Cat));");
    read_queries.push_back("map[THIS.rating * " + std::to_string(q + 2) +
                           "](select[THIS.year >= " + std::to_string(lo + 20) +
                           "](Cat));");
  }
  for (const std::string& q : read_queries) {
    auto direct = database.Query(q, ctx);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    expected.push_back(direct.TakeValue());
  }

  auto dial = [&]() { return wire::TcpConnect("127.0.0.1", port.value()); };

  std::atomic<int> read_failures{0};
  std::atomic<int> write_failures{0};
  std::atomic<long long> acked_values{0};
  std::vector<std::thread> clients;

  // 16 healthy readers behind the retrying client: sheds and transient
  // disconnects are absorbed, results must be bit-identical.
  for (int c = 0; c < 16; ++c) {
    clients.emplace_back([&, c] {
      wire::RetryPolicy policy;
      policy.max_attempts = 64;
      policy.initial_backoff_ms = 1;
      policy.max_backoff_ms = 16;
      policy.jitter_seed = static_cast<uint32_t>(c + 1);
      wire::ReconnectingClient client(dial, "healthy" + std::to_string(c),
                                      policy);
      for (int round = 0; round < 6; ++round) {
        size_t qi = static_cast<size_t>(c + round) % read_queries.size();
        auto result = client.Query(read_queries[qi], ctx);
        if (!result.ok() || !ResultsIdentical(result.value(), expected[qi])) {
          ++read_failures;
          return;
        }
      }
      client.Close().ok();
    });
  }

  // 8 writers appending distinct values to the Pad BAT. A value counts
  // as acked only when APPEND_OK came back; overload sheds retry.
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      auto conn = dial();
      if (!conn.ok()) {
        ++write_failures;
        return;
      }
      wire::WireClient client(conn.TakeValue());
      if (!client.Hello("writer" + std::to_string(c)).ok()) {
        ++write_failures;
        return;
      }
      for (int i = 0; i < 8; ++i) {
        int value = 1000 * c + i;
        bool acked = false;
        for (int attempt = 0; attempt < 200 && !acked; ++attempt) {
          auto ack = client.Append("Pad.val",
                                   monet::Column::MakeInts({value}));
          if (ack.ok()) {
            acked = true;
          } else if (ack.status().code() == base::StatusCode::kOverloaded) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<uint32_t>(1, client.last_retry_after_ms())));
          } else {
            ++write_failures;  // anything else is a real bug
            return;
          }
        }
        if (acked) {
          acked_values.fetch_add(1);
        } else {
          ++write_failures;
          return;
        }
      }
      client.Close().ok();
    });
  }

  // 10 mid-frame disconnectors: die partway through their QUERY frame.
  std::vector<std::unique_ptr<MidFrameDisconnector>> cutters;
  for (int c = 0; c < 10; ++c) {
    cutters.push_back(std::make_unique<MidFrameDisconnector>(3 + c % 3));
  }
  for (int c = 0; c < 10; ++c) {
    clients.emplace_back([&, c] {
      auto conn = dial();
      if (!conn.ok()) return;
      wire::WireClient client(
          wire::WrapChaos(conn.TakeValue(), cutters[c].get()));
      client.Hello("cutter" + std::to_string(c)).ok();
      // Some die inside HELLO already; the rest die inside this QUERY.
      client.Query(read_queries[0], ctx).ok();
    });
  }

  // 10 malformed flooders: garbage bytes, unknown frame types. The
  // server answers what it can and drops them; it must not wobble.
  for (int c = 0; c < 10; ++c) {
    clients.emplace_back([&, c] {
      auto conn = dial();
      if (!conn.ok()) return;
      base::Rng rng(static_cast<uint64_t>(777 + c));
      std::vector<uint8_t> noise(64 + rng.Uniform(128));
      for (uint8_t& b : noise) {
        b = static_cast<uint8_t>(rng.Uniform(256));
      }
      // Writes fail once the server hangs up on the unknown type; both
      // outcomes are fine, crashing the server is not.
      conn.value()->Write(noise.data(), noise.size()).ok();
      conn.value()->Close();
    });
  }

  // 10 one-byte-per-write clients: slow, fragmented, but correct — they
  // must get real, bit-identical results (possibly after shed retries).
  std::vector<std::unique_ptr<OneBytePerWrite>> dribblers;
  for (int c = 0; c < 10; ++c) {
    dribblers.push_back(std::make_unique<OneBytePerWrite>());
  }
  for (int c = 0; c < 10; ++c) {
    clients.emplace_back([&, c] {
      auto conn = dial();
      if (!conn.ok()) {
        ++read_failures;
        return;
      }
      wire::WireClient client(
          wire::WrapChaos(conn.TakeValue(), dribblers[c].get()));
      if (!client.Hello("dribble" + std::to_string(c)).ok()) {
        ++read_failures;
        return;
      }
      size_t qi = static_cast<size_t>(c) % read_queries.size();
      bool done = false;
      for (int attempt = 0; attempt < 200 && !done; ++attempt) {
        auto result = client.Query(read_queries[qi], ctx);
        if (result.ok()) {
          if (!ResultsIdentical(result.value(), expected[qi])) {
            ++read_failures;
          }
          done = true;
        } else if (result.status().code() != base::StatusCode::kOverloaded) {
          ++read_failures;
          return;
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      if (!done) ++read_failures;
    });
  }

  // 10 slow readers: 2 ms of dawdling before every read.
  std::vector<std::unique_ptr<SlowReader>> sleepers;
  for (int c = 0; c < 10; ++c) {
    sleepers.push_back(std::make_unique<SlowReader>(2000));
  }
  for (int c = 0; c < 10; ++c) {
    clients.emplace_back([&, c] {
      auto conn = dial();
      if (!conn.ok()) {
        ++read_failures;
        return;
      }
      wire::WireClient client(
          wire::WrapChaos(conn.TakeValue(), sleepers[c].get()));
      if (!client.Hello("sleepy" + std::to_string(c)).ok()) {
        ++read_failures;
        return;
      }
      size_t qi = static_cast<size_t>(c + 1) % read_queries.size();
      for (int attempt = 0; attempt < 200; ++attempt) {
        auto result = client.Query(read_queries[qi], ctx);
        if (result.ok()) {
          if (!ResultsIdentical(result.value(), expected[qi])) {
            ++read_failures;
          }
          return;
        }
        if (result.status().code() != base::StatusCode::kOverloaded) {
          ++read_failures;
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ++read_failures;  // never got through
    });
  }

  for (std::thread& t : clients) t.join();

  EXPECT_EQ(read_failures.load(), 0);
  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_EQ(acked_values.load(), 64);  // 8 writers x 8 values, all acked

  // The undersized server genuinely shed load, and survived: a fresh
  // client still gets correct answers.
  wire::ServerWireStats stats = server.stats();
  EXPECT_GT(stats.requests_shed, 0u) << "storm never tripped admission";
  EXPECT_GT(stats.queue_depth_high_water, 0u);
  {
    auto conn = dial();
    ASSERT_TRUE(conn.ok());
    wire::WireClient probe(conn.TakeValue());
    ASSERT_TRUE(probe.Hello("aftermath").ok());
    auto result = probe.Query(read_queries[0], ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(ResultsIdentical(result.value(), expected[0]));
    probe.Close().ok();
  }
  server.Shutdown();

  // Zero acked writes lost: every acknowledged append landed in the
  // Pad.val append domain (8 seed rows + 64 acked values, exactly —
  // sheds happened strictly before application).
  auto pad_rows = database.catalog()->AppendDomainRows("Pad.val");
  ASSERT_TRUE(pad_rows.ok()) << pad_rows.status().ToString();
  EXPECT_EQ(pad_rows.value(), 8u + 64u);
}

// ---------------------------------------------------------------------------
// Per-query memory budgets.

TEST(QueryServerChaosTest, MemoryBudgetTripsCleanlyAndSessionSurvives) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/5, /*rows=*/200000);
  QueryServer server(&database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("budgeted").ok());

  // A 16 KiB budget cannot hold the materialized selection + maps.
  ASSERT_TRUE(client.Set({{"memory_budget_bytes", 16384}}).ok());
  const std::string heavy =
      "map[THIS * 2 + 1](map[THIS.rating + 7](select[THIS.year >= "
      "1970](Cat)));";
  moa::QueryContext ctx;
  auto starved = client.Query(heavy, ctx);
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), base::StatusCode::kResourceExhausted)
      << starved.status().ToString();

  // The ERROR was clean: lifting the budget on the SAME session yields
  // the full, undisturbed result.
  ASSERT_TRUE(client.Set({{"memory_budget_bytes", 0}}).ok());
  auto direct = database.Query(heavy, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(heavy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ResultsIdentical(result.value(), direct.value()));

  // The budget knob echoes through SET and STATS, and the profiler saw
  // the query's high-water mark.
  auto echo = client.Set({{"memory_budget_bytes", 1 << 20}});
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo.value().memory_budget_bytes, 1u << 20);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), 1u);
  EXPECT_EQ(stats.value().sessions[0].options.memory_budget_bytes, 1u << 20);
  EXPECT_GT(stats.value().server.peak_query_bytes, 0u);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Streamed results and the result-size cap.

TEST(QueryServerChaosTest, LargeResultStreamsInChunksBitIdentically) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/9, /*rows=*/100000);
  QueryServer::Options opt;
  opt.result_chunk_bytes = 4096;  // force dozens of chunks
  QueryServer server(&database, opt);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("streamer").ok());

  const std::string wide =
      "map[THIS.rating + 1](select[THIS.year >= 1970](Cat));";
  moa::QueryContext ctx;
  auto direct = database.Query(wide, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(wide, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(client.last_result_chunks(), 1u)
      << "a ~1 MB result should not fit one 4 KiB chunk";
  EXPECT_TRUE(ResultsIdentical(result.value(), direct.value()));

  // A scalar reply still rides a single RESULT frame.
  auto small = client.Query("count(Cat);", ctx);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(client.last_result_chunks(), 0u);

  wire::ServerWireStats stats = server.stats();
  EXPECT_GT(stats.result_chunks_streamed, 1u);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(QueryServerChaosTest, ResultCapRejectsOversizedResultsTyped) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/9, /*rows=*/100000);
  QueryServer::Options opt;
  opt.max_result_bytes = 1024;
  QueryServer server(&database, opt);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("capped").ok());

  moa::QueryContext ctx;
  auto refused =
      client.Query("map[THIS.rating](select[THIS.year >= 1970](Cat));", ctx);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), base::StatusCode::kResourceExhausted);

  // Small results on the same session are unaffected.
  auto count = client.Query("count(Cat);", ctx);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value().scalar.AsDouble(), 100000.0);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Hostile framing over real TCP: oversized headers and truncation.

TEST(QueryServerChaosTest, OversizedFrameGetsTypedErrorThenDropOverTcp) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/3, /*rows=*/2000);
  QueryServer server(&database);
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok());

  // Header promising a payload beyond the frame limit: the server must
  // answer with one best-effort typed ERROR, then hang up (the stream
  // cannot be resynchronized).
  auto conn = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(conn.ok());
  uint32_t huge = wire::kMaxFramePayload + 1;
  uint8_t header[5] = {static_cast<uint8_t>(wire::FrameType::kQuery),
                       static_cast<uint8_t>(huge & 0xff),
                       static_cast<uint8_t>((huge >> 8) & 0xff),
                       static_cast<uint8_t>((huge >> 16) & 0xff),
                       static_cast<uint8_t>((huge >> 24) & 0xff)};
  ASSERT_TRUE(conn.value()->Write(header, sizeof(header)).ok());
  auto err = wire::ReadFrame(conn.value().get());
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  ASSERT_EQ(err.value().type, wire::FrameType::kError);
  base::Status decoded = wire::DecodeError(err.value().payload);
  EXPECT_EQ(decoded.code(), base::StatusCode::kParseError);
  auto eof = wire::ReadFrame(conn.value().get());
  EXPECT_FALSE(eof.ok());

  // Truncation sweep: valid QUERY frames cut at various byte boundaries,
  // then closed. Each drop is silent; the server survives all of them.
  wire::QueryRequest req;
  req.text = "count(select[THIS.year >= 1990](Cat));";
  std::vector<uint8_t> payload = wire::EncodeQueryRequest(req);
  std::vector<uint8_t> frame;
  frame.push_back(static_cast<uint8_t>(wire::FrameType::kQuery));
  uint32_t n = static_cast<uint32_t>(payload.size());
  for (int b = 0; b < 4; ++b) {
    frame.push_back(static_cast<uint8_t>((n >> (8 * b)) & 0xff));
  }
  frame.insert(frame.end(), payload.begin(), payload.end());
  for (size_t cut = 1; cut < frame.size(); cut += 7) {
    auto torn = wire::TcpConnect("127.0.0.1", port.value());
    ASSERT_TRUE(torn.ok()) << "cut at " << cut;
    ASSERT_TRUE(torn.value()->Write(frame.data(), cut).ok());
    torn.value()->Close();
  }
  EXPECT_TRUE(EventuallyTrue([&] { return server.active_connections() == 0; }));

  // And a healthy client still gets served.
  auto fresh = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(fresh.ok());
  wire::WireClient client(fresh.TakeValue());
  ASSERT_TRUE(client.Hello("post-sweep").ok());
  moa::QueryContext ctx;
  EXPECT_TRUE(client.Query(req.text, ctx).ok());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// The slow-client policy: a reader that stops reading is disconnected.

TEST(QueryServerChaosTest, StalledReaderIsDisconnectedAndCounted) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/9, /*rows=*/400000);
  QueryServer::Options opt;
  opt.outbound_buffer_limit = 256 * 1024;
  opt.result_chunk_bytes = 32 * 1024;
  opt.write_stall_timeout_ms = 150;
  QueryServer server(&database, opt);
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok());

  // Ask for a multi-megabyte result and never read a byte: the kernel
  // socket buffer fills, the server's outbound buffer parks at its cap,
  // and the stall timeout must cut the connection loose.
  auto conn = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(conn.ok());
  wire::WireClient client(conn.TakeValue());
  ASSERT_TRUE(client.Hello("stalled").ok());
  wire::QueryRequest req;
  req.text = "map[THIS.rating](select[THIS.year >= 1970](Cat));";
  // Raw write so we can refuse to read the reply (Query would read it).
  // The WireClient's transport is gone, so write via a second session
  // opened on a raw transport instead.
  ASSERT_TRUE(client.Close().ok());
  auto raw = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(raw.ok());
  wire::HelloRequest hello;
  hello.client_name = "stalled-raw";
  ASSERT_TRUE(wire::WriteFrame(raw.value().get(), wire::FrameType::kHello,
                               wire::EncodeHelloRequest(hello))
                  .ok());
  auto hello_ok = wire::ReadFrame(raw.value().get());
  ASSERT_TRUE(hello_ok.ok());
  ASSERT_TRUE(wire::WriteFrame(raw.value().get(), wire::FrameType::kQuery,
                               wire::EncodeQueryRequest(req))
                  .ok());
  // ... and now never read.
  EXPECT_TRUE(EventuallyTrue(
      [&] { return server.stats().slow_client_disconnects > 0; }))
      << "stalled reader was never cut loose";
  EXPECT_TRUE(EventuallyTrue([&] { return server.active_connections() == 0; }));
  raw.value()->Close();

  // The server still serves an attentive client afterwards.
  auto fresh = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(fresh.ok());
  wire::WireClient healthy(fresh.TakeValue());
  ASSERT_TRUE(healthy.Hello("attentive").ok());
  moa::QueryContext ctx;
  auto result = healthy.Query(req.text, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(healthy.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Deadlines inside the sharded scatter/gather fanout.

TEST(QueryServerChaosTest, DeadlineTripsInsideShardFanoutSessionSurvives) {
  db::MirrorDb database;
  {
    base::Rng rng(17);
    std::vector<moa::MoaValue> tuples;
    ASSERT_TRUE(database
                    .Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                            "Atomic<int>: year, Atomic<int>: rating, "
                            "Atomic<int>: ref>>;")
                    .ok());
    for (int i = 0; i < 800000; ++i) {
      tuples.push_back(moa::MoaValue::Tuple(
          {moa::MoaValue::Str("u" + std::to_string(i)),
           moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
           moa::MoaValue::Int(rng.UniformInt(0, 1000)),
           moa::MoaValue::Int(rng.UniformInt(0, 799999))}));
    }
    ASSERT_TRUE(database.LoadSharded("Cat", std::move(tuples), 8).ok());
  }
  QueryServer server(&database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("shard-deadline").ok());
  ASSERT_TRUE(client
                  .Set({{"query_deadline_ms", 1},
                        {"num_shards", 8},
                        {"num_threads", 2}})
                  .ok());

  const std::string heavy =
      "map[THIS * 3 + 1](map[THIS * 2](map[THIS.rating + "
      "7](select[THIS.year >= 1970](Cat))));";
  moa::QueryContext ctx;
  bool expired = false;
  for (int attempt = 0; attempt < 50 && !expired; ++attempt) {
    auto result = client.Query(heavy, ctx);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), base::StatusCode::kDeadlineExceeded)
          << result.status().ToString();
      expired = true;
    }
  }
  EXPECT_TRUE(expired)
      << "1 ms deadline never tripped inside the 8-way shard fanout";

  // The scatter/gather abort left no torn state: lifting the deadline on
  // the same session reproduces direct execution bit for bit.
  ASSERT_TRUE(client.Set({{"query_deadline_ms", 0}}).ok());
  auto direct = database.Query(heavy, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(heavy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ResultsIdentical(result.value(), direct.value()));
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown racing the TCP accept loop.

TEST(QueryServerChaosTest, ShutdownRacesTcpAcceptWithoutCrashOrHang) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/31, /*rows=*/2000);
  for (int iteration = 0; iteration < 12; ++iteration) {
    auto server = std::make_unique<QueryServer>(&database);
    auto port = server->ListenTcp(0);
    ASSERT_TRUE(port.ok());

    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    std::vector<std::thread> hammers;
    for (int t = 0; t < 4; ++t) {
      hammers.emplace_back([&] {
        moa::QueryContext ctx;
        while (!stop.load()) {
          auto conn = wire::TcpConnect("127.0.0.1", port.value());
          if (!conn.ok()) continue;  // listener already gone
          wire::WireClient client(conn.TakeValue());
          if (!client.Hello("racer").ok()) continue;
          auto result = client.Query("count(Cat);", ctx);
          if (result.ok()) {
            if (result.value().scalar.AsDouble() != 2000.0) ++bad;
          } else {
            // Mid-shutdown failures must be clean transport errors or
            // the typed shutting-down refusal, never garbage.
            auto code = result.status().code();
            if (code != base::StatusCode::kIoError &&
                code != base::StatusCode::kNotFound &&
                code != base::StatusCode::kOverloaded) {
              ++bad;
            }
          }
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + iteration % 5));
    server->Shutdown();
    stop = true;
    for (std::thread& t : hammers) t.join();
    EXPECT_EQ(bad.load(), 0) << "iteration " << iteration;
    EXPECT_EQ(server->active_connections(), 0u);
    server.reset();
  }
}

// ---------------------------------------------------------------------------
// Quiesced reloads under live traffic: readers never see a torn mix.

TEST(QueryServerChaosTest, LoadUnderTrafficNeverTearsReads) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/41, /*rows=*/4000);
  QueryServer server(&database);

  constexpr int kReaders = 6;
  std::vector<std::unique_ptr<wire::WireClient>> clients;
  for (int c = 0; c < kReaders; ++c) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    clients.push_back(
        std::make_unique<wire::WireClient>(std::move(client_end)));
    ASSERT_TRUE(clients.back()->Hello("qr" + std::to_string(c)).ok());
  }

  // Every reload swaps between exactly 4000 and 2000 rows; a count can
  // only ever be one of those two values. Anything else is a torn read
  // straight through a half-applied Load.
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::vector<std::thread> readers;
  for (int c = 0; c < kReaders; ++c) {
    readers.emplace_back([&, c] {
      moa::QueryContext ctx;
      while (!stop.load()) {
        auto result =
            clients[c]->Query("count(select[THIS.year >= 1970](Cat));", ctx);
        if (!result.ok()) {
          ++torn;
          return;
        }
        double count = result.value().scalar.AsDouble();
        if (count != 4000.0 && count != 2000.0) {
          ++torn;
          return;
        }
      }
    });
  }

  for (int reload = 0; reload < 6; ++reload) {
    int rows = (reload % 2 == 0) ? 2000 : 4000;
    base::Rng rng(static_cast<uint64_t>(100 + reload));
    std::vector<moa::MoaValue> tuples;
    for (int i = 0; i < rows; ++i) {
      tuples.push_back(moa::MoaValue::Tuple(
          {moa::MoaValue::Str("r" + std::to_string(i)),
           moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
           moa::MoaValue::Int(rng.UniformInt(0, 1000)),
           moa::MoaValue::Int(rng.UniformInt(0, rows - 1))}));
    }
    // The quiesce barrier: Load blocks until in-flight queries drain,
    // then swaps atomically while new queries wait at the gate.
    ASSERT_TRUE(database.Load("Cat", std::move(tuples)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop = true;
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  for (auto& client : clients) client->Close().ok();
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// The retry/backoff client, deterministically.

/// A hand-scripted single-connection server: HELLO_OK, then `sheds`
/// kOverloaded ERRORs (with a retry-after hint), then a real result.
void RunScriptedServer(wire::Transport* conn, int sheds, uint32_t hint_ms,
                       const std::vector<uint8_t>& result_payload,
                       bool die_after_hello) {
  auto frame = wire::ReadFrame(conn);
  if (!frame.ok() || frame.value().type != wire::FrameType::kHello) return;
  wire::HelloReply hello;
  hello.session_id = 7;
  hello.server_name = "scripted";
  wire::WriteFrame(conn, wire::FrameType::kHelloOk,
                   wire::EncodeHelloReply(hello))
      .ok();
  if (die_after_hello) {
    conn->Close();
    return;
  }
  int remaining = sheds;
  for (;;) {
    auto request = wire::ReadFrame(conn);
    if (!request.ok()) return;
    if (request.value().type != wire::FrameType::kQuery) return;
    if (remaining > 0) {
      --remaining;
      wire::WriteFrame(conn, wire::FrameType::kError,
                       wire::EncodeError(
                           base::Status::Overloaded("scripted shed"),
                           hint_ms))
          .ok();
      continue;
    }
    wire::WriteFrame(conn, wire::FrameType::kResult, result_payload).ok();
    return;
  }
}

/// Replicates ReconnectingClient's documented jitter so the test can
/// predict the exact backoff sequence.
uint64_t ExpectedBackoff(uint32_t* rng_state, uint64_t initial, uint64_t cap,
                         int round) {
  uint64_t backoff = initial;
  for (int i = 0; i < round && backoff < cap; ++i) backoff *= 2;
  backoff = std::min(backoff, cap);
  *rng_state ^= *rng_state << 13;
  *rng_state ^= *rng_state >> 17;
  *rng_state ^= *rng_state << 5;
  return backoff + (backoff * (*rng_state & 0xff)) / 1024;
}

TEST(ReconnectingClientTest, OverloadBackoffPacingIsDeterministic) {
  // A tiny real database provides one genuine encoded result payload.
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/2, /*rows=*/100);
  moa::QueryContext ctx;
  auto direct = database.Query("count(Cat);", ctx);
  ASSERT_TRUE(direct.ok());
  std::vector<uint8_t> result_payload =
      wire::EncodeResultReply(direct.value());

  auto [client_end, server_end] = wire::CreateChannelPair();
  constexpr int kSheds = 3;
  constexpr uint32_t kHint = 7;
  std::thread server_thread(
      [conn = std::move(server_end), &result_payload]() mutable {
    RunScriptedServer(conn.get(), kSheds, kHint, result_payload,
                      /*die_after_hello=*/false);
  });

  std::vector<uint64_t> sleeps;
  wire::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 2000;
  policy.jitter_seed = 42;
  policy.sleep_fn = [&sleeps](uint64_t ms) { sleeps.push_back(ms); };

  int dials = 0;
  wire::Dialer dial = [&]() -> base::Result<std::unique_ptr<wire::Transport>> {
    ++dials;
    if (client_end == nullptr) {
      return base::Status::IoError("scripted server accepts one connection");
    }
    return std::move(client_end);
  };
  wire::ReconnectingClient client(std::move(dial), "backoff-test", policy);
  auto result = client.Query("count(Cat);", ctx);
  server_thread.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ResultsIdentical(result.value(), direct.value()));
  EXPECT_EQ(dials, 1);  // overload retries reuse the connection
  EXPECT_EQ(client.overload_retries(), 3u);

  // Exact pacing: each shed sleeps the server's 7 ms hint immediately,
  // and each new attempt is preceded by the jittered backoff.
  uint32_t rng = 42;
  std::vector<uint64_t> expected = {
      kHint,
      ExpectedBackoff(&rng, 10, 2000, 0),
      kHint,
      ExpectedBackoff(&rng, 10, 2000, 1),
      kHint,
      ExpectedBackoff(&rng, 10, 2000, 2),
  };
  EXPECT_EQ(sleeps, expected);
}

TEST(ReconnectingClientTest, ReconnectsAfterMidSessionDisconnect) {
  db::MirrorDb database;
  BuildCatalog(&database, /*seed=*/2, /*rows=*/100);
  moa::QueryContext ctx;
  auto direct = database.Query("count(Cat);", ctx);
  ASSERT_TRUE(direct.ok());
  std::vector<uint8_t> result_payload =
      wire::EncodeResultReply(direct.value());

  // Dial #1 reaches a server that hangs up right after HELLO; dial #2
  // reaches one that serves for real.
  std::deque<std::unique_ptr<wire::Transport>> accepts;
  std::vector<std::thread> servers;
  for (int i = 0; i < 2; ++i) {
    auto [ce, se] = wire::CreateChannelPair();
    accepts.push_back(std::move(ce));
    servers.emplace_back(
        [conn = std::move(se), &result_payload, i]() mutable {
          RunScriptedServer(conn.get(), /*sheds=*/0, /*hint_ms=*/0,
                            result_payload, /*die_after_hello=*/i == 0);
        });
  }

  std::vector<uint64_t> sleeps;
  wire::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ms = 1;
  policy.sleep_fn = [&sleeps](uint64_t ms) { sleeps.push_back(ms); };
  wire::Dialer dial = [&]() -> base::Result<std::unique_ptr<wire::Transport>> {
    if (accepts.empty()) {
      return base::Status::IoError("no more scripted connections");
    }
    auto conn = std::move(accepts.front());
    accepts.pop_front();
    return conn;
  };
  wire::ReconnectingClient client(std::move(dial), "reconnect-test", policy);
  auto result = client.Query("count(Cat);", ctx);
  for (std::thread& t : servers) t.join();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(ResultsIdentical(result.value(), direct.value()));
  EXPECT_EQ(client.reconnects(), 2u);
  EXPECT_EQ(client.overload_retries(), 0u);
  EXPECT_FALSE(sleeps.empty()) << "reconnect skipped the backoff";
}

}  // namespace
}  // namespace mirror::daemon
