// Database persistence: a loaded database (schemas, atomic columns,
// nested sets, vectors, CONTREP indexes) round-trips through disk, and
// both engines produce identical answers on the restored instance.

#include <filesystem>
#include <fstream>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "moa/database.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "monet/mil.h"

namespace mirror::moa {
namespace {

using monet::Oid;

std::string TempDir(const char* tag) {
  std::string dir = (std::filesystem::temp_directory_path() /
                     (std::string("mirror_db_") + tag + "_" +
                      std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void BuildRichDatabase(Database* db, int n, uint64_t seed) {
  ASSERT_TRUE(db->Define(
                    "define Lib as SET< TUPLE< Atomic<URL>: source, "
                    "Atomic<int>: year, CONTREP<Text>: annotation, "
                    "SET< TUPLE< Atomic<str>: label, Atomic<Vector>: feat > "
                    ">: segments >>;")
                  .ok());
  base::Rng rng(seed);
  static const char* const kWords[] = {"sun", "sea", "rock", "tree", "bird"};
  std::vector<MoaValue> objects;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> terms;
    for (int t = 0; t < 5; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    std::vector<MoaValue> segments;
    int num_segments = 1 + static_cast<int>(rng.Uniform(3));
    for (int s = 0; s < num_segments; ++s) {
      segments.push_back(MoaValue::Tuple(
          {MoaValue::Str("seg" + std::to_string(s)),
           MoaValue::Vector({rng.UniformDouble(), rng.UniformDouble()})}));
    }
    objects.push_back(MoaValue::Tuple(
        {MoaValue::Str("u" + std::to_string(i)),
         MoaValue::Int(1990 + static_cast<int64_t>(rng.Uniform(10))),
         MoaValue::ContRep(terms), MoaValue::SetOf(std::move(segments))}));
  }
  ASSERT_TRUE(db->Load("Lib", std::move(objects)).ok());
}

std::map<Oid, double> RunQuery(const Database& db, const QueryContext& ctx,
                               const std::string& text, bool flattened) {
  auto expr = ParseExpr(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString();
  monet::BatPtr bat;
  if (flattened) {
    Flattener flattener(&db, &ctx);
    auto program = flattener.Compile(expr.value());
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    auto run = monet::mil::Executor(&db.catalog()).Run(program.value());
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    bat = run.value().bat;
  } else {
    NaiveEvaluator naive(&db, &ctx);
    auto run = naive.Evaluate(expr.value());
    EXPECT_TRUE(run.ok()) << run.status().ToString();
    bat = run.value().bat;
  }
  std::map<Oid, double> out;
  for (size_t i = 0; i < bat->size(); ++i) {
    out[bat->head().OidAt(i)] = bat->tail().NumAt(i);
  }
  return out;
}

TEST(PersistenceTest, SchemasAndCardinalitySurvive) {
  std::string dir = TempDir("schemas");
  Database original;
  BuildRichDatabase(&original, 20, 3);
  ASSERT_TRUE(original.SaveTo(dir).ok());

  Database restored;
  auto status = restored.LoadFrom(dir);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(restored.SetNames(), original.SetNames());
  auto set = restored.GetSet("Lib");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set.value()->cardinality, 20u);
  EXPECT_TRUE(set.value()->type->Equals(
      *original.GetSet("Lib").value()->type));
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, ContRepIndexRoundTripsExactly) {
  std::string dir = TempDir("contrep");
  Database original;
  BuildRichDatabase(&original, 50, 7);
  ASSERT_TRUE(original.SaveTo(dir).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());

  const ContRepField* before =
      original.GetSet("Lib").value()->FindContRep("annotation");
  const ContRepField* after =
      restored.GetSet("Lib").value()->FindContRep("annotation");
  ASSERT_NE(before, nullptr);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->index.stats().num_docs, before->index.stats().num_docs);
  EXPECT_EQ(after->index.stats().num_postings,
            before->index.stats().num_postings);
  EXPECT_EQ(after->index.stats().total_terms,
            before->index.stats().total_terms);
  EXPECT_EQ(after->index.vocab().size(), before->index.vocab().size());
  // Term ids survive: same spelling at every id.
  for (int64_t t = 0; t < before->index.vocab().size(); ++t) {
    EXPECT_EQ(after->index.vocab().TermOf(t), before->index.vocab().TermOf(t));
    EXPECT_EQ(after->index.DocFreq(t), before->index.DocFreq(t));
  }
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, QueriesAgreeOnRestoredDatabaseBothEngines) {
  std::string dir = TempDir("queries");
  Database original;
  BuildRichDatabase(&original, 60, 11);
  QueryContext ctx;
  ctx.BindTerms("query", {"sun", "rock"});
  const std::string ranking =
      "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]("
      "select[THIS.year >= 1994](Lib)));";
  auto expected = RunQuery(original, ctx, ranking, /*flattened=*/true);

  ASSERT_TRUE(original.SaveTo(dir).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());

  auto flattened = RunQuery(restored, ctx, ranking, /*flattened=*/true);
  auto naive = RunQuery(restored, ctx, ranking, /*flattened=*/false);
  ASSERT_EQ(flattened.size(), expected.size());
  for (const auto& [oid, score] : expected) {
    EXPECT_NEAR(flattened.at(oid), score, 1e-12);
    EXPECT_NEAR(naive.at(oid), score, 1e-9);
  }
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, NestedObjectsReconstructed) {
  std::string dir = TempDir("nested");
  Database original;
  BuildRichDatabase(&original, 10, 13);
  const std::vector<MoaValue>& before =
      original.GetSet("Lib").value()->objects;
  ASSERT_TRUE(original.SaveTo(dir).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  const std::vector<MoaValue>& after =
      restored.GetSet("Lib").value()->objects;
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    // Atomic fields identical.
    EXPECT_TRUE(after[i].field(0).atomic() == before[i].field(0).atomic());
    EXPECT_TRUE(after[i].field(1).atomic() == before[i].field(1).atomic());
    // Nested segments: same count, same labels and vectors.
    const auto& seg_before = before[i].field(3).elements();
    const auto& seg_after = after[i].field(3).elements();
    ASSERT_EQ(seg_after.size(), seg_before.size());
    for (size_t s = 0; s < seg_before.size(); ++s) {
      EXPECT_TRUE(seg_after[s].field(0).atomic() ==
                  seg_before[s].field(0).atomic());
      EXPECT_EQ(seg_after[s].field(1).vec(), seg_before[s].field(1).vec());
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, LoadFromMissingDirectoryFails) {
  Database db;
  EXPECT_FALSE(db.LoadFrom("/nonexistent/mirror/db").ok());
}

TEST(PersistenceTest, StaleTempFilesNeverCorruptThePublishedSnapshot) {
  std::string dir = TempDir("atomic");
  Database original;
  BuildRichDatabase(&original, 15, 17);
  ASSERT_TRUE(original.SaveTo(dir).ok());

  // Simulate a crash mid-save: torn temp files next to the published
  // manifest and schemas. Neither load nor a subsequent save may trip
  // over them.
  {
    std::ofstream torn1(dir + "/schemas.txt.tmp", std::ios::binary);
    torn1 << "Lib\t99";  // truncated line
    std::ofstream torn2(dir + "/manifest.txt.tmp", std::ios::binary);
    torn2 << "\xde\xad\xbe";
  }
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_EQ(restored.GetSet("Lib").value()->cardinality, 15u);

  ASSERT_TRUE(original.SaveTo(dir).ok());
  Database again;
  ASSERT_TRUE(again.LoadFrom(dir).ok());
  EXPECT_EQ(again.GetSet("Lib").value()->cardinality, 15u);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, RepeatedSavesKeepExactlyOneEpochOfDataFiles) {
  std::string dir = TempDir("epochs");
  Database original;
  BuildRichDatabase(&original, 12, 19);
  ASSERT_TRUE(original.SaveTo(dir).ok());
  ASSERT_TRUE(original.SaveTo(dir).ok());
  ASSERT_TRUE(original.SaveTo(dir).ok());

  // Data files are epoch-prefixed (bat_e<epoch>_<idx>.bin) and stale
  // epochs are cleaned after publish: only one epoch may remain.
  std::set<std::string> epochs;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string file = entry.path().filename().string();
    if (file.rfind("bat_e", 0) != 0) continue;
    epochs.insert(file.substr(0, file.find('_', 5)));
  }
  EXPECT_EQ(epochs.size(), 1u) << "stale epoch files were not cleaned";

  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_EQ(restored.GetSet("Lib").value()->cardinality, 12u);
  std::filesystem::remove_all(dir);
}

TEST(PersistenceTest, SaveFoldsDeltaTailsAndRestoredCatalogIsClean) {
  std::string dir = TempDir("deltasave");
  Database original;
  BuildRichDatabase(&original, 40, 23);

  // Rewrite Lib.year as a short base plus catalog-level insert chunks
  // with identical visible contents, then checkpoint through them.
  monet::Catalog* catalog = original.catalog();
  auto year = catalog->Get("Lib.year");
  ASSERT_TRUE(year.ok());
  std::vector<int64_t> values;
  for (size_t i = 0; i < year.value()->size(); ++i) {
    values.push_back(year.value()->tail().IntAt(i));
  }
  const size_t cut = values.size() / 3;
  catalog->Put("Lib.year",
               monet::Bat::DenseInts({values.begin(), values.begin() + cut}));
  ASSERT_TRUE(catalog
                  ->Append("Lib.year", monet::Column::MakeInts(
                                           {values.begin() + cut, values.end()}))
                  .ok());
  ASSERT_TRUE(catalog->HasDeltas("Lib.year"));

  QueryContext ctx;
  ctx.BindTerms("query", {"tree", "bird"});
  const std::string ranking =
      "map[sum(THIS)](map[getBL(THIS.annotation, query, stats)]("
      "select[THIS.year >= 1993](Lib)));";
  auto expected = RunQuery(original, ctx, ranking, /*flattened=*/true);

  ASSERT_TRUE(original.SaveTo(dir).ok());
  Database restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  // The checkpoint persisted the merged view: no delta layers survive.
  EXPECT_FALSE(restored.catalog()->HasDeltas("Lib.year"));
  auto flattened = RunQuery(restored, ctx, ranking, /*flattened=*/true);
  auto naive = RunQuery(restored, ctx, ranking, /*flattened=*/false);
  ASSERT_EQ(flattened.size(), expected.size());
  for (const auto& [oid, score] : expected) {
    EXPECT_NEAR(flattened.at(oid), score, 1e-12);
    EXPECT_NEAR(naive.at(oid), score, 1e-9);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mirror::moa
