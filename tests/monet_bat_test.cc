// Unit tests for the BAT building blocks: values, string heap, columns.

#include <gtest/gtest.h>

#include "monet/bat.h"
#include "monet/string_heap.h"
#include "monet/value.h"

namespace mirror::monet {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value::MakeInt(5).i(), 5);
  EXPECT_EQ(Value::MakeDbl(2.5).d(), 2.5);
  EXPECT_EQ(Value::MakeStr("hi").s(), "hi");
  EXPECT_EQ(Value::MakeOid(9).oid(), 9u);
  EXPECT_EQ(Value().type(), ValueType::kInt);
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_TRUE(Value::MakeInt(2) == Value::MakeDbl(2.0));
  EXPECT_TRUE(Value::MakeInt(2) < Value::MakeDbl(2.5));
  EXPECT_FALSE(Value::MakeDbl(3.0) < Value::MakeInt(3));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_TRUE(Value::MakeStr("apple") < Value::MakeStr("banana"));
  EXPECT_TRUE(Value::MakeStr("a") == Value::MakeStr("a"));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::MakeInt(-3).ToString(), "int:-3");
  EXPECT_EQ(Value::MakeStr("x").ToString(), "str:\"x\"");
}

TEST(StringHeapTest, InterningDeduplicates) {
  StringHeap heap;
  uint32_t a = heap.Intern("cat");
  uint32_t b = heap.Intern("dog");
  uint32_t c = heap.Intern("cat");
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(heap.At(a), "cat");
  EXPECT_EQ(heap.At(b), "dog");
  EXPECT_EQ(heap.size(), 2u);
}

TEST(StringHeapTest, RoundTripsThroughBuffer) {
  StringHeap heap;
  heap.Intern("alpha");
  heap.Intern("beta");
  StringHeap restored = StringHeap::FromBuffer(heap.buffer());
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.Intern("alpha"), heap.Intern("alpha"));
  EXPECT_EQ(restored.At(restored.Intern("beta")), "beta");
}

TEST(ColumnTest, VoidColumnIsVirtual) {
  Column c = Column::MakeVoid(10, 5);
  EXPECT_TRUE(c.is_void());
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.OidAt(0), 10u);
  EXPECT_EQ(c.OidAt(4), 14u);
}

TEST(ColumnTest, MaterializeVoid) {
  Column c = Column::MakeVoid(3, 3).Materialized();
  EXPECT_EQ(c.type(), ValueType::kOid);
  EXPECT_EQ(c.OidAt(2), 5u);
}

TEST(ColumnTest, GatherPreservesTypes) {
  Column ints = Column::MakeInts({10, 20, 30, 40});
  Column picked = ints.Gather(std::vector<size_t>{3, 1});
  EXPECT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked.IntAt(0), 40);
  EXPECT_EQ(picked.IntAt(1), 20);

  Column strs = Column::MakeStrs({"a", "b", "c"});
  Column s2 = strs.Gather(std::vector<uint32_t>{2, 0});
  EXPECT_EQ(s2.StrAt(0), "c");
  EXPECT_EQ(s2.StrAt(1), "a");
  EXPECT_EQ(s2.heap(), strs.heap());  // heap shared, not copied
}

TEST(ColumnTest, TypeCompatibility) {
  EXPECT_TRUE(Column::MakeInts({1}).TypeCompatible(ValueType::kDbl));
  EXPECT_TRUE(Column::MakeVoid(0, 1).TypeCompatible(ValueType::kOid));
  EXPECT_FALSE(Column::MakeStrs({"x"}).TypeCompatible(ValueType::kInt));
  EXPECT_FALSE(Column::MakeOids({1}).TypeCompatible(ValueType::kInt));
}

TEST(BatTest, DenseFactoriesAndRowAccess) {
  Bat b = Bat::DenseInts({5, 6, 7}, /*base=*/100);
  EXPECT_EQ(b.size(), 3u);
  auto [h, t] = b.Row(1);
  EXPECT_EQ(h.oid(), 101u);
  EXPECT_EQ(t.i(), 6);
}

TEST(BatTest, EmptyBatsOfAllTypes) {
  for (ValueType vt : {ValueType::kVoid, ValueType::kOid, ValueType::kInt,
                       ValueType::kDbl, ValueType::kStr}) {
    Bat b = Bat::Empty(ValueType::kVoid, vt);
    EXPECT_EQ(b.size(), 0u);
    EXPECT_EQ(b.tail().type(), vt);
  }
}

TEST(BatTest, DebugStringMentionsTypesAndSize) {
  Bat b = Bat::DenseStrs({"x"});
  std::string s = b.DebugString();
  EXPECT_NE(s.find("BAT[void,str]"), std::string::npos);
  EXPECT_NE(s.find("#1"), std::string::npos);
}

TEST(BatTest, MismatchedColumnsAbort) {
  EXPECT_DEATH(Bat(Column::MakeVoid(0, 2), Column::MakeInts({1})), "CHECK");
}

}  // namespace
}  // namespace mirror::monet
