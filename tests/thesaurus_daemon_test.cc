// Association thesaurus (EMIM) and distributed-architecture tests: ORB,
// media server, data dictionary, and the full extraction pipeline.

#include <gtest/gtest.h>

#include "daemon/data_dictionary.h"
#include "daemon/media_server.h"
#include "daemon/orb.h"
#include "daemon/pipeline.h"
#include "mm/synthetic_library.h"
#include "thesaurus/association_thesaurus.h"

namespace mirror {
namespace {

using daemon::DataDictionary;
using daemon::ExtractionPipeline;
using daemon::MediaServer;
using daemon::Orb;
using daemon::OrbMessage;
using thesaurus::AssociationThesaurus;

TEST(ThesaurusTest, CorrelatedPairsAssociate) {
  AssociationThesaurus thesaurus;
  // "sunset" always co-occurs with cluster rgb_1; "city" with rgb_2.
  for (int i = 0; i < 20; ++i) {
    thesaurus.AddDocument({"sunset", "warm"}, {"rgb_1", "gabor_3"});
    thesaurus.AddDocument({"city", "street"}, {"rgb_2", "gabor_7"});
  }
  thesaurus.Finalize();
  auto sunset = thesaurus.Associations("sunset", 2);
  ASSERT_FALSE(sunset.empty());
  EXPECT_TRUE(sunset[0].visual_term == "rgb_1" ||
              sunset[0].visual_term == "gabor_3");
  // Anti-correlated cluster never associates.
  for (const auto& a : sunset) {
    EXPECT_NE(a.visual_term, "rgb_2");
    EXPECT_NE(a.visual_term, "gabor_7");
  }
}

TEST(ThesaurusTest, IndependentPairsFiltered) {
  AssociationThesaurus thesaurus;
  // "noise" occurs with both clusters equally: no positive correlation.
  for (int i = 0; i < 10; ++i) {
    thesaurus.AddDocument({"noise"}, {"c_1"});
    thesaurus.AddDocument({"noise"}, {"c_2"});
    thesaurus.AddDocument({}, {"c_1"});
    thesaurus.AddDocument({}, {"c_2"});
  }
  thesaurus.Finalize();
  // P(noise, c_1) = P(noise) P(c_1): gate rejects.
  EXPECT_TRUE(thesaurus.Associations("noise", 5).empty());
}

TEST(ThesaurusTest, QueryFormulationWeightsNormalized) {
  AssociationThesaurus thesaurus;
  for (int i = 0; i < 12; ++i) {
    thesaurus.AddDocument({"beach"}, {"hsv_0", "lbp_2"});
    thesaurus.AddDocument({"forest"}, {"hsv_5"});
  }
  thesaurus.Finalize();
  auto query = thesaurus.FormulateVisualQuery({"beach"}, 4);
  ASSERT_GE(query.size(), 1u);
  double mean = 0;
  for (const auto& wt : query) mean += wt.weight;
  mean /= static_cast<double>(query.size());
  EXPECT_NEAR(mean, 1.0, 1e-9);
  // Unknown query words yield an empty formulation, not a crash.
  EXPECT_TRUE(thesaurus.FormulateVisualQuery({"zeppelin"}, 4).empty());
}

TEST(OrbTest, RegisterInvokeAndErrors) {
  class Echo : public daemon::Servant {
   public:
    std::string interface_name() const override { return "Echo"; }
    base::Result<OrbMessage> Dispatch(const OrbMessage& request) override {
      OrbMessage reply = request;
      reply.method = "echo:" + request.method;
      return reply;
    }
  };
  Orb orb;
  ASSERT_TRUE(orb.RegisterObject("echo", std::make_shared<Echo>()).ok());
  EXPECT_FALSE(orb.RegisterObject("echo", std::make_shared<Echo>()).ok());
  OrbMessage msg;
  msg.method = "ping";
  auto reply = orb.Invoke("echo", msg);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().method, "echo:ping");
  EXPECT_FALSE(orb.Invoke("ghost", msg).ok());
  EXPECT_EQ(orb.stats().invocations, 1u);  // failed lookup not counted
}

TEST(OrbTest, PublishSubscribePump) {
  class Counter : public daemon::Servant {
   public:
    std::string interface_name() const override { return "Counter"; }
    base::Result<OrbMessage> Dispatch(const OrbMessage&) override {
      ++count;
      OrbMessage reply;
      reply.method = "ok";
      return reply;
    }
    int count = 0;
  };
  Orb orb;
  auto counter_a = std::make_shared<Counter>();
  auto counter_b = std::make_shared<Counter>();
  ASSERT_TRUE(orb.RegisterObject("a", counter_a).ok());
  ASSERT_TRUE(orb.RegisterObject("b", counter_b).ok());
  ASSERT_TRUE(orb.Subscribe("topic", "a").ok());
  ASSERT_TRUE(orb.Subscribe("topic", "b").ok());
  EXPECT_FALSE(orb.Subscribe("topic", "a").ok());  // duplicate
  OrbMessage event;
  event.method = "tick";
  ASSERT_TRUE(orb.Publish("topic", event).ok());
  ASSERT_TRUE(orb.Publish("topic", event).ok());
  EXPECT_EQ(orb.pending_events(), 4u);
  auto delivered = orb.PumpEvents();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered.value(), 4);
  EXPECT_EQ(counter_a->count, 2);
  EXPECT_EQ(counter_b->count, 2);
  EXPECT_EQ(orb.pending_events(), 0u);
}

TEST(MediaServerTest, PutGetAndDispatch) {
  MediaServer server;
  server.Put("http://x/1", {1, 2, 3});
  auto blob = server.Get("http://x/1");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob.value().size(), 3u);
  EXPECT_FALSE(server.Get("http://x/404").ok());
  EXPECT_EQ(server.payload_bytes(), 3u);
  server.Put("http://x/1", {9});  // replace
  EXPECT_EQ(server.payload_bytes(), 1u);

  OrbMessage get;
  get.method = "get";
  get.args["url"] = "http://x/1";
  auto reply = server.Dispatch(get);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().blob, (std::vector<uint8_t>{9}));
}

TEST(DataDictionaryTest, SchemasAndDerivations) {
  DataDictionary dict;
  auto def = moa::ParseSchemaDef(
      "define L as SET<TUPLE<Atomic<URL>: u>>;");
  ASSERT_TRUE(def.ok());
  ASSERT_TRUE(dict.RegisterSchema(def.value()).ok());
  EXPECT_FALSE(dict.RegisterSchema(def.value()).ok());
  EXPECT_TRUE(dict.GetSchema("L").ok());
  EXPECT_FALSE(dict.GetSchema("M").ok());
  dict.RecordDerivation("L", "segments", "segmenter");
  auto derivations = dict.DerivationsOf("L");
  EXPECT_EQ(derivations.at("segments"), "segmenter");
}

TEST(DataDictionaryTest, PendingTracking) {
  DataDictionary dict;
  dict.NoteObject("L", 0);
  dict.NoteObject("L", 1);
  dict.NoteObject("L", 2);
  dict.MarkProcessed("L", 1, "daemon.x");
  auto pending = dict.PendingFor("L", "daemon.x");
  EXPECT_EQ(pending, (std::vector<monet::Oid>{0, 2}));
  EXPECT_EQ(dict.PendingFor("L", "daemon.y").size(), 3u);
  EXPECT_TRUE(dict.PendingFor("M", "daemon.x").empty());
}

class PipelineTest : public ::testing::Test {
 protected:
  static mm::LibraryOptions SmallLibrary() {
    mm::LibraryOptions options;
    options.num_images = 12;
    options.image_size = 32;
    options.num_classes = 3;
    options.seed = 5;
    return options;
  }
};

TEST_F(PipelineTest, EndToEndProducesVisualTerms) {
  Orb orb;
  MediaServer media;
  DataDictionary dict;
  daemon::PipelineOptions options;
  options.feature_spaces = {"rgb", "lbp"};  // keep the test fast
  options.autoclass.min_k = 2;
  options.autoclass.max_k = 4;
  ExtractionPipeline pipeline(&orb, &media, &dict, options);
  auto library = mm::SyntheticLibrary(SmallLibrary()).Generate();
  ASSERT_TRUE(pipeline.Ingest(library).ok());
  ASSERT_TRUE(pipeline.Run().ok());

  const auto& results = pipeline.results();
  ASSERT_EQ(results.size(), library.size());
  for (const auto& img : results) {
    EXPECT_FALSE(img.visual_terms.empty()) << img.url;
    EXPECT_GE(img.num_segments, 1) << img.url;
    for (const std::string& term : img.visual_terms) {
      EXPECT_TRUE(term.rfind("rgb_", 0) == 0 || term.rfind("lbp_", 0) == 0)
          << term;
    }
  }
  // The dictionary saw every object through the segmenter.
  EXPECT_TRUE(dict.PendingFor("ImageLibrary", "segmenter").empty());
  // All traffic went through the broker.
  EXPECT_GT(orb.stats().invocations, library.size());
  EXPECT_GT(orb.stats().bytes_marshalled, 0u);
  EXPECT_EQ(orb.stats().events_published, library.size());
}

TEST_F(PipelineTest, DaemonSetsAreIndependent) {
  // Running with feature daemon A only, then with A+B, leaves A's visual
  // terms identical: daemons extract independently (Figure 1's point).
  auto library = mm::SyntheticLibrary(SmallLibrary()).Generate();

  auto run = [&](std::vector<std::string> spaces) {
    Orb orb;
    MediaServer media;
    DataDictionary dict;
    daemon::PipelineOptions options;
    options.feature_spaces = std::move(spaces);
    options.autoclass.min_k = 2;
    options.autoclass.max_k = 4;
    ExtractionPipeline pipeline(&orb, &media, &dict, options);
    EXPECT_TRUE(pipeline.Ingest(library).ok());
    EXPECT_TRUE(pipeline.Run().ok());
    return pipeline.results();
  };

  auto only_rgb = run({"rgb"});
  auto rgb_and_lbp = run({"rgb", "lbp"});
  ASSERT_EQ(only_rgb.size(), rgb_and_lbp.size());
  for (size_t i = 0; i < only_rgb.size(); ++i) {
    std::vector<std::string> rgb_terms_a;
    for (const auto& t : only_rgb[i].visual_terms) {
      if (t.rfind("rgb_", 0) == 0) rgb_terms_a.push_back(t);
    }
    std::vector<std::string> rgb_terms_b;
    for (const auto& t : rgb_and_lbp[i].visual_terms) {
      if (t.rfind("rgb_", 0) == 0) rgb_terms_b.push_back(t);
    }
    EXPECT_EQ(rgb_terms_a, rgb_terms_b) << only_rgb[i].url;
  }
}

TEST_F(PipelineTest, KMeansModeWorks) {
  Orb orb;
  MediaServer media;
  DataDictionary dict;
  daemon::PipelineOptions options;
  options.feature_spaces = {"hsv"};
  options.use_autoclass = false;
  options.kmeans_k = 3;
  ExtractionPipeline pipeline(&orb, &media, &dict, options);
  auto library = mm::SyntheticLibrary(SmallLibrary()).Generate();
  ASSERT_TRUE(pipeline.Ingest(library).ok());
  ASSERT_TRUE(pipeline.Run().ok());
  EXPECT_EQ(pipeline.clusters_per_space().at("hsv"), 3);
}

}  // namespace
}  // namespace mirror
