// The indexed WAL and the catalog delta layers: record codec corruption
// (truncation at every byte boundary, CRC bit flips), fault-injected torn
// writes and fsync failures, replay idempotence, lazy per-BAT replay, and
// the atomic checkpoint protocol.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "monet/catalog.h"
#include "monet/fault_injector.h"
#include "monet/wal.h"

namespace mirror::monet {
namespace {

std::string TempPath(const char* tag) {
  std::string path =
      (std::filesystem::temp_directory_path() /
       (std::string("mirror_wal_") + tag + "_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(path);
  return path;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

WalRecord MakeAppendRecord(uint64_t lsn, const std::string& name,
                           uint64_t expected, std::vector<int64_t> ints) {
  WalRecord rec;
  rec.lsn = lsn;
  rec.kind = kWalAppend;
  rec.name = name;
  rec.expected_rows = expected;
  rec.payload = Column::MakeInts(std::move(ints));
  return rec;
}

// ---------------------------------------------------------------------------
// Record codec.

TEST(WalCodecTest, RoundTripAllPayloadTypes) {
  std::vector<WalRecord> records;
  records.push_back(MakeAppendRecord(1, "t.ints", 10, {-5, 0, 7}));
  WalRecord dbls;
  dbls.lsn = 2;
  dbls.kind = kWalAppend;
  dbls.name = "t.dbls";
  dbls.expected_rows = 3;
  dbls.payload = Column::MakeDbls({0.5, -2.25});
  records.push_back(dbls);
  WalRecord strs;
  strs.lsn = 3;
  strs.kind = kWalAppend;
  strs.name = "t.strs";
  strs.expected_rows = 0;
  strs.payload = Column::MakeStrs({"alpha", "beta", "alpha"});
  records.push_back(strs);
  WalRecord del;
  del.lsn = 4;
  del.kind = kWalDelete;
  del.name = "t.ints";
  del.expected_rows = 13;
  del.payload = Column::MakeOids({2, 5});
  records.push_back(del);

  std::vector<uint8_t> buf;
  for (const WalRecord& rec : records) EncodeWalRecord(rec, &buf);

  size_t pos = 0;
  for (const WalRecord& expected : records) {
    auto got = DecodeWalRecord(buf, &pos);
    ASSERT_TRUE(got.ok()) << got.status().message();
    EXPECT_EQ(got.value().lsn, expected.lsn);
    EXPECT_EQ(got.value().kind, expected.kind);
    EXPECT_EQ(got.value().name, expected.name);
    EXPECT_EQ(got.value().expected_rows, expected.expected_rows);
    EXPECT_EQ(got.value().payload.type(), expected.payload.type());
    EXPECT_EQ(got.value().payload.size(), expected.payload.size());
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(WalCodecTest, TruncationSweepEveryByteBoundary) {
  // A record truncated at ANY byte boundary must fail to decode — no
  // proper prefix of a record may parse as a valid record.
  std::vector<uint8_t> buf;
  EncodeWalRecord(MakeAppendRecord(9, "doc.score", 128, {1, 2, 3}), &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::vector<uint8_t> torn(buf.begin(),
                              buf.begin() + static_cast<ptrdiff_t>(cut));
    size_t pos = 0;
    auto rec = DecodeWalRecord(torn, &pos);
    EXPECT_FALSE(rec.ok()) << "decoded from a " << cut << "-byte prefix of a "
                           << buf.size() << "-byte record";
  }
  size_t pos = 0;
  EXPECT_TRUE(DecodeWalRecord(buf, &pos).ok());
}

TEST(WalCodecTest, EveryBitFlipIsDetected) {
  // The CRC (or framing) must catch a flipped bit anywhere in the record.
  std::vector<uint8_t> clean;
  EncodeWalRecord(MakeAppendRecord(3, "b", 4, {42, -7}), &clean);
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    std::vector<uint8_t> corrupt = clean;
    corrupt[byte] ^= 0x10;
    size_t pos = 0;
    auto rec = DecodeWalRecord(corrupt, &pos);
    EXPECT_FALSE(rec.ok()) << "bit flip at byte " << byte
                           << " went undetected";
  }
}

// ---------------------------------------------------------------------------
// Log open / scan / repair.

TEST(WalTest, AppendSyncReopenRecovers) {
  std::string path = TempPath("reopen");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    auto lsn1 = wal.value()->Append(kWalAppend, "t", 2, Column::MakeInts({3}));
    ASSERT_TRUE(lsn1.ok());
    auto lsn2 = wal.value()->Append(kWalAppend, "t", 3, Column::MakeInts({4}));
    ASSERT_TRUE(lsn2.ok());
    EXPECT_LT(lsn1.value(), lsn2.value());
    ASSERT_TRUE(wal.value()->Sync(lsn2.value()).ok());
    EXPECT_EQ(wal.value()->stats().appends, 2u);
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->stats().recovered_records, 2u);
  EXPECT_EQ(wal.value()->stats().truncated_bytes, 0u);
  EXPECT_TRUE(wal.value()->HasPending("t"));
  EXPECT_EQ(wal.value()->PendingNames(), std::vector<std::string>{"t"});
  // LSNs continue past the recovered tail.
  auto lsn3 = wal.value()->Append(kWalAppend, "t", 4, Column::MakeInts({5}));
  ASSERT_TRUE(lsn3.ok());
  EXPECT_EQ(lsn3.value(), 3u);
}

TEST(WalTest, OpenTruncatesDamagedTailAtEveryBoundary) {
  // For every possible crash point inside the final record, Open must
  // recover exactly the intact prefix and repair the file in place.
  std::vector<uint8_t> rec1;
  std::vector<uint8_t> rec2;
  EncodeWalRecord(MakeAppendRecord(1, "t", 0, {10, 20}), &rec1);
  EncodeWalRecord(MakeAppendRecord(2, "t", 2, {30}), &rec2);
  for (size_t cut = 0; cut < rec2.size(); ++cut) {
    std::string path = TempPath("tail");
    std::vector<uint8_t> file = rec1;
    file.insert(file.end(), rec2.begin(),
                rec2.begin() + static_cast<ptrdiff_t>(cut));
    WriteAll(path, file);
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut;
    EXPECT_EQ(wal.value()->stats().recovered_records, 1u) << "cut=" << cut;
    EXPECT_EQ(wal.value()->stats().truncated_bytes, cut) << "cut=" << cut;
    wal.value().reset();  // close before inspecting the repaired file
    EXPECT_EQ(ReadAll(path).size(), rec1.size()) << "cut=" << cut;
  }
}

TEST(WalTest, OpenStopsAtBitFlippedRecord) {
  std::vector<uint8_t> rec1;
  std::vector<uint8_t> rec2;
  std::vector<uint8_t> rec3;
  EncodeWalRecord(MakeAppendRecord(1, "a", 0, {1}), &rec1);
  EncodeWalRecord(MakeAppendRecord(2, "b", 0, {2}), &rec2);
  EncodeWalRecord(MakeAppendRecord(3, "c", 0, {3}), &rec3);
  std::string path = TempPath("bitflip");
  std::vector<uint8_t> file = rec1;
  size_t flip_at = file.size() + rec2.size() / 2;  // mid-record 2
  file.insert(file.end(), rec2.begin(), rec2.end());
  file.insert(file.end(), rec3.begin(), rec3.end());
  file[flip_at] ^= 0x01;
  WriteAll(path, file);

  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  // Record 2's CRC fails, so 2 AND the (intact) 3 behind it are dropped:
  // a log is only trusted up to its first damaged record.
  EXPECT_EQ(wal.value()->stats().recovered_records, 1u);
  EXPECT_EQ(wal.value()->stats().truncated_bytes, rec2.size() + rec3.size());
  EXPECT_TRUE(wal.value()->HasPending("a"));
  EXPECT_FALSE(wal.value()->HasPending("b"));
  EXPECT_FALSE(wal.value()->HasPending("c"));
}

// ---------------------------------------------------------------------------
// Fault injection.

class TornWriteInjector : public FaultInjector {
 public:
  explicit TornWriteInjector(size_t fail_after) : fail_after_(fail_after) {}

  size_t BeforeRecordWrite(std::vector<uint8_t>* bytes) override {
    if (writes_++ < fail_after_) return bytes->size();
    return bytes->size() / 2;  // tear every later record in the middle
  }

 private:
  size_t fail_after_;
  size_t writes_ = 0;
};

TEST(WalTest, InjectedTornWriteIsNotAcknowledgedAndRepairs) {
  std::string path = TempPath("torn");
  TornWriteInjector inject(/*fail_after=*/2);
  {
    auto wal = Wal::Open(path, &inject);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "t", 0, Column::MakeInts({1})).ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "t", 1, Column::MakeInts({2})).ok());
    auto torn = wal.value()->Append(kWalAppend, "t", 2, Column::MakeInts({3}));
    EXPECT_FALSE(torn.ok());  // the write path must refuse to ack
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->stats().recovered_records, 2u);
  EXPECT_GT(wal.value()->stats().truncated_bytes, 0u);
}

class CrcFlipInjector : public FaultInjector {
 public:
  size_t BeforeRecordWrite(std::vector<uint8_t>* bytes) override {
    bytes->back() ^= 0xff;  // corrupt the record body in place
    return bytes->size();
  }
};

TEST(WalTest, InjectedCrcCorruptionIsDroppedOnRecovery) {
  std::string path = TempPath("crc");
  {
    auto clean = Wal::Open(path);
    ASSERT_TRUE(clean.ok());
    ASSERT_TRUE(
        clean.value()->Append(kWalAppend, "t", 0, Column::MakeInts({1})).ok());
  }
  CrcFlipInjector inject;
  {
    auto wal = Wal::Open(path, &inject);
    ASSERT_TRUE(wal.ok());
    // The corrupted record is fully written (same length), so the writer
    // itself cannot tell — only recovery's CRC check catches it.
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "t", 1, Column::MakeInts({2})).ok());
  }
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal.value()->stats().recovered_records, 1u);
  EXPECT_GT(wal.value()->stats().truncated_bytes, 0u);
}

class FsyncFailInjector : public FaultInjector {
 public:
  bool BeforeSync() override { return false; }
};

TEST(WalTest, InjectedFsyncFailureSurfacesAsError) {
  std::string path = TempPath("fsync");
  FsyncFailInjector inject;
  auto wal = Wal::Open(path, &inject);
  ASSERT_TRUE(wal.ok());
  auto lsn = wal.value()->Append(kWalAppend, "t", 0, Column::MakeInts({1}));
  ASSERT_TRUE(lsn.ok());
  EXPECT_FALSE(wal.value()->Sync(lsn.value()).ok());
}

// ---------------------------------------------------------------------------
// Replay.

TEST(WalTest, ReplayIsIdempotent) {
  std::string path = TempPath("replay");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "t", 2, Column::MakeInts({7, 8})).ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "t", 4, Column::MakeInts({9})).ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalDelete, "t", 5, Column::MakeOids({0})).ok());
    ASSERT_TRUE(wal.value()->Sync(wal.value()->last_lsn()).ok());
  }
  Catalog catalog;
  catalog.Put("t", Bat::DenseInts({1, 2}));
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->ReplayAllInto(&catalog).ok());
  EXPECT_EQ(catalog.VisibleRows("t").value(), 4u);  // 2 base + 3 − 1 deleted
  EXPECT_EQ(wal.value()->stats().replayed_records, 3u);
  EXPECT_FALSE(wal.value()->HasPending("t"));

  // Replaying again through the same Wal is a no-op (records are marked).
  ASSERT_TRUE(wal.value()->ReplayAllInto(&catalog).ok());
  EXPECT_EQ(catalog.VisibleRows("t").value(), 4u);

  // A crash between replay and checkpoint re-reads the SAME log against
  // the already-updated catalog: the append-domain stamp skips every
  // append, and the delete re-applies as a no-op (set union).
  auto again = Wal::Open(path);
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(again.value()->ReplayAllInto(&catalog).ok());
  EXPECT_EQ(catalog.VisibleRows("t").value(), 4u);
  auto bat = catalog.Get("t");
  ASSERT_TRUE(bat.ok());
  EXPECT_EQ(bat.value()->tail().IntAt(0), 2);  // oid 0 deleted
}

TEST(WalTest, LazyPerNameReplayTouchesOnlyThatSlice) {
  std::string path = TempPath("lazy");
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "a", 1, Column::MakeInts({10})).ok());
    ASSERT_TRUE(
        wal.value()->Append(kWalAppend, "b", 1, Column::MakeInts({20})).ok());
    ASSERT_TRUE(wal.value()->Sync(wal.value()->last_lsn()).ok());
  }
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1}));
  catalog.Put("b", Bat::DenseInts({2}));
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->ReplayInto(&catalog, "a").ok());
  EXPECT_EQ(catalog.VisibleRows("a").value(), 2u);
  EXPECT_EQ(catalog.VisibleRows("b").value(), 1u);  // untouched
  EXPECT_FALSE(wal.value()->HasPending("a"));
  EXPECT_TRUE(wal.value()->HasPending("b"));
  ASSERT_TRUE(wal.value()->ReplayInto(&catalog, "b").ok());
  EXPECT_EQ(catalog.VisibleRows("b").value(), 2u);
}

TEST(WalTest, ResetTruncatesButKeepsLsnsMonotone) {
  std::string path = TempPath("reset");
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  auto lsn = wal.value()->Append(kWalAppend, "t", 0, Column::MakeInts({1}));
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE(wal.value()->Reset().ok());
  EXPECT_EQ(ReadAll(path).size(), 0u);
  auto next = wal.value()->Append(kWalAppend, "t", 1, Column::MakeInts({2}));
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), lsn.value());
}

TEST(WalTest, GroupCommitUnderConcurrentAppends) {
  std::string path = TempPath("group");
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  Wal* w = wal.value().get();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto lsn =
            w->Append(kWalAppend, "t", 0, Column::MakeInts({t * 1000 + i}));
        if (!lsn.ok() || !w->Sync(lsn.value()).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(w->stats().appends, static_cast<uint64_t>(kThreads * kPerThread));
  wal.value().reset();
  auto reopened = Wal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->stats().recovered_records,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(reopened.value()->stats().truncated_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Catalog delta layers.

TEST(CatalogDeltaTest, AppendMakesRowsVisible) {
  Catalog catalog;
  catalog.Put("t", Bat::DenseInts({1, 2}));
  uint64_t gen = catalog.generation();
  ASSERT_TRUE(catalog.Append("t", Column::MakeInts({3, 4})).ok());
  EXPECT_GT(catalog.generation(), gen);
  EXPECT_TRUE(catalog.HasDeltas("t"));
  EXPECT_EQ(catalog.AppendDomainRows("t").value(), 4u);
  EXPECT_EQ(catalog.VisibleRows("t").value(), 4u);
  auto bat = catalog.Get("t");
  ASSERT_TRUE(bat.ok());
  ASSERT_EQ(bat.value()->size(), 4u);
  EXPECT_EQ(bat.value()->tail().IntAt(2), 3);
  EXPECT_EQ(bat.value()->tail().IntAt(3), 4);
  // The merged head stays void: appends never disturb oid density.
  EXPECT_TRUE(bat.value()->head().is_void());
}

TEST(CatalogDeltaTest, AppendValidation) {
  Catalog catalog;
  catalog.Put("ints", Bat::DenseInts({1}));
  catalog.Put("oid_head", Bat(Column::MakeOids({5}), Column::MakeInts({1})));
  EXPECT_FALSE(catalog.Append("missing", Column::MakeInts({1})).ok());
  EXPECT_FALSE(catalog.Append("ints", Column::MakeDbls({0.5})).ok());
  EXPECT_FALSE(catalog.Append("oid_head", Column::MakeInts({2})).ok());
  // An empty chunk is an accepted no-op: it leaves no delta behind.
  EXPECT_TRUE(catalog.Append("ints", Column::MakeInts({})).ok());
  EXPECT_FALSE(catalog.HasDeltas("ints"));
}

TEST(CatalogDeltaTest, DeleteRowsMaterializesOidHead) {
  Catalog catalog;
  catalog.Put("t", Bat::DenseInts({10, 20, 30, 40}));
  auto deleted = catalog.DeleteRows("t", {1, 3});
  ASSERT_TRUE(deleted.ok());
  EXPECT_EQ(deleted.value(), 2u);
  EXPECT_EQ(catalog.VisibleRows("t").value(), 2u);
  auto bat = catalog.Get("t");
  ASSERT_TRUE(bat.ok());
  ASSERT_EQ(bat.value()->size(), 2u);
  EXPECT_EQ(bat.value()->head().OidAt(0), 0u);
  EXPECT_EQ(bat.value()->head().OidAt(1), 2u);
  EXPECT_EQ(bat.value()->tail().IntAt(0), 10);
  EXPECT_EQ(bat.value()->tail().IntAt(1), 30);
  // Idempotence: re-deleting the same oids is a no-op.
  auto again = catalog.DeleteRows("t", {1, 3});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  // Out-of-domain oids fail atomically (nothing deleted).
  EXPECT_FALSE(catalog.DeleteRows("t", {0, 99}).ok());
  EXPECT_EQ(catalog.VisibleRows("t").value(), 2u);
}

TEST(CatalogDeltaTest, StringAppendsReintern) {
  Catalog catalog;
  catalog.Put("s", Bat::DenseStrs({"alpha", "beta"}));
  ASSERT_TRUE(catalog.Append("s", Column::MakeStrs({"alpha", "gamma"})).ok());
  auto bat = catalog.Get("s");
  ASSERT_TRUE(bat.ok());
  ASSERT_EQ(bat.value()->size(), 4u);
  EXPECT_EQ(bat.value()->tail().StrAt(0), "alpha");
  EXPECT_EQ(bat.value()->tail().StrAt(2), "alpha");
  EXPECT_EQ(bat.value()->tail().StrAt(3), "gamma");
  // Equal spellings keep equal heap offsets across the merge — the
  // invariant the string select/join kernels exploit.
  EXPECT_EQ(bat.value()->tail().StrOffsetAt(0),
            bat.value()->tail().StrOffsetAt(2));
}

TEST(CatalogDeltaTest, ShardAndZoneCachesRebuildAfterMutation) {
  Catalog catalog;
  std::vector<int64_t> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i);
  catalog.Put("t", Bat::DenseInts(v));
  auto shards = catalog.SharedShards(4);
  ASSERT_NE(shards, nullptr);
  ASSERT_NE(catalog.Zones("t"), nullptr);

  ASSERT_TRUE(catalog.Append("t", Column::MakeInts({1000})).ok());
  auto shards2 = catalog.SharedShards(4);
  ASSERT_NE(shards2, nullptr);
  EXPECT_NE(shards.get(), shards2.get());  // rebuilt over the new snapshot
  size_t total = 0;
  for (size_t s = 0; s < shards2->num_shards(); ++s) {
    auto frag = shards2->shard(s).Get("t");
    ASSERT_TRUE(frag.ok());
    total += frag.value()->size();
  }
  EXPECT_EQ(total, 101u);
  // The pinned old layout still reads the old snapshot (generation
  // isolation for in-flight queries).
  size_t old_total = 0;
  for (size_t s = 0; s < shards->num_shards(); ++s) {
    old_total += shards->shard(s).Get("t").value()->size();
  }
  EXPECT_EQ(old_total, 100u);
  ASSERT_NE(catalog.Zones("t"), nullptr);
}

TEST(CatalogDeltaTest, SaveToPersistsVisibleSnapshot) {
  std::string dir = TempPath("snapshot");
  Catalog catalog;
  catalog.Put("t", Bat::DenseInts({1, 2, 3}));
  ASSERT_TRUE(catalog.Append("t", Column::MakeInts({4})).ok());
  ASSERT_TRUE(catalog.DeleteRows("t", {0}).ok());
  ASSERT_TRUE(catalog.SaveTo(dir).ok());

  Catalog restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  auto bat = restored.Get("t");
  ASSERT_TRUE(bat.ok());
  ASSERT_EQ(bat.value()->size(), 3u);
  EXPECT_EQ(bat.value()->tail().IntAt(0), 2);
  EXPECT_EQ(bat.value()->tail().IntAt(2), 4);
  // The restored entry is a clean base again (deltas were folded in).
  EXPECT_FALSE(restored.HasDeltas("t"));
  std::filesystem::remove_all(dir);
}

TEST(CatalogDeltaTest, AtomicSaveToSurvivesRepeatedSaves) {
  std::string dir = TempPath("atomic");
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1}));
  ASSERT_TRUE(catalog.SaveTo(dir).ok());
  // A stale temp manifest (crash between write and rename of a previous
  // save) must not confuse the next save or load.
  WriteAll(dir + "/manifest.txt.tmp", {0xde, 0xad});
  catalog.Put("b", Bat::DenseInts({2, 3}));
  ASSERT_TRUE(catalog.SaveTo(dir).ok());
  Catalog restored;
  ASSERT_TRUE(restored.LoadFrom(dir).ok());
  EXPECT_EQ(restored.Get("a").value()->size(), 1u);
  EXPECT_EQ(restored.Get("b").value()->size(), 2u);
  // Exactly one epoch's data files remain (older epochs reclaimed).
  size_t bat_files = 0;
  for (const auto& de : std::filesystem::directory_iterator(dir)) {
    if (de.path().filename().string().rfind("bat_e", 0) == 0) ++bat_files;
  }
  EXPECT_EQ(bat_files, 2u);
  std::filesystem::remove_all(dir);
}

TEST(CatalogDeltaTest, LoadBatFileRestoresSingleFragment) {
  std::string dir = TempPath("fragment");
  Catalog catalog;
  catalog.Put("a", Bat::DenseInts({1, 2}));
  catalog.Put("b", Bat::DenseInts({3}));
  ASSERT_TRUE(catalog.SaveTo(dir).ok());

  // Parse the manifest by hand (exactly what lazy recovery does) and
  // load just one fragment into an empty catalog.
  std::ifstream manifest(dir + "/manifest.txt");
  ASSERT_TRUE(manifest.good());
  std::string line;
  std::string a_file;
  while (std::getline(manifest, line)) {
    if (line.rfind("a\t", 0) == 0) a_file = line.substr(2);
  }
  ASSERT_FALSE(a_file.empty());
  Catalog lazy;
  ASSERT_TRUE(lazy.LoadBatFile(dir + "/" + a_file, "a").ok());
  EXPECT_EQ(lazy.Get("a").value()->size(), 2u);
  EXPECT_FALSE(lazy.Contains("b"));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace mirror::monet
