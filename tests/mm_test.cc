// Multimedia substrate tests: images, segmentation, the six feature
// extractors, and clustering (k-means + AutoClass EM/BIC).

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "mm/clustering.h"
#include "mm/features.h"
#include "mm/image.h"
#include "mm/segmentation.h"
#include "mm/synthetic_library.h"

namespace mirror::mm {
namespace {

Segment WholeImageSegment(const Image& img) {
  Segment s;
  s.min_x = 0;
  s.min_y = 0;
  s.max_x = img.width() - 1;
  s.max_y = img.height() - 1;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      s.pixel_indices.push_back(y * img.width() + x);
    }
  }
  return s;
}

Image FlatImage(int n, uint8_t r, uint8_t g, uint8_t b) {
  Image img(n, n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) img.SetPixel(x, y, r, g, b);
  }
  return img;
}

Image GratingImage(int n, double angle, double frequency) {
  Image img(n, n);
  double ca = std::cos(angle);
  double sa = std::sin(angle);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      double u = (ca * x + sa * y) / n;
      auto v = static_cast<uint8_t>(
          128 + 120 * std::sin(2 * M_PI * frequency * u));
      img.SetPixel(x, y, v, v, v);
    }
  }
  return img;
}

TEST(ImageTest, SerializeRoundTrip) {
  Image img(5, 3);
  img.SetPixel(2, 1, 10, 20, 30);
  Image restored = Image::Deserialize(img.Serialize());
  EXPECT_EQ(restored.width(), 5);
  EXPECT_EQ(restored.height(), 3);
  EXPECT_EQ(restored.r(2, 1), 10);
  EXPECT_EQ(restored.g(2, 1), 20);
  EXPECT_EQ(restored.b(2, 1), 30);
}

TEST(ImageTest, GrayUsesLumaWeights) {
  Image img(1, 1);
  img.SetPixel(0, 0, 255, 0, 0);
  EXPECT_NEAR(img.Gray(0, 0), 0.299 * 255, 1e-9);
}

TEST(SegmenterTest, CoversEveryPixelExactlyOnce) {
  SyntheticLibrary library(LibraryOptions{.num_images = 1, .seed = 9});
  Image img = library.Generate()[0].image;
  Segmenter segmenter;
  std::vector<Segment> segments = segmenter.Split(img);
  ASSERT_GE(segments.size(), 1u);
  std::set<int> covered;
  size_t total = 0;
  for (const Segment& s : segments) {
    total += s.size();
    covered.insert(s.pixel_indices.begin(), s.pixel_indices.end());
  }
  EXPECT_EQ(total, static_cast<size_t>(img.width() * img.height()));
  EXPECT_EQ(covered.size(), total);  // no pixel in two segments
}

TEST(SegmenterTest, FlatImageIsOneSegment) {
  Image img = FlatImage(32, 100, 100, 100);
  std::vector<Segment> segments = Segmenter().Split(img);
  EXPECT_EQ(segments.size(), 1u);
}

TEST(SegmenterTest, TwoColorHalvesSplit) {
  Image img(32, 32);
  for (int y = 0; y < 32; ++y) {
    for (int x = 0; x < 32; ++x) {
      if (x < 16) {
        img.SetPixel(x, y, 250, 10, 10);
      } else {
        img.SetPixel(x, y, 10, 10, 250);
      }
    }
  }
  std::vector<Segment> segments = Segmenter().Split(img);
  EXPECT_EQ(segments.size(), 2u);
}

TEST(FeatureTest, HistogramsAreNormalizedDistributions) {
  SyntheticLibrary library(LibraryOptions{.num_images = 1, .seed = 4});
  Image img = library.Generate()[0].image;
  Segment seg = WholeImageSegment(img);
  for (const auto& extractor : MakeStandardExtractors()) {
    std::vector<double> f = extractor->Extract(img, seg);
    EXPECT_EQ(static_cast<int>(f.size()), extractor->dims())
        << extractor->name();
    for (double v : f) EXPECT_TRUE(std::isfinite(v)) << extractor->name();
  }
  RgbHistogram rgb;
  std::vector<double> h = rgb.Extract(img, seg);
  double sum = 0;
  for (double v : h) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  Lbp lbp;
  std::vector<double> l = lbp.Extract(img, seg);
  sum = 0;
  for (double v : l) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FeatureTest, RgbHistogramSeparatesColors) {
  Image red = FlatImage(16, 250, 0, 0);
  Image blue = FlatImage(16, 0, 0, 250);
  RgbHistogram rgb;
  auto hr = rgb.Extract(red, WholeImageSegment(red));
  auto hb = rgb.Extract(blue, WholeImageSegment(blue));
  double l1 = 0;
  for (size_t i = 0; i < hr.size(); ++i) l1 += std::abs(hr[i] - hb[i]);
  EXPECT_NEAR(l1, 2.0, 1e-9);  // disjoint support
}

TEST(FeatureTest, GaborRespondsToMatchingOrientation) {
  Image horizontal = GratingImage(48, 0.0, 6.0);
  GaborBank gabor;
  Segment seg = WholeImageSegment(horizontal);
  std::vector<double> f = gabor.Extract(horizontal, seg);
  // Layout: per (scale, orientation) pair (mean, std); orientations are
  // {0, 45, 90, 135} degrees. A 0-degree grating (variation along x)
  // excites the 0-degree filter far more than the 90-degree filter.
  double mean_0 = f[0];
  double mean_90 = f[4];
  EXPECT_GT(mean_0, 2.0 * mean_90);
}

TEST(FeatureTest, GaborFlatImageIsQuiet) {
  Image flat = FlatImage(48, 128, 128, 128);
  GaborBank gabor;
  std::vector<double> f = gabor.Extract(flat, WholeImageSegment(flat));
  for (size_t i = 0; i < f.size(); i += 2) {
    EXPECT_NEAR(f[i], 0.0, 1e-6) << "mean response " << i;
  }
}

TEST(FeatureTest, GlcmContrastOrdersTextures) {
  Image flat = FlatImage(32, 100, 100, 100);
  Image stripes = GratingImage(32, 0.0, 8.0);
  Glcm glcm;
  auto f_flat = glcm.Extract(flat, WholeImageSegment(flat));
  auto f_stripes = glcm.Extract(stripes, WholeImageSegment(stripes));
  EXPECT_NEAR(f_flat[0], 0.0, 1e-9);        // contrast of flat = 0
  EXPECT_GT(f_stripes[0], f_flat[0]);       // stripes have contrast
  EXPECT_NEAR(f_flat[1], 1.0, 1e-9);        // energy of flat = 1
  EXPECT_LT(f_stripes[1], 1.0);
}

TEST(FeatureTest, LawsEnergyQuietOnFlat) {
  Image flat = FlatImage(32, 77, 77, 77);
  LawsEnergy laws;
  auto f = laws.Extract(flat, WholeImageSegment(flat));
  // All masks except the pure L5L5 smoothing channel are zero-sum.
  for (size_t i = 1; i < f.size(); ++i) EXPECT_NEAR(f[i], 0.0, 1e-9);
  EXPECT_GT(f[0], 0.0);
}

TEST(FeatureTest, LbpUniformOnFlatImage) {
  Image flat = FlatImage(16, 50, 50, 50);
  Lbp lbp;
  auto f = lbp.Extract(flat, WholeImageSegment(flat));
  // All neighbors >= center: pattern 0xFF, uniform, popcount 8.
  EXPECT_NEAR(f[8], 1.0, 1e-9);
}

std::vector<std::vector<double>> PlantedBlobs(int per_cluster, int k, int dim,
                                              double separation,
                                              base::Rng* rng,
                                              std::vector<int>* truth) {
  std::vector<std::vector<double>> data;
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < per_cluster; ++i) {
      std::vector<double> x(static_cast<size_t>(dim));
      for (int d = 0; d < dim; ++d) {
        x[static_cast<size_t>(d)] =
            c * separation + rng->Gaussian(0.0, 0.5);
      }
      data.push_back(std::move(x));
      truth->push_back(c);
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  base::Rng rng(21);
  std::vector<int> truth;
  auto data = PlantedBlobs(40, 3, 4, 8.0, &rng, &truth);
  ClusteringResult result = KMeans().Run(data, 3);
  EXPECT_EQ(result.k, 3);
  EXPECT_GT(RandIndex(result.assignment, truth), 0.97);
  EXPECT_GT(result.inertia, 0.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  base::Rng rng(22);
  std::vector<int> truth;
  auto data = PlantedBlobs(30, 2, 3, 6.0, &rng, &truth);
  auto a = KMeans().Run(data, 2);
  auto b = KMeans().Run(data, 2);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(AutoClassTest, LogLikelihoodMonotoneNonDecreasing) {
  base::Rng rng(23);
  std::vector<int> truth;
  auto data = PlantedBlobs(50, 3, 2, 6.0, &rng, &truth);
  std::vector<double> trace;
  AutoClass().RunFixedK(data, 3, &trace);
  ASSERT_GE(trace.size(), 2u);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i], trace[i - 1] - 1e-6) << "EM iteration " << i;
  }
}

TEST(AutoClassTest, BicSelectsPlantedK) {
  base::Rng rng(24);
  std::vector<int> truth;
  auto data = PlantedBlobs(60, 4, 3, 10.0, &rng, &truth);
  AutoClass::Options options;
  options.min_k = 2;
  options.max_k = 8;
  std::vector<double> bics;
  ClusteringResult result = AutoClass(options).Run(data, &bics);
  EXPECT_EQ(bics.size(), 7u);
  EXPECT_GE(result.k, 3);
  EXPECT_LE(result.k, 5);
  EXPECT_GT(RandIndex(result.assignment, truth), 0.9);
}

TEST(AutoClassTest, MixtureWeightsSumToOne) {
  base::Rng rng(25);
  std::vector<int> truth;
  auto data = PlantedBlobs(40, 2, 2, 7.0, &rng, &truth);
  ClusteringResult result = AutoClass().RunFixedK(data, 2);
  double sum = 0;
  for (double w : result.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(RandIndexTest, BoundsAndIdentity) {
  std::vector<int> a = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(RandIndex(a, a), 1.0);
  std::vector<int> b = {0, 1, 0, 1};
  double r = RandIndex(a, b);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(SyntheticLibraryTest, DeterministicWithGroundTruth) {
  LibraryOptions options;
  options.num_images = 20;
  options.num_classes = 4;
  options.seed = 77;
  SyntheticLibrary lib(options);
  auto a = lib.Generate();
  auto b = lib.Generate();
  ASSERT_EQ(a.size(), 20u);
  int annotated = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].true_class, static_cast<int>(i) % 4);
    EXPECT_EQ(a[i].url, b[i].url);
    EXPECT_EQ(a[i].annotation, b[i].annotation);
    EXPECT_EQ(a[i].image.pixels(), b[i].image.pixels());
    if (!a[i].annotation.empty()) ++annotated;
  }
  EXPECT_GT(annotated, 0);
  EXPECT_LT(annotated, 20);  // some images are unannotated (paper §5.1)
}

TEST(SyntheticLibraryTest, ClassWordsAreDistinct) {
  SyntheticLibrary lib(LibraryOptions{.num_classes = 3});
  auto w0 = lib.ClassWords(0);
  auto w1 = lib.ClassWords(1);
  for (const std::string& w : w0) {
    EXPECT_EQ(std::count(w1.begin(), w1.end(), w), 0) << w;
  }
}

}  // namespace
}  // namespace mirror::mm
