#include <set>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/status.h"
#include "base/stopwatch.h"
#include "base/str_util.h"
#include "base/table_printer.h"

namespace mirror::base {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ConstructionFromOkStatusBecomesInternalError) {
  Result<int> r = Status::Ok();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailsThenPropagates() {
  MIRROR_RETURN_IF_ERROR(Status::IoError("disk on fire"));
  return Status::Ok();
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThenPropagates().code(), StatusCode::kIoError);
}

Result<int> Doubled(Result<int> in) {
  MIRROR_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(StatusMacrosTest, AssignOrReturnWorks) {
  EXPECT_EQ(Doubled(21).value(), 42);
  EXPECT_FALSE(Doubled(Status::NotFound("x")).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(3, 6));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 6);
}

TEST(RngTest, GaussianHasReasonableMoments) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Gaussian();
    sum += x;
    sum_sq += x * x;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RngTest, ZipfRankZeroMostFrequent) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[static_cast<size_t>(rng.Zipf(10, 1.2))] += 1;
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(StrUtilTest, SplitAndJoin) {
  EXPECT_EQ(SplitNonEmpty("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
}

TEST(StrUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("MiXeD42"), "mixed42");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
}

TEST(StrUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(TablePrinterTest, RendersAlignedTable) {
  TablePrinter t({"name", "n"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "100"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name  | n   |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1   |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 100 |"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace mirror::base
