// Tests of the query-serving daemon: the framed wire protocol, the
// session manager, and the concurrent multi-client request loop
// (daemon/wire.h, daemon/query_server.h). The core property throughout:
// a result that crossed the wire is bit-identical to direct MirrorDb
// execution.

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"
#include "daemon/query_server.h"
#include "daemon/wire.h"
#include "daemon/wire_client.h"
#include "mirror/mirror_db.h"
#include "monet/bat_io.h"
#include "monet/profiler.h"

namespace mirror::daemon {
namespace {

namespace wire = mirror::daemon::wire;

constexpr int kCatalogRows = 40000;
constexpr int kLibDocs = 1500;

constexpr const char* kWords[] = {"sun",  "sea",   "sky",  "rock", "tree",
                                  "bird", "sand",  "wave", "moss", "dune",
                                  "reef", "palm",  "surf", "cliff", "cloud"};

/// Loads the shared workload: a 40k-row atomic catalog (selection/agg
/// queries) and a small annotated library (ranking queries).
void BuildDb(db::MirrorDb* database, uint64_t seed, int catalog_rows) {
  base::Rng rng(seed);
  ASSERT_TRUE(database
                  ->Define("define Cat as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, Atomic<int>: rating, "
                           "Atomic<int>: ref>>;")
                  .ok());
  std::vector<moa::MoaValue> rows;
  rows.reserve(static_cast<size_t>(catalog_rows));
  for (int i = 0; i < catalog_rows; ++i) {
    rows.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("u" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::Int(rng.UniformInt(0, 1000)),
         moa::MoaValue::Int(rng.UniformInt(0, catalog_rows - 1))}));
  }
  ASSERT_TRUE(database->Load("Cat", std::move(rows)).ok());

  ASSERT_TRUE(database
                  ->Define("define Lib as SET<TUPLE<Atomic<URL>: u, "
                           "Atomic<int>: year, CONTREP<Text>: doc>>;")
                  .ok());
  std::vector<moa::MoaValue> docs;
  docs.reserve(static_cast<size_t>(kLibDocs));
  for (int i = 0; i < kLibDocs; ++i) {
    std::vector<std::string> terms;
    int len = 3 + static_cast<int>(rng.Uniform(10));
    for (int t = 0; t < len; ++t) {
      terms.push_back(kWords[rng.Uniform(std::size(kWords))]);
    }
    docs.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str("d" + std::to_string(i)),
         moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
         moa::MoaValue::ContRep(terms)}));
  }
  ASSERT_TRUE(database->Load("Lib", std::move(docs)).ok());
}

/// The shared read-only database. Tests that Load() into a database use
/// their own instance.
db::MirrorDb* SharedDb() {
  static db::MirrorDb* database = [] {
    auto* d = new db::MirrorDb();
    BuildDb(d, /*seed=*/42, kCatalogRows);
    return d;
  }();
  return database;
}

/// Bitwise double equality (not epsilon: the daemon must not perturb
/// results, down to NaN payloads and signed zeros).
bool SameBits(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(double));
  std::memcpy(&ub, &b, sizeof(double));
  return ua == ub;
}

/// Bit-exact comparison of a wire result against direct execution.
void ExpectResultIdentical(const wire::ResultReply& wire_result,
                           const moa::EvalOutput& direct) {
  ASSERT_EQ(wire_result.is_scalar, direct.is_scalar);
  if (direct.is_scalar) {
    ASSERT_EQ(wire_result.scalar.type(), direct.scalar.type());
    if (direct.scalar.type() == monet::ValueType::kDbl) {
      EXPECT_TRUE(SameBits(wire_result.scalar.d(), direct.scalar.d()));
    } else {
      EXPECT_TRUE(wire_result.scalar == direct.scalar);
    }
    return;
  }
  ASSERT_TRUE(wire_result.bat != nullptr);
  ASSERT_TRUE(direct.bat != nullptr);
  ASSERT_EQ(wire_result.bat->size(), direct.bat->size());
  ASSERT_EQ(wire_result.bat->head().type(), direct.bat->head().type());
  ASSERT_EQ(wire_result.bat->tail().type(), direct.bat->tail().type());
  for (size_t i = 0; i < direct.bat->size(); ++i) {
    auto [wh, wt] = wire_result.bat->Row(i);
    auto [dh, dt] = direct.bat->Row(i);
    ASSERT_TRUE(wh == dh) << "head mismatch at row " << i;
    if (dt.type() == monet::ValueType::kDbl) {
      ASSERT_TRUE(SameBits(wt.d(), dt.d()))
          << "tail bits differ at row " << i;
    } else {
      ASSERT_TRUE(wt == dt) << "tail mismatch at row " << i;
    }
  }
}

/// Waits until `pred` holds or ~2 s elapse.
template <typename Pred>
bool EventuallyTrue(Pred pred) {
  for (int i = 0; i < 2000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------------
// Wire codec units.

TEST(WireCodecTest, BatRoundTripIsRepresentationExact) {
  std::vector<std::string> strs = {"cat", "dog", "cat", "", "zebra"};
  monet::Bat bat(monet::Column::MakeVoid(100, 5),
                 monet::Column::MakeStrs(strs));
  std::vector<uint8_t> buf;
  monet::EncodeBat(bat, &buf);
  size_t pos = 0;
  auto decoded = monet::DecodeBat(buf, &pos);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(pos, buf.size());
  ASSERT_EQ(decoded.value().size(), bat.size());
  EXPECT_TRUE(decoded.value().head().is_void());
  EXPECT_EQ(decoded.value().head().void_base(), 100u);
  for (size_t i = 0; i < bat.size(); ++i) {
    EXPECT_EQ(decoded.value().tail().StrAt(i), strs[i]);
    // Interning survives the wire: equal strings keep equal offsets.
    EXPECT_EQ(decoded.value().tail().StrOffsetAt(i),
              bat.tail().StrOffsetAt(i));
  }
}

TEST(WireCodecTest, TruncatedBatFailsCleanly) {
  monet::Bat bat = monet::Bat::DenseDbls({1.5, -2.25, 1e300}, 7);
  std::vector<uint8_t> buf;
  monet::EncodeBat(bat, &buf);
  for (size_t cut = 0; cut < buf.size(); cut += 3) {
    std::vector<uint8_t> trunc(buf.begin(),
                               buf.begin() + static_cast<ptrdiff_t>(cut));
    size_t pos = 0;
    auto decoded = monet::DecodeBat(trunc, &pos);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WireCodecTest, QueryRequestRoundTripsBindings) {
  wire::QueryRequest req;
  req.text = "map[sum(THIS)](map[getBL(THIS.doc, q, stats)](Lib));";
  req.bindings.Bind("q", {{"sunset", 2.0}, {"beach", 0.5}});
  req.bindings.BindTerms("r", {"wave"});
  auto decoded = wire::DecodeQueryRequest(wire::EncodeQueryRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().text, req.text);
  EXPECT_EQ(decoded.value().bindings.CacheKey(), req.bindings.CacheKey());
}

TEST(WireCodecTest, ErrorFrameCarriesStatus) {
  base::Status status = base::Status::ParseError("bad query near ';'");
  base::Status decoded = wire::DecodeError(wire::EncodeError(status));
  EXPECT_EQ(decoded.code(), status.code());
  EXPECT_EQ(decoded.message(), status.message());
}

TEST(WireCodecTest, MalformedPayloadsAreParseErrors) {
  std::vector<uint8_t> garbage = {0xde, 0xad};
  EXPECT_FALSE(wire::DecodeQueryRequest(garbage).ok());
  EXPECT_FALSE(wire::DecodeHelloRequest(garbage).ok());
  EXPECT_FALSE(wire::DecodeStatsReply(garbage).ok());
  EXPECT_FALSE(wire::DecodeResultReply(garbage).ok());
}

// ---------------------------------------------------------------------------
// ByteChannel transport.

TEST(ByteChannelTest, FramesCrossTheChannelAndCloseEofsPeer) {
  auto [a, b] = wire::CreateChannelPair();
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(wire::WriteFrame(a.get(), wire::FrameType::kQuery, payload)
                  .ok());
  auto frame = wire::ReadFrame(b.get());
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().type, wire::FrameType::kQuery);
  EXPECT_EQ(frame.value().payload, payload);

  a->Close();
  auto eof = wire::ReadFrame(b.get());
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), base::StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Server round trips.

TEST(QueryServerTest, HelloQueryCloseRoundTrip) {
  db::MirrorDb* database = SharedDb();
  QueryServer server(database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));

  wire::WireClient client(std::move(client_end));
  auto hello = client.Hello("roundtrip");
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_GT(hello.value().session_id, 0u);
  EXPECT_EQ(hello.value().server_name, "mirrord");
  EXPECT_EQ(server.open_session_count(), 1u);
  // The session's plan cache is wired into MirrorDb Load invalidation.
  EXPECT_EQ(database->registered_session_count(), 1u);

  const std::string query = "count(select[THIS.year >= 2000](Cat));";
  moa::QueryContext ctx;
  auto direct = database->Query(query, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(query, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectResultIdentical(result.value(), direct.value());

  ASSERT_TRUE(client.Close().ok());
  EXPECT_TRUE(EventuallyTrue([&] { return server.open_session_count() == 0; }));
  EXPECT_EQ(database->registered_session_count(), 0u);
  server.Shutdown();
}

TEST(QueryServerTest, QueryBeforeHelloIsRejectedButConnectionSurvives) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));

  wire::WireClient client(std::move(client_end));
  moa::QueryContext ctx;
  auto premature = client.Query("count(Cat);", ctx);
  ASSERT_FALSE(premature.ok());
  EXPECT_EQ(premature.status().code(), base::StatusCode::kInvalidArgument);

  // The same connection can still say HELLO and work.
  ASSERT_TRUE(client.Hello("late").ok());
  auto result = client.Query("count(select[THIS.rating >= 500](Cat));", ctx);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  server.Shutdown();
}

TEST(QueryServerTest, QueryErrorsComeBackAsErrorFramesAndSessionSurvives) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("errors").ok());

  moa::QueryContext ctx;
  auto bad_parse = client.Query("select[THIS.year >>>](Cat);", ctx);
  ASSERT_FALSE(bad_parse.ok());
  auto bad_name = client.Query("count(NoSuchSet);", ctx);
  ASSERT_FALSE(bad_name.ok());

  auto good = client.Query("count(select[THIS.year >= 1990](Cat));", ctx);
  EXPECT_TRUE(good.ok()) << good.status().ToString();

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), 1u);
  EXPECT_EQ(stats.value().sessions[0].errors, 2u);
  EXPECT_GE(stats.value().server.errors, 2u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Concurrency: many sessions against one shared catalog.

TEST(QueryServerTest, EightConcurrentSessionsAreBitIdenticalToDirect) {
  db::MirrorDb* database = SharedDb();
  // Recycler off: this test pins the plan-cache layer underneath it —
  // result-cache replays would satisfy repeats without ever re-hitting
  // a session's compiled plan (daemon_recycler_test covers that path).
  QueryServer::Options options;
  options.query.exec.recycle = false;
  QueryServer server(database, options);
  constexpr int kSessions = 8;
  constexpr int kRounds = 6;

  // Per-session workload: distinct selection bounds, a map over the
  // selection, and a ranking query with session-specific bindings — so
  // concurrent sessions compile and execute genuinely different plans.
  struct Workload {
    std::vector<std::string> queries;
    moa::QueryContext ctx;
  };
  std::vector<Workload> workloads(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    Workload& w = workloads[s];
    int lo = 1975 + 3 * s;
    int hi = 2010 + s;
    w.queries.push_back("count(select[THIS.year >= " + std::to_string(lo) +
                        " and THIS.year <= " + std::to_string(hi) +
                        "](Cat));");
    w.queries.push_back("map[THIS.rating * " + std::to_string(s + 2) +
                        " + 1](select[THIS.year >= " + std::to_string(lo) +
                        "](Cat));");
    w.queries.push_back(
        "map[sum(THIS)](map[getBL(THIS.doc, q, stats)](select[THIS.year >= " +
        std::to_string(1970 + 5 * s) + "](Lib)));");
    w.ctx.BindTerms("q", {kWords[s % std::size(kWords)],
                          kWords[(s + 3) % std::size(kWords)]});
  }

  // Direct execution (no server) defines the expected bits.
  std::vector<std::vector<moa::EvalOutput>> expected(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    for (const std::string& q : workloads[s].queries) {
      auto direct = database->Query(q, workloads[s].ctx);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      expected[s].push_back(direct.TakeValue());
    }
  }

  std::vector<std::unique_ptr<wire::WireClient>> clients;
  for (int s = 0; s < kSessions; ++s) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    clients.push_back(
        std::make_unique<wire::WireClient>(std::move(client_end)));
    ASSERT_TRUE(clients.back()->Hello("c" + std::to_string(s)).ok());
  }
  EXPECT_EQ(server.open_session_count(), static_cast<size_t>(kSessions));
  EXPECT_EQ(database->registered_session_count(),
            static_cast<size_t>(kSessions));

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t qi = 0; qi < workloads[s].queries.size(); ++qi) {
          auto result =
              clients[s]->Query(workloads[s].queries[qi], workloads[s].ctx);
          if (!result.ok()) {
            ++failures;
            return;
          }
          const moa::EvalOutput& want = expected[s][qi];
          const wire::ResultReply& got = result.value();
          if (got.is_scalar != want.is_scalar) {
            ++failures;
            return;
          }
          if (want.is_scalar) {
            if (!SameBits(got.scalar.d(), want.scalar.d())) {
              ++failures;
              return;
            }
          } else {
            if (got.bat->size() != want.bat->size()) {
              ++failures;
              return;
            }
            for (size_t i = 0; i < want.bat->size(); ++i) {
              auto [gh, gt] = got.bat->Row(i);
              auto [wh, wt] = want.bat->Row(i);
              bool tails_equal = wt.type() == monet::ValueType::kDbl
                                     ? SameBits(gt.d(), wt.d())
                                     : gt == wt;
              if (!(gh == wh) || !tails_equal) {
                ++failures;
                return;
              }
            }
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Repeated rounds hit each session's plan cache.
  auto stats = clients[0]->Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), static_cast<size_t>(kSessions));
  for (const auto& entry : stats.value().sessions) {
    EXPECT_GT(entry.plan_cache_hits, 0u) << "session " << entry.session_id;
  }
  for (auto& client : clients) client->Close().ok();
  server.Shutdown();
  EXPECT_EQ(database->registered_session_count(), 0u);
}

TEST(QueryServerTest, ConcurrentIdenticalQueriesCoalesce) {
  db::MirrorDb* database = SharedDb();
  // Recycler off: once the first execution lands in the result cache,
  // later identical queries replay it without ever coalescing — this
  // test pins the in-flight sharing layer the recycler sits above.
  QueryServer::Options options;
  options.query.exec.recycle = false;
  QueryServer server(database, options);
  constexpr int kClients = 4;
  constexpr int kRounds = 12;
  const std::string query =
      "map[THIS.rating + 7](select[THIS.year >= 1980 and "
      "THIS.year <= 2015](Cat));";
  moa::QueryContext ctx;
  auto direct = database->Query(query, ctx);
  ASSERT_TRUE(direct.ok());

  std::vector<std::unique_ptr<wire::WireClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    clients.push_back(
        std::make_unique<wire::WireClient>(std::move(client_end)));
    ASSERT_TRUE(clients.back()->Hello("co" + std::to_string(c)).ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < kRounds; ++r) {
        auto result = clients[c]->Query(query, ctx);
        if (!result.ok() ||
            result.value().bat->size() != direct.value().bat->size()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  wire::ServerWireStats stats = server.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients * kRounds));
  // With four clients hammering one identical query, some requests must
  // have shared a leader's execution.
  EXPECT_GT(stats.coalesced_requests, 0u);
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Malformed and truncated frames.

TEST(QueryServerTest, MalformedPayloadGetsErrorFrameAndConnectionLives) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));

  // HELLO by hand so we can keep using the raw transport afterwards.
  wire::HelloRequest hello;
  hello.client_name = "raw";
  ASSERT_TRUE(wire::WriteFrame(client_end.get(), wire::FrameType::kHello,
                               wire::EncodeHelloRequest(hello))
                  .ok());
  auto hello_reply = wire::ReadFrame(client_end.get());
  ASSERT_TRUE(hello_reply.ok());
  ASSERT_EQ(hello_reply.value().type, wire::FrameType::kHelloOk);

  // A QUERY frame whose payload is garbage: framing stays intact, so the
  // server answers with ERROR and keeps serving.
  ASSERT_TRUE(wire::WriteFrame(client_end.get(), wire::FrameType::kQuery,
                               {0xff, 0x01, 0x02})
                  .ok());
  auto err = wire::ReadFrame(client_end.get());
  ASSERT_TRUE(err.ok());
  ASSERT_EQ(err.value().type, wire::FrameType::kError);
  base::Status decoded_err = wire::DecodeError(err.value().payload);
  EXPECT_EQ(decoded_err.code(), base::StatusCode::kParseError);

  // The connection still serves valid requests.
  wire::QueryRequest req;
  req.text = "count(select[THIS.rating >= 100](Cat));";
  ASSERT_TRUE(wire::WriteFrame(client_end.get(), wire::FrameType::kQuery,
                               wire::EncodeQueryRequest(req))
                  .ok());
  auto result = wire::ReadFrame(client_end.get());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().type, wire::FrameType::kResult);
  server.Shutdown();
}

TEST(QueryServerTest, UnknownFrameTypeIsReportedThenConnectionDrops) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));

  // An unknown type byte cannot be resynchronized: expect one ERROR
  // frame, then EOF.
  uint8_t bogus[5] = {0x7f, 0, 0, 0, 0};
  ASSERT_TRUE(client_end->Write(bogus, sizeof(bogus)).ok());
  auto err = wire::ReadFrame(client_end.get());
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err.value().type, wire::FrameType::kError);
  auto eof = wire::ReadFrame(client_end.get());
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), base::StatusCode::kNotFound);

  // The server itself is unharmed: a fresh connection works.
  auto [c2, s2] = wire::CreateChannelPair();
  server.Serve(std::move(s2));
  wire::WireClient client(std::move(c2));
  EXPECT_TRUE(client.Hello("after-bogus").ok());
  server.Shutdown();
}

TEST(QueryServerTest, TruncatedFrameDropsConnectionServerSurvives) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));

  // Header promises 64 payload bytes; deliver 3 and hang up.
  uint8_t header[5] = {static_cast<uint8_t>(wire::FrameType::kQuery), 64, 0,
                       0, 0};
  ASSERT_TRUE(client_end->Write(header, sizeof(header)).ok());
  uint8_t partial[3] = {1, 2, 3};
  ASSERT_TRUE(client_end->Write(partial, sizeof(partial)).ok());
  client_end->Close();

  EXPECT_TRUE(EventuallyTrue([&] { return server.active_connections() == 0; }));
  // No half-open session left behind, and the server still serves.
  EXPECT_EQ(server.open_session_count(), 0u);
  auto [c2, s2] = wire::CreateChannelPair();
  server.Serve(std::move(s2));
  wire::WireClient client(std::move(c2));
  EXPECT_TRUE(client.Hello("after-truncation").ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Load invalidation.

TEST(QueryServerTest, LoadInvalidatesEveryLiveSession) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/7, /*catalog_rows=*/4000);
  // Recycler off: every session must COMPILE the query (plan_cache_size
  // below), not replay another session's cached reply. The recycler's
  // own Load invalidation is covered by daemon_recycler_test.
  QueryServer::Options options;
  options.query.exec.recycle = false;
  QueryServer server(&database, options);

  std::vector<std::unique_ptr<wire::WireClient>> clients;
  for (int c = 0; c < 2; ++c) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server.Serve(std::move(server_end));
    clients.push_back(
        std::make_unique<wire::WireClient>(std::move(client_end)));
    ASSERT_TRUE(clients.back()->Hello("inv" + std::to_string(c)).ok());
  }

  const std::string query = "count(select[THIS.year >= 1970](Cat));";
  moa::QueryContext ctx;
  for (auto& client : clients) {
    auto result = client->Query(query, ctx);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().scalar.AsDouble(), 4000.0);
  }
  auto stats = clients[0]->Stats();
  ASSERT_TRUE(stats.ok());
  uint64_t generation_before = stats.value().server.load_generation;
  for (const auto& s : stats.value().sessions) {
    EXPECT_EQ(s.plan_cache_size, 1u);
  }

  // Reload the catalog with half as many rows through the SAME MirrorDb
  // the server fronts: every live session's plan cache must drop.
  {
    base::Rng rng(99);
    std::vector<moa::MoaValue> rows;
    for (int i = 0; i < 2000; ++i) {
      rows.push_back(moa::MoaValue::Tuple(
          {moa::MoaValue::Str("v" + std::to_string(i)),
           moa::MoaValue::Int(rng.UniformInt(1970, 2025)),
           moa::MoaValue::Int(rng.UniformInt(0, 1000)),
           moa::MoaValue::Int(rng.UniformInt(0, 1999))}));
    }
    ASSERT_TRUE(database.Load("Cat", std::move(rows)).ok());
  }

  stats = clients[1]->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().server.load_generation, generation_before + 1);
  for (const auto& s : stats.value().sessions) {
    EXPECT_EQ(s.plan_cache_size, 0u) << "session " << s.session_id
                                     << " kept a stale plan";
  }
  // Post-reload queries see the new contents (recompiled, not stale).
  for (auto& client : clients) {
    auto result = client->Query(query, ctx);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().scalar.AsDouble(), 2000.0);
  }
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Per-session SET overrides.

TEST(QueryServerTest, SetOverridesAreIsolatedPerSession) {
  db::MirrorDb* database = SharedDb();
  // Recycler off: the fan-out probes below need each tenant's query to
  // actually EXECUTE under that tenant's options — a cached replay from
  // a previous run against the shared db would show zero kernel work
  // (daemon_recycler_test covers the cached path).
  QueryServer::Options options;
  options.query.exec.recycle = false;
  QueryServer server(database, options);

  auto [ca, sa] = wire::CreateChannelPair();
  auto [cb, sb] = wire::CreateChannelPair();
  server.Serve(std::move(sa));
  server.Serve(std::move(sb));
  wire::WireClient a(std::move(ca));
  wire::WireClient b(std::move(cb));
  ASSERT_TRUE(a.Hello("tenant-a").ok());
  ASSERT_TRUE(b.Hello("tenant-b").ok());

  // Tenant A pins 2-way sharded execution with one thread; B stays on
  // the defaults.
  auto set_a = a.Set({{"num_shards", 2}, {"num_threads", 1}});
  ASSERT_TRUE(set_a.ok()) << set_a.status().ToString();
  EXPECT_EQ(set_a.value().num_shards, 2u);
  EXPECT_EQ(set_a.value().num_threads, 1);

  auto stats = b.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), 2u);
  for (const auto& s : stats.value().sessions) {
    if (s.client_name == "tenant-a") {
      EXPECT_EQ(s.options.num_shards, 2u);
      EXPECT_EQ(s.options.num_threads, 1);
    } else {
      EXPECT_EQ(s.options.num_shards, 0u);  // inherits the db default
      EXPECT_EQ(s.options.num_threads, 0);  // auto
    }
  }

  // A's queries genuinely fan out across shards; B's do not. Identical
  // results either way.
  const std::string query =
      "map[THIS.rating * 3](select[THIS.year >= 1985 and "
      "THIS.year <= 2010](Cat));";
  moa::QueryContext ctx;
  auto direct = database->Query(query, ctx);
  ASSERT_TRUE(direct.ok());

  monet::ResetKernelStats();
  auto result_a = a.Query(query, ctx);
  ASSERT_TRUE(result_a.ok());
  uint64_t fanouts_a = monet::SnapshotKernelStats().shard_fanouts;
  EXPECT_GT(fanouts_a, 0u) << "tenant-a's override never fanned out";

  monet::ResetKernelStats();
  auto result_b = b.Query(query, ctx);
  ASSERT_TRUE(result_b.ok());
  EXPECT_EQ(monet::SnapshotKernelStats().shard_fanouts, 0u)
      << "tenant-b was dragged onto tenant-a's sharded path";

  ExpectResultIdentical(result_a.value(), direct.value());
  ExpectResultIdentical(result_b.value(), direct.value());

  // Unknown keys and out-of-range values are rejected atomically: the
  // valid prefix of the batch must not stick.
  auto bad = a.Set({{"num_threads", 4}, {"warp_drive", 1}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), base::StatusCode::kInvalidArgument);
  auto echo = a.Set({{"morsel_joins", 1}});
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo.value().num_threads, 1) << "rejected SET partially applied";
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// Shutdown.

TEST(QueryServerTest, ShutdownDrainsInFlightRequests) {
  db::MirrorDb* database = SharedDb();
  auto server = std::make_unique<QueryServer>(database);
  constexpr int kClients = 3;
  std::vector<std::unique_ptr<wire::WireClient>> clients;
  for (int c = 0; c < kClients; ++c) {
    auto [client_end, server_end] = wire::CreateChannelPair();
    server->Serve(std::move(server_end));
    clients.push_back(
        std::make_unique<wire::WireClient>(std::move(client_end)));
    ASSERT_TRUE(clients.back()->Hello("sd" + std::to_string(c)).ok());
  }

  // Keep all clients issuing queries while the server shuts down. Every
  // reply must be either a valid result or a clean transport/shutdown
  // error — never a hang, a crash, or a corrupt frame.
  std::atomic<int> ok_replies{0};
  std::atomic<int> closed_replies{0};
  std::atomic<int> bad_replies{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int r = 0; r < 200; ++r) {
        auto result = clients[c]->Query(
            "map[sum(THIS)](map[getBL(THIS.doc, q, stats)](Lib));",
            [&] {
              moa::QueryContext q;
              q.BindTerms("q", {"sun", "wave"});
              return q;
            }());
        if (result.ok()) {
          ++ok_replies;
        } else if (result.status().code() == base::StatusCode::kIoError ||
                   result.status().code() == base::StatusCode::kNotFound) {
          ++closed_replies;
          return;  // server is gone — done
        } else {
          ++bad_replies;
          return;
        }
      }
    });
  }
  // Let the request storm get going, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Shutdown();
  for (std::thread& t : threads) t.join();

  EXPECT_GT(ok_replies.load(), 0) << "no request ever completed";
  EXPECT_EQ(bad_replies.load(), 0);
  EXPECT_EQ(server->active_connections(), 0u);
  EXPECT_EQ(database->registered_session_count(), 0u);
  server.reset();  // double-shutdown via destructor must be safe
}

TEST(QueryServerTest, CloseHandshakeThenServeIsRefusedAfterShutdown) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("bye").ok());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();

  // Connections offered after Shutdown are closed immediately.
  auto [c2, s2] = wire::CreateChannelPair();
  server.Serve(std::move(s2));
  wire::WireClient late(std::move(c2));
  EXPECT_FALSE(late.Hello("too-late").ok());
}

// ---------------------------------------------------------------------------
// TCP transport.

TEST(QueryServerTest, TcpListenerServesTheSameProtocol) {
  db::MirrorDb* database = SharedDb();
  QueryServer server(database);
  auto port = server.ListenTcp(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_GT(port.value(), 0);

  auto conn = wire::TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  wire::WireClient client(conn.TakeValue());
  ASSERT_TRUE(client.Hello("tcp-client").ok());

  const std::string query =
      "map[THIS.rating + 1](select[THIS.year >= 2005](Cat));";
  moa::QueryContext ctx;
  auto direct = database->Query(query, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(query, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectResultIdentical(result.value(), direct.value());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

// ---------------------------------------------------------------------------
// The durable write path over the wire.

TEST(QueryServerTest, AppendAndDeleteOverTheWire) {
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/11, /*catalog_rows=*/2000);
  QueryServer server(&database);  // mutable: writes allowed
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("writer").ok());

  // Appends are acknowledged with the post-write row count. No WAL is
  // attached here, so lsn stays 0 (volatile write) — the daemon still
  // applies the delta layers.
  auto ack = client.Append("Cat.rating", monet::Column::MakeInts({7, 8, 9}));
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack.value().visible_rows, 2003u);
  EXPECT_EQ(ack.value().lsn, 0u);
  EXPECT_EQ(database.catalog()->AppendDomainRows("Cat.rating").value(), 2003u);

  auto del = client.Delete("Cat.rating", {2000, 2002});
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del.value().deleted, 2u);
  EXPECT_EQ(del.value().visible_rows, 2001u);

  // Invalid writes come back as clean ERROR frames; the session lives.
  auto bad = client.Append("Cat.rating", monet::Column::MakeDbls({0.5}));
  ASSERT_FALSE(bad.ok());
  auto missing = client.Delete("NoSuch.bat", {0});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), base::StatusCode::kNotFound);
  auto again = client.Append("Cat.rating", monet::Column::MakeInts({1}));
  ASSERT_TRUE(again.ok());

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().server.errors, 2u);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(QueryServerTest, ReadOnlyServerRejectsWrites) {
  QueryServer server(static_cast<const db::MirrorDb*>(SharedDb()));
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("intruder").ok());

  auto append = client.Append("Cat.rating", monet::Column::MakeInts({1}));
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), base::StatusCode::kInvalidArgument);
  auto del = client.Delete("Cat.rating", {0});
  ASSERT_FALSE(del.ok());
  EXPECT_EQ(del.status().code(), base::StatusCode::kInvalidArgument);

  // Nothing was mutated and the session still serves queries.
  EXPECT_FALSE(SharedDb()->catalog()->HasDeltas("Cat.rating"));
  moa::QueryContext ctx;
  EXPECT_TRUE(client.Query("count(Cat);", ctx).ok());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(QueryServerTest, WalCountersSurfaceInStats) {
  std::string dir =
      (std::filesystem::temp_directory_path() /
       ("mirror_server_walstats_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/13, /*catalog_rows=*/500);
  ASSERT_TRUE(database.AttachWal(dir + "/wal.log").ok());
  QueryServer server(&database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("walstats").ok());

  auto a1 = client.Append("Cat.rating", monet::Column::MakeInts({1, 2}));
  ASSERT_TRUE(a1.ok());
  EXPECT_GT(a1.value().lsn, 0u);  // WAL-backed acks carry real LSNs
  auto a2 = client.Append("Cat.rating", monet::Column::MakeInts({3}));
  ASSERT_TRUE(a2.ok());
  EXPECT_GT(a2.value().lsn, a1.value().lsn);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().server.wal_appends, 2u);
  EXPECT_EQ(stats.value().server.wal_replayed_records, 0u);
  EXPECT_EQ(stats.value().server.wal_truncated_bytes, 0u);
  EXPECT_EQ(stats.value().server.recovery_lazy_loads, 0u);
  EXPECT_EQ(stats.value().server.recovery_pending, 0u);
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// The per-session query deadline.

TEST(QueryServerTest, QueryDeadlineKnobValidatesAndEchoes) {
  QueryServer server(SharedDb());
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("deadline-echo").ok());

  auto set = client.Set({{"query_deadline_ms", 5000}});
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_EQ(set.value().query_deadline_ms, 5000u);

  // Out-of-range values reject the whole batch atomically.
  auto bad = client.Set({{"query_deadline_ms", -1}});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), base::StatusCode::kInvalidArgument);
  auto too_big = client.Set({{"num_threads", 2}, {"query_deadline_ms", 86'400'001}});
  ASSERT_FALSE(too_big.ok());
  auto echo = client.Set({{"morsel_joins", 1}});
  ASSERT_TRUE(echo.ok());
  EXPECT_EQ(echo.value().query_deadline_ms, 5000u);
  EXPECT_EQ(echo.value().num_threads, 0) << "rejected SET partially applied";

  // STATS echoes the knob per session.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats.value().sessions.size(), 1u);
  EXPECT_EQ(stats.value().sessions[0].options.query_deadline_ms, 5000u);

  // A generous deadline does not perturb results.
  const std::string query = "count(select[THIS.year >= 2000](Cat));";
  moa::QueryContext ctx;
  auto direct = SharedDb()->Query(query, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(query, ctx);
  ASSERT_TRUE(result.ok());
  ExpectResultIdentical(result.value(), direct.value());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

TEST(QueryServerTest, ExpiredDeadlineReturnsErrorFrameAndSessionSurvives) {
  // A big enough catalog that a multi-instruction query reliably outlives
  // a 1 ms deadline (the engine checks at instruction and morsel
  // boundaries, so the first boundary after the stamp trips it).
  db::MirrorDb database;
  BuildDb(&database, /*seed=*/3, /*catalog_rows=*/1000000);
  QueryServer server(&database);
  auto [client_end, server_end] = wire::CreateChannelPair();
  server.Serve(std::move(server_end));
  wire::WireClient client(std::move(client_end));
  ASSERT_TRUE(client.Hello("deadline").ok());
  ASSERT_TRUE(client.Set({{"query_deadline_ms", 1}, {"num_threads", 1}}).ok());

  const std::string heavy =
      "map[THIS * 3 + 1](map[THIS * 2](map[THIS.rating + "
      "7](select[THIS.year >= 1970](Cat))));";
  moa::QueryContext ctx;
  bool expired = false;
  for (int attempt = 0; attempt < 50 && !expired; ++attempt) {
    auto result = client.Query(heavy, ctx);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), base::StatusCode::kDeadlineExceeded)
          << result.status().ToString();
      expired = true;
    }
  }
  EXPECT_TRUE(expired) << "1 ms deadline never tripped on a 1M-row query";

  // The ERROR frame was clean: the same session serves after lifting the
  // deadline, with an undisturbed result.
  ASSERT_TRUE(client.Set({{"query_deadline_ms", 0}}).ok());
  auto direct = database.Query(heavy, ctx);
  ASSERT_TRUE(direct.ok());
  auto result = client.Query(heavy, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectResultIdentical(result.value(), direct.value());
  ASSERT_TRUE(client.Close().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace mirror::daemon
