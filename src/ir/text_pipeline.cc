#include "ir/text_pipeline.h"

#include "ir/porter_stemmer.h"

namespace mirror::ir {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : text) {
    bool token_char = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      (keep_underscore_ && c == '_');
    if (c >= 'A' && c <= 'Z') {
      current.push_back(static_cast<char>(c - 'A' + 'a'));
    } else if (token_char) {
      current.push_back(c);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

StopList::StopList() {
  static const char* const kStopwords[] = {
      "a",     "about", "above", "after",  "again", "all",   "am",    "an",
      "and",   "any",   "are",   "as",     "at",    "be",    "been",  "before",
      "being", "below", "between", "both", "but",   "by",    "can",   "did",
      "do",    "does",  "doing", "down",   "during", "each",  "few",  "for",
      "from",  "further", "had", "has",    "have",  "having", "he",   "her",
      "here",  "hers",  "him",   "his",    "how",   "i",     "if",    "in",
      "into",  "is",    "it",    "its",    "just",  "me",    "more",  "most",
      "my",    "no",    "nor",   "not",    "now",   "of",    "off",   "on",
      "once",  "only",  "or",    "other",  "our",   "ours",  "out",   "over",
      "own",   "s",     "same",  "she",    "should", "so",   "some",  "such",
      "t",     "than",  "that",  "the",    "their", "them",  "then",  "there",
      "these", "they",  "this",  "those",  "through", "to",  "too",   "under",
      "until", "up",    "very",  "was",    "we",    "were",  "what",  "when",
      "where", "which", "while", "who",    "whom",  "why",   "will",  "with",
      "you",   "your",  "yours",
  };
  for (const char* w : kStopwords) words_.insert(w);
}

bool StopList::IsStopword(std::string_view token) const {
  return words_.count(std::string(token)) > 0;
}

TextPipeline::TextPipeline(Options options)
    : options_(options), tokenizer_(options.keep_underscore) {}

std::vector<std::string> TextPipeline::Process(std::string_view text) const {
  std::vector<std::string> terms;
  for (std::string& token : tokenizer_.Tokenize(text)) {
    if (options_.remove_stopwords && stoplist_.IsStopword(token)) continue;
    terms.push_back(options_.stem ? PorterStem(token) : std::move(token));
  }
  return terms;
}

}  // namespace mirror::ir
