#ifndef MIRROR_IR_VOCABULARY_H_
#define MIRROR_IR_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/logging.h"

namespace mirror::ir {

/// Bidirectional term dictionary: maps index terms (text stems or visual
/// cluster labels like "gabor_21") to dense term ids.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, adding it if new. Ids are dense from 0 in
  /// insertion order.
  int64_t Intern(std::string_view term) {
    auto it = ids_.find(std::string(term));
    if (it != ids_.end()) return it->second;
    int64_t id = static_cast<int64_t>(terms_.size());
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    return id;
  }

  /// Returns the id of `term`, or -1 if unknown.
  int64_t Lookup(std::string_view term) const {
    auto it = ids_.find(std::string(term));
    return it == ids_.end() ? -1 : it->second;
  }

  /// The term spelled by `id`. Precondition: 0 <= id < size().
  const std::string& TermOf(int64_t id) const {
    MIRROR_CHECK_GE(id, 0);
    MIRROR_CHECK_LT(id, static_cast<int64_t>(terms_.size()));
    return terms_[static_cast<size_t>(id)];
  }

  int64_t size() const { return static_cast<int64_t>(terms_.size()); }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, int64_t> ids_;
};

}  // namespace mirror::ir

#endif  // MIRROR_IR_VOCABULARY_H_
