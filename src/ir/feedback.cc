#include "ir/feedback.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace mirror::ir {

std::vector<std::pair<int64_t, double>> RelevanceFeedback::ExpandQuery(
    const std::vector<std::pair<int64_t, double>>& current_query,
    const std::vector<monet::Oid>& relevant_docs,
    const InferenceNetwork& network) const {
  const ContentIndex& index = network.index();
  std::unordered_set<int64_t> in_query;
  for (const auto& [term, w] : current_query) in_query.insert(term);

  // Accumulate candidate evidence: mean belief of each term occurring in
  // the relevant documents, scaled by idf so that ubiquitous terms do not
  // dominate.
  std::unordered_map<int64_t, double> candidate_score;
  std::unordered_map<int64_t, int> candidate_hits;
  std::unordered_set<monet::Oid> relevant(relevant_docs.begin(),
                                          relevant_docs.end());
  // One pass over the (term-major) postings file.
  for (const Posting& p : index.postings()) {
    if (relevant.count(p.doc) == 0) continue;
    candidate_score[p.term] += network.Belief(p.doc, p.term);
    candidate_hits[p.term] += 1;
  }
  const CollectionStats& stats = index.stats();
  std::vector<std::pair<int64_t, double>> scored;
  scored.reserve(candidate_score.size());
  for (auto& [term, score_sum] : candidate_score) {
    double mean_belief =
        score_sum / static_cast<double>(relevant_docs.size());
    double idf = std::log((static_cast<double>(stats.num_docs) + 0.5) /
                          std::max<double>(
                              static_cast<double>(index.DocFreq(term)), 1.0)) /
                 std::log(static_cast<double>(stats.num_docs) + 1.0);
    scored.emplace_back(term, mean_belief * std::max(idf, 0.0));
  }
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  // Reinforce confirmed original terms; append top new expansion terms.
  std::vector<std::pair<int64_t, double>> next = current_query;
  for (auto& [term, weight] : next) {
    if (candidate_hits.count(term) > 0) weight += options_.reinforce;
  }
  int added = 0;
  for (const auto& [term, score] : scored) {
    if (added >= options_.expansion_terms) break;
    if (in_query.count(term) > 0) continue;
    next.emplace_back(term, options_.beta * score);
    ++added;
  }
  return next;
}

}  // namespace mirror::ir
