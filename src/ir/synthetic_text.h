#ifndef MIRROR_IR_SYNTHETIC_TEXT_H_
#define MIRROR_IR_SYNTHETIC_TEXT_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "ir/content_index.h"

namespace mirror::ir {

/// Parameters of the synthetic text workload used by the retrieval
/// benchmarks (E1/E3). Documents draw their terms from a Zipfian
/// vocabulary, matching the frequency skew of real collections.
struct SyntheticTextOptions {
  int64_t num_docs = 1000;
  int64_t vocab_size = 5000;
  int64_t doc_len_mean = 60;     // mean terms per document
  int64_t doc_len_spread = 20;   // +- uniform spread
  double zipf_skew = 1.1;
  uint64_t seed = 42;
};

/// Builds a finalized index of synthetic documents with oids 0..n-1.
/// Terms are spelled "t<k>" with k the Zipf rank (t0 most frequent).
ContentIndex MakeSyntheticIndex(const SyntheticTextOptions& options);

/// Samples `length` distinct query term ids, biased towards
/// mid-frequency terms (the informative region real queries hit).
std::vector<int64_t> SampleQueryTerms(const ContentIndex& index,
                                      int length, base::Rng* rng);

}  // namespace mirror::ir

#endif  // MIRROR_IR_SYNTHETIC_TEXT_H_
