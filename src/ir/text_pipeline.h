#ifndef MIRROR_IR_TEXT_PIPELINE_H_
#define MIRROR_IR_TEXT_PIPELINE_H_

#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace mirror::ir {

/// Splits free text into lowercase alphanumeric tokens. Everything that is
/// not [a-zA-Z0-9] separates tokens; tokens keep embedded digits (feature
/// cluster labels like "gabor_21" tokenize to "gabor" and "21" unless
/// underscores are declared token chars).
class Tokenizer {
 public:
  /// `keep_underscore` treats '_' as a token character, which the
  /// multimedia side uses so visual terms ("gabor_21") stay single tokens.
  explicit Tokenizer(bool keep_underscore = false)
      : keep_underscore_(keep_underscore) {}

  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  bool keep_underscore_;
};

/// Standard English stopword filter (the usual short SMART-derived list).
class StopList {
 public:
  StopList();

  bool IsStopword(std::string_view token) const;

 private:
  std::unordered_set<std::string> words_;
};

/// The document/query text processing chain of the IR engine: tokenize,
/// stop, stem. Produces the index terms of a piece of text (an IR model's
/// "document representation scheme", [WY95]).
class TextPipeline {
 public:
  struct Options {
    bool remove_stopwords = true;
    bool stem = true;
    bool keep_underscore = false;
  };

  TextPipeline() : TextPipeline(Options{}) {}
  explicit TextPipeline(Options options);

  /// Full processing chain for one text.
  std::vector<std::string> Process(std::string_view text) const;

 private:
  Options options_;
  Tokenizer tokenizer_;
  StopList stoplist_;
};

}  // namespace mirror::ir

#endif  // MIRROR_IR_TEXT_PIPELINE_H_
