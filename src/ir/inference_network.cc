#include "ir/inference_network.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "base/str_util.h"

namespace mirror::ir {

using monet::Oid;

QueryNode QueryNode::Term(int64_t id, double weight) {
  QueryNode n;
  n.kind = Kind::kTerm;
  n.term = id;
  n.weight = weight;
  return n;
}

namespace {

QueryNode MakeCombiner(QueryNode::Kind kind,
                       std::vector<QueryNode> children) {
  QueryNode n;
  n.kind = kind;
  n.children = std::move(children);
  return n;
}

}  // namespace

QueryNode QueryNode::Sum(std::vector<QueryNode> children) {
  return MakeCombiner(Kind::kSum, std::move(children));
}
QueryNode QueryNode::WSum(std::vector<QueryNode> children) {
  return MakeCombiner(Kind::kWSum, std::move(children));
}
QueryNode QueryNode::And(std::vector<QueryNode> children) {
  return MakeCombiner(Kind::kAnd, std::move(children));
}
QueryNode QueryNode::Or(std::vector<QueryNode> children) {
  return MakeCombiner(Kind::kOr, std::move(children));
}
QueryNode QueryNode::Not(QueryNode child) {
  QueryNode n;
  n.kind = Kind::kNot;
  n.children.push_back(std::move(child));
  return n;
}
QueryNode QueryNode::Max(std::vector<QueryNode> children) {
  return MakeCombiner(Kind::kMax, std::move(children));
}

std::string QueryNode::ToString(const Vocabulary* vocab) const {
  switch (kind) {
    case Kind::kTerm:
      if (vocab != nullptr && term >= 0 && term < vocab->size()) {
        return vocab->TermOf(term);
      }
      return base::StrFormat("t%lld", static_cast<long long>(term));
    default: {
      const char* name = "?";
      switch (kind) {
        case Kind::kSum:
          name = "#sum";
          break;
        case Kind::kWSum:
          name = "#wsum";
          break;
        case Kind::kAnd:
          name = "#and";
          break;
        case Kind::kOr:
          name = "#or";
          break;
        case Kind::kNot:
          name = "#not";
          break;
        case Kind::kMax:
          name = "#max";
          break;
        default:
          break;
      }
      std::string out(name);
      out += "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        if (kind == Kind::kWSum) {
          out += base::StrFormat("%.3g ", children[i].weight);
        }
        out += children[i].ToString(vocab);
      }
      out += ")";
      return out;
    }
  }
}

InferenceNetwork::InferenceNetwork(const ContentIndex* index,
                                   monet::BeliefParams params)
    : index_(index), params_(params) {
  MIRROR_CHECK(index_ != nullptr);
  MIRROR_CHECK(index_->finalized()) << "index must be finalized";
}

double InferenceNetwork::Belief(Oid doc, int64_t term) const {
  return BeliefFromCounts(index_->TermFrequency(doc, term),
                          index_->DocLen(doc), index_->DocFreq(term));
}

double InferenceNetwork::BeliefFromCounts(int64_t tf, int64_t doclen,
                                          int64_t df) const {
  if (tf == 0) return params_.alpha;
  const CollectionStats& s = index_->stats();
  double f = static_cast<double>(tf);
  double dl = static_cast<double>(doclen);
  double t_norm =
      f / (f + params_.k_tf + params_.k_len * dl / s.avg_doclen);
  double i_norm =
      std::log((static_cast<double>(s.num_docs) + 0.5) /
               std::max<double>(static_cast<double>(df), 1.0)) /
      std::log(static_cast<double>(s.num_docs) + 1.0);
  i_norm = std::clamp(i_norm, 0.0, 1.0);
  return params_.alpha + (1.0 - params_.alpha) * t_norm * i_norm;
}

namespace {

/// Sparse belief assignment: per-candidate beliefs plus the value shared
/// by every document absent from the map.
struct BeliefSet {
  std::unordered_map<Oid, double> by_doc;
  double default_belief = 0.0;
};

double ValueOf(const BeliefSet& s, Oid doc) {
  auto it = s.by_doc.find(doc);
  return it == s.by_doc.end() ? s.default_belief : it->second;
}

std::vector<ScoredDoc> ToRanking(const std::unordered_map<Oid, double>& map) {
  std::vector<ScoredDoc> out;
  out.reserve(map.size());
  for (const auto& [doc, score] : map) out.push_back({doc, score});
  std::sort(out.begin(), out.end(), [](const ScoredDoc& a, const ScoredDoc& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  return out;
}

}  // namespace

std::vector<ScoredDoc> InferenceNetwork::Evaluate(
    const QueryNode& query, EvalStrategy strategy) const {
  // Recursive evaluation producing sparse belief sets.
  std::function<BeliefSet(const QueryNode&)> eval =
      [&](const QueryNode& node) -> BeliefSet {
    BeliefSet result;
    switch (node.kind) {
      case QueryNode::Kind::kTerm: {
        std::vector<const Posting*> postings;
        index_->PostingsForTerm(node.term, strategy, &postings);
        for (const Posting* p : postings) {
          result.by_doc[p->doc] = Belief(p->doc, node.term);
        }
        result.default_belief = params_.alpha;
        return result;
      }
      case QueryNode::Kind::kNot: {
        MIRROR_CHECK_EQ(node.children.size(), 1u);
        BeliefSet child = eval(node.children[0]);
        result.default_belief = 1.0 - child.default_belief;
        for (const auto& [doc, b] : child.by_doc) {
          result.by_doc[doc] = 1.0 - b;
        }
        return result;
      }
      default: {
        MIRROR_CHECK(!node.children.empty()) << "combiner with no children";
        std::vector<BeliefSet> kids;
        kids.reserve(node.children.size());
        for (const QueryNode& c : node.children) kids.push_back(eval(c));
        // Candidate set: union of child candidates.
        std::unordered_map<Oid, double> acc;
        for (const BeliefSet& k : kids) {
          for (const auto& [doc, b] : k.by_doc) acc.emplace(doc, 0.0);
        }
        double total_weight = 0.0;
        for (const QueryNode& c : node.children) total_weight += c.weight;
        for (auto& [doc, out] : acc) {
          switch (node.kind) {
            case QueryNode::Kind::kSum: {
              double sum = 0;
              for (const BeliefSet& k : kids) sum += ValueOf(k, doc);
              out = sum / static_cast<double>(kids.size());
              break;
            }
            case QueryNode::Kind::kWSum: {
              double sum = 0;
              for (size_t i = 0; i < kids.size(); ++i) {
                sum += node.children[i].weight * ValueOf(kids[i], doc);
              }
              out = total_weight > 0 ? sum / total_weight : 0.0;
              break;
            }
            case QueryNode::Kind::kAnd: {
              double prod = 1;
              for (const BeliefSet& k : kids) prod *= ValueOf(k, doc);
              out = prod;
              break;
            }
            case QueryNode::Kind::kOr: {
              double prod = 1;
              for (const BeliefSet& k : kids) prod *= 1.0 - ValueOf(k, doc);
              out = 1.0 - prod;
              break;
            }
            case QueryNode::Kind::kMax: {
              double best = 0;
              for (const BeliefSet& k : kids) {
                best = std::max(best, ValueOf(k, doc));
              }
              out = best;
              break;
            }
            default:
              MIRROR_UNREACHABLE();
          }
        }
        // Default value of the combiner applied to child defaults.
        switch (node.kind) {
          case QueryNode::Kind::kSum: {
            double sum = 0;
            for (const BeliefSet& k : kids) sum += k.default_belief;
            result.default_belief = sum / static_cast<double>(kids.size());
            break;
          }
          case QueryNode::Kind::kWSum: {
            double sum = 0;
            for (size_t i = 0; i < kids.size(); ++i) {
              sum += node.children[i].weight * kids[i].default_belief;
            }
            result.default_belief = total_weight > 0 ? sum / total_weight : 0;
            break;
          }
          case QueryNode::Kind::kAnd: {
            double prod = 1;
            for (const BeliefSet& k : kids) prod *= k.default_belief;
            result.default_belief = prod;
            break;
          }
          case QueryNode::Kind::kOr: {
            double prod = 1;
            for (const BeliefSet& k : kids) prod *= 1.0 - k.default_belief;
            result.default_belief = 1.0 - prod;
            break;
          }
          case QueryNode::Kind::kMax: {
            double best = 0;
            for (const BeliefSet& k : kids) {
              best = std::max(best, k.default_belief);
            }
            result.default_belief = best;
            break;
          }
          default:
            MIRROR_UNREACHABLE();
        }
        result.by_doc = std::move(acc);
        return result;
      }
    }
  };

  BeliefSet top = eval(query);
  return ToRanking(top.by_doc);
}

std::vector<ScoredDoc> InferenceNetwork::RankSum(
    const std::vector<int64_t>& terms, EvalStrategy strategy) const {
  std::vector<std::pair<int64_t, double>> weighted;
  weighted.reserve(terms.size());
  for (int64_t t : terms) weighted.emplace_back(t, 1.0);
  return RankWSum(weighted, strategy);
}

std::vector<ScoredDoc> InferenceNetwork::RankWSum(
    const std::vector<std::pair<int64_t, double>>& weighted_terms,
    EvalStrategy strategy) const {
  std::unordered_map<Oid, double> sum_wb;      // sum of w * belief (present)
  std::unordered_map<Oid, double> sum_w_hit;   // sum of w over present terms
  double total_weight = 0.0;
  for (const auto& [term, weight] : weighted_terms) {
    total_weight += weight;
    std::vector<const Posting*> postings;
    index_->PostingsForTerm(term, strategy, &postings);
    for (const Posting* p : postings) {
      sum_wb[p->doc] += weight * Belief(p->doc, term);
      sum_w_hit[p->doc] += weight;
    }
  }
  // Absent terms contribute the default belief alpha.
  for (auto& [doc, score] : sum_wb) {
    score += params_.alpha * (total_weight - sum_w_hit[doc]);
  }
  return ToRanking(sum_wb);
}

}  // namespace mirror::ir
