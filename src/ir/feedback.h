#ifndef MIRROR_IR_FEEDBACK_H_
#define MIRROR_IR_FEEDBACK_H_

#include <vector>

#include "ir/inference_network.h"

namespace mirror::ir {

/// Relevance feedback options.
struct FeedbackOptions {
  /// How many new terms to add per feedback round.
  int expansion_terms = 5;
  /// Weight multiplier for expansion terms (original terms keep 1.0).
  double beta = 0.5;
  /// Weight increment for original terms confirmed by relevant docs.
  double reinforce = 0.25;
};

/// Query modification from relevance judgments (paper §5.2: "this
/// relevance feedback is used to improve the current query"). A
/// Rocchio-style selection of expansion terms from the judged-relevant
/// documents, weighted into a #wsum query for the inference network.
class RelevanceFeedback {
 public:
  explicit RelevanceFeedback(FeedbackOptions options = FeedbackOptions())
      : options_(options) {}

  /// Produces a new weighted query from the current one plus judgments.
  /// Expansion terms are ranked by mean belief in the relevant documents
  /// scaled by rarity (idf); terms already in the query are reinforced
  /// instead of duplicated.
  std::vector<std::pair<int64_t, double>> ExpandQuery(
      const std::vector<std::pair<int64_t, double>>& current_query,
      const std::vector<monet::Oid>& relevant_docs,
      const InferenceNetwork& network) const;

 private:
  FeedbackOptions options_;
};

}  // namespace mirror::ir

#endif  // MIRROR_IR_FEEDBACK_H_
