#include "ir/synthetic_text.h"

#include <algorithm>
#include <unordered_set>

#include "base/str_util.h"

namespace mirror::ir {

ContentIndex MakeSyntheticIndex(const SyntheticTextOptions& options) {
  base::Rng rng(options.seed);
  ContentIndex index;
  for (int64_t d = 0; d < options.num_docs; ++d) {
    int64_t len = options.doc_len_mean +
                  rng.UniformInt(-options.doc_len_spread,
                                 options.doc_len_spread);
    len = std::max<int64_t>(len, 1);
    std::vector<std::string> terms;
    terms.reserve(static_cast<size_t>(len));
    for (int64_t i = 0; i < len; ++i) {
      uint64_t rank = rng.Zipf(static_cast<uint64_t>(options.vocab_size),
                               options.zipf_skew);
      terms.push_back(
          base::StrFormat("t%llu", static_cast<unsigned long long>(rank)));
    }
    index.AddDocument(static_cast<monet::Oid>(d), terms);
  }
  index.Finalize();
  return index;
}

std::vector<int64_t> SampleQueryTerms(const ContentIndex& index, int length,
                                      base::Rng* rng) {
  MIRROR_CHECK(rng != nullptr);
  // Candidate pool: terms with df in [2, num_docs/4] — informative terms.
  const int64_t vocab = index.vocab().size();
  std::vector<int64_t> pool;
  int64_t df_cap = std::max<int64_t>(index.stats().num_docs / 4, 4);
  for (int64_t t = 0; t < vocab; ++t) {
    int64_t df = index.DocFreq(t);
    if (df >= 2 && df <= df_cap) pool.push_back(t);
  }
  if (pool.empty()) {
    for (int64_t t = 0; t < vocab; ++t) {
      if (index.DocFreq(t) > 0) pool.push_back(t);
    }
  }
  std::unordered_set<int64_t> chosen;
  std::vector<int64_t> out;
  while (static_cast<int>(out.size()) < length &&
         chosen.size() < pool.size()) {
    int64_t t = pool[rng->Uniform(pool.size())];
    if (chosen.insert(t).second) out.push_back(t);
  }
  return out;
}

}  // namespace mirror::ir
