#ifndef MIRROR_IR_CONTENT_INDEX_H_
#define MIRROR_IR_CONTENT_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "ir/vocabulary.h"
#include "monet/bat.h"

namespace mirror::ir {

/// Global collection statistics (the `stats` argument of the paper's
/// `getBL(THIS.annotation, query, stats)` call).
struct CollectionStats {
  int64_t num_docs = 0;
  int64_t vocab_size = 0;
  int64_t num_postings = 0;   // distinct (doc, term) pairs
  int64_t total_terms = 0;    // sum of tf
  double avg_doclen = 0.0;
};

/// One (document, term) entry with its within-document frequency.
struct Posting {
  monet::Oid doc;
  int64_t term;
  int64_t tf;
};

/// How a retrieval run locates the postings of a query term (experiment
/// E3 contrasts the two).
enum class EvalStrategy {
  kInverted,  // binary-searched per-term ranges over term-sorted postings
  kScan,      // linear pass over the full postings column
};

/// The physical content representation behind a CONTREP structure: an
/// aggregated postings file with document lengths, document frequencies
/// and collection statistics. After Finalize(), postings are stored
/// sorted by (term, doc) — the column-store equivalent of an inverted
/// file — and the index can export itself as BATs for the flattened
/// query engine.
class ContentIndex {
 public:
  ContentIndex() = default;

  /// Adds the representation of `doc` (raw index terms; duplicates
  /// aggregate into tf). A document may only be added once.
  void AddDocument(monet::Oid doc, const std::vector<std::string>& terms);

  /// Sorts the postings by (term, doc), computes df, doclen and global
  /// stats. Must be called once after the last AddDocument.
  void Finalize();

  bool finalized() const { return finalized_; }

  const Vocabulary& vocab() const { return vocab_; }
  Vocabulary* mutable_vocab() { return &vocab_; }
  const CollectionStats& stats() const { return stats_; }
  const std::vector<Posting>& postings() const { return postings_; }

  /// Document frequency of a term id (0 for out-of-range ids).
  int64_t DocFreq(int64_t term) const;

  /// Length (sum of tf) of a document; 0 if unknown.
  int64_t DocLen(monet::Oid doc) const;

  /// All documents that were added, ascending.
  std::vector<monet::Oid> Documents() const;

  /// tf of `term` in `doc` (0 if absent). O(log postings).
  int64_t TermFrequency(monet::Oid doc, int64_t term) const;

  /// Appends the postings of `term` to `out` using `strategy`.
  /// kInverted touches only the term's range; kScan reads every posting
  /// (and reports the work to the kernel profiler as a select).
  void PostingsForTerm(int64_t term, EvalStrategy strategy,
                       std::vector<const Posting*>* out) const;

  // -- BAT export (the catalog layout of a CONTREP field) ------------------
  // All three posting BATs are positionally aligned, void-headed by
  // posting id, ordered by (term, doc).

  monet::Bat DocBat() const;    // posting -> doc oid
  monet::Bat TermBat() const;   // posting -> term id (int)
  monet::Bat TfBat() const;     // posting -> tf (int)
  monet::Bat DfBat() const;     // term id (void) -> df (int); dense term ids
  monet::Bat DocLenBat() const; // doc oid -> length (int)

 private:
  Vocabulary vocab_;
  std::vector<Posting> postings_;
  std::vector<int64_t> df_;                     // by term id
  std::map<monet::Oid, int64_t> doclen_;        // ordered for determinism
  std::vector<std::pair<size_t, size_t>> term_ranges_;  // by term id
  CollectionStats stats_;
  bool finalized_ = false;
};

}  // namespace mirror::ir

#endif  // MIRROR_IR_CONTENT_INDEX_H_
