#ifndef MIRROR_IR_INFERENCE_NETWORK_H_
#define MIRROR_IR_INFERENCE_NETWORK_H_

#include <string>
#include <vector>

#include "ir/content_index.h"
#include "monet/prob_ops.h"

namespace mirror::ir {

/// A node in the query network of the inference network retrieval model
/// ([WY95], InQuery). Leaves are representation concepts (index terms);
/// inner nodes combine evidence with the probabilistic operators
/// #sum/#wsum/#and/#or/#not/#max.
struct QueryNode {
  enum class Kind { kTerm, kSum, kWSum, kAnd, kOr, kNot, kMax };

  Kind kind = Kind::kTerm;
  int64_t term = -1;   // kTerm only
  double weight = 1.0; // this node's weight under a #wsum parent
  std::vector<QueryNode> children;

  static QueryNode Term(int64_t id, double weight = 1.0);
  static QueryNode Sum(std::vector<QueryNode> children);
  static QueryNode WSum(std::vector<QueryNode> children);
  static QueryNode And(std::vector<QueryNode> children);
  static QueryNode Or(std::vector<QueryNode> children);
  static QueryNode Not(QueryNode child);
  static QueryNode Max(std::vector<QueryNode> children);

  /// Debug rendering, e.g. "#wsum(1.0 cat, 0.5 dog)".
  std::string ToString(const Vocabulary* vocab = nullptr) const;
};

/// A ranked retrieval result.
struct ScoredDoc {
  monet::Oid doc;
  double score;

  bool operator==(const ScoredDoc& o) const = default;
};

/// The document-network side of the inference network, bound to one
/// content index. Computes `bel(t|d)` with the InQuery default-belief
/// estimator (see monet::BeliefParams) and evaluates query networks over
/// the whole collection, set-at-a-time.
///
/// This is the *direct* (in-memory) engine used by the naive Moa
/// interpreter, the thesaurus and the daemons; the flattened query path
/// compiles the same arithmetic to MIL over the index's BAT export, and
/// the two must agree (tested).
class InferenceNetwork {
 public:
  /// The index must be finalized and must outlive the network.
  InferenceNetwork(const ContentIndex* index,
                   monet::BeliefParams params = monet::BeliefParams());

  const monet::BeliefParams& params() const { return params_; }
  const ContentIndex& index() const { return *index_; }

  /// Belief that `doc` supports `term`; `tf = 0` yields the default
  /// belief alpha.
  double Belief(monet::Oid doc, int64_t term) const;

  /// The belief estimator on raw counts: tf of the term in the document,
  /// the document's length and the term's document frequency (collection
  /// statistics come from the bound index). Used by engines that obtain
  /// the counts elsewhere (e.g. the tuple-at-a-time interpreter, which
  /// counts terms by navigating the materialized object).
  double BeliefFromCounts(int64_t tf, int64_t doclen, int64_t df) const;

  /// The belief assigned to a document that contains no evidence for a
  /// term (equals params().alpha).
  double DefaultBelief() const { return params_.alpha; }

  /// Evaluates a query network over all candidate documents (those
  /// containing at least one query leaf). Results are sorted by
  /// descending score, ties broken by ascending doc oid.
  std::vector<ScoredDoc> Evaluate(
      const QueryNode& query,
      EvalStrategy strategy = EvalStrategy::kInverted) const;

  /// The paper's §3 ranking: `map[sum(THIS)](map[getBL(...)](lib))`.
  /// Plain (unnormalized) sum of per-term beliefs, with absent terms
  /// contributing the default belief. Exactly matches the flattened MIL
  /// plan for the same query.
  std::vector<ScoredDoc> RankSum(
      const std::vector<int64_t>& terms,
      EvalStrategy strategy = EvalStrategy::kInverted) const;

  /// Weighted variant used by thesaurus query formulation and relevance
  /// feedback: score(d) = sum_t w_t * bel(t|d), absent terms at alpha.
  std::vector<ScoredDoc> RankWSum(
      const std::vector<std::pair<int64_t, double>>& weighted_terms,
      EvalStrategy strategy = EvalStrategy::kInverted) const;

 private:
  const ContentIndex* index_;
  monet::BeliefParams params_;
};

}  // namespace mirror::ir

#endif  // MIRROR_IR_INFERENCE_NETWORK_H_
