#include "ir/content_index.h"

#include <algorithm>
#include <unordered_map>

#include "monet/profiler.h"

namespace mirror::ir {

using monet::Bat;
using monet::Column;
using monet::Oid;

void ContentIndex::AddDocument(Oid doc,
                               const std::vector<std::string>& terms) {
  MIRROR_CHECK(!finalized_) << "index already finalized";
  MIRROR_CHECK_EQ(doclen_.count(doc), 0u) << "document added twice: " << doc;
  std::unordered_map<int64_t, int64_t> counts;
  for (const std::string& t : terms) counts[vocab_.Intern(t)]++;
  int64_t len = 0;
  for (const auto& [term, tf] : counts) {
    postings_.push_back(Posting{doc, term, tf});
    len += tf;
  }
  doclen_[doc] = len;
  stats_.num_docs += 1;
  stats_.total_terms += len;
}

void ContentIndex::Finalize() {
  MIRROR_CHECK(!finalized_);
  std::sort(postings_.begin(), postings_.end(),
            [](const Posting& a, const Posting& b) {
              if (a.term != b.term) return a.term < b.term;
              return a.doc < b.doc;
            });
  int64_t vocab_size = vocab_.size();
  df_.assign(static_cast<size_t>(vocab_size), 0);
  term_ranges_.assign(static_cast<size_t>(vocab_size), {0, 0});
  size_t i = 0;
  while (i < postings_.size()) {
    size_t j = i;
    int64_t term = postings_[i].term;
    while (j < postings_.size() && postings_[j].term == term) ++j;
    df_[static_cast<size_t>(term)] = static_cast<int64_t>(j - i);
    term_ranges_[static_cast<size_t>(term)] = {i, j};
    i = j;
  }
  stats_.vocab_size = vocab_size;
  stats_.num_postings = static_cast<int64_t>(postings_.size());
  stats_.avg_doclen =
      stats_.num_docs == 0
          ? 0.0
          : static_cast<double>(stats_.total_terms) /
                static_cast<double>(stats_.num_docs);
  finalized_ = true;
}

int64_t ContentIndex::DocFreq(int64_t term) const {
  MIRROR_CHECK(finalized_);
  if (term < 0 || term >= static_cast<int64_t>(df_.size())) return 0;
  return df_[static_cast<size_t>(term)];
}

int64_t ContentIndex::DocLen(Oid doc) const {
  auto it = doclen_.find(doc);
  return it == doclen_.end() ? 0 : it->second;
}

std::vector<Oid> ContentIndex::Documents() const {
  std::vector<Oid> docs;
  docs.reserve(doclen_.size());
  for (const auto& [doc, len] : doclen_) docs.push_back(doc);
  return docs;
}

int64_t ContentIndex::TermFrequency(Oid doc, int64_t term) const {
  MIRROR_CHECK(finalized_);
  if (term < 0 || term >= static_cast<int64_t>(term_ranges_.size())) return 0;
  auto [lo, hi] = term_ranges_[static_cast<size_t>(term)];
  auto begin = postings_.begin() + static_cast<ptrdiff_t>(lo);
  auto end = postings_.begin() + static_cast<ptrdiff_t>(hi);
  auto it = std::lower_bound(begin, end, doc,
                             [](const Posting& p, Oid d) { return p.doc < d; });
  if (it == end || it->doc != doc) return 0;
  return it->tf;
}

void ContentIndex::PostingsForTerm(int64_t term, EvalStrategy strategy,
                                   std::vector<const Posting*>* out) const {
  MIRROR_CHECK(finalized_);
  if (strategy == EvalStrategy::kInverted) {
    if (term < 0 || term >= static_cast<int64_t>(term_ranges_.size())) return;
    auto [lo, hi] = term_ranges_[static_cast<size_t>(term)];
    monet::TrackKernelOp(monet::KernelOp::kSelect, hi - lo, hi - lo);
    for (size_t i = lo; i < hi; ++i) out->push_back(&postings_[i]);
    return;
  }
  // Full scan baseline: reads every posting.
  monet::TrackKernelOp(monet::KernelOp::kSelect, postings_.size(), 0);
  for (const Posting& p : postings_) {
    if (p.term == term) out->push_back(&p);
  }
}

Bat ContentIndex::DocBat() const {
  MIRROR_CHECK(finalized_);
  std::vector<Oid> docs;
  docs.reserve(postings_.size());
  for (const Posting& p : postings_) docs.push_back(p.doc);
  return Bat::DenseOids(std::move(docs));
}

Bat ContentIndex::TermBat() const {
  MIRROR_CHECK(finalized_);
  std::vector<int64_t> terms;
  terms.reserve(postings_.size());
  for (const Posting& p : postings_) terms.push_back(p.term);
  return Bat::DenseInts(std::move(terms));
}

Bat ContentIndex::TfBat() const {
  MIRROR_CHECK(finalized_);
  std::vector<int64_t> tfs;
  tfs.reserve(postings_.size());
  for (const Posting& p : postings_) tfs.push_back(p.tf);
  return Bat::DenseInts(std::move(tfs));
}

Bat ContentIndex::DfBat() const {
  MIRROR_CHECK(finalized_);
  return Bat::DenseInts(df_);
}

Bat ContentIndex::DocLenBat() const {
  MIRROR_CHECK(finalized_);
  std::vector<Oid> docs;
  std::vector<int64_t> lens;
  docs.reserve(doclen_.size());
  lens.reserve(doclen_.size());
  for (const auto& [doc, len] : doclen_) {
    docs.push_back(doc);
    lens.push_back(len);
  }
  return Bat(Column::MakeOids(std::move(docs)),
             Column::MakeInts(std::move(lens)));
}

}  // namespace mirror::ir
