#ifndef MIRROR_IR_PORTER_STEMMER_H_
#define MIRROR_IR_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace mirror::ir {

/// The Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
/// stripping", 1980), as used by the InQuery system the paper's CONTREP
/// structure models. Input must be a lowercase ASCII word; the stem is
/// returned as a new string.
std::string PorterStem(std::string_view word);

}  // namespace mirror::ir

#endif  // MIRROR_IR_PORTER_STEMMER_H_
