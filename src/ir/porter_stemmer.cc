#include "ir/porter_stemmer.h"

namespace mirror::ir {

namespace {

// Implementation of the 1980 Porter algorithm, steps 1a-5b. Follows the
// classic reference implementation: `b_` is the word buffer, `k_` the
// (signed) index of the last character, `j_` the end of the stem after a
// suffix match.

class Stemmer {
 public:
  explicit Stemmer(std::string_view word)
      : b_(word), k_(static_cast<int>(word.size()) - 1) {}

  std::string Run() {
    if (k_ <= 1) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, static_cast<size_t>(k_) + 1);
  }

 private:
  bool IsConsonant(int i) const {
    switch (b_[static_cast<size_t>(i)]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the stem b[0..j]: the number of VC sequences.
  int Measure(int j) const {
    int n = 0;
    int i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool VowelInStem(int j) const {
    for (int i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(int i) const {
    if (i < 1) return false;
    if (b_[static_cast<size_t>(i)] != b_[static_cast<size_t>(i - 1)]) {
      return false;
    }
    return IsConsonant(i);
  }

  // cvc ending where the final c is not w, x or y (restores 'e' for words
  // like "hop(e)").
  bool CvcEnding(int i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) {
      return false;
    }
    char c = b_[static_cast<size_t>(i)];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(std::string_view suffix) {
    int len = static_cast<int>(suffix.size());
    if (len > k_ + 1) return false;
    if (b_.compare(static_cast<size_t>(k_ + 1 - len), suffix.size(),
                   suffix) != 0) {
      return false;
    }
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix matched by the last EndsWith with `s`.
  void SetTo(std::string_view s) {
    b_.replace(static_cast<size_t>(j_ + 1), static_cast<size_t>(k_ - j_), s);
    k_ = j_ + static_cast<int>(s.size());
  }

  void ReplaceIfM1(std::string_view s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  void Step1ab() {
    if (b_[static_cast<size_t>(k_)] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && b_[static_cast<size_t>(k_ - 1)] != 's') {
        --k_;
      }
    }
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && VowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char c = b_[static_cast<size_t>(k_)];
        if (c != 'l' && c != 's' && c != 'z') --k_;
      } else if (Measure(k_) == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && VowelInStem(j_)) b_[static_cast<size_t>(k_)] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        if (EndsWith("ational")) {
          ReplaceIfM1("ate");
        } else if (EndsWith("tional")) {
          ReplaceIfM1("tion");
        }
        break;
      case 'c':
        if (EndsWith("enci")) {
          ReplaceIfM1("ence");
        } else if (EndsWith("anci")) {
          ReplaceIfM1("ance");
        }
        break;
      case 'e':
        if (EndsWith("izer")) ReplaceIfM1("ize");
        break;
      case 'l':
        if (EndsWith("bli")) {
          ReplaceIfM1("ble");
        } else if (EndsWith("alli")) {
          ReplaceIfM1("al");
        } else if (EndsWith("entli")) {
          ReplaceIfM1("ent");
        } else if (EndsWith("eli")) {
          ReplaceIfM1("e");
        } else if (EndsWith("ousli")) {
          ReplaceIfM1("ous");
        }
        break;
      case 'o':
        if (EndsWith("ization")) {
          ReplaceIfM1("ize");
        } else if (EndsWith("ation")) {
          ReplaceIfM1("ate");
        } else if (EndsWith("ator")) {
          ReplaceIfM1("ate");
        }
        break;
      case 's':
        if (EndsWith("alism")) {
          ReplaceIfM1("al");
        } else if (EndsWith("iveness")) {
          ReplaceIfM1("ive");
        } else if (EndsWith("fulness")) {
          ReplaceIfM1("ful");
        } else if (EndsWith("ousness")) {
          ReplaceIfM1("ous");
        }
        break;
      case 't':
        if (EndsWith("aliti")) {
          ReplaceIfM1("al");
        } else if (EndsWith("iviti")) {
          ReplaceIfM1("ive");
        } else if (EndsWith("biliti")) {
          ReplaceIfM1("ble");
        }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[static_cast<size_t>(k_)]) {
      case 'e':
        if (EndsWith("icate")) {
          ReplaceIfM1("ic");
        } else if (EndsWith("ative")) {
          ReplaceIfM1("");
        } else if (EndsWith("alize")) {
          ReplaceIfM1("al");
        }
        break;
      case 'i':
        if (EndsWith("iciti")) ReplaceIfM1("ic");
        break;
      case 'l':
        if (EndsWith("ical")) {
          ReplaceIfM1("ic");
        } else if (EndsWith("ful")) {
          ReplaceIfM1("");
        }
        break;
      case 's':
        if (EndsWith("ness")) ReplaceIfM1("");
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    bool matched = false;
    switch (b_[static_cast<size_t>(k_ - 1)]) {
      case 'a':
        matched = EndsWith("al");
        break;
      case 'c':
        matched = EndsWith("ance") || EndsWith("ence");
        break;
      case 'e':
        matched = EndsWith("er");
        break;
      case 'i':
        matched = EndsWith("ic");
        break;
      case 'l':
        matched = EndsWith("able") || EndsWith("ible");
        break;
      case 'n':
        matched = EndsWith("ant") || EndsWith("ement") || EndsWith("ment") ||
                  EndsWith("ent");
        break;
      case 'o':
        if (EndsWith("ion") && j_ >= 0 &&
            (b_[static_cast<size_t>(j_)] == 's' ||
             b_[static_cast<size_t>(j_)] == 't')) {
          matched = true;
        } else {
          matched = EndsWith("ou");
        }
        break;
      case 's':
        matched = EndsWith("ism");
        break;
      case 't':
        matched = EndsWith("ate") || EndsWith("iti");
        break;
      case 'u':
        matched = EndsWith("ous");
        break;
      case 'v':
        matched = EndsWith("ive");
        break;
      case 'z':
        matched = EndsWith("ize");
        break;
      default:
        break;
    }
    if (matched && Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    // Step 5a.
    j_ = k_;
    if (b_[static_cast<size_t>(k_)] == 'e') {
      int m = Measure(k_ - 1);
      if (m > 1 || (m == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    // Step 5b.
    if (b_[static_cast<size_t>(k_)] == 'l' && DoubleConsonant(k_) &&
        Measure(k_) > 1) {
      --k_;
    }
  }

  std::string b_;
  int k_;
  int j_ = 0;
};

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  return Stemmer(word).Run();
}

}  // namespace mirror::ir
