#ifndef MIRROR_MM_FEATURES_H_
#define MIRROR_MM_FEATURES_H_

#include <memory>
#include <string>
#include <vector>

#include "mm/image.h"

namespace mirror::mm {

/// A feature-extraction algorithm: maps an image segment to a fixed-size
/// feature vector. Each implementation runs as an independent daemon in
/// the Figure-1 architecture (paper §5.1: "Several feature extraction
/// daemons independently create feature representations of the image
/// segments").
class FeatureExtractor {
 public:
  virtual ~FeatureExtractor() = default;

  /// Short lowercase name; cluster terms are spelled "<name>_<k>" (the
  /// paper's `gabor_21`).
  virtual std::string name() const = 0;

  /// Dimensionality of the produced vectors.
  virtual int dims() const = 0;

  /// Extracts the feature vector of `segment` within `image`.
  virtual std::vector<double> Extract(const Image& image,
                                      const Segment& segment) const = 0;
};

/// 4x4x4 RGB histogram (64 dims, L1-normalized). Color daemon #1.
class RgbHistogram : public FeatureExtractor {
 public:
  std::string name() const override { return "rgb"; }
  int dims() const override { return 64; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;
};

/// 8x3x3 HSV histogram (72 dims, L1-normalized). Color daemon #2.
class HsvHistogram : public FeatureExtractor {
 public:
  std::string name() const override { return "hsv"; }
  int dims() const override { return 72; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;
};

/// Gabor filter bank: 4 orientations x 3 scales, quadrature-pair
/// magnitude; mean and standard deviation per filter (24 dims). The first
/// of the four MeasTex-style texture algorithms.
class GaborBank : public FeatureExtractor {
 public:
  GaborBank();
  std::string name() const override { return "gabor"; }
  int dims() const override { return 24; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;

 private:
  struct Kernel {
    int radius;
    std::vector<double> real;  // (2r+1)^2
    std::vector<double> imag;
  };
  std::vector<Kernel> kernels_;
};

/// Gray-level co-occurrence matrix features (Haralick): contrast, energy,
/// entropy, homogeneity, correlation at 4 offsets (20 dims). Texture #2.
class Glcm : public FeatureExtractor {
 public:
  std::string name() const override { return "glcm"; }
  int dims() const override { return 20; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;
};

/// Laws texture energy: 9 masks from the L5/E5/S5 kernels, mean absolute
/// response per mask (9 dims). Texture #3.
class LawsEnergy : public FeatureExtractor {
 public:
  std::string name() const override { return "laws"; }
  int dims() const override { return 9; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;
};

/// Rotation-invariant uniform local binary patterns (LBP-8 riu2),
/// 10-bin histogram. Texture #4.
class Lbp : public FeatureExtractor {
 public:
  std::string name() const override { return "lbp"; }
  int dims() const override { return 10; }
  std::vector<double> Extract(const Image& image,
                              const Segment& segment) const override;
};

/// The standard daemon battery of the demo system: two color histogram
/// daemons plus the four texture reference implementations.
std::vector<std::unique_ptr<FeatureExtractor>> MakeStandardExtractors();

}  // namespace mirror::mm

#endif  // MIRROR_MM_FEATURES_H_
