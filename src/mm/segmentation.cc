#include "mm/segmentation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace mirror::mm {

namespace {

/// Union-find over grid blocks.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

struct BlockStat {
  double r = 0, g = 0, b = 0;
  int count = 0;
};

double ColorDistance(const BlockStat& a, const BlockStat& b) {
  double dr = a.r / a.count - b.r / b.count;
  double dg = a.g / a.count - b.g / b.count;
  double db = a.b / a.count - b.b / b.count;
  return std::sqrt(dr * dr + dg * dg + db * db);
}

}  // namespace

std::vector<Segment> Segmenter::Split(const Image& image) const {
  const int bs = options_.block_size;
  const int bw = (image.width() + bs - 1) / bs;
  const int bh = (image.height() + bs - 1) / bs;
  const int num_blocks = bw * bh;

  // Per-block mean colors.
  std::vector<BlockStat> stats(static_cast<size_t>(num_blocks));
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      BlockStat& s = stats[static_cast<size_t>((y / bs) * bw + (x / bs))];
      s.r += image.r(x, y);
      s.g += image.g(x, y);
      s.b += image.b(x, y);
      s.count += 1;
    }
  }

  // Greedy merge of 4-adjacent blocks under the color threshold.
  UnionFind uf(num_blocks);
  for (int by = 0; by < bh; ++by) {
    for (int bx = 0; bx < bw; ++bx) {
      int id = by * bw + bx;
      if (bx + 1 < bw) {
        int right = id + 1;
        if (ColorDistance(stats[static_cast<size_t>(id)],
                          stats[static_cast<size_t>(right)]) <=
            options_.merge_threshold) {
          uf.Union(id, right);
        }
      }
      if (by + 1 < bh) {
        int down = id + bw;
        if (ColorDistance(stats[static_cast<size_t>(id)],
                          stats[static_cast<size_t>(down)]) <=
            options_.merge_threshold) {
          uf.Union(id, down);
        }
      }
    }
  }

  // Collect segments; cap their number by merging smallest into root 0's
  // group if exceeded (keeps the daemon's output bounded).
  std::vector<int> root_of(static_cast<size_t>(num_blocks));
  std::vector<int> roots;
  for (int i = 0; i < num_blocks; ++i) {
    root_of[static_cast<size_t>(i)] = uf.Find(i);
  }
  for (int i = 0; i < num_blocks; ++i) {
    if (root_of[static_cast<size_t>(i)] == i) roots.push_back(i);
  }
  std::vector<int> segment_of_root(static_cast<size_t>(num_blocks), -1);
  int num_segments = 0;
  for (int root : roots) {
    segment_of_root[static_cast<size_t>(root)] =
        num_segments < options_.max_segments ? num_segments++
                                             : options_.max_segments - 1;
  }

  std::vector<Segment> segments(static_cast<size_t>(num_segments));
  for (auto& s : segments) {
    s.min_x = image.width();
    s.min_y = image.height();
    s.max_x = 0;
    s.max_y = 0;
  }
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      int block = (y / bs) * bw + (x / bs);
      int seg = segment_of_root[static_cast<size_t>(
          root_of[static_cast<size_t>(block)])];
      Segment& s = segments[static_cast<size_t>(seg)];
      s.pixel_indices.push_back(y * image.width() + x);
      s.min_x = std::min(s.min_x, x);
      s.min_y = std::min(s.min_y, y);
      s.max_x = std::max(s.max_x, x);
      s.max_y = std::max(s.max_y, y);
    }
  }
  return segments;
}

}  // namespace mirror::mm
