#ifndef MIRROR_MM_IMAGE_H_
#define MIRROR_MM_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.h"

namespace mirror::mm {

/// An owned 8-bit RGB raster. The Mirror DBMS stores only metadata; rasters
/// live in the media server and flow through the daemons of Figure 1.
class Image {
 public:
  Image() = default;

  /// Creates a black image of the given size.
  Image(int width, int height)
      : width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * static_cast<size_t>(height) * 3,
                0) {
    MIRROR_CHECK_GT(width, 0);
    MIRROR_CHECK_GT(height, 0);
  }

  int width() const { return width_; }
  int height() const { return height_; }

  /// Raw interleaved RGB bytes (row-major, 3 bytes per pixel).
  const std::vector<uint8_t>& pixels() const { return pixels_; }

  uint8_t r(int x, int y) const { return pixels_[Index(x, y)]; }
  uint8_t g(int x, int y) const { return pixels_[Index(x, y) + 1]; }
  uint8_t b(int x, int y) const { return pixels_[Index(x, y) + 2]; }

  void SetPixel(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
    size_t i = Index(x, y);
    pixels_[i] = r;
    pixels_[i + 1] = g;
    pixels_[i + 2] = b;
  }

  /// Luma in [0,255] as a double (Rec. 601 weights).
  double Gray(int x, int y) const {
    size_t i = Index(x, y);
    return 0.299 * pixels_[i] + 0.587 * pixels_[i + 1] +
           0.114 * pixels_[i + 2];
  }

  /// Serializes to a compact byte blob (for the media server).
  std::vector<uint8_t> Serialize() const;

  /// Parses a blob produced by Serialize().
  static Image Deserialize(const std::vector<uint8_t>& blob);

 private:
  size_t Index(int x, int y) const {
    MIRROR_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return (static_cast<size_t>(y) * static_cast<size_t>(width_) +
            static_cast<size_t>(x)) *
           3;
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<uint8_t> pixels_;
};

/// A segment: a set of pixels of one image, stored as row-major pixel
/// indices plus a bounding box. Produced by the segmentation daemon.
struct Segment {
  std::vector<int> pixel_indices;  // y * width + x
  int min_x = 0, min_y = 0, max_x = 0, max_y = 0;

  size_t size() const { return pixel_indices.size(); }
};

}  // namespace mirror::mm

#endif  // MIRROR_MM_IMAGE_H_
