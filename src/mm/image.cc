#include "mm/image.h"

#include <cstring>

namespace mirror::mm {

std::vector<uint8_t> Image::Serialize() const {
  std::vector<uint8_t> blob(8 + pixels_.size());
  uint32_t w = static_cast<uint32_t>(width_);
  uint32_t h = static_cast<uint32_t>(height_);
  std::memcpy(blob.data(), &w, 4);
  std::memcpy(blob.data() + 4, &h, 4);
  std::memcpy(blob.data() + 8, pixels_.data(), pixels_.size());
  return blob;
}

Image Image::Deserialize(const std::vector<uint8_t>& blob) {
  MIRROR_CHECK_GE(blob.size(), 8u);
  uint32_t w = 0;
  uint32_t h = 0;
  std::memcpy(&w, blob.data(), 4);
  std::memcpy(&h, blob.data() + 4, 4);
  Image img(static_cast<int>(w), static_cast<int>(h));
  MIRROR_CHECK_EQ(blob.size(), 8 + img.pixels_.size());
  std::memcpy(img.pixels_.data(), blob.data() + 8, img.pixels_.size());
  return img;
}

}  // namespace mirror::mm
