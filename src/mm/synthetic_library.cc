#include "mm/synthetic_library.h"

#include <algorithm>
#include <cmath>

#include "base/str_util.h"

namespace mirror::mm {

namespace {

// Distinct per-class vocabulary pools (class index mod table size) and a
// shared noise pool that appears in all annotations.
constexpr int kPoolWords = 4;
const char* const kClassPools[][kPoolWords] = {
    {"sunset", "dusk", "orange", "glow"},
    {"ocean", "wave", "water", "blue"},
    {"forest", "tree", "leaf", "green"},
    {"brick", "wall", "pattern", "red"},
    {"sand", "dune", "desert", "yellow"},
    {"storm", "cloud", "gray", "rain"},
    {"meadow", "flower", "field", "bloom"},
    {"night", "star", "dark", "sky"},
};
constexpr int kNumPools = std::size(kClassPools);

const char* const kNoiseWords[] = {"photo", "picture", "view",  "scene",
                                   "shot",  "frame",   "light", "color"};

struct ClassStyle {
  uint8_t base_r, base_g, base_b;
  int texture;       // 0 grating, 1 checker, 2 blobs, 3 stripes
  double angle;      // texture orientation
  double frequency;  // cycles across the image
};

ClassStyle StyleFor(int cls) {
  ClassStyle s;
  // Distinct hues around the wheel.
  double hue = (cls * 67) % 360 / 360.0 * 2 * M_PI;
  s.base_r = static_cast<uint8_t>(128 + 100 * std::cos(hue));
  s.base_g = static_cast<uint8_t>(128 + 100 * std::cos(hue + 2.1));
  s.base_b = static_cast<uint8_t>(128 + 100 * std::cos(hue + 4.2));
  s.texture = cls % 4;
  s.angle = (cls * 37 % 180) * M_PI / 180.0;
  s.frequency = 3.0 + (cls % 5) * 2.0;
  return s;
}

}  // namespace

SyntheticLibrary::SyntheticLibrary(LibraryOptions options)
    : options_(options) {
  MIRROR_CHECK_LE(options_.num_classes, kNumPools)
      << "at most " << kNumPools << " planted classes supported";
}

std::vector<std::string> SyntheticLibrary::ClassWords(int cls) const {
  std::vector<std::string> words;
  for (int w = 0; w < kPoolWords; ++w) {
    words.emplace_back(kClassPools[cls % kNumPools][w]);
  }
  return words;
}

Image SyntheticLibrary::MakeImage(int cls, base::Rng* rng) const {
  ClassStyle style = StyleFor(cls);
  int n = options_.image_size;
  Image img(n, n);
  double phase = rng->UniformDouble() * 2 * M_PI;
  double ca = std::cos(style.angle);
  double sa = std::sin(style.angle);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      double u = (ca * x + sa * y) / n;
      double v = (-sa * x + ca * y) / n;
      double t = 0;  // texture modulation in [-1, 1]
      switch (style.texture) {
        case 0:  // sinusoidal grating
          t = std::sin(2 * M_PI * style.frequency * u + phase);
          break;
        case 1: {  // checkerboard
          int cu = static_cast<int>(std::floor(u * style.frequency * 2));
          int cv = static_cast<int>(std::floor(v * style.frequency * 2));
          t = ((cu + cv) % 2 == 0) ? 1.0 : -1.0;
          break;
        }
        case 2: {  // soft blobs
          double bx = std::sin(2 * M_PI * style.frequency * u + phase);
          double by = std::sin(2 * M_PI * style.frequency * v + phase * 0.7);
          t = bx * by;
          break;
        }
        default:  // hard stripes
          t = std::sin(2 * M_PI * style.frequency * u + phase) > 0 ? 1.0
                                                                   : -1.0;
          break;
      }
      double noise = rng->UniformDouble(-12.0, 12.0);
      auto channel = [&](uint8_t base) {
        double val = base + 55.0 * t + noise;
        return static_cast<uint8_t>(std::clamp(val, 0.0, 255.0));
      };
      img.SetPixel(x, y, channel(style.base_r), channel(style.base_g),
                   channel(style.base_b));
    }
  }
  return img;
}

std::string SyntheticLibrary::MakeAnnotation(int cls, base::Rng* rng) const {
  std::vector<std::string> words;
  for (int w = 0; w < options_.words_per_annotation; ++w) {
    if (rng->UniformDouble() < 0.7) {
      words.emplace_back(
          kClassPools[cls % kNumPools][rng->Uniform(kPoolWords)]);
    } else {
      words.emplace_back(kNoiseWords[rng->Uniform(std::size(kNoiseWords))]);
    }
  }
  return base::Join(words, " ");
}

std::vector<LibraryImage> SyntheticLibrary::Generate() const {
  base::Rng rng(options_.seed);
  std::vector<LibraryImage> library;
  library.reserve(static_cast<size_t>(options_.num_images));
  for (int i = 0; i < options_.num_images; ++i) {
    LibraryImage entry;
    entry.true_class = i % options_.num_classes;
    entry.url = base::StrFormat("http://library/img_%04d.png", i);
    entry.image = MakeImage(entry.true_class, &rng);
    if (rng.UniformDouble() < options_.annotated_fraction) {
      entry.annotation = MakeAnnotation(entry.true_class, &rng);
    }
    library.push_back(std::move(entry));
  }
  return library;
}

}  // namespace mirror::mm
