#ifndef MIRROR_MM_CLUSTERING_H_
#define MIRROR_MM_CLUSTERING_H_

#include <vector>

#include "base/rng.h"

namespace mirror::mm {

/// Outcome of a clustering run.
struct ClusteringResult {
  int k = 0;
  std::vector<int> assignment;                 // per data point
  std::vector<std::vector<double>> means;      // k x d
  std::vector<std::vector<double>> variances;  // k x d (diagonal; EM only)
  std::vector<double> weights;                 // k (mixture weights; EM only)
  double log_likelihood = 0.0;                 // EM only
  double bic = 0.0;                            // EM only
  double inertia = 0.0;                        // k-means only
};

/// Lloyd's k-means with k-means++ seeding. Deterministic given the seed.
/// Baseline for experiment E6.
class KMeans {
 public:
  struct Options {
    int max_iters = 50;
    uint64_t seed = 1;
  };

  KMeans() : KMeans(Options{}) {}
  explicit KMeans(Options options) : options_(options) {}

  /// Clusters `data` (n x d) into `k` groups. Requires n >= k >= 1.
  ClusteringResult Run(const std::vector<std::vector<double>>& data,
                       int k) const;

 private:
  Options options_;
};

/// The AutoClass substitute (paper §5.1; [CS95]): Bayesian unsupervised
/// classification realized as expectation-maximization over a
/// diagonal-covariance Gaussian mixture, with the number of classes
/// selected by the Bayesian information criterion over a configurable
/// range. Deterministic given the seed.
class AutoClass {
 public:
  struct Options {
    int min_k = 2;
    int max_k = 12;
    int max_iters = 60;
    double tolerance = 1e-5;   // relative log-likelihood change to stop
    double min_variance = 1e-6;
    uint64_t seed = 1;
  };

  AutoClass() : AutoClass(Options{}) {}
  explicit AutoClass(Options options) : options_(options) {}

  /// Runs EM for each k in [min_k, max_k] and returns the model with the
  /// lowest BIC. `per_k_bic` (optional) receives the BIC curve.
  ClusteringResult Run(const std::vector<std::vector<double>>& data,
                       std::vector<double>* per_k_bic = nullptr) const;

  /// Runs EM at a fixed k; exposed for tests (log-likelihood monotone).
  /// `ll_trace` (optional) receives the log-likelihood after every
  /// iteration.
  ClusteringResult RunFixedK(const std::vector<std::vector<double>>& data,
                             int k,
                             std::vector<double>* ll_trace = nullptr) const;

 private:
  Options options_;
};

/// Cluster-quality helper for experiments: the fraction of point pairs on
/// whose co-membership the two assignments agree (Rand index).
double RandIndex(const std::vector<int>& a, const std::vector<int>& b);

}  // namespace mirror::mm

#endif  // MIRROR_MM_CLUSTERING_H_
