#include "mm/features.h"

#include <algorithm>
#include <cmath>

namespace mirror::mm {

namespace {

void L1Normalize(std::vector<double>* v) {
  double sum = 0;
  for (double x : *v) sum += x;
  if (sum > 0) {
    for (double& x : *v) x /= sum;
  }
}

/// Converts RGB bytes to HSV with h in [0,360), s,v in [0,1].
void RgbToHsv(uint8_t r8, uint8_t g8, uint8_t b8, double* h, double* s,
              double* v) {
  double r = r8 / 255.0;
  double g = g8 / 255.0;
  double b = b8 / 255.0;
  double mx = std::max({r, g, b});
  double mn = std::min({r, g, b});
  double d = mx - mn;
  *v = mx;
  *s = mx == 0 ? 0 : d / mx;
  if (d == 0) {
    *h = 0;
  } else if (mx == r) {
    *h = 60.0 * std::fmod((g - b) / d, 6.0);
  } else if (mx == g) {
    *h = 60.0 * ((b - r) / d + 2.0);
  } else {
    *h = 60.0 * ((r - g) / d + 4.0);
  }
  if (*h < 0) *h += 360.0;
}

/// Clamped grayscale lookup around a segment (texture windows may poke
/// past the image border).
double GrayClamped(const Image& img, int x, int y) {
  x = std::clamp(x, 0, img.width() - 1);
  y = std::clamp(y, 0, img.height() - 1);
  return img.Gray(x, y);
}

}  // namespace

// ---------------------------------------------------------------------------
// Color histograms.

std::vector<double> RgbHistogram::Extract(const Image& image,
                                          const Segment& segment) const {
  std::vector<double> hist(64, 0.0);
  for (int idx : segment.pixel_indices) {
    int x = idx % image.width();
    int y = idx / image.width();
    int rb = image.r(x, y) / 64;
    int gb = image.g(x, y) / 64;
    int bb = image.b(x, y) / 64;
    hist[static_cast<size_t>(rb * 16 + gb * 4 + bb)] += 1.0;
  }
  L1Normalize(&hist);
  return hist;
}

std::vector<double> HsvHistogram::Extract(const Image& image,
                                          const Segment& segment) const {
  std::vector<double> hist(72, 0.0);
  for (int idx : segment.pixel_indices) {
    int x = idx % image.width();
    int y = idx / image.width();
    double h, s, v;
    RgbToHsv(image.r(x, y), image.g(x, y), image.b(x, y), &h, &s, &v);
    int hb = std::min(static_cast<int>(h / 45.0), 7);
    int sb = std::min(static_cast<int>(s * 3.0), 2);
    int vb = std::min(static_cast<int>(v * 3.0), 2);
    hist[static_cast<size_t>(hb * 9 + sb * 3 + vb)] += 1.0;
  }
  L1Normalize(&hist);
  return hist;
}

// ---------------------------------------------------------------------------
// Gabor bank.

GaborBank::GaborBank() {
  // 3 scales (wavelengths) x 4 orientations; sigma tied to wavelength.
  const double wavelengths[] = {4.0, 8.0, 16.0};
  const double orientations[] = {0.0, M_PI / 4, M_PI / 2, 3 * M_PI / 4};
  const double gamma = 0.5;  // spatial aspect ratio
  for (double lambda : wavelengths) {
    double sigma = 0.56 * lambda;
    int radius = static_cast<int>(std::ceil(2.0 * sigma));
    for (double theta : orientations) {
      Kernel k;
      k.radius = radius;
      int side = 2 * radius + 1;
      k.real.resize(static_cast<size_t>(side * side));
      k.imag.resize(static_cast<size_t>(side * side));
      double sum_real = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          double xr = dx * std::cos(theta) + dy * std::sin(theta);
          double yr = -dx * std::sin(theta) + dy * std::cos(theta);
          double envelope = std::exp(
              -(xr * xr + gamma * gamma * yr * yr) / (2 * sigma * sigma));
          double phase = 2 * M_PI * xr / lambda;
          size_t i = static_cast<size_t>((dy + radius) * side + (dx + radius));
          k.real[i] = envelope * std::cos(phase);
          k.imag[i] = envelope * std::sin(phase);
          sum_real += k.real[i];
        }
      }
      // Zero-mean the real part so flat regions respond with 0.
      double mean = sum_real / static_cast<double>(side * side);
      for (double& v : k.real) v -= mean;
      kernels_.push_back(std::move(k));
    }
  }
}

std::vector<double> GaborBank::Extract(const Image& image,
                                       const Segment& segment) const {
  std::vector<double> features;
  features.reserve(kernels_.size() * 2);
  // Subsample segment pixels for tractability on large segments.
  const size_t stride = std::max<size_t>(1, segment.size() / 256);
  for (const Kernel& k : kernels_) {
    double sum = 0;
    double sum_sq = 0;
    size_t count = 0;
    int side = 2 * k.radius + 1;
    for (size_t pi = 0; pi < segment.pixel_indices.size(); pi += stride) {
      int idx = segment.pixel_indices[pi];
      int x = idx % image.width();
      int y = idx / image.width();
      double re = 0;
      double im = 0;
      for (int dy = -k.radius; dy <= k.radius; ++dy) {
        for (int dx = -k.radius; dx <= k.radius; ++dx) {
          double g = GrayClamped(image, x + dx, y + dy) / 255.0;
          size_t ki =
              static_cast<size_t>((dy + k.radius) * side + (dx + k.radius));
          re += g * k.real[ki];
          im += g * k.imag[ki];
        }
      }
      double mag = std::sqrt(re * re + im * im);
      sum += mag;
      sum_sq += mag * mag;
      ++count;
    }
    double mean = count > 0 ? sum / static_cast<double>(count) : 0;
    double var =
        count > 0 ? std::max(0.0, sum_sq / static_cast<double>(count) -
                                      mean * mean)
                  : 0;
    features.push_back(mean);
    features.push_back(std::sqrt(var));
  }
  return features;
}

// ---------------------------------------------------------------------------
// GLCM (Haralick features).

std::vector<double> Glcm::Extract(const Image& image,
                                  const Segment& segment) const {
  constexpr int kLevels = 16;
  const int offsets[4][2] = {{1, 0}, {0, 1}, {1, 1}, {1, -1}};
  std::vector<double> features;
  features.reserve(20);
  // Membership mask for co-occurrence within the segment.
  std::vector<bool> in_segment(
      static_cast<size_t>(image.width() * image.height()), false);
  for (int idx : segment.pixel_indices) {
    in_segment[static_cast<size_t>(idx)] = true;
  }
  for (const auto& off : offsets) {
    double glcm[kLevels][kLevels] = {};
    double total = 0;
    for (int idx : segment.pixel_indices) {
      int x = idx % image.width();
      int y = idx / image.width();
      int nx = x + off[0];
      int ny = y + off[1];
      if (nx < 0 || nx >= image.width() || ny < 0 || ny >= image.height()) {
        continue;
      }
      if (!in_segment[static_cast<size_t>(ny * image.width() + nx)]) continue;
      int a = static_cast<int>(image.Gray(x, y)) * kLevels / 256;
      int b = static_cast<int>(image.Gray(nx, ny)) * kLevels / 256;
      glcm[a][b] += 1;
      glcm[b][a] += 1;  // symmetric
      total += 2;
    }
    double contrast = 0, energy = 0, entropy = 0, homogeneity = 0;
    double mean_i = 0, var_i = 0, correlation = 0;
    if (total > 0) {
      for (int i = 0; i < kLevels; ++i) {
        for (int j = 0; j < kLevels; ++j) {
          double p = glcm[i][j] / total;
          if (p <= 0) continue;
          contrast += (i - j) * (i - j) * p;
          energy += p * p;
          entropy -= p * std::log2(p);
          homogeneity += p / (1.0 + std::abs(i - j));
          mean_i += i * p;
        }
      }
      for (int i = 0; i < kLevels; ++i) {
        for (int j = 0; j < kLevels; ++j) {
          double p = glcm[i][j] / total;
          var_i += (i - mean_i) * (i - mean_i) * p;
        }
      }
      if (var_i > 1e-12) {
        for (int i = 0; i < kLevels; ++i) {
          for (int j = 0; j < kLevels; ++j) {
            double p = glcm[i][j] / total;
            correlation += (i - mean_i) * (j - mean_i) * p / var_i;
          }
        }
      }
    }
    features.push_back(contrast);
    features.push_back(energy);
    features.push_back(entropy);
    features.push_back(homogeneity);
    features.push_back(correlation);
  }
  return features;
}

// ---------------------------------------------------------------------------
// Laws energy.

std::vector<double> LawsEnergy::Extract(const Image& image,
                                        const Segment& segment) const {
  // 1-D Laws kernels: Level, Edge, Spot.
  const double kL5[5] = {1, 4, 6, 4, 1};
  const double kE5[5] = {-1, -2, 0, 2, 1};
  const double kS5[5] = {-1, 0, 2, 0, -1};
  const double* kernels[3] = {kL5, kE5, kS5};
  const size_t stride = std::max<size_t>(1, segment.size() / 512);

  std::vector<double> features(9, 0.0);
  size_t count = 0;
  for (size_t pi = 0; pi < segment.pixel_indices.size(); pi += stride) {
    int idx = segment.pixel_indices[pi];
    int x = idx % image.width();
    int y = idx / image.width();
    int f = 0;
    for (int kv = 0; kv < 3; ++kv) {
      for (int kh = 0; kh < 3; ++kh, ++f) {
        // Skip L5L5 (pure smoothing carries no texture energy) — keep it
        // anyway as feature 0; it acts as a local brightness channel.
        double acc = 0;
        for (int dy = -2; dy <= 2; ++dy) {
          for (int dx = -2; dx <= 2; ++dx) {
            double g = GrayClamped(image, x + dx, y + dy) / 255.0;
            acc += g * kernels[kv][dy + 2] * kernels[kh][dx + 2];
          }
        }
        features[static_cast<size_t>(f)] += std::abs(acc);
      }
    }
    ++count;
  }
  if (count > 0) {
    for (double& v : features) v /= static_cast<double>(count);
  }
  return features;
}

// ---------------------------------------------------------------------------
// LBP riu2.

std::vector<double> Lbp::Extract(const Image& image,
                                 const Segment& segment) const {
  // 8-neighbor LBP; rotation-invariant uniform mapping: uniform patterns
  // map to their popcount (0..8), non-uniform to bin 9.
  static const int dx[8] = {-1, 0, 1, 1, 1, 0, -1, -1};
  static const int dy[8] = {-1, -1, -1, 0, 1, 1, 1, 0};
  std::vector<double> hist(10, 0.0);
  for (int idx : segment.pixel_indices) {
    int x = idx % image.width();
    int y = idx / image.width();
    double center = GrayClamped(image, x, y);
    int pattern = 0;
    for (int k = 0; k < 8; ++k) {
      if (GrayClamped(image, x + dx[k], y + dy[k]) >= center) {
        pattern |= 1 << k;
      }
    }
    // Count 0-1 transitions in the circular pattern.
    int transitions = 0;
    for (int k = 0; k < 8; ++k) {
      int a = (pattern >> k) & 1;
      int b = (pattern >> ((k + 1) % 8)) & 1;
      if (a != b) ++transitions;
    }
    int bin;
    if (transitions <= 2) {
      bin = __builtin_popcount(static_cast<unsigned>(pattern));
    } else {
      bin = 9;
    }
    hist[static_cast<size_t>(bin)] += 1.0;
  }
  L1Normalize(&hist);
  return hist;
}

std::vector<std::unique_ptr<FeatureExtractor>> MakeStandardExtractors() {
  std::vector<std::unique_ptr<FeatureExtractor>> out;
  out.push_back(std::make_unique<RgbHistogram>());
  out.push_back(std::make_unique<HsvHistogram>());
  out.push_back(std::make_unique<GaborBank>());
  out.push_back(std::make_unique<Glcm>());
  out.push_back(std::make_unique<LawsEnergy>());
  out.push_back(std::make_unique<Lbp>());
  return out;
}

}  // namespace mirror::mm
