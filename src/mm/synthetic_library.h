#ifndef MIRROR_MM_SYNTHETIC_LIBRARY_H_
#define MIRROR_MM_SYNTHETIC_LIBRARY_H_

#include <string>
#include <vector>

#include "base/rng.h"
#include "mm/image.h"

namespace mirror::mm {

/// One generated library entry. The paper's demo collected images with a
/// web robot; this generator substitutes a parametric collection with
/// planted visual classes and class-correlated annotations, so retrieval
/// experiments have ground truth (the real crawl had none).
struct LibraryImage {
  std::string url;
  Image image;
  std::string annotation;  // empty string = unannotated (paper: "some of
                           // the images ... are annotated")
  int true_class = -1;
};

/// Generator options.
struct LibraryOptions {
  int num_images = 120;
  int image_size = 48;
  int num_classes = 5;
  /// Fraction of images carrying a textual annotation.
  double annotated_fraction = 0.6;
  int words_per_annotation = 6;
  uint64_t seed = 42;
};

/// Deterministic synthetic image library. Each class has a distinctive
/// base hue and procedural texture (gratings at class-specific
/// orientation/frequency, checkerboards, blobs, stripes) plus a pool of
/// annotation words; annotations mix class words with shared noise words.
class SyntheticLibrary {
 public:
  explicit SyntheticLibrary(LibraryOptions options = LibraryOptions{});

  /// Generates the whole library.
  std::vector<LibraryImage> Generate() const;

  /// The characteristic annotation words of a class (useful as queries
  /// with known relevant sets).
  std::vector<std::string> ClassWords(int cls) const;

  int num_classes() const { return options_.num_classes; }

 private:
  Image MakeImage(int cls, base::Rng* rng) const;
  std::string MakeAnnotation(int cls, base::Rng* rng) const;

  LibraryOptions options_;
};

}  // namespace mirror::mm

#endif  // MIRROR_MM_SYNTHETIC_LIBRARY_H_
