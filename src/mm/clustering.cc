#include "mm/clustering.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/logging.h"

namespace mirror::mm {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

/// k-means++ seeding: spread initial centers proportionally to squared
/// distance from the chosen set.
std::vector<std::vector<double>> SeedPlusPlus(
    const std::vector<std::vector<double>>& data, int k, base::Rng* rng) {
  std::vector<std::vector<double>> centers;
  centers.reserve(static_cast<size_t>(k));
  centers.push_back(data[rng->Uniform(data.size())]);
  std::vector<double> d2(data.size(), 0.0);
  while (static_cast<int>(centers.size()) < k) {
    double total = 0;
    for (size_t i = 0; i < data.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      for (const auto& c : centers) {
        best = std::min(best, SquaredDistance(data[i], c));
      }
      d2[i] = best;
      total += best;
    }
    if (total <= 0) {
      centers.push_back(data[rng->Uniform(data.size())]);
      continue;
    }
    double target = rng->UniformDouble() * total;
    double acc = 0;
    size_t chosen = data.size() - 1;
    for (size_t i = 0; i < data.size(); ++i) {
      acc += d2[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    centers.push_back(data[chosen]);
  }
  return centers;
}

}  // namespace

ClusteringResult KMeans::Run(const std::vector<std::vector<double>>& data,
                             int k) const {
  MIRROR_CHECK_GE(k, 1);
  MIRROR_CHECK_GE(data.size(), static_cast<size_t>(k));
  const size_t n = data.size();
  const size_t d = data[0].size();
  base::Rng rng(options_.seed);

  ClusteringResult result;
  result.k = k;
  result.means = SeedPlusPlus(data, k, &rng);
  result.assignment.assign(n, 0);

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    bool changed = false;
    // Assignment step.
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        double dist =
            SquaredDistance(data[i], result.means[static_cast<size_t>(c)]);
        if (dist < best_d) {
          best_d = dist;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update step.
    std::vector<std::vector<double>> sums(
        static_cast<size_t>(k), std::vector<double>(d, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      auto c = static_cast<size_t>(result.assignment[i]);
      counts[c] += 1;
      for (size_t j = 0; j < d; ++j) sums[c][j] += data[i][j];
    }
    for (int c = 0; c < k; ++c) {
      auto cs = static_cast<size_t>(c);
      if (counts[cs] == 0) {
        // Re-seed an empty cluster at a random point.
        result.means[cs] = data[rng.Uniform(n)];
        continue;
      }
      for (size_t j = 0; j < d; ++j) {
        result.means[cs][j] = sums[cs][j] / counts[cs];
      }
    }
    if (!changed && iter > 0) break;
  }
  result.inertia = 0;
  for (size_t i = 0; i < n; ++i) {
    result.inertia += SquaredDistance(
        data[i], result.means[static_cast<size_t>(result.assignment[i])]);
  }
  return result;
}

ClusteringResult AutoClass::RunFixedK(
    const std::vector<std::vector<double>>& data, int k,
    std::vector<double>* ll_trace) const {
  MIRROR_CHECK_GE(k, 1);
  MIRROR_CHECK_GE(data.size(), static_cast<size_t>(k));
  const size_t n = data.size();
  const size_t d = data[0].size();

  // Initialize from k-means (means) with pooled variances.
  KMeans::Options km_options;
  km_options.seed = options_.seed;
  km_options.max_iters = 10;
  ClusteringResult init = KMeans(km_options).Run(data, k);

  std::vector<std::vector<double>> means = init.means;
  std::vector<std::vector<double>> vars(
      static_cast<size_t>(k), std::vector<double>(d, 0.0));
  std::vector<double> weights(static_cast<size_t>(k),
                              1.0 / static_cast<double>(k));
  // Pooled variance init.
  std::vector<double> pooled(d, 0.0);
  std::vector<double> mean_all(d, 0.0);
  for (const auto& x : data) {
    for (size_t j = 0; j < d; ++j) mean_all[j] += x[j];
  }
  for (size_t j = 0; j < d; ++j) mean_all[j] /= static_cast<double>(n);
  for (const auto& x : data) {
    for (size_t j = 0; j < d; ++j) {
      double dx = x[j] - mean_all[j];
      pooled[j] += dx * dx;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    pooled[j] = std::max(pooled[j] / static_cast<double>(n),
                         options_.min_variance);
  }
  for (int c = 0; c < k; ++c) vars[static_cast<size_t>(c)] = pooled;

  std::vector<std::vector<double>> resp(n,
                                        std::vector<double>(
                                            static_cast<size_t>(k), 0.0));
  double prev_ll = -std::numeric_limits<double>::max();
  double ll = prev_ll;

  for (int iter = 0; iter < options_.max_iters; ++iter) {
    // E step: responsibilities via log-sum-exp.
    ll = 0;
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> logp(static_cast<size_t>(k));
      double mx = -std::numeric_limits<double>::max();
      for (int c = 0; c < k; ++c) {
        auto cs = static_cast<size_t>(c);
        double lp = std::log(std::max(weights[cs], 1e-300));
        for (size_t j = 0; j < d; ++j) {
          double v = vars[cs][j];
          double dx = data[i][j] - means[cs][j];
          lp += -0.5 * (std::log(2 * M_PI * v) + dx * dx / v);
        }
        logp[cs] = lp;
        mx = std::max(mx, lp);
      }
      double sum = 0;
      for (int c = 0; c < k; ++c) {
        sum += std::exp(logp[static_cast<size_t>(c)] - mx);
      }
      double log_norm = mx + std::log(sum);
      ll += log_norm;
      for (int c = 0; c < k; ++c) {
        resp[i][static_cast<size_t>(c)] =
            std::exp(logp[static_cast<size_t>(c)] - log_norm);
      }
    }
    if (ll_trace != nullptr) ll_trace->push_back(ll);
    if (iter > 0 && std::abs(ll - prev_ll) <
                        options_.tolerance * (std::abs(prev_ll) + 1.0)) {
      break;
    }
    prev_ll = ll;

    // M step.
    for (int c = 0; c < k; ++c) {
      auto cs = static_cast<size_t>(c);
      double nc = 0;
      for (size_t i = 0; i < n; ++i) nc += resp[i][cs];
      nc = std::max(nc, 1e-10);
      weights[cs] = nc / static_cast<double>(n);
      for (size_t j = 0; j < d; ++j) {
        double m = 0;
        for (size_t i = 0; i < n; ++i) m += resp[i][cs] * data[i][j];
        means[cs][j] = m / nc;
      }
      for (size_t j = 0; j < d; ++j) {
        double v = 0;
        for (size_t i = 0; i < n; ++i) {
          double dx = data[i][j] - means[cs][j];
          v += resp[i][cs] * dx * dx;
        }
        vars[cs][j] = std::max(v / nc, options_.min_variance);
      }
    }
  }

  ClusteringResult result;
  result.k = k;
  result.means = std::move(means);
  result.variances = std::move(vars);
  result.weights = std::move(weights);
  result.log_likelihood = ll;
  // Parameters: k-1 mixture weights + k*d means + k*d variances.
  double params = static_cast<double>(k - 1) +
                  2.0 * static_cast<double>(k) * static_cast<double>(d);
  result.bic = -2.0 * ll + params * std::log(static_cast<double>(n));
  result.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int best = 0;
    double best_r = -1;
    for (int c = 0; c < k; ++c) {
      if (resp[i][static_cast<size_t>(c)] > best_r) {
        best_r = resp[i][static_cast<size_t>(c)];
        best = c;
      }
    }
    result.assignment[i] = best;
  }
  return result;
}

ClusteringResult AutoClass::Run(const std::vector<std::vector<double>>& data,
                                std::vector<double>* per_k_bic) const {
  ClusteringResult best;
  bool have_best = false;
  int max_k = std::min<int>(options_.max_k,
                            static_cast<int>(data.size()));
  for (int k = options_.min_k; k <= max_k; ++k) {
    ClusteringResult r = RunFixedK(data, k);
    if (per_k_bic != nullptr) per_k_bic->push_back(r.bic);
    if (!have_best || r.bic < best.bic) {
      best = std::move(r);
      have_best = true;
    }
  }
  MIRROR_CHECK(have_best) << "AutoClass: empty k range";
  return best;
}

double RandIndex(const std::vector<int>& a, const std::vector<int>& b) {
  MIRROR_CHECK_EQ(a.size(), b.size());
  size_t n = a.size();
  if (n < 2) return 1.0;
  uint64_t agree = 0;
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      bool same_a = a[i] == a[j];
      bool same_b = b[i] == b[j];
      if (same_a == same_b) ++agree;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

}  // namespace mirror::mm
