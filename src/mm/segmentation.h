#ifndef MIRROR_MM_SEGMENTATION_H_
#define MIRROR_MM_SEGMENTATION_H_

#include <vector>

#include "mm/image.h"

namespace mirror::mm {

/// Options for the block-merge segmenter.
struct SegmenterOptions {
  int block_size = 16;          // initial grid granularity (pixels)
  double merge_threshold = 28;  // max mean-RGB distance to merge blocks
  int max_segments = 16;        // safety cap
};

/// The segmentation daemon's algorithm (paper §5.1: "One of the daemons
/// segments the images"): the image is tiled into blocks, and adjacent
/// blocks whose mean colors are close are merged greedily (union-find)
/// into segments.
class Segmenter {
 public:
  explicit Segmenter(SegmenterOptions options = SegmenterOptions())
      : options_(options) {}

  /// Splits `image` into 1..max_segments segments covering all pixels.
  std::vector<Segment> Split(const Image& image) const;

 private:
  SegmenterOptions options_;
};

}  // namespace mirror::mm

#endif  // MIRROR_MM_SEGMENTATION_H_
