// Database persistence: schemas + BAT catalog on disk, with full
// reconstruction of content indexes and materialized objects from the
// vertically fragmented layout (the BATs are the single source of truth,
// as in the original system).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "base/str_util.h"
#include "moa/database.h"

namespace mirror::moa {

using monet::Bat;
using monet::BatPtr;
using monet::Oid;

base::Status Database::SaveTo(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return base::Status::IoError("cannot create dir: " + dir);
  MIRROR_RETURN_IF_ERROR(catalog_.SaveTo(dir));
  // Same atomic publish protocol as the catalog manifest: write to a
  // temp file, then rename over the old copy, so a crash mid-save never
  // leaves a torn schemas.txt next to a valid manifest.
  const std::string final_path = dir + "/schemas.txt";
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream schemas(tmp_path, std::ios::trunc);
    if (!schemas) return base::Status::IoError("cannot write schemas.txt");
    for (const auto& [name, set] : sets_) {
      schemas << name << '\t' << set.cardinality << '\t'
              << set.type->ToString() << '\n';
    }
    schemas.flush();
    if (!schemas.good()) return base::Status::IoError("schema write failed");
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return base::Status::IoError("cannot publish schemas.txt");
  }
  return base::Status::Ok();
}

namespace {

/// Parses `dir`/schemas.txt into name -> (cardinality, type) skeletons.
base::Result<std::map<std::string, FlatSet>> ParseSchemas(
    const std::string& dir) {
  std::ifstream schemas(dir + "/schemas.txt");
  if (!schemas) return base::Status::IoError("cannot read schemas.txt");
  std::map<std::string, FlatSet> sets;
  std::string line;
  while (std::getline(schemas, line)) {
    if (line.empty()) continue;
    std::vector<std::string> parts = base::Split(line, '\t');
    if (parts.size() != 3) {
      return base::Status::ParseError("bad schema line: " + line);
    }
    auto type = ParseStructType(parts[2]);
    if (!type.ok()) return type.status();
    FlatSet set;
    set.name = parts[0];
    set.cardinality = static_cast<size_t>(std::stoull(parts[1]));
    set.type = type.TakeValue();
    sets.emplace(set.name, std::move(set));
  }
  return sets;
}

}  // namespace

base::Status Database::LoadFrom(const std::string& dir) {
  monet::Catalog restored;
  MIRROR_RETURN_IF_ERROR(restored.LoadFrom(dir));
  MIRROR_ASSIGN_OR_RETURN(auto sets, ParseSchemas(dir));

  // Commit the catalog, then rebuild each set's bindings from it.
  catalog_ = std::move(restored);
  sets_.clear();
  for (auto& [name, set] : sets) {
    MIRROR_RETURN_IF_ERROR(RestoreSet(&set));
    sets_.emplace(name, std::move(set));
  }
  return base::Status::Ok();
}

namespace {

/// Derives one field binding purely from the deterministic name scheme
/// (no catalog, no data). Fields whose restore needs reconstructed
/// in-memory state flip `*eager` instead of binding.
base::Status BindFieldLazy(FieldBinding* binding, const std::string& prefix,
                           const std::set<std::string>& available,
                           bool* eager) {
  switch (binding->type->kind()) {
    case StructType::Kind::kAtomic: {
      if (binding->type->base() == BaseType::kVector) {
        binding->dim_bat_names.clear();
        for (size_t d = 0;; ++d) {
          std::string bat_name = base::StrFormat("%s.d%zu", prefix.c_str(), d);
          if (available.find(bat_name) == available.end()) break;
          binding->dim_bat_names.push_back(std::move(bat_name));
        }
        return base::Status::Ok();
      }
      if (available.find(prefix) == available.end()) {
        return base::Status::NotFound("checkpointed BAT missing: " + prefix);
      }
      binding->bat_name = prefix;
      return base::Status::Ok();
    }
    case StructType::Kind::kContRep:
    case StructType::Kind::kSet:
    case StructType::Kind::kList:
      // Content indexes and nested-set groupings live in memory, not in
      // the name scheme — the whole set restores eagerly once its BATs
      // are recovered.
      *eager = true;
      return base::Status::Ok();
    case StructType::Kind::kTuple:
      return base::Status::Unimplemented("nested TUPLE fields");
  }
  return base::Status::Internal("unhandled field kind");
}

}  // namespace

base::Status Database::RestoreSchemasLazy(
    const std::string& dir, const std::set<std::string>& available,
    std::vector<std::string>* needs_eager) {
  MIRROR_ASSIGN_OR_RETURN(auto sets, ParseSchemas(dir));
  sets_.clear();
  for (auto& [name, set] : sets) {
    bool eager = false;
    const StructTypePtr elem = set.type->element();
    set.fields.clear();
    for (const StructType::Field& field : elem->fields()) {
      FieldBinding binding;
      binding.name = field.name;
      binding.type = field.type;
      MIRROR_RETURN_IF_ERROR(BindFieldLazy(&binding, name + "." + field.name,
                                           available, &eager));
      set.fields.push_back(std::move(binding));
    }
    if (eager) {
      // Bindings stay incomplete until RestoreSetFromCatalog.
      set.fields.clear();
      needs_eager->push_back(name);
    }
    sets_.emplace(name, std::move(set));
  }
  return base::Status::Ok();
}

base::Status Database::RestoreSetFromCatalog(const std::string& set_name) {
  auto it = sets_.find(set_name);
  if (it == sets_.end()) {
    return base::Status::NotFound("unknown set: " + set_name);
  }
  return RestoreSet(&it->second);
}

namespace {

/// Gathers nested-set children per parent oid from an association BAT.
std::map<Oid, std::vector<size_t>> GroupChildren(const Bat& assoc) {
  std::map<Oid, std::vector<size_t>> children;
  for (size_t i = 0; i < assoc.size(); ++i) {
    children[assoc.tail().OidAt(i)].push_back(i);
  }
  return children;
}

MoaValue AtomicFromColumn(const monet::Column& col, size_t row) {
  switch (col.type()) {
    case monet::ValueType::kInt:
      return MoaValue::Int(col.IntAt(row));
    case monet::ValueType::kDbl:
      return MoaValue::Dbl(col.DblAt(row));
    case monet::ValueType::kStr:
      return MoaValue::Str(std::string(col.StrAt(row)));
    default:
      return MoaValue::Int(static_cast<int64_t>(col.OidAt(row)));
  }
}

}  // namespace

base::Status Database::RestoreField(FlatSet* set, FieldBinding* binding,
                                    const std::string& prefix) {
  const StructTypePtr& ftype = binding->type;
  switch (ftype->kind()) {
    case StructType::Kind::kAtomic: {
      if (ftype->base() == BaseType::kVector) {
        binding->dim_bat_names.clear();
        for (size_t d = 0;; ++d) {
          std::string bat_name = base::StrFormat("%s.d%zu", prefix.c_str(), d);
          if (!catalog_.Contains(bat_name)) break;
          binding->dim_bat_names.push_back(std::move(bat_name));
        }
        return base::Status::Ok();
      }
      if (!catalog_.Contains(prefix)) {
        return base::Status::NotFound("persisted BAT missing: " + prefix);
      }
      binding->bat_name = prefix;
      return base::Status::Ok();
    }
    case StructType::Kind::kContRep: {
      auto contrep = std::make_unique<ContRepField>();
      contrep->set_name = set->name;
      contrep->field_name = binding->name;
      contrep->media = ftype->base();
      contrep->doc_bat = prefix + ".doc";
      contrep->term_bat = prefix + ".term";
      contrep->tf_bat = prefix + ".tf";
      contrep->df_bat = prefix + ".df";
      contrep->len_bat = prefix + ".len";
      contrep->vocab_bat = prefix + ".vocab";
      MIRROR_ASSIGN_OR_RETURN(BatPtr vocab, catalog_.Get(contrep->vocab_bat));
      MIRROR_ASSIGN_OR_RETURN(BatPtr doc, catalog_.Get(contrep->doc_bat));
      MIRROR_ASSIGN_OR_RETURN(BatPtr term, catalog_.Get(contrep->term_bat));
      MIRROR_ASSIGN_OR_RETURN(BatPtr tf, catalog_.Get(contrep->tf_bat));
      MIRROR_ASSIGN_OR_RETURN(BatPtr len, catalog_.Get(contrep->len_bat));
      // Re-intern the vocabulary in id order, then replay each document's
      // term multiset from the postings.
      std::vector<std::string> spell;
      spell.reserve(vocab->size());
      for (size_t i = 0; i < vocab->size(); ++i) {
        spell.emplace_back(vocab->tail().StrAt(i));
      }
      std::map<Oid, std::vector<std::string>> docs;
      for (size_t i = 0; i < len->size(); ++i) {
        docs[len->head().OidAt(i)];  // ensure empty docs exist
      }
      for (size_t i = 0; i < doc->size(); ++i) {
        Oid d = doc->tail().OidAt(i);
        auto t = static_cast<size_t>(term->tail().IntAt(i));
        int64_t count = tf->tail().IntAt(i);
        for (int64_t c = 0; c < count; ++c) docs[d].push_back(spell[t]);
      }
      for (const auto& [d, terms] : docs) {
        contrep->index.AddDocument(d, terms);
      }
      // Vocabulary ids must survive the round trip even for terms that
      // lost all their postings: intern any stragglers in order.
      for (const std::string& s : spell) {
        contrep->index.mutable_vocab()->Intern(s);
      }
      contrep->index.Finalize();
      contrep->network =
          std::make_unique<ir::InferenceNetwork>(&contrep->index);
      binding->contrep_index = static_cast<int>(set->contreps.size());
      set->contreps.push_back(std::move(contrep));
      return base::Status::Ok();
    }
    case StructType::Kind::kSet:
    case StructType::Kind::kList: {
      binding->assoc_bat_name = prefix + ".assoc";
      if (!catalog_.Contains(binding->assoc_bat_name)) {
        return base::Status::NotFound("persisted BAT missing: " +
                                      binding->assoc_bat_name);
      }
      const StructTypePtr& elem = ftype->element();
      binding->sub_fields.clear();
      for (const StructType::Field& field : elem->fields()) {
        FieldBinding sub;
        sub.name = field.name;
        sub.type = field.type;
        MIRROR_RETURN_IF_ERROR(
            RestoreField(set, &sub, prefix + "." + field.name));
        binding->sub_fields.push_back(std::move(sub));
      }
      return base::Status::Ok();
    }
    case StructType::Kind::kTuple:
      return base::Status::Unimplemented("nested TUPLE fields");
  }
  return base::Status::Internal("unhandled field kind");
}

base::Status Database::RestoreSet(FlatSet* set) {
  const StructTypePtr elem = set->type->element();
  set->fields.clear();
  set->contreps.clear();
  for (const StructType::Field& field : elem->fields()) {
    FieldBinding binding;
    binding.name = field.name;
    binding.type = field.type;
    MIRROR_RETURN_IF_ERROR(
        RestoreField(set, &binding, set->name + "." + field.name));
    set->fields.push_back(std::move(binding));
  }

  // Rebuild the materialized objects for the naive interpreter. The BAT
  // layout is the source of truth; term order inside a CONTREP multiset
  // is not original-order but the multiset (and thus all semantics) is.
  // Nested-set memberships are grouped once per field, not per object.
  std::map<std::string, std::map<Oid, std::vector<size_t>>> children_of;
  for (const FieldBinding& binding : set->fields) {
    if (binding.type->kind() == StructType::Kind::kSet ||
        binding.type->kind() == StructType::Kind::kList) {
      MIRROR_ASSIGN_OR_RETURN(BatPtr assoc,
                              catalog_.Get(binding.assoc_bat_name));
      children_of[binding.name] = GroupChildren(*assoc);
    }
  }
  set->objects.clear();
  set->objects.reserve(set->cardinality);
  for (size_t oid = 0; oid < set->cardinality; ++oid) {
    std::vector<MoaValue> fields;
    for (const FieldBinding& binding : set->fields) {
      switch (binding.type->kind()) {
        case StructType::Kind::kAtomic: {
          if (binding.type->base() == BaseType::kVector) {
            std::vector<double> vec;
            for (const std::string& dim : binding.dim_bat_names) {
              MIRROR_ASSIGN_OR_RETURN(BatPtr bat, catalog_.Get(dim));
              vec.push_back(bat->tail().DblAt(oid));
            }
            fields.push_back(MoaValue::Vector(std::move(vec)));
            break;
          }
          MIRROR_ASSIGN_OR_RETURN(BatPtr bat, catalog_.Get(binding.bat_name));
          fields.push_back(AtomicFromColumn(bat->tail(), oid));
          break;
        }
        case StructType::Kind::kContRep: {
          const ContRepField& contrep =
              *set->contreps[static_cast<size_t>(binding.contrep_index)];
          std::vector<std::string> terms;
          for (const ir::Posting& p : contrep.index.postings()) {
            if (p.doc != oid) continue;
            for (int64_t c = 0; c < p.tf; ++c) {
              terms.push_back(contrep.index.vocab().TermOf(p.term));
            }
          }
          fields.push_back(MoaValue::ContRep(std::move(terms)));
          break;
        }
        case StructType::Kind::kSet:
        case StructType::Kind::kList: {
          const std::map<Oid, std::vector<size_t>>& children =
              children_of[binding.name];
          std::vector<MoaValue> elements;
          auto it = children.find(oid);
          if (it != children.end()) {
            for (size_t child_row : it->second) {
              std::vector<MoaValue> child_fields;
              for (const FieldBinding& sub : binding.sub_fields) {
                if (sub.type->base() == BaseType::kVector) {
                  std::vector<double> vec;
                  for (const std::string& dim : sub.dim_bat_names) {
                    MIRROR_ASSIGN_OR_RETURN(BatPtr bat, catalog_.Get(dim));
                    vec.push_back(bat->tail().DblAt(child_row));
                  }
                  child_fields.push_back(MoaValue::Vector(std::move(vec)));
                } else {
                  MIRROR_ASSIGN_OR_RETURN(BatPtr bat,
                                          catalog_.Get(sub.bat_name));
                  child_fields.push_back(
                      AtomicFromColumn(bat->tail(), child_row));
                }
              }
              elements.push_back(MoaValue::Tuple(std::move(child_fields)));
            }
          }
          fields.push_back(MoaValue::SetOf(std::move(elements)));
          break;
        }
        default:
          return base::Status::Unimplemented("object reconstruction for " +
                                             binding.type->ToString());
      }
    }
    set->objects.push_back(MoaValue::Tuple(std::move(fields)));
  }
  return base::Status::Ok();
}

}  // namespace mirror::moa
