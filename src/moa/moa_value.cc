#include "moa/moa_value.h"

namespace mirror::moa {

MoaValue MoaValue::Atomic(monet::Value v) {
  MoaValue out(Kind::kAtomic);
  out.atomic_ = std::move(v);
  return out;
}

MoaValue MoaValue::Vector(std::vector<double> v) {
  MoaValue out(Kind::kVector);
  out.vec_ = std::move(v);
  return out;
}

MoaValue MoaValue::Tuple(std::vector<MoaValue> fields) {
  MoaValue out(Kind::kTuple);
  out.children_ = std::move(fields);
  return out;
}

MoaValue MoaValue::SetOf(std::vector<MoaValue> elements) {
  MoaValue out(Kind::kSet);
  out.children_ = std::move(elements);
  return out;
}

MoaValue MoaValue::ContRep(std::vector<std::string> terms) {
  MoaValue out(Kind::kContRep);
  out.terms_ = std::move(terms);
  return out;
}

std::string MoaValue::ToString() const {
  switch (kind_) {
    case Kind::kAtomic:
      return atomic_.ToString();
    case Kind::kVector: {
      std::string out = "vec[";
      for (size_t i = 0; i < vec_.size() && i < 4; ++i) {
        if (i > 0) out += ",";
        out += std::to_string(vec_[i]);
      }
      if (vec_.size() > 4) out += ",...";
      return out + "]";
    }
    case Kind::kTuple: {
      std::string out = "<";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i].ToString();
      }
      return out + ">";
    }
    case Kind::kSet: {
      std::string out = "{";
      for (size_t i = 0; i < children_.size() && i < 8; ++i) {
        if (i > 0) out += ", ";
        out += children_[i].ToString();
      }
      if (children_.size() > 8) out += ", ...";
      return out + "}";
    }
    case Kind::kContRep: {
      std::string out = "contrep{";
      for (size_t i = 0; i < terms_.size() && i < 8; ++i) {
        if (i > 0) out += " ";
        out += terms_[i];
      }
      if (terms_.size() > 8) out += " ...";
      return out + "}";
    }
  }
  return "?";
}

}  // namespace mirror::moa
