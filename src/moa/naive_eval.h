#ifndef MIRROR_MOA_NAIVE_EVAL_H_
#define MIRROR_MOA_NAIVE_EVAL_H_

#include "base/status.h"
#include "moa/database.h"
#include "moa/expr.h"
#include "moa/query_context.h"
#include "monet/catalog.h"

namespace mirror::moa {

/// Result of evaluating a Moa query: a set result materialized as a BAT
/// (element oid -> value; repeated oids for set-of-set results) or a
/// scalar.
struct EvalOutput {
  monet::BatPtr bat;
  monet::Value scalar;
  bool is_scalar = false;
};

/// The tuple-at-a-time object-algebra interpreter: evaluates Moa
/// expressions directly over materialized objects, one element at a time.
/// This is the "object-oriented" execution model that [BWK98] showed to be
/// dominated by flattened set-at-a-time processing — kept as the
/// reference implementation (it defines the semantics) and as the
/// baseline of experiment E1.
///
/// Semantics notes:
///  - `map[getBL(THIS.f, q, stats)](X)` yields per element the weighted
///    beliefs of every query term: `w_t * bel(t|d)`, where absent terms
///    have the default belief alpha.
///  - Aggregates over those belief sets (`map[sum(THIS)](...)`) therefore
///    include the default contributions of absent terms, matching the
///    flattened engine's adjusted plans.
class NaiveEvaluator {
 public:
  /// `db` and `ctx` must outlive the evaluator.
  NaiveEvaluator(const Database* db, const QueryContext* ctx)
      : db_(db), ctx_(ctx) {}

  /// Evaluates a parsed query expression.
  base::Result<EvalOutput> Evaluate(const ExprPtr& expr) const;

 private:
  const Database* db_;
  const QueryContext* ctx_;
};

}  // namespace mirror::moa

#endif  // MIRROR_MOA_NAIVE_EVAL_H_
