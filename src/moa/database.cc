#include "moa/database.h"

#include <algorithm>

#include "base/str_util.h"

namespace mirror::moa {

using monet::Bat;
using monet::Column;
using monet::Oid;

const FieldBinding* FlatSet::FindField(std::string_view field_name) const {
  for (const FieldBinding& f : fields) {
    if (f.name == field_name) return &f;
  }
  return nullptr;
}

const ContRepField* FlatSet::FindContRep(std::string_view field_name) const {
  const FieldBinding* f = FindField(field_name);
  if (f == nullptr || f->contrep_index < 0) return nullptr;
  return contreps[static_cast<size_t>(f->contrep_index)].get();
}

Database::Database()
    : text_pipeline_(ir::TextPipeline::Options{.remove_stopwords = true,
                                               .stem = true,
                                               .keep_underscore = true}) {}

base::Status Database::Define(std::string_view schema_text) {
  auto def = ParseSchemaDef(schema_text);
  if (!def.ok()) return def.status();
  return DefineParsed(def.value());
}

base::Status Database::DefineParsed(const SchemaDef& def) {
  if (sets_.count(def.name) > 0) {
    return base::Status::AlreadyExists("set already defined: " + def.name);
  }
  if (def.type->kind() != StructType::Kind::kSet &&
      def.type->kind() != StructType::Kind::kList) {
    return base::Status::TypeError(
        "top-level schema must be SET<...> or LIST<...>, got " +
        def.type->ToString());
  }
  if (def.type->element()->kind() != StructType::Kind::kTuple) {
    return base::Status::TypeError(
        "top-level element type must be TUPLE<...>, got " +
        def.type->element()->ToString());
  }
  FlatSet set;
  set.name = def.name;
  set.type = def.type;
  sets_.emplace(def.name, std::move(set));
  return base::Status::Ok();
}

namespace {

base::Status CheckAtomic(const MoaValue& v, BaseType base,
                         const std::string& context) {
  if (base == BaseType::kVector) {
    if (v.kind() != MoaValue::Kind::kVector) {
      return base::Status::TypeError(context + ": expected Vector value");
    }
    return base::Status::Ok();
  }
  if (v.kind() != MoaValue::Kind::kAtomic) {
    return base::Status::TypeError(context + ": expected atomic value");
  }
  monet::ValueType vt = v.atomic().type();
  switch (base) {
    case BaseType::kInt:
      if (vt != monet::ValueType::kInt) {
        return base::Status::TypeError(context + ": expected int");
      }
      break;
    case BaseType::kDbl:
      if (vt != monet::ValueType::kDbl && vt != monet::ValueType::kInt) {
        return base::Status::TypeError(context + ": expected dbl");
      }
      break;
    case BaseType::kStr:
    case BaseType::kUrl:
    case BaseType::kText:
    case BaseType::kImage:
      if (vt != monet::ValueType::kStr) {
        return base::Status::TypeError(context + ": expected str");
      }
      break;
    default:
      return base::Status::TypeError(context + ": unsupported base type");
  }
  return base::Status::Ok();
}

}  // namespace

base::Status Database::LoadField(FlatSet* set, FieldBinding* binding,
                                 const std::vector<MoaValue>& objects,
                                 size_t field_index) {
  const StructTypePtr& ftype = binding->type;
  const std::string prefix = set->name + "." + binding->name;
  switch (ftype->kind()) {
    case StructType::Kind::kAtomic: {
      if (ftype->base() == BaseType::kVector) {
        // Determine dimensionality from the first object.
        size_t dims = 0;
        if (!objects.empty()) {
          dims = objects[0].field(field_index).vec().size();
        }
        std::vector<std::vector<double>> cols(dims);
        for (const MoaValue& obj : objects) {
          const MoaValue& v = obj.field(field_index);
          MIRROR_RETURN_IF_ERROR(
              CheckAtomic(v, BaseType::kVector, prefix));
          if (v.vec().size() != dims) {
            return base::Status::TypeError(prefix +
                                           ": inconsistent vector dims");
          }
          for (size_t d = 0; d < dims; ++d) cols[d].push_back(v.vec()[d]);
        }
        binding->dim_bat_names.clear();
        for (size_t d = 0; d < dims; ++d) {
          std::string bat_name = base::StrFormat("%s.d%zu", prefix.c_str(), d);
          catalog_.Put(bat_name, Bat::DenseDbls(std::move(cols[d])));
          binding->dim_bat_names.push_back(std::move(bat_name));
        }
        return base::Status::Ok();
      }
      // Scalar atomic column.
      switch (ftype->base()) {
        case BaseType::kInt: {
          std::vector<int64_t> vals;
          vals.reserve(objects.size());
          for (const MoaValue& obj : objects) {
            const MoaValue& v = obj.field(field_index);
            MIRROR_RETURN_IF_ERROR(CheckAtomic(v, BaseType::kInt, prefix));
            vals.push_back(v.atomic().i());
          }
          catalog_.Put(prefix, Bat::DenseInts(std::move(vals)));
          break;
        }
        case BaseType::kDbl: {
          std::vector<double> vals;
          vals.reserve(objects.size());
          for (const MoaValue& obj : objects) {
            const MoaValue& v = obj.field(field_index);
            MIRROR_RETURN_IF_ERROR(CheckAtomic(v, BaseType::kDbl, prefix));
            vals.push_back(v.atomic().AsDouble());
          }
          catalog_.Put(prefix, Bat::DenseDbls(std::move(vals)));
          break;
        }
        default: {  // all string flavors
          std::vector<std::string> vals;
          vals.reserve(objects.size());
          for (const MoaValue& obj : objects) {
            const MoaValue& v = obj.field(field_index);
            MIRROR_RETURN_IF_ERROR(CheckAtomic(v, ftype->base(), prefix));
            vals.push_back(v.atomic().s());
          }
          catalog_.Put(prefix, Bat::DenseStrs(vals));
          break;
        }
      }
      binding->bat_name = prefix;
      return base::Status::Ok();
    }
    case StructType::Kind::kContRep: {
      auto contrep = std::make_unique<ContRepField>();
      contrep->set_name = set->name;
      contrep->field_name = binding->name;
      contrep->media = ftype->base();
      for (size_t i = 0; i < objects.size(); ++i) {
        const MoaValue& v = objects[i].field(field_index);
        std::vector<std::string> terms;
        if (v.kind() == MoaValue::Kind::kContRep) {
          terms = v.terms();
        } else if (v.kind() == MoaValue::Kind::kAtomic &&
                   v.atomic().type() == monet::ValueType::kStr) {
          terms = text_pipeline_.Process(v.atomic().s());
        } else {
          return base::Status::TypeError(prefix +
                                         ": CONTREP needs terms or text");
        }
        contrep->index.AddDocument(static_cast<Oid>(i), terms);
      }
      contrep->index.Finalize();
      contrep->network =
          std::make_unique<ir::InferenceNetwork>(&contrep->index);
      contrep->doc_bat = prefix + ".doc";
      contrep->term_bat = prefix + ".term";
      contrep->tf_bat = prefix + ".tf";
      contrep->df_bat = prefix + ".df";
      contrep->len_bat = prefix + ".len";
      contrep->vocab_bat = prefix + ".vocab";
      catalog_.Put(contrep->doc_bat, contrep->index.DocBat());
      catalog_.Put(contrep->term_bat, contrep->index.TermBat());
      catalog_.Put(contrep->tf_bat, contrep->index.TfBat());
      catalog_.Put(contrep->df_bat, contrep->index.DfBat());
      catalog_.Put(contrep->len_bat, contrep->index.DocLenBat());
      {
        std::vector<std::string> terms;
        terms.reserve(static_cast<size_t>(contrep->index.vocab().size()));
        for (int64_t t = 0; t < contrep->index.vocab().size(); ++t) {
          terms.push_back(contrep->index.vocab().TermOf(t));
        }
        catalog_.Put(contrep->vocab_bat, Bat::DenseStrs(terms));
      }
      binding->contrep_index = static_cast<int>(set->contreps.size());
      set->contreps.push_back(std::move(contrep));
      return base::Status::Ok();
    }
    case StructType::Kind::kSet:
    case StructType::Kind::kList: {
      // Nested collection of tuples: vertical fragmentation with an
      // association BAT (parent oid -> child oid).
      const StructTypePtr& elem = ftype->element();
      if (elem->kind() != StructType::Kind::kTuple) {
        return base::Status::TypeError(prefix +
                                       ": nested sets must contain tuples");
      }
      std::vector<Oid> parents;
      std::vector<MoaValue> children;
      for (size_t i = 0; i < objects.size(); ++i) {
        const MoaValue& v = objects[i].field(field_index);
        if (v.kind() != MoaValue::Kind::kSet) {
          return base::Status::TypeError(prefix + ": expected set value");
        }
        for (const MoaValue& child : v.elements()) {
          parents.push_back(static_cast<Oid>(i));
          children.push_back(child);
        }
      }
      binding->assoc_bat_name = prefix + ".assoc";
      catalog_.Put(binding->assoc_bat_name, Bat::DenseOids(std::move(parents)));
      binding->sub_fields.clear();
      for (size_t fi = 0; fi < elem->fields().size(); ++fi) {
        FieldBinding sub;
        sub.name = elem->fields()[fi].name;
        sub.type = elem->fields()[fi].type;
        // Child columns are loaded as a pseudo-set named by the path.
        FlatSet pseudo;
        pseudo.name = prefix;
        MIRROR_RETURN_IF_ERROR(LoadField(&pseudo, &sub, children, fi));
        // Adopt any contreps the child created (none expected, but keep
        // the structure sound).
        for (auto& c : pseudo.contreps) set->contreps.push_back(std::move(c));
        binding->sub_fields.push_back(std::move(sub));
      }
      return base::Status::Ok();
    }
    case StructType::Kind::kTuple:
      return base::Status::Unimplemented(
          prefix + ": directly nested TUPLE fields are not supported; wrap "
                   "in SET or flatten the schema");
  }
  return base::Status::Internal("unhandled field kind");
}

base::Status Database::Load(const std::string& set_name,
                            std::vector<MoaValue> objects) {
  auto it = sets_.find(set_name);
  if (it == sets_.end()) {
    return base::Status::NotFound("set not defined: " + set_name);
  }
  FlatSet& set = it->second;
  const StructTypePtr elem = set.type->element();
  for (size_t i = 0; i < objects.size(); ++i) {
    if (objects[i].kind() != MoaValue::Kind::kTuple ||
        objects[i].children().size() != elem->fields().size()) {
      return base::Status::TypeError(base::StrFormat(
          "%s: object %zu is not a %zu-field tuple", set_name.c_str(), i,
          elem->fields().size()));
    }
  }
  set.fields.clear();
  set.contreps.clear();
  set.cardinality = objects.size();
  for (size_t fi = 0; fi < elem->fields().size(); ++fi) {
    FieldBinding binding;
    binding.name = elem->fields()[fi].name;
    binding.type = elem->fields()[fi].type;
    MIRROR_RETURN_IF_ERROR(LoadField(&set, &binding, objects, fi));
    set.fields.push_back(std::move(binding));
  }
  set.objects = std::move(objects);
  return base::Status::Ok();
}

base::Result<const FlatSet*> Database::GetSet(
    const std::string& set_name) const {
  auto it = sets_.find(set_name);
  if (it == sets_.end()) {
    return base::Status::NotFound("set not defined: " + set_name);
  }
  return &it->second;
}

std::vector<std::string> Database::SetNames() const {
  std::vector<std::string> names;
  names.reserve(sets_.size());
  for (const auto& [name, set] : sets_) names.push_back(name);
  return names;
}

}  // namespace mirror::moa
