#ifndef MIRROR_MOA_STRUCTURE_TYPE_H_
#define MIRROR_MOA_STRUCTURE_TYPE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace mirror::moa {

/// Atomic base types. Moa inherits base types from the physical layer
/// (§2); the media-flavored names of the paper (URL, Text, Image) are
/// aliases of str that carry intent for the daemons.
enum class BaseType {
  kInt,
  kDbl,
  kStr,
  kUrl,     // physical str
  kText,    // physical str
  kImage,   // physical str (media-server URL of the blob)
  kVector,  // feature vector; physically one dbl BAT per dimension
};

/// Name of a base type as written in schemas ("URL", "int", ...).
std::string_view BaseTypeName(BaseType t);

/// A node in a Moa structure type: the paper's structural
/// object-orientation. Structures (TUPLE, SET, LIST, CONTREP, ...) compose
/// base types into complex object types. The set of structures is open
/// (see StructureRegistry); the kernel ones are built in.
class StructType;
using StructTypePtr = std::shared_ptr<const StructType>;

class StructType {
 public:
  enum class Kind {
    kAtomic,   // Atomic<base>
    kTuple,    // TUPLE<T1: f1, ..., Tn: fn>
    kSet,      // SET<T>
    kList,     // LIST<T>  (ordered; added by H.E. Blok per the paper's ack)
    kContRep,  // CONTREP<media>: content representation (the IR extension)
  };

  struct Field {
    std::string name;
    StructTypePtr type;
  };

  static StructTypePtr Atomic(BaseType base);
  static StructTypePtr Tuple(std::vector<Field> fields);
  static StructTypePtr Set(StructTypePtr element);
  static StructTypePtr List(StructTypePtr element);
  static StructTypePtr ContRep(BaseType media);

  Kind kind() const { return kind_; }
  BaseType base() const { return base_; }
  const std::vector<Field>& fields() const { return fields_; }
  const StructTypePtr& element() const { return element_; }

  /// For kTuple: the index of `name` in fields(), or -1.
  int FieldIndex(std::string_view name) const;

  /// Structural equality.
  bool Equals(const StructType& other) const;

  /// Canonical rendering, e.g. "SET<TUPLE<Atomic<URL>: source>>".
  std::string ToString() const;

 private:
  explicit StructType(Kind kind) : kind_(kind) {}

  Kind kind_;
  BaseType base_ = BaseType::kStr;       // kAtomic, kContRep (media)
  std::vector<Field> fields_;            // kTuple
  StructTypePtr element_;                // kSet, kList
};

/// A named schema definition: `define <Name> as <type>;`.
struct SchemaDef {
  std::string name;
  StructTypePtr type;
};

/// Parses the paper's schema syntax, e.g.
///
///   define TraditionalImgLib as
///   SET< TUPLE< Atomic<URL>: source, CONTREP<Text>: annotation >>;
///
/// Whitespace is free-form; `>>` closes two angles as in the paper.
base::Result<SchemaDef> ParseSchemaDef(std::string_view text);

/// Parses just a structure type expression (no `define`).
base::Result<StructTypePtr> ParseStructType(std::string_view text);

}  // namespace mirror::moa

#endif  // MIRROR_MOA_STRUCTURE_TYPE_H_
