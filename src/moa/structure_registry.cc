#include "moa/structure_registry.h"

#include "moa/structure_type.h"

namespace mirror::moa {

StructureRegistry& StructureRegistry::Global() {
  static StructureRegistry* registry = new StructureRegistry();
  return *registry;
}

base::Status StructureRegistry::RegisterStructure(StructureInfo info) {
  static const char* const kKernelNames[] = {"Atomic", "TUPLE", "SET", "LIST",
                                             "CONTREP"};
  for (const char* kernel : kKernelNames) {
    if (info.name == kernel) {
      return base::Status::AlreadyExists("kernel structure name: " +
                                         info.name);
    }
  }
  if (structures_.count(info.name) > 0) {
    return base::Status::AlreadyExists("structure already registered: " +
                                       info.name);
  }
  std::string name = info.name;
  structures_.emplace(std::move(name), std::move(info));
  return base::Status::Ok();
}

const StructureInfo* StructureRegistry::Find(std::string_view name) const {
  auto it = structures_.find(name);
  return it == structures_.end() ? nullptr : &it->second;
}

std::vector<std::string> StructureRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(structures_.size());
  for (const auto& [name, info] : structures_) names.push_back(name);
  return names;
}

}  // namespace mirror::moa
