#ifndef MIRROR_MOA_OPTIMIZER_H_
#define MIRROR_MOA_OPTIMIZER_H_

#include "moa/expr.h"
#include "monet/mil.h"

namespace mirror::moa {

/// What the optimizer did to a query (reported by the experiment
/// harnesses alongside kernel counters).
struct OptimizerReport {
  int map_fusions = 0;
  int select_fusions = 0;
  /// select.cmp chains fused into single select.range instructions (the
  /// MIL-level peephole feeding the engine's candidate pipelines).
  int range_fusions = 0;
  /// scalar.sum over multiplex add/sub pushed through the arithmetic
  /// (sum(a±b) => sum(a)±sum(b)): the map no longer materializes its
  /// candidate-view inputs, so both sums run fused over the views.
  int agg_fusions = 0;
  /// Links in select→semijoin chains the engine will run over candidate
  /// vectors without materializing (diagnostic).
  int candidate_chain_links = 0;
  /// Join inputs fed by candidate-pipeline producers: joins the radix
  /// engine (ExecOptions.morsel_joins) will probe/build directly over
  /// candidate views instead of materializing them (diagnostic).
  int join_input_fusions = 0;
  /// scalar.sum(topn(x, 1)) detours rewritten into dedicated scalar.fold
  /// instructions (max/min skip the bounded sort; the fold opcode is also
  /// the shard engine's cross-shard merge form).
  int fold_rewrites = 0;
  /// Instructions the shard-parallel engine will fan out shard-locally
  /// when the database is sharded: ops reachable from loads through the
  /// shard-preserving instruction set (diagnostic; the engine makes the
  /// final call per register at run time).
  int shard_fanouts = 0;
  /// Selects over base BATs whose predicate normalizes to a recycler
  /// interval (SelectPredicate::FromInstr): candidates for exact-match
  /// replay or subsumption seeding when the recycler is armed
  /// (diagnostic; the engine decides per execution).
  int recycle_eligible_selects = 0;
  size_t cse_removed = 0;
  size_t dce_removed = 0;
};

/// Algebraic rewriting on the logical expression tree (paper §2: the
/// translation to a different physical model "provides an excellent basis
/// for algebraic query optimization"):
///  - select-select fusion: select[p](select[q](X)) => select[q and p](X)
///  - map-map fusion for scalar bodies:
///    map[g](map[f](X)) => map[g{THIS:=f}](X)
/// Returns the rewritten tree; `report` (optional) accumulates counts.
ExprPtr RewriteLogical(const ExprPtr& expr, OptimizerReport* report);

/// Peephole passes over a flattened MIL program: select-chain fusion
/// (select.cmp pairs forming a range collapse into one select.range, so
/// candidate pipelines scan once), scalar-aggregate pushdown
/// (sum(a±b) => sum(a)±sum(b), emitting the fused-agg form the engine
/// runs over candidate views), then common subexpression elimination,
/// then dead code elimination.
void OptimizeMil(monet::mil::Program* program, OptimizerReport* report);

}  // namespace mirror::moa

#endif  // MIRROR_MOA_OPTIMIZER_H_
