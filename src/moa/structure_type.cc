#include "moa/structure_type.h"

#include "base/str_util.h"
#include "moa/structure_registry.h"

namespace mirror::moa {

std::string_view BaseTypeName(BaseType t) {
  switch (t) {
    case BaseType::kInt:
      return "int";
    case BaseType::kDbl:
      return "dbl";
    case BaseType::kStr:
      return "str";
    case BaseType::kUrl:
      return "URL";
    case BaseType::kText:
      return "Text";
    case BaseType::kImage:
      return "Image";
    case BaseType::kVector:
      return "Vector";
  }
  return "?";
}

StructTypePtr StructType::Atomic(BaseType base) {
  auto t = std::shared_ptr<StructType>(new StructType(Kind::kAtomic));
  t->base_ = base;
  return t;
}

StructTypePtr StructType::Tuple(std::vector<Field> fields) {
  auto t = std::shared_ptr<StructType>(new StructType(Kind::kTuple));
  t->fields_ = std::move(fields);
  return t;
}

StructTypePtr StructType::Set(StructTypePtr element) {
  auto t = std::shared_ptr<StructType>(new StructType(Kind::kSet));
  t->element_ = std::move(element);
  return t;
}

StructTypePtr StructType::List(StructTypePtr element) {
  auto t = std::shared_ptr<StructType>(new StructType(Kind::kList));
  t->element_ = std::move(element);
  return t;
}

StructTypePtr StructType::ContRep(BaseType media) {
  auto t = std::shared_ptr<StructType>(new StructType(Kind::kContRep));
  t->base_ = media;
  return t;
}

int StructType::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool StructType::Equals(const StructType& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kAtomic:
    case Kind::kContRep:
      return base_ == other.base_;
    case Kind::kSet:
    case Kind::kList:
      return element_->Equals(*other.element_);
    case Kind::kTuple: {
      if (fields_.size() != other.fields_.size()) return false;
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (fields_[i].name != other.fields_[i].name) return false;
        if (!fields_[i].type->Equals(*other.fields_[i].type)) return false;
      }
      return true;
    }
  }
  return false;
}

std::string StructType::ToString() const {
  switch (kind_) {
    case Kind::kAtomic:
      return "Atomic<" + std::string(BaseTypeName(base_)) + ">";
    case Kind::kContRep:
      return "CONTREP<" + std::string(BaseTypeName(base_)) + ">";
    case Kind::kSet:
      return "SET<" + element_->ToString() + ">";
    case Kind::kList:
      return "LIST<" + element_->ToString() + ">";
    case Kind::kTuple: {
      std::string out = "TUPLE<";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out += ", ";
        out += fields_[i].type->ToString() + ": " + fields_[i].name;
      }
      out += ">";
      return out;
    }
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Parser. Tokens: identifiers, '<', '>', ',', ':', ';'. The paper writes
// '>>' to close two structures; the lexer therefore emits one '>' per
// closing angle (no shift-style token).

namespace {

class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  base::Result<StructTypePtr> ParseType() {
    auto type = ParseOne();
    if (!type.ok()) return type;
    SkipSpace();
    return type;
  }

  base::Result<SchemaDef> ParseDefine() {
    if (!ConsumeWord("define")) {
      return base::Status::ParseError("expected 'define'");
    }
    std::string name = ConsumeIdent();
    if (name.empty()) {
      return base::Status::ParseError("expected schema name after 'define'");
    }
    if (!ConsumeWord("as")) {
      return base::Status::ParseError("expected 'as' after schema name");
    }
    auto type = ParseOne();
    if (!type.ok()) return type.status();
    SkipSpace();
    Consume(';');  // optional trailing semicolon
    SkipSpace();
    if (pos_ != text_.size()) {
      return base::Status::ParseError("trailing input after schema: " +
                                      std::string(text_.substr(pos_)));
    }
    return SchemaDef{std::move(name), type.TakeValue()};
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  static bool IsIdentChar(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  }

  std::string ConsumeIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    size_t save = pos_;
    std::string ident = ConsumeIdent();
    if (ident == word) return true;
    pos_ = save;
    return false;
  }

  base::Result<BaseType> ParseBaseName(const std::string& name) {
    if (name == "int") return BaseType::kInt;
    if (name == "dbl" || name == "double" || name == "flt") {
      return BaseType::kDbl;
    }
    if (name == "str" || name == "string") return BaseType::kStr;
    if (name == "URL") return BaseType::kUrl;
    if (name == "Text") return BaseType::kText;
    if (name == "Image") return BaseType::kImage;
    if (name == "Vector") return BaseType::kVector;
    return base::Status::ParseError("unknown base type: " + name);
  }

  base::Result<StructTypePtr> ParseOne() {
    std::string name = ConsumeIdent();
    if (name.empty()) {
      return base::Status::ParseError("expected structure name at offset " +
                                      base::StrFormat("%zu", pos_));
    }
    if (name == "Atomic") {
      if (!Consume('<')) {
        return base::Status::ParseError("expected '<' after Atomic");
      }
      auto base = ParseBaseName(ConsumeIdent());
      if (!base.ok()) return base.status();
      if (!Consume('>')) {
        return base::Status::ParseError("expected '>' closing Atomic");
      }
      return StructType::Atomic(base.value());
    }
    if (name == "TUPLE") {
      if (!Consume('<')) {
        return base::Status::ParseError("expected '<' after TUPLE");
      }
      std::vector<StructType::Field> fields;
      while (true) {
        auto field_type = ParseOne();
        if (!field_type.ok()) return field_type.status();
        if (!Consume(':')) {
          return base::Status::ParseError(
              "expected ':' and field name in TUPLE");
        }
        std::string field_name = ConsumeIdent();
        if (field_name.empty()) {
          return base::Status::ParseError("expected field name after ':'");
        }
        fields.push_back({std::move(field_name), field_type.TakeValue()});
        if (Consume(',')) continue;
        break;
      }
      if (!Consume('>')) {
        return base::Status::ParseError("expected '>' closing TUPLE");
      }
      return StructType::Tuple(std::move(fields));
    }
    if (name == "SET" || name == "LIST") {
      if (!Consume('<')) {
        return base::Status::ParseError("expected '<' after " + name);
      }
      auto element = ParseOne();
      if (!element.ok()) return element.status();
      if (!Consume('>')) {
        return base::Status::ParseError("expected '>' closing " + name);
      }
      return name == "SET" ? StructType::Set(element.TakeValue())
                           : StructType::List(element.TakeValue());
    }
    if (name == "CONTREP") {
      if (!Consume('<')) {
        return base::Status::ParseError("expected '<' after CONTREP");
      }
      auto media = ParseBaseName(ConsumeIdent());
      if (!media.ok()) return media.status();
      if (!Consume('>')) {
        return base::Status::ParseError("expected '>' closing CONTREP");
      }
      return StructType::ContRep(media.value());
    }
    // Open extensibility: consult the structure registry (paper §2, "new
    // structures can be added to the system").
    const StructureInfo* info = StructureRegistry::Global().Find(name);
    if (info != nullptr) {
      std::string arg;
      if (Consume('<')) {
        size_t depth = 1;
        SkipSpace();
        size_t start = pos_;
        while (pos_ < text_.size() && depth > 0) {
          if (text_[pos_] == '<') ++depth;
          if (text_[pos_] == '>') --depth;
          if (depth > 0) ++pos_;
        }
        if (depth != 0) {
          return base::Status::ParseError("unbalanced '<' in " + name);
        }
        arg = std::string(text_.substr(start, pos_ - start));
        ++pos_;  // consume final '>'
      }
      return info->make_type(arg);
    }
    return base::Status::ParseError("unknown structure: " + name);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

base::Result<SchemaDef> ParseSchemaDef(std::string_view text) {
  return TypeParser(text).ParseDefine();
}

base::Result<StructTypePtr> ParseStructType(std::string_view text) {
  return TypeParser(text).ParseType();
}

}  // namespace mirror::moa
