#ifndef MIRROR_MOA_MOA_VALUE_H_
#define MIRROR_MOA_MOA_VALUE_H_

#include <string>
#include <vector>

#include "monet/value.h"

namespace mirror::moa {

/// A materialized logical object: the tuple-at-a-time representation used
/// for loading data and by the naive object-algebra interpreter (the
/// [BWK98] baseline of experiment E1). The flattened engine never
/// materializes these — it works on the BAT layout instead.
class MoaValue {
 public:
  enum class Kind {
    kAtomic,   // one physical scalar
    kVector,   // feature vector (extension atomic for the media daemons)
    kTuple,    // ordered field values
    kSet,      // element values
    kContRep,  // raw content representation: the term multiset of the doc
  };

  static MoaValue Atomic(monet::Value v);
  static MoaValue Int(int64_t v) { return Atomic(monet::Value::MakeInt(v)); }
  static MoaValue Dbl(double v) { return Atomic(monet::Value::MakeDbl(v)); }
  static MoaValue Str(std::string v) {
    return Atomic(monet::Value::MakeStr(std::move(v)));
  }
  static MoaValue Vector(std::vector<double> v);
  static MoaValue Tuple(std::vector<MoaValue> fields);
  static MoaValue SetOf(std::vector<MoaValue> elements);
  /// A content representation given as raw index terms (already
  /// tokenized/stemmed, or visual terms).
  static MoaValue ContRep(std::vector<std::string> terms);

  Kind kind() const { return kind_; }
  const monet::Value& atomic() const { return atomic_; }
  const std::vector<double>& vec() const { return vec_; }
  const std::vector<MoaValue>& children() const { return children_; }
  const std::vector<std::string>& terms() const { return terms_; }

  /// For kTuple: field by position.
  const MoaValue& field(size_t i) const { return children_[i]; }
  /// For kSet: elements.
  const std::vector<MoaValue>& elements() const { return children_; }

  std::string ToString() const;

 private:
  explicit MoaValue(Kind kind) : kind_(kind) {}

  Kind kind_;
  monet::Value atomic_;
  std::vector<double> vec_;
  std::vector<MoaValue> children_;
  std::vector<std::string> terms_;
};

}  // namespace mirror::moa

#endif  // MIRROR_MOA_MOA_VALUE_H_
