#include "moa/expr.h"

#include "base/str_util.h"

namespace mirror::moa {

namespace {

ExprPtr MakeExpr(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

}  // namespace

ExprPtr Expr::Map(ExprPtr body, ExprPtr set) {
  Expr e{.op = Op::kMap};
  e.children = {std::move(body), std::move(set)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Select(ExprPtr pred, ExprPtr set) {
  Expr e{.op = Op::kSelect};
  e.children = {std::move(pred), std::move(set)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::SemiJoin(ExprPtr left, ExprPtr right) {
  Expr e{.op = Op::kSemiJoin};
  e.children = {std::move(left), std::move(right)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Agg(AggKind kind, ExprPtr arg) {
  Expr e{.op = Op::kAgg};
  e.agg = kind;
  e.children = {std::move(arg)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::GetBL(ExprPtr rep, std::string qvar, std::string statsvar) {
  Expr e{.op = Op::kGetBL};
  e.children = {std::move(rep)};
  e.qvar = std::move(qvar);
  e.statsvar = std::move(statsvar);
  return MakeExpr(std::move(e));
}

ExprPtr Expr::TopN(ExprPtr set, int64_t n) {
  Expr e{.op = Op::kTopN};
  e.children = {std::move(set)};
  e.n = n;
  return MakeExpr(std::move(e));
}

ExprPtr Expr::This() { return MakeExpr(Expr{.op = Op::kThis}); }

ExprPtr Expr::Field(ExprPtr base, std::string name) {
  Expr e{.op = Op::kField};
  e.children = {std::move(base)};
  e.name = std::move(name);
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Var(std::string name) {
  Expr e{.op = Op::kVarRef};
  e.name = std::move(name);
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Lit(monet::Value v) {
  Expr e{.op = Op::kLit};
  e.literal = std::move(v);
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Cmp(CmpKind kind, ExprPtr lhs, ExprPtr rhs) {
  Expr e{.op = Op::kCmp};
  e.cmp = kind;
  e.children = {std::move(lhs), std::move(rhs)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Arith(ArithKind kind, ExprPtr lhs, ExprPtr rhs) {
  Expr e{.op = Op::kArith};
  e.arith = kind;
  e.children = {std::move(lhs), std::move(rhs)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  Expr e{.op = Op::kAnd};
  e.children = {std::move(lhs), std::move(rhs)};
  return MakeExpr(std::move(e));
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  Expr e{.op = Op::kOr};
  e.children = {std::move(lhs), std::move(rhs)};
  return MakeExpr(std::move(e));
}

std::string Expr::ToString() const {
  switch (op) {
    case Op::kMap:
      return "map[" + children[0]->ToString() + "](" +
             children[1]->ToString() + ")";
    case Op::kSelect:
      return "select[" + children[0]->ToString() + "](" +
             children[1]->ToString() + ")";
    case Op::kSemiJoin:
      return "semijoin(" + children[0]->ToString() + ", " +
             children[1]->ToString() + ")";
    case Op::kAgg: {
      const char* name = "?";
      switch (agg) {
        case AggKind::kSum:
          name = "sum";
          break;
        case AggKind::kCount:
          name = "count";
          break;
        case AggKind::kMax:
          name = "max";
          break;
        case AggKind::kMin:
          name = "min";
          break;
        case AggKind::kAvg:
          name = "avg";
          break;
        case AggKind::kProd:
          name = "pand";
          break;
        case AggKind::kProbOr:
          name = "por";
          break;
      }
      return std::string(name) + "(" + children[0]->ToString() + ")";
    }
    case Op::kGetBL:
      return "getBL(" + children[0]->ToString() + ", " + qvar + ", " +
             statsvar + ")";
    case Op::kTopN:
      return base::StrFormat("topN(%s, %lld)",
                             children[0]->ToString().c_str(),
                             static_cast<long long>(n));
    case Op::kThis:
      return "THIS";
    case Op::kField:
      return children[0]->ToString() + "." + name;
    case Op::kVarRef:
      return name;
    case Op::kLit:
      switch (literal.type()) {
        case monet::ValueType::kInt:
          return base::StrFormat("%lld", static_cast<long long>(literal.i()));
        case monet::ValueType::kDbl:
          return base::StrFormat("%g", literal.d());
        case monet::ValueType::kStr:
          return "'" + literal.s() + "'";
        default:
          return literal.ToString();
      }
    case Op::kCmp: {
      const char* sym = "?";
      switch (cmp) {
        case CmpKind::kEq:
          sym = "==";
          break;
        case CmpKind::kNeq:
          sym = "!=";
          break;
        case CmpKind::kLt:
          sym = "<";
          break;
        case CmpKind::kLe:
          sym = "<=";
          break;
        case CmpKind::kGt:
          sym = ">";
          break;
        case CmpKind::kGe:
          sym = ">=";
          break;
      }
      return children[0]->ToString() + " " + sym + " " +
             children[1]->ToString();
    }
    case Op::kArith: {
      const char* sym = "?";
      switch (arith) {
        case ArithKind::kAdd:
          sym = "+";
          break;
        case ArithKind::kSub:
          sym = "-";
          break;
        case ArithKind::kMul:
          sym = "*";
          break;
        case ArithKind::kDiv:
          sym = "/";
          break;
      }
      return "(" + children[0]->ToString() + " " + sym + " " +
             children[1]->ToString() + ")";
    }
    case Op::kAnd:
      return "(" + children[0]->ToString() + " and " +
             children[1]->ToString() + ")";
    case Op::kOr:
      return "(" + children[0]->ToString() + " or " +
             children[1]->ToString() + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Recursive-descent parser.

namespace {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  base::Result<ExprPtr> Parse() {
    auto e = ParseOr();
    if (!e.ok()) return e;
    SkipSpace();
    Consume(';');
    SkipSpace();
    if (pos_ != text_.size()) {
      return base::Status::ParseError("trailing input after expression: '" +
                                      std::string(text_.substr(pos_)) + "'");
    }
    return e;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  static bool IsIdentStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  }
  static bool IsIdentChar(char c) {
    return IsIdentStart(c) || (c >= '0' && c <= '9');
  }

  std::string PeekIdent() {
    SkipSpace();
    size_t p = pos_;
    if (p >= text_.size() || !IsIdentStart(text_[p])) return "";
    size_t start = p;
    while (p < text_.size() && IsIdentChar(text_[p])) ++p;
    return std::string(text_.substr(start, p - start));
  }

  std::string ConsumeIdent() {
    std::string ident = PeekIdent();
    SkipSpace();
    pos_ += ident.size();
    return ident;
  }

  base::Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr out = lhs.TakeValue();
    while (PeekIdent() == "or") {
      ConsumeIdent();
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      out = Expr::Or(out, rhs.TakeValue());
    }
    return out;
  }

  base::Result<ExprPtr> ParseAnd() {
    auto lhs = ParseCmp();
    if (!lhs.ok()) return lhs;
    ExprPtr out = lhs.TakeValue();
    while (PeekIdent() == "and") {
      ConsumeIdent();
      auto rhs = ParseCmp();
      if (!rhs.ok()) return rhs;
      out = Expr::And(out, rhs.TakeValue());
    }
    return out;
  }

  base::Result<ExprPtr> ParseCmp() {
    auto lhs = ParseAdd();
    if (!lhs.ok()) return lhs;
    SkipSpace();
    CmpKind kind;
    if (TryConsumeOp("==")) {
      kind = CmpKind::kEq;
    } else if (TryConsumeOp("!=")) {
      kind = CmpKind::kNeq;
    } else if (TryConsumeOp("<=")) {
      kind = CmpKind::kLe;
    } else if (TryConsumeOp(">=")) {
      kind = CmpKind::kGe;
    } else if (TryConsumeOp("<")) {
      kind = CmpKind::kLt;
    } else if (TryConsumeOp(">")) {
      kind = CmpKind::kGt;
    } else {
      return lhs;
    }
    auto rhs = ParseAdd();
    if (!rhs.ok()) return rhs;
    return Expr::Cmp(kind, lhs.TakeValue(), rhs.TakeValue());
  }

  bool TryConsumeOp(std::string_view op) {
    SkipSpace();
    if (text_.substr(pos_, op.size()) != op) return false;
    // Avoid consuming "<" of "<=" etc.: single-char ops must not be
    // followed by '=' when a two-char variant exists.
    if (op.size() == 1 && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      return false;
    }
    pos_ += op.size();
    return true;
  }

  base::Result<ExprPtr> ParseAdd() {
    auto lhs = ParseMul();
    if (!lhs.ok()) return lhs;
    ExprPtr out = lhs.TakeValue();
    while (true) {
      SkipSpace();
      if (Consume('+')) {
        auto rhs = ParseMul();
        if (!rhs.ok()) return rhs;
        out = Expr::Arith(ArithKind::kAdd, out, rhs.TakeValue());
      } else if (Peek('-')) {
        ++pos_;
        auto rhs = ParseMul();
        if (!rhs.ok()) return rhs;
        out = Expr::Arith(ArithKind::kSub, out, rhs.TakeValue());
      } else {
        return out;
      }
    }
  }

  base::Result<ExprPtr> ParseMul() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs;
    ExprPtr out = lhs.TakeValue();
    while (true) {
      if (Consume('*')) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        out = Expr::Arith(ArithKind::kMul, out, rhs.TakeValue());
      } else if (Consume('/')) {
        auto rhs = ParsePrimary();
        if (!rhs.ok()) return rhs;
        out = Expr::Arith(ArithKind::kDiv, out, rhs.TakeValue());
      } else {
        return out;
      }
    }
  }

  base::Result<ExprPtr> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool has_dot = false;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.')) {
      if (text_[pos_] == '.') has_dot = true;
      ++pos_;
    }
    std::string num(text_.substr(start, pos_ - start));
    if (num.empty() || num == "-" || num == "+") {
      return base::Status::ParseError("expected number at offset " +
                                      base::StrFormat("%zu", start));
    }
    if (has_dot) {
      return Expr::Lit(monet::Value::MakeDbl(std::stod(num)));
    }
    return Expr::Lit(monet::Value::MakeInt(std::stoll(num)));
  }

  base::Result<ExprPtr> ParsePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return base::Status::ParseError("unexpected end of query");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')'");
      }
      return inner;
    }
    if (c == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
      if (pos_ >= text_.size()) {
        return base::Status::ParseError("unterminated string literal");
      }
      std::string s(text_.substr(start, pos_ - start));
      ++pos_;
      return Expr::Lit(monet::Value::MakeStr(std::move(s)));
    }
    if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.') {
      return ParseNumber();
    }
    std::string ident = PeekIdent();
    if (ident.empty()) {
      return base::Status::ParseError(
          base::StrFormat("unexpected character '%c' at offset %zu", c, pos_));
    }
    ConsumeIdent();
    if (ident == "map" || ident == "select") {
      if (!Consume('[')) {
        return base::Status::ParseError("expected '[' after " + ident);
      }
      auto body = ParseOr();
      if (!body.ok()) return body;
      if (!Consume(']')) {
        return base::Status::ParseError("expected ']' closing " + ident);
      }
      if (!Consume('(')) {
        return base::Status::ParseError("expected '(' after " + ident + "[..]");
      }
      auto set = ParseOr();
      if (!set.ok()) return set;
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')' closing " + ident);
      }
      return ident == "map" ? Expr::Map(body.TakeValue(), set.TakeValue())
                            : Expr::Select(body.TakeValue(), set.TakeValue());
    }
    if (ident == "semijoin") {
      if (!Consume('(')) {
        return base::Status::ParseError("expected '(' after semijoin");
      }
      auto left = ParseOr();
      if (!left.ok()) return left;
      if (!Consume(',')) {
        return base::Status::ParseError("expected ',' in semijoin");
      }
      auto right = ParseOr();
      if (!right.ok()) return right;
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')' closing semijoin");
      }
      return Expr::SemiJoin(left.TakeValue(), right.TakeValue());
    }
    if (ident == "sum" || ident == "count" || ident == "max" ||
        ident == "min" || ident == "avg" || ident == "pand" ||
        ident == "por") {
      if (!Consume('(')) {
        return base::Status::ParseError("expected '(' after " + ident);
      }
      auto arg = ParseOr();
      if (!arg.ok()) return arg;
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')' closing " + ident);
      }
      AggKind kind = AggKind::kSum;
      if (ident == "count") kind = AggKind::kCount;
      if (ident == "max") kind = AggKind::kMax;
      if (ident == "min") kind = AggKind::kMin;
      if (ident == "avg") kind = AggKind::kAvg;
      if (ident == "pand") kind = AggKind::kProd;
      if (ident == "por") kind = AggKind::kProbOr;
      return Expr::Agg(kind, arg.TakeValue());
    }
    if (ident == "getBL") {
      if (!Consume('(')) {
        return base::Status::ParseError("expected '(' after getBL");
      }
      auto rep = ParseOr();
      if (!rep.ok()) return rep;
      if (!Consume(',')) {
        return base::Status::ParseError("expected ',' after getBL rep arg");
      }
      std::string qvar = ConsumeIdent();
      if (qvar.empty()) {
        return base::Status::ParseError("expected query variable in getBL");
      }
      if (!Consume(',')) {
        return base::Status::ParseError("expected ',' after getBL query arg");
      }
      std::string statsvar = ConsumeIdent();
      if (statsvar.empty()) {
        return base::Status::ParseError("expected stats variable in getBL");
      }
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')' closing getBL");
      }
      return Expr::GetBL(rep.TakeValue(), std::move(qvar),
                         std::move(statsvar));
    }
    if (ident == "topN") {
      if (!Consume('(')) {
        return base::Status::ParseError("expected '(' after topN");
      }
      auto set = ParseOr();
      if (!set.ok()) return set;
      if (!Consume(',')) {
        return base::Status::ParseError("expected ',' in topN");
      }
      auto n = ParseNumber();
      if (!n.ok()) return n;
      if (!Consume(')')) {
        return base::Status::ParseError("expected ')' closing topN");
      }
      return Expr::TopN(set.TakeValue(), n.value()->literal.i());
    }
    if (ident == "THIS") {
      ExprPtr out = Expr::This();
      while (Consume('.')) {
        std::string field = ConsumeIdent();
        if (field.empty()) {
          return base::Status::ParseError("expected field name after '.'");
        }
        out = Expr::Field(out, std::move(field));
      }
      return out;
    }
    // Named set or bound variable (optionally with field access).
    ExprPtr out = Expr::Var(ident);
    while (Consume('.')) {
      std::string field = ConsumeIdent();
      if (field.empty()) {
        return base::Status::ParseError("expected field name after '.'");
      }
      out = Expr::Field(out, std::move(field));
    }
    return out;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

base::Result<ExprPtr> ParseExpr(std::string_view text) {
  return ExprParser(text).Parse();
}

}  // namespace mirror::moa
