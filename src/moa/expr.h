#ifndef MIRROR_MOA_EXPR_H_
#define MIRROR_MOA_EXPR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "monet/value.h"

namespace mirror::moa {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Aggregate functions over sets. kProd and kProbOr are the inference
/// network's probabilistic AND / OR combinations (InQuery's #and, #or),
/// written `pand(...)` and `por(...)` in queries.
enum class AggKind { kSum, kCount, kMax, kMin, kAvg, kProd, kProbOr };

/// Comparison operators in selection predicates.
enum class CmpKind { kEq, kNeq, kLt, kLe, kGt, kGe };

/// Scalar arithmetic in map bodies.
enum class ArithKind { kAdd, kSub, kMul, kDiv };

/// A Moa query expression. The surface syntax is the paper's, e.g.
///
///   map[sum(THIS)](
///     map[getBL(THIS.annotation, query, stats)]( TraditionalImgLib ));
///
/// Operators: `map[body](set)`, `select[pred](set)`,
/// `semijoin(set_a, set_b)` (elements of a whose oid appears in b),
/// aggregates `sum/count/max/min/avg(expr)`, `getBL(rep, qvar, statsvar)`,
/// `topN(set, n)`, field access `THIS.field`, literals, comparisons and
/// arithmetic, `and`/`or` in predicates.
struct Expr {
  enum class Op {
    kMap,       // children: {body, set}
    kSelect,    // children: {pred, set}
    kSemiJoin,  // children: {left_set, right_set}
    kAgg,       // children: {arg}; agg
    kGetBL,     // children: {rep (field access)}; qvar, statsvar
    kTopN,      // children: {set}; n
    kThis,      // the current element inside map/select brackets
    kField,     // children: {base}; name
    kVarRef,    // name: named set or bound variable
    kLit,       // literal: int/dbl/str
    kCmp,       // children: {lhs, rhs}; cmp
    kArith,     // children: {lhs, rhs}; arith
    kAnd,       // children: {lhs, rhs}
    kOr,        // children: {lhs, rhs}
  };

  Op op;
  std::vector<ExprPtr> children;
  std::string name;      // kField, kVarRef
  std::string qvar;      // kGetBL: query binding name
  std::string statsvar;  // kGetBL: stats binding name
  AggKind agg = AggKind::kSum;
  CmpKind cmp = CmpKind::kEq;
  ArithKind arith = ArithKind::kAdd;
  monet::Value literal;  // kLit
  int64_t n = 0;         // kTopN

  /// Canonical rendering (re-parseable for the supported grammar).
  std::string ToString() const;

  // Builder helpers (used by tests and the optimizer).
  static ExprPtr Map(ExprPtr body, ExprPtr set);
  static ExprPtr Select(ExprPtr pred, ExprPtr set);
  static ExprPtr SemiJoin(ExprPtr left, ExprPtr right);
  static ExprPtr Agg(AggKind kind, ExprPtr arg);
  static ExprPtr GetBL(ExprPtr rep, std::string qvar, std::string statsvar);
  static ExprPtr TopN(ExprPtr set, int64_t n);
  static ExprPtr This();
  static ExprPtr Field(ExprPtr base, std::string name);
  static ExprPtr Var(std::string name);
  static ExprPtr Lit(monet::Value v);
  static ExprPtr Cmp(CmpKind kind, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Arith(ArithKind kind, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
};

/// Parses a query expression in the paper's surface syntax. A trailing
/// ';' is allowed.
base::Result<ExprPtr> ParseExpr(std::string_view text);

}  // namespace mirror::moa

#endif  // MIRROR_MOA_EXPR_H_
