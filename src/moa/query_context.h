#ifndef MIRROR_MOA_QUERY_CONTEXT_H_
#define MIRROR_MOA_QUERY_CONTEXT_H_

#include <map>
#include <string>
#include <vector>

#include "base/str_util.h"
#include "ir/vocabulary.h"

namespace mirror::moa {

/// One query term with its #wsum weight.
struct WeightedTerm {
  std::string term;
  double weight = 1.0;
};

/// Variable bindings for query evaluation: the `query` argument of the
/// paper's `getBL(THIS.annotation, query, stats)` refers to "a set of
/// query terms" bound in this context (built by the user, the thesaurus
/// daemon, or relevance feedback).
class QueryContext {
 public:
  /// Binds `name` to a weighted term set, replacing any previous binding.
  void Bind(const std::string& name, std::vector<WeightedTerm> terms) {
    bindings_[name] = std::move(terms);
  }

  /// Convenience: binds unweighted terms.
  void BindTerms(const std::string& name,
                 const std::vector<std::string>& terms) {
    std::vector<WeightedTerm> weighted;
    weighted.reserve(terms.size());
    for (const std::string& t : terms) weighted.push_back({t, 1.0});
    Bind(name, std::move(weighted));
  }

  /// All bindings, name-ordered. Marshalling (daemon/wire.h) and
  /// diagnostics iterate this; queries use Find().
  const std::map<std::string, std::vector<WeightedTerm>>& bindings() const {
    return bindings_;
  }

  /// Looks up a binding, or nullptr.
  const std::vector<WeightedTerm>* Find(const std::string& name) const {
    auto it = bindings_.find(name);
    return it == bindings_.end() ? nullptr : &it->second;
  }

  /// Deterministic rendering of every binding. Flattened plans embed the
  /// resolved query terms as constant BATs, so a plan-cache key must
  /// include the bindings the plan was compiled under. Names and terms
  /// are length-prefixed so no choice of characters inside them can make
  /// two different binding sets render identically.
  std::string CacheKey() const {
    std::string out;
    for (const auto& [name, terms] : bindings_) {
      out += base::StrFormat("%zu:", name.size());
      out += name;
      out += base::StrFormat("=%zu{", terms.size());
      for (const WeightedTerm& wt : terms) {
        out += base::StrFormat("%zu:", wt.term.size());
        out += wt.term;
        out += base::StrFormat(":%.17g;", wt.weight);
      }
      out += '}';
    }
    return out;
  }

 private:
  std::map<std::string, std::vector<WeightedTerm>> bindings_;
};

/// A query binding resolved against one CONTREP field's vocabulary.
/// Duplicate spellings merge (their weights sum — the inference network's
/// weighted sum is linear in the weights, so this preserves semantics and
/// keeps the flattened plans positionally aligned). Terms outside the
/// vocabulary ("unknown") occur in no document; they contribute the
/// default belief to every score through their summed weight.
struct ResolvedQuery {
  std::vector<std::pair<int64_t, double>> present;  // (term id, weight)
  double total_weight = 0.0;    // all terms, including unknown
  double unknown_weight = 0.0;  // unknown terms only
  int64_t unknown_count = 0;    // distinct unknown spellings
  /// Distinct terms overall (present + unknown): the cardinality of the
  /// belief set getBL produces per document.
  int64_t term_count = 0;
};

/// Resolves the weighted terms of a binding against `vocab`.
inline ResolvedQuery ResolveQuery(const std::vector<WeightedTerm>& terms,
                                  const ir::Vocabulary& vocab) {
  // Merge duplicates first, preserving first-occurrence order.
  std::vector<WeightedTerm> merged;
  std::map<std::string, size_t> position;
  for (const WeightedTerm& wt : terms) {
    auto [it, inserted] = position.emplace(wt.term, merged.size());
    if (inserted) {
      merged.push_back(wt);
    } else {
      merged[it->second].weight += wt.weight;
    }
  }
  ResolvedQuery out;
  for (const WeightedTerm& wt : merged) {
    out.total_weight += wt.weight;
    out.term_count += 1;
    int64_t id = vocab.Lookup(wt.term);
    if (id >= 0) {
      out.present.emplace_back(id, wt.weight);
    } else {
      out.unknown_weight += wt.weight;
      out.unknown_count += 1;
    }
  }
  return out;
}

}  // namespace mirror::moa

#endif  // MIRROR_MOA_QUERY_CONTEXT_H_
