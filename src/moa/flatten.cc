#include "moa/flatten.h"

#include <cmath>
#include <memory>

#include "base/str_util.h"

namespace mirror::moa {

namespace mil = monet::mil;
using monet::Bat;
using monet::BinOp;
using monet::CmpOp;
using monet::Column;
using monet::UnOp;
using monet::Value;

namespace {

/// The compile-time shape of a subexpression.
struct Compiled {
  enum class Kind { kScope, kBat, kScalar };
  Kind kind = Kind::kBat;
  // kScope: a stored set, possibly restricted to candidate oids.
  const FlatSet* set = nullptr;
  int candidates = -1;  // register of a BAT whose heads are surviving oids
  // kBat / kScalar: the value register.
  int reg = -1;
};

class Compiler {
 public:
  Compiler(const Database* db, const QueryContext* ctx,
           const FlattenOptions& options)
      : db_(db), ctx_(ctx), options_(options) {}

  base::Result<mil::Program> Run(const ExprPtr& expr) {
    auto out = CompileNode(expr);
    if (!out.ok()) return out.status();
    Compiled c = out.TakeValue();
    int result = -1;
    switch (c.kind) {
      case Compiled::Kind::kScalar:
      case Compiled::Kind::kBat:
        result = c.reg;
        break;
      case Compiled::Kind::kScope: {
        // A bare set scan results in its oid identity BAT.
        auto base = BaseReg(c);
        if (!base.ok()) return base.status();
        result = EmitUnary(mil::OpCode::kMirror, base.value());
        break;
      }
    }
    prog_.set_result_reg(result);
    return std::move(prog_);
  }

 private:
  // -- Emission helpers ----------------------------------------------------

  int EmitLoad(const std::string& name) {
    mil::Instr i;
    i.op = mil::OpCode::kLoadNamed;
    i.name = name;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitConst(Bat bat) {
    mil::Instr i;
    i.op = mil::OpCode::kConstBat;
    i.const_bat = std::make_shared<const Bat>(std::move(bat));
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitUnary(mil::OpCode op, int src) {
    mil::Instr i;
    i.op = op;
    i.src0 = src;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitBinary(mil::OpCode op, int src0, int src1) {
    mil::Instr i;
    i.op = op;
    i.src0 = src0;
    i.src1 = src1;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitSelectCmp(int src, CmpOp cmp, Value v) {
    mil::Instr i;
    i.op = mil::OpCode::kSelectCmp;
    i.src0 = src;
    i.cmp_op = cmp;
    i.imm0 = std::move(v);
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitMapScalar(int src, BinOp op, Value v) {
    mil::Instr i;
    i.op = mil::OpCode::kMapBinaryScalar;
    i.src0 = src;
    i.bin_op = op;
    i.imm0 = std::move(v);
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitMapBinary(int l, int r, BinOp op) {
    mil::Instr i;
    i.op = mil::OpCode::kMapBinary;
    i.src0 = l;
    i.src1 = r;
    i.bin_op = op;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitFill(int src, Value v) {
    mil::Instr i;
    i.op = mil::OpCode::kFillTail;
    i.src0 = src;
    i.imm0 = std::move(v);
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitBelief(int tf, int df, int len, const ir::CollectionStats& stats,
                 const monet::BeliefParams& params) {
    mil::Instr i;
    i.op = mil::OpCode::kBelief;
    i.src0 = tf;
    i.src1 = df;
    i.src2 = len;
    i.num_docs = stats.num_docs;
    i.avg_doclen = stats.avg_doclen;
    i.belief = params;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitTopN(int src, int64_t n) {
    mil::Instr i;
    i.op = mil::OpCode::kTopN;
    i.src0 = src;
    i.n = n;
    i.flag0 = true;  // descending
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitScalarBin(int src0, int src1, BinOp op) {
    mil::Instr i;
    i.op = mil::OpCode::kScalarBin;
    i.src0 = src0;
    i.src1 = src1;
    i.bin_op = op;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  int EmitScalarBinImm(int src0, BinOp op, Value v) {
    mil::Instr i;
    i.op = mil::OpCode::kScalarBin;
    i.src0 = src0;
    i.bin_op = op;
    i.imm0 = std::move(v);
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  // A register holding a BAT whose heads enumerate the scope's oids.
  base::Result<int> BaseReg(const Compiled& scope) {
    if (scope.candidates >= 0) return scope.candidates;
    MIRROR_CHECK(scope.set != nullptr);
    for (const FieldBinding& f : scope.set->fields) {
      if (!f.bat_name.empty()) return EmitLoad(f.bat_name);
    }
    for (const auto& contrep : scope.set->contreps) {
      return EmitLoad(contrep->len_bat);
    }
    return base::Status::Unimplemented(
        "set '" + scope.set->name + "' has no loadable base column");
  }

  // -- Core compilation ----------------------------------------------------

  base::Result<Compiled> CompileNode(const ExprPtr& expr) {
    switch (expr->op) {
      case Expr::Op::kVarRef: {
        auto set = db_->GetSet(expr->name);
        if (!set.ok()) return set.status();
        Compiled c;
        c.kind = Compiled::Kind::kScope;
        c.set = set.value();
        return c;
      }
      case Expr::Op::kSelect:
        return CompileSelect(expr);
      case Expr::Op::kSemiJoin:
        return CompileSemiJoin(expr);
      case Expr::Op::kMap:
        return CompileMap(expr);
      case Expr::Op::kAgg:
        return CompileAgg(expr);
      case Expr::Op::kTopN: {
        auto inner = CompileNode(expr->children[0]);
        if (!inner.ok()) return inner;
        if (inner.value().kind != Compiled::Kind::kBat) {
          return base::Status::TypeError("topN needs a mapped set");
        }
        Compiled c;
        c.kind = Compiled::Kind::kBat;
        c.reg = EmitTopN(inner.value().reg, expr->n);
        return c;
      }
      default:
        return base::Status::Unimplemented("cannot flatten: " +
                                           expr->ToString());
    }
  }

  base::Result<Compiled> CompileSelect(const ExprPtr& expr) {
    auto inner = CompileNode(expr->children[1]);
    if (!inner.ok()) return inner;
    Compiled base = inner.TakeValue();
    if (base.kind == Compiled::Kind::kBat) {
      // Selection over a mapped set: predicate on THIS.
      auto reg = CompileValuePred(expr->children[0], base.reg);
      if (!reg.ok()) return reg.status();
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = reg.value();
      return c;
    }
    if (base.kind != Compiled::Kind::kScope) {
      return base::Status::TypeError("select over a scalar");
    }
    auto cand = CompilePred(expr->children[0], base);
    if (!cand.ok()) return cand.status();
    Compiled c;
    c.kind = Compiled::Kind::kScope;
    c.set = base.set;
    c.candidates = cand.value();
    return c;
  }

  // Predicate over a mapped BAT (THIS is the value).
  base::Result<int> CompileValuePred(const ExprPtr& pred, int bat_reg) {
    if (pred->op == Expr::Op::kCmp) {
      const ExprPtr& lhs = pred->children[0];
      const ExprPtr& rhs = pred->children[1];
      if (lhs->op == Expr::Op::kThis && rhs->op == Expr::Op::kLit) {
        return EmitSelectCmp(bat_reg, ToCmpOp(pred->cmp), rhs->literal);
      }
      if (rhs->op == Expr::Op::kThis && lhs->op == Expr::Op::kLit) {
        return EmitSelectCmp(bat_reg, FlipCmp(ToCmpOp(pred->cmp)),
                             lhs->literal);
      }
    }
    if (pred->op == Expr::Op::kAnd) {
      auto l = CompileValuePred(pred->children[0], bat_reg);
      if (!l.ok()) return l;
      return CompileValuePred(pred->children[1], l.value());
    }
    return base::Status::Unimplemented(
        "unsupported predicate over mapped set: " + pred->ToString());
  }

  static CmpOp ToCmpOp(CmpKind kind) {
    switch (kind) {
      case CmpKind::kEq:
        return CmpOp::kEq;
      case CmpKind::kNeq:
        return CmpOp::kNeq;
      case CmpKind::kLt:
        return CmpOp::kLt;
      case CmpKind::kLe:
        return CmpOp::kLe;
      case CmpKind::kGt:
        return CmpOp::kGt;
      case CmpKind::kGe:
        return CmpOp::kGe;
    }
    MIRROR_UNREACHABLE();
    return CmpOp::kEq;
  }

  static CmpOp FlipCmp(CmpOp op) {
    switch (op) {
      case CmpOp::kLt:
        return CmpOp::kGt;
      case CmpOp::kLe:
        return CmpOp::kGe;
      case CmpOp::kGt:
        return CmpOp::kLt;
      case CmpOp::kGe:
        return CmpOp::kLe;
      default:
        return op;  // symmetric
    }
  }

  // Predicate over a set scope; returns a candidates register.
  base::Result<int> CompilePred(const ExprPtr& pred, const Compiled& scope) {
    switch (pred->op) {
      case Expr::Op::kCmp: {
        const ExprPtr& lhs = pred->children[0];
        const ExprPtr& rhs = pred->children[1];
        const ExprPtr* field = nullptr;
        const ExprPtr* lit = nullptr;
        CmpOp cmp = ToCmpOp(pred->cmp);
        if (lhs->op == Expr::Op::kField && rhs->op == Expr::Op::kLit) {
          field = &lhs;
          lit = &rhs;
        } else if (rhs->op == Expr::Op::kField &&
                   lhs->op == Expr::Op::kLit) {
          field = &rhs;
          lit = &lhs;
          cmp = FlipCmp(cmp);
        } else {
          return base::Status::Unimplemented(
              "selection predicates must compare THIS.<field> with a "
              "literal: " +
              pred->ToString());
        }
        auto bat = LoadScopedField(**field, scope);
        if (!bat.ok()) return bat.status();
        return EmitSelectCmp(bat.value(), cmp, (*lit)->literal);
      }
      case Expr::Op::kAnd: {
        auto l = CompilePred(pred->children[0], scope);
        if (!l.ok()) return l;
        // Thread the left candidates into the right side (sequential
        // filtering): strictly fewer tuples than independent evaluation.
        Compiled threaded = scope;
        if (options_.optimize) {
          threaded.candidates = l.value();
          return CompilePred(pred->children[1], threaded);
        }
        auto r = CompilePred(pred->children[1], scope);
        if (!r.ok()) return r;
        return EmitBinary(mil::OpCode::kSemiJoinHead, l.value(), r.value());
      }
      case Expr::Op::kOr: {
        auto l = CompilePred(pred->children[0], scope);
        if (!l.ok()) return l;
        auto r = CompilePred(pred->children[1], scope);
        if (!r.ok()) return r;
        // Union of candidates; AntiJoin the right side first so Concat
        // introduces no duplicate oids.
        int r_minus_l =
            EmitBinary(mil::OpCode::kAntiJoinHead, r.value(), l.value());
        return EmitBinary(mil::OpCode::kConcat, l.value(), r_minus_l);
      }
      default:
        return base::Status::Unimplemented("unsupported predicate: " +
                                           pred->ToString());
    }
  }

  // Loads THIS.<field> restricted to the scope's candidates.
  base::Result<int> LoadScopedField(const Expr& field_expr,
                                    const Compiled& scope) {
    if (field_expr.children[0]->op != Expr::Op::kThis) {
      return base::Status::Unimplemented(
          "only THIS.<field> references are supported");
    }
    MIRROR_CHECK(scope.set != nullptr);
    const FieldBinding* binding = scope.set->FindField(field_expr.name);
    if (binding == nullptr || binding->bat_name.empty()) {
      return base::Status::NotFound(
          "no atomic field '" + field_expr.name + "' in " + scope.set->name);
    }
    int reg = EmitLoad(binding->bat_name);
    if (scope.candidates >= 0) {
      reg = EmitBinary(mil::OpCode::kSemiJoinHead, reg, scope.candidates);
    }
    return reg;
  }

  base::Result<Compiled> CompileSemiJoin(const ExprPtr& expr) {
    auto left = CompileNode(expr->children[0]);
    if (!left.ok()) return left;
    auto right = CompileNode(expr->children[1]);
    if (!right.ok()) return right;
    int right_reg = -1;
    if (right.value().kind == Compiled::Kind::kScope) {
      auto base = BaseReg(right.value());
      if (!base.ok()) return base.status();
      right_reg = base.value();
    } else if (right.value().kind == Compiled::Kind::kBat) {
      right_reg = right.value().reg;
    } else {
      return base::Status::TypeError("semijoin's right side must be a set");
    }
    if (left.value().kind == Compiled::Kind::kBat) {
      // Mapped left side: filter the result BAT by oid membership.
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = EmitBinary(mil::OpCode::kSemiJoinHead, left.value().reg,
                         right_reg);
      return c;
    }
    if (left.value().kind != Compiled::Kind::kScope) {
      return base::Status::TypeError("semijoin's left side must be a set");
    }
    auto left_base = BaseReg(left.value());
    if (!left_base.ok()) return left_base.status();
    Compiled c;
    c.kind = Compiled::Kind::kScope;
    c.set = left.value().set;
    c.candidates =
        EmitBinary(mil::OpCode::kSemiJoinHead, left_base.value(), right_reg);
    return c;
  }

  base::Result<Compiled> CompileMap(const ExprPtr& expr) {
    const ExprPtr& body = expr->children[0];
    const ExprPtr& source = expr->children[1];

    // Fused ranking pattern: map[AGG(THIS)](map[getBL(...)](X)).
    if (body->op == Expr::Op::kAgg &&
        body->children[0]->op == Expr::Op::kThis &&
        source->op == Expr::Op::kMap &&
        source->children[0]->op == Expr::Op::kGetBL) {
      auto scope = CompileNode(source->children[1]);
      if (!scope.ok()) return scope;
      if (scope.value().kind != Compiled::Kind::kScope) {
        return base::Status::TypeError("getBL needs a stored set");
      }
      return CompileGetBLAggregate(body->agg, source->children[0],
                                   scope.value());
    }

    auto inner = CompileNode(source);
    if (!inner.ok()) return inner;
    Compiled base = inner.TakeValue();

    if (body->op == Expr::Op::kGetBL) {
      if (base.kind != Compiled::Kind::kScope) {
        return base::Status::TypeError("getBL needs a stored set");
      }
      auto evidence = CompileGetBLEvidence(body, base);
      if (!evidence.ok()) return evidence.status();
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = evidence.value().weighted_beliefs_by_doc;
      return c;
    }

    if (base.kind == Compiled::Kind::kScope) {
      auto reg = CompileScalarMap(body, base);
      if (!reg.ok()) return reg.status();
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = reg.value();
      return c;
    }
    if (base.kind == Compiled::Kind::kBat) {
      auto reg = CompileScalarMapOverBat(body, base.reg);
      if (!reg.ok()) return reg.status();
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = reg.value();
      return c;
    }
    return base::Status::TypeError("map over a scalar");
  }

  // Scalar map body over a stored-set scope.
  base::Result<int> CompileScalarMap(const ExprPtr& body,
                                     const Compiled& scope) {
    switch (body->op) {
      case Expr::Op::kField:
        return LoadScopedField(*body, scope);
      case Expr::Op::kThis: {
        auto base = BaseReg(scope);
        if (!base.ok()) return base;
        return EmitUnary(mil::OpCode::kMirror, base.value());
      }
      case Expr::Op::kLit: {
        auto base = BaseReg(scope);
        if (!base.ok()) return base;
        return EmitFill(base.value(), body->literal);
      }
      case Expr::Op::kArith: {
        const ExprPtr& lhs = body->children[0];
        const ExprPtr& rhs = body->children[1];
        BinOp op = ToBinOp(body->arith);
        if (rhs->op == Expr::Op::kLit) {
          auto l = CompileScalarMap(lhs, scope);
          if (!l.ok()) return l;
          return EmitMapScalar(l.value(), op, rhs->literal);
        }
        if (lhs->op == Expr::Op::kLit) {
          auto r = CompileScalarMap(rhs, scope);
          if (!r.ok()) return r;
          // lit (op) x: addition/multiplication commute; subtraction
          // negates; division is not supported in this position.
          if (body->arith == ArithKind::kAdd ||
              body->arith == ArithKind::kMul) {
            return EmitMapScalar(r.value(), op, lhs->literal);
          }
          if (body->arith == ArithKind::kSub) {
            int t = EmitMapScalar(r.value(), BinOp::kSub, lhs->literal);
            return EmitUnaryOp(t, UnOp::kNeg);
          }
          return base::Status::Unimplemented(
              "literal / expression is not supported in map bodies");
        }
        auto l = CompileScalarMap(lhs, scope);
        if (!l.ok()) return l;
        auto r = CompileScalarMap(rhs, scope);
        if (!r.ok()) return r;
        return EmitMapBinary(l.value(), r.value(), op);
      }
      default:
        return base::Status::Unimplemented("unsupported map body: " +
                                           body->ToString());
    }
  }

  int EmitUnaryOp(int src, UnOp op) {
    mil::Instr i;
    i.op = mil::OpCode::kMapUnary;
    i.src0 = src;
    i.un_op = op;
    i.dst = prog_.NewReg();
    return prog_.Emit(std::move(i));
  }

  // Scalar map body where THIS is the tail of an already-mapped BAT.
  base::Result<int> CompileScalarMapOverBat(const ExprPtr& body, int bat) {
    switch (body->op) {
      case Expr::Op::kThis:
        return bat;
      case Expr::Op::kArith: {
        const ExprPtr& lhs = body->children[0];
        const ExprPtr& rhs = body->children[1];
        BinOp op = ToBinOp(body->arith);
        if (rhs->op == Expr::Op::kLit) {
          auto l = CompileScalarMapOverBat(lhs, bat);
          if (!l.ok()) return l;
          return EmitMapScalar(l.value(), op, rhs->literal);
        }
        if (lhs->op == Expr::Op::kLit &&
            (body->arith == ArithKind::kAdd ||
             body->arith == ArithKind::kMul)) {
          auto r = CompileScalarMapOverBat(rhs, bat);
          if (!r.ok()) return r;
          return EmitMapScalar(r.value(), op, lhs->literal);
        }
        auto l = CompileScalarMapOverBat(lhs, bat);
        if (!l.ok()) return l;
        auto r = CompileScalarMapOverBat(rhs, bat);
        if (!r.ok()) return r;
        return EmitMapBinary(l.value(), r.value(), op);
      }
      default:
        return base::Status::Unimplemented(
            "unsupported map body over mapped set: " + body->ToString());
    }
  }

  static BinOp ToBinOp(ArithKind kind) {
    switch (kind) {
      case ArithKind::kAdd:
        return BinOp::kAdd;
      case ArithKind::kSub:
        return BinOp::kSub;
      case ArithKind::kMul:
        return BinOp::kMul;
      case ArithKind::kDiv:
        return BinOp::kDiv;
    }
    MIRROR_UNREACHABLE();
    return BinOp::kAdd;
  }

  // -- getBL ----------------------------------------------------------------

  struct GetBLEvidence {
    int weighted_beliefs_by_doc = -1;  // (doc -> w*bel), present terms only
    int weights_by_doc = -1;           // (doc -> w), aligned
    const ContRepField* contrep = nullptr;
    ResolvedQuery query;
  };

  base::Result<GetBLEvidence> CompileGetBLEvidence(const ExprPtr& getbl,
                                                   const Compiled& scope) {
    const ExprPtr& rep = getbl->children[0];
    if (rep->op != Expr::Op::kField ||
        rep->children[0]->op != Expr::Op::kThis) {
      return base::Status::Unimplemented(
          "getBL's first argument must be THIS.<contrep field>");
    }
    MIRROR_CHECK(scope.set != nullptr);
    const ContRepField* contrep = scope.set->FindContRep(rep->name);
    if (contrep == nullptr) {
      return base::Status::NotFound("no CONTREP field '" + rep->name +
                                    "' in " + scope.set->name);
    }
    const std::vector<WeightedTerm>* binding = ctx_->Find(getbl->qvar);
    if (binding == nullptr) {
      return base::Status::NotFound("unbound query variable: " + getbl->qvar);
    }
    ResolvedQuery query = ResolveQuery(*binding, contrep->index.vocab());

    // Constant query BATs.
    std::vector<int64_t> q_terms;
    std::vector<double> q_weights;
    for (const auto& [term, w] : query.present) {
      q_terms.push_back(term);
      q_weights.push_back(w);
    }
    int qb = EmitConst(Bat::DenseInts(q_terms));
    int qw = EmitConst(Bat(Column::MakeInts(q_terms),
                           Column::MakeDbls(q_weights)));

    int term = EmitLoad(contrep->term_bat);
    int tf = EmitLoad(contrep->tf_bat);
    int doc = EmitLoad(contrep->doc_bat);
    int df = EmitLoad(contrep->df_bat);
    int len = EmitLoad(contrep->len_bat);

    const ir::CollectionStats& stats = contrep->index.stats();
    const monet::BeliefParams& params = contrep->network->params();

    GetBLEvidence out;
    out.contrep = contrep;
    out.query = std::move(query);

    if (options_.optimize) {
      // Inverted evaluation: restrict the postings BEFORE computing
      // beliefs — first by query term, then by candidate documents.
      int keep = EmitBinary(mil::OpCode::kSemiJoinTail, term, qb);
      if (scope.candidates >= 0) {
        int keep_mirror = EmitUnary(mil::OpCode::kMirror, keep);
        int pd = EmitBinary(mil::OpCode::kJoin, keep_mirror, doc);
        int cand_rev = EmitUnary(mil::OpCode::kReverse, scope.candidates);
        keep = EmitBinary(mil::OpCode::kSemiJoinTail, pd, cand_rev);
      }
      int tf_k = EmitBinary(mil::OpCode::kSemiJoinHead, tf, keep);
      int term_k = EmitBinary(mil::OpCode::kSemiJoinHead, term, keep);
      int doc_k = EmitBinary(mil::OpCode::kSemiJoinHead, doc, keep);
      int df_k = EmitBinary(mil::OpCode::kJoin, term_k, df);
      int len_k = EmitBinary(mil::OpCode::kJoin, doc_k, len);
      int bel = EmitBelief(tf_k, df_k, len_k, stats, params);
      int w_k = EmitBinary(mil::OpCode::kJoin, term_k, qw);
      int wbel = EmitMapBinary(bel, w_k, BinOp::kMul);
      int docr = EmitUnary(mil::OpCode::kReverse, doc_k);
      out.weighted_beliefs_by_doc =
          EmitBinary(mil::OpCode::kJoin, docr, wbel);
      out.weights_by_doc = EmitBinary(mil::OpCode::kJoin, docr, w_k);
      return out;
    }

    // Un-optimized translation: beliefs for every posting, filter after.
    int df_p = EmitBinary(mil::OpCode::kJoin, term, df);
    int len_p = EmitBinary(mil::OpCode::kJoin, doc, len);
    int bel_all = EmitBelief(tf, df_p, len_p, stats, params);
    int keep = EmitBinary(mil::OpCode::kSemiJoinTail, term, qb);
    int bel_k = EmitBinary(mil::OpCode::kSemiJoinHead, bel_all, keep);
    int term_k = EmitBinary(mil::OpCode::kSemiJoinHead, term, keep);
    int doc_k = EmitBinary(mil::OpCode::kSemiJoinHead, doc, keep);
    int w_k = EmitBinary(mil::OpCode::kJoin, term_k, qw);
    int wbel = EmitMapBinary(bel_k, w_k, BinOp::kMul);
    int docr = EmitUnary(mil::OpCode::kReverse, doc_k);
    int wbel_d = EmitBinary(mil::OpCode::kJoin, docr, wbel);
    int w_d = EmitBinary(mil::OpCode::kJoin, docr, w_k);
    if (scope.candidates >= 0) {
      // Candidate restriction applied after the content computation.
      wbel_d =
          EmitBinary(mil::OpCode::kSemiJoinHead, wbel_d, scope.candidates);
      w_d = EmitBinary(mil::OpCode::kSemiJoinHead, w_d, scope.candidates);
    }
    out.weighted_beliefs_by_doc = wbel_d;
    out.weights_by_doc = w_d;
    return out;
  }

  base::Result<Compiled> CompileGetBLAggregate(AggKind agg,
                                               const ExprPtr& getbl,
                                               const Compiled& scope) {
    if (agg == AggKind::kCount) {
      // count(getBL(...)) is the number of distinct query terms, for
      // every element (duplicates merge at resolution, see ResolveQuery).
      const ExprPtr& rep = getbl->children[0];
      if (rep->op != Expr::Op::kField ||
          rep->children[0]->op != Expr::Op::kThis) {
        return base::Status::Unimplemented(
            "getBL's first argument must be THIS.<contrep field>");
      }
      const ContRepField* contrep = scope.set->FindContRep(rep->name);
      if (contrep == nullptr) {
        return base::Status::NotFound("no CONTREP field '" + rep->name +
                                      "' in " + scope.set->name);
      }
      const std::vector<WeightedTerm>* binding = ctx_->Find(getbl->qvar);
      if (binding == nullptr) {
        return base::Status::NotFound("unbound query variable: " +
                                      getbl->qvar);
      }
      ResolvedQuery resolved =
          ResolveQuery(*binding, contrep->index.vocab());
      auto base = BaseReg(scope);
      if (!base.ok()) return base.status();
      Compiled c;
      c.kind = Compiled::Kind::kBat;
      c.reg = EmitFill(base.value(), Value::MakeInt(resolved.term_count));
      return c;
    }
    if (agg != AggKind::kSum && agg != AggKind::kAvg &&
        agg != AggKind::kMax && agg != AggKind::kProd &&
        agg != AggKind::kProbOr) {
      return base::Status::Unimplemented(
          "min over getBL is not flattened; use the naive engine");
    }
    auto evidence = CompileGetBLEvidence(getbl, scope);
    if (!evidence.ok()) return evidence.status();
    const GetBLEvidence& ev = evidence.value();
    double alpha = ev.contrep->network->params().alpha;
    double total_weight = ev.query.total_weight;
    double term_count = static_cast<double>(ev.query.term_count);
    auto base = BaseReg(scope);
    if (!base.ok()) return base.status();

    // Completes a per-candidate aggregate `agg_reg` into a total map:
    // documents without evidence get the constant `no_evidence`.
    auto totalize = [&](int agg_reg, double no_evidence) {
      int miss = EmitBinary(mil::OpCode::kAntiJoinHead, base.value(),
                            agg_reg);
      int fill = EmitFill(miss, Value::MakeDbl(no_evidence));
      return EmitBinary(mil::OpCode::kConcat, agg_reg, fill);
    };
    Compiled c;
    c.kind = Compiled::Kind::kBat;

    if (agg == AggKind::kSum || agg == AggKind::kAvg) {
      // score = sum(w*bel) - alpha*sum(w_present) + alpha*W per document;
      // documents without evidence score alpha*W. avg divides by |q|.
      int s = EmitUnary(mil::OpCode::kSumPerHead, ev.weighted_beliefs_by_doc);
      int sw = EmitUnary(mil::OpCode::kSumPerHead, ev.weights_by_doc);
      int swa = EmitMapScalar(sw, BinOp::kMul, Value::MakeDbl(alpha));
      int s2 = EmitMapBinary(s, swa, BinOp::kSub);
      int s3 = EmitMapScalar(s2, BinOp::kAdd,
                             Value::MakeDbl(alpha * total_weight));
      c.reg = totalize(s3, alpha * total_weight);
      if (agg == AggKind::kAvg) {
        c.reg = EmitMapScalar(c.reg, BinOp::kDiv,
                              Value::MakeDbl(term_count));
      }
      return c;
    }

    if (agg == AggKind::kMax) {
      // Beliefs never fall below alpha, so absent terms (contributing
      // alpha) can only win when nothing is present at all — which the
      // fill handles. Restricted to unweighted queries: with weights the
      // absent terms' contributions (alpha * w) are document-dependent.
      MIRROR_RETURN_IF_ERROR(RequireUnweighted(ev, "max"));
      int m = EmitUnary(mil::OpCode::kMaxPerHead,
                        ev.weighted_beliefs_by_doc);
      c.reg = totalize(m, alpha);
      return c;
    }

    // Probabilistic AND / OR (InQuery #and, #or), unweighted:
    //   pand = prod(bel_present) * alpha^(missing)
    //   por  = 1 - prod(1 - bel_present) * (1 - alpha)^(missing)
    // with missing = |q| - hits per document.
    MIRROR_RETURN_IF_ERROR(
        RequireUnweighted(ev, agg == AggKind::kProd ? "pand" : "por"));
    if (alpha <= 0.0 || alpha >= 1.0) {
      return base::Status::InvalidArgument(
          "pand/por need a default belief strictly inside (0,1)");
    }
    int hits = EmitUnary(mil::OpCode::kCountPerHead,
                         ev.weighted_beliefs_by_doc);
    int neg_hits = EmitMapScalar(hits, BinOp::kMul, Value::MakeInt(-1));
    int missing = EmitMapScalar(neg_hits, BinOp::kAdd,
                                Value::MakeDbl(term_count));
    if (agg == AggKind::kProd) {
      int p = EmitUnary(mil::OpCode::kProdPerHead,
                        ev.weighted_beliefs_by_doc);
      int log_pow = EmitMapScalar(missing, BinOp::kMul,
                                  Value::MakeDbl(std::log(alpha)));
      int pow = EmitUnaryOp(log_pow, UnOp::kExp);
      int combined = EmitMapBinary(p, pow, BinOp::kMul);
      c.reg = totalize(combined, std::pow(alpha, term_count));
      return c;
    }
    int compl_bel = EmitUnaryOp(ev.weighted_beliefs_by_doc, UnOp::kOneMinus);
    int pc = EmitUnary(mil::OpCode::kProdPerHead, compl_bel);
    int log_pow = EmitMapScalar(missing, BinOp::kMul,
                                Value::MakeDbl(std::log(1.0 - alpha)));
    int pow = EmitUnaryOp(log_pow, UnOp::kExp);
    int combined = EmitMapBinary(pc, pow, BinOp::kMul);
    int por = EmitUnaryOp(combined, UnOp::kOneMinus);
    c.reg = totalize(por, 1.0 - std::pow(1.0 - alpha, term_count));
    return c;
  }

  static base::Status RequireUnweighted(const GetBLEvidence& ev,
                                        const char* what) {
    for (const auto& [term, weight] : ev.query.present) {
      if (weight != 1.0) {
        return base::Status::Unimplemented(
            std::string(what) +
            " over getBL is only flattened for unweighted queries");
      }
    }
    return base::Status::Ok();
  }

  base::Result<Compiled> CompileAgg(const ExprPtr& expr) {
    auto inner = CompileNode(expr->children[0]);
    if (!inner.ok()) return inner;
    Compiled base = inner.TakeValue();
    Compiled c;
    c.kind = Compiled::Kind::kScalar;
    if (expr->agg == AggKind::kCount) {
      int src = -1;
      if (base.kind == Compiled::Kind::kBat) {
        src = base.reg;
      } else if (base.kind == Compiled::Kind::kScope) {
        auto b = BaseReg(base);
        if (!b.ok()) return b.status();
        src = b.value();
      } else {
        return base::Status::TypeError("count over a scalar");
      }
      c.reg = EmitUnary(mil::OpCode::kScalarCount, src);
      return c;
    }
    if (expr->agg == AggKind::kSum && base.kind == Compiled::Kind::kBat) {
      c.reg = EmitUnary(mil::OpCode::kScalarSum, base.reg);
      return c;
    }
    if (expr->agg == AggKind::kAvg && base.kind == Compiled::Kind::kBat) {
      // avg = sum / count, fused over the candidate view at execution
      // (both aggregates read the same unmaterialized register). The
      // naive oracle defines avg of the empty set as 0, so divide by
      // max(count, 1): sum is 0 there and the quotient matches.
      int sum = EmitUnary(mil::OpCode::kScalarSum, base.reg);
      int count = EmitUnary(mil::OpCode::kScalarCount, base.reg);
      int denom = EmitScalarBinImm(count, BinOp::kMax, Value::MakeDbl(1));
      c.reg = EmitScalarBin(sum, denom, BinOp::kDiv);
      return c;
    }
    if ((expr->agg == AggKind::kMax || expr->agg == AggKind::kMin) &&
        base.kind == Compiled::Kind::kBat) {
      // max = sum(topN(1, descending)), min the ascending mirror: the
      // bounded top-1 selection keeps the extremum's single row and the
      // scalar sum of a one-row BAT reads it out. Both instructions fuse
      // over candidate views, and topN(1) of the empty set is empty,
      // whose sum is 0 — the naive oracle's extremum of the empty set.
      // Under OptimizeMil the pair collapses into one scalar.fold(max|
      // min) instruction (OptimizerReport.fold_rewrites), which skips the
      // bounded sort and doubles as the shard engine's cross-shard merge
      // form; this emission stays as the O0 baseline.
      mil::Instr top;
      top.op = mil::OpCode::kTopN;
      top.src0 = base.reg;
      top.n = 1;
      top.flag0 = expr->agg == AggKind::kMax;  // descending
      top.dst = prog_.NewReg();
      int one = prog_.Emit(std::move(top));
      c.reg = EmitUnary(mil::OpCode::kScalarSum, one);
      return c;
    }
    return base::Status::Unimplemented(
        "only sum/count/avg/max/min scalar aggregates are flattened");
  }

  const Database* db_;
  const QueryContext* ctx_;
  FlattenOptions options_;
  mil::Program prog_;
};

}  // namespace

base::Result<mil::Program> Flattener::Compile(const ExprPtr& expr) const {
  std::string key;
  if (exec_ctx_ != nullptr) {
    // Flattened programs embed the resolved query bindings (constant
    // query-term BATs), so the key covers expression text, options and
    // bindings. Valid until the database is re-loaded; see
    // ExecutionContext::InvalidatePlans.
    key = std::string("flat:") + (options_.optimize ? "O1:" : "O0:") +
          mil::ExecutionContext::NormalizeText(expr->ToString()) + "|" +
          ctx_->CacheKey();
    if (std::shared_ptr<const mil::Program> plan = exec_ctx_->CachedPlan(key)) {
      return *plan;
    }
  }
  auto program = Compiler(db_, ctx_, options_).Run(expr);
  if (program.ok() && exec_ctx_ != nullptr) {
    exec_ctx_->CachePlan(key, program.value());
  }
  return program;
}

}  // namespace mirror::moa
