#ifndef MIRROR_MOA_DATABASE_H_
#define MIRROR_MOA_DATABASE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "ir/content_index.h"
#include "ir/inference_network.h"
#include "ir/text_pipeline.h"
#include "moa/moa_value.h"
#include "moa/structure_type.h"
#include "monet/catalog.h"

namespace mirror::moa {

/// The indexed content representation of one CONTREP field of a stored
/// set: a content index (vocabulary, postings, statistics), its inference
/// network, and the names of its BAT export in the physical catalog.
struct ContRepField {
  std::string set_name;
  std::string field_name;
  BaseType media = BaseType::kText;

  ir::ContentIndex index;
  std::unique_ptr<ir::InferenceNetwork> network;

  // Catalog names of the BAT export (posting-aligned; see ContentIndex).
  std::string doc_bat;
  std::string term_bat;
  std::string tf_bat;
  std::string df_bat;
  std::string len_bat;
  std::string vocab_bat;  // term id -> term spelling
};

/// Physical binding of one top-level tuple field of a stored set.
struct FieldBinding {
  std::string name;
  StructTypePtr type;
  /// kAtomic: the catalog BAT name (void oid -> value).
  std::string bat_name;
  /// kAtomic of Vector: one BAT per dimension.
  std::vector<std::string> dim_bat_names;
  /// kContRep: index of the field in FlatSet::contreps.
  int contrep_index = -1;
  /// Nested kSet of TUPLE: association BAT (parent oid -> child oid) and
  /// per-subfield child BATs (void child oid -> value).
  std::string assoc_bat_name;
  std::vector<FieldBinding> sub_fields;
};

/// A loaded named set: `define <name> as SET<TUPLE<...>>` plus its data in
/// both representations — the materialized objects (for the naive
/// object-at-a-time interpreter, experiment E1's baseline) and the
/// vertically fragmented BAT layout in the catalog (for the flattened
/// engine).
struct FlatSet {
  std::string name;
  StructTypePtr type;         // SET<TUPLE<...>>
  size_t cardinality = 0;
  std::vector<FieldBinding> fields;
  std::vector<std::unique_ptr<ContRepField>> contreps;
  std::vector<MoaValue> objects;  // the OO baseline representation

  /// Field binding by name, or nullptr.
  const FieldBinding* FindField(std::string_view field_name) const;

  /// CONTREP field by name, or nullptr.
  const ContRepField* FindContRep(std::string_view field_name) const;
};

/// The logical-layer database: schema definitions plus loaded sets, all
/// backed by a single physical BAT catalog. (The full Mirror DBMS in
/// src/mirror adds the daemon environment and the retrieval application
/// on top.)
class Database {
 public:
  Database();

  /// Parses and registers a schema ("define X as SET<TUPLE<...>>;").
  /// The set starts empty; fill it with Load().
  base::Status Define(std::string_view schema_text);

  /// Registers an already-parsed schema.
  base::Status DefineParsed(const SchemaDef& def);

  /// Bulk-loads objects into a defined set (replacing existing contents).
  /// Each object must be a TUPLE matching the element type; CONTREP
  /// fields accept kContRep values (pre-tokenized terms) or atomic str
  /// values (run through the text pipeline). Builds all BATs and content
  /// indexes.
  base::Status Load(const std::string& set_name,
                    std::vector<MoaValue> objects);

  /// Looks up a loaded (or defined-empty) set.
  base::Result<const FlatSet*> GetSet(const std::string& set_name) const;

  /// Names of all defined sets, sorted.
  std::vector<std::string> SetNames() const;

  /// Persists the whole database — schemas plus the physical BAT catalog
  /// — into `dir` (created if needed).
  base::Status SaveTo(const std::string& dir) const;

  /// Restores a database persisted with SaveTo, replacing the current
  /// contents. Content indexes (and the materialized objects used by the
  /// naive interpreter) are reconstructed from the BAT layout.
  base::Status LoadFrom(const std::string& dir);

  /// The instant-recovery schema restore: re-defines every set persisted
  /// in `dir` (schema + cardinality) and derives field bindings purely
  /// from the deterministic BAT name scheme against `available` (the
  /// checkpoint manifest's names) — WITHOUT touching the catalog, which
  /// stays empty until recovery loads fragments on demand. Sets whose
  /// fields need reconstructed in-memory state (CONTREP content indexes,
  /// nested sets) cannot bind lazily; their names are appended to
  /// `needs_eager` and the caller completes them with
  /// RestoreSetFromCatalog once their BATs are recovered. Lazily bound
  /// sets carry no materialized objects, so only flattened execution is
  /// valid on them (the daemon's only mode).
  base::Status RestoreSchemasLazy(const std::string& dir,
                                  const std::set<std::string>& available,
                                  std::vector<std::string>* needs_eager);

  /// Rebuilds one set's bindings, content indexes and materialized
  /// objects from the already-populated catalog (the eager completion
  /// for sets RestoreSchemasLazy reported in `needs_eager`).
  base::Status RestoreSetFromCatalog(const std::string& set_name);

  monet::Catalog* catalog() { return &catalog_; }
  const monet::Catalog& catalog() const { return catalog_; }

  const ir::TextPipeline& text_pipeline() const { return text_pipeline_; }

 private:
  base::Status LoadField(FlatSet* set, FieldBinding* binding,
                         const std::vector<MoaValue>& objects,
                         size_t field_index);

  base::Status RestoreSet(FlatSet* set);
  base::Status RestoreField(FlatSet* set, FieldBinding* binding,
                            const std::string& prefix);

  monet::Catalog catalog_;
  std::map<std::string, FlatSet> sets_;
  ir::TextPipeline text_pipeline_;
};

}  // namespace mirror::moa

#endif  // MIRROR_MOA_DATABASE_H_
