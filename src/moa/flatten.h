#ifndef MIRROR_MOA_FLATTEN_H_
#define MIRROR_MOA_FLATTEN_H_

#include "base/status.h"
#include "moa/database.h"
#include "moa/expr.h"
#include "moa/query_context.h"
#include "monet/exec.h"
#include "monet/mil.h"

namespace mirror::moa {

/// Flattening options.
struct FlattenOptions {
  /// When true (the Mirror way), the translator applies the physical
  /// optimizations the architecture was designed for:
  ///  - getBL evaluates inverted: postings are restricted to the query's
  ///    terms (and to candidate documents from enclosing selections)
  ///    BEFORE the belief computation;
  ///  - selection candidates are pushed into content plans.
  /// When false, beliefs are computed for every posting and filtered
  /// afterwards (the un-optimized algebraic translation): experiment E2's
  /// baseline.
  bool optimize = true;
};

/// Compiles Moa expressions to MIL programs over the flattened BAT layout
/// — the [BWK98] translation that gives the Mirror DBMS its set-at-a-time
/// execution model.
///
/// Supported query class (the paper's demo queries and their relational
/// combinations):
///  - named set scans, `select[pred]` with field/literal comparisons
///    combined by and/or, `semijoin`;
///  - `map[...]` with scalar bodies (field access, arithmetic);
///  - the content-ranking pattern
///    `map[sum(THIS)](map[getBL(THIS.f, q, stats)](X))` (also `count`);
///  - aggregates `sum/count` over mapped sets; `topN`.
///
/// A bare `map[getBL(...)](X)` compiles to the sparse evidence BAT
/// (beliefs of query terms present in each document); the total map
/// semantics (absent terms at the default belief) is restored by the
/// aggregate patterns, which is where the two engines are required to
/// agree exactly.
class Flattener {
 public:
  /// `db`, `ctx` and `exec_ctx` must outlive the flattener. A non-null
  /// `exec_ctx` enables the session plan cache: repeated compilations of
  /// the same expression under the same query bindings return the cached
  /// MIL program instead of re-flattening.
  Flattener(const Database* db, const QueryContext* ctx,
            FlattenOptions options = FlattenOptions(),
            monet::mil::ExecutionContext* exec_ctx = nullptr)
      : db_(db), ctx_(ctx), options_(options), exec_ctx_(exec_ctx) {}

  /// Translates `expr` into a MIL program ready for the ExecutionEngine
  /// (or the legacy mil::Executor) bound to `db->catalog()`.
  base::Result<monet::mil::Program> Compile(const ExprPtr& expr) const;

 private:
  const Database* db_;
  const QueryContext* ctx_;
  FlattenOptions options_;
  monet::mil::ExecutionContext* exec_ctx_;
};

}  // namespace mirror::moa

#endif  // MIRROR_MOA_FLATTEN_H_
