#ifndef MIRROR_MOA_STRUCTURE_REGISTRY_H_
#define MIRROR_MOA_STRUCTURE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace mirror::moa {

class StructType;
using StructTypePtr = std::shared_ptr<const StructType>;

/// Descriptor of a registered Moa structure. The schema parser consults
/// the registry for structure names outside the kernel set, realizing the
/// paper's open complex object system: "new structures can be added to
/// the system, similar to the well-known principle of base type
/// extensibility in object-relational database systems" (§2).
struct StructureInfo {
  std::string name;
  std::string description;
  /// Builds the type node from the raw text between the structure's
  /// angle brackets (empty if none). The implementation typically parses
  /// the argument with ParseStructType or maps it onto kernel structures.
  std::function<base::Result<StructTypePtr>(std::string_view arg)> make_type;
};

/// Process-wide registry of Moa structures.
class StructureRegistry {
 public:
  /// The global registry instance.
  static StructureRegistry& Global();

  /// Registers a structure; fails if the name is taken or clashes with a
  /// kernel structure (Atomic/TUPLE/SET/LIST/CONTREP).
  base::Status RegisterStructure(StructureInfo info);

  /// Finds a registered structure, or nullptr.
  const StructureInfo* Find(std::string_view name) const;

  /// Names of all registered structures, sorted.
  std::vector<std::string> Names() const;

 private:
  StructureRegistry() = default;

  std::map<std::string, StructureInfo, std::less<>> structures_;
};

}  // namespace mirror::moa

#endif  // MIRROR_MOA_STRUCTURE_REGISTRY_H_
