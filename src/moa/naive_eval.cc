#include "moa/naive_eval.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "base/str_util.h"

namespace mirror::moa {

using monet::Bat;
using monet::Column;
using monet::Oid;
using monet::Value;

namespace {

/// Intermediate result of set-valued subexpressions.
struct Elements {
  const FlatSet* set = nullptr;          // null for purely mapped results
  std::vector<Oid> oids;                 // surviving oids, in order
  bool mapped = false;                   // per-oid scalar values present
  std::vector<Value> values;             // aligned with oids when mapped
  bool has_beliefs = false;              // per-oid belief lists present
  std::vector<std::vector<double>> beliefs;  // aligned with oids
};

struct Node {
  Elements elems;
  Value scalar;
  bool is_scalar = false;
};

class Evaluator {
 public:
  Evaluator(const Database* db, const QueryContext* ctx)
      : db_(db), ctx_(ctx) {}

  base::Result<EvalOutput> Run(const ExprPtr& expr) {
    auto node = Eval(expr);
    if (!node.ok()) return node.status();
    Node n = node.TakeValue();
    EvalOutput out;
    if (n.is_scalar) {
      out.scalar = n.scalar;
      out.is_scalar = true;
      return out;
    }
    out.bat = std::make_shared<const Bat>(ToBat(n.elems));
    return out;
  }

 private:
  static Bat ToBat(const Elements& e) {
    std::vector<Oid> heads;
    if (e.has_beliefs) {
      std::vector<double> tails;
      for (size_t i = 0; i < e.oids.size(); ++i) {
        for (double b : e.beliefs[i]) {
          heads.push_back(e.oids[i]);
          tails.push_back(b);
        }
      }
      return Bat(Column::MakeOids(std::move(heads)),
                 Column::MakeDbls(std::move(tails)));
    }
    if (e.mapped) {
      heads = e.oids;
      // Column type from the first value (homogeneous by construction).
      bool all_int = true;
      bool all_str = true;
      for (const Value& v : e.values) {
        if (v.type() != monet::ValueType::kInt) all_int = false;
        if (v.type() != monet::ValueType::kStr) all_str = false;
      }
      if (!e.values.empty() && all_int) {
        std::vector<int64_t> tails;
        tails.reserve(e.values.size());
        for (const Value& v : e.values) tails.push_back(v.i());
        return Bat(Column::MakeOids(std::move(heads)),
                   Column::MakeInts(std::move(tails)));
      }
      if (!e.values.empty() && all_str) {
        std::vector<std::string> tails;
        tails.reserve(e.values.size());
        for (const Value& v : e.values) tails.push_back(v.s());
        return Bat(Column::MakeOids(std::move(heads)), Column::MakeStrs(tails));
      }
      std::vector<double> tails;
      tails.reserve(e.values.size());
      for (const Value& v : e.values) tails.push_back(v.AsDouble());
      return Bat(Column::MakeOids(std::move(heads)),
                 Column::MakeDbls(std::move(tails)));
    }
    heads = e.oids;
    std::vector<Oid> tails = e.oids;
    return Bat(Column::MakeOids(std::move(heads)),
               Column::MakeOids(std::move(tails)));
  }

  // Scalar evaluation in the context of one element. `obj` is the tuple
  // object (may be null for mapped scopes); `mapped_value` is the current
  // value for value-mapped scopes.
  base::Result<Value> EvalScalar(const ExprPtr& expr, const MoaValue* obj,
                                 const FlatSet* set,
                                 const Value* mapped_value) {
    switch (expr->op) {
      case Expr::Op::kThis:
        if (mapped_value != nullptr) return *mapped_value;
        return base::Status::TypeError(
            "THIS used as a scalar over a non-mapped set");
      case Expr::Op::kField: {
        if (expr->children[0]->op != Expr::Op::kThis) {
          return base::Status::Unimplemented(
              "only THIS.<field> access is supported in element scope");
        }
        if (obj == nullptr || set == nullptr) {
          return base::Status::TypeError("field access outside a set scope");
        }
        const StructTypePtr elem = set->type->element();
        int idx = elem->FieldIndex(expr->name);
        if (idx < 0) {
          return base::Status::NotFound("no field '" + expr->name + "' in " +
                                        set->name);
        }
        const MoaValue& f = obj->field(static_cast<size_t>(idx));
        if (f.kind() != MoaValue::Kind::kAtomic) {
          return base::Status::TypeError("field '" + expr->name +
                                         "' is not atomic");
        }
        return f.atomic();
      }
      case Expr::Op::kLit:
        return expr->literal;
      case Expr::Op::kArith: {
        auto lhs = EvalScalar(expr->children[0], obj, set, mapped_value);
        if (!lhs.ok()) return lhs;
        auto rhs = EvalScalar(expr->children[1], obj, set, mapped_value);
        if (!rhs.ok()) return rhs;
        bool both_int = lhs.value().type() == monet::ValueType::kInt &&
                        rhs.value().type() == monet::ValueType::kInt;
        double a = lhs.value().AsDouble();
        double b = rhs.value().AsDouble();
        switch (expr->arith) {
          case ArithKind::kAdd:
            return both_int ? Value::MakeInt(lhs.value().i() + rhs.value().i())
                            : Value::MakeDbl(a + b);
          case ArithKind::kSub:
            return both_int ? Value::MakeInt(lhs.value().i() - rhs.value().i())
                            : Value::MakeDbl(a - b);
          case ArithKind::kMul:
            return both_int ? Value::MakeInt(lhs.value().i() * rhs.value().i())
                            : Value::MakeDbl(a * b);
          case ArithKind::kDiv:
            return Value::MakeDbl(a / b);
        }
        MIRROR_UNREACHABLE();
        return Value();
      }
      case Expr::Op::kCmp: {
        auto lhs = EvalScalar(expr->children[0], obj, set, mapped_value);
        if (!lhs.ok()) return lhs;
        auto rhs = EvalScalar(expr->children[1], obj, set, mapped_value);
        if (!rhs.ok()) return rhs;
        const Value& a = lhs.value();
        const Value& b = rhs.value();
        bool result = false;
        switch (expr->cmp) {
          case CmpKind::kEq:
            result = a == b;
            break;
          case CmpKind::kNeq:
            result = !(a == b);
            break;
          case CmpKind::kLt:
            result = a < b;
            break;
          case CmpKind::kLe:
            result = a < b || a == b;
            break;
          case CmpKind::kGt:
            result = b < a;
            break;
          case CmpKind::kGe:
            result = b < a || a == b;
            break;
        }
        return Value::MakeInt(result ? 1 : 0);
      }
      case Expr::Op::kAnd:
      case Expr::Op::kOr: {
        auto lhs = EvalScalar(expr->children[0], obj, set, mapped_value);
        if (!lhs.ok()) return lhs;
        auto rhs = EvalScalar(expr->children[1], obj, set, mapped_value);
        if (!rhs.ok()) return rhs;
        bool a = lhs.value().i() != 0;
        bool b = rhs.value().i() != 0;
        return Value::MakeInt((expr->op == Expr::Op::kAnd ? (a && b)
                                                          : (a || b))
                                  ? 1
                                  : 0);
      }
      default:
        return base::Status::Unimplemented(
            "unsupported scalar expression: " + expr->ToString());
    }
  }

  base::Result<Node> Eval(const ExprPtr& expr) {
    switch (expr->op) {
      case Expr::Op::kVarRef: {
        auto set = db_->GetSet(expr->name);
        if (!set.ok()) return set.status();
        Node n;
        n.elems.set = set.value();
        n.elems.oids.reserve(set.value()->cardinality);
        for (size_t i = 0; i < set.value()->cardinality; ++i) {
          n.elems.oids.push_back(static_cast<Oid>(i));
        }
        return n;
      }
      case Expr::Op::kSelect: {
        auto base = Eval(expr->children[1]);
        if (!base.ok()) return base;
        Node n = base.TakeValue();
        if (n.is_scalar) {
          return base::Status::TypeError("select over a scalar");
        }
        Elements out;
        out.set = n.elems.set;
        out.mapped = n.elems.mapped;
        for (size_t i = 0; i < n.elems.oids.size(); ++i) {
          Oid oid = n.elems.oids[i];
          const MoaValue* obj =
              n.elems.set != nullptr
                  ? &n.elems.set->objects[static_cast<size_t>(oid)]
                  : nullptr;
          const Value* mv = n.elems.mapped ? &n.elems.values[i] : nullptr;
          auto pred = EvalScalar(expr->children[0], obj, n.elems.set, mv);
          if (!pred.ok()) return pred.status();
          if (pred.value().i() != 0) {
            out.oids.push_back(oid);
            if (n.elems.mapped) out.values.push_back(n.elems.values[i]);
          }
        }
        Node result;
        result.elems = std::move(out);
        return result;
      }
      case Expr::Op::kSemiJoin: {
        auto left = Eval(expr->children[0]);
        if (!left.ok()) return left;
        auto right = Eval(expr->children[1]);
        if (!right.ok()) return right;
        if (left.value().is_scalar || right.value().is_scalar) {
          return base::Status::TypeError("semijoin over scalars");
        }
        std::unordered_set<Oid> keep(right.value().elems.oids.begin(),
                                     right.value().elems.oids.end());
        Node n = left.TakeValue();
        Elements out;
        out.set = n.elems.set;
        out.mapped = n.elems.mapped;
        out.has_beliefs = n.elems.has_beliefs;
        for (size_t i = 0; i < n.elems.oids.size(); ++i) {
          if (keep.count(n.elems.oids[i]) == 0) continue;
          out.oids.push_back(n.elems.oids[i]);
          if (n.elems.mapped) out.values.push_back(n.elems.values[i]);
          if (n.elems.has_beliefs) out.beliefs.push_back(n.elems.beliefs[i]);
        }
        Node result;
        result.elems = std::move(out);
        return result;
      }
      case Expr::Op::kMap: {
        auto base = Eval(expr->children[1]);
        if (!base.ok()) return base;
        Node n = base.TakeValue();
        if (n.is_scalar) return base::Status::TypeError("map over a scalar");
        const ExprPtr& body = expr->children[0];

        // map[getBL(THIS.f, q, stats)](X): belief lists per element.
        if (body->op == Expr::Op::kGetBL) {
          return EvalGetBLMap(body, std::move(n));
        }
        // map[AGG(THIS)](X) over belief sets: aggregate each list.
        if (body->op == Expr::Op::kAgg &&
            body->children[0]->op == Expr::Op::kThis &&
            n.elems.has_beliefs) {
          Elements out;
          out.set = n.elems.set;
          out.oids = n.elems.oids;
          out.mapped = true;
          out.values.reserve(out.oids.size());
          for (const std::vector<double>& list :
               n.elems.beliefs) {
            out.values.push_back(AggregateList(body->agg, list));
          }
          Node result;
          result.elems = std::move(out);
          return result;
        }
        // Scalar body per element.
        Elements out;
        out.set = n.elems.set;
        out.oids = n.elems.oids;
        out.mapped = true;
        out.values.reserve(out.oids.size());
        for (size_t i = 0; i < n.elems.oids.size(); ++i) {
          Oid oid = n.elems.oids[i];
          const MoaValue* obj =
              n.elems.set != nullptr
                  ? &n.elems.set->objects[static_cast<size_t>(oid)]
                  : nullptr;
          const Value* mv = n.elems.mapped ? &n.elems.values[i] : nullptr;
          auto v = EvalScalar(body, obj, n.elems.set, mv);
          if (!v.ok()) return v.status();
          out.values.push_back(v.TakeValue());
        }
        Node result;
        result.elems = std::move(out);
        return result;
      }
      case Expr::Op::kAgg: {
        auto base = Eval(expr->children[0]);
        if (!base.ok()) return base;
        Node n = base.TakeValue();
        if (n.is_scalar) {
          return base::Status::TypeError("aggregate over a scalar");
        }
        Node result;
        result.is_scalar = true;
        if (expr->agg == AggKind::kCount) {
          result.scalar =
              Value::MakeInt(static_cast<int64_t>(n.elems.oids.size()));
          return result;
        }
        if (!n.elems.mapped) {
          return base::Status::TypeError(
              "sum/max/min/avg need a mapped (numeric) set");
        }
        std::vector<double> nums;
        nums.reserve(n.elems.values.size());
        for (const Value& v : n.elems.values) nums.push_back(v.AsDouble());
        result.scalar = AggregateList(expr->agg, nums);
        return result;
      }
      case Expr::Op::kTopN: {
        auto base = Eval(expr->children[0]);
        if (!base.ok()) return base;
        Node n = base.TakeValue();
        if (n.is_scalar || !n.elems.mapped) {
          return base::Status::TypeError("topN needs a mapped set");
        }
        std::vector<size_t> idx(n.elems.oids.size());
        for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
        std::stable_sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
          return n.elems.values[b] < n.elems.values[a];
        });
        if (idx.size() > static_cast<size_t>(expr->n)) {
          idx.resize(static_cast<size_t>(expr->n));
        }
        Elements out;
        out.set = n.elems.set;
        out.mapped = true;
        for (size_t i : idx) {
          out.oids.push_back(n.elems.oids[i]);
          out.values.push_back(n.elems.values[i]);
        }
        Node result;
        result.elems = std::move(out);
        return result;
      }
      default:
        return base::Status::Unimplemented("unsupported set expression: " +
                                           expr->ToString());
    }
  }

  static Value AggregateList(AggKind kind, const std::vector<double>& list) {
    switch (kind) {
      case AggKind::kCount:
        return Value::MakeInt(static_cast<int64_t>(list.size()));
      case AggKind::kSum: {
        double sum = 0;
        for (double x : list) sum += x;
        return Value::MakeDbl(sum);
      }
      case AggKind::kMax: {
        double best = list.empty() ? 0 : list[0];
        for (double x : list) best = std::max(best, x);
        return Value::MakeDbl(best);
      }
      case AggKind::kMin: {
        double best = list.empty() ? 0 : list[0];
        for (double x : list) best = std::min(best, x);
        return Value::MakeDbl(best);
      }
      case AggKind::kAvg: {
        if (list.empty()) return Value::MakeDbl(0);
        double sum = 0;
        for (double x : list) sum += x;
        return Value::MakeDbl(sum / static_cast<double>(list.size()));
      }
      case AggKind::kProd: {
        double prod = 1;
        for (double x : list) prod *= x;
        return Value::MakeDbl(prod);
      }
      case AggKind::kProbOr: {
        double prod = 1;
        for (double x : list) prod *= 1.0 - x;
        return Value::MakeDbl(1.0 - prod);
      }
    }
    MIRROR_UNREACHABLE();
    return Value();
  }

  base::Result<Node> EvalGetBLMap(const ExprPtr& getbl, Node base) {
    if (base.elems.set == nullptr) {
      return base::Status::TypeError("getBL over a non-stored set");
    }
    const ExprPtr& rep = getbl->children[0];
    if (rep->op != Expr::Op::kField ||
        rep->children[0]->op != Expr::Op::kThis) {
      return base::Status::Unimplemented(
          "getBL's first argument must be THIS.<contrep field>");
    }
    const FlatSet& set = *base.elems.set;
    const ContRepField* contrep = set.FindContRep(rep->name);
    if (contrep == nullptr) {
      return base::Status::NotFound("no CONTREP field '" + rep->name +
                                    "' in " + set.name);
    }
    int field_index = set.type->element()->FieldIndex(rep->name);
    MIRROR_CHECK_GE(field_index, 0);
    const std::vector<WeightedTerm>* binding = ctx_->Find(getbl->qvar);
    if (binding == nullptr) {
      return base::Status::NotFound("unbound query variable: " + getbl->qvar);
    }
    ResolvedQuery query = ResolveQuery(*binding, contrep->index.vocab());
    const ir::InferenceNetwork& network = *contrep->network;
    double alpha = network.DefaultBelief();

    Elements out;
    out.set = base.elems.set;
    out.oids = base.elems.oids;
    out.has_beliefs = true;
    out.beliefs.reserve(out.oids.size());
    int64_t unknown_terms = query.unknown_count;
    double unknown_weight = query.unknown_weight;
    for (Oid oid : out.oids) {
      // Tuple-at-a-time object navigation (the pre-flattening execution
      // model [BWK98] replaced): the interpreter visits the materialized
      // object's own content representation and counts term matches
      // there — it does not touch the inverted physical layout, which
      // belongs to the flattened engine.
      const MoaValue& obj = set.objects[static_cast<size_t>(oid)];
      const MoaValue& rep_value = obj.field(static_cast<size_t>(field_index));
      std::unordered_map<std::string, int64_t> counts;
      int64_t doclen = 0;
      auto count_terms = [&](const std::vector<std::string>& terms) {
        for (const std::string& t : terms) {
          counts[t] += 1;
          ++doclen;
        }
      };
      if (rep_value.kind() == MoaValue::Kind::kContRep) {
        count_terms(rep_value.terms());
      } else if (rep_value.kind() == MoaValue::Kind::kAtomic &&
                 rep_value.atomic().type() == monet::ValueType::kStr) {
        count_terms(db_->text_pipeline().Process(rep_value.atomic().s()));
      } else {
        return base::Status::TypeError("CONTREP field holds neither terms "
                                       "nor text");
      }

      std::vector<double> list;
      list.reserve(static_cast<size_t>(query.term_count));
      for (const auto& [term, w] : query.present) {
        auto it = counts.find(contrep->index.vocab().TermOf(term));
        int64_t tf = it == counts.end() ? 0 : it->second;
        list.push_back(
            w * network.BeliefFromCounts(tf, doclen,
                                         contrep->index.DocFreq(term)));
      }
      // Unknown terms always contribute the default belief; only the
      // summed weight matters, spread uniformly over them.
      for (int64_t u = 0; u < unknown_terms; ++u) {
        list.push_back(alpha * unknown_weight /
                       static_cast<double>(unknown_terms));
      }
      out.beliefs.push_back(std::move(list));
    }
    Node result;
    result.elems = std::move(out);
    return result;
  }

  const Database* db_;
  const QueryContext* ctx_;
};

}  // namespace

base::Result<EvalOutput> NaiveEvaluator::Evaluate(const ExprPtr& expr) const {
  return Evaluator(db_, ctx_).Run(expr);
}

}  // namespace mirror::moa
