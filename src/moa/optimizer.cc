#include "moa/optimizer.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "base/str_util.h"

namespace mirror::moa {

namespace mil = monet::mil;

namespace {

/// Substitutes every THIS in `body` with `replacement` (used for map-map
/// fusion: the inner map's body becomes the outer THIS).
ExprPtr SubstituteThis(const ExprPtr& body, const ExprPtr& replacement) {
  if (body->op == Expr::Op::kThis) return replacement;
  if (body->children.empty()) return body;
  Expr copy = *body;
  for (ExprPtr& child : copy.children) {
    child = SubstituteThis(child, replacement);
  }
  return std::make_shared<const Expr>(std::move(copy));
}

/// True if the body is a pure scalar computation (safe to substitute).
bool IsScalarBody(const ExprPtr& body) {
  switch (body->op) {
    case Expr::Op::kThis:
    case Expr::Op::kLit:
      return true;
    case Expr::Op::kField:
      return body->children[0]->op == Expr::Op::kThis;
    case Expr::Op::kArith:
    case Expr::Op::kCmp:
    case Expr::Op::kAnd:
    case Expr::Op::kOr:
      return IsScalarBody(body->children[0]) &&
             IsScalarBody(body->children[1]);
    default:
      return false;
  }
}

}  // namespace

ExprPtr RewriteLogical(const ExprPtr& expr, OptimizerReport* report) {
  // Bottom-up: rewrite children first.
  Expr copy = *expr;
  bool changed = false;
  for (ExprPtr& child : copy.children) {
    ExprPtr rewritten = RewriteLogical(child, report);
    if (rewritten != child) {
      child = rewritten;
      changed = true;
    }
  }
  ExprPtr node =
      changed ? std::make_shared<const Expr>(std::move(copy)) : expr;

  // select[p](select[q](X)) => select[q and p](X).
  if (node->op == Expr::Op::kSelect &&
      node->children[1]->op == Expr::Op::kSelect) {
    const ExprPtr& outer_pred = node->children[0];
    const ExprPtr& inner = node->children[1];
    ExprPtr fused_pred = Expr::And(inner->children[0], outer_pred);
    if (report != nullptr) report->select_fusions++;
    return RewriteLogical(Expr::Select(fused_pred, inner->children[1]),
                          report);
  }

  // map[g](map[f](X)) => map[g{THIS:=f}](X) for scalar bodies.
  if (node->op == Expr::Op::kMap &&
      node->children[1]->op == Expr::Op::kMap) {
    const ExprPtr& g = node->children[0];
    const ExprPtr& inner = node->children[1];
    const ExprPtr& f = inner->children[0];
    if (IsScalarBody(g) && IsScalarBody(f)) {
      if (report != nullptr) report->map_fusions++;
      return RewriteLogical(
          Expr::Map(SubstituteThis(g, f), inner->children[1]), report);
    }
  }
  return node;
}

namespace {

std::string InstrKey(const mil::Instr& i) {
  std::string key = base::StrFormat(
      "%d|%d|%d|%d|%d|%d|%d|%lld|%lld|%d|%d|%d|%lld|%g|%g|%g|%g|",
      static_cast<int>(i.op), i.src0, i.src1, i.src2,
      static_cast<int>(i.flag0), static_cast<int>(i.flag1),
      static_cast<int>(i.bin_op), static_cast<long long>(i.n),
      static_cast<long long>(i.n2), static_cast<int>(i.un_op),
      static_cast<int>(i.cmp_op), static_cast<int>(0),
      static_cast<long long>(i.num_docs), i.avg_doclen, i.belief.alpha,
      i.belief.k_tf, i.belief.k_len);
  key += i.name;
  key += "|";
  key += i.imm0.type() == monet::ValueType::kVoid ? "" : i.imm0.ToString();
  key += "|";
  key += i.imm1.type() == monet::ValueType::kVoid ? "" : i.imm1.ToString();
  key += "|";
  key += base::StrFormat("%p", static_cast<const void*>(i.const_bat.get()));
  return key;
}

}  // namespace

void OptimizeMil(mil::Program* program, OptimizerReport* report) {
  // Common subexpression elimination over the straight-line program:
  // instructions with identical opcode and operands compute the same BAT
  // (all kernel ops are pure), so later copies are redirected to the
  // first register.
  std::unordered_map<std::string, int> seen;  // key -> canonical reg
  std::unordered_map<int, int> alias;         // reg -> canonical reg
  mil::Program rewritten;
  while (rewritten.num_regs() < program->num_regs()) rewritten.NewReg();
  size_t removed = 0;
  for (const mil::Instr& instr : program->instrs()) {
    mil::Instr copy = instr;
    auto resolve = [&](int reg) {
      auto it = alias.find(reg);
      return it == alias.end() ? reg : it->second;
    };
    copy.src0 = copy.src0 >= 0 ? resolve(copy.src0) : copy.src0;
    copy.src1 = copy.src1 >= 0 ? resolve(copy.src1) : copy.src1;
    copy.src2 = copy.src2 >= 0 ? resolve(copy.src2) : copy.src2;
    std::string key = InstrKey(copy);
    auto it = seen.find(key);
    if (it != seen.end()) {
      alias[copy.dst] = it->second;
      ++removed;
      continue;
    }
    seen.emplace(std::move(key), copy.dst);
    rewritten.Emit(std::move(copy));
  }
  int result = program->result_reg();
  auto it = alias.find(result);
  rewritten.set_result_reg(it == alias.end() ? result : it->second);
  if (report != nullptr) report->cse_removed += removed;

  size_t dce = rewritten.EliminateDeadCode();
  if (report != nullptr) report->dce_removed += dce;
  *program = std::move(rewritten);
}

}  // namespace mirror::moa
