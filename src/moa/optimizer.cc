#include "moa/optimizer.h"

#include <string>
#include <unordered_map>
#include <vector>

#include "base/str_util.h"
#include "monet/exec.h"
#include "monet/recycler.h"

namespace mirror::moa {

namespace mil = monet::mil;

namespace {

/// Substitutes every THIS in `body` with `replacement` (used for map-map
/// fusion: the inner map's body becomes the outer THIS).
ExprPtr SubstituteThis(const ExprPtr& body, const ExprPtr& replacement) {
  if (body->op == Expr::Op::kThis) return replacement;
  if (body->children.empty()) return body;
  Expr copy = *body;
  for (ExprPtr& child : copy.children) {
    child = SubstituteThis(child, replacement);
  }
  return std::make_shared<const Expr>(std::move(copy));
}

/// True if the body is a pure scalar computation (safe to substitute).
bool IsScalarBody(const ExprPtr& body) {
  switch (body->op) {
    case Expr::Op::kThis:
    case Expr::Op::kLit:
      return true;
    case Expr::Op::kField:
      return body->children[0]->op == Expr::Op::kThis;
    case Expr::Op::kArith:
    case Expr::Op::kCmp:
    case Expr::Op::kAnd:
    case Expr::Op::kOr:
      return IsScalarBody(body->children[0]) &&
             IsScalarBody(body->children[1]);
    default:
      return false;
  }
}

}  // namespace

ExprPtr RewriteLogical(const ExprPtr& expr, OptimizerReport* report) {
  // Bottom-up: rewrite children first.
  Expr copy = *expr;
  bool changed = false;
  for (ExprPtr& child : copy.children) {
    ExprPtr rewritten = RewriteLogical(child, report);
    if (rewritten != child) {
      child = rewritten;
      changed = true;
    }
  }
  ExprPtr node =
      changed ? std::make_shared<const Expr>(std::move(copy)) : expr;

  // select[p](select[q](X)) => select[q and p](X).
  if (node->op == Expr::Op::kSelect &&
      node->children[1]->op == Expr::Op::kSelect) {
    const ExprPtr& outer_pred = node->children[0];
    const ExprPtr& inner = node->children[1];
    ExprPtr fused_pred = Expr::And(inner->children[0], outer_pred);
    if (report != nullptr) report->select_fusions++;
    return RewriteLogical(Expr::Select(fused_pred, inner->children[1]),
                          report);
  }

  // map[g](map[f](X)) => map[g{THIS:=f}](X) for scalar bodies.
  if (node->op == Expr::Op::kMap &&
      node->children[1]->op == Expr::Op::kMap) {
    const ExprPtr& g = node->children[0];
    const ExprPtr& inner = node->children[1];
    const ExprPtr& f = inner->children[0];
    if (IsScalarBody(g) && IsScalarBody(f)) {
      if (report != nullptr) report->map_fusions++;
      return RewriteLogical(
          Expr::Map(SubstituteThis(g, f), inner->children[1]), report);
    }
  }
  return node;
}

namespace {

std::string InstrKey(const mil::Instr& i) {
  std::string key = base::StrFormat(
      "%d|%d|%d|%d|%d|%d|%d|%lld|%lld|%d|%d|%d|%lld|%g|%g|%g|%g|",
      static_cast<int>(i.op), i.src0, i.src1, i.src2,
      static_cast<int>(i.flag0), static_cast<int>(i.flag1),
      static_cast<int>(i.bin_op), static_cast<long long>(i.n),
      static_cast<long long>(i.n2), static_cast<int>(i.un_op),
      static_cast<int>(i.cmp_op), static_cast<int>(i.fold_op),
      static_cast<long long>(i.num_docs), i.avg_doclen, i.belief.alpha,
      i.belief.k_tf, i.belief.k_len);
  key += i.name;
  key += "|";
  key += i.imm0.type() == monet::ValueType::kVoid ? "" : i.imm0.ToString();
  key += "|";
  key += i.imm1.type() == monet::ValueType::kVoid ? "" : i.imm1.ToString();
  key += "|";
  key += base::StrFormat("%p", static_cast<const void*>(i.const_bat.get()));
  return key;
}

// How many times each register is read (sources plus the result).
std::vector<int> CountRegisterUses(const mil::Program& program) {
  std::vector<int> uses(static_cast<size_t>(program.num_regs()), 0);
  for (const mil::Instr& i : program.instrs()) {
    for (int src : {i.src0, i.src1, i.src2}) {
      if (src >= 0) ++uses[static_cast<size_t>(src)];
    }
  }
  if (program.result_reg() >= 0) {
    ++uses[static_cast<size_t>(program.result_reg())];
  }
  return uses;
}

bool IsLowerBoundCmp(monet::CmpOp op) {
  return op == monet::CmpOp::kGe || op == monet::CmpOp::kGt;
}

bool IsUpperBoundCmp(monet::CmpOp op) {
  return op == monet::CmpOp::kLe || op == monet::CmpOp::kLt;
}

/// Fuses `select.cmp(select.cmp(X, lower), upper)` (either bound order)
/// into one `select.range(X, lo, hi)` when the inner select has no other
/// consumer. Selection preserves tails, so restricting the outer predicate
/// over the inner's survivors equals the conjunction over X; the fused
/// instruction scans once, and the engine's candidate pipeline then emits
/// a single candidate list for the pair. The orphaned inner select is left
/// for DCE.
void FuseSelectRanges(mil::Program* program, OptimizerReport* report) {
  std::vector<int> uses = CountRegisterUses(*program);
  // Producer index per register (straight-line SSA).
  std::vector<int> producer(static_cast<size_t>(program->num_regs()), -1);
  const std::vector<mil::Instr>& instrs = program->instrs();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    int dst = instrs[idx].dst;
    if (dst < 0 || producer[static_cast<size_t>(dst)] != -1) return;  // not SSA
    producer[static_cast<size_t>(dst)] = static_cast<int>(idx);
  }
  mil::Program rewritten;
  while (rewritten.num_regs() < program->num_regs()) rewritten.NewReg();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    mil::Instr copy = instrs[idx];
    if (copy.op == mil::OpCode::kSelectCmp && copy.src0 >= 0 &&
        (IsLowerBoundCmp(copy.cmp_op) || IsUpperBoundCmp(copy.cmp_op))) {
      int p = producer[static_cast<size_t>(copy.src0)];
      if (p >= 0 && uses[static_cast<size_t>(copy.src0)] == 1) {
        const mil::Instr& inner = instrs[static_cast<size_t>(p)];
        bool complementary =
            inner.op == mil::OpCode::kSelectCmp &&
            ((IsLowerBoundCmp(inner.cmp_op) && IsUpperBoundCmp(copy.cmp_op)) ||
             (IsUpperBoundCmp(inner.cmp_op) && IsLowerBoundCmp(copy.cmp_op)));
        if (complementary) {
          const mil::Instr& lower_i =
              IsLowerBoundCmp(inner.cmp_op) ? inner : copy;
          const mil::Instr& upper_i =
              IsLowerBoundCmp(inner.cmp_op) ? copy : inner;
          copy.op = mil::OpCode::kSelectRange;
          copy.src0 = inner.src0;
          copy.imm0 = lower_i.imm0;
          copy.imm1 = upper_i.imm0;
          copy.flag0 = lower_i.cmp_op == monet::CmpOp::kGe;
          copy.flag1 = upper_i.cmp_op == monet::CmpOp::kLe;
          copy.cmp_op = monet::CmpOp::kEq;
          if (report != nullptr) report->range_fusions++;
        }
      }
    }
    rewritten.Emit(std::move(copy));
  }
  rewritten.set_result_reg(program->result_reg());
  *program = std::move(rewritten);
}

/// Pushes scalar sums through multiplex add/sub: when a `scalar.sum`'s
/// source is a `map.bin(x, y, add|sub)` with no other consumer, the sum
/// distributes over the arithmetic —
///   sum(x + y) = sum(x) + sum(y),  sum(x - y) = sum(x) - sum(y)
/// — so the rewrite emits two scalar.sum instructions and one scalar.bin
/// combining them. The multiplex map was a pipeline breaker that forced
/// both inputs to materialize; after the rewrite the sums run fused over
/// the candidate views and the map itself dies in DCE. (Heads are
/// positionally aligned by construction, so pairing is irrelevant to the
/// total; int sums widen to double either way.)
void FuseScalarAggregates(mil::Program* program, OptimizerReport* report) {
  std::vector<int> uses = CountRegisterUses(*program);
  std::vector<int> producer(static_cast<size_t>(program->num_regs()), -1);
  const std::vector<mil::Instr>& instrs = program->instrs();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    int dst = instrs[idx].dst;
    if (dst < 0 || producer[static_cast<size_t>(dst)] != -1) return;  // not SSA
    producer[static_cast<size_t>(dst)] = static_cast<int>(idx);
  }
  mil::Program rewritten;
  while (rewritten.num_regs() < program->num_regs()) rewritten.NewReg();
  bool changed = false;
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    const mil::Instr& instr = instrs[idx];
    if (instr.op == mil::OpCode::kScalarSum && instr.src0 >= 0 &&
        uses[static_cast<size_t>(instr.src0)] == 1) {
      int p = producer[static_cast<size_t>(instr.src0)];
      if (p >= 0) {
        const mil::Instr& map = instrs[static_cast<size_t>(p)];
        if (map.op == mil::OpCode::kMapBinary &&
            (map.bin_op == monet::BinOp::kAdd ||
             map.bin_op == monet::BinOp::kSub)) {
          mil::Instr sum_l;
          sum_l.op = mil::OpCode::kScalarSum;
          sum_l.src0 = map.src0;
          sum_l.dst = rewritten.NewReg();
          int l = rewritten.Emit(std::move(sum_l));
          mil::Instr sum_r;
          sum_r.op = mil::OpCode::kScalarSum;
          sum_r.src0 = map.src1;
          sum_r.dst = rewritten.NewReg();
          int r = rewritten.Emit(std::move(sum_r));
          mil::Instr combine;
          combine.op = mil::OpCode::kScalarBin;
          combine.src0 = l;
          combine.src1 = r;
          combine.bin_op = map.bin_op;
          combine.dst = instr.dst;
          rewritten.Emit(std::move(combine));
          if (report != nullptr) report->agg_fusions++;
          changed = true;
          continue;  // the orphaned map.bin is left for DCE
        }
      }
    }
    rewritten.Emit(instr);
  }
  if (!changed) return;
  rewritten.set_result_reg(program->result_reg());
  *program = std::move(rewritten);
}

/// Rewrites the scalar-extremum detour `scalar.sum(topn(x, 1))` into the
/// dedicated `scalar.fold(x, max|min)` instruction when the topn has no
/// other consumer: the fold reads the column once instead of running a
/// bounded sort plus a one-row sum, fuses over candidate views like the
/// other scalar aggregates, and is the form the shard engine merges
/// across shards with the same combinator. Empty inputs agree by
/// construction (topn(1) of nothing sums to 0; the fold's empty value is
/// 0). The orphaned topn is left for DCE.
void RewriteScalarFolds(mil::Program* program, OptimizerReport* report) {
  std::vector<int> uses = CountRegisterUses(*program);
  std::vector<int> producer(static_cast<size_t>(program->num_regs()), -1);
  const std::vector<mil::Instr>& instrs = program->instrs();
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    int dst = instrs[idx].dst;
    if (dst < 0 || producer[static_cast<size_t>(dst)] != -1) return;  // not SSA
    producer[static_cast<size_t>(dst)] = static_cast<int>(idx);
  }
  mil::Program rewritten;
  while (rewritten.num_regs() < program->num_regs()) rewritten.NewReg();
  bool changed = false;
  for (size_t idx = 0; idx < instrs.size(); ++idx) {
    mil::Instr copy = instrs[idx];
    if (copy.op == mil::OpCode::kScalarSum && copy.src0 >= 0 &&
        uses[static_cast<size_t>(copy.src0)] == 1) {
      int p = producer[static_cast<size_t>(copy.src0)];
      if (p >= 0) {
        const mil::Instr& top = instrs[static_cast<size_t>(p)];
        if (top.op == mil::OpCode::kTopN && top.n == 1) {
          copy.op = mil::OpCode::kScalarFold;
          copy.src0 = top.src0;
          copy.fold_op =
              top.flag0 ? monet::FoldOp::kMax : monet::FoldOp::kMin;
          if (report != nullptr) report->fold_rewrites++;
          changed = true;
        }
      }
    }
    rewritten.Emit(std::move(copy));
  }
  if (!changed) return;
  rewritten.set_result_reg(program->result_reg());
  *program = std::move(rewritten);
}

/// Counts select→select/semijoin/slice chain links: each is one tuple
/// copy the candidate-vector engine avoids relative to the materializing
/// interpreter. (mil::IsCandidatePipelineOp is the engine's own notion of
/// the candidate family.)
int CountCandidateChainLinks(const mil::Program& program) {
  std::vector<mil::OpCode> producer_op(
      static_cast<size_t>(program.num_regs()), mil::OpCode::kLoadNamed);
  std::vector<bool> produced(static_cast<size_t>(program.num_regs()), false);
  int links = 0;
  for (const mil::Instr& i : program.instrs()) {
    if (mil::IsCandidatePipelineOp(i.op) && i.src0 >= 0 &&
        produced[static_cast<size_t>(i.src0)] &&
        mil::IsCandidatePipelineOp(
            producer_op[static_cast<size_t>(i.src0)])) {
      ++links;
    }
    if (i.dst >= 0) {
      produced[static_cast<size_t>(i.dst)] = true;
      producer_op[static_cast<size_t>(i.dst)] = i.op;
    }
  }
  return links;
}

/// Counts the instructions the shard-parallel engine will fan out
/// shard-locally: a register is "shardable" when it is fed by a load (of
/// what would be a sharded name) or by a shard-preserving operator over a
/// shardable source, and every shard-local-class instruction consuming a
/// shardable src0 counts — the unary family verbatim
/// (mil::IsShardLocalUnaryOp, the engine's own notion), plus semijoins,
/// join probes, topN partials and scalar-fold partials, whose side
/// conditions the engine re-checks per register at run time.
int CountShardFanouts(const mil::Program& program) {
  std::vector<bool> shardable(static_cast<size_t>(program.num_regs()), false);
  int fanouts = 0;
  for (const mil::Instr& i : program.instrs()) {
    bool src_sharded =
        i.src0 >= 0 && shardable[static_cast<size_t>(i.src0)];
    bool out_sharded = false;
    if (i.op == mil::OpCode::kLoadNamed) {
      out_sharded = true;
    } else if (src_sharded) {
      switch (i.op) {
        case mil::OpCode::kSemiJoinHead:
        case mil::OpCode::kAntiJoinHead:
        case mil::OpCode::kSemiJoinTail:
        case mil::OpCode::kJoin:
          ++fanouts;
          out_sharded = true;
          break;
        case mil::OpCode::kTopN:
        case mil::OpCode::kScalarSum:
        case mil::OpCode::kScalarCount:
        case mil::OpCode::kScalarFold:
          // Fan out per shard, then merge: the dst is global.
          ++fanouts;
          break;
        default:
          if (mil::IsShardLocalUnaryOp(i.op)) {
            ++fanouts;
            out_sharded = true;
          }
          break;
      }
    }
    if (i.dst >= 0) shardable[static_cast<size_t>(i.dst)] = out_sharded;
  }
  return fanouts;
}

/// Counts join inputs produced by candidate-pipeline operators: each is
/// one Materialize() the radix join engine avoids by probing (src0) or
/// building (src1) directly over the candidate view.
int CountJoinInputFusions(const mil::Program& program) {
  std::vector<bool> is_candidate(static_cast<size_t>(program.num_regs()),
                                 false);
  int fusions = 0;
  for (const mil::Instr& i : program.instrs()) {
    if (i.op == mil::OpCode::kJoin) {
      for (int src : {i.src0, i.src1}) {
        if (src >= 0 && is_candidate[static_cast<size_t>(src)]) ++fusions;
      }
    }
    if (i.dst >= 0) {
      is_candidate[static_cast<size_t>(i.dst)] =
          mil::IsCandidatePipelineOp(i.op);
    }
  }
  return fusions;
}

/// Counts selects the recycler can key: their input register's sole
/// writer is a kLoadNamed and the predicate normalizes to an interval in
/// double space (the same SelectPredicate::FromInstr the engine uses, so
/// the diagnostic and the runtime agree on eligibility).
int CountRecycleEligibleSelects(const mil::Program& program) {
  const size_t num_regs = static_cast<size_t>(program.num_regs());
  std::vector<int> writers(num_regs, 0);
  std::vector<std::string> load_name(num_regs);
  for (const mil::Instr& i : program.instrs()) {
    if (i.dst >= 0 && i.dst < static_cast<int>(num_regs)) {
      ++writers[static_cast<size_t>(i.dst)];
      load_name[static_cast<size_t>(i.dst)] =
          i.op == mil::OpCode::kLoadNamed ? i.name : std::string();
    }
  }
  int eligible = 0;
  for (const mil::Instr& i : program.instrs()) {
    if (i.src0 < 0 || i.src0 >= static_cast<int>(num_regs)) continue;
    const size_t src = static_cast<size_t>(i.src0);
    if (writers[src] != 1 || load_name[src].empty()) continue;
    monet::SelectPredicate pred;
    if (monet::SelectPredicate::FromInstr(i, load_name[src], &pred)) {
      ++eligible;
    }
  }
  return eligible;
}

}  // namespace

void OptimizeMil(mil::Program* program, OptimizerReport* report) {
  FuseSelectRanges(program, report);
  FuseScalarAggregates(program, report);
  RewriteScalarFolds(program, report);

  // Common subexpression elimination over the straight-line program:
  // instructions with identical opcode and operands compute the same BAT
  // (all kernel ops are pure), so later copies are redirected to the
  // first register.
  std::unordered_map<std::string, int> seen;  // key -> canonical reg
  std::unordered_map<int, int> alias;         // reg -> canonical reg
  mil::Program rewritten;
  while (rewritten.num_regs() < program->num_regs()) rewritten.NewReg();
  size_t removed = 0;
  for (const mil::Instr& instr : program->instrs()) {
    mil::Instr copy = instr;
    auto resolve = [&](int reg) {
      auto it = alias.find(reg);
      return it == alias.end() ? reg : it->second;
    };
    copy.src0 = copy.src0 >= 0 ? resolve(copy.src0) : copy.src0;
    copy.src1 = copy.src1 >= 0 ? resolve(copy.src1) : copy.src1;
    copy.src2 = copy.src2 >= 0 ? resolve(copy.src2) : copy.src2;
    std::string key = InstrKey(copy);
    auto it = seen.find(key);
    if (it != seen.end()) {
      alias[copy.dst] = it->second;
      ++removed;
      continue;
    }
    seen.emplace(std::move(key), copy.dst);
    rewritten.Emit(std::move(copy));
  }
  int result = program->result_reg();
  auto it = alias.find(result);
  rewritten.set_result_reg(it == alias.end() ? result : it->second);
  if (report != nullptr) report->cse_removed += removed;

  size_t dce = rewritten.EliminateDeadCode();
  if (report != nullptr) report->dce_removed += dce;
  if (report != nullptr) {
    report->candidate_chain_links += CountCandidateChainLinks(rewritten);
    report->join_input_fusions += CountJoinInputFusions(rewritten);
    report->shard_fanouts += CountShardFanouts(rewritten);
    report->recycle_eligible_selects += CountRecycleEligibleSelects(rewritten);
  }
  *program = std::move(rewritten);
}

}  // namespace mirror::moa
