#ifndef MIRROR_THESAURUS_ASSOCIATION_THESAURUS_H_
#define MIRROR_THESAURUS_ASSOCIATION_THESAURUS_H_

#include <map>
#include <string>
#include <vector>

#include "moa/query_context.h"

namespace mirror::thesaurus {

/// One association between an annotation word and a visual cluster term.
struct Association {
  std::string visual_term;
  double score;
};

/// The automatically constructed association thesaurus of §5.2: it links
/// words from textual annotations to clusters in the image content
/// representation, scored by the expected mutual information measure
/// (EMIM) of PhraseFinder [JC94]. The paper reads this as an
/// implementation of Paivio's dual coding theory: a verbal code and an
/// imaginal code connected by referential links.
class AssociationThesaurus {
 public:
  AssociationThesaurus() = default;

  /// Records one document's dual representation: its (processed) text
  /// terms and its visual terms. Unannotated documents (empty text) still
  /// count toward the totals.
  void AddDocument(const std::vector<std::string>& text_terms,
                   const std::vector<std::string>& visual_terms);

  /// Computes the EMIM association scores. Call once after the last
  /// AddDocument.
  void Finalize();

  bool finalized() const { return finalized_; }

  /// Number of documents observed.
  int64_t num_docs() const { return num_docs_; }

  /// Visual terms positively associated with `text_term`, best first,
  /// at most `top_k`.
  std::vector<Association> Associations(const std::string& text_term,
                                        int top_k) const;

  /// Query formulation (§5.2): maps a textual query to a weighted visual
  /// query — "an association thesaurus can be seen as measuring the
  /// belief in a concept (instead of in a document) given the query".
  /// Association scores accumulate over the query terms; the best `top_k`
  /// clusters are returned with normalized weights.
  std::vector<moa::WeightedTerm> FormulateVisualQuery(
      const std::vector<std::string>& text_terms, int top_k) const;

 private:
  int64_t num_docs_ = 0;
  std::map<std::string, int64_t> text_df_;
  std::map<std::string, int64_t> visual_df_;
  // (text term, visual term) -> co-occurring document count.
  std::map<std::pair<std::string, std::string>, int64_t> co_df_;
  // text term -> positive associations, best first.
  std::map<std::string, std::vector<Association>> associations_;
  bool finalized_ = false;
};

}  // namespace mirror::thesaurus

#endif  // MIRROR_THESAURUS_ASSOCIATION_THESAURUS_H_
