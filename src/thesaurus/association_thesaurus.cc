#include "thesaurus/association_thesaurus.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "base/logging.h"

namespace mirror::thesaurus {

void AssociationThesaurus::AddDocument(
    const std::vector<std::string>& text_terms,
    const std::vector<std::string>& visual_terms) {
  MIRROR_CHECK(!finalized_);
  ++num_docs_;
  std::set<std::string> text(text_terms.begin(), text_terms.end());
  std::set<std::string> visual(visual_terms.begin(), visual_terms.end());
  for (const std::string& t : text) text_df_[t] += 1;
  for (const std::string& v : visual) visual_df_[v] += 1;
  for (const std::string& t : text) {
    for (const std::string& v : visual) {
      co_df_[{t, v}] += 1;
    }
  }
}

void AssociationThesaurus::Finalize() {
  MIRROR_CHECK(!finalized_);
  // EMIM over the 2x2 presence table of (text term t, visual term v),
  // with 0.5 smoothing per cell. Only positively correlated pairs
  // (P(t,v) > P(t)P(v)) become associations.
  const double n = static_cast<double>(num_docs_);
  for (const auto& [pair, co] : co_df_) {
    const auto& [t, v] = pair;
    double nt = static_cast<double>(text_df_[t]);
    double nv = static_cast<double>(visual_df_[v]);
    double n11 = static_cast<double>(co);
    double n10 = nt - n11;
    double n01 = nv - n11;
    double n00 = n - nt - nv + n11;
    double cells[4][3] = {
        {n11, nt, nv},
        {n10, nt, n - nv},
        {n01, n - nt, nv},
        {n00, n - nt, n - nv},
    };
    double emim = 0;
    for (auto& cell : cells) {
      double pj = (cell[0] + 0.5) / (n + 1.0);
      double pm = (cell[1] + 0.5) / (n + 1.0) * (cell[2] + 0.5) / (n + 1.0);
      emim += pj * std::log(pj / pm);
    }
    // Positive correlation gate.
    if (n11 * n <= nt * nv) continue;
    associations_[t].push_back({v, emim});
  }
  for (auto& [t, list] : associations_) {
    std::sort(list.begin(), list.end(),
              [](const Association& a, const Association& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.visual_term < b.visual_term;
              });
  }
  finalized_ = true;
}

std::vector<Association> AssociationThesaurus::Associations(
    const std::string& text_term, int top_k) const {
  MIRROR_CHECK(finalized_);
  auto it = associations_.find(text_term);
  if (it == associations_.end()) return {};
  std::vector<Association> out = it->second;
  if (out.size() > static_cast<size_t>(top_k)) {
    out.resize(static_cast<size_t>(top_k));
  }
  return out;
}

std::vector<moa::WeightedTerm> AssociationThesaurus::FormulateVisualQuery(
    const std::vector<std::string>& text_terms, int top_k) const {
  MIRROR_CHECK(finalized_);
  std::map<std::string, double> accumulated;
  for (const std::string& t : text_terms) {
    auto it = associations_.find(t);
    if (it == associations_.end()) continue;
    for (const Association& a : it->second) {
      accumulated[a.visual_term] += a.score;
    }
  }
  std::vector<std::pair<std::string, double>> ranked(accumulated.begin(),
                                                     accumulated.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > static_cast<size_t>(top_k)) {
    ranked.resize(static_cast<size_t>(top_k));
  }
  // Normalize weights to mean 1 so the inference network's weighted sums
  // stay on the same scale as unweighted queries.
  double sum = 0;
  for (const auto& [v, s] : ranked) sum += s;
  std::vector<moa::WeightedTerm> out;
  out.reserve(ranked.size());
  for (const auto& [v, s] : ranked) {
    double w = sum > 0 ? s * static_cast<double>(ranked.size()) / sum : 1.0;
    out.push_back({v, w});
  }
  return out;
}

}  // namespace mirror::thesaurus
