#include "mirror/retrieval_app.h"

#include <algorithm>
#include <map>

#include "base/str_util.h"

namespace mirror::db {

using monet::Oid;

ImageRetrievalApp::ImageRetrievalApp(Options options)
    : options_(std::move(options)),
      text_pipeline_(ir::TextPipeline::Options{.remove_stopwords = true,
                                               .stem = true,
                                               .keep_underscore = true}) {
  // The app's session lives exactly as long as the app's database, so
  // Build()'s Load calls (and any re-Build) invalidate cached plans
  // without manual InvalidatePlans() bookkeeping.
  db_.RegisterSession(&session_);
}

ImageRetrievalApp::~ImageRetrievalApp() { db_.UnregisterSession(&session_); }

base::Status ImageRetrievalApp::Build(
    const std::vector<mm::LibraryImage>& library) {
  // 1. The user-facing schema of §5.2.
  MIRROR_RETURN_IF_ERROR(db_.Define(
      "define ImageLibrary as SET< TUPLE< Atomic<URL>: source, "
      "Atomic<Text>: annotation, Atomic<Image>: image >>;"));
  MIRROR_RETURN_IF_ERROR(dictionary_.RegisterSchema(
      moa::ParseSchemaDef(
          "define ImageLibrary as SET< TUPLE< Atomic<URL>: source, "
          "Atomic<Text>: annotation, Atomic<Image>: image >>;")
          .TakeValue()));
  std::vector<moa::MoaValue> raw_objects;
  raw_objects.reserve(library.size());
  for (const mm::LibraryImage& entry : library) {
    raw_objects.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str(entry.url), moa::MoaValue::Str(entry.annotation),
         moa::MoaValue::Str(entry.url)}));
  }
  MIRROR_RETURN_IF_ERROR(db_.Load("ImageLibrary", std::move(raw_objects)));

  // 2. The daemons derive the internal schema (Figure 1).
  pipeline_ = std::make_unique<daemon::ExtractionPipeline>(
      &orb_, &media_, &dictionary_, options_.pipeline);
  MIRROR_RETURN_IF_ERROR(pipeline_->Ingest(library));
  MIRROR_RETURN_IF_ERROR(pipeline_->Run());
  indexed_ = pipeline_->results();

  // 3. Load ImageLibraryInternal: both content representations.
  MIRROR_RETURN_IF_ERROR(db_.Define(
      "define ImageLibraryInternal as SET< TUPLE< Atomic<URL>: source, "
      "CONTREP<Text>: annotation, CONTREP<Image>: image >>;"));
  MIRROR_RETURN_IF_ERROR(dictionary_.RegisterSchema(
      moa::ParseSchemaDef(
          "define ImageLibraryInternal as SET< TUPLE< Atomic<URL>: source, "
          "CONTREP<Text>: annotation, CONTREP<Image>: image >>;")
          .TakeValue()));
  std::vector<moa::MoaValue> internal_objects;
  internal_objects.reserve(indexed_.size());
  urls_.clear();
  for (const daemon::IndexedImage& img : indexed_) {
    urls_.push_back(img.url);
    internal_objects.push_back(moa::MoaValue::Tuple(
        {moa::MoaValue::Str(img.url),
         moa::MoaValue::ContRep(text_pipeline_.Process(img.annotation)),
         moa::MoaValue::ContRep(img.visual_terms)}));
  }
  MIRROR_RETURN_IF_ERROR(
      db_.Load("ImageLibraryInternal", std::move(internal_objects)));

  // 4. The association thesaurus over the dual representations.
  for (const daemon::IndexedImage& img : indexed_) {
    thesaurus_.AddDocument(text_pipeline_.Process(img.annotation),
                           img.visual_terms);
  }
  thesaurus_.Finalize();
  return base::Status::Ok();
}

base::Result<std::vector<RankedImage>> ImageRetrievalApp::RunRankingQuery(
    const std::string& contrep_field,
    const std::vector<moa::WeightedTerm>& terms, int top_n) const {
  moa::QueryContext ctx;
  ctx.Bind("query", terms);
  std::string query_text = base::StrFormat(
      "map[sum(THIS)](map[getBL(THIS.%s, query, stats)]("
      "ImageLibraryInternal));",
      contrep_field.c_str());
  QueryOptions query_options;
  query_options.exec = options_.exec;
  std::unique_lock<std::mutex> session_lock(session_mu_);
  auto result = db_.Query(query_text, ctx, query_options, &session_);
  session_lock.unlock();
  if (!result.ok()) return result.status();
  const monet::Bat& bat = *result.value().bat;
  std::vector<RankedImage> ranked;
  ranked.reserve(bat.size());
  for (size_t i = 0; i < bat.size(); ++i) {
    Oid oid = bat.head().OidAt(i);
    ranked.push_back(RankedImage{
        oid, urls_[static_cast<size_t>(oid)], bat.tail().NumAt(i)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedImage& a, const RankedImage& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.oid < b.oid;
            });
  if (top_n > 0 && ranked.size() > static_cast<size_t>(top_n)) {
    ranked.resize(static_cast<size_t>(top_n));
  }
  return ranked;
}

std::vector<RankedImage> ImageRetrievalApp::CombineRankings(
    const std::vector<RankedImage>& a, const std::vector<RankedImage>& b,
    int top_n) const {
  std::map<Oid, RankedImage> combined;
  for (const RankedImage& r : a) combined.emplace(r.oid, r);
  for (const RankedImage& r : b) {
    auto [it, inserted] = combined.emplace(r.oid, r);
    if (!inserted) it->second.score += r.score;
  }
  std::vector<RankedImage> out;
  out.reserve(combined.size());
  for (const auto& [oid, r] : combined) out.push_back(r);
  std::sort(out.begin(), out.end(),
            [](const RankedImage& x, const RankedImage& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.oid < y.oid;
            });
  if (top_n > 0 && out.size() > static_cast<size_t>(top_n)) {
    out.resize(static_cast<size_t>(top_n));
  }
  return out;
}

base::Result<std::vector<RankedImage>> ImageRetrievalApp::Search(
    const std::string& text_query, RetrievalMode mode, int top_n) const {
  if (top_n <= 0) top_n = options_.default_top_n;
  std::vector<std::string> text_terms = text_pipeline_.Process(text_query);
  std::vector<moa::WeightedTerm> text_weighted;
  text_weighted.reserve(text_terms.size());
  for (const std::string& t : text_terms) text_weighted.push_back({t, 1.0});

  if (mode == RetrievalMode::kTextOnly) {
    return RunRankingQuery("annotation", text_weighted, top_n);
  }
  // Thesaurus query formulation: text -> visual clusters (§5.2).
  std::vector<moa::WeightedTerm> visual_query =
      thesaurus_.FormulateVisualQuery(text_terms, options_.thesaurus_top_k);
  if (mode == RetrievalMode::kVisualOnly) {
    return RunRankingQuery("image", visual_query, top_n);
  }
  // Dual coding: evidence from both representations combined.
  auto text_ranked = RunRankingQuery("annotation", text_weighted, 0);
  if (!text_ranked.ok()) return text_ranked.status();
  auto visual_ranked = RunRankingQuery("image", visual_query, 0);
  if (!visual_ranked.ok()) return visual_ranked.status();
  return CombineRankings(text_ranked.value(), visual_ranked.value(), top_n);
}

base::Result<std::vector<RankedImage>> ImageRetrievalApp::SearchWithFeedback(
    const std::string& text_query,
    const std::vector<Oid>& relevant_docs,
    std::vector<moa::WeightedTerm>* state, int top_n) const {
  MIRROR_CHECK(state != nullptr);
  if (top_n <= 0) top_n = options_.default_top_n;
  if (state->empty()) {
    std::vector<std::string> text_terms = text_pipeline_.Process(text_query);
    *state =
        thesaurus_.FormulateVisualQuery(text_terms, options_.thesaurus_top_k);
  }
  if (!relevant_docs.empty()) {
    // Feedback refines the visual query through the image CONTREP's
    // inference network.
    auto set = db_.logical().GetSet("ImageLibraryInternal");
    if (!set.ok()) return set.status();
    const moa::ContRepField* contrep = set.value()->FindContRep("image");
    if (contrep == nullptr) {
      return base::Status::Internal("image CONTREP missing");
    }
    std::vector<std::pair<int64_t, double>> current;
    for (const moa::WeightedTerm& wt : *state) {
      int64_t id = contrep->index.vocab().Lookup(wt.term);
      if (id >= 0) current.emplace_back(id, wt.weight);
    }
    ir::RelevanceFeedback feedback(options_.feedback);
    auto expanded =
        feedback.ExpandQuery(current, relevant_docs, *contrep->network);
    state->clear();
    for (const auto& [term_id, weight] : expanded) {
      state->push_back(
          {contrep->index.vocab().TermOf(term_id), weight});
    }
  }
  return RunRankingQuery("image", *state, top_n);
}

}  // namespace mirror::db
