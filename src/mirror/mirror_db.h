#ifndef MIRROR_MIRROR_MIRROR_DB_H_
#define MIRROR_MIRROR_MIRROR_DB_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "moa/database.h"
#include "moa/expr.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "moa/query_context.h"
#include "monet/exec.h"
#include "monet/mil.h"

namespace mirror::db {

/// How a query should be executed.
struct QueryOptions {
  /// Flattened set-at-a-time execution over BATs (the Mirror way). When
  /// false, the naive tuple-at-a-time object interpreter runs instead
  /// (the [BWK98] baseline, kept as the semantic oracle).
  bool flattened = true;
  /// Algebraic rewriting + optimized physical translation + MIL peephole.
  bool optimize = true;
  /// Vectorized engine knobs: worker threads and candidate pipelines.
  monet::mil::ExecOptions exec;
  /// When false, runs the legacy materializing sequential Executor
  /// instead of the ExecutionEngine (the E-series baseline).
  bool use_engine = true;
};

/// A compiled query, for inspection (EXPLAIN) and repeated execution.
struct PreparedQuery {
  moa::ExprPtr logical;           // after rewriting
  monet::mil::Program program;    // physical plan (flattened mode)
  moa::OptimizerReport optimizer; // what the optimizer did
};

/// The Mirror DBMS: "a research database system ... to better understand
/// the kind of data management that is required in the context of
/// multimedia digital libraries" (§1). Integrates the Moa logical layer,
/// the binary-relational physical kernel and the IR engine behind one
/// query API; schemas and queries use the paper's surface syntax.
class MirrorDb {
 public:
  MirrorDb() = default;
  MirrorDb(const MirrorDb&) = delete;
  MirrorDb& operator=(const MirrorDb&) = delete;

  /// Registers a schema: `define X as SET<TUPLE<...>>;`.
  base::Status Define(std::string_view schema_text) {
    return logical_.Define(schema_text);
  }

  /// Bulk-loads objects into a defined set. Cached plans compiled against
  /// the previous contents are stale afterwards, so every registered
  /// session (see RegisterSession) is notified and drops its plan cache —
  /// callers no longer call InvalidatePlans() by hand.
  base::Status Load(const std::string& set_name,
                    std::vector<moa::MoaValue> objects);

  /// Load() plus an N-way oid-range sharding of the physical catalog:
  /// the shard layout is pre-built and `num_shards` becomes the
  /// database's default, so every query whose ExecOptions leave
  /// num_shards at 0 (the "inherit" value — what existing callers like
  /// retrieval_app pass) runs on the shard-parallel engine transparently.
  /// num_shards < 2 degrades to a plain Load and clears the default.
  /// Registered sessions are invalidated exactly as by Load.
  base::Status LoadSharded(const std::string& set_name,
                           std::vector<moa::MoaValue> objects,
                           size_t num_shards);

  /// Shard count applied to queries that don't pin one (0 = unsharded).
  size_t default_shard_count() const { return default_shards_; }

  /// Monotone counter of successful (Load/LoadSharded) reloads. The
  /// query daemon reports it in STATS so clients can observe that a
  /// reload invalidated every live session's plans.
  uint64_t load_generation() const {
    return load_generation_.load(std::memory_order_relaxed);
  }

  /// Registers a live session for plan-cache invalidation on Load. The
  /// session must outlive the registration (unregister before destroying
  /// it). Registering the same session twice is a no-op.
  void RegisterSession(monet::mil::ExecutionContext* session) const;

  /// Removes a session from the invalidation list (no-op if absent).
  void UnregisterSession(monet::mil::ExecutionContext* session) const;

  /// Number of currently registered sessions (diagnostics/tests).
  size_t registered_session_count() const;

  /// Parses, optimizes and compiles a query without running it. A
  /// non-null `session` consults/fills the session's flatten-level plan
  /// cache.
  base::Result<PreparedQuery> Prepare(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options,
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Executes a query in the paper's surface syntax. With a `session`,
  /// repeated queries (same normalized text and bindings) skip parsing,
  /// flattening and MIL optimization via the session plan cache.
  /// RegisterSession()ed sessions are invalidated automatically on Load;
  /// unregistered ones must call session->InvalidatePlans() after a
  /// re-Load themselves.
  base::Result<moa::EvalOutput> Query(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options = QueryOptions(),
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Runs an already-prepared query on the vectorized engine (or the
  /// legacy sequential Executor when options.use_engine is false).
  base::Result<moa::EvalOutput> Execute(
      const PreparedQuery& prepared,
      const QueryOptions& options = QueryOptions(),
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Runs a compiled MIL program directly (the plan-cache fast path).
  base::Result<moa::EvalOutput> ExecuteProgram(
      const monet::mil::Program& program, const QueryOptions& options,
      monet::mil::ExecutionContext* session = nullptr) const;

  moa::Database* logical() { return &logical_; }
  const moa::Database& logical() const { return logical_; }
  monet::Catalog* catalog() { return logical_.catalog(); }

 private:
  moa::Database logical_;
  /// Default shard count for queries that inherit (exec.num_shards == 0);
  /// set by LoadSharded, 0 means unsharded.
  size_t default_shards_ = 0;
  /// Successful reload count (see load_generation()).
  std::atomic<uint64_t> load_generation_{0};
  /// Sessions notified on Load. Guarded by sessions_mu_; mutable so
  /// sessions can attach to a const-held database (registration does not
  /// change logical contents).
  mutable std::mutex sessions_mu_;
  mutable std::vector<monet::mil::ExecutionContext*> sessions_;
};

}  // namespace mirror::db

#endif  // MIRROR_MIRROR_MIRROR_DB_H_
