#ifndef MIRROR_MIRROR_MIRROR_DB_H_
#define MIRROR_MIRROR_MIRROR_DB_H_

#include <string>
#include <vector>

#include "moa/database.h"
#include "moa/expr.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "moa/query_context.h"
#include "monet/mil.h"

namespace mirror::db {

/// How a query should be executed.
struct QueryOptions {
  /// Flattened set-at-a-time execution over BATs (the Mirror way). When
  /// false, the naive tuple-at-a-time object interpreter runs instead
  /// (the [BWK98] baseline).
  bool flattened = true;
  /// Algebraic rewriting + optimized physical translation + MIL peephole.
  bool optimize = true;
};

/// A compiled query, for inspection (EXPLAIN) and repeated execution.
struct PreparedQuery {
  moa::ExprPtr logical;           // after rewriting
  monet::mil::Program program;    // physical plan (flattened mode)
  moa::OptimizerReport optimizer; // what the optimizer did
};

/// The Mirror DBMS: "a research database system ... to better understand
/// the kind of data management that is required in the context of
/// multimedia digital libraries" (§1). Integrates the Moa logical layer,
/// the binary-relational physical kernel and the IR engine behind one
/// query API; schemas and queries use the paper's surface syntax.
class MirrorDb {
 public:
  MirrorDb() = default;
  MirrorDb(const MirrorDb&) = delete;
  MirrorDb& operator=(const MirrorDb&) = delete;

  /// Registers a schema: `define X as SET<TUPLE<...>>;`.
  base::Status Define(std::string_view schema_text) {
    return logical_.Define(schema_text);
  }

  /// Bulk-loads objects into a defined set.
  base::Status Load(const std::string& set_name,
                    std::vector<moa::MoaValue> objects) {
    return logical_.Load(set_name, std::move(objects));
  }

  /// Parses, optimizes and compiles a query without running it.
  base::Result<PreparedQuery> Prepare(const std::string& query_text,
                                      const moa::QueryContext& ctx,
                                      const QueryOptions& options) const;

  /// Executes a query in the paper's surface syntax.
  base::Result<moa::EvalOutput> Query(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options = QueryOptions()) const;

  /// Runs an already-prepared query (flattened engine).
  base::Result<moa::EvalOutput> Execute(const PreparedQuery& prepared) const;

  moa::Database* logical() { return &logical_; }
  const moa::Database& logical() const { return logical_; }
  monet::Catalog* catalog() { return logical_.catalog(); }

 private:
  moa::Database logical_;
};

}  // namespace mirror::db

#endif  // MIRROR_MIRROR_MIRROR_DB_H_
