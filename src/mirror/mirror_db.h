#ifndef MIRROR_MIRROR_MIRROR_DB_H_
#define MIRROR_MIRROR_MIRROR_DB_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "moa/database.h"
#include "moa/expr.h"
#include "moa/flatten.h"
#include "moa/naive_eval.h"
#include "moa/optimizer.h"
#include "moa/query_context.h"
#include "monet/exec.h"
#include "monet/mil.h"
#include "monet/recycler.h"
#include "monet/wal.h"

namespace mirror::db {

/// How a query should be executed.
struct QueryOptions {
  /// Flattened set-at-a-time execution over BATs (the Mirror way). When
  /// false, the naive tuple-at-a-time object interpreter runs instead
  /// (the [BWK98] baseline, kept as the semantic oracle).
  bool flattened = true;
  /// Algebraic rewriting + optimized physical translation + MIL peephole.
  bool optimize = true;
  /// Vectorized engine knobs: worker threads and candidate pipelines.
  monet::mil::ExecOptions exec;
  /// When false, runs the legacy materializing sequential Executor
  /// instead of the ExecutionEngine (the E-series baseline).
  bool use_engine = true;
};

/// Acknowledgement of a durable write: the WAL position that covers it
/// and the row counts after it was applied.
struct WriteAck {
  uint64_t lsn = 0;           // 0 when no WAL is attached
  uint64_t visible_rows = 0;  // rows visible in the BAT after the write
  uint64_t deleted = 0;       // rows newly deleted (DeleteRows only)
};

/// How Recover() brings a crashed database back.
enum class RecoveryMode {
  /// Restore everything before returning: full catalog load, object and
  /// index reconstruction, complete WAL replay. The classic restart.
  kFull,
  /// MM-DIRECT-style instant recovery: restore only the schemas, open
  /// for queries immediately, and load + WAL-replay each BAT on first
  /// touch while a background thread drains the rest.
  kLazy,
};

/// Durability counters surfaced through the daemon's STATS frame.
struct RecoveryStats {
  uint64_t wal_appends = 0;
  uint64_t wal_replayed_records = 0;
  uint64_t wal_truncated_bytes = 0;
  uint64_t recovery_lazy_loads = 0;  // query-driven on-demand loads
  bool recovery_pending = false;     // fragments still await recovery
};

/// A compiled query, for inspection (EXPLAIN) and repeated execution.
struct PreparedQuery {
  moa::ExprPtr logical;           // after rewriting
  monet::mil::Program program;    // physical plan (flattened mode)
  moa::OptimizerReport optimizer; // what the optimizer did
};

/// The Mirror DBMS: "a research database system ... to better understand
/// the kind of data management that is required in the context of
/// multimedia digital libraries" (§1). Integrates the Moa logical layer,
/// the binary-relational physical kernel and the IR engine behind one
/// query API; schemas and queries use the paper's surface syntax.
class MirrorDb {
 public:
  MirrorDb() = default;
  ~MirrorDb();
  MirrorDb(const MirrorDb&) = delete;
  MirrorDb& operator=(const MirrorDb&) = delete;

  /// Registers a schema: `define X as SET<TUPLE<...>>;`.
  base::Status Define(std::string_view schema_text) {
    return logical_.Define(schema_text);
  }

  /// Bulk-loads objects into a defined set. Cached plans compiled against
  /// the previous contents are stale afterwards, so every registered
  /// session (see RegisterSession) is notified and drops its plan cache —
  /// callers no longer call InvalidatePlans() by hand.
  ///
  /// Load is a real quiesce barrier: it stops query/write intake at the
  /// gate, waits for every in-flight query and durable write to drain,
  /// swaps the contents, then resumes. Queries concurrent with a reload
  /// therefore see either the entire old contents or the entire new
  /// contents, never a torn mix.
  base::Status Load(const std::string& set_name,
                    std::vector<moa::MoaValue> objects);

  /// Load() plus an N-way oid-range sharding of the physical catalog:
  /// the shard layout is pre-built and `num_shards` becomes the
  /// database's default, so every query whose ExecOptions leave
  /// num_shards at 0 (the "inherit" value — what existing callers like
  /// retrieval_app pass) runs on the shard-parallel engine transparently.
  /// num_shards < 2 degrades to a plain Load and clears the default.
  /// Registered sessions are invalidated exactly as by Load.
  base::Status LoadSharded(const std::string& set_name,
                           std::vector<moa::MoaValue> objects,
                           size_t num_shards);

  /// Shard count applied to queries that don't pin one (0 = unsharded).
  size_t default_shard_count() const { return default_shards_; }

  // -- Durable writes (the daemon's APPEND/DELETE path). ----------------

  /// Attaches (creating or recovering) a write-ahead log. Every
  /// subsequent Append/DeleteRows is logged and fsynced before it is
  /// acknowledged. `fi` (may be null, not owned) injects faults into log
  /// writes for crash testing. Records already in the log are NOT
  /// replayed here — use Recover() for that.
  base::Status AttachWal(const std::string& wal_path,
                         monet::FaultInjector* fi = nullptr);

  /// Appends `values` to the named BAT's insert tail, WAL-first: the
  /// record is written and group-commit fsynced before the ack returns,
  /// so an acknowledged append survives any crash-kill. Compiled plans
  /// stay valid (they bind BAT names, not contents); the naive
  /// interpreter's materialized objects do NOT see catalog appends, so
  /// wire writes pair with flattened execution only.
  base::Result<WriteAck> Append(const std::string& bat_name,
                                monet::Column values);

  /// Marks rows deleted in the named BAT, WAL-first like Append.
  base::Result<WriteAck> DeleteRows(const std::string& bat_name,
                                    std::vector<monet::Oid> oids);

  /// Checkpoints the database (atomic SaveTo of the visible snapshot)
  /// and resets the WAL — the log only needs to cover writes since the
  /// last checkpoint. Drains any pending recovery first so the
  /// checkpoint is complete.
  base::Status Checkpoint(const std::string& dir);

  // -- Crash recovery. ---------------------------------------------------

  /// Rebuilds the database from a checkpoint directory plus the WAL at
  /// `wal_path` (the log is opened, its damaged tail truncated, and its
  /// records indexed). kFull replays everything before returning; kLazy
  /// returns as soon as schemas are restored, recovers each fragment on
  /// first touch, and (when `background_drain`) starts a thread that
  /// drains the remaining fragments. `fi` (may be null, not owned)
  /// injects faults into subsequent WAL writes.
  base::Status Recover(const std::string& dir, const std::string& wal_path,
                       RecoveryMode mode, bool background_drain = true,
                       monet::FaultInjector* fi = nullptr);

  /// True while lazily recovered fragments remain.
  bool recovery_pending() const;

  /// Recovers every still-pending fragment now (blocking).
  base::Status DrainRecovery();

  /// Ensures the named BATs are recovered (checkpoint load + WAL slice
  /// replay). No-op for names already live or without a pending
  /// recovery. ExecuteProgram calls this with the plan's kLoadNamed
  /// names; writes call it for their target.
  base::Status EnsureRecovered(const std::vector<std::string>& names) const;

  /// Durability + recovery counters (zeroed when no WAL is attached).
  RecoveryStats recovery_stats() const;

  const monet::Wal* wal() const { return wal_.get(); }

  /// Monotone counter of successful (Load/LoadSharded) reloads. The
  /// query daemon reports it in STATS so clients can observe that a
  /// reload invalidated every live session's plans.
  uint64_t load_generation() const {
    return load_generation_.load(std::memory_order_relaxed);
  }

  /// Registers a live session for plan-cache invalidation on Load. The
  /// session must outlive the registration (unregister before destroying
  /// it). Registering the same session twice is a no-op.
  void RegisterSession(monet::mil::ExecutionContext* session) const;

  /// Removes a session from the invalidation list (no-op if absent).
  void UnregisterSession(monet::mil::ExecutionContext* session) const;

  /// Number of currently registered sessions (diagnostics/tests).
  size_t registered_session_count() const;

  /// Parses, optimizes and compiles a query without running it. A
  /// non-null `session` consults/fills the session's flatten-level plan
  /// cache.
  base::Result<PreparedQuery> Prepare(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options,
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Executes a query in the paper's surface syntax. With a `session`,
  /// repeated queries (same normalized text and bindings) skip parsing,
  /// flattening and MIL optimization via the session plan cache.
  /// RegisterSession()ed sessions are invalidated automatically on Load;
  /// unregistered ones must call session->InvalidatePlans() after a
  /// re-Load themselves.
  base::Result<moa::EvalOutput> Query(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options = QueryOptions(),
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Runs an already-prepared query on the vectorized engine (or the
  /// legacy sequential Executor when options.use_engine is false).
  base::Result<moa::EvalOutput> Execute(
      const PreparedQuery& prepared,
      const QueryOptions& options = QueryOptions(),
      monet::mil::ExecutionContext* session = nullptr) const;

  /// Runs a compiled MIL program directly (the plan-cache fast path).
  base::Result<moa::EvalOutput> ExecuteProgram(
      const monet::mil::Program& program, const QueryOptions& options,
      monet::mil::ExecutionContext* session = nullptr) const;

  moa::Database* logical() { return &logical_; }
  const moa::Database& logical() const { return logical_; }
  monet::Catalog* catalog() { return logical_.catalog(); }

  /// The server-wide recycler shared by every session of this database.
  /// Queries with `exec.recycle` arm it automatically (unsharded engine
  /// path); every mutation path fences it around the catalog apply, so
  /// entries never outlive the data version they were computed against.
  monet::Recycler* recycler() const { return &recycler_; }

 private:
  /// The quiesce barrier behind Load(): a writer-preferring shared/
  /// exclusive gate. Queries and durable writes hold it shared (they may
  /// overlap freely); Load holds it exclusive. Hand-rolled rather than
  /// std::shared_mutex because glibc's rwlock is reader-preferring — a
  /// steady query stream would starve the reload forever, while this
  /// gate parks new readers as soon as a writer announces itself.
  /// Member names follow the SharedLockable concept so std::shared_lock /
  /// std::unique_lock drive it.
  class QuiesceGate {
   public:
    void lock() {
      std::unique_lock<std::mutex> l(mu_);
      ++writers_waiting_;
      cv_.wait(l, [&] { return readers_ == 0 && !writer_active_; });
      --writers_waiting_;
      writer_active_ = true;
    }
    void unlock() {
      std::lock_guard<std::mutex> l(mu_);
      writer_active_ = false;
      cv_.notify_all();
    }
    void lock_shared() {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait(l, [&] { return writers_waiting_ == 0 && !writer_active_; });
      ++readers_;
    }
    void unlock_shared() {
      std::lock_guard<std::mutex> l(mu_);
      if (--readers_ == 0) cv_.notify_all();
    }

   private:
    std::mutex mu_;
    std::condition_variable cv_;
    int readers_ = 0;
    int writers_waiting_ = 0;
    bool writer_active_ = false;
  };

  /// Load body without the gate — shared by Load and LoadSharded so the
  /// latter doesn't deadlock re-entering the exclusive side.
  base::Status LoadLocked(const std::string& set_name,
                          std::vector<moa::MoaValue> objects);

  /// Prepare/ExecuteProgram bodies without the gate — Query holds the
  /// shared side once for its whole pipeline and calls these, while the
  /// public wrappers acquire it for external callers.
  base::Result<PreparedQuery> PrepareLocked(
      const std::string& query_text, const moa::QueryContext& ctx,
      const QueryOptions& options, monet::mil::ExecutionContext* session) const;
  base::Result<moa::EvalOutput> ExecuteProgramLocked(
      const monet::mil::Program& program, const QueryOptions& options,
      monet::mil::ExecutionContext* session) const;

  /// Per-fragment recovery state for kLazy. `pending` drains to empty as
  /// fragments are touched (or the background thread reaches them).
  struct RecoveryState {
    std::string dir;
    /// Mutation targets captured at Recover() time, so const query paths
    /// (ExecuteProgram) can complete recovery without shedding constness.
    moa::Database* db = nullptr;
    std::map<std::string, std::string> manifest;  // BAT name -> data file
    std::set<std::string> pending;
    std::vector<std::string> eager_sets;  // sets needing RestoreSetFromCatalog
    std::atomic<uint64_t> lazy_loads{0};
    /// Query-driven recoveries waiting on `mu`. The background drain
    /// yields between fragments while this is non-zero, so a first
    /// query never queues behind a long run of background replays.
    std::atomic<int> query_waiters{0};
    std::atomic<bool> stop{false};
    std::thread drain;
    mutable std::mutex mu;  // guards pending + catalog loads during recovery
  };

  /// Recovers one fragment under recovery_->mu (load + WAL slice).
  base::Status RecoverFragment(const std::string& name, bool query_driven) const;

  void StopDrainThread();

  moa::Database logical_;
  /// See QuiesceGate; mutable because const query paths hold it shared.
  mutable QuiesceGate gate_;
  std::unique_ptr<monet::Wal> wal_;
  /// Serializes writers (domain stamp + WAL append + catalog apply must
  /// agree); Sync happens outside it so group commit can batch.
  mutable std::mutex write_mu_;
  mutable std::unique_ptr<RecoveryState> recovery_;
  /// Default shard count for queries that inherit (exec.num_shards == 0);
  /// set by LoadSharded, 0 means unsharded.
  size_t default_shards_ = 0;
  /// Successful reload count (see load_generation()).
  std::atomic<uint64_t> load_generation_{0};
  /// Cross-request result + candidate cache (see recycler()); mutable
  /// because const query paths look up and insert.
  mutable monet::Recycler recycler_;
  /// Sessions notified on Load. Guarded by sessions_mu_; mutable so
  /// sessions can attach to a const-held database (registration does not
  /// change logical contents).
  mutable std::mutex sessions_mu_;
  mutable std::vector<monet::mil::ExecutionContext*> sessions_;
};

}  // namespace mirror::db

#endif  // MIRROR_MIRROR_MIRROR_DB_H_
