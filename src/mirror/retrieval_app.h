#ifndef MIRROR_MIRROR_RETRIEVAL_APP_H_
#define MIRROR_MIRROR_RETRIEVAL_APP_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/pipeline.h"
#include "ir/feedback.h"
#include "mirror/mirror_db.h"
#include "thesaurus/association_thesaurus.h"

namespace mirror::db {

/// A ranked retrieval result of the demo application.
struct RankedImage {
  monet::Oid oid;
  std::string url;
  double score;
};

/// Retrieval modes of experiment E8.
enum class RetrievalMode {
  kTextOnly,    // getBL over the annotation CONTREP only
  kVisualOnly,  // thesaurus-formulated query over the image CONTREP only
  kDualCoding,  // both codes combined (the paper's approach)
};

/// The example image retrieval application of §5 — deliberately built ON
/// the Mirror DBMS rather than inside it ("the retrieval application is
/// not integrated in the database system itself"). It drives the Figure-1
/// daemon environment to derive the internal schema, builds the
/// association thesaurus, and implements the §5.2 query loop with
/// relevance feedback.
class ImageRetrievalApp {
 public:
  struct Options {
    daemon::PipelineOptions pipeline;
    int thesaurus_top_k = 6;
    ir::FeedbackOptions feedback;
    int default_top_n = 10;
    /// Engine knobs for the ranking queries (worker threads, candidate
    /// pipelines); the app holds one session ExecutionContext, so
    /// repeated queries reuse cached plans.
    monet::mil::ExecOptions exec;
  };

  ImageRetrievalApp() : ImageRetrievalApp(Options{}) {}
  explicit ImageRetrievalApp(Options options);
  ~ImageRetrievalApp();

  /// Builds the whole demo system from a raw image library: ingests the
  /// rasters through the ORB daemons, loads `ImageLibrary` (the
  /// user-facing schema) and `ImageLibraryInternal` (the daemon-derived
  /// schema) into the Mirror DBMS, and constructs the association
  /// thesaurus from the dual representations.
  base::Status Build(const std::vector<mm::LibraryImage>& library);

  /// One retrieval run: the §5.2 loop without feedback. The textual
  /// query is processed, optionally expanded to visual terms via the
  /// thesaurus, evaluated with the paper's ranking query, and the top-n
  /// images are returned.
  base::Result<std::vector<RankedImage>> Search(const std::string& text_query,
                                                RetrievalMode mode,
                                                int top_n = -1) const;

  /// Relevance feedback (§5.2): judged-relevant oids refine the visual
  /// query; returns the improved ranking. `state` carries the session's
  /// current weighted visual query between rounds (in/out).
  base::Result<std::vector<RankedImage>> SearchWithFeedback(
      const std::string& text_query,
      const std::vector<monet::Oid>& relevant_docs,
      std::vector<moa::WeightedTerm>* state, int top_n = -1) const;

  const thesaurus::AssociationThesaurus& thesaurus() const {
    return thesaurus_;
  }
  /// The app's session execution context (plan cache statistics etc.).
  const monet::mil::ExecutionContext& session() const { return session_; }
  MirrorDb* db() { return &db_; }
  const daemon::Orb& orb() const { return orb_; }
  const daemon::DataDictionary& dictionary() const { return dictionary_; }
  const std::vector<daemon::IndexedImage>& indexed() const {
    return indexed_;
  }

 private:
  base::Result<std::vector<RankedImage>> RunRankingQuery(
      const std::string& contrep_field,
      const std::vector<moa::WeightedTerm>& terms, int top_n) const;

  std::vector<RankedImage> CombineRankings(
      const std::vector<RankedImage>& a, const std::vector<RankedImage>& b,
      int top_n) const;

  Options options_;
  daemon::Orb orb_;
  daemon::MediaServer media_;
  daemon::DataDictionary dictionary_;
  std::unique_ptr<daemon::ExtractionPipeline> pipeline_;
  thesaurus::AssociationThesaurus thesaurus_;
  MirrorDb db_;
  ir::TextPipeline text_pipeline_;
  /// Session-scoped execution state: register-file scratch plus the plan
  /// cache shared by every query this app instance runs. A context runs
  /// one query at a time, so concurrent Search() calls serialize on
  /// session_mu_ (the engine parallelizes within each query).
  mutable std::mutex session_mu_;
  mutable monet::mil::ExecutionContext session_;
  std::vector<daemon::IndexedImage> indexed_;
  std::vector<std::string> urls_;
};

}  // namespace mirror::db

#endif  // MIRROR_MIRROR_RETRIEVAL_APP_H_
