#include "mirror/mirror_db.h"

#include "base/str_util.h"

namespace mirror::db {

namespace mil = monet::mil;

namespace {

/// Session plan-cache key for a full query: normalized surface text plus
/// the options that shape the compiled program and the query bindings the
/// constant BATs were built from.
std::string PlanKey(const std::string& query_text,
                    const moa::QueryContext& ctx,
                    const QueryOptions& options) {
  std::string key = options.optimize ? "plan:O1:" : "plan:O0:";
  // Length-prefix the text so no query spelling can make two different
  // (text, bindings) pairs render to one key.
  std::string normalized = mil::ExecutionContext::NormalizeText(query_text);
  key += base::StrFormat("%zu:", normalized.size());
  key += normalized;
  key += "|";
  key += ctx.CacheKey();
  return key;
}

}  // namespace

base::Status MirrorDb::Load(const std::string& set_name,
                            std::vector<moa::MoaValue> objects) {
  base::Status status = logical_.Load(set_name, std::move(objects));
  if (!status.ok()) return status;
  // Warm the zone maps eagerly: Load dropped the stale statistics with
  // the rest of the derived caches, and building them here (one scan per
  // BAT) keeps the first pruned query out of the build cost.
  logical_.catalog()->EnsureZones();
  load_generation_.fetch_add(1, std::memory_order_relaxed);
  // New contents invalidate every compiled plan that names this database:
  // notify live sessions so their next query re-flattens.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (mil::ExecutionContext* session : sessions_) {
    session->InvalidatePlans();
  }
  return status;
}

base::Status MirrorDb::LoadSharded(const std::string& set_name,
                                   std::vector<moa::MoaValue> objects,
                                   size_t num_shards) {
  base::Status status = Load(set_name, std::move(objects));
  if (!status.ok()) return status;
  if (num_shards < 2) {
    default_shards_ = 0;
    return status;
  }
  // Pre-build the layout so the first sharded query doesn't pay the
  // fragment slicing; the cache also rebuilds lazily after later Loads.
  const monet::ShardedCatalog* layout = logical_.catalog()->Shards(num_shards);
  if (layout != nullptr) {
    // Per-shard zone maps (whole-shard top-k pruning reads the fragment
    // bounds) warm alongside the layout.
    for (size_t s = 0; s < layout->num_shards(); ++s) {
      layout->shard(s).EnsureZones();
    }
  }
  default_shards_ = num_shards;
  return status;
}

void MirrorDb::RegisterSession(mil::ExecutionContext* session) const {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (mil::ExecutionContext* s : sessions_) {
    if (s == session) return;
  }
  sessions_.push_back(session);
}

void MirrorDb::UnregisterSession(mil::ExecutionContext* session) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (*it == session) {
      sessions_.erase(it);
      return;
    }
  }
}

size_t MirrorDb::registered_session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

base::Result<PreparedQuery> MirrorDb::Prepare(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options, mil::ExecutionContext* session) const {
  auto parsed = moa::ParseExpr(query_text);
  if (!parsed.ok()) return parsed.status();
  PreparedQuery prepared;
  prepared.logical = parsed.TakeValue();
  if (options.optimize) {
    prepared.logical =
        moa::RewriteLogical(prepared.logical, &prepared.optimizer);
  }
  moa::Flattener flattener(&logical_, &ctx,
                           moa::FlattenOptions{.optimize = options.optimize},
                           session);
  auto program = flattener.Compile(prepared.logical);
  if (!program.ok()) return program.status();
  prepared.program = program.TakeValue();
  if (options.optimize) {
    moa::OptimizeMil(&prepared.program, &prepared.optimizer);
  }
  return prepared;
}

base::Result<moa::EvalOutput> MirrorDb::ExecuteProgram(
    const mil::Program& program, const QueryOptions& options,
    mil::ExecutionContext* session) const {
  base::Result<mil::RunResult> run = base::Status::Internal("unreachable");
  if (options.use_engine) {
    // num_shards == 0 inherits the database default (LoadSharded), so
    // callers that never heard of sharding run sharded transparently;
    // an explicit 1 pins the unsharded engine.
    mil::ExecOptions exec = options.exec;
    if (exec.num_shards == 0) exec.num_shards = default_shards_;
    mil::ExecutionEngine engine(&logical_.catalog(), exec);
    run = engine.Run(program, session);
  } else {
    run = mil::Executor(&logical_.catalog()).Run(program);
  }
  if (!run.ok()) return run.status();
  moa::EvalOutput out;
  if (run.value().is_scalar) {
    out.is_scalar = true;
    out.scalar = monet::Value::MakeDbl(run.value().scalar);
  } else {
    out.bat = run.value().bat;
  }
  return out;
}

base::Result<moa::EvalOutput> MirrorDb::Execute(
    const PreparedQuery& prepared, const QueryOptions& options,
    mil::ExecutionContext* session) const {
  return ExecuteProgram(prepared.program, options, session);
}

base::Result<moa::EvalOutput> MirrorDb::Query(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options, mil::ExecutionContext* session) const {
  if (!options.flattened) {
    auto parsed = moa::ParseExpr(query_text);
    if (!parsed.ok()) return parsed.status();
    moa::NaiveEvaluator naive(&logical_, &ctx);
    return naive.Evaluate(parsed.value());
  }
  std::string key;
  if (session != nullptr) {
    key = PlanKey(query_text, ctx, options);
    if (std::shared_ptr<const mil::Program> plan = session->CachedPlan(key)) {
      return ExecuteProgram(*plan, options, session);
    }
  }
  // Prepare without the session: Query caches the fully optimized plan
  // under its own key below, and letting the Flattener insert a second
  // "flat:" entry for the same query would only burn cache capacity.
  auto prepared = Prepare(query_text, ctx, options, nullptr);
  if (!prepared.ok()) return prepared.status();
  if (session != nullptr) {
    session->CachePlan(key, prepared.value().program);
  }
  return Execute(prepared.value(), options, session);
}

}  // namespace mirror::db
