#include "mirror/mirror_db.h"

#include <chrono>
#include <fstream>
#include <thread>

#include "base/str_util.h"

namespace mirror::db {

namespace mil = monet::mil;

namespace {

/// Session plan-cache key for a full query: normalized surface text plus
/// the options that shape the compiled program and the query bindings the
/// constant BATs were built from.
std::string PlanKey(const std::string& query_text,
                    const moa::QueryContext& ctx,
                    const QueryOptions& options) {
  std::string key = options.optimize ? "plan:O1:" : "plan:O0:";
  // Length-prefix the text so no query spelling can make two different
  // (text, bindings) pairs render to one key.
  std::string normalized = mil::ExecutionContext::NormalizeText(query_text);
  key += base::StrFormat("%zu:", normalized.size());
  key += normalized;
  key += "|";
  key += ctx.CacheKey();
  return key;
}

}  // namespace

MirrorDb::~MirrorDb() { StopDrainThread(); }

void MirrorDb::StopDrainThread() {
  if (recovery_ == nullptr) return;
  recovery_->stop.store(true, std::memory_order_relaxed);
  if (recovery_->drain.joinable()) recovery_->drain.join();
}

// ---------------------------------------------------------------------------
// Durable writes.

base::Status MirrorDb::AttachWal(const std::string& wal_path,
                                 monet::FaultInjector* fi) {
  auto wal = monet::Wal::Open(wal_path, fi);
  if (!wal.ok()) return wal.status();
  wal_ = wal.TakeValue();
  return base::Status::Ok();
}

base::Result<WriteAck> MirrorDb::Append(const std::string& bat_name,
                                        monet::Column values) {
  // Writes hold the quiesce gate shared: they overlap with queries and
  // each other (write_mu_ below orders them), but a Load in progress
  // excludes them until the new contents are fully in place.
  std::shared_lock<QuiesceGate> gate(gate_);
  // A write against a fragment that hasn't been recovered yet must land
  // on the recovered state, not an empty slot.
  MIRROR_RETURN_IF_ERROR(EnsureRecovered({bat_name}));
  uint64_t lsn = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    // Double fence around the delta apply: the first drops every cached
    // entry computed against the old contents (and stops in-flight
    // executions from inserting), the second fences out executions that
    // straddled the apply window and may have read a mix of old and new
    // rows. No interleaving can publish or serve a stale entry.
    recycler_.Fence();
    // Stamp the append domain *before* applying, then apply *before*
    // logging: the catalog's validation acts as the gate, so the log
    // never holds a record that cannot replay. A crash between apply
    // and fsync loses only unacknowledged writes.
    auto domain = logical_.catalog()->AppendDomainRows(bat_name);
    if (!domain.ok()) return domain.status();
    if (wal_ != nullptr) {
      MIRROR_RETURN_IF_ERROR(logical_.catalog()->Append(bat_name, values));
      auto logged = wal_->Append(monet::kWalAppend, bat_name,
                                 static_cast<uint64_t>(domain.value()), values);
      if (!logged.ok()) return logged.status();
      lsn = logged.value();
    } else {
      MIRROR_RETURN_IF_ERROR(
          logical_.catalog()->Append(bat_name, std::move(values)));
    }
    recycler_.Fence();
    load_generation_.fetch_add(1, std::memory_order_relaxed);
  }
  // Group commit outside the writer lock: concurrent appends share one
  // fsync. No ack until the record is durable.
  if (wal_ != nullptr) MIRROR_RETURN_IF_ERROR(wal_->Sync(lsn));
  WriteAck ack;
  ack.lsn = lsn;
  auto visible = logical_.catalog()->VisibleRows(bat_name);
  if (visible.ok()) ack.visible_rows = static_cast<uint64_t>(visible.value());
  return ack;
}

base::Result<WriteAck> MirrorDb::DeleteRows(const std::string& bat_name,
                                            std::vector<monet::Oid> oids) {
  std::shared_lock<QuiesceGate> gate(gate_);
  MIRROR_RETURN_IF_ERROR(EnsureRecovered({bat_name}));
  uint64_t lsn = 0;
  uint64_t deleted = 0;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    recycler_.Fence();  // see Append: double fence around the apply
    auto domain = logical_.catalog()->AppendDomainRows(bat_name);
    if (!domain.ok()) return domain.status();
    monet::Column payload = monet::Column::MakeOids(oids);
    auto count = logical_.catalog()->DeleteRows(bat_name, std::move(oids));
    if (!count.ok()) return count.status();
    deleted = static_cast<uint64_t>(count.value());
    if (wal_ != nullptr) {
      auto logged = wal_->Append(monet::kWalDelete, bat_name,
                                 static_cast<uint64_t>(domain.value()),
                                 payload);
      if (!logged.ok()) return logged.status();
      lsn = logged.value();
    }
    recycler_.Fence();
    load_generation_.fetch_add(1, std::memory_order_relaxed);
  }
  if (wal_ != nullptr) MIRROR_RETURN_IF_ERROR(wal_->Sync(lsn));
  WriteAck ack;
  ack.lsn = lsn;
  ack.deleted = deleted;
  auto visible = logical_.catalog()->VisibleRows(bat_name);
  if (visible.ok()) ack.visible_rows = static_cast<uint64_t>(visible.value());
  return ack;
}

base::Status MirrorDb::Checkpoint(const std::string& dir) {
  // The checkpoint must cover every fragment, so finish recovery first.
  MIRROR_RETURN_IF_ERROR(DrainRecovery());
  std::lock_guard<std::mutex> lock(write_mu_);
  // Visible contents don't change, but the recovery drain above may have
  // replayed fragments mid-query; fencing keeps the invariant simple:
  // every mutation path advances the recycler generation.
  recycler_.Fence();
  MIRROR_RETURN_IF_ERROR(logical_.SaveTo(dir));
  if (wal_ != nullptr) MIRROR_RETURN_IF_ERROR(wal_->Reset());
  recycler_.Fence();
  return base::Status::Ok();
}

// ---------------------------------------------------------------------------
// Crash recovery.

base::Status MirrorDb::Recover(const std::string& dir,
                               const std::string& wal_path, RecoveryMode mode,
                               bool background_drain,
                               monet::FaultInjector* fi) {
  StopDrainThread();
  recovery_.reset();
  // Entries from the pre-crash (or pre-Recover) contents must not
  // survive into the recovered database.
  recycler_.Fence();
  load_generation_.fetch_add(1, std::memory_order_relaxed);
  auto wal = monet::Wal::Open(wal_path, fi);
  if (!wal.ok()) return wal.status();
  wal_ = wal.TakeValue();

  if (mode == RecoveryMode::kFull) {
    // The classic restart: everything — catalog, content indexes, the
    // naive interpreter's materialized objects — is rebuilt before the
    // first query can run, then the whole log replays. (Objects reflect
    // the checkpoint; the flattened engine, the daemon's only mode,
    // additionally sees the replayed log records.)
    MIRROR_RETURN_IF_ERROR(logical_.LoadFrom(dir));
    MIRROR_RETURN_IF_ERROR(wal_->ReplayAllInto(logical_.catalog()));
    logical_.catalog()->EnsureZones();
    return base::Status::Ok();
  }

  // kLazy: restore schemas only, recover fragments on first touch.
  auto st = std::make_unique<RecoveryState>();
  st->dir = dir;
  st->db = &logical_;
  std::ifstream manifest(dir + "/manifest.txt");
  if (!manifest) {
    return base::Status::IoError("cannot read manifest in " + dir);
  }
  std::string line;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return base::Status::ParseError("bad manifest line: " + line);
    }
    st->manifest.emplace(line.substr(0, tab), line.substr(tab + 1));
  }
  std::set<std::string> available;
  for (const auto& [name, file] : st->manifest) available.insert(name);
  MIRROR_RETURN_IF_ERROR(
      logical_.RestoreSchemasLazy(dir, available, &st->eager_sets));
  st->pending = available;
  recovery_ = std::move(st);

  // Sets with in-memory reconstructions (content indexes, nested sets)
  // can't serve from bindings alone: recover their fragments eagerly and
  // rebuild them before opening for queries.
  for (const std::string& set_name : recovery_->eager_sets) {
    for (const auto& [name, file] : recovery_->manifest) {
      if (name == set_name || name.rfind(set_name + ".", 0) == 0) {
        MIRROR_RETURN_IF_ERROR(RecoverFragment(name, /*query_driven=*/false));
      }
    }
    MIRROR_RETURN_IF_ERROR(logical_.RestoreSetFromCatalog(set_name));
  }

  if (background_drain) {
    RecoveryState* rec = recovery_.get();
    rec->drain = std::thread([this, rec] {
      while (!rec->stop.load(std::memory_order_relaxed)) {
        // Foreground first: a query blocked on its fragment must not
        // queue behind a long run of background replays.
        while (rec->query_waiters.load(std::memory_order_relaxed) > 0 &&
               !rec->stop.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        std::string next;
        {
          std::lock_guard<std::mutex> lock(rec->mu);
          if (rec->pending.empty()) break;
          next = *rec->pending.begin();
        }
        if (!RecoverFragment(next, /*query_driven=*/false).ok()) break;
      }
    });
  }
  return base::Status::Ok();
}

base::Status MirrorDb::RecoverFragment(const std::string& name,
                                       bool query_driven) const {
  if (query_driven) {
    recovery_->query_waiters.fetch_add(1, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(recovery_->mu);
  if (query_driven) {
    recovery_->query_waiters.fetch_sub(1, std::memory_order_relaxed);
  }
  if (recovery_->pending.find(name) == recovery_->pending.end()) {
    return base::Status::Ok();  // already recovered (or never checkpointed)
  }
  auto it = recovery_->manifest.find(name);
  if (it != recovery_->manifest.end()) {
    MIRROR_RETURN_IF_ERROR(recovery_->db->catalog()->LoadBatFile(
        recovery_->dir + "/" + it->second, name));
  }
  if (wal_ != nullptr) {
    MIRROR_RETURN_IF_ERROR(
        wal_->ReplayInto(recovery_->db->catalog(), name));
  }
  recovery_->pending.erase(name);
  if (query_driven) {
    recovery_->lazy_loads.fetch_add(1, std::memory_order_relaxed);
  }
  return base::Status::Ok();
}

base::Status MirrorDb::EnsureRecovered(
    const std::vector<std::string>& names) const {
  if (recovery_ == nullptr) return base::Status::Ok();
  for (const std::string& name : names) {
    MIRROR_RETURN_IF_ERROR(RecoverFragment(name, /*query_driven=*/true));
  }
  return base::Status::Ok();
}

bool MirrorDb::recovery_pending() const {
  if (recovery_ == nullptr) return false;
  std::lock_guard<std::mutex> lock(recovery_->mu);
  return !recovery_->pending.empty();
}

base::Status MirrorDb::DrainRecovery() {
  if (recovery_ == nullptr) return base::Status::Ok();
  for (;;) {
    std::string next;
    {
      std::lock_guard<std::mutex> lock(recovery_->mu);
      if (recovery_->pending.empty()) break;
      next = *recovery_->pending.begin();
    }
    MIRROR_RETURN_IF_ERROR(RecoverFragment(next, /*query_driven=*/false));
  }
  return base::Status::Ok();
}

RecoveryStats MirrorDb::recovery_stats() const {
  RecoveryStats out;
  if (wal_ != nullptr) {
    monet::WalStats ws = wal_->stats();
    out.wal_appends = ws.appends;
    out.wal_replayed_records = ws.replayed_records;
    out.wal_truncated_bytes = ws.truncated_bytes;
  }
  if (recovery_ != nullptr) {
    out.recovery_lazy_loads =
        recovery_->lazy_loads.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(recovery_->mu);
    out.recovery_pending = !recovery_->pending.empty();
  }
  return out;
}

base::Status MirrorDb::Load(const std::string& set_name,
                            std::vector<moa::MoaValue> objects) {
  // Quiesce: stop intake (the gate parks new shared acquirers as soon as
  // this writer announces itself), drain in-flight queries and writes,
  // swap, resume.
  std::unique_lock<QuiesceGate> gate(gate_);
  return LoadLocked(set_name, std::move(objects));
}

base::Status MirrorDb::LoadLocked(const std::string& set_name,
                                  std::vector<moa::MoaValue> objects) {
  recycler_.Fence();  // see Append: double fence around the apply
  base::Status status = logical_.Load(set_name, std::move(objects));
  if (!status.ok()) return status;
  // Warm the zone maps eagerly: Load dropped the stale statistics with
  // the rest of the derived caches, and building them here (one scan per
  // BAT) keeps the first pruned query out of the build cost.
  logical_.catalog()->EnsureZones();
  recycler_.Fence();
  load_generation_.fetch_add(1, std::memory_order_relaxed);
  // New contents invalidate every compiled plan that names this database:
  // notify live sessions so their next query re-flattens.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (mil::ExecutionContext* session : sessions_) {
    session->InvalidatePlans();
  }
  return status;
}

base::Status MirrorDb::LoadSharded(const std::string& set_name,
                                   std::vector<moa::MoaValue> objects,
                                   size_t num_shards) {
  std::unique_lock<QuiesceGate> gate(gate_);
  base::Status status = LoadLocked(set_name, std::move(objects));
  if (!status.ok()) return status;
  if (num_shards < 2) {
    default_shards_ = 0;
    return status;
  }
  // Pre-build the layout so the first sharded query doesn't pay the
  // fragment slicing; the cache also rebuilds lazily after later Loads.
  const monet::ShardedCatalog* layout = logical_.catalog()->Shards(num_shards);
  if (layout != nullptr) {
    // Per-shard zone maps (whole-shard top-k pruning reads the fragment
    // bounds) warm alongside the layout.
    for (size_t s = 0; s < layout->num_shards(); ++s) {
      layout->shard(s).EnsureZones();
    }
  }
  default_shards_ = num_shards;
  return status;
}

void MirrorDb::RegisterSession(mil::ExecutionContext* session) const {
  if (session == nullptr) return;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (mil::ExecutionContext* s : sessions_) {
    if (s == session) return;
  }
  sessions_.push_back(session);
}

void MirrorDb::UnregisterSession(mil::ExecutionContext* session) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (*it == session) {
      sessions_.erase(it);
      return;
    }
  }
}

size_t MirrorDb::registered_session_count() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

base::Result<PreparedQuery> MirrorDb::Prepare(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options, mil::ExecutionContext* session) const {
  std::shared_lock<QuiesceGate> gate(gate_);
  return PrepareLocked(query_text, ctx, options, session);
}

base::Result<PreparedQuery> MirrorDb::PrepareLocked(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options, mil::ExecutionContext* session) const {
  auto parsed = moa::ParseExpr(query_text);
  if (!parsed.ok()) return parsed.status();
  PreparedQuery prepared;
  prepared.logical = parsed.TakeValue();
  if (options.optimize) {
    prepared.logical =
        moa::RewriteLogical(prepared.logical, &prepared.optimizer);
  }
  moa::Flattener flattener(&logical_, &ctx,
                           moa::FlattenOptions{.optimize = options.optimize},
                           session);
  auto program = flattener.Compile(prepared.logical);
  if (!program.ok()) return program.status();
  prepared.program = program.TakeValue();
  if (options.optimize) {
    moa::OptimizeMil(&prepared.program, &prepared.optimizer);
  }
  return prepared;
}

base::Result<moa::EvalOutput> MirrorDb::ExecuteProgram(
    const mil::Program& program, const QueryOptions& options,
    mil::ExecutionContext* session) const {
  std::shared_lock<QuiesceGate> gate(gate_);
  return ExecuteProgramLocked(program, options, session);
}

base::Result<moa::EvalOutput> MirrorDb::ExecuteProgramLocked(
    const mil::Program& program, const QueryOptions& options,
    mil::ExecutionContext* session) const {
  if (recovery_ != nullptr) {
    // Instant recovery: force-load exactly the fragments this plan
    // touches (checkpoint file + the WAL's per-BAT slice) before the
    // engine runs; everything else keeps recovering in the background.
    std::vector<std::string> names;
    for (const mil::Instr& instr : program.instrs()) {
      if (instr.op == mil::OpCode::kLoadNamed) names.push_back(instr.name);
    }
    MIRROR_RETURN_IF_ERROR(EnsureRecovered(names));
  }
  base::Result<mil::RunResult> run = base::Status::Internal("unreachable");
  if (options.use_engine) {
    // num_shards == 0 inherits the database default (LoadSharded), so
    // callers that never heard of sharding run sharded transparently;
    // an explicit 1 pins the unsharded engine.
    mil::ExecOptions exec = options.exec;
    if (exec.num_shards == 0) exec.num_shards = default_shards_;
    if (exec.recycle) {
      // Arm the server-wide recycler, capturing the generation BEFORE
      // the engine reads any catalog state: a mutation landing after
      // this point advances the generation twice (double fence), so
      // whatever this execution computes is refused on insert.
      exec.recycler = &recycler_;
      exec.recycler_generation = recycler_.generation();
    }
    mil::ExecutionEngine engine(&logical_.catalog(), exec);
    run = engine.Run(program, session);
  } else {
    run = mil::Executor(&logical_.catalog()).Run(program);
  }
  if (!run.ok()) return run.status();
  moa::EvalOutput out;
  if (run.value().is_scalar) {
    out.is_scalar = true;
    out.scalar = monet::Value::MakeDbl(run.value().scalar);
  } else {
    out.bat = run.value().bat;
  }
  return out;
}

base::Result<moa::EvalOutput> MirrorDb::Execute(
    const PreparedQuery& prepared, const QueryOptions& options,
    mil::ExecutionContext* session) const {
  std::shared_lock<QuiesceGate> gate(gate_);
  return ExecuteProgramLocked(prepared.program, options, session);
}

base::Result<moa::EvalOutput> MirrorDb::Query(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options, mil::ExecutionContext* session) const {
  // One shared hold spans the whole pipeline (parse, plan, execute): a
  // concurrent Load waits for the query to finish, and the query never
  // sees a half-swapped catalog. The gate is NOT re-entrant, hence the
  // *Locked bodies below instead of the public wrappers.
  std::shared_lock<QuiesceGate> gate(gate_);
  if (!options.flattened) {
    auto parsed = moa::ParseExpr(query_text);
    if (!parsed.ok()) return parsed.status();
    moa::NaiveEvaluator naive(&logical_, &ctx);
    return naive.Evaluate(parsed.value());
  }
  std::string key;
  if (session != nullptr) {
    key = PlanKey(query_text, ctx, options);
    if (std::shared_ptr<const mil::Program> plan = session->CachedPlan(key)) {
      return ExecuteProgramLocked(*plan, options, session);
    }
  }
  // Prepare without the session: Query caches the fully optimized plan
  // under its own key below, and letting the Flattener insert a second
  // "flat:" entry for the same query would only burn cache capacity.
  auto prepared = PrepareLocked(query_text, ctx, options, nullptr);
  if (!prepared.ok()) return prepared.status();
  if (session != nullptr) {
    session->CachePlan(key, prepared.value().program);
  }
  return ExecuteProgramLocked(prepared.value().program, options, session);
}

}  // namespace mirror::db
