#include "mirror/mirror_db.h"

namespace mirror::db {

base::Result<PreparedQuery> MirrorDb::Prepare(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options) const {
  auto parsed = moa::ParseExpr(query_text);
  if (!parsed.ok()) return parsed.status();
  PreparedQuery prepared;
  prepared.logical = parsed.TakeValue();
  if (options.optimize) {
    prepared.logical =
        moa::RewriteLogical(prepared.logical, &prepared.optimizer);
  }
  moa::Flattener flattener(&logical_, &ctx,
                           moa::FlattenOptions{.optimize = options.optimize});
  auto program = flattener.Compile(prepared.logical);
  if (!program.ok()) return program.status();
  prepared.program = program.TakeValue();
  if (options.optimize) {
    moa::OptimizeMil(&prepared.program, &prepared.optimizer);
  }
  return prepared;
}

base::Result<moa::EvalOutput> MirrorDb::Execute(
    const PreparedQuery& prepared) const {
  monet::mil::Executor executor(&logical_.catalog());
  auto run = executor.Run(prepared.program);
  if (!run.ok()) return run.status();
  moa::EvalOutput out;
  if (run.value().is_scalar) {
    out.is_scalar = true;
    out.scalar = monet::Value::MakeDbl(run.value().scalar);
  } else {
    out.bat = run.value().bat;
  }
  return out;
}

base::Result<moa::EvalOutput> MirrorDb::Query(
    const std::string& query_text, const moa::QueryContext& ctx,
    const QueryOptions& options) const {
  if (!options.flattened) {
    auto parsed = moa::ParseExpr(query_text);
    if (!parsed.ok()) return parsed.status();
    moa::NaiveEvaluator naive(&logical_, &ctx);
    return naive.Evaluate(parsed.value());
  }
  auto prepared = Prepare(query_text, ctx, options);
  if (!prepared.ok()) return prepared.status();
  return Execute(prepared.value());
}

}  // namespace mirror::db
