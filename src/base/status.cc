#include "base/status.h"

namespace mirror::base {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mirror::base
