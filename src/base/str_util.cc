#include "base/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace mirror::base {

std::vector<std::string> SplitNonEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) end = s.size();
    if (end > start) out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, end - start));
    start = end + 1;
  }
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace mirror::base
