#ifndef MIRROR_BASE_LOGGING_H_
#define MIRROR_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace mirror::base {

namespace internal_logging {

/// Accumulates a fatal diagnostic and aborts the process when destroyed.
/// Used by the MIRROR_CHECK family; not part of the public API.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    stream_ << file << ":" << line << " CHECK failed: " << condition << " ";
  }
  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  ~FatalMessage() {
    std::fputs(stream_.str().c_str(), stderr);
    std::fputc('\n', stderr);
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Turns the streamed-into ostream back into `void` so that both branches
/// of the MIRROR_CHECK ternary have type void. operator& is chosen because
/// it binds looser than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging
}  // namespace mirror::base

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes:
/// the kernel relies on these invariants and silent corruption is worse
/// than a crash. Additional context may be streamed:
///   MIRROR_CHECK(i < n) << "i=" << i;
#define MIRROR_CHECK(cond)                                       \
  (cond) ? static_cast<void>(0)                                  \
         : ::mirror::base::internal_logging::Voidify() &         \
               ::mirror::base::internal_logging::FatalMessage(   \
                   __FILE__, __LINE__, #cond)                    \
                   .stream()

#define MIRROR_CHECK_EQ(a, b) MIRROR_CHECK((a) == (b))
#define MIRROR_CHECK_NE(a, b) MIRROR_CHECK((a) != (b))
#define MIRROR_CHECK_LT(a, b) MIRROR_CHECK((a) < (b))
#define MIRROR_CHECK_LE(a, b) MIRROR_CHECK((a) <= (b))
#define MIRROR_CHECK_GT(a, b) MIRROR_CHECK((a) > (b))
#define MIRROR_CHECK_GE(a, b) MIRROR_CHECK((a) >= (b))

/// Marks unreachable code paths.
#define MIRROR_UNREACHABLE() MIRROR_CHECK(false) << "unreachable"

#endif  // MIRROR_BASE_LOGGING_H_
