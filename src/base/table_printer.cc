#include "base/table_printer.h"

#include <cstdio>

#include "base/logging.h"

namespace mirror::base {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  MIRROR_CHECK_EQ(row.size(), headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += (c == 0) ? "| " : " | ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += " |\n";
    return line;
  };
  std::string out = render_row(headers_);
  std::string rule = "|";
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c] + 2, '-');
    rule += "|";
  }
  out += rule + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace mirror::base
