#include "base/rng.h"

#include <algorithm>
#include <cmath>

namespace mirror::base {

double Rng::Gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform; u1 in (0,1] to keep log finite.
  double u1 = 1.0 - UniformDouble();
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  MIRROR_CHECK_GT(n, 0u);
  if (zipf_n_ != n || zipf_s_ != s) {
    // Build the CDF once per (n, s); sampling is then a binary search.
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      zipf_cdf_[k] = sum;
    }
    for (uint64_t k = 0; k < n; ++k) zipf_cdf_[k] /= sum;
    zipf_n_ = n;
    zipf_s_ = s;
  }
  double u = UniformDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace mirror::base
