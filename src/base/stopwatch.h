#ifndef MIRROR_BASE_STOPWATCH_H_
#define MIRROR_BASE_STOPWATCH_H_

#include <chrono>

namespace mirror::base {

/// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mirror::base

#endif  // MIRROR_BASE_STOPWATCH_H_
