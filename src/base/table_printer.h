#ifndef MIRROR_BASE_TABLE_PRINTER_H_
#define MIRROR_BASE_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace mirror::base {

/// Fixed-width ASCII table writer used by the experiment harnesses to print
/// paper-style result tables (EXPERIMENTS.md records these verbatim).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> row);

  /// Renders the table with a header rule.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mirror::base

#endif  // MIRROR_BASE_TABLE_PRINTER_H_
