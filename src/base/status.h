#ifndef MIRROR_BASE_STATUS_H_
#define MIRROR_BASE_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace mirror::base {

/// Error categories used across the Mirror DBMS. The set is deliberately
/// small; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeError,
  kParseError,
  kInternal,
  kUnimplemented,
  kIoError,
  kDeadlineExceeded,
  kOverloaded,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. The library does not throw across
/// public API boundaries; fallible operations return `Status` or
/// `Result<T>`.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// message. `Status` is cheap to copy for OK (no allocation) and carries a
/// heap string only for errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with `code` and `message`. Use the named factory
  /// functions below in new code.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Value-or-error, used as return type for fallible constructors and
/// lookups. Either holds a `T` (then `ok()` is true) or an error `Status`.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// `Result<T>`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status; programs that construct a `Result` from
  /// an OK status are defective, and get `kInternal`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access to the contained value. Precondition: `ok()`.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Moves the value out. Precondition: `ok()`.
  T TakeValue() { return *std::move(value_); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace mirror::base

/// Propagates an error status from an expression producing `Status`.
#define MIRROR_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::mirror::base::Status _status = (expr);        \
    if (!_status.ok()) return _status;              \
  } while (0)

/// Assigns the value of a `Result<T>` expression to `lhs`, propagating the
/// error status on failure. `lhs` may include a declaration.
#define MIRROR_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                 \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).TakeValue()

#define MIRROR_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define MIRROR_ASSIGN_OR_RETURN_NAME(a, b) MIRROR_ASSIGN_OR_RETURN_CONCAT(a, b)
#define MIRROR_ASSIGN_OR_RETURN(lhs, expr) \
  MIRROR_ASSIGN_OR_RETURN_IMPL(            \
      MIRROR_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, expr)

#endif  // MIRROR_BASE_STATUS_H_
