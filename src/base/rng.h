#ifndef MIRROR_BASE_RNG_H_
#define MIRROR_BASE_RNG_H_

#include <cstdint>
#include <vector>

#include "base/logging.h"

namespace mirror::base {

/// Deterministic pseudo-random number generator (splitmix64 +
/// xoshiro256**). All experiments in the repository are seeded so that
/// every table and figure is exactly reproducible run-to-run.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 to expand the seed into the xoshiro state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t Uniform(uint64_t bound) {
    MIRROR_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    MIRROR_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Standard normal deviate (Box-Muller, one value per call).
  double Gaussian();

  /// Gaussian with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Zipf-distributed rank in [0, n) with skew `s`; rank 0 is the most
  /// frequent. Used by the text workload generator (term frequencies in
  /// real collections are Zipfian).
  uint64_t Zipf(uint64_t n, double s);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
  // Zipf sampling caches the harmonic normalizer per (n, s).
  uint64_t zipf_n_ = 0;
  double zipf_s_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace mirror::base

#endif  // MIRROR_BASE_RNG_H_
