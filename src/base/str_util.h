#ifndef MIRROR_BASE_STR_UTIL_H_
#define MIRROR_BASE_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mirror::base {

/// Splits `s` on `sep`, omitting empty pieces.
std::vector<std::string> SplitNonEmpty(std::string_view s, char sep);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace mirror::base

#endif  // MIRROR_BASE_STR_UTIL_H_
