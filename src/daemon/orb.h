#ifndef MIRROR_DAEMON_ORB_H_
#define MIRROR_DAEMON_ORB_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"

namespace mirror::daemon {

/// A request/reply message of the in-process object request broker. The
/// paper used CORBA to "allow distribution of operations, establishing
/// independence between the management of meta data and the parties that
/// create these meta data"; this broker preserves the observable
/// properties of that design — daemons address each other only by object
/// name, all traffic is marshalled and counted — without the wire.
struct OrbMessage {
  std::string method;
  std::map<std::string, std::string> args;
  std::vector<uint8_t> blob;  // bulk payload (rasters, feature vectors)

  /// Approximate marshalled size in bytes (for the broker's statistics).
  size_t MarshalledBytes() const;
};

/// A remotely invokable object (CORBA servant).
class Servant {
 public:
  virtual ~Servant() = default;

  /// The interface this servant implements (for the dictionary/UI).
  virtual std::string interface_name() const = 0;

  /// Handles one invocation.
  virtual base::Result<OrbMessage> Dispatch(const OrbMessage& request) = 0;
};

/// Broker statistics, reported by experiment E9.
struct OrbStats {
  uint64_t invocations = 0;
  uint64_t events_published = 0;
  uint64_t events_delivered = 0;
  uint64_t bytes_marshalled = 0;
};

/// The object request broker: a name-to-servant registry with synchronous
/// invocation and a publish/subscribe event channel with per-subscriber
/// queues (the pipeline parallelism of Figure 1 is observable through the
/// queues even though execution is single-process).
class Orb {
 public:
  Orb() = default;
  Orb(const Orb&) = delete;
  Orb& operator=(const Orb&) = delete;

  /// Registers a servant under an object name.
  base::Status RegisterObject(const std::string& name,
                              std::shared_ptr<Servant> servant);

  /// Names of all registered objects, sorted.
  std::vector<std::string> ObjectNames() const;

  /// Synchronous invocation by object name.
  base::Result<OrbMessage> Invoke(const std::string& object_name,
                                  const OrbMessage& request);

  /// Subscribes a registered object to a topic; published events are
  /// queued per subscriber and delivered by PumpEvents().
  base::Status Subscribe(const std::string& topic,
                         const std::string& object_name);

  /// Publishes an event to all subscribers of `topic`.
  base::Status Publish(const std::string& topic, OrbMessage event);

  /// Delivers queued events (at most `max_events`; 0 = all). Returns the
  /// number delivered. Errors from servants abort delivery.
  base::Result<int64_t> PumpEvents(int64_t max_events = 0);

  /// Queued, undelivered events.
  size_t pending_events() const;

  const OrbStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OrbStats(); }

 private:
  struct Pending {
    std::string object_name;
    OrbMessage event;
  };

  std::map<std::string, std::shared_ptr<Servant>> objects_;
  std::map<std::string, std::vector<std::string>> subscriptions_;
  std::deque<Pending> queue_;
  OrbStats stats_;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_ORB_H_
