#include "daemon/wire_client.h"

#include "base/str_util.h"

namespace mirror::daemon::wire {

base::Result<Frame> WireClient::RoundTrip(
    FrameType type, const std::vector<uint8_t>& payload,
    FrameType expected_reply) {
  if (conn_ == nullptr) {
    return base::Status::IoError("client connection is closed");
  }
  base::Status s = WriteFrame(conn_.get(), type, payload);
  if (!s.ok()) return s;
  auto reply = ReadFrame(conn_.get());
  if (!reply.ok()) return reply.status();
  if (reply.value().type == FrameType::kError) {
    return DecodeError(reply.value().payload);
  }
  if (reply.value().type != expected_reply) {
    return base::Status::ParseError(base::StrFormat(
        "unexpected reply frame type 0x%02x",
        static_cast<unsigned>(reply.value().type)));
  }
  return reply;
}

base::Result<HelloReply> WireClient::Hello(const std::string& client_name) {
  HelloRequest req;
  req.client_name = client_name;
  auto reply = RoundTrip(FrameType::kHello, EncodeHelloRequest(req),
                         FrameType::kHelloOk);
  if (!reply.ok()) return reply.status();
  auto decoded = DecodeHelloReply(reply.value().payload);
  if (decoded.ok()) session_id_ = decoded.value().session_id;
  return decoded;
}

base::Result<ResultReply> WireClient::Query(
    const std::string& text, const moa::QueryContext& bindings) {
  QueryRequest req;
  req.text = text;
  req.bindings = bindings;
  auto reply = RoundTrip(FrameType::kQuery, EncodeQueryRequest(req),
                         FrameType::kResult);
  if (!reply.ok()) return reply.status();
  return DecodeResultReply(reply.value().payload);
}

base::Result<SetReply> WireClient::Set(
    const std::vector<std::pair<std::string, int64_t>>& options) {
  SetRequest req;
  req.options = options;
  auto reply =
      RoundTrip(FrameType::kSet, EncodeSetRequest(req), FrameType::kSetOk);
  if (!reply.ok()) return reply.status();
  return DecodeSetReply(reply.value().payload);
}

base::Result<AppendReply> WireClient::Append(const std::string& bat_name,
                                             monet::Column values) {
  AppendRequest req;
  req.bat_name = bat_name;
  req.values = std::move(values);
  auto reply = RoundTrip(FrameType::kAppend, EncodeAppendRequest(req),
                         FrameType::kAppendOk);
  if (!reply.ok()) return reply.status();
  return DecodeAppendReply(reply.value().payload);
}

base::Result<DeleteReply> WireClient::Delete(const std::string& bat_name,
                                             std::vector<monet::Oid> oids) {
  DeleteRequest req;
  req.bat_name = bat_name;
  req.oids = std::move(oids);
  auto reply = RoundTrip(FrameType::kDelete, EncodeDeleteRequest(req),
                         FrameType::kDeleteOk);
  if (!reply.ok()) return reply.status();
  return DecodeDeleteReply(reply.value().payload);
}

base::Result<StatsReply> WireClient::Stats() {
  auto reply = RoundTrip(FrameType::kStats, {}, FrameType::kStatsResult);
  if (!reply.ok()) return reply.status();
  return DecodeStatsReply(reply.value().payload);
}

base::Status WireClient::Close() {
  auto reply = RoundTrip(FrameType::kClose, {}, FrameType::kCloseOk);
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  return reply.ok() ? base::Status::Ok() : reply.status();
}

}  // namespace mirror::daemon::wire
