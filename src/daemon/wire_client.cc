#include "daemon/wire_client.h"

#include <chrono>
#include <thread>

#include "base/str_util.h"

namespace mirror::daemon::wire {

base::Status WireClient::TrackError(const std::vector<uint8_t>& payload) {
  return DecodeErrorDetail(payload, &last_retry_after_ms_);
}

base::Result<Frame> WireClient::RoundTrip(
    FrameType type, const std::vector<uint8_t>& payload,
    FrameType expected_reply) {
  if (conn_ == nullptr) {
    return base::Status::IoError("client connection is closed");
  }
  last_retry_after_ms_ = 0;
  base::Status s = WriteFrame(conn_.get(), type, payload);
  if (!s.ok()) return s;
  auto reply = ReadFrame(conn_.get());
  if (!reply.ok()) return reply.status();
  if (reply.value().type == FrameType::kError) {
    return TrackError(reply.value().payload);
  }
  if (reply.value().type != expected_reply) {
    return base::Status::ParseError(base::StrFormat(
        "unexpected reply frame type 0x%02x",
        static_cast<unsigned>(reply.value().type)));
  }
  return reply;
}

base::Result<HelloReply> WireClient::Hello(const std::string& client_name) {
  HelloRequest req;
  req.client_name = client_name;
  auto reply = RoundTrip(FrameType::kHello, EncodeHelloRequest(req),
                         FrameType::kHelloOk);
  if (!reply.ok()) return reply.status();
  auto decoded = DecodeHelloReply(reply.value().payload);
  if (decoded.ok()) session_id_ = decoded.value().session_id;
  return decoded;
}

base::Result<ResultReply> WireClient::Query(
    const std::string& text, const moa::QueryContext& bindings) {
  if (conn_ == nullptr) {
    return base::Status::IoError("client connection is closed");
  }
  QueryRequest req;
  req.text = text;
  req.bindings = bindings;
  last_retry_after_ms_ = 0;
  last_result_chunks_ = 0;
  base::Status s =
      WriteFrame(conn_.get(), FrameType::kQuery, EncodeQueryRequest(req));
  if (!s.ok()) return s;
  auto first = ReadFrame(conn_.get());
  if (!first.ok()) return first.status();
  if (first.value().type == FrameType::kError) {
    return TrackError(first.value().payload);
  }
  if (first.value().type == FrameType::kResult) {
    return DecodeResultReply(first.value().payload);
  }
  if (first.value().type != FrameType::kResultChunk) {
    return base::Status::ParseError(base::StrFormat(
        "unexpected reply frame type 0x%02x",
        static_cast<unsigned>(first.value().type)));
  }
  // Streamed result: concatenate the chunk byte ranges, then check the
  // trailer's totals before decoding.
  std::vector<uint8_t> body = std::move(first.value().payload);
  uint32_t chunks = 1;
  for (;;) {
    auto next = ReadFrame(conn_.get());
    if (!next.ok()) return next.status();
    if (next.value().type == FrameType::kResultChunk) {
      body.insert(body.end(), next.value().payload.begin(),
                  next.value().payload.end());
      ++chunks;
      continue;
    }
    if (next.value().type == FrameType::kResultEnd) {
      auto end = DecodeResultEnd(next.value().payload);
      if (!end.ok()) return end.status();
      if (end.value().total_bytes != body.size() ||
          end.value().chunks != chunks) {
        return base::Status::ParseError(base::StrFormat(
            "result stream mismatch: reassembled %zu bytes from %u chunks, "
            "RESULT_END declares %llu bytes in %u chunks",
            body.size(), chunks,
            static_cast<unsigned long long>(end.value().total_bytes),
            end.value().chunks));
      }
      last_result_chunks_ = chunks;
      return DecodeResultReply(body);
    }
    return base::Status::ParseError(base::StrFormat(
        "unexpected frame type 0x%02x inside a result stream",
        static_cast<unsigned>(next.value().type)));
  }
}

base::Result<SetReply> WireClient::Set(
    const std::vector<std::pair<std::string, int64_t>>& options) {
  SetRequest req;
  req.options = options;
  auto reply =
      RoundTrip(FrameType::kSet, EncodeSetRequest(req), FrameType::kSetOk);
  if (!reply.ok()) return reply.status();
  return DecodeSetReply(reply.value().payload);
}

base::Result<AppendReply> WireClient::Append(const std::string& bat_name,
                                             monet::Column values) {
  AppendRequest req;
  req.bat_name = bat_name;
  req.values = std::move(values);
  auto reply = RoundTrip(FrameType::kAppend, EncodeAppendRequest(req),
                         FrameType::kAppendOk);
  if (!reply.ok()) return reply.status();
  return DecodeAppendReply(reply.value().payload);
}

base::Result<DeleteReply> WireClient::Delete(const std::string& bat_name,
                                             std::vector<monet::Oid> oids) {
  DeleteRequest req;
  req.bat_name = bat_name;
  req.oids = std::move(oids);
  auto reply = RoundTrip(FrameType::kDelete, EncodeDeleteRequest(req),
                         FrameType::kDeleteOk);
  if (!reply.ok()) return reply.status();
  return DecodeDeleteReply(reply.value().payload);
}

base::Result<StatsReply> WireClient::Stats(bool reset) {
  StatsRequest req;
  req.reset = reset;
  // A plain snapshot keeps the empty-payload form every server version
  // understands; only the reset variant needs the flag byte.
  auto reply = RoundTrip(FrameType::kStats,
                         reset ? EncodeStatsRequest(req)
                               : std::vector<uint8_t>{},
                         FrameType::kStatsResult);
  if (!reply.ok()) return reply.status();
  return DecodeStatsReply(reply.value().payload);
}

base::Result<TraceReply> WireClient::Trace() {
  auto reply = RoundTrip(FrameType::kTrace, {}, FrameType::kTraceResult);
  if (!reply.ok()) return reply.status();
  return DecodeTraceReply(reply.value().payload);
}

base::Status WireClient::Close() {
  auto reply = RoundTrip(FrameType::kClose, {}, FrameType::kCloseOk);
  if (conn_ != nullptr) {
    conn_->Close();
    conn_.reset();
  }
  return reply.ok() ? base::Status::Ok() : reply.status();
}

// ---------------------------------------------------------------------------
// ReconnectingClient.

ReconnectingClient::ReconnectingClient(Dialer dialer, std::string client_name,
                                       RetryPolicy policy)
    : dialer_(std::move(dialer)),
      client_name_(std::move(client_name)),
      policy_(std::move(policy)),
      rng_state_(policy_.jitter_seed == 0 ? 1 : policy_.jitter_seed) {}

void ReconnectingClient::Sleep(uint64_t millis) {
  if (millis == 0) return;
  if (policy_.sleep_fn) {
    policy_.sleep_fn(millis);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

uint64_t ReconnectingClient::BackoffMs(int round) {
  uint64_t backoff = policy_.initial_backoff_ms;
  for (int i = 0; i < round && backoff < policy_.max_backoff_ms; ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, policy_.max_backoff_ms);
  // xorshift32: deterministic per-client jitter in [0, 25%] of the
  // backoff, so synchronized clients spread their retries.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 17;
  rng_state_ ^= rng_state_ << 5;
  uint64_t jitter = (backoff * (rng_state_ & 0xff)) / 1024;
  return backoff + jitter;
}

base::Status ReconnectingClient::EnsureConnected() {
  if (client_ != nullptr) return base::Status::Ok();
  auto conn = dialer_();
  if (!conn.ok()) return conn.status();
  auto client = std::make_unique<WireClient>(conn.TakeValue());
  auto hello = client->Hello(client_name_);
  if (!hello.ok()) return hello.status();
  client_ = std::move(client);
  ++reconnects_;
  return base::Status::Ok();
}

base::Result<ResultReply> ReconnectingClient::Query(
    const std::string& text, const moa::QueryContext& bindings) {
  base::Status last = base::Status::IoError("no attempt made");
  for (int attempt = 0; attempt < std::max(1, policy_.max_attempts);
       ++attempt) {
    if (attempt > 0) Sleep(BackoffMs(attempt - 1));
    base::Status connected = EnsureConnected();
    if (!connected.ok()) {
      last = connected;
      continue;
    }
    auto result = client_->Query(text, bindings);
    if (result.ok()) return result;
    last = result.status();
    switch (last.code()) {
      case base::StatusCode::kOverloaded: {
        // Typed shed: the connection is healthy, retry on it after the
        // server's own hint when it gave one (the backoff above paces
        // the NEXT attempt; the hint takes priority by sleeping now).
        ++overload_retries_;
        uint32_t hint = client_->last_retry_after_ms();
        if (hint > 0) Sleep(hint);
        break;
      }
      case base::StatusCode::kIoError:
      case base::StatusCode::kNotFound:
      case base::StatusCode::kParseError:
        // Transport-level damage: this connection is unusable (or the
        // stream is desynchronized). Reconnect before the next attempt.
        client_.reset();
        break;
      default:
        // Deterministic failures (bad query, deadline, budget, result
        // cap) will fail identically on retry: surface them at once.
        return last;
    }
  }
  return last;
}

base::Status ReconnectingClient::Close() {
  if (client_ == nullptr) return base::Status::Ok();
  base::Status s = client_->Close();
  client_.reset();
  return s;
}

}  // namespace mirror::daemon::wire
