#include "daemon/pipeline.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "base/str_util.h"
#include "mm/features.h"
#include "mm/image.h"

namespace mirror::daemon {

namespace {

// -- Blob marshalling helpers ------------------------------------------------

void AppendU32(std::vector<uint8_t>* blob, uint32_t v) {
  size_t at = blob->size();
  blob->resize(at + 4);
  std::memcpy(blob->data() + at, &v, 4);
}

uint32_t ReadU32(const std::vector<uint8_t>& blob, size_t* pos) {
  uint32_t v = 0;
  std::memcpy(&v, blob.data() + *pos, 4);
  *pos += 4;
  return v;
}

void AppendDoubles(std::vector<uint8_t>* blob,
                   const std::vector<double>& v) {
  AppendU32(blob, static_cast<uint32_t>(v.size()));
  size_t at = blob->size();
  blob->resize(at + v.size() * 8);
  std::memcpy(blob->data() + at, v.data(), v.size() * 8);
}

std::vector<double> ReadDoubles(const std::vector<uint8_t>& blob,
                                size_t* pos) {
  uint32_t n = ReadU32(blob, pos);
  std::vector<double> v(n);
  std::memcpy(v.data(), blob.data() + *pos, static_cast<size_t>(n) * 8);
  *pos += static_cast<size_t>(n) * 8;
  return v;
}

std::vector<uint8_t> SerializeSegments(const std::vector<mm::Segment>& segs) {
  std::vector<uint8_t> blob;
  AppendU32(&blob, static_cast<uint32_t>(segs.size()));
  for (const mm::Segment& s : segs) {
    AppendU32(&blob, static_cast<uint32_t>(s.pixel_indices.size()));
    size_t at = blob.size();
    blob.resize(at + s.pixel_indices.size() * 4);
    std::memcpy(blob.data() + at, s.pixel_indices.data(),
                s.pixel_indices.size() * 4);
  }
  return blob;
}

OrbMessage MakeMsg(std::string method,
                   std::map<std::string, std::string> args = {}) {
  OrbMessage msg;
  msg.method = std::move(method);
  msg.args = std::move(args);
  return msg;
}

std::vector<mm::Segment> DeserializeSegments(
    const std::vector<uint8_t>& blob) {
  size_t pos = 0;
  uint32_t count = ReadU32(blob, &pos);
  std::vector<mm::Segment> segs(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t n = ReadU32(blob, &pos);
    segs[i].pixel_indices.resize(n);
    std::memcpy(segs[i].pixel_indices.data(), blob.data() + pos,
                static_cast<size_t>(n) * 4);
    pos += static_cast<size_t>(n) * 4;
  }
  return segs;
}

// -- Daemon servants ---------------------------------------------------------

/// The segmentation daemon: subscribes to "media.ingested"; fetches the
/// raster from the media server through the ORB and keeps the segment
/// masks, served to the feature daemons on request.
class SegmenterDaemon : public Servant {
 public:
  SegmenterDaemon(Orb* orb, DataDictionary* dictionary,
                  mm::SegmenterOptions options)
      : orb_(orb), dictionary_(dictionary), segmenter_(options) {}

  std::string interface_name() const override { return "Segmenter"; }

  base::Result<OrbMessage> Dispatch(const OrbMessage& request) override {
    if (request.method == "media.ingested" || request.method == "segment") {
      const std::string& url = request.args.at("url");
      OrbMessage fetch = MakeMsg("get", {{"url", url}});
      auto raster = orb_->Invoke("media-server", fetch);
      if (!raster.ok()) return raster.status();
      mm::Image image = mm::Image::Deserialize(raster.value().blob);
      segments_[url] = segmenter_.Split(image);
      dictionary_->MarkProcessed("ImageLibrary",
                                 std::stoull(request.args.at("oid")),
                                 "segmenter");
      OrbMessage reply = MakeMsg("ok");
      reply.args["segments"] = base::StrFormat(
          "%zu", segments_[url].size());
      return reply;
    }
    if (request.method == "get_segments") {
      auto it = segments_.find(request.args.at("url"));
      if (it == segments_.end()) {
        return base::Status::NotFound("no segments for " +
                                      request.args.at("url"));
      }
      OrbMessage reply = MakeMsg("ok");
      reply.blob = SerializeSegments(it->second);
      return reply;
    }
    return base::Status::Unimplemented("Segmenter method: " + request.method);
  }

 private:
  Orb* orb_;
  DataDictionary* dictionary_;
  mm::Segmenter segmenter_;
  std::map<std::string, std::vector<mm::Segment>> segments_;
};

/// One feature-extraction daemon: wraps a FeatureExtractor; fetches the
/// raster and the segment masks through the ORB, keeps its feature table
/// and dumps it to the cluster daemon on request.
class FeatureDaemon : public Servant {
 public:
  FeatureDaemon(Orb* orb, std::unique_ptr<mm::FeatureExtractor> extractor)
      : orb_(orb), extractor_(std::move(extractor)) {}

  std::string interface_name() const override {
    return "FeatureExtractor/" + extractor_->name();
  }

  base::Result<OrbMessage> Dispatch(const OrbMessage& request) override {
    if (request.method == "extract") {
      const std::string& url = request.args.at("url");
      OrbMessage fetch = MakeMsg("get", {{"url", url}});
      auto raster = orb_->Invoke("media-server", fetch);
      if (!raster.ok()) return raster.status();
      mm::Image image = mm::Image::Deserialize(raster.value().blob);
      OrbMessage seg_req = MakeMsg("get_segments", {{"url", url}});
      auto seg_reply = orb_->Invoke("segmenter", seg_req);
      if (!seg_reply.ok()) return seg_reply.status();
      std::vector<mm::Segment> segments =
          DeserializeSegments(seg_reply.value().blob);
      for (size_t s = 0; s < segments.size(); ++s) {
        keys_.push_back({url, static_cast<int>(s)});
        vectors_.push_back(extractor_->Extract(image, segments[s]));
      }
      OrbMessage reply = MakeMsg("ok");
      reply.args["vectors"] = base::StrFormat("%zu", segments.size());
      return reply;
    }
    if (request.method == "dump") {
      OrbMessage reply = MakeMsg("ok");
      AppendU32(&reply.blob, static_cast<uint32_t>(vectors_.size()));
      for (const auto& v : vectors_) AppendDoubles(&reply.blob, v);
      std::vector<std::string> key_strings;
      key_strings.reserve(keys_.size());
      for (const auto& [url, seg] : keys_) {
        key_strings.push_back(base::StrFormat("%s#%d", url.c_str(), seg));
      }
      reply.args["keys"] = base::Join(key_strings, "\n");
      return reply;
    }
    return base::Status::Unimplemented("FeatureDaemon method: " +
                                       request.method);
  }

 private:
  Orb* orb_;
  std::unique_ptr<mm::FeatureExtractor> extractor_;
  std::vector<std::pair<std::string, int>> keys_;
  std::vector<std::vector<double>> vectors_;
};

/// The clustering daemon: pulls a feature daemon's table through the ORB,
/// clusters it (AutoClass or k-means) and replies with the per-key
/// cluster labels.
class ClusterDaemon : public Servant {
 public:
  ClusterDaemon(Orb* orb, const PipelineOptions& options)
      : orb_(orb), options_(options) {}

  std::string interface_name() const override { return "Clusterer"; }

  base::Result<OrbMessage> Dispatch(const OrbMessage& request) override {
    if (request.method != "cluster") {
      return base::Status::Unimplemented("Clusterer method: " +
                                         request.method);
    }
    const std::string& space = request.args.at("space");
    OrbMessage dump = MakeMsg("dump");
    auto table = orb_->Invoke("feature." + space, dump);
    if (!table.ok()) return table.status();
    size_t pos = 0;
    uint32_t count = ReadU32(table.value().blob, &pos);
    std::vector<std::vector<double>> data;
    data.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      data.push_back(ReadDoubles(table.value().blob, &pos));
    }
    if (data.empty()) {
      return base::Status::InvalidArgument("no vectors in space " + space);
    }
    mm::ClusteringResult result;
    if (options_.use_autoclass) {
      mm::AutoClass::Options ac = options_.autoclass;
      ac.max_k = std::min<int>(ac.max_k, static_cast<int>(data.size()));
      ac.min_k = std::min<int>(ac.min_k, ac.max_k);
      result = mm::AutoClass(ac).Run(data);
    } else {
      int k = std::min<int>(options_.kmeans_k, static_cast<int>(data.size()));
      result = mm::KMeans().Run(data, k);
    }
    OrbMessage reply = MakeMsg("ok");
    reply.args["keys"] = table.value().args.at("keys");
    reply.args["k"] = base::StrFormat("%d", result.k);
    std::vector<std::string> labels;
    labels.reserve(result.assignment.size());
    for (int a : result.assignment) {
      labels.push_back(base::StrFormat("%d", a));
    }
    reply.args["labels"] = base::Join(labels, "\n");
    return reply;
  }

 private:
  Orb* orb_;
  PipelineOptions options_;
};

}  // namespace

ExtractionPipeline::ExtractionPipeline(Orb* orb, MediaServer* media,
                                       DataDictionary* dictionary,
                                       PipelineOptions options)
    : orb_(orb), media_(media), dictionary_(dictionary),
      options_(std::move(options)) {}

base::Status ExtractionPipeline::Setup() {
  if (setup_done_) return base::Status::Ok();
  // The media server itself is an ORB object (daemons reach it only
  // through the broker). It may already be registered by another party.
  if (orb_->ObjectNames().empty() ||
      !std::count(orb_->ObjectNames().begin(), orb_->ObjectNames().end(),
                  std::string("media-server"))) {
    MIRROR_RETURN_IF_ERROR(orb_->RegisterObject(
        "media-server", std::shared_ptr<Servant>(media_, [](Servant*) {})));
  }
  MIRROR_RETURN_IF_ERROR(orb_->RegisterObject(
      "segmenter",
      std::make_shared<SegmenterDaemon>(orb_, dictionary_,
                                        options_.segmenter)));
  MIRROR_RETURN_IF_ERROR(orb_->Subscribe("media.ingested", "segmenter"));
  dictionary_->RecordDerivation("ImageLibrary", "image_segments",
                                "segmenter");
  auto extractors = mm::MakeStandardExtractors();
  for (auto& extractor : extractors) {
    std::string space = extractor->name();
    bool wanted = std::count(options_.feature_spaces.begin(),
                             options_.feature_spaces.end(), space) > 0;
    if (!wanted) continue;
    dictionary_->RecordDerivation("ImageLibrary", space, "feature." + space);
    MIRROR_RETURN_IF_ERROR(orb_->RegisterObject(
        "feature." + space,
        std::make_shared<FeatureDaemon>(orb_, std::move(extractor))));
  }
  MIRROR_RETURN_IF_ERROR(orb_->RegisterObject(
      "clusterer", std::make_shared<ClusterDaemon>(orb_, options_)));
  dictionary_->RecordDerivation("ImageLibrary", "image", "clusterer");
  setup_done_ = true;
  return base::Status::Ok();
}

base::Status ExtractionPipeline::Ingest(
    const std::vector<mm::LibraryImage>& library) {
  MIRROR_RETURN_IF_ERROR(Setup());
  for (size_t i = 0; i < library.size(); ++i) {
    const mm::LibraryImage& entry = library[i];
    media_->Put(entry.url, entry.image.Serialize());
    dictionary_->NoteObject("ImageLibrary", static_cast<monet::Oid>(i));
    IndexedImage indexed;
    indexed.url = entry.url;
    indexed.annotation = entry.annotation;
    indexed.true_class = entry.true_class;
    results_.push_back(std::move(indexed));
    ingest_order_.push_back(entry.url);
    OrbMessage event = MakeMsg("media.ingested");
    event.args["url"] = entry.url;
    event.args["oid"] = base::StrFormat("%zu", i);
    MIRROR_RETURN_IF_ERROR(orb_->Publish("media.ingested", std::move(event)));
  }
  return base::Status::Ok();
}

base::Status ExtractionPipeline::Run() {
  // Stage 1: event-driven segmentation.
  auto pumped = orb_->PumpEvents();
  if (!pumped.ok()) return pumped.status();

  // Stage 2: feature extraction, one ORB invocation per (daemon, image).
  std::map<std::string, size_t> result_index;
  for (size_t i = 0; i < results_.size(); ++i) {
    result_index[results_[i].url] = i;
  }
  for (const std::string& space : options_.feature_spaces) {
    for (const std::string& url : ingest_order_) {
      OrbMessage req = MakeMsg("extract", {{"url", url}});
      auto reply = orb_->Invoke("feature." + space, req);
      if (!reply.ok()) return reply.status();
    }
  }

  // Stage 3: clustering per feature space; visual terms per segment.
  for (const std::string& space : options_.feature_spaces) {
    OrbMessage req = MakeMsg("cluster", {{"space", space}});
    auto reply = orb_->Invoke("clusterer", req);
    if (!reply.ok()) return reply.status();
    clusters_per_space_[space] = std::stoi(reply.value().args.at("k"));
    std::vector<std::string> keys =
        base::SplitNonEmpty(reply.value().args.at("keys"), '\n');
    std::vector<std::string> labels =
        base::SplitNonEmpty(reply.value().args.at("labels"), '\n');
    if (keys.size() != labels.size()) {
      return base::Status::Internal("cluster reply key/label mismatch");
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      size_t hash_pos = keys[i].rfind('#');
      std::string url = keys[i].substr(0, hash_pos);
      auto it = result_index.find(url);
      if (it == result_index.end()) {
        return base::Status::Internal("cluster reply for unknown url " + url);
      }
      results_[it->second].visual_terms.push_back(space + "_" + labels[i]);
    }
  }

  // Segment counts per image (from any feature space's key list — use the
  // visual term multiplicity of the first space).
  for (IndexedImage& img : results_) {
    img.num_segments = 0;
  }
  if (!options_.feature_spaces.empty()) {
    const std::string& first_space = options_.feature_spaces[0];
    std::string prefix = first_space + "_";
    for (IndexedImage& img : results_) {
      for (const std::string& term : img.visual_terms) {
        if (term.rfind(prefix, 0) == 0) img.num_segments += 1;
      }
    }
  }
  return base::Status::Ok();
}

}  // namespace mirror::daemon
