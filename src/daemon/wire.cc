#include "daemon/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "base/str_util.h"
#include "monet/bat_io.h"
#include "monet/fault_injector.h"

namespace mirror::daemon::wire {

// ---------------------------------------------------------------------------
// In-process byte channel.

namespace {

/// One direction of the duplex pair: a bounded-unbounded byte queue with
/// writer-side close. Readers block until data or close. An eventfd
/// mirrors the "readable" condition (bytes pending or closed) so the
/// server's poll loop can wait on channel endpoints exactly like sockets.
struct Pipe {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<uint8_t> bytes;
  bool closed = false;
  int efd;
  bool signaled = false;

  Pipe() : efd(::eventfd(0, EFD_NONBLOCK)) {}
  ~Pipe() {
    if (efd >= 0) ::close(efd);
  }

  /// Reconciles the eventfd with the queue state. Call with `mu` held
  /// after every mutation — the invariant is: efd readable iff
  /// !bytes.empty() || closed.
  void UpdateSignal() {
    bool want = !bytes.empty() || closed;
    if (want == signaled || efd < 0) return;
    if (want) {
      uint64_t one = 1;
      [[maybe_unused]] ssize_t n = ::write(efd, &one, sizeof(one));
    } else {
      uint64_t drained = 0;
      [[maybe_unused]] ssize_t n = ::read(efd, &drained, sizeof(drained));
    }
    signaled = want;
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu);
    closed = true;
    UpdateSignal();
    cv.notify_all();
  }
};

class ChannelEndpoint : public Transport {
 public:
  ChannelEndpoint(std::shared_ptr<Pipe> in, std::shared_ptr<Pipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  ~ChannelEndpoint() override { Close(); }

  base::Result<size_t> Read(uint8_t* buf, size_t n) override {
    if (n == 0) return size_t{0};
    std::unique_lock<std::mutex> lock(in_->mu);
    in_->cv.wait(lock, [&] { return !in_->bytes.empty() || in_->closed; });
    if (in_->bytes.empty()) return size_t{0};  // closed: EOF
    size_t take = std::min(n, in_->bytes.size());
    std::copy_n(in_->bytes.begin(), take, buf);
    in_->bytes.erase(in_->bytes.begin(),
                     in_->bytes.begin() + static_cast<ptrdiff_t>(take));
    in_->UpdateSignal();
    return take;
  }

  base::Status Write(const uint8_t* buf, size_t n) override {
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed) {
      return base::Status::IoError("byte channel closed");
    }
    out_->bytes.insert(out_->bytes.end(), buf, buf + n);
    out_->UpdateSignal();
    out_->cv.notify_all();
    return base::Status::Ok();
  }

  int PollFd() const override { return in_->efd; }

  IoResult ReadSome(uint8_t* buf, size_t n) override {
    if (n == 0) return IoResult{IoStatus::kOk, 0};
    std::lock_guard<std::mutex> lock(in_->mu);
    if (in_->bytes.empty()) {
      return in_->closed ? IoResult{IoStatus::kEof, 0}
                         : IoResult{IoStatus::kWouldBlock, 0};
    }
    size_t take = std::min(n, in_->bytes.size());
    std::copy_n(in_->bytes.begin(), take, buf);
    in_->bytes.erase(in_->bytes.begin(),
                     in_->bytes.begin() + static_cast<ptrdiff_t>(take));
    in_->UpdateSignal();
    return IoResult{IoStatus::kOk, take};
  }

  IoResult WriteSome(const uint8_t* buf, size_t n) override {
    std::lock_guard<std::mutex> lock(out_->mu);
    if (out_->closed) return IoResult{IoStatus::kError, 0};
    out_->bytes.insert(out_->bytes.end(), buf, buf + n);
    out_->UpdateSignal();
    out_->cv.notify_all();
    return IoResult{IoStatus::kOk, n};
  }

  void Close() override {
    // Closing an endpoint EOFs both directions: the peer's reads drain
    // what was already written, then see EOF; our own blocked read wakes.
    in_->Close();
    out_->Close();
  }

 private:
  std::shared_ptr<Pipe> in_;
  std::shared_ptr<Pipe> out_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateChannelPair() {
  auto a_to_b = std::make_shared<Pipe>();
  auto b_to_a = std::make_shared<Pipe>();
  return {std::make_unique<ChannelEndpoint>(b_to_a, a_to_b),
          std::make_unique<ChannelEndpoint>(a_to_b, b_to_a)};
}

// ---------------------------------------------------------------------------
// POSIX TCP transport.

namespace {

class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}

  // The fd stays open (though shut down) until destruction: Close() may
  // race a Read() blocked in recv on another thread, and an early
  // ::close would let the kernel reuse the fd number under that reader.
  // The destructor runs only once no thread uses the transport.
  ~FdTransport() override {
    Close();
    ::close(fd_);
  }

  base::Result<size_t> Read(uint8_t* buf, size_t n) override {
    for (;;) {
      ssize_t got = ::recv(fd_, buf, n, 0);
      if (got >= 0) return static_cast<size_t>(got);
      if (errno == EINTR) continue;
      return base::Status::IoError(
          base::StrFormat("recv failed: %s", std::strerror(errno)));
    }
  }

  base::Status Write(const uint8_t* buf, size_t n) override {
    size_t sent = 0;
    while (sent < n) {
      ssize_t w = ::send(fd_, buf + sent, n - sent, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return base::Status::IoError(
            base::StrFormat("send failed: %s", std::strerror(errno)));
      }
      sent += static_cast<size_t>(w);
    }
    return base::Status::Ok();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shut_down_) {
      shut_down_ = true;
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  int PollFd() const override { return fd_; }

  IoResult ReadSome(uint8_t* buf, size_t n) override {
    for (;;) {
      ssize_t got = ::recv(fd_, buf, n, MSG_DONTWAIT);
      if (got > 0) return IoResult{IoStatus::kOk, static_cast<size_t>(got)};
      if (got == 0) return IoResult{IoStatus::kEof, 0};
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{IoStatus::kWouldBlock, 0};
      }
      return IoResult{IoStatus::kError, 0};
    }
  }

  IoResult WriteSome(const uint8_t* buf, size_t n) override {
    for (;;) {
      ssize_t w = ::send(fd_, buf, n, MSG_NOSIGNAL | MSG_DONTWAIT);
      if (w >= 0) return IoResult{IoStatus::kOk, static_cast<size_t>(w)};
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return IoResult{IoStatus::kWouldBlock, 0};
      }
      return IoResult{IoStatus::kError, 0};
    }
  }

 private:
  std::mutex mu_;
  const int fd_;
  bool shut_down_ = false;
};

class PosixTcpListener : public TcpListener {
 public:
  PosixTcpListener(int fd, int port) : fd_(fd), port_(port) {}

  // Same deferred-::close discipline as FdTransport: Accept() may be
  // blocked on another thread when Close() runs.
  ~PosixTcpListener() override {
    Close();
    ::close(fd_);
  }

  base::Result<std::unique_ptr<Transport>> Accept() override {
    for (;;) {
      int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::unique_ptr<Transport>(new FdTransport(client));
      }
      // EINTR and a client that hung up between SYN and accept are not
      // listener failures; only real errors (including our own Close's
      // shutdown) surface.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return base::Status::IoError(
          base::StrFormat("accept failed: %s", std::strerror(errno)));
    }
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shut_down_) {
      shut_down_ = true;
      ::shutdown(fd_, SHUT_RDWR);
    }
  }

  int port() const override { return port_; }

 private:
  std::mutex mu_;
  const int fd_;
  bool shut_down_ = false;
  int port_ = 0;
};

}  // namespace

base::Result<std::unique_ptr<TcpListener>> TcpListen(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return base::Status::IoError(
        base::StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    base::Status err = base::Status::IoError(
        base::StrFormat("bind/listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return err;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    base::Status err = base::Status::IoError("getsockname failed");
    ::close(fd);
    return err;
  }
  return std::unique_ptr<TcpListener>(
      new PosixTcpListener(fd, ntohs(addr.sin_port)));
}

base::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return base::Status::IoError(
        base::StrFormat("socket failed: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return base::Status::InvalidArgument(
        base::StrFormat("not an IPv4 address: %s", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    base::Status err = base::Status::IoError(
        base::StrFormat("connect failed: %s", std::strerror(errno)));
    ::close(fd);
    return err;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(new FdTransport(fd));
}

// ---------------------------------------------------------------------------
// Frame I/O.

namespace {

/// Reads exactly `n` bytes. `saw_any` reports whether at least one byte
/// arrived before EOF, distinguishing a clean close from truncation.
base::Status ReadExact(Transport* t, uint8_t* buf, size_t n,
                       bool* saw_any) {
  size_t got = 0;
  while (got < n) {
    auto r = t->Read(buf + got, n - got);
    if (!r.ok()) return r.status();
    if (r.value() == 0) {
      return got == 0 && !*saw_any
                 ? base::Status::NotFound("connection closed")
                 : base::Status::IoError("truncated frame");
    }
    *saw_any = true;
    got += r.value();
  }
  return base::Status::Ok();
}

}  // namespace

bool IsKnownFrameType(uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kSet:
    case FrameType::kStats:
    case FrameType::kClose:
    case FrameType::kAppend:
    case FrameType::kDelete:
    case FrameType::kTrace:
    case FrameType::kHelloOk:
    case FrameType::kResult:
    case FrameType::kSetOk:
    case FrameType::kStatsResult:
    case FrameType::kCloseOk:
    case FrameType::kAppendOk:
    case FrameType::kDeleteOk:
    case FrameType::kResultChunk:
    case FrameType::kResultEnd:
    case FrameType::kTraceResult:
    case FrameType::kError:
      return true;
  }
  return false;
}

base::Status WriteFrame(Transport* t, FrameType type,
                        const std::vector<uint8_t>& payload) {
  if (payload.size() > kMaxFramePayload) {
    return base::Status::InvalidArgument("frame payload too large");
  }
  uint8_t header[5];
  header[0] = static_cast<uint8_t>(type);
  uint32_t len = static_cast<uint32_t>(payload.size());
  std::memcpy(header + 1, &len, sizeof(len));
  base::Status s = t->Write(header, sizeof(header));
  if (!s.ok()) return s;
  if (!payload.empty()) return t->Write(payload.data(), payload.size());
  return base::Status::Ok();
}

base::Result<Frame> ReadFrame(Transport* t) {
  uint8_t header[5];
  bool saw_any = false;
  base::Status s = ReadExact(t, header, sizeof(header), &saw_any);
  if (!s.ok()) return s;
  if (!IsKnownFrameType(header[0])) {
    return base::Status::ParseError(
        base::StrFormat("unknown frame type 0x%02x", header[0]));
  }
  uint32_t len = 0;
  std::memcpy(&len, header + 1, sizeof(len));
  if (len > kMaxFramePayload) {
    return base::Status::ParseError(
        base::StrFormat("frame payload of %u bytes exceeds the %u limit",
                        len, kMaxFramePayload));
  }
  Frame frame;
  frame.type = static_cast<FrameType>(header[0]);
  frame.payload.resize(len);
  if (len > 0) {
    s = ReadExact(t, frame.payload.data(), len, &saw_any);
    if (!s.ok()) return s;
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Primitive payload codec.

namespace {

class Writer {
 public:
  void U8(uint8_t v) { out_.push_back(v); }
  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void I64(int64_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    const uint8_t* p = reinterpret_cast<const uint8_t*>(s.data());
    out_.insert(out_.end(), p, p + s.size());
  }

  std::vector<uint8_t>* buffer() { return &out_; }
  std::vector<uint8_t> Take() { return std::move(out_); }

 private:
  template <typename T>
  void Pod(T v) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  std::vector<uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& buf) : buf_(buf) {}

  bool U8(uint8_t* v) { return Pod(v); }
  bool U32(uint32_t* v) { return Pod(v); }
  bool U64(uint64_t* v) { return Pod(v); }
  bool I64(int64_t* v) { return Pod(v); }
  bool F64(double* v) { return Pod(v); }
  bool Str(std::string* v) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (buf_.size() - pos_ < n) return false;
    v->assign(reinterpret_cast<const char*>(buf_.data() + pos_), n);
    pos_ += n;
    return true;
  }

  size_t* pos() { return &pos_; }
  const std::vector<uint8_t>& buf() const { return buf_; }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  bool Pod(T* v) {
    if (buf_.size() - pos_ < sizeof(T) || pos_ > buf_.size()) return false;
    std::memcpy(v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  const std::vector<uint8_t>& buf_;
  size_t pos_ = 0;
};

base::Status Malformed(const char* what) {
  return base::Status::ParseError(
      base::StrFormat("malformed %s payload", what));
}

}  // namespace

// ---------------------------------------------------------------------------
// Message codecs.

std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& m) {
  Writer w;
  w.U32(m.protocol_version);
  w.Str(m.client_name);
  return w.Take();
}

base::Result<HelloRequest> DecodeHelloRequest(const std::vector<uint8_t>& p) {
  Reader r(p);
  HelloRequest m;
  if (!r.U32(&m.protocol_version) || !r.Str(&m.client_name)) {
    return Malformed("HELLO");
  }
  return m;
}

std::vector<uint8_t> EncodeHelloReply(const HelloReply& m) {
  Writer w;
  w.U32(m.protocol_version);
  w.U64(m.session_id);
  w.Str(m.server_name);
  return w.Take();
}

base::Result<HelloReply> DecodeHelloReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  HelloReply m;
  if (!r.U32(&m.protocol_version) || !r.U64(&m.session_id) ||
      !r.Str(&m.server_name)) {
    return Malformed("HELLO reply");
  }
  return m;
}

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& m) {
  Writer w;
  w.Str(m.text);
  w.U32(static_cast<uint32_t>(m.bindings.bindings().size()));
  for (const auto& [name, terms] : m.bindings.bindings()) {
    w.Str(name);
    w.U32(static_cast<uint32_t>(terms.size()));
    for (const moa::WeightedTerm& t : terms) {
      w.Str(t.term);
      w.F64(t.weight);
    }
  }
  return w.Take();
}

base::Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& p) {
  Reader r(p);
  QueryRequest m;
  uint32_t num_bindings = 0;
  if (!r.Str(&m.text) || !r.U32(&num_bindings)) return Malformed("QUERY");
  for (uint32_t b = 0; b < num_bindings; ++b) {
    std::string name;
    uint32_t num_terms = 0;
    if (!r.Str(&name) || !r.U32(&num_terms)) return Malformed("QUERY");
    std::vector<moa::WeightedTerm> terms;
    // Reserve from the wire count only up to what the remaining payload
    // could possibly hold (>= 12 bytes per term): a malicious count in a
    // tiny frame must fail with ParseError below, not allocate gigabytes.
    terms.reserve(std::min<size_t>(num_terms, r.remaining() / 12 + 1));
    for (uint32_t i = 0; i < num_terms; ++i) {
      moa::WeightedTerm t;
      if (!r.Str(&t.term) || !r.F64(&t.weight)) return Malformed("QUERY");
      terms.push_back(std::move(t));
    }
    m.bindings.Bind(name, std::move(terms));
  }
  return m;
}

std::vector<uint8_t> EncodeSetRequest(const SetRequest& m) {
  Writer w;
  w.U32(static_cast<uint32_t>(m.options.size()));
  for (const auto& [key, value] : m.options) {
    w.Str(key);
    w.I64(value);
  }
  return w.Take();
}

base::Result<SetRequest> DecodeSetRequest(const std::vector<uint8_t>& p) {
  Reader r(p);
  SetRequest m;
  uint32_t n = 0;
  if (!r.U32(&n)) return Malformed("SET");
  m.options.reserve(std::min<size_t>(n, r.remaining() / 12 + 1));
  for (uint32_t i = 0; i < n; ++i) {
    std::string key;
    int64_t value = 0;
    if (!r.Str(&key) || !r.I64(&value)) return Malformed("SET");
    m.options.emplace_back(std::move(key), value);
  }
  return m;
}

std::vector<uint8_t> EncodeSetReply(const SetReply& m) {
  Writer w;
  w.U64(m.num_shards);
  w.I64(m.num_threads);
  w.U8(m.morsel_joins ? 1 : 0);
  w.U8(m.fuse_aggregates ? 1 : 0);
  w.U8(m.zone_maps ? 1 : 0);
  w.U8(m.topk_prune ? 1 : 0);
  w.U64(m.query_deadline_ms);
  w.U64(m.memory_budget_bytes);
  w.U8(m.recycle ? 1 : 0);
  w.U8(m.trace ? 1 : 0);
  return w.Take();
}

base::Result<SetReply> DecodeSetReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  SetReply m;
  uint8_t morsel = 0;
  uint8_t fuse = 0;
  uint8_t zones = 0;
  uint8_t topk = 0;
  uint8_t recycle = 0;
  uint8_t trace = 0;
  if (!r.U64(&m.num_shards) || !r.I64(&m.num_threads) || !r.U8(&morsel) ||
      !r.U8(&fuse) || !r.U8(&zones) || !r.U8(&topk) ||
      !r.U64(&m.query_deadline_ms) || !r.U64(&m.memory_budget_bytes) ||
      !r.U8(&recycle) || !r.U8(&trace)) {
    return Malformed("SET reply");
  }
  m.morsel_joins = morsel != 0;
  m.fuse_aggregates = fuse != 0;
  m.zone_maps = zones != 0;
  m.topk_prune = topk != 0;
  m.recycle = recycle != 0;
  m.trace = trace != 0;
  return m;
}

std::vector<uint8_t> EncodeAppendRequest(const AppendRequest& m) {
  Writer w;
  w.Str(m.bat_name);
  monet::EncodeColumn(m.values, w.buffer());
  return w.Take();
}

base::Result<AppendRequest> DecodeAppendRequest(
    const std::vector<uint8_t>& p) {
  Reader r(p);
  AppendRequest m;
  if (!r.Str(&m.bat_name)) return Malformed("APPEND");
  auto values = monet::DecodeColumn(r.buf(), r.pos());
  if (!values.ok()) return values.status();
  m.values = values.TakeValue();
  return m;
}

std::vector<uint8_t> EncodeAppendReply(const AppendReply& m) {
  Writer w;
  w.U64(m.lsn);
  w.U64(m.visible_rows);
  return w.Take();
}

base::Result<AppendReply> DecodeAppendReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  AppendReply m;
  if (!r.U64(&m.lsn) || !r.U64(&m.visible_rows)) {
    return Malformed("APPEND reply");
  }
  return m;
}

std::vector<uint8_t> EncodeDeleteRequest(const DeleteRequest& m) {
  Writer w;
  w.Str(m.bat_name);
  monet::EncodeColumn(monet::Column::MakeOids(m.oids), w.buffer());
  return w.Take();
}

base::Result<DeleteRequest> DecodeDeleteRequest(
    const std::vector<uint8_t>& p) {
  Reader r(p);
  DeleteRequest m;
  if (!r.Str(&m.bat_name)) return Malformed("DELETE");
  auto oids = monet::DecodeColumn(r.buf(), r.pos());
  if (!oids.ok()) return oids.status();
  if (oids.value().type() != monet::ValueType::kOid) {
    return Malformed("DELETE");
  }
  m.oids = oids.value().oids();
  return m;
}

std::vector<uint8_t> EncodeDeleteReply(const DeleteReply& m) {
  Writer w;
  w.U64(m.lsn);
  w.U64(m.visible_rows);
  w.U64(m.deleted);
  return w.Take();
}

base::Result<DeleteReply> DecodeDeleteReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  DeleteReply m;
  if (!r.U64(&m.lsn) || !r.U64(&m.visible_rows) || !r.U64(&m.deleted)) {
    return Malformed("DELETE reply");
  }
  return m;
}

std::vector<uint8_t> EncodeResultReply(const moa::EvalOutput& out) {
  Writer w;
  w.U8(out.is_scalar ? 1 : 0);
  if (out.is_scalar) {
    monet::EncodeValue(out.scalar, w.buffer());
  } else {
    // An absent BAT (defensive; engines always set one) ships as an
    // empty int table.
    if (out.bat == nullptr) {
      monet::EncodeBat(
          monet::Bat::Empty(monet::ValueType::kVoid, monet::ValueType::kInt),
          w.buffer());
    } else {
      monet::EncodeBat(*out.bat, w.buffer());
    }
  }
  return w.Take();
}

base::Result<ResultReply> DecodeResultReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  ResultReply m;
  uint8_t is_scalar = 0;
  if (!r.U8(&is_scalar)) return Malformed("RESULT");
  m.is_scalar = is_scalar != 0;
  if (m.is_scalar) {
    auto v = monet::DecodeValue(r.buf(), r.pos());
    if (!v.ok()) return v.status();
    m.scalar = v.TakeValue();
  } else {
    auto bat = monet::DecodeBat(r.buf(), r.pos());
    if (!bat.ok()) return bat.status();
    m.bat = std::make_shared<const monet::Bat>(bat.TakeValue());
  }
  return m;
}

std::vector<uint8_t> EncodeResultEnd(const ResultEnd& m) {
  Writer w;
  w.U64(m.total_bytes);
  w.U32(m.chunks);
  return w.Take();
}

base::Result<ResultEnd> DecodeResultEnd(const std::vector<uint8_t>& p) {
  Reader r(p);
  ResultEnd m;
  if (!r.U64(&m.total_bytes) || !r.U32(&m.chunks)) {
    return Malformed("RESULT_END");
  }
  return m;
}

std::vector<uint8_t> EncodeError(const base::Status& status) {
  Writer w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  return w.Take();
}

std::vector<uint8_t> EncodeError(const base::Status& status,
                                 uint32_t retry_after_ms) {
  Writer w;
  w.U8(static_cast<uint8_t>(status.code()));
  w.Str(status.message());
  w.U32(retry_after_ms);
  return w.Take();
}

base::Status DecodeError(const std::vector<uint8_t>& p) {
  uint32_t ignored = 0;
  return DecodeErrorDetail(p, &ignored);
}

base::Status DecodeErrorDetail(const std::vector<uint8_t>& p,
                               uint32_t* retry_after_ms) {
  *retry_after_ms = 0;
  Reader r(p);
  uint8_t code = 0;
  std::string message;
  if (!r.U8(&code) || !r.Str(&message)) return Malformed("ERROR");
  // The retry-after hint is optional (and further trailing bytes are
  // tolerated for forward compatibility).
  uint32_t hint = 0;
  if (r.U32(&hint)) *retry_after_ms = hint;
  // An error frame must decode to an error: an out-of-range or OK code
  // (corrupt or future peer) degrades to Internal rather than "success".
  if (code == 0 ||
      code > static_cast<uint8_t>(base::StatusCode::kResourceExhausted)) {
    return base::Status::Internal(std::move(message));
  }
  return base::Status(static_cast<base::StatusCode>(code),
                      std::move(message));
}

namespace {

void WriteHistogram(Writer* w, const HistogramSummary& h) {
  w->U64(h.count);
  w->U64(h.sum_micros);
  w->U64(h.max_micros);
  w->U64(h.p50_micros);
  w->U64(h.p90_micros);
  w->U64(h.p99_micros);
  for (size_t i = 0; i < kHistogramBuckets; ++i) w->U64(h.buckets[i]);
}

bool ReadHistogram(Reader* r, HistogramSummary* h) {
  if (!r->U64(&h->count) || !r->U64(&h->sum_micros) ||
      !r->U64(&h->max_micros) || !r->U64(&h->p50_micros) ||
      !r->U64(&h->p90_micros) || !r->U64(&h->p99_micros)) {
    return false;
  }
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (!r->U64(&h->buckets[i])) return false;
  }
  return true;
}

void WriteClassLatency(Writer* w, const RequestClassLatency& c) {
  WriteHistogram(w, c.queue_wait);
  WriteHistogram(w, c.exec);
  WriteHistogram(w, c.total);
}

bool ReadClassLatency(Reader* r, RequestClassLatency* c) {
  return ReadHistogram(r, &c->queue_wait) && ReadHistogram(r, &c->exec) &&
         ReadHistogram(r, &c->total);
}

}  // namespace

std::vector<uint8_t> EncodeStatsReply(const StatsReply& m) {
  Writer w;
  w.U64(m.server.frames_in);
  w.U64(m.server.frames_out);
  w.U64(m.server.bytes_in);
  w.U64(m.server.bytes_out);
  w.U64(m.server.requests);
  w.U64(m.server.errors);
  w.U64(m.server.coalesced_requests);
  w.U64(m.server.sessions_opened);
  w.U64(m.server.sessions_closed);
  w.U64(m.server.load_generation);
  w.U64(m.server.zone_blocks_skipped);
  w.U64(m.server.topk_morsels_pruned);
  w.U64(m.server.topk_shards_pruned);
  w.U64(m.server.probe_partitions);
  w.U64(m.server.wal_appends);
  w.U64(m.server.wal_replayed_records);
  w.U64(m.server.wal_truncated_bytes);
  w.U64(m.server.recovery_lazy_loads);
  w.U64(m.server.recovery_pending);
  w.U64(m.server.requests_shed);
  w.U64(m.server.queue_depth_high_water);
  w.U64(m.server.active_workers);
  w.U64(m.server.result_chunks_streamed);
  w.U64(m.server.slow_client_disconnects);
  w.U64(m.server.peak_query_bytes);
  w.U64(m.server.result_cache_hits);
  w.U64(m.server.result_cache_misses);
  w.U64(m.server.recycler_admissions_rejected);
  w.U64(m.server.recycler_evictions);
  w.U64(m.server.recycler_bytes_held);
  w.U64(m.server.candidate_cache_hits);
  w.U64(m.server.candidate_subsumption_hits);
  w.U32(static_cast<uint32_t>(m.sessions.size()));
  for (const SessionStatsEntry& s : m.sessions) {
    w.U64(s.session_id);
    w.Str(s.client_name);
    w.U64(s.requests);
    w.U64(s.errors);
    w.U64(s.plan_cache_size);
    w.U64(s.plan_cache_hits);
    w.U64(s.plan_cache_lookups);
    std::vector<uint8_t> options = EncodeSetReply(s.options);
    w.buffer()->insert(w.buffer()->end(), options.begin(), options.end());
  }
  WriteClassLatency(&w, m.server.latency_query);
  WriteClassLatency(&w, m.server.latency_append);
  WriteClassLatency(&w, m.server.latency_delete);
  w.U32(static_cast<uint32_t>(m.server.slow_queries.size()));
  for (const SlowQueryEntry& e : m.server.slow_queries) {
    w.U64(e.session_id);
    w.U64(e.total_micros);
    w.U64(e.exec_micros);
    w.Str(e.query);
    w.Str(e.bindings_key);
    w.Str(e.counters);
  }
  return w.Take();
}

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& m) {
  Writer w;
  w.U8(m.reset ? 1 : 0);
  return w.Take();
}

base::Result<StatsRequest> DecodeStatsRequest(const std::vector<uint8_t>& p) {
  StatsRequest m;
  // Pre-reset clients send STATS with no payload at all.
  if (p.empty()) return m;
  Reader r(p);
  uint8_t reset = 0;
  if (!r.U8(&reset)) return Malformed("STATS");
  m.reset = reset != 0;
  return m;
}

std::vector<uint8_t> EncodeTraceReply(const TraceReply& m) {
  Writer w;
  w.U64(m.query_seq);
  w.U64(m.rows);
  w.U32(static_cast<uint32_t>(m.names.size()));
  for (const std::string& name : m.names) w.Str(name);
  w.U32(static_cast<uint32_t>(m.cols.size()));
  for (const monet::Bat& col : m.cols) monet::EncodeBat(col, w.buffer());
  return w.Take();
}

base::Result<TraceReply> DecodeTraceReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  TraceReply m;
  uint32_t num_names = 0;
  if (!r.U64(&m.query_seq) || !r.U64(&m.rows) || !r.U32(&num_names)) {
    return Malformed("TRACE reply");
  }
  m.names.reserve(std::min<size_t>(num_names, r.remaining() / 4 + 1));
  for (uint32_t i = 0; i < num_names; ++i) {
    std::string name;
    if (!r.Str(&name)) return Malformed("TRACE reply");
    m.names.push_back(std::move(name));
  }
  uint32_t num_cols = 0;
  if (!r.U32(&num_cols)) return Malformed("TRACE reply");
  if (num_cols != m.names.size()) return Malformed("TRACE reply");
  m.cols.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; ++i) {
    auto col = monet::DecodeBat(r.buf(), r.pos());
    if (!col.ok()) return col.status();
    m.cols.push_back(col.TakeValue());
  }
  return m;
}

base::Result<StatsReply> DecodeStatsReply(const std::vector<uint8_t>& p) {
  Reader r(p);
  StatsReply m;
  uint32_t num_sessions = 0;
  if (!r.U64(&m.server.frames_in) || !r.U64(&m.server.frames_out) ||
      !r.U64(&m.server.bytes_in) || !r.U64(&m.server.bytes_out) ||
      !r.U64(&m.server.requests) || !r.U64(&m.server.errors) ||
      !r.U64(&m.server.coalesced_requests) ||
      !r.U64(&m.server.sessions_opened) ||
      !r.U64(&m.server.sessions_closed) ||
      !r.U64(&m.server.load_generation) ||
      !r.U64(&m.server.zone_blocks_skipped) ||
      !r.U64(&m.server.topk_morsels_pruned) ||
      !r.U64(&m.server.topk_shards_pruned) ||
      !r.U64(&m.server.probe_partitions) ||
      !r.U64(&m.server.wal_appends) ||
      !r.U64(&m.server.wal_replayed_records) ||
      !r.U64(&m.server.wal_truncated_bytes) ||
      !r.U64(&m.server.recovery_lazy_loads) ||
      !r.U64(&m.server.recovery_pending) ||
      !r.U64(&m.server.requests_shed) ||
      !r.U64(&m.server.queue_depth_high_water) ||
      !r.U64(&m.server.active_workers) ||
      !r.U64(&m.server.result_chunks_streamed) ||
      !r.U64(&m.server.slow_client_disconnects) ||
      !r.U64(&m.server.peak_query_bytes) ||
      !r.U64(&m.server.result_cache_hits) ||
      !r.U64(&m.server.result_cache_misses) ||
      !r.U64(&m.server.recycler_admissions_rejected) ||
      !r.U64(&m.server.recycler_evictions) ||
      !r.U64(&m.server.recycler_bytes_held) ||
      !r.U64(&m.server.candidate_cache_hits) ||
      !r.U64(&m.server.candidate_subsumption_hits) || !r.U32(&num_sessions)) {
    return Malformed("STATS reply");
  }
  m.sessions.reserve(
      std::min<size_t>(num_sessions, r.remaining() / 70 + 1));
  for (uint32_t i = 0; i < num_sessions; ++i) {
    SessionStatsEntry s;
    uint8_t morsel = 0;
    uint8_t fuse = 0;
    uint8_t zones = 0;
    uint8_t topk = 0;
    uint8_t recycle = 0;
    uint8_t trace = 0;
    if (!r.U64(&s.session_id) || !r.Str(&s.client_name) ||
        !r.U64(&s.requests) || !r.U64(&s.errors) ||
        !r.U64(&s.plan_cache_size) || !r.U64(&s.plan_cache_hits) ||
        !r.U64(&s.plan_cache_lookups) || !r.U64(&s.options.num_shards) ||
        !r.I64(&s.options.num_threads) || !r.U8(&morsel) || !r.U8(&fuse) ||
        !r.U8(&zones) || !r.U8(&topk) ||
        !r.U64(&s.options.query_deadline_ms) ||
        !r.U64(&s.options.memory_budget_bytes) || !r.U8(&recycle) ||
        !r.U8(&trace)) {
      return Malformed("STATS reply");
    }
    s.options.morsel_joins = morsel != 0;
    s.options.fuse_aggregates = fuse != 0;
    s.options.zone_maps = zones != 0;
    s.options.topk_prune = topk != 0;
    s.options.recycle = recycle != 0;
    s.options.trace = trace != 0;
    m.sessions.push_back(std::move(s));
  }
  // Latency histograms and the slow-query ring ride after the session
  // entries; a payload from a pre-histogram server simply ends here and
  // leaves the defaults (all-zero histograms, empty ring).
  if (r.remaining() == 0) return m;
  if (!ReadClassLatency(&r, &m.server.latency_query) ||
      !ReadClassLatency(&r, &m.server.latency_append) ||
      !ReadClassLatency(&r, &m.server.latency_delete)) {
    return Malformed("STATS reply");
  }
  uint32_t num_slow = 0;
  if (!r.U32(&num_slow)) return Malformed("STATS reply");
  m.server.slow_queries.reserve(
      std::min<size_t>(num_slow, r.remaining() / 36 + 1));
  for (uint32_t i = 0; i < num_slow; ++i) {
    SlowQueryEntry e;
    if (!r.U64(&e.session_id) || !r.U64(&e.total_micros) ||
        !r.U64(&e.exec_micros) || !r.Str(&e.query) ||
        !r.Str(&e.bindings_key) || !r.Str(&e.counters)) {
      return Malformed("STATS reply");
    }
    m.server.slow_queries.push_back(std::move(e));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Latency-histogram bucket layout and rendering. The bounds are part of
// the wire format (bucket counts travel raw in HistogramSummary), so the
// layout lives here rather than in the server.

uint64_t HistogramBucketBound(size_t i) {
  // 0, 1, then alternating x2 / x1.5 steps (~sqrt(2) per bucket):
  // 2, 3, 4, 6, 8, 12, 16, 24, ... up to 2^31 us (~36 min) at bucket
  // 62; bucket 63 is the overflow catch-all.
  if (i == 0) return 0;
  if (i == 1) return 1;
  if (i >= kHistogramBuckets - 1) return UINT64_MAX;
  size_t k = i / 2;  // i = 2k or 2k+1, k >= 1
  return (i % 2 == 0) ? (uint64_t{1} << k) : (uint64_t{3} << (k - 1));
}

size_t HistogramBucketIndex(uint64_t micros) {
  for (size_t i = 0; i < kHistogramBuckets - 1; ++i) {
    if (micros <= HistogramBucketBound(i)) return i;
  }
  return kHistogramBuckets - 1;
}

uint64_t HistogramPercentile(const HistogramSummary& h, double q) {
  if (h.count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  double rank = q * static_cast<double>(h.count);
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    uint64_t c = h.buckets[i];
    if (c == 0) continue;
    if (static_cast<double>(cum) + static_cast<double>(c) >= rank) {
      uint64_t hi = HistogramBucketBound(i);
      // The overflow bucket has no finite upper bound: the tracked
      // maximum is the best available estimate.
      if (hi == UINT64_MAX) return h.max_micros;
      uint64_t lo = i == 0 ? 0 : HistogramBucketBound(i - 1);
      double frac = (rank - static_cast<double>(cum)) /
                    static_cast<double>(c);
      uint64_t v =
          lo + static_cast<uint64_t>(static_cast<double>(hi - lo) * frac);
      if (h.max_micros > 0) v = std::min(v, h.max_micros);
      return v;
    }
    cum += c;
  }
  return h.max_micros;
}

namespace {

void RenderHistogramText(const char* cls, const char* stage,
                         const HistogramSummary& h, std::string* out) {
  uint64_t cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cum += h.buckets[i];
    if (h.buckets[i] == 0 && i + 1 < kHistogramBuckets) continue;
    uint64_t bound = HistogramBucketBound(i);
    if (i + 1 == kHistogramBuckets) {
      out->append(base::StrFormat(
          "mirror_request_latency_microseconds_bucket"
          "{class=\"%s\",stage=\"%s\",le=\"+Inf\"} %llu\n",
          cls, stage, static_cast<unsigned long long>(cum)));
    } else {
      out->append(base::StrFormat(
          "mirror_request_latency_microseconds_bucket"
          "{class=\"%s\",stage=\"%s\",le=\"%llu\"} %llu\n",
          cls, stage, static_cast<unsigned long long>(bound),
          static_cast<unsigned long long>(cum)));
    }
  }
  out->append(base::StrFormat(
      "mirror_request_latency_microseconds_sum{class=\"%s\",stage=\"%s\"} "
      "%llu\n",
      cls, stage, static_cast<unsigned long long>(h.sum_micros)));
  out->append(base::StrFormat(
      "mirror_request_latency_microseconds_count{class=\"%s\",stage=\"%s\"} "
      "%llu\n",
      cls, stage, static_cast<unsigned long long>(h.count)));
}

void RenderClassText(const char* cls, const RequestClassLatency& c,
                     std::string* out) {
  RenderHistogramText(cls, "queue_wait", c.queue_wait, out);
  RenderHistogramText(cls, "exec", c.exec, out);
  RenderHistogramText(cls, "total", c.total, out);
}

}  // namespace

std::string RenderPrometheusText(const StatsReply& m) {
  std::string out;
  auto counter = [&out](const char* name, uint64_t v) {
    out.append(base::StrFormat("# TYPE %s counter\n%s %llu\n", name, name,
                               static_cast<unsigned long long>(v)));
  };
  counter("mirror_requests_total", m.server.requests);
  counter("mirror_errors_total", m.server.errors);
  counter("mirror_requests_shed_total", m.server.requests_shed);
  counter("mirror_coalesced_requests_total", m.server.coalesced_requests);
  counter("mirror_sessions_opened_total", m.server.sessions_opened);
  counter("mirror_frames_in_total", m.server.frames_in);
  counter("mirror_frames_out_total", m.server.frames_out);
  counter("mirror_bytes_in_total", m.server.bytes_in);
  counter("mirror_bytes_out_total", m.server.bytes_out);
  counter("mirror_zone_blocks_skipped_total", m.server.zone_blocks_skipped);
  counter("mirror_result_cache_hits_total", m.server.result_cache_hits);
  out.append(
      "# TYPE mirror_request_latency_microseconds histogram\n");
  RenderClassText("query", m.server.latency_query, &out);
  RenderClassText("append", m.server.latency_append, &out);
  RenderClassText("delete", m.server.latency_delete, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Chaos transport (client-side network fault injection).

namespace {

class ChaosTransport : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner,
                 monet::NetFaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  base::Result<size_t> Read(uint8_t* buf, size_t n) override {
    monet::NetFaultInjector::ReadFault f = injector_->BeforeRead(n);
    if (f.delay_micros > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(f.delay_micros));
    }
    if (f.disconnect) {
      inner_->Close();
      return base::Status::IoError("chaos: disconnected before read");
    }
    return inner_->Read(buf, n);
  }

  base::Status Write(const uint8_t* buf, size_t n) override {
    // Each iteration is one "kernel write": the injector caps how many
    // bytes land, so a frame dribbles out in short writes (and can be
    // cut dead mid-frame with disconnect_after).
    size_t sent = 0;
    while (sent < n) {
      monet::NetFaultInjector::WriteFault f = injector_->BeforeWrite(n - sent);
      if (f.delay_micros > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(f.delay_micros));
      }
      size_t take = std::min(n - sent, f.max_bytes);
      if (take > 0) {
        base::Status s = inner_->Write(buf + sent, take);
        if (!s.ok()) return s;
        sent += take;
      }
      if (f.disconnect_after) {
        inner_->Close();
        return base::Status::IoError("chaos: disconnected mid-write");
      }
      if (take == 0) {
        return base::Status::IoError("chaos: write suppressed");
      }
    }
    return base::Status::Ok();
  }

  void Close() override { inner_->Close(); }

  int PollFd() const override { return inner_->PollFd(); }

  IoResult ReadSome(uint8_t* buf, size_t n) override {
    return inner_->ReadSome(buf, n);
  }

  IoResult WriteSome(const uint8_t* buf, size_t n) override {
    return inner_->WriteSome(buf, n);
  }

 private:
  std::unique_ptr<Transport> inner_;
  monet::NetFaultInjector* injector_;
};

}  // namespace

std::unique_ptr<Transport> WrapChaos(std::unique_ptr<Transport> inner,
                                     monet::NetFaultInjector* injector) {
  return std::make_unique<ChaosTransport>(std::move(inner), injector);
}

}  // namespace mirror::daemon::wire
