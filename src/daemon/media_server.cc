#include "daemon/media_server.h"

namespace mirror::daemon {

void MediaServer::Put(const std::string& url, std::vector<uint8_t> blob) {
  auto it = blobs_.find(url);
  if (it != blobs_.end()) payload_bytes_ -= it->second.size();
  payload_bytes_ += blob.size();
  blobs_[url] = std::move(blob);
}

base::Result<std::vector<uint8_t>> MediaServer::Get(
    const std::string& url) const {
  auto it = blobs_.find(url);
  if (it == blobs_.end()) {
    return base::Status::NotFound("no media at: " + url);
  }
  return it->second;
}

base::Result<OrbMessage> MediaServer::Dispatch(const OrbMessage& request) {
  auto url_it = request.args.find("url");
  if (url_it == request.args.end()) {
    return base::Status::InvalidArgument("media request without url");
  }
  if (request.method == "put") {
    Put(url_it->second, request.blob);
    OrbMessage reply;
    reply.method = "ok";
    return reply;
  }
  if (request.method == "get") {
    auto blob = Get(url_it->second);
    if (!blob.ok()) return blob.status();
    OrbMessage reply;
    reply.method = "ok";
    reply.blob = blob.TakeValue();
    return reply;
  }
  return base::Status::Unimplemented("MediaServer method: " + request.method);
}

}  // namespace mirror::daemon
