#ifndef MIRROR_DAEMON_MEDIA_SERVER_H_
#define MIRROR_DAEMON_MEDIA_SERVER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "base/status.h"
#include "daemon/orb.h"

namespace mirror::daemon {

/// The media server of Figure 1 ("The media server is a web server"): a
/// URL-keyed blob store holding the multimedia footage. The database
/// stores only metadata and URLs; daemons fetch rasters from here.
/// Exposed both as a direct API and as an ORB servant ("get"/"put"
/// methods with the URL in args and the blob in the payload).
class MediaServer : public Servant {
 public:
  MediaServer() = default;

  /// Stores a blob under `url` (replaces existing).
  void Put(const std::string& url, std::vector<uint8_t> blob);

  /// Fetches the blob stored under `url`.
  base::Result<std::vector<uint8_t>> Get(const std::string& url) const;

  bool Contains(const std::string& url) const {
    return blobs_.count(url) > 0;
  }

  size_t size() const { return blobs_.size(); }

  /// Total stored payload bytes.
  size_t payload_bytes() const { return payload_bytes_; }

  // Servant:
  std::string interface_name() const override { return "MediaServer"; }
  base::Result<OrbMessage> Dispatch(const OrbMessage& request) override;

 private:
  std::map<std::string, std::vector<uint8_t>> blobs_;
  size_t payload_bytes_ = 0;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_MEDIA_SERVER_H_
