#include "daemon/orb.h"

#include <algorithm>

namespace mirror::daemon {

size_t OrbMessage::MarshalledBytes() const {
  size_t bytes = method.size();
  for (const auto& [k, v] : args) bytes += k.size() + v.size() + 8;
  bytes += blob.size();
  return bytes + 16;  // header
}

base::Status Orb::RegisterObject(const std::string& name,
                                 std::shared_ptr<Servant> servant) {
  if (servant == nullptr) {
    return base::Status::InvalidArgument("null servant for " + name);
  }
  if (objects_.count(name) > 0) {
    return base::Status::AlreadyExists("object already bound: " + name);
  }
  objects_.emplace(name, std::move(servant));
  return base::Status::Ok();
}

std::vector<std::string> Orb::ObjectNames() const {
  std::vector<std::string> names;
  names.reserve(objects_.size());
  for (const auto& [name, servant] : objects_) names.push_back(name);
  return names;
}

base::Result<OrbMessage> Orb::Invoke(const std::string& object_name,
                                     const OrbMessage& request) {
  auto it = objects_.find(object_name);
  if (it == objects_.end()) {
    return base::Status::NotFound("no object bound as: " + object_name);
  }
  stats_.invocations += 1;
  stats_.bytes_marshalled += request.MarshalledBytes();
  auto reply = it->second->Dispatch(request);
  if (reply.ok()) stats_.bytes_marshalled += reply.value().MarshalledBytes();
  return reply;
}

base::Status Orb::Subscribe(const std::string& topic,
                            const std::string& object_name) {
  if (objects_.count(object_name) == 0) {
    return base::Status::NotFound("subscriber not registered: " +
                                  object_name);
  }
  auto& subs = subscriptions_[topic];
  if (std::find(subs.begin(), subs.end(), object_name) != subs.end()) {
    return base::Status::AlreadyExists(object_name + " already subscribes " +
                                       topic);
  }
  subs.push_back(object_name);
  return base::Status::Ok();
}

base::Status Orb::Publish(const std::string& topic, OrbMessage event) {
  stats_.events_published += 1;
  auto it = subscriptions_.find(topic);
  if (it == subscriptions_.end()) return base::Status::Ok();
  for (const std::string& subscriber : it->second) {
    queue_.push_back(Pending{subscriber, event});
  }
  return base::Status::Ok();
}

base::Result<int64_t> Orb::PumpEvents(int64_t max_events) {
  int64_t delivered = 0;
  while (!queue_.empty() &&
         (max_events == 0 || delivered < max_events)) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    auto reply = Invoke(p.object_name, p.event);
    if (!reply.ok()) return reply.status();
    stats_.events_delivered += 1;
    ++delivered;
  }
  return delivered;
}

size_t Orb::pending_events() const { return queue_.size(); }

}  // namespace mirror::daemon
