#ifndef MIRROR_DAEMON_PIPELINE_H_
#define MIRROR_DAEMON_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "daemon/data_dictionary.h"
#include "daemon/media_server.h"
#include "daemon/orb.h"
#include "mm/clustering.h"
#include "mm/segmentation.h"
#include "mm/synthetic_library.h"

namespace mirror::daemon {

/// The derived metadata of one ingested image after the daemons are done:
/// the input to the internal schema of §5.2 (`ImageLibraryInternal`).
struct IndexedImage {
  std::string url;
  std::string annotation;                 // empty if unannotated
  std::vector<std::string> visual_terms;  // "rgb_3", "gabor_21", ... one
                                          // per (segment, feature space)
  int num_segments = 0;
  int true_class = -1;                    // ground truth, carried through
};

/// Pipeline configuration.
struct PipelineOptions {
  mm::SegmenterOptions segmenter;
  mm::AutoClass::Options autoclass;
  /// false switches the cluster daemon to plain k-means (E6 baseline).
  bool use_autoclass = true;
  int kmeans_k = 6;
  /// Which feature daemons to run (default: all six of §5.1).
  std::vector<std::string> feature_spaces = {"rgb",  "hsv",  "gabor",
                                             "glcm", "laws", "lbp"};
};

/// Wires the Figure-1 architecture: a media server, a segmentation
/// daemon, the feature-extraction daemons, and a clustering daemon, all
/// registered as servants of one ORB and coordinated through it. The
/// pipeline ingests raw images and produces, per image, the visual terms
/// that the Mirror DBMS indexes as CONTREP<Image>.
///
/// All inter-daemon data flow (rasters, segment masks, feature vectors)
/// is marshalled through the ORB, so broker statistics measure the real
/// traffic of the architecture (experiment E9).
class ExtractionPipeline {
 public:
  /// The orb, media server and dictionary must outlive the pipeline.
  ExtractionPipeline(Orb* orb, MediaServer* media, DataDictionary* dictionary,
                     PipelineOptions options = PipelineOptions{});

  /// Registers all daemons with the ORB and subscribes the segmenter to
  /// ingest events. Call once.
  base::Status Setup();

  /// Stores the library's rasters in the media server, notes the objects
  /// in the data dictionary and publishes one ingest event per image.
  base::Status Ingest(const std::vector<mm::LibraryImage>& library);

  /// Drives the daemons to completion: segmentation (event-driven),
  /// feature extraction and clustering (invoked via the ORB). Fills
  /// results().
  base::Status Run();

  /// Per-image derived metadata, in ingest order.
  const std::vector<IndexedImage>& results() const { return results_; }

  /// How many clusters each feature space ended up with (space -> k).
  const std::map<std::string, int>& clusters_per_space() const {
    return clusters_per_space_;
  }

 private:
  Orb* orb_;
  MediaServer* media_;
  DataDictionary* dictionary_;
  PipelineOptions options_;
  std::vector<IndexedImage> results_;
  std::vector<std::string> ingest_order_;
  std::map<std::string, int> clusters_per_space_;
  bool setup_done_ = false;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_PIPELINE_H_
