#include "daemon/data_dictionary.h"

namespace mirror::daemon {

base::Status DataDictionary::RegisterSchema(const moa::SchemaDef& def) {
  if (schemas_.count(def.name) > 0) {
    return base::Status::AlreadyExists("schema already registered: " +
                                       def.name);
  }
  schemas_.emplace(def.name, def);
  return base::Status::Ok();
}

base::Result<moa::StructTypePtr> DataDictionary::GetSchema(
    const std::string& name) const {
  auto it = schemas_.find(name);
  if (it == schemas_.end()) {
    return base::Status::NotFound("no schema named: " + name);
  }
  return it->second.type;
}

std::vector<std::string> DataDictionary::SchemaNames() const {
  std::vector<std::string> names;
  names.reserve(schemas_.size());
  for (const auto& [name, def] : schemas_) names.push_back(name);
  return names;
}

void DataDictionary::RecordDerivation(const std::string& set_name,
                                      const std::string& field,
                                      const std::string& daemon_name) {
  derivations_[set_name][field] = daemon_name;
}

std::map<std::string, std::string> DataDictionary::DerivationsOf(
    const std::string& set_name) const {
  auto it = derivations_.find(set_name);
  if (it == derivations_.end()) return {};
  return it->second;
}

void DataDictionary::NoteObject(const std::string& set_name,
                                monet::Oid oid) {
  objects_[set_name].insert(oid);
}

void DataDictionary::MarkProcessed(const std::string& set_name,
                                   monet::Oid oid,
                                   const std::string& daemon_name) {
  processed_[{set_name, daemon_name}].insert(oid);
}

std::vector<monet::Oid> DataDictionary::PendingFor(
    const std::string& set_name, const std::string& daemon_name) const {
  std::vector<monet::Oid> pending;
  auto objects_it = objects_.find(set_name);
  if (objects_it == objects_.end()) return pending;
  auto processed_it = processed_.find({set_name, daemon_name});
  for (monet::Oid oid : objects_it->second) {
    if (processed_it == processed_.end() ||
        processed_it->second.count(oid) == 0) {
      pending.push_back(oid);
    }
  }
  return pending;
}

}  // namespace mirror::daemon
