#ifndef MIRROR_DAEMON_DATA_DICTIONARY_H_
#define MIRROR_DAEMON_DATA_DICTIONARY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "base/status.h"
#include "moa/structure_type.h"
#include "monet/value.h"

namespace mirror::daemon {

/// The distributed data dictionary of Figure 1: it tracks which schemas
/// exist, which daemons derive which fields, and which objects each
/// daemon has already processed — so independent parties can create meta
/// data without coordinating with each other (the paper's "independence
/// between the management of meta data and the parties that create these
/// meta data").
class DataDictionary {
 public:
  DataDictionary() = default;

  /// Registers a schema (e.g. the user-facing ImageLibrary and the
  /// daemon-derived ImageLibraryInternal).
  base::Status RegisterSchema(const moa::SchemaDef& def);

  /// Looks up a registered schema type.
  base::Result<moa::StructTypePtr> GetSchema(const std::string& name) const;

  /// All registered schema names, sorted.
  std::vector<std::string> SchemaNames() const;

  /// Declares that `daemon_name` derives `field` of `set_name` (e.g.
  /// "segmenter" derives "image_segments").
  void RecordDerivation(const std::string& set_name, const std::string& field,
                        const std::string& daemon_name);

  /// The declared derivations of a set: field -> daemon.
  std::map<std::string, std::string> DerivationsOf(
      const std::string& set_name) const;

  /// Notes a new object that daemons still have to process.
  void NoteObject(const std::string& set_name, monet::Oid oid);

  /// Marks `oid` processed by `daemon_name`.
  void MarkProcessed(const std::string& set_name, monet::Oid oid,
                     const std::string& daemon_name);

  /// Objects of `set_name` not yet processed by `daemon_name`, ascending.
  std::vector<monet::Oid> PendingFor(const std::string& set_name,
                                     const std::string& daemon_name) const;

 private:
  std::map<std::string, moa::SchemaDef> schemas_;
  // set -> field -> daemon.
  std::map<std::string, std::map<std::string, std::string>> derivations_;
  // set -> all noted oids.
  std::map<std::string, std::set<monet::Oid>> objects_;
  // (set, daemon) -> processed oids.
  std::map<std::pair<std::string, std::string>, std::set<monet::Oid>>
      processed_;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_DATA_DICTIONARY_H_
