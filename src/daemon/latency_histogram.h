#ifndef MIRROR_DAEMON_LATENCY_HISTOGRAM_H_
#define MIRROR_DAEMON_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>

#include "daemon/wire.h"

namespace mirror::daemon {

/// A lock-free, fixed-layout latency histogram: 64 log-spaced buckets
/// (the wire layout of wire::HistogramSummary — bounds come from
/// wire::HistogramBucketBound, ~sqrt(2) apart from 1 us to ~36 min plus
/// an overflow bucket). Record() is a handful of relaxed atomic adds, so
/// the serving hot path never takes a lock for latency accounting; the
/// percentiles in a Snapshot() are interpolated from the bucket counts
/// at read time. Reset() is read-and-clear racy-by-design: concurrent
/// Record()s land in either the old or the new epoch, never lost twice.
class LatencyHistogram {
 public:
  void Record(uint64_t micros) {
    buckets_[wire::HistogramBucketIndex(micros)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    uint64_t prev = max_micros_.load(std::memory_order_relaxed);
    while (prev < micros && !max_micros_.compare_exchange_weak(
                                prev, micros, std::memory_order_relaxed)) {
    }
  }

  wire::HistogramSummary Snapshot() const {
    wire::HistogramSummary h;
    h.count = count_.load(std::memory_order_relaxed);
    h.sum_micros = sum_micros_.load(std::memory_order_relaxed);
    h.max_micros = max_micros_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < wire::kHistogramBuckets; ++i) {
      h.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    h.p50_micros = wire::HistogramPercentile(h, 0.50);
    h.p90_micros = wire::HistogramPercentile(h, 0.90);
    h.p99_micros = wire::HistogramPercentile(h, 0.99);
    return h;
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_micros_.store(0, std::memory_order_relaxed);
    max_micros_.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i < wire::kHistogramBuckets; ++i) {
      buckets_[i].store(0, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<uint64_t> buckets_[wire::kHistogramBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_micros_{0};
  std::atomic<uint64_t> max_micros_{0};
};

/// The queue-wait / execution / end-to-end triple for one request class.
struct ClassLatency {
  LatencyHistogram queue_wait;
  LatencyHistogram exec;
  LatencyHistogram total;

  wire::RequestClassLatency Snapshot() const {
    wire::RequestClassLatency c;
    c.queue_wait = queue_wait.Snapshot();
    c.exec = exec.Snapshot();
    c.total = total.Snapshot();
    return c;
  }

  void Reset() {
    queue_wait.Reset();
    exec.Reset();
    total.Reset();
  }
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_LATENCY_HISTOGRAM_H_
