#ifndef MIRROR_DAEMON_WIRE_H_
#define MIRROR_DAEMON_WIRE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "moa/naive_eval.h"
#include "moa/query_context.h"
#include "monet/column.h"

namespace mirror::daemon::wire {

// ---------------------------------------------------------------------------
// Transport: a blocking, bidirectional byte stream. The query server and
// the wire client are written against this interface only, so the same
// request loop serves the deterministic in-process ByteChannel pair used
// by tests and the POSIX TCP listener used by real deployments.

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking read of up to `n` bytes into `buf`. Returns the number of
  /// bytes read; 0 means the peer closed cleanly (EOF). Errors (reset,
  /// local Close() during a blocked read) come back as a Status.
  virtual base::Result<size_t> Read(uint8_t* buf, size_t n) = 0;

  /// Writes all `n` bytes or fails.
  virtual base::Status Write(const uint8_t* buf, size_t n) = 0;

  /// Shuts the stream down in both directions. Safe to call from another
  /// thread while a Read() blocks (the read unblocks with EOF), and safe
  /// to call twice.
  virtual void Close() = 0;
};

/// An in-process duplex pipe: two Transport endpoints connected back to
/// back through a pair of byte queues. Deterministic (no sockets, no
/// ports) — the transport under the daemon tests and benchmarks. Either
/// endpoint may outlive the other; closing one side EOFs the peer.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateChannelPair();

/// POSIX TCP client connection to `host:port`.
base::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    int port);

/// POSIX TCP listening socket (loopback by default). Port 0 binds an
/// ephemeral port; `port()` reports the bound one.
class TcpListener {
 public:
  virtual ~TcpListener() = default;

  /// Blocks until a client connects; Close() unblocks with an error.
  virtual base::Result<std::unique_ptr<Transport>> Accept() = 0;

  /// Stops listening; a blocked Accept() fails.
  virtual void Close() = 0;

  virtual int port() const = 0;
};

base::Result<std::unique_ptr<TcpListener>> TcpListen(int port);

// ---------------------------------------------------------------------------
// Frames. Every message on the wire is one length-prefixed frame:
//
//   +------+----------------+-----------------------+
//   | type | payload length |   payload bytes       |
//   | u8   | u32 LE         |   (length bytes)      |
//   +------+----------------+-----------------------+
//
// Requests (client -> server): HELLO opens the session, QUERY runs one
// Moa query, SET overrides per-session ExecOptions, STATS snapshots the
// server counters, CLOSE ends the session. Replies (server -> client):
// each request type has an ack/result frame; failures of any request
// produce an ERROR frame carrying the Status, and the connection stays
// usable (only transport-level corruption — an unreadable header or a
// truncated payload — drops the connection).

enum class FrameType : uint8_t {
  // Requests.
  kHello = 0x01,
  kQuery = 0x02,
  kSet = 0x03,
  kStats = 0x04,
  kClose = 0x05,
  kAppend = 0x06,
  kDelete = 0x07,
  // Replies.
  kHelloOk = 0x11,
  kResult = 0x12,
  kSetOk = 0x13,
  kStatsResult = 0x14,
  kCloseOk = 0x15,
  kAppendOk = 0x16,
  kDeleteOk = 0x17,
  kError = 0x1f,
};

/// Frames larger than this are rejected as malformed before any
/// allocation happens (a corrupted length prefix must not look like a
/// 4 GB request).
constexpr uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// Protocol revision, negotiated in HELLO.
constexpr uint32_t kProtocolVersion = 1;

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// Writes one frame (header + payload) to the transport.
base::Status WriteFrame(Transport* t, FrameType type,
                        const std::vector<uint8_t>& payload);

/// Reads one frame. Clean EOF before the first header byte returns
/// NotFound (the request loop's normal end); EOF mid-frame returns
/// IoError ("truncated frame"), an oversized or unknown-type header
/// returns ParseError.
base::Result<Frame> ReadFrame(Transport* t);

// ---------------------------------------------------------------------------
// Payload codecs. Primitive encodings: u8/u32/u64/i64 little-endian,
// f64 as raw IEEE bits, strings as u32 length + bytes. Result tables use
// monet/bat_io.h (representation-exact BAT marshalling).

struct HelloRequest {
  std::string client_name;
  uint32_t protocol_version = kProtocolVersion;
};

struct HelloReply {
  uint64_t session_id = 0;
  std::string server_name;
  uint32_t protocol_version = kProtocolVersion;
};

struct QueryRequest {
  std::string text;              // Moa surface syntax
  moa::QueryContext bindings;    // #wsum term bindings
};

/// APPEND: durably appends typed values to one named BAT's insert tail.
/// The server WALs and fsyncs the record before kAppendOk returns, so an
/// acknowledged append survives any crash-kill.
struct AppendRequest {
  std::string bat_name;
  monet::Column values = monet::Column::MakeVoid(0, 0);
};

struct AppendReply {
  uint64_t lsn = 0;           // WAL position covering this write
  uint64_t visible_rows = 0;  // BAT rows visible after the append
};

/// DELETE: durably marks rows (by oid) deleted in one named BAT.
struct DeleteRequest {
  std::string bat_name;
  std::vector<monet::Oid> oids;
};

struct DeleteReply {
  uint64_t lsn = 0;
  uint64_t visible_rows = 0;
  uint64_t deleted = 0;  // rows newly deleted (idempotent re-deletes: 0)
};

/// SET: integer-valued per-session execution overrides, applied to the
/// session's ExecOptions (booleans are 0/1). Known keys: "num_shards",
/// "num_threads", "morsel_joins", "fuse_aggregates", "zone_maps",
/// "topk_prune", "query_deadline_ms" (0 = no deadline); each also
/// accepts an "exec." prefix ("exec.zone_maps").
/// A SET frame is validated as a whole before any key applies — one bad
/// key leaves the session's options untouched.
struct SetRequest {
  std::vector<std::pair<std::string, int64_t>> options;
};

/// SET ack echoes the session's effective overrides, so clients (and the
/// isolation tests) can observe exactly what their session runs with.
struct SetReply {
  uint64_t num_shards = 0;  // 0 = inherit the database default
  int64_t num_threads = 0;  // 0 = auto
  bool morsel_joins = true;
  bool fuse_aggregates = true;
  bool zone_maps = true;
  bool topk_prune = true;
  uint64_t query_deadline_ms = 0;  // 0 = no deadline
};

/// A query result: a serialized result table (element oid -> value) or a
/// scalar, exactly mirroring moa::EvalOutput.
struct ResultReply {
  bool is_scalar = false;
  monet::Value scalar;
  monet::BatPtr bat;  // set iff !is_scalar
};

/// Server-wide wire accounting (OrbStats-style: every frame in either
/// direction is counted and its marshalled bytes accumulated).
struct ServerWireStats {
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t requests = 0;            // QUERY frames served
  uint64_t errors = 0;              // ERROR frames sent
  uint64_t coalesced_requests = 0;  // served by joining an in-flight twin
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t load_generation = 0;     // MirrorDb reloads observed
  /// Process-wide pruning counters (monet profiler snapshot at STATS
  /// time): zone-map blocks skipped by selects/pruned aggregates, morsels
  /// and whole shards dropped by the top-k threshold, and probe-side
  /// partitions formed for partition-wise join scheduling.
  uint64_t zone_blocks_skipped = 0;
  uint64_t topk_morsels_pruned = 0;
  uint64_t topk_shards_pruned = 0;
  uint64_t probe_partitions = 0;
  /// Durability and instant-recovery counters (MirrorDb::recovery_stats
  /// snapshot at STATS time).
  uint64_t wal_appends = 0;
  uint64_t wal_replayed_records = 0;
  uint64_t wal_truncated_bytes = 0;
  uint64_t recovery_lazy_loads = 0;
  uint64_t recovery_pending = 0;  // 1 while fragments still await recovery
};

/// Per-session slice of the STATS reply.
struct SessionStatsEntry {
  uint64_t session_id = 0;
  std::string client_name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t plan_cache_size = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_lookups = 0;
  SetReply options;  // the session's effective overrides
};

struct StatsReply {
  ServerWireStats server;
  std::vector<SessionStatsEntry> sessions;
};

// Encoders produce a frame payload; decoders parse one and fail with
// ParseError on any malformation (short buffer, trailing garbage is
// tolerated for forward compatibility).
std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& m);
base::Result<HelloRequest> DecodeHelloRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeHelloReply(const HelloReply& m);
base::Result<HelloReply> DecodeHelloReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& m);
base::Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeSetRequest(const SetRequest& m);
base::Result<SetRequest> DecodeSetRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeAppendRequest(const AppendRequest& m);
base::Result<AppendRequest> DecodeAppendRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeAppendReply(const AppendReply& m);
base::Result<AppendReply> DecodeAppendReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeDeleteRequest(const DeleteRequest& m);
base::Result<DeleteRequest> DecodeDeleteRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeDeleteReply(const DeleteReply& m);
base::Result<DeleteReply> DecodeDeleteReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeSetReply(const SetReply& m);
base::Result<SetReply> DecodeSetReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeResultReply(const moa::EvalOutput& out);
base::Result<ResultReply> DecodeResultReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeError(const base::Status& status);
/// Returns the carried (always non-OK) Status; an undecodable payload
/// yields ParseError.
base::Status DecodeError(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeStatsReply(const StatsReply& m);
base::Result<StatsReply> DecodeStatsReply(const std::vector<uint8_t>& p);

}  // namespace mirror::daemon::wire

#endif  // MIRROR_DAEMON_WIRE_H_
