#ifndef MIRROR_DAEMON_WIRE_H_
#define MIRROR_DAEMON_WIRE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"
#include "moa/naive_eval.h"
#include "moa/query_context.h"
#include "monet/bat.h"
#include "monet/column.h"

namespace mirror::daemon::wire {

// ---------------------------------------------------------------------------
// Transport: a blocking, bidirectional byte stream. The query server and
// the wire client are written against this interface only, so the same
// request loop serves the deterministic in-process ByteChannel pair used
// by tests and the POSIX TCP listener used by real deployments.

/// Outcome of one non-blocking I/O attempt (ReadSome/WriteSome below).
enum class IoStatus : uint8_t {
  kOk = 0,      // made progress; `bytes` transferred
  kWouldBlock,  // no progress possible right now; poll and retry
  kEof,         // peer closed (reads only)
  kError,       // stream broken; the connection is dead
};

struct IoResult {
  IoStatus status = IoStatus::kError;
  size_t bytes = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Blocking read of up to `n` bytes into `buf`. Returns the number of
  /// bytes read; 0 means the peer closed cleanly (EOF). Errors (reset,
  /// local Close() during a blocked read) come back as a Status.
  virtual base::Result<size_t> Read(uint8_t* buf, size_t n) = 0;

  /// Writes all `n` bytes or fails.
  virtual base::Status Write(const uint8_t* buf, size_t n) = 0;

  /// Shuts the stream down in both directions. Safe to call from another
  /// thread while a Read() blocks (the read unblocks with EOF), and safe
  /// to call twice.
  virtual void Close() = 0;

  // Non-blocking extension, used by the server's readiness loop. A
  // transport that supports it returns a pollable fd from PollFd();
  // the default implementation (-1, kError) keeps third-party blocking
  // transports source-compatible.

  /// A file descriptor whose readability tracks pending inbound bytes
  /// (and, for sockets, whose writability tracks outbound space). -1 if
  /// the transport cannot be polled.
  virtual int PollFd() const { return -1; }

  /// Reads up to `n` bytes without blocking.
  virtual IoResult ReadSome(uint8_t* buf, size_t n) {
    (void)buf;
    (void)n;
    return IoResult{IoStatus::kError, 0};
  }

  /// Writes up to `n` bytes without blocking.
  virtual IoResult WriteSome(const uint8_t* buf, size_t n) {
    (void)buf;
    (void)n;
    return IoResult{IoStatus::kError, 0};
  }
};

/// An in-process duplex pipe: two Transport endpoints connected back to
/// back through a pair of byte queues. Deterministic (no sockets, no
/// ports) — the transport under the daemon tests and benchmarks. Either
/// endpoint may outlive the other; closing one side EOFs the peer.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
CreateChannelPair();

/// POSIX TCP client connection to `host:port`.
base::Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                                    int port);

/// POSIX TCP listening socket (loopback by default). Port 0 binds an
/// ephemeral port; `port()` reports the bound one.
class TcpListener {
 public:
  virtual ~TcpListener() = default;

  /// Blocks until a client connects; Close() unblocks with an error.
  virtual base::Result<std::unique_ptr<Transport>> Accept() = 0;

  /// Stops listening; a blocked Accept() fails.
  virtual void Close() = 0;

  virtual int port() const = 0;
};

base::Result<std::unique_ptr<TcpListener>> TcpListen(int port);

// ---------------------------------------------------------------------------
// Frames. Every message on the wire is one length-prefixed frame:
//
//   +------+----------------+-----------------------+
//   | type | payload length |   payload bytes       |
//   | u8   | u32 LE         |   (length bytes)      |
//   +------+----------------+-----------------------+
//
// Requests (client -> server): HELLO opens the session, QUERY runs one
// Moa query, SET overrides per-session ExecOptions, STATS snapshots the
// server counters, CLOSE ends the session. Replies (server -> client):
// each request type has an ack/result frame; failures of any request
// produce an ERROR frame carrying the Status, and the connection stays
// usable (only transport-level corruption — an unreadable header or a
// truncated payload — drops the connection).

enum class FrameType : uint8_t {
  // Requests.
  kHello = 0x01,
  kQuery = 0x02,
  kSet = 0x03,
  kStats = 0x04,
  kClose = 0x05,
  kAppend = 0x06,
  kDelete = 0x07,
  /// TRACE fetches the session's last traced query as a BAT table (one
  /// span per executed MIL instruction / morsel; see monet/trace.h).
  /// Empty unless the session ran a query with `SET exec.trace 1`.
  kTrace = 0x08,
  // Replies.
  kHelloOk = 0x11,
  kResult = 0x12,
  kSetOk = 0x13,
  kStatsResult = 0x14,
  kCloseOk = 0x15,
  kAppendOk = 0x16,
  kDeleteOk = 0x17,
  /// Streaming result delivery: a large result's encoded ResultReply
  /// payload is sliced into kResultChunk frames (raw byte ranges, in
  /// order) terminated by one kResultEnd frame carrying the total byte
  /// count and chunk count. Small results still arrive as one kResult.
  kResultChunk = 0x18,
  kResultEnd = 0x19,
  kTraceResult = 0x1a,
  kError = 0x1f,
};

/// Frames larger than this are rejected as malformed before any
/// allocation happens (a corrupted length prefix must not look like a
/// 4 GB request).
constexpr uint32_t kMaxFramePayload = 1u << 28;  // 256 MiB

/// Protocol revision, negotiated in HELLO.
constexpr uint32_t kProtocolVersion = 1;

struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

/// True for type bytes that name a frame in the grammar above (the
/// server's incremental parser rejects anything else before trusting the
/// length field that follows).
bool IsKnownFrameType(uint8_t t);

/// Writes one frame (header + payload) to the transport.
base::Status WriteFrame(Transport* t, FrameType type,
                        const std::vector<uint8_t>& payload);

/// Reads one frame. Clean EOF before the first header byte returns
/// NotFound (the request loop's normal end); EOF mid-frame returns
/// IoError ("truncated frame"), an oversized or unknown-type header
/// returns ParseError.
base::Result<Frame> ReadFrame(Transport* t);

// ---------------------------------------------------------------------------
// Payload codecs. Primitive encodings: u8/u32/u64/i64 little-endian,
// f64 as raw IEEE bits, strings as u32 length + bytes. Result tables use
// monet/bat_io.h (representation-exact BAT marshalling).

struct HelloRequest {
  std::string client_name;
  uint32_t protocol_version = kProtocolVersion;
};

struct HelloReply {
  uint64_t session_id = 0;
  std::string server_name;
  uint32_t protocol_version = kProtocolVersion;
};

struct QueryRequest {
  std::string text;              // Moa surface syntax
  moa::QueryContext bindings;    // #wsum term bindings
};

/// APPEND: durably appends typed values to one named BAT's insert tail.
/// The server WALs and fsyncs the record before kAppendOk returns, so an
/// acknowledged append survives any crash-kill.
struct AppendRequest {
  std::string bat_name;
  monet::Column values = monet::Column::MakeVoid(0, 0);
};

struct AppendReply {
  uint64_t lsn = 0;           // WAL position covering this write
  uint64_t visible_rows = 0;  // BAT rows visible after the append
};

/// DELETE: durably marks rows (by oid) deleted in one named BAT.
struct DeleteRequest {
  std::string bat_name;
  std::vector<monet::Oid> oids;
};

struct DeleteReply {
  uint64_t lsn = 0;
  uint64_t visible_rows = 0;
  uint64_t deleted = 0;  // rows newly deleted (idempotent re-deletes: 0)
};

/// SET: integer-valued per-session execution overrides, applied to the
/// session's ExecOptions (booleans are 0/1). Known keys: "num_shards",
/// "num_threads", "morsel_joins", "fuse_aggregates", "zone_maps",
/// "topk_prune", "recycle" (cross-request result/candidate reuse),
/// "trace" (per-query instruction tracing; fetch with TRACE),
/// "query_deadline_ms" (0 = no deadline), "memory_budget_bytes" (0 = no
/// budget); each also accepts an "exec." prefix ("exec.zone_maps").
/// A SET frame is validated as a whole before any key applies — one bad
/// key leaves the session's options untouched.
struct SetRequest {
  std::vector<std::pair<std::string, int64_t>> options;
};

/// SET ack echoes the session's effective overrides, so clients (and the
/// isolation tests) can observe exactly what their session runs with.
struct SetReply {
  uint64_t num_shards = 0;  // 0 = inherit the database default
  int64_t num_threads = 0;  // 0 = auto
  bool morsel_joins = true;
  bool fuse_aggregates = true;
  bool zone_maps = true;
  bool topk_prune = true;
  uint64_t query_deadline_ms = 0;     // 0 = no deadline
  uint64_t memory_budget_bytes = 0;   // 0 = no per-query memory budget
  bool recycle = true;                // cross-request result/candidate reuse
  bool trace = false;                 // per-query MIL instruction tracing
};

/// A query result: a serialized result table (element oid -> value) or a
/// scalar, exactly mirroring moa::EvalOutput.
struct ResultReply {
  bool is_scalar = false;
  monet::Value scalar;
  monet::BatPtr bat;  // set iff !is_scalar
};

/// TRACE reply: the session's last traced query as a table of aligned
/// void-headed BATs (the columns of monet::TraceToBats, one row per
/// recorded span). `query_seq` is the session's request ordinal of the
/// traced query, so a client polling TRACE can tell a fresh trace from a
/// re-fetch. An untraced session gets rows == 0 with the full schema.
struct TraceReply {
  uint64_t query_seq = 0;
  uint64_t rows = 0;
  std::vector<std::string> names;  // column names, schema order
  std::vector<monet::Bat> cols;    // aligned with `names`
};

/// STATS request options. An empty kStats payload (every pre-existing
/// client) decodes as `reset == false`; the reset form zeroes the
/// server's latency histograms, the slow-query ring and the process-wide
/// kernel counters AFTER snapshotting, so the reply carries the
/// pre-reset numbers (read-and-clear).
struct StatsRequest {
  bool reset = false;
};

/// One fixed-layout latency histogram: 64 buckets with upper bounds (in
/// microseconds) growing by alternating x2 / x1.5 steps (~sqrt(2) per
/// bucket: 0, 1, 2, 3, 4, 6, 8, 12, ... — see HistogramBucketBound),
/// bucket 63 catching everything beyond. Percentiles are computed from
/// the buckets by linear interpolation, server-side at snapshot time.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum_micros = 0;
  uint64_t max_micros = 0;
  uint64_t p50_micros = 0;
  uint64_t p90_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t buckets[64] = {};
};

/// Number of buckets in every wire histogram.
constexpr size_t kHistogramBuckets = 64;

/// Upper bound (inclusive, microseconds) of histogram bucket `i`;
/// UINT64_MAX for the overflow bucket 63.
uint64_t HistogramBucketBound(size_t i);

/// The smallest bucket index whose bound holds `micros` (the bucket
/// LatencyHistogram::Record increments).
size_t HistogramBucketIndex(uint64_t micros);

/// Quantile `q` in [0,1] from the bucket counts, linearly interpolated
/// within the winning bucket; 0 when the histogram is empty.
uint64_t HistogramPercentile(const HistogramSummary& h, double q);

/// Queue-wait / execution / end-to-end latency for one request class.
struct RequestClassLatency {
  HistogramSummary queue_wait;  // admission -> worker dequeue
  HistogramSummary exec;        // worker dequeue -> result ready
  HistogramSummary total;       // admission -> result ready
};

/// One slow-query log entry (queries over the server's slow_query_ms
/// threshold, newest-last ring of Options::slow_query_ring entries).
struct SlowQueryEntry {
  uint64_t session_id = 0;
  uint64_t total_micros = 0;  // admission -> result ready
  uint64_t exec_micros = 0;   // engine execution only
  std::string query;          // normalized query text
  std::string bindings_key;   // canonical binding fingerprint
  std::string counters;       // kernel-counter delta summary
};

/// Server-wide wire accounting (OrbStats-style: every frame in either
/// direction is counted and its marshalled bytes accumulated).
struct ServerWireStats {
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t requests = 0;            // QUERY frames served
  uint64_t errors = 0;              // ERROR frames sent
  uint64_t coalesced_requests = 0;  // served by joining an in-flight twin
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t load_generation = 0;     // MirrorDb reloads observed
  /// Process-wide pruning counters (monet profiler snapshot at STATS
  /// time): zone-map blocks skipped by selects/pruned aggregates, morsels
  /// and whole shards dropped by the top-k threshold, and probe-side
  /// partitions formed for partition-wise join scheduling.
  uint64_t zone_blocks_skipped = 0;
  uint64_t topk_morsels_pruned = 0;
  uint64_t topk_shards_pruned = 0;
  uint64_t probe_partitions = 0;
  /// Durability and instant-recovery counters (MirrorDb::recovery_stats
  /// snapshot at STATS time).
  uint64_t wal_appends = 0;
  uint64_t wal_replayed_records = 0;
  uint64_t wal_truncated_bytes = 0;
  uint64_t recovery_lazy_loads = 0;
  uint64_t recovery_pending = 0;  // 1 while fragments still await recovery
  /// Overload-control counters (the event-driven serving core).
  uint64_t requests_shed = 0;            // admissions refused (kOverloaded)
  uint64_t queue_depth_high_water = 0;   // deepest the request queue got
  uint64_t active_workers = 0;           // workers executing at STATS time
  uint64_t result_chunks_streamed = 0;   // kResultChunk frames sent
  uint64_t slow_client_disconnects = 0;  // dropped for stalled/full outbound
  uint64_t peak_query_bytes = 0;         // largest single-query charge seen
  /// Recycler counters (MirrorDb recycler + profiler snapshot at STATS
  /// time): encoded-result replays, misses, inserts refused by the
  /// cost x frequency admission policy, entries displaced for room, the
  /// bytes-held gauge, and candidate-list reuse (exact / subsuming).
  uint64_t result_cache_hits = 0;
  uint64_t result_cache_misses = 0;
  uint64_t recycler_admissions_rejected = 0;
  uint64_t recycler_evictions = 0;
  uint64_t recycler_bytes_held = 0;
  uint64_t candidate_cache_hits = 0;
  uint64_t candidate_subsumption_hits = 0;
  /// Server-side latency histograms per request class (queries, appends,
  /// deletes), and the slow-query ring (empty unless the server runs
  /// with slow_query_ms > 0). Encoded after the per-session entries so
  /// pre-histogram decoders see them as tolerated trailing bytes.
  RequestClassLatency latency_query;
  RequestClassLatency latency_append;
  RequestClassLatency latency_delete;
  std::vector<SlowQueryEntry> slow_queries;
};

/// Per-session slice of the STATS reply.
struct SessionStatsEntry {
  uint64_t session_id = 0;
  std::string client_name;
  uint64_t requests = 0;
  uint64_t errors = 0;
  uint64_t plan_cache_size = 0;
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_lookups = 0;
  SetReply options;  // the session's effective overrides
};

struct StatsReply {
  ServerWireStats server;
  std::vector<SessionStatsEntry> sessions;
};

// Encoders produce a frame payload; decoders parse one and fail with
// ParseError on any malformation (short buffer, trailing garbage is
// tolerated for forward compatibility).
std::vector<uint8_t> EncodeHelloRequest(const HelloRequest& m);
base::Result<HelloRequest> DecodeHelloRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeHelloReply(const HelloReply& m);
base::Result<HelloReply> DecodeHelloReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& m);
base::Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeSetRequest(const SetRequest& m);
base::Result<SetRequest> DecodeSetRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeAppendRequest(const AppendRequest& m);
base::Result<AppendRequest> DecodeAppendRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeAppendReply(const AppendReply& m);
base::Result<AppendReply> DecodeAppendReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeDeleteRequest(const DeleteRequest& m);
base::Result<DeleteRequest> DecodeDeleteRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeDeleteReply(const DeleteReply& m);
base::Result<DeleteReply> DecodeDeleteReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeSetReply(const SetReply& m);
base::Result<SetReply> DecodeSetReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeResultReply(const moa::EvalOutput& out);
base::Result<ResultReply> DecodeResultReply(const std::vector<uint8_t>& p);

/// The final frame of a streamed result: byte/chunk totals the client
/// checks after reassembling the kResultChunk slices.
struct ResultEnd {
  uint64_t total_bytes = 0;
  uint32_t chunks = 0;
};

std::vector<uint8_t> EncodeResultEnd(const ResultEnd& m);
base::Result<ResultEnd> DecodeResultEnd(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeError(const base::Status& status);
/// ERROR with a retry-after hint (milliseconds), used by kOverloaded
/// sheds. The hint rides as an optional trailing field: old decoders
/// tolerate it as trailing garbage.
std::vector<uint8_t> EncodeError(const base::Status& status,
                                 uint32_t retry_after_ms);
/// Returns the carried (always non-OK) Status; an undecodable payload
/// yields ParseError.
base::Status DecodeError(const std::vector<uint8_t>& p);
/// Like DecodeError, additionally surfacing the retry-after hint
/// (0 when the frame carries none).
base::Status DecodeErrorDetail(const std::vector<uint8_t>& p,
                               uint32_t* retry_after_ms);

std::vector<uint8_t> EncodeStatsRequest(const StatsRequest& m);
/// An empty payload (pre-reset clients) decodes as reset == false.
base::Result<StatsRequest> DecodeStatsRequest(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeStatsReply(const StatsReply& m);
base::Result<StatsReply> DecodeStatsReply(const std::vector<uint8_t>& p);

std::vector<uint8_t> EncodeTraceReply(const TraceReply& m);
base::Result<TraceReply> DecodeTraceReply(const std::vector<uint8_t>& p);

/// Renders a STATS snapshot as Prometheus text-exposition lines
/// (counters plus one `*_latency_microseconds` histogram per request
/// class, cumulative `le` buckets in seconds-free microsecond bounds).
std::string RenderPrometheusText(const StatsReply& m);

}  // namespace mirror::daemon::wire

namespace mirror::monet {
struct NetFaultInjector;  // monet/fault_injector.h
}

namespace mirror::daemon::wire {

/// Wraps a transport with a client-side network fault injector (the
/// chaos harness): the injector can truncate writes into short/partial
/// sends, disconnect mid-frame, and delay reads to emulate a slow
/// consumer. The injector must outlive the returned transport.
std::unique_ptr<Transport> WrapChaos(std::unique_ptr<Transport> inner,
                                     monet::NetFaultInjector* injector);

}  // namespace mirror::daemon::wire

#endif  // MIRROR_DAEMON_WIRE_H_
