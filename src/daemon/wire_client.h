#ifndef MIRROR_DAEMON_WIRE_CLIENT_H_
#define MIRROR_DAEMON_WIRE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "daemon/wire.h"

namespace mirror::daemon::wire {

/// A synchronous client of the query-serving daemon: one connection, one
/// session, one request in flight at a time (the protocol is strictly
/// request/reply per connection; open more clients for concurrency —
/// that is exactly what the multi-client tests and the E4 bench do).
///
/// Every call sends one request frame and blocks for the matching reply.
/// Large results arriving as a RESULT_CHUNK/RESULT_END stream are
/// reassembled transparently (and checked against the trailer's totals).
/// An ERROR reply surfaces as the carried Status; transport failures
/// surface as IoError. The destructor closes the transport without the
/// CLOSE handshake; call Close() for a clean goodbye.
class WireClient {
 public:
  explicit WireClient(std::unique_ptr<Transport> conn)
      : conn_(std::move(conn)) {}

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Opens the session. Must be the first call.
  base::Result<HelloReply> Hello(const std::string& client_name);

  /// Runs one Moa query with the given bindings; returns the decoded
  /// result table or scalar (reassembled if the server streamed it).
  base::Result<ResultReply> Query(const std::string& text,
                                  const moa::QueryContext& bindings);

  /// Applies per-session execution overrides; returns the session's
  /// effective overrides after the change.
  base::Result<SetReply> Set(
      const std::vector<std::pair<std::string, int64_t>>& options);

  /// Durably appends values to one named BAT (kAppendOk arrives only
  /// after the server's WAL fsync).
  base::Result<AppendReply> Append(const std::string& bat_name,
                                   monet::Column values);

  /// Durably marks rows deleted in one named BAT.
  base::Result<DeleteReply> Delete(const std::string& bat_name,
                                   std::vector<monet::Oid> oids);

  /// Snapshots server + per-session statistics. With `reset`, the
  /// server zeroes its latency histograms, slow-query ring and kernel
  /// counters after the snapshot (the reply carries pre-reset numbers).
  base::Result<StatsReply> Stats(bool reset = false);

  /// Fetches the session's last traced query as a BAT table (run a
  /// query with `SET exec.trace 1` first; see monet/trace.h for the
  /// column schema). rows == 0 when nothing was traced yet.
  base::Result<TraceReply> Trace();

  /// Clean shutdown: CLOSE handshake, then transport close.
  base::Status Close();

  uint64_t session_id() const { return session_id_; }

  /// Retry-after hint (ms) carried by the most recent ERROR reply — 0
  /// when the last reply succeeded or carried no hint. kOverloaded sheds
  /// set this; ReconnectingClient honors it when pacing retries.
  uint32_t last_retry_after_ms() const { return last_retry_after_ms_; }

  /// Number of RESULT_CHUNK frames the most recent Query() reassembled
  /// (0 when the result arrived as a single RESULT frame).
  uint32_t last_result_chunks() const { return last_result_chunks_; }

 private:
  /// Sends `type` with `payload`, reads one reply frame, maps ERROR
  /// replies to their Status, and checks the reply type.
  base::Result<Frame> RoundTrip(FrameType type,
                                const std::vector<uint8_t>& payload,
                                FrameType expected_reply);

  /// Decodes an ERROR payload, capturing the retry-after hint.
  base::Status TrackError(const std::vector<uint8_t>& payload);

  std::unique_ptr<Transport> conn_;
  uint64_t session_id_ = 0;
  uint32_t last_retry_after_ms_ = 0;
  uint32_t last_result_chunks_ = 0;
};

/// Produces a fresh connected transport on demand — TcpConnect bound to
/// a host/port in production, a channel-pair injector in tests.
using Dialer =
    std::function<base::Result<std::unique_ptr<Transport>>()>;

/// Retry pacing for ReconnectingClient: capped exponential backoff with
/// deterministic jitter. The sleep hook exists so tests can record the
/// exact pacing instead of actually sleeping.
struct RetryPolicy {
  /// Total attempts per request (first try included).
  int max_attempts = 8;
  uint64_t initial_backoff_ms = 10;
  uint64_t max_backoff_ms = 2000;
  /// Deterministic jitter source (xorshift32 seed); two clients with
  /// different seeds desynchronize their retry storms.
  uint32_t jitter_seed = 1;
  /// Injected sleep (ms). Null = std::this_thread::sleep_for.
  std::function<void(uint64_t)> sleep_fn;
};

/// A WireClient wrapper that survives overload sheds and connection
/// loss: kOverloaded errors are retried on the SAME connection after the
/// server's retry-after hint (falling back to capped exponential backoff
/// + jitter when the hint is absent), and transport failures trigger a
/// full reconnect + HELLO before the retry. Errors that re-trying cannot
/// fix (bad queries, deadline/budget exhaustion) pass through untouched.
class ReconnectingClient {
 public:
  ReconnectingClient(Dialer dialer, std::string client_name,
                     RetryPolicy policy = RetryPolicy());

  ReconnectingClient(const ReconnectingClient&) = delete;
  ReconnectingClient& operator=(const ReconnectingClient&) = delete;

  /// Runs one query with retries per the policy. Fails with the last
  /// error once max_attempts is exhausted.
  base::Result<ResultReply> Query(const std::string& text,
                                  const moa::QueryContext& bindings);

  /// Clean goodbye on the current connection, if any.
  base::Status Close();

  uint64_t reconnects() const { return reconnects_; }
  uint64_t overload_retries() const { return overload_retries_; }

 private:
  base::Status EnsureConnected();
  void Sleep(uint64_t millis);
  /// Backoff for the given 0-based retry round, jittered.
  uint64_t BackoffMs(int round);

  Dialer dialer_;
  std::string client_name_;
  RetryPolicy policy_;
  std::unique_ptr<WireClient> client_;
  uint64_t reconnects_ = 0;
  uint64_t overload_retries_ = 0;
  uint32_t rng_state_;
};

}  // namespace mirror::daemon::wire

#endif  // MIRROR_DAEMON_WIRE_CLIENT_H_
