#ifndef MIRROR_DAEMON_WIRE_CLIENT_H_
#define MIRROR_DAEMON_WIRE_CLIENT_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "daemon/wire.h"

namespace mirror::daemon::wire {

/// A synchronous client of the query-serving daemon: one connection, one
/// session, one request in flight at a time (the protocol is strictly
/// request/reply per connection; open more clients for concurrency —
/// that is exactly what the multi-client tests and the E4 bench do).
///
/// Every call sends one request frame and blocks for the matching reply.
/// An ERROR reply surfaces as the carried Status; transport failures
/// surface as IoError. The destructor closes the transport without the
/// CLOSE handshake; call Close() for a clean goodbye.
class WireClient {
 public:
  explicit WireClient(std::unique_ptr<Transport> conn)
      : conn_(std::move(conn)) {}

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Opens the session. Must be the first call.
  base::Result<HelloReply> Hello(const std::string& client_name);

  /// Runs one Moa query with the given bindings; returns the decoded
  /// result table or scalar.
  base::Result<ResultReply> Query(const std::string& text,
                                  const moa::QueryContext& bindings);

  /// Applies per-session execution overrides; returns the session's
  /// effective overrides after the change.
  base::Result<SetReply> Set(
      const std::vector<std::pair<std::string, int64_t>>& options);

  /// Durably appends values to one named BAT (kAppendOk arrives only
  /// after the server's WAL fsync).
  base::Result<AppendReply> Append(const std::string& bat_name,
                                   monet::Column values);

  /// Durably marks rows deleted in one named BAT.
  base::Result<DeleteReply> Delete(const std::string& bat_name,
                                   std::vector<monet::Oid> oids);

  /// Snapshots server + per-session statistics.
  base::Result<StatsReply> Stats();

  /// Clean shutdown: CLOSE handshake, then transport close.
  base::Status Close();

  uint64_t session_id() const { return session_id_; }

 private:
  /// Sends `type` with `payload`, reads one reply frame, maps ERROR
  /// replies to their Status, and checks the reply type.
  base::Result<Frame> RoundTrip(FrameType type,
                                const std::vector<uint8_t>& payload,
                                FrameType expected_reply);

  std::unique_ptr<Transport> conn_;
  uint64_t session_id_ = 0;
};

}  // namespace mirror::daemon::wire

#endif  // MIRROR_DAEMON_WIRE_CLIENT_H_
