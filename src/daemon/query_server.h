#ifndef MIRROR_DAEMON_QUERY_SERVER_H_
#define MIRROR_DAEMON_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/wire.h"
#include "mirror/mirror_db.h"

namespace mirror::daemon {

/// One connected client's server-side state: the session-scoped
/// ExecutionContext (plan cache + worker pool, registered with MirrorDb
/// so Load invalidates it), the session's effective QueryOptions (the
/// server's base options plus SET overrides), and request counters.
///
/// A session belongs to exactly one connection; its request loop is the
/// only thread that executes queries on it. The mutex guards the fields
/// the STATS command reads from other connections' threads.
class ServerSession {
 public:
  ServerSession(uint64_t id, std::string client_name,
                db::QueryOptions base_options)
      : id_(id),
        client_name_(std::move(client_name)),
        options_(base_options) {}

  uint64_t id() const { return id_; }
  const std::string& client_name() const { return client_name_; }
  monet::mil::ExecutionContext* exec_context() { return &exec_; }

  /// The options the next query runs with (copied under the lock: the
  /// owning connection may be applying a SET concurrently with STATS).
  db::QueryOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }

  /// Checks a SET override without applying it: InvalidArgument for
  /// unknown keys or out-of-range values.
  static base::Status ValidateOverride(const std::string& key,
                                       int64_t value);

  /// Validates and applies one SET override.
  base::Status ApplyOverride(const std::string& key, int64_t value);

  void CountRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void CountError() { errors_.fetch_add(1, std::memory_order_relaxed); }

  /// The session's STATS slice (options echo + counters + plan cache).
  wire::SessionStatsEntry StatsEntry() const;

 private:
  const uint64_t id_;
  const std::string client_name_;
  mutable std::mutex mu_;
  db::QueryOptions options_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  monet::mil::ExecutionContext exec_;
};

/// Owns the live sessions of a QueryServer: allocates ids, registers
/// every session's ExecutionContext with the MirrorDb (Load invalidates
/// all live plan caches), and snapshots per-session statistics. All
/// methods are thread-safe; Session pointers stay valid while the
/// shared_ptr is held even after Close().
class SessionManager {
 public:
  explicit SessionManager(const db::MirrorDb* db) : db_(db) {}
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  std::shared_ptr<ServerSession> Open(std::string client_name,
                                      const db::QueryOptions& base_options);

  /// Unregisters from the database and drops the manager's reference.
  void Close(uint64_t session_id);

  std::vector<wire::SessionStatsEntry> Snapshot() const;

  size_t open_count() const;

 private:
  const db::MirrorDb* db_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
};

/// The query-serving daemon: a concurrent multi-client request loop over
/// the framed wire protocol (daemon/wire.h), one thread and one
/// ServerSession per connection, all sessions executing against one
/// shared (optionally sharded) MirrorDb catalog.
///
/// Threading model: Serve() (or the TCP accept loop) spawns a handler
/// thread per connection; within a connection requests are strictly
/// sequential (the protocol is request/reply), so each session's
/// ExecutionContext sees one query at a time while different sessions
/// execute genuinely concurrently — the engine's worker pools are
/// session-scoped. Identical queries (same normalized text + bindings)
/// submitted by different sessions while one is already executing are
/// coalesced: the first becomes the leader, followers wait and share the
/// leader's marshalled result frame (results are engine-config-invariant,
/// so a leader with different SET overrides still returns bit-identical
/// bytes). Shutdown() stops intake, drains in-flight requests, then
/// closes every connection and joins all threads.
class QueryServer {
 public:
  struct Options {
    std::string server_name = "mirrord";
    /// Base QueryOptions every new session starts from; SET overrides
    /// the exec knobs per session.
    db::QueryOptions query;
    /// Share one execution + one marshalled result frame between
    /// identical in-flight QUERY requests from different sessions.
    bool coalesce_queries = true;
  };

  /// Read-only server: queries only, APPEND/DELETE frames are rejected
  /// with an ERROR.
  explicit QueryServer(const db::MirrorDb* db);
  QueryServer(const db::MirrorDb* db, Options options);
  /// Mutable server: additionally serves the durable APPEND/DELETE write
  /// path (WAL-backed when the database has one attached).
  explicit QueryServer(db::MirrorDb* db);
  QueryServer(db::MirrorDb* db, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Adopts a server-side transport endpoint (e.g. one half of
  /// wire::CreateChannelPair()) and serves it on a new thread. No-op
  /// (transport closed) after Shutdown().
  void Serve(std::unique_ptr<wire::Transport> conn);

  /// Starts a loopback TCP listener (port 0 = ephemeral) and an accept
  /// loop serving every connection. Returns the bound port.
  base::Result<int> ListenTcp(int port);

  /// Stops intake, waits up to `drain_millis` for in-flight requests to
  /// finish (their replies are still delivered), then closes all
  /// connections and joins every thread. Idempotent.
  void Shutdown(int64_t drain_millis = 10000);

  wire::ServerWireStats stats() const;
  std::vector<wire::SessionStatsEntry> session_stats() const {
    return sessions_.Snapshot();
  }
  size_t open_session_count() const { return sessions_.open_count(); }
  size_t active_connections() const;

 private:
  struct Connection {
    std::unique_ptr<wire::Transport> transport;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// A leader-computed reply shared between coalesced twin requests.
  struct InFlightQuery {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    wire::FrameType reply_type = wire::FrameType::kError;
    std::shared_ptr<const std::vector<uint8_t>> payload;
  };

  void HandleConnection(Connection* conn);
  void AcceptLoop();

  /// Serves one QUERY payload, returning the reply frame (kResult or
  /// kError) — through the coalescing map when enabled.
  std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
  ServeQuery(ServerSession* session, const std::vector<uint8_t>& payload);

  /// Executes for real (no coalescing) and marshals the reply.
  std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
  ExecuteQuery(ServerSession* session, const wire::QueryRequest& request);

  void CountIn(size_t frame_bytes);
  void CountOut(wire::FrameType type, size_t frame_bytes);

  const db::MirrorDb* db_;
  /// Non-null iff constructed with a mutable database; gates the
  /// APPEND/DELETE write path.
  db::MirrorDb* mutable_db_ = nullptr;
  Options options_;
  SessionManager sessions_;

  mutable std::mutex mu_;  // connections + listener + stats
  std::vector<std::unique_ptr<Connection>> connections_;
  std::unique_ptr<wire::TcpListener> listener_;
  std::thread accept_thread_;
  wire::ServerWireStats stats_;
  std::atomic<bool> stopping_{false};
  /// Serializes Shutdown() end to end (destructor vs explicit call).
  std::mutex shutdown_mu_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int64_t busy_requests_ = 0;

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlightQuery>> inflight_;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_QUERY_SERVER_H_
