#ifndef MIRROR_DAEMON_QUERY_SERVER_H_
#define MIRROR_DAEMON_QUERY_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/latency_histogram.h"
#include "daemon/wire.h"
#include "mirror/mirror_db.h"
#include "monet/trace.h"

namespace mirror::daemon {

/// One connected client's server-side state: the session-scoped
/// ExecutionContext (plan cache + worker pool, registered with MirrorDb
/// so Load invalidates it), the session's effective QueryOptions (the
/// server's base options plus SET overrides), and request counters.
///
/// A session belongs to exactly one connection; the protocol is strict
/// request/reply per connection, so at most one worker executes queries
/// on it at a time. The mutex guards the fields the STATS command reads
/// from other connections.
class ServerSession {
 public:
  ServerSession(uint64_t id, std::string client_name,
                db::QueryOptions base_options)
      : id_(id),
        client_name_(std::move(client_name)),
        options_(base_options) {}

  uint64_t id() const { return id_; }
  const std::string& client_name() const { return client_name_; }
  monet::mil::ExecutionContext* exec_context() { return &exec_; }

  /// The options the next query runs with (copied under the lock: the
  /// owning connection may be applying a SET concurrently with STATS).
  db::QueryOptions options() const {
    std::lock_guard<std::mutex> lock(mu_);
    return options_;
  }

  /// Checks a SET override without applying it: InvalidArgument for
  /// unknown keys or out-of-range values.
  static base::Status ValidateOverride(const std::string& key,
                                       int64_t value);

  /// Validates and applies one SET override.
  base::Status ApplyOverride(const std::string& key, int64_t value);

  void CountRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }
  void CountError() { errors_.fetch_add(1, std::memory_order_relaxed); }

  /// The session's STATS slice (options echo + counters + plan cache).
  wire::SessionStatsEntry StatsEntry() const;

  /// The per-session span sink handed to the engine while exec.trace is
  /// on. Safe without a lock during execution: the protocol is strict
  /// request/reply, so one query at a time runs on a session.
  monet::QueryTrace* trace_sink() { return &trace_; }

  /// Publishes / fetches the marshalled trace table of the session's
  /// most recent traced query (the TRACE frame's reply). The worker
  /// publishes, the poll loop fetches — hence the shared_ptr handoff.
  void StoreTrace(std::shared_ptr<const wire::TraceReply> trace);
  std::shared_ptr<const wire::TraceReply> LastTrace() const;

 private:
  const uint64_t id_;
  const std::string client_name_;
  mutable std::mutex mu_;
  db::QueryOptions options_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  monet::mil::ExecutionContext exec_;
  monet::QueryTrace trace_;
  std::shared_ptr<const wire::TraceReply> last_trace_;  // guarded by mu_
};

/// Owns the live sessions of a QueryServer: allocates ids, registers
/// every session's ExecutionContext with the MirrorDb (Load invalidates
/// all live plan caches), and snapshots per-session statistics. All
/// methods are thread-safe; Session pointers stay valid while the
/// shared_ptr is held even after Close().
class SessionManager {
 public:
  explicit SessionManager(const db::MirrorDb* db) : db_(db) {}
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  std::shared_ptr<ServerSession> Open(std::string client_name,
                                      const db::QueryOptions& base_options);

  /// Unregisters from the database and drops the manager's reference.
  void Close(uint64_t session_id);

  std::vector<wire::SessionStatsEntry> Snapshot() const;

  size_t open_count() const;

 private:
  const db::MirrorDb* db_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  std::map<uint64_t, std::shared_ptr<ServerSession>> sessions_;
};

/// The query-serving daemon: an event-driven connection layer over the
/// framed wire protocol (daemon/wire.h), all sessions executing against
/// one shared (optionally sharded) MirrorDb catalog.
///
/// Threading model: one poll(2) readiness loop owns every connection —
/// incremental frame reassembly on the inbound side, bounded buffered
/// writes on the outbound side — and feeds a bounded server-wide request
/// queue drained by a fixed worker pool. QUERY/APPEND/DELETE execute on
/// workers; HELLO/SET/STATS/CLOSE are answered inline by the loop. A
/// request arriving while the queue is full is shed with a typed
/// kOverloaded ERROR carrying a retry-after hint instead of being
/// accepted and starved. Within a connection requests stay strictly
/// sequential (the loop stops parsing while a request is in flight), so
/// each session's ExecutionContext sees one query at a time while
/// different sessions execute genuinely concurrently.
///
/// Identical queries (same normalized text + bindings) submitted by
/// different sessions while one is already executing are coalesced: the
/// first becomes the leader, followers wait and share the leader's
/// marshalled result bytes (results are engine-config-invariant, so a
/// leader with different SET overrides still returns bit-identical
/// bytes). A follower always has its leader already running on another
/// worker, so waiting can never deadlock the pool.
///
/// Large results stream as a sequence of RESULT_CHUNK frames closed by
/// RESULT_END — the loop slices byte ranges out of the single encoded
/// reply as the client drains its outbound buffer, so a slow reader
/// holds O(outbound_buffer_limit) server memory, not O(result). Clients
/// that stop reading past the buffer cap or stall a write past the
/// timeout are disconnected and counted.
///
/// Shutdown() stops intake, drains in-flight requests (their replies are
/// still flushed), then closes every connection and joins the loop and
/// the workers.
class QueryServer {
 public:
  struct Options {
    std::string server_name = "mirrord";
    /// Base QueryOptions every new session starts from; SET overrides
    /// the exec knobs per session.
    db::QueryOptions query;
    /// Share one execution + one marshalled result between identical
    /// in-flight QUERY requests from different sessions.
    bool coalesce_queries = true;
    /// Fixed pool of threads executing QUERY/APPEND/DELETE requests.
    /// 0 = auto: max(2, min(8, hardware_concurrency)).
    int worker_threads = 0;
    /// Bound on the server-wide queue of admitted-but-not-yet-executing
    /// requests. A request arriving while the queue is full is shed with
    /// a typed kOverloaded ERROR + retry_after_ms instead of queuing
    /// without bound.
    size_t request_queue_limit = 256;
    /// Per-connection cap on buffered outbound bytes. A client that
    /// lets replies pile past this is disconnected (slow-client policy)
    /// and counted in slow_client_disconnects.
    size_t outbound_buffer_limit = 8u << 20;
    /// A connection with pending outbound bytes that makes no write
    /// progress for this long is disconnected as a slow client.
    int64_t write_stall_timeout_ms = 5000;
    /// Encoded results larger than this stream as RESULT_CHUNK frames of
    /// this size, terminated by RESULT_END; smaller results keep the
    /// single RESULT frame. Clamped to outbound_buffer_limit / 4.
    size_t result_chunk_bytes = 1u << 20;
    /// Encoded results larger than this fail the query with a typed
    /// kResourceExhausted ERROR instead of being streamed.
    uint64_t max_result_bytes = 1ull << 30;
    /// Retry-after hint (milliseconds) carried on kOverloaded sheds.
    uint32_t retry_after_ms = 25;
    /// Queries whose end-to-end time (admission to result ready) exceeds
    /// this many milliseconds land in the slow-query ring (normalized
    /// text, bindings key, kernel-counter deltas), drained over STATS.
    /// 0 disables the log entirely.
    uint64_t slow_query_ms = 0;
    /// Capacity of the slow-query ring; the oldest entry is evicted
    /// once it fills (newest-last order in the STATS reply).
    size_t slow_query_ring = 32;
  };

  /// Read-only server: queries only, APPEND/DELETE frames are rejected
  /// with an ERROR.
  explicit QueryServer(const db::MirrorDb* db);
  QueryServer(const db::MirrorDb* db, Options options);
  /// Mutable server: additionally serves the durable APPEND/DELETE write
  /// path (WAL-backed when the database has one attached).
  explicit QueryServer(db::MirrorDb* db);
  QueryServer(db::MirrorDb* db, Options options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Adopts a server-side transport endpoint (e.g. one half of
  /// wire::CreateChannelPair()) and registers it with the event loop.
  /// The transport must support readiness polling (PollFd() >= 0). No-op
  /// (transport closed) after Shutdown().
  void Serve(std::unique_ptr<wire::Transport> conn);

  /// Starts a loopback TCP listener (port 0 = ephemeral) and an accept
  /// loop registering every connection. Returns the bound port.
  base::Result<int> ListenTcp(int port);

  /// Stops intake, waits up to `drain_millis` for in-flight requests to
  /// finish and their replies to flush, then closes all connections and
  /// joins the loop and worker threads. Idempotent.
  void Shutdown(int64_t drain_millis = 10000);

  wire::ServerWireStats stats() const;
  std::vector<wire::SessionStatsEntry> session_stats() const {
    return sessions_.Snapshot();
  }
  size_t open_session_count() const { return sessions_.open_count(); }
  size_t active_connections() const;

 private:
  /// One registered connection, owned by the event loop (all fields
  /// guarded by loop_mu_). `busy` is set while a queued/executing
  /// request or a draining result stream owns the reply slot — parsing
  /// pauses so requests within a connection stay strictly ordered.
  struct Conn {
    uint64_t id = 0;
    std::unique_ptr<wire::Transport> transport;
    int fd = -1;
    std::shared_ptr<ServerSession> session;
    /// Inbound partial-frame reassembly buffer.
    std::vector<uint8_t> in_buf;
    /// Outbound frames not yet (fully) written; front frame is sent
    /// starting at out_front_off. out_bytes is the buffered total.
    std::deque<std::vector<uint8_t>> out;
    size_t out_front_off = 0;
    size_t out_bytes = 0;
    /// In-progress chunked result stream: the single encoded RESULT
    /// payload being sliced into kResultChunk frames as out drains.
    std::shared_ptr<const std::vector<uint8_t>> stream_payload;
    size_t stream_off = 0;
    uint32_t stream_chunks = 0;
    bool busy = false;
    bool close_after_flush = false;
    bool eof = false;
    bool dead = false;
    std::chrono::steady_clock::time_point last_write_progress{};
  };

  /// One admitted request waiting for (or held by) a worker.
  struct WorkItem {
    uint64_t conn_id = 0;
    wire::FrameType type = wire::FrameType::kError;
    std::vector<uint8_t> payload;
    std::shared_ptr<ServerSession> session;
    /// Admission time: queue-wait ends at worker dequeue, end-to-end
    /// latency at result-ready (both land in the class histograms).
    std::chrono::steady_clock::time_point admit{};
  };

  /// A marshalled reply: the frame type plus its encoded payload. kResult
  /// payloads above the chunk threshold are streamed at enqueue time.
  struct Reply {
    wire::FrameType type = wire::FrameType::kError;
    std::shared_ptr<const std::vector<uint8_t>> payload;
  };

  /// A leader-computed reply shared between coalesced twin requests.
  struct InFlightQuery {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Reply reply;
  };

  void EnsureStarted();
  void Wake();
  void LoopMain();
  void WorkerMain();
  void AcceptLoop();

  void ReadIntoBufferLocked(Conn* c);
  void FlushOutboundLocked(Conn* c);
  /// Consumes complete frames from in_buf: queues QUERY/APPEND/DELETE
  /// (or sheds them), answers everything else inline.
  void ParseAndDispatchLocked(Conn* c);
  void HandleInlineLocked(Conn* c, wire::FrameType type,
                          std::vector<uint8_t> payload);
  void EnqueueFrameLocked(Conn* c, wire::FrameType type,
                          const uint8_t* payload, size_t n);
  void EnqueueErrorLocked(Conn* c, const base::Status& status);
  void EnqueueReplyLocked(Conn* c, const Reply& reply);
  /// Emits further kResultChunk frames while outbound space allows;
  /// emits kResultEnd and clears `busy` when the stream completes.
  void PumpStreamLocked(Conn* c);
  bool HasCompleteFrame(const Conn* c) const;
  void CloseConnLocked(Conn* c);

  /// Executes one queued request on a worker thread (no locks held).
  Reply ProcessItem(const WorkItem& item);

  /// Serves one QUERY payload — through the recycler's result cache
  /// first, then the coalescing map when enabled.
  Reply ServeQuery(ServerSession* session,
                   const std::vector<uint8_t>& payload,
                   std::chrono::steady_clock::time_point admit);

  /// Executes for real (no coalescing) and marshals the reply. A
  /// successful RESULT is offered to the recycler under `cache_key`
  /// (empty = don't cache) with the generation captured before
  /// execution. `admit` is the request's admission time (slow-query
  /// threshold checks run against admission-to-result-ready).
  Reply ExecuteQuery(ServerSession* session,
                     const wire::QueryRequest& request,
                     const std::string& cache_key,
                     std::chrono::steady_clock::time_point admit);

  /// The latency-histogram triple for one queued frame type.
  ClassLatency* LatencyFor(wire::FrameType type);

  /// Appends one slow-query entry, evicting the oldest past the ring
  /// capacity.
  void RecordSlowQuery(wire::SlowQueryEntry entry);

  void CountIn(size_t frame_bytes);
  void CountOut(wire::FrameType type, size_t frame_bytes);

  const db::MirrorDb* db_;
  /// Non-null iff constructed with a mutable database; gates the
  /// APPEND/DELETE write path.
  db::MirrorDb* mutable_db_ = nullptr;
  Options options_;
  /// Effective chunk size (result_chunk_bytes clamped so a single chunk
  /// can never trip the outbound cap).
  size_t chunk_bytes_ = 0;
  SessionManager sessions_;

  mutable std::mutex mu_;  // listener + stats
  std::unique_ptr<wire::TcpListener> listener_;
  std::thread accept_thread_;
  wire::ServerWireStats stats_;
  std::atomic<bool> stopping_{false};
  /// Serializes Shutdown() end to end (destructor vs explicit call).
  std::mutex shutdown_mu_;

  /// Event core. loop_mu_ guards conns_, queue_, busy_requests_ and the
  /// thread lifecycle flags. Lock order is loop_mu_ -> mu_, never the
  /// reverse.
  mutable std::mutex loop_mu_;
  std::condition_variable queue_cv_;  // workers wait for queue_
  std::condition_variable drain_cv_;  // Shutdown waits for quiescence
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::deque<WorkItem> queue_;
  uint64_t next_conn_id_ = 1;
  /// Admitted requests not yet fully replied (queued + executing).
  int64_t busy_requests_ = 0;
  bool started_ = false;
  bool workers_stop_ = false;
  bool loop_stop_ = false;
  int wake_fd_ = -1;
  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  /// Overload observability, atomic so STATS — which may run inline on
  /// the loop thread — reads them without retaking loop_mu_.
  std::atomic<uint64_t> requests_shed_{0};
  std::atomic<uint64_t> queue_depth_high_water_{0};
  std::atomic<uint64_t> active_workers_{0};
  std::atomic<uint64_t> result_chunks_streamed_{0};
  std::atomic<uint64_t> slow_client_disconnects_{0};

  /// Server-side latency accounting: one queue-wait/exec/total triple
  /// per request class. Record() is lock-free (relaxed atomics), so the
  /// worker hot path never serializes on latency bookkeeping.
  ClassLatency latency_query_;
  ClassLatency latency_append_;
  ClassLatency latency_delete_;

  /// Slow-query ring (Options::slow_query_ms threshold), newest last.
  mutable std::mutex slow_mu_;
  std::deque<wire::SlowQueryEntry> slow_queries_;

  std::mutex inflight_mu_;
  std::unordered_map<std::string, std::shared_ptr<InFlightQuery>> inflight_;
};

}  // namespace mirror::daemon

#endif  // MIRROR_DAEMON_QUERY_SERVER_H_
