#include "daemon/query_server.h"

#include <chrono>
#include <string_view>

#include "base/str_util.h"
#include "monet/profiler.h"

namespace mirror::daemon {

namespace mil = monet::mil;

namespace {

/// SET keys name ExecOptions fields; the canonical spelling may carry an
/// "exec." prefix ("exec.zone_maps" == "zone_maps").
std::string StripExecPrefix(const std::string& key) {
  constexpr std::string_view kPrefix = "exec.";
  if (key.rfind(kPrefix, 0) == 0) return key.substr(kPrefix.size());
  return key;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServerSession.

base::Status ServerSession::ValidateOverride(const std::string& key,
                                             int64_t value) {
  std::string k = StripExecPrefix(key);
  if (k == "num_shards") {
    if (value < 0 || value > (1 << 20)) {
      return base::Status::InvalidArgument(
          base::StrFormat("num_shards %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k == "num_threads") {
    if (value < 0 || value > 1024) {
      return base::Status::InvalidArgument(
          base::StrFormat("num_threads %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k == "query_deadline_ms") {
    if (value < 0 || value > 86'400'000) {  // a day is plenty
      return base::Status::InvalidArgument(
          base::StrFormat("query_deadline_ms %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k != "morsel_joins" && k != "fuse_aggregates" &&
             k != "zone_maps" && k != "topk_prune") {
    return base::Status::InvalidArgument(
        base::StrFormat("unknown SET key \"%s\"", key.c_str()));
  }
  return base::Status::Ok();
}

base::Status ServerSession::ApplyOverride(const std::string& key,
                                          int64_t value) {
  base::Status valid = ValidateOverride(key, value);
  if (!valid.ok()) return valid;
  std::string k = StripExecPrefix(key);
  std::lock_guard<std::mutex> lock(mu_);
  if (k == "num_shards") {
    options_.exec.num_shards = static_cast<size_t>(value);
  } else if (k == "num_threads") {
    options_.exec.num_threads = static_cast<int>(value);
  } else if (k == "morsel_joins") {
    options_.exec.morsel_joins = value != 0;
  } else if (k == "zone_maps") {
    options_.exec.zone_maps = value != 0;
  } else if (k == "topk_prune") {
    options_.exec.topk_prune = value != 0;
  } else if (k == "query_deadline_ms") {
    options_.exec.query_deadline_ms = static_cast<uint64_t>(value);
  } else {
    options_.exec.fuse_aggregates = value != 0;
  }
  return base::Status::Ok();
}

wire::SessionStatsEntry ServerSession::StatsEntry() const {
  wire::SessionStatsEntry entry;
  entry.session_id = id_;
  entry.client_name = client_name_;
  entry.requests = requests_.load(std::memory_order_relaxed);
  entry.errors = errors_.load(std::memory_order_relaxed);
  entry.plan_cache_size = exec_.plan_cache_size();
  entry.plan_cache_hits = exec_.plan_cache_hits();
  entry.plan_cache_lookups = exec_.plan_cache_lookups();
  std::lock_guard<std::mutex> lock(mu_);
  entry.options.num_shards = options_.exec.num_shards;
  entry.options.num_threads = options_.exec.num_threads;
  entry.options.morsel_joins = options_.exec.morsel_joins;
  entry.options.fuse_aggregates = options_.exec.fuse_aggregates;
  entry.options.zone_maps = options_.exec.zone_maps;
  entry.options.topk_prune = options_.exec.topk_prune;
  entry.options.query_deadline_ms = options_.exec.query_deadline_ms;
  return entry;
}

// ---------------------------------------------------------------------------
// SessionManager.

SessionManager::~SessionManager() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    db_->UnregisterSession(session->exec_context());
  }
  sessions_.clear();
}

std::shared_ptr<ServerSession> SessionManager::Open(
    std::string client_name, const db::QueryOptions& base_options) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto session = std::make_shared<ServerSession>(id, std::move(client_name),
                                                 base_options);
  // Registration wires the session's plan cache into MirrorDb::Load
  // invalidation for the whole session lifetime.
  db_->RegisterSession(session->exec_context());
  sessions_[id] = session;
  return session;
}

void SessionManager::Close(uint64_t session_id) {
  std::shared_ptr<ServerSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = it->second;
  }
  // Unregister before dropping the manager entry so an observer seeing
  // open_count() == 0 can rely on the database registration being gone.
  db_->UnregisterSession(session->exec_context());
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

std::vector<wire::SessionStatsEntry> SessionManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wire::SessionStatsEntry> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session->StatsEntry());
  }
  return out;
}

size_t SessionManager::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// QueryServer.

QueryServer::QueryServer(const db::MirrorDb* db)
    : QueryServer(db, Options()) {}

QueryServer::QueryServer(const db::MirrorDb* db, Options options)
    : db_(db), options_(std::move(options)), sessions_(db) {}

QueryServer::QueryServer(db::MirrorDb* db) : QueryServer(db, Options()) {}

QueryServer::QueryServer(db::MirrorDb* db, Options options)
    : db_(db), mutable_db_(db), options_(std::move(options)), sessions_(db) {}

QueryServer::~QueryServer() { Shutdown(); }

void QueryServer::CountIn(size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames_in;
  stats_.bytes_in += frame_bytes;
}

void QueryServer::CountOut(wire::FrameType type, size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames_out;
  stats_.bytes_out += frame_bytes;
  if (type == wire::FrameType::kError) ++stats_.errors;
}

wire::ServerWireStats QueryServer::stats() const {
  // Kernel counters are process-wide profiler state, snapshotted outside
  // the server lock (the profiler has its own mutex).
  monet::KernelStats kernels = monet::SnapshotKernelStats();
  db::RecoveryStats recovery = db_->recovery_stats();
  std::lock_guard<std::mutex> lock(mu_);
  wire::ServerWireStats out = stats_;
  out.load_generation = db_->load_generation();
  out.zone_blocks_skipped = kernels.zone_blocks_skipped;
  out.topk_morsels_pruned = kernels.topk_morsels_pruned;
  out.topk_shards_pruned = kernels.topk_shards_pruned;
  out.probe_partitions = kernels.probe_partitions;
  out.wal_appends = recovery.wal_appends;
  out.wal_replayed_records = recovery.wal_replayed_records;
  out.wal_truncated_bytes = recovery.wal_truncated_bytes;
  out.recovery_lazy_loads = recovery.recovery_lazy_loads;
  out.recovery_pending = recovery.recovery_pending ? 1 : 0;
  return out;
}

size_t QueryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void QueryServer::Serve(std::unique_ptr<wire::Transport> conn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    conn->Close();
    return;
  }
  // Reap finished connections so a long-lived daemon doesn't keep one
  // dead thread per connection ever served (their handlers have already
  // returned; the joins are immediate).
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  auto connection = std::make_unique<Connection>();
  connection->transport = std::move(conn);
  Connection* raw = connection.get();
  connection->thread = std::thread([this, raw] { HandleConnection(raw); });
  connections_.push_back(std::move(connection));
}

base::Result<int> QueryServer::ListenTcp(int port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return base::Status::IoError("server is shut down");
  }
  if (listener_ != nullptr) {
    return base::Status::AlreadyExists("server is already listening");
  }
  auto listener = wire::TcpListen(port);
  if (!listener.ok()) return listener.status();
  listener_ = listener.TakeValue();
  int bound = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound;
}

void QueryServer::AcceptLoop() {
  for (;;) {
    base::Result<std::unique_ptr<wire::Transport>> conn =
        base::Status::Internal("no listener");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (listener_ == nullptr || stopping_.load()) return;
    }
    // Accept blocks outside the lock; Shutdown() closes the listener to
    // unblock it.
    conn = listener_->Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;  // listener closed by Shutdown
      // Transient accept failure (e.g. fd exhaustion under load): keep
      // the daemon listening rather than silently stopping intake.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Serve(conn.TakeValue());
  }
}

void QueryServer::Shutdown(int64_t drain_millis) {
  // Serialized end to end: a second caller (e.g. the destructor racing
  // an explicit Shutdown) blocks here until the first has joined every
  // thread, then returns without touching anything.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (stopping_.load()) return;
  {
    // stopping_ flips inside drain_mu_ so request admission (which
    // checks it under the same mutex) cannot race the drain below.
    std::lock_guard<std::mutex> lock(drain_mu_);
    stopping_.store(true);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listener_ != nullptr) listener_->Close();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: let in-flight requests finish and deliver their replies.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(drain_millis),
                       [&] { return busy_requests_ == 0; });
  }
  // Unblock every idle request loop; handlers exit on EOF. No new
  // connections can appear (Serve refuses once stopping_ is set), so
  // iterating without mu_ for the joins is safe.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) conn->transport->Close();
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
QueryServer::ExecuteQuery(ServerSession* session,
                          const wire::QueryRequest& request) {
  auto result = db_->Query(request.text, request.bindings,
                           session->options(), session->exec_context());
  if (!result.ok()) {
    session->CountError();
    return {wire::FrameType::kError,
            std::make_shared<const std::vector<uint8_t>>(
                wire::EncodeError(result.status()))};
  }
  return {wire::FrameType::kResult,
          std::make_shared<const std::vector<uint8_t>>(
              wire::EncodeResultReply(result.value()))};
}

std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
QueryServer::ServeQuery(ServerSession* session,
                        const std::vector<uint8_t>& payload) {
  auto request = wire::DecodeQueryRequest(payload);
  if (!request.ok()) {
    session->CountError();
    return {wire::FrameType::kError,
            std::make_shared<const std::vector<uint8_t>>(
                wire::EncodeError(request.status()))};
  }
  session->CountRequest();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  if (!options_.coalesce_queries) {
    return ExecuteQuery(session, request.value());
  }
  // Coalescing key: the same normalization the session plan cache uses —
  // whitespace-insensitive query text plus the exact bindings. The text
  // is length-prefixed so no query spelling can collide with another
  // (text, bindings) pair's rendering. Results are engine-config-
  // invariant (the fuzz suite's core guarantee), so per-session SET
  // differences don't enter the key.
  std::string normalized =
      mil::ExecutionContext::NormalizeText(request.value().text);
  std::string key = base::StrFormat("%zu:", normalized.size());
  key += normalized;
  key += "|";
  key += request.value().bindings.CacheKey();
  std::shared_ptr<InFlightQuery> entry;
  bool is_leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<InFlightQuery>();
      inflight_[key] = entry;
      is_leader = true;
    }
  }
  if (!is_leader) {
    std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
        shared;
    {
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] { return entry->done; });
      shared = {entry->reply_type, entry->payload};
    }
    // Only successful results are shared: a leader's failure may be an
    // artifact of ITS session (a pathological SET, an allocation
    // failure under its config), so a follower re-executes under its
    // own options rather than inheriting another tenant's error.
    if (shared.first != wire::FrameType::kResult) {
      return ExecuteQuery(session, request.value());
    }
    {
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.coalesced_requests;
    }
    return shared;
  }
  // The leader MUST complete the entry and retire the key on every exit
  // path — an exception escaping execution or marshalling (e.g.
  // bad_alloc on a huge result) would otherwise leave followers (and
  // all future identical queries) waiting on it forever.
  struct Completer {
    QueryServer* server;
    const std::string& key;
    const std::shared_ptr<InFlightQuery>& entry;
    std::pair<wire::FrameType, std::shared_ptr<const std::vector<uint8_t>>>
        reply = {wire::FrameType::kError,
                 std::make_shared<const std::vector<uint8_t>>(
                     wire::EncodeError(base::Status::Internal(
                         "query leader aborted before completing")))};

    ~Completer() {
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        entry->reply_type = reply.first;
        entry->payload = reply.second;
        entry->done = true;
        entry->cv.notify_all();
      }
      std::lock_guard<std::mutex> lock(server->inflight_mu_);
      server->inflight_.erase(key);
    }
  } completer{this, key, entry};
  completer.reply = ExecuteQuery(session, request.value());
  return completer.reply;
}

void QueryServer::HandleConnection(Connection* conn) {
  wire::Transport* t = conn->transport.get();
  std::shared_ptr<ServerSession> session;

  auto send = [&](wire::FrameType type,
                  const std::vector<uint8_t>& payload) -> bool {
    base::Status s = wire::WriteFrame(t, type, payload);
    if (s.ok()) {
      CountOut(type, 5 + payload.size());
      return true;
    }
    if (s.code() == base::StatusCode::kInvalidArgument) {
      // Payload over the frame cap: nothing was written, the stream is
      // still synchronized — the client must get an ERROR, not silence
      // (a dropped reply would block it forever).
      std::vector<uint8_t> err = wire::EncodeError(base::Status::OutOfRange(
          base::StrFormat("reply of %zu bytes exceeds the frame limit; "
                          "narrow the query",
                          payload.size())));
      if (wire::WriteFrame(t, wire::FrameType::kError, err).ok()) {
        CountOut(wire::FrameType::kError, 5 + err.size());
        return true;
      }
    }
    return false;
  };
  auto send_error = [&](const base::Status& status) {
    return send(wire::FrameType::kError, wire::EncodeError(status));
  };

  bool closing = false;
  while (!closing) {
    auto frame = wire::ReadFrame(t);
    if (!frame.ok()) {
      // NotFound is a clean peer close. A corrupted header (unknown type
      // or oversized length) cannot be resynchronized: report and drop.
      // Truncation (IoError) means the peer is already gone.
      if (frame.status().code() == base::StatusCode::kParseError) {
        send_error(frame.status());
      }
      break;
    }
    CountIn(5 + frame.value().payload.size());
    // Admission and the busy count share one critical section with the
    // drain predicate: once Shutdown() has observed busy_requests_ == 0
    // under drain_mu_, no further request can slip in unseen.
    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      if (!stopping_.load()) {
        ++busy_requests_;
        admitted = true;
      }
    }
    if (!admitted) {
      send_error(base::Status::IoError("server shutting down"));
      break;
    }
    const std::vector<uint8_t>& payload = frame.value().payload;
    switch (frame.value().type) {
      case wire::FrameType::kHello: {
        auto hello = wire::DecodeHelloRequest(payload);
        if (!hello.ok()) {
          send_error(hello.status());
        } else if (hello.value().protocol_version != wire::kProtocolVersion) {
          send_error(base::Status::InvalidArgument(base::StrFormat(
              "protocol version %u not supported (server speaks %u)",
              hello.value().protocol_version, wire::kProtocolVersion)));
        } else if (session != nullptr) {
          send_error(
              base::Status::AlreadyExists("session already open"));
        } else {
          session = sessions_.Open(hello.value().client_name,
                                   options_.query);
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.sessions_opened;
          }
          wire::HelloReply reply;
          reply.session_id = session->id();
          reply.server_name = options_.server_name;
          send(wire::FrameType::kHelloOk, wire::EncodeHelloReply(reply));
        }
        break;
      }
      case wire::FrameType::kQuery: {
        if (session == nullptr) {
          send_error(base::Status::InvalidArgument(
              "QUERY before HELLO: no session"));
          break;
        }
        auto [type, reply_payload] = ServeQuery(session.get(), payload);
        send(type, *reply_payload);
        break;
      }
      case wire::FrameType::kSet: {
        if (session == nullptr) {
          send_error(base::Status::InvalidArgument(
              "SET before HELLO: no session"));
          break;
        }
        auto set = wire::DecodeSetRequest(payload);
        base::Status applied = set.ok() ? base::Status::Ok() : set.status();
        if (applied.ok()) {
          // Validate everything before applying anything, so a bad key
          // can't leave a half-applied override set.
          for (const auto& [key, value] : set.value().options) {
            applied = ServerSession::ValidateOverride(key, value);
            if (!applied.ok()) break;
          }
        }
        if (applied.ok()) {
          for (const auto& [key, value] : set.value().options) {
            applied = session->ApplyOverride(key, value);
            if (!applied.ok()) break;  // unreachable after validation
          }
        }
        if (!applied.ok()) {
          send_error(applied);
        } else {
          wire::SessionStatsEntry entry = session->StatsEntry();
          send(wire::FrameType::kSetOk,
               wire::EncodeSetReply(entry.options));
        }
        break;
      }
      case wire::FrameType::kAppend: {
        if (session == nullptr) {
          send_error(base::Status::InvalidArgument(
              "APPEND before HELLO: no session"));
          break;
        }
        if (mutable_db_ == nullptr) {
          send_error(base::Status::InvalidArgument(
              "server is read-only: APPEND rejected"));
          break;
        }
        auto request = wire::DecodeAppendRequest(payload);
        if (!request.ok()) {
          send_error(request.status());
          break;
        }
        session->CountRequest();
        wire::AppendRequest req = request.TakeValue();
        auto ack = mutable_db_->Append(req.bat_name, std::move(req.values));
        if (!ack.ok()) {
          session->CountError();
          send_error(ack.status());
          break;
        }
        wire::AppendReply reply;
        reply.lsn = ack.value().lsn;
        reply.visible_rows = ack.value().visible_rows;
        send(wire::FrameType::kAppendOk, wire::EncodeAppendReply(reply));
        break;
      }
      case wire::FrameType::kDelete: {
        if (session == nullptr) {
          send_error(base::Status::InvalidArgument(
              "DELETE before HELLO: no session"));
          break;
        }
        if (mutable_db_ == nullptr) {
          send_error(base::Status::InvalidArgument(
              "server is read-only: DELETE rejected"));
          break;
        }
        auto request = wire::DecodeDeleteRequest(payload);
        if (!request.ok()) {
          send_error(request.status());
          break;
        }
        session->CountRequest();
        wire::DeleteRequest req = request.TakeValue();
        auto ack = mutable_db_->DeleteRows(req.bat_name, std::move(req.oids));
        if (!ack.ok()) {
          session->CountError();
          send_error(ack.status());
          break;
        }
        wire::DeleteReply reply;
        reply.lsn = ack.value().lsn;
        reply.visible_rows = ack.value().visible_rows;
        reply.deleted = ack.value().deleted;
        send(wire::FrameType::kDeleteOk, wire::EncodeDeleteReply(reply));
        break;
      }
      case wire::FrameType::kStats: {
        wire::StatsReply reply;
        reply.server = stats();
        reply.sessions = sessions_.Snapshot();
        send(wire::FrameType::kStatsResult, wire::EncodeStatsReply(reply));
        break;
      }
      case wire::FrameType::kClose: {
        send(wire::FrameType::kCloseOk, {});
        closing = true;
        break;
      }
      default:
        // Reply frame types arriving at the server are a peer bug, but
        // the stream is still framed: answer and keep serving.
        send_error(base::Status::InvalidArgument(base::StrFormat(
            "unexpected frame type 0x%02x on a server connection",
            static_cast<unsigned>(frame.value().type))));
        break;
    }
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --busy_requests_;
      drain_cv_.notify_all();
    }
  }

  if (session != nullptr) {
    sessions_.Close(session->id());
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_closed;
  }
  t->Close();
  conn->done.store(true, std::memory_order_release);
}

}  // namespace mirror::daemon
