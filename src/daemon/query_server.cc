#include "daemon/query_server.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <string_view>

#include "base/str_util.h"
#include "monet/profiler.h"

namespace mirror::daemon {

namespace mil = monet::mil;

namespace {

/// SET keys name ExecOptions fields; the canonical spelling may carry an
/// "exec." prefix ("exec.zone_maps" == "zone_maps").
std::string StripExecPrefix(const std::string& key) {
  constexpr std::string_view kPrefix = "exec.";
  if (key.rfind(kPrefix, 0) == 0) return key.substr(kPrefix.size());
  return key;
}

/// The shared recycler/coalescing key of one query request: the same
/// normalization the session plan cache uses — whitespace-insensitive
/// query text plus the exact bindings. The text is length-prefixed so
/// no query spelling can collide with another (text, bindings) pair's
/// rendering. Results are engine-config-invariant (the fuzz suite's
/// core guarantee), so per-session SET differences don't enter the key.
std::string QueryCacheKey(const wire::QueryRequest& request) {
  std::string normalized = mil::ExecutionContext::NormalizeText(request.text);
  std::string key = base::StrFormat("%zu:", normalized.size());
  key += normalized;
  key += "|";
  key += request.bindings.CacheKey();
  return key;
}

/// Cached replies come from flattened engine executions; only hand
/// them to sessions whose config would have produced the same bytes
/// (true for every engine config by the equivalence guarantee, but the
/// naive interpreter path is kept out of the cache on both ends).
bool SessionUsesRecycler(const db::QueryOptions& options) {
  return options.exec.recycle && options.flattened && options.use_engine;
}

}  // namespace

// ---------------------------------------------------------------------------
// ServerSession.

base::Status ServerSession::ValidateOverride(const std::string& key,
                                             int64_t value) {
  std::string k = StripExecPrefix(key);
  if (k == "num_shards") {
    if (value < 0 || value > (1 << 20)) {
      return base::Status::InvalidArgument(
          base::StrFormat("num_shards %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k == "num_threads") {
    if (value < 0 || value > 1024) {
      return base::Status::InvalidArgument(
          base::StrFormat("num_threads %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k == "query_deadline_ms") {
    if (value < 0 || value > 86'400'000) {  // a day is plenty
      return base::Status::InvalidArgument(
          base::StrFormat("query_deadline_ms %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k == "memory_budget_bytes") {
    if (value < 0) {
      return base::Status::InvalidArgument(
          base::StrFormat("memory_budget_bytes %lld out of range",
                          static_cast<long long>(value)));
    }
  } else if (k != "morsel_joins" && k != "fuse_aggregates" &&
             k != "zone_maps" && k != "topk_prune" && k != "recycle" &&
             k != "trace") {
    return base::Status::InvalidArgument(
        base::StrFormat("unknown SET key \"%s\"", key.c_str()));
  }
  return base::Status::Ok();
}

base::Status ServerSession::ApplyOverride(const std::string& key,
                                          int64_t value) {
  base::Status valid = ValidateOverride(key, value);
  if (!valid.ok()) return valid;
  std::string k = StripExecPrefix(key);
  std::lock_guard<std::mutex> lock(mu_);
  if (k == "num_shards") {
    options_.exec.num_shards = static_cast<size_t>(value);
  } else if (k == "num_threads") {
    options_.exec.num_threads = static_cast<int>(value);
  } else if (k == "morsel_joins") {
    options_.exec.morsel_joins = value != 0;
  } else if (k == "zone_maps") {
    options_.exec.zone_maps = value != 0;
  } else if (k == "topk_prune") {
    options_.exec.topk_prune = value != 0;
  } else if (k == "recycle") {
    options_.exec.recycle = value != 0;
  } else if (k == "trace") {
    options_.exec.trace = value != 0;
  } else if (k == "query_deadline_ms") {
    options_.exec.query_deadline_ms = static_cast<uint64_t>(value);
  } else if (k == "memory_budget_bytes") {
    options_.exec.memory_budget_bytes = static_cast<uint64_t>(value);
  } else {
    options_.exec.fuse_aggregates = value != 0;
  }
  return base::Status::Ok();
}

wire::SessionStatsEntry ServerSession::StatsEntry() const {
  wire::SessionStatsEntry entry;
  entry.session_id = id_;
  entry.client_name = client_name_;
  entry.requests = requests_.load(std::memory_order_relaxed);
  entry.errors = errors_.load(std::memory_order_relaxed);
  entry.plan_cache_size = exec_.plan_cache_size();
  entry.plan_cache_hits = exec_.plan_cache_hits();
  entry.plan_cache_lookups = exec_.plan_cache_lookups();
  std::lock_guard<std::mutex> lock(mu_);
  entry.options.num_shards = options_.exec.num_shards;
  entry.options.num_threads = options_.exec.num_threads;
  entry.options.morsel_joins = options_.exec.morsel_joins;
  entry.options.fuse_aggregates = options_.exec.fuse_aggregates;
  entry.options.zone_maps = options_.exec.zone_maps;
  entry.options.topk_prune = options_.exec.topk_prune;
  entry.options.query_deadline_ms = options_.exec.query_deadline_ms;
  entry.options.memory_budget_bytes = options_.exec.memory_budget_bytes;
  entry.options.recycle = options_.exec.recycle;
  entry.options.trace = options_.exec.trace;
  return entry;
}

void ServerSession::StoreTrace(std::shared_ptr<const wire::TraceReply> trace) {
  std::lock_guard<std::mutex> lock(mu_);
  last_trace_ = std::move(trace);
}

std::shared_ptr<const wire::TraceReply> ServerSession::LastTrace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_trace_;
}

// ---------------------------------------------------------------------------
// SessionManager.

SessionManager::~SessionManager() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, session] : sessions_) {
    db_->UnregisterSession(session->exec_context());
  }
  sessions_.clear();
}

std::shared_ptr<ServerSession> SessionManager::Open(
    std::string client_name, const db::QueryOptions& base_options) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  auto session = std::make_shared<ServerSession>(id, std::move(client_name),
                                                 base_options);
  // Registration wires the session's plan cache into MirrorDb::Load
  // invalidation for the whole session lifetime.
  db_->RegisterSession(session->exec_context());
  sessions_[id] = session;
  return session;
}

void SessionManager::Close(uint64_t session_id) {
  std::shared_ptr<ServerSession> session;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = it->second;
  }
  // Unregister before dropping the manager entry so an observer seeing
  // open_count() == 0 can rely on the database registration being gone.
  db_->UnregisterSession(session->exec_context());
  std::lock_guard<std::mutex> lock(mu_);
  sessions_.erase(session_id);
}

std::vector<wire::SessionStatsEntry> SessionManager::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<wire::SessionStatsEntry> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session->StatsEntry());
  }
  return out;
}

size_t SessionManager::open_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// QueryServer.

QueryServer::QueryServer(const db::MirrorDb* db)
    : QueryServer(db, Options()) {}

QueryServer::QueryServer(const db::MirrorDb* db, Options options)
    : db_(db), options_(std::move(options)), sessions_(db) {
  chunk_bytes_ = std::max<size_t>(
      4096, std::min(options_.result_chunk_bytes,
                     std::max<size_t>(4096, options_.outbound_buffer_limit / 4)));
}

QueryServer::QueryServer(db::MirrorDb* db) : QueryServer(db, Options()) {}

QueryServer::QueryServer(db::MirrorDb* db, Options options)
    : db_(db), mutable_db_(db), options_(std::move(options)), sessions_(db) {
  chunk_bytes_ = std::max<size_t>(
      4096, std::min(options_.result_chunk_bytes,
                     std::max<size_t>(4096, options_.outbound_buffer_limit / 4)));
}

QueryServer::~QueryServer() {
  Shutdown();
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void QueryServer::CountIn(size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames_in;
  stats_.bytes_in += frame_bytes;
}

void QueryServer::CountOut(wire::FrameType type, size_t frame_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.frames_out;
  stats_.bytes_out += frame_bytes;
  if (type == wire::FrameType::kError) ++stats_.errors;
}

wire::ServerWireStats QueryServer::stats() const {
  // Kernel counters are process-wide profiler state, snapshotted outside
  // the server lock (the profiler has its own mutex).
  monet::KernelStats kernels = monet::SnapshotKernelStats();
  db::RecoveryStats recovery = db_->recovery_stats();
  monet::RecyclerStats recycler = db_->recycler()->stats();
  std::lock_guard<std::mutex> lock(mu_);
  wire::ServerWireStats out = stats_;
  out.load_generation = db_->load_generation();
  out.zone_blocks_skipped = kernels.zone_blocks_skipped;
  out.topk_morsels_pruned = kernels.topk_morsels_pruned;
  out.topk_shards_pruned = kernels.topk_shards_pruned;
  out.probe_partitions = kernels.probe_partitions;
  out.peak_query_bytes = kernels.peak_query_bytes;
  out.wal_appends = recovery.wal_appends;
  out.wal_replayed_records = recovery.wal_replayed_records;
  out.wal_truncated_bytes = recovery.wal_truncated_bytes;
  out.recovery_lazy_loads = recovery.recovery_lazy_loads;
  out.recovery_pending = recovery.recovery_pending ? 1 : 0;
  out.requests_shed = requests_shed_.load(std::memory_order_relaxed);
  out.queue_depth_high_water =
      queue_depth_high_water_.load(std::memory_order_relaxed);
  out.active_workers = active_workers_.load(std::memory_order_relaxed);
  out.result_chunks_streamed =
      result_chunks_streamed_.load(std::memory_order_relaxed);
  out.slow_client_disconnects =
      slow_client_disconnects_.load(std::memory_order_relaxed);
  out.result_cache_hits = recycler.result_hits;
  out.result_cache_misses = recycler.result_misses;
  out.recycler_admissions_rejected = recycler.admissions_rejected;
  out.recycler_evictions = recycler.evictions;
  out.recycler_bytes_held = recycler.bytes_held;
  out.candidate_cache_hits = kernels.candidate_cache_hits;
  out.candidate_subsumption_hits = kernels.candidate_subsumption_hits;
  out.latency_query = latency_query_.Snapshot();
  out.latency_append = latency_append_.Snapshot();
  out.latency_delete = latency_delete_.Snapshot();
  {
    std::lock_guard<std::mutex> slock(slow_mu_);
    out.slow_queries.assign(slow_queries_.begin(), slow_queries_.end());
  }
  return out;
}

ClassLatency* QueryServer::LatencyFor(wire::FrameType type) {
  switch (type) {
    case wire::FrameType::kAppend:
      return &latency_append_;
    case wire::FrameType::kDelete:
      return &latency_delete_;
    default:
      return &latency_query_;
  }
}

void QueryServer::RecordSlowQuery(wire::SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(slow_mu_);
  slow_queries_.push_back(std::move(entry));
  while (slow_queries_.size() > std::max<size_t>(1, options_.slow_query_ring)) {
    slow_queries_.pop_front();
  }
}

size_t QueryServer::active_connections() const {
  std::lock_guard<std::mutex> lock(loop_mu_);
  size_t n = 0;
  for (const auto& [id, conn] : conns_) {
    if (!conn->dead) ++n;
  }
  return n;
}

void QueryServer::EnsureStarted() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (started_) return;
  started_ = true;
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  int n = options_.worker_threads;
  if (n <= 0) {
    int hw = static_cast<int>(std::thread::hardware_concurrency());
    n = std::max(2, std::min(8, hw));
  }
  loop_thread_ = std::thread([this] { LoopMain(); });
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

void QueryServer::Wake() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  [[maybe_unused]] ssize_t r = ::write(wake_fd_, &one, sizeof(one));
}

void QueryServer::Serve(std::unique_ptr<wire::Transport> conn) {
  if (stopping_.load()) {
    conn->Close();
    return;
  }
  EnsureStarted();
  int fd = conn->PollFd();
  if (fd < 0) {
    // The readiness loop can only drive pollable transports; a custom
    // blocking-only transport is refused rather than silently wedged.
    conn->Close();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    if (stopping_.load() || loop_stop_) {
      conn->Close();
      return;
    }
    auto c = std::make_unique<Conn>();
    c->id = next_conn_id_++;
    c->fd = fd;
    c->transport = std::move(conn);
    c->last_write_progress = std::chrono::steady_clock::now();
    conns_[c->id] = std::move(c);
  }
  Wake();
}

base::Result<int> QueryServer::ListenTcp(int port) {
  EnsureStarted();
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load()) {
    return base::Status::IoError("server is shut down");
  }
  if (listener_ != nullptr) {
    return base::Status::AlreadyExists("server is already listening");
  }
  auto listener = wire::TcpListen(port);
  if (!listener.ok()) return listener.status();
  listener_ = listener.TakeValue();
  int bound = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return bound;
}

void QueryServer::AcceptLoop() {
  for (;;) {
    base::Result<std::unique_ptr<wire::Transport>> conn =
        base::Status::Internal("no listener");
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (listener_ == nullptr || stopping_.load()) return;
    }
    // Accept blocks outside the lock; Shutdown() closes the listener to
    // unblock it.
    conn = listener_->Accept();
    if (!conn.ok()) {
      if (stopping_.load()) return;  // listener closed by Shutdown
      // Transient accept failure (e.g. fd exhaustion under load): keep
      // the daemon listening rather than silently stopping intake.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    Serve(conn.TakeValue());
  }
}

void QueryServer::Shutdown(int64_t drain_millis) {
  // Serialized end to end: a second caller (e.g. the destructor racing
  // an explicit Shutdown) blocks here until the first has joined every
  // thread, then returns without touching anything.
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (stopping_.load()) return;
  {
    // stopping_ flips inside loop_mu_ so request admission (which checks
    // it under the same mutex) cannot race the drain below.
    std::lock_guard<std::mutex> lock(loop_mu_);
    stopping_.store(true);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (listener_ != nullptr) listener_->Close();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  Wake();
  // Drain: let admitted requests finish and their replies flush. The
  // loop keeps running (it is what flushes) and notifies drain_cv_ once
  // quiescent.
  {
    std::unique_lock<std::mutex> lock(loop_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(drain_millis), [&] {
      if (busy_requests_ != 0 || !queue_.empty()) return false;
      for (const auto& [id, c] : conns_) {
        if (!c->dead && (c->out_bytes > 0 || c->stream_payload != nullptr)) {
          return false;
        }
      }
      return true;
    });
  }
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    loop_stop_ = true;
  }
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
}

// ---------------------------------------------------------------------------
// Event loop.

void QueryServer::ReadIntoBufferLocked(Conn* c) {
  if (c->dead || c->eof) return;
  uint8_t tmp[64 * 1024];
  size_t read_this_wake = 0;
  for (;;) {
    wire::IoResult r = c->transport->ReadSome(tmp, sizeof(tmp));
    switch (r.status) {
      case wire::IoStatus::kOk:
        c->in_buf.insert(c->in_buf.end(), tmp, tmp + r.bytes);
        read_this_wake += r.bytes;
        // Fairness cap: a firehose peer must not monopolize the loop.
        if (read_this_wake >= 256 * 1024) return;
        break;
      case wire::IoStatus::kWouldBlock:
        return;
      case wire::IoStatus::kEof:
        c->eof = true;
        return;
      case wire::IoStatus::kError:
        c->dead = true;
        return;
    }
  }
}

void QueryServer::FlushOutboundLocked(Conn* c) {
  if (c->dead) return;
  while (c->out_bytes > 0) {
    std::vector<uint8_t>& front = c->out.front();
    size_t n = front.size() - c->out_front_off;
    wire::IoResult r = c->transport->WriteSome(front.data() + c->out_front_off, n);
    if (r.status != wire::IoStatus::kOk) {
      if (r.status != wire::IoStatus::kWouldBlock) c->dead = true;
      return;
    }
    if (r.bytes > 0) {
      c->last_write_progress = std::chrono::steady_clock::now();
    }
    c->out_front_off += r.bytes;
    c->out_bytes -= r.bytes;
    if (c->out_front_off == front.size()) {
      c->out.pop_front();
      c->out_front_off = 0;
    }
    if (r.bytes < n) return;  // kernel buffer full; wait for POLLOUT
  }
}

void QueryServer::EnqueueFrameLocked(Conn* c, wire::FrameType type,
                                     const uint8_t* payload, size_t n) {
  if (c->dead) return;
  if (n > wire::kMaxFramePayload) {
    // Unstreamed reply over the frame cap: nothing was written, the
    // stream is still synchronized — the client must get an ERROR, not
    // silence (a dropped reply would block it forever).
    std::vector<uint8_t> err = wire::EncodeError(base::Status::OutOfRange(
        base::StrFormat("reply of %zu bytes exceeds the frame limit; "
                        "narrow the query",
                        n)));
    EnqueueFrameLocked(c, wire::FrameType::kError, err.data(), err.size());
    return;
  }
  std::vector<uint8_t> frame;
  frame.reserve(5 + n);
  frame.push_back(static_cast<uint8_t>(type));
  uint32_t len = static_cast<uint32_t>(n);
  const uint8_t* lp = reinterpret_cast<const uint8_t*>(&len);
  frame.insert(frame.end(), lp, lp + sizeof(len));
  if (n > 0) frame.insert(frame.end(), payload, payload + n);
  if (c->out.empty()) {
    c->last_write_progress = std::chrono::steady_clock::now();
  }
  c->out_bytes += frame.size();
  c->out.push_back(std::move(frame));
  CountOut(type, 5 + n);
  if (type == wire::FrameType::kResultChunk) {
    result_chunks_streamed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (c->out_bytes > options_.outbound_buffer_limit) {
    // Slow-client policy: the peer let replies pile past the cap, so the
    // server sheds the connection instead of buffering without bound.
    c->dead = true;
    slow_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
  }
}

void QueryServer::EnqueueErrorLocked(Conn* c, const base::Status& status) {
  std::vector<uint8_t> payload = wire::EncodeError(status);
  EnqueueFrameLocked(c, wire::FrameType::kError, payload.data(),
                     payload.size());
}

void QueryServer::PumpStreamLocked(Conn* c) {
  if (c->stream_payload == nullptr) return;
  if (c->dead) {
    c->stream_payload = nullptr;
    c->busy = false;
    return;
  }
  const std::vector<uint8_t>& body = *c->stream_payload;
  // Refill only up to half the cap: the stream throttles itself to the
  // client's drain rate instead of tripping the slow-client guillotine.
  const size_t budget = std::max<size_t>(1, options_.outbound_buffer_limit / 2);
  while (!c->dead && c->out_bytes < budget) {
    size_t remaining = body.size() - c->stream_off;
    if (remaining == 0) {
      wire::ResultEnd end;
      end.total_bytes = body.size();
      end.chunks = c->stream_chunks;
      std::vector<uint8_t> ep = wire::EncodeResultEnd(end);
      EnqueueFrameLocked(c, wire::FrameType::kResultEnd, ep.data(), ep.size());
      c->stream_payload = nullptr;
      c->stream_off = 0;
      c->stream_chunks = 0;
      c->busy = false;  // reply fully enqueued; parsing may resume
      return;
    }
    size_t take = std::min(remaining, chunk_bytes_);
    EnqueueFrameLocked(c, wire::FrameType::kResultChunk,
                       body.data() + c->stream_off, take);
    c->stream_off += take;
    ++c->stream_chunks;
  }
}

void QueryServer::EnqueueReplyLocked(Conn* c, const Reply& reply) {
  if (c->dead) {
    c->busy = false;
    return;
  }
  if (reply.type == wire::FrameType::kResult &&
      reply.payload->size() > chunk_bytes_) {
    // Stream: slice byte ranges out of the one encoded payload — never
    // re-encode, so coalesced followers stay bit-identical.
    c->stream_payload = reply.payload;
    c->stream_off = 0;
    c->stream_chunks = 0;
    PumpStreamLocked(c);
    return;
  }
  EnqueueFrameLocked(c, reply.type, reply.payload->data(),
                     reply.payload->size());
  c->busy = false;
}

bool QueryServer::HasCompleteFrame(const Conn* c) const {
  if (c->in_buf.size() < 5) return false;
  uint32_t len = 0;
  std::memcpy(&len, c->in_buf.data() + 1, sizeof(len));
  if (len > wire::kMaxFramePayload) return true;  // parse will reject it
  return c->in_buf.size() >= size_t{5} + len;
}

void QueryServer::CloseConnLocked(Conn* c) {
  if (c->session != nullptr) {
    sessions_.Close(c->session->id());
    c->session.reset();
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_closed;
  }
  c->transport->Close();
}

void QueryServer::HandleInlineLocked(Conn* c, wire::FrameType type,
                                     std::vector<uint8_t> payload) {
  switch (type) {
    case wire::FrameType::kHello: {
      auto hello = wire::DecodeHelloRequest(payload);
      if (!hello.ok()) {
        EnqueueErrorLocked(c, hello.status());
      } else if (hello.value().protocol_version != wire::kProtocolVersion) {
        EnqueueErrorLocked(c, base::Status::InvalidArgument(base::StrFormat(
            "protocol version %u not supported (server speaks %u)",
            hello.value().protocol_version, wire::kProtocolVersion)));
      } else if (c->session != nullptr) {
        EnqueueErrorLocked(c,
                           base::Status::AlreadyExists("session already open"));
      } else {
        c->session = sessions_.Open(hello.value().client_name, options_.query);
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.sessions_opened;
        }
        wire::HelloReply reply;
        reply.session_id = c->session->id();
        reply.server_name = options_.server_name;
        std::vector<uint8_t> rp = wire::EncodeHelloReply(reply);
        EnqueueFrameLocked(c, wire::FrameType::kHelloOk, rp.data(), rp.size());
      }
      break;
    }
    case wire::FrameType::kSet: {
      if (c->session == nullptr) {
        EnqueueErrorLocked(c, base::Status::InvalidArgument(
                                  "SET before HELLO: no session"));
        break;
      }
      auto set = wire::DecodeSetRequest(payload);
      base::Status applied = set.ok() ? base::Status::Ok() : set.status();
      if (applied.ok()) {
        // Validate everything before applying anything, so a bad key
        // can't leave a half-applied override set.
        for (const auto& [key, value] : set.value().options) {
          applied = ServerSession::ValidateOverride(key, value);
          if (!applied.ok()) break;
        }
      }
      if (applied.ok()) {
        for (const auto& [key, value] : set.value().options) {
          applied = c->session->ApplyOverride(key, value);
          if (!applied.ok()) break;  // unreachable after validation
        }
      }
      if (!applied.ok()) {
        EnqueueErrorLocked(c, applied);
      } else {
        wire::SessionStatsEntry entry = c->session->StatsEntry();
        std::vector<uint8_t> rp = wire::EncodeSetReply(entry.options);
        EnqueueFrameLocked(c, wire::FrameType::kSetOk, rp.data(), rp.size());
      }
      break;
    }
    case wire::FrameType::kStats: {
      auto req = wire::DecodeStatsRequest(payload);
      if (!req.ok()) {
        EnqueueErrorLocked(c, req.status());
        break;
      }
      wire::StatsReply reply;
      reply.server = stats();
      reply.sessions = sessions_.Snapshot();
      if (req.value().reset) {
        // Read-and-clear: the reply above carries the pre-reset numbers;
        // the latency histograms, the slow-query ring and the
        // process-wide kernel counters start a fresh epoch here. Wire
        // frame/byte counters are monotonic by design and stay.
        latency_query_.Reset();
        latency_append_.Reset();
        latency_delete_.Reset();
        {
          std::lock_guard<std::mutex> slock(slow_mu_);
          slow_queries_.clear();
        }
        monet::ResetKernelStats();
      }
      std::vector<uint8_t> rp = wire::EncodeStatsReply(reply);
      EnqueueFrameLocked(c, wire::FrameType::kStatsResult, rp.data(),
                         rp.size());
      break;
    }
    case wire::FrameType::kTrace: {
      if (c->session == nullptr) {
        EnqueueErrorLocked(c, base::Status::InvalidArgument(
                                  "TRACE before HELLO: no session"));
        break;
      }
      std::shared_ptr<const wire::TraceReply> last = c->session->LastTrace();
      std::vector<uint8_t> rp;
      if (last != nullptr) {
        rp = wire::EncodeTraceReply(*last);
      } else {
        // Nothing traced yet: full schema, zero rows, so clients can
        // print headers without special-casing.
        monet::TraceTable empty = monet::TraceToBats({});
        wire::TraceReply reply;
        reply.names = std::move(empty.names);
        reply.cols = std::move(empty.cols);
        rp = wire::EncodeTraceReply(reply);
      }
      EnqueueFrameLocked(c, wire::FrameType::kTraceResult, rp.data(),
                         rp.size());
      break;
    }
    case wire::FrameType::kClose: {
      EnqueueFrameLocked(c, wire::FrameType::kCloseOk, nullptr, 0);
      c->close_after_flush = true;
      break;
    }
    default:
      // Reply frame types arriving at the server are a peer bug, but
      // the stream is still framed: answer and keep serving.
      EnqueueErrorLocked(c, base::Status::InvalidArgument(base::StrFormat(
          "unexpected frame type 0x%02x on a server connection",
          static_cast<unsigned>(type))));
      break;
  }
}

void QueryServer::ParseAndDispatchLocked(Conn* c) {
  while (!c->busy && !c->dead && !c->close_after_flush) {
    if (c->in_buf.size() < 5) return;
    uint8_t type_byte = c->in_buf[0];
    uint32_t len = 0;
    std::memcpy(&len, c->in_buf.data() + 1, sizeof(len));
    if (!wire::IsKnownFrameType(type_byte)) {
      // A corrupted header cannot be resynchronized: report and drop.
      EnqueueErrorLocked(c, base::Status::ParseError(base::StrFormat(
          "unknown frame type 0x%02x", type_byte)));
      c->close_after_flush = true;
      return;
    }
    if (len > wire::kMaxFramePayload) {
      // Oversized declared length: best-effort typed ERROR before the
      // drop — the peer learns why instead of seeing a bare reset.
      EnqueueErrorLocked(c, base::Status::ParseError(base::StrFormat(
          "frame payload of %u bytes exceeds the %u limit", len,
          wire::kMaxFramePayload)));
      c->close_after_flush = true;
      return;
    }
    if (c->in_buf.size() < size_t{5} + len) return;  // partial frame
    auto type = static_cast<wire::FrameType>(type_byte);
    std::vector<uint8_t> payload(c->in_buf.begin() + 5,
                                 c->in_buf.begin() + 5 + len);
    c->in_buf.erase(c->in_buf.begin(), c->in_buf.begin() + 5 + len);
    CountIn(size_t{5} + len);
    if (stopping_.load()) {
      EnqueueErrorLocked(c, base::Status::IoError("server shutting down"));
      c->close_after_flush = true;
      return;
    }
    switch (type) {
      case wire::FrameType::kQuery:
      case wire::FrameType::kAppend:
      case wire::FrameType::kDelete: {
        const char* verb = type == wire::FrameType::kQuery    ? "QUERY"
                           : type == wire::FrameType::kAppend ? "APPEND"
                                                              : "DELETE";
        if (c->session == nullptr) {
          EnqueueErrorLocked(c, base::Status::InvalidArgument(base::StrFormat(
              "%s before HELLO: no session", verb)));
          break;
        }
        if (type != wire::FrameType::kQuery && mutable_db_ == nullptr) {
          EnqueueErrorLocked(c, base::Status::InvalidArgument(base::StrFormat(
              "server is read-only: %s rejected", verb)));
          break;
        }
        const auto admit = std::chrono::steady_clock::now();
        if (type == wire::FrameType::kQuery &&
            SessionUsesRecycler(c->session->options())) {
          // Recycler fast path: a query whose encoded RESULT is already
          // cached for the current data version is answered inline by
          // the poll loop — no queue slot, no worker wakeup. Misses
          // (and undecodable requests) fall through to the normal
          // queue, where the worker reports any decode error.
          auto request = wire::DecodeQueryRequest(payload);
          if (request.ok()) {
            monet::Recycler* recycler = db_->recycler();
            auto hit = recycler->LookupResult(recycler->generation(),
                                              QueryCacheKey(request.value()));
            if (hit != nullptr) {
              c->session->CountRequest();
              {
                std::lock_guard<std::mutex> lock(mu_);
                ++stats_.requests;
              }
              // The cache hit never queued: zero queue wait, and the
              // lookup itself is the whole service time.
              const uint64_t micros = static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - admit)
                      .count());
              latency_query_.queue_wait.Record(0);
              latency_query_.exec.Record(micros);
              latency_query_.total.Record(micros);
              Reply reply;
              reply.type = wire::FrameType::kResult;
              reply.payload = std::move(hit);
              c->busy = true;
              EnqueueReplyLocked(c, reply);
              break;
            }
          }
        }
        if (queue_.size() >= options_.request_queue_limit) {
          // Admission control: shed with a typed, retryable error. The
          // connection is NOT marked busy — it keeps its place and may
          // retry after the hint.
          requests_shed_.fetch_add(1, std::memory_order_relaxed);
          std::vector<uint8_t> err = wire::EncodeError(
              base::Status::Overloaded("server overloaded: request queue is full"),
              options_.retry_after_ms);
          EnqueueFrameLocked(c, wire::FrameType::kError, err.data(),
                             err.size());
          break;
        }
        c->busy = true;
        WorkItem item;
        item.conn_id = c->id;
        item.type = type;
        item.payload = std::move(payload);
        item.session = c->session;
        item.admit = admit;
        queue_.push_back(std::move(item));
        ++busy_requests_;
        uint64_t depth = queue_.size();
        if (depth > queue_depth_high_water_.load(std::memory_order_relaxed)) {
          queue_depth_high_water_.store(depth, std::memory_order_relaxed);
        }
        queue_cv_.notify_one();
        break;  // busy: the while condition stops further parsing
      }
      default:
        HandleInlineLocked(c, type, std::move(payload));
        break;
    }
  }
}

void QueryServer::LoopMain() {
  std::vector<pollfd> pfds;
  std::vector<uint64_t> ids;
  for (;;) {
    pfds.clear();
    ids.clear();
    {
      std::lock_guard<std::mutex> lock(loop_mu_);
      if (loop_stop_) break;
      pfds.push_back(pollfd{wake_fd_, POLLIN, 0});
      ids.push_back(0);
      for (const auto& [id, cptr] : conns_) {
        const Conn* c = cptr.get();
        if (c->dead) continue;
        short events = 0;
        if (!c->busy && !c->close_after_flush && !c->eof) events |= POLLIN;
        if (c->out_bytes > 0) events |= POLLOUT;
        if (events == 0) continue;
        pfds.push_back(pollfd{c->fd, events, 0});
        ids.push_back(id);
      }
    }
    ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 25);
    if (pfds[0].revents & POLLIN) {
      uint64_t drained = 0;
      [[maybe_unused]] ssize_t r = ::read(wake_fd_, &drained, sizeof(drained));
    }
    std::lock_guard<std::mutex> lock(loop_mu_);
    for (size_t i = 1; i < pfds.size(); ++i) {
      auto it = conns_.find(ids[i]);
      if (it == conns_.end()) continue;
      Conn* c = it->second.get();
      if (pfds[i].revents & POLLNVAL) {
        c->dead = true;
        continue;
      }
      if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        ReadIntoBufferLocked(c);
      }
      if (pfds[i].revents & POLLOUT) FlushOutboundLocked(c);
    }
    auto now = std::chrono::steady_clock::now();
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* c = it->second.get();
      if (!c->dead) {
        PumpStreamLocked(c);
        if (!c->busy) ParseAndDispatchLocked(c);
        if (c->out_bytes > 0) FlushOutboundLocked(c);
        if (!c->dead && c->out_bytes > 0 &&
            now - c->last_write_progress >
                std::chrono::milliseconds(options_.write_stall_timeout_ms)) {
          // Write stalled past the timeout: slow-client disconnect.
          c->dead = true;
          slow_client_disconnects_.fetch_add(1, std::memory_order_relaxed);
        }
        if (!c->dead && !c->busy && c->close_after_flush &&
            c->out_bytes == 0) {
          c->dead = true;  // goodbye flushed; retire the connection
        }
        if (!c->dead && !c->busy && c->eof && c->out_bytes == 0 &&
            c->stream_payload == nullptr && !HasCompleteFrame(c)) {
          c->dead = true;  // peer gone, nothing pending in either direction
        }
      }
      if (c->dead && !c->busy && c->stream_payload == nullptr) {
        CloseConnLocked(c);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
    if (stopping_.load() && busy_requests_ == 0 && queue_.empty()) {
      bool flushed = true;
      for (const auto& [id, c] : conns_) {
        if (!c->dead && (c->out_bytes > 0 || c->stream_payload != nullptr)) {
          flushed = false;
          break;
        }
      }
      if (flushed) drain_cv_.notify_all();
    }
  }
  // loop_stop_: final best-effort flush, then close everything.
  std::lock_guard<std::mutex> lock(loop_mu_);
  for (auto& [id, cptr] : conns_) {
    Conn* c = cptr.get();
    if (!c->dead) {
      PumpStreamLocked(c);
      FlushOutboundLocked(c);
    }
    CloseConnLocked(c);
  }
  conns_.clear();
}

// ---------------------------------------------------------------------------
// Worker pool.

void QueryServer::WorkerMain() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      queue_cv_.wait(lock, [&] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and nothing left
      item = std::move(queue_.front());
      queue_.pop_front();
      active_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    ClassLatency* lat = LatencyFor(item.type);
    const auto dequeued = std::chrono::steady_clock::now();
    auto micros_between = [](std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(b - a)
              .count());
    };
    lat->queue_wait.Record(micros_between(item.admit, dequeued));
    Reply reply = ProcessItem(item);
    const auto done = std::chrono::steady_clock::now();
    lat->exec.Record(micros_between(dequeued, done));
    lat->total.Record(micros_between(item.admit, done));
    {
      std::lock_guard<std::mutex> lock(loop_mu_);
      active_workers_.fetch_sub(1, std::memory_order_relaxed);
      --busy_requests_;
      auto it = conns_.find(item.conn_id);
      if (it != conns_.end()) {
        Conn* c = it->second.get();
        EnqueueReplyLocked(c, reply);
        FlushOutboundLocked(c);
      }
    }
    drain_cv_.notify_all();
    Wake();
  }
}

QueryServer::Reply QueryServer::ProcessItem(const WorkItem& item) {
  ServerSession* session = item.session.get();
  auto error_reply = [](const base::Status& status) {
    Reply r;
    r.type = wire::FrameType::kError;
    r.payload = std::make_shared<const std::vector<uint8_t>>(
        wire::EncodeError(status));
    return r;
  };
  switch (item.type) {
    case wire::FrameType::kQuery:
      return ServeQuery(session, item.payload, item.admit);
    case wire::FrameType::kAppend: {
      auto request = wire::DecodeAppendRequest(item.payload);
      if (!request.ok()) return error_reply(request.status());
      session->CountRequest();
      wire::AppendRequest req = request.TakeValue();
      auto ack = mutable_db_->Append(req.bat_name, std::move(req.values));
      if (!ack.ok()) {
        session->CountError();
        return error_reply(ack.status());
      }
      wire::AppendReply reply;
      reply.lsn = ack.value().lsn;
      reply.visible_rows = ack.value().visible_rows;
      Reply r;
      r.type = wire::FrameType::kAppendOk;
      r.payload = std::make_shared<const std::vector<uint8_t>>(
          wire::EncodeAppendReply(reply));
      return r;
    }
    case wire::FrameType::kDelete: {
      auto request = wire::DecodeDeleteRequest(item.payload);
      if (!request.ok()) return error_reply(request.status());
      session->CountRequest();
      wire::DeleteRequest req = request.TakeValue();
      auto ack = mutable_db_->DeleteRows(req.bat_name, std::move(req.oids));
      if (!ack.ok()) {
        session->CountError();
        return error_reply(ack.status());
      }
      wire::DeleteReply reply;
      reply.lsn = ack.value().lsn;
      reply.visible_rows = ack.value().visible_rows;
      reply.deleted = ack.value().deleted;
      Reply r;
      r.type = wire::FrameType::kDeleteOk;
      r.payload = std::make_shared<const std::vector<uint8_t>>(
          wire::EncodeDeleteReply(reply));
      return r;
    }
    default:
      return error_reply(base::Status::Internal("unqueueable frame type"));
  }
}

QueryServer::Reply QueryServer::ExecuteQuery(
    ServerSession* session, const wire::QueryRequest& request,
    const std::string& cache_key,
    std::chrono::steady_clock::time_point admit) {
  db::QueryOptions opts = session->options();
  // Arm the per-session trace sink on the worker's local options copy:
  // the knob and the sink pointer ride ExecOptions untouched through
  // MirrorDb into the engine, which Clear()s the sink at Run() entry.
  if (opts.exec.trace) opts.exec.trace_sink = session->trace_sink();
  monet::Recycler* recycler = db_->recycler();
  // Captured BEFORE execution: a mutation racing this query advances
  // the generation (twice, around its apply window), so the insert
  // below is refused and no stale bytes are ever published.
  const uint64_t generation = recycler->generation();
  const monet::TraceCounterSnapshot kernels_before =
      options_.slow_query_ms > 0 ? monet::SnapshotTraceCounters()
                                 : monet::TraceCounterSnapshot{};
  const auto exec_start = std::chrono::steady_clock::now();
  auto result = db_->Query(request.text, request.bindings, opts,
                           session->exec_context());
  const auto exec_end = std::chrono::steady_clock::now();
  if (opts.exec.trace && opts.exec.trace_sink != nullptr) {
    // Publish the merged span table as this session's TRACE reply. The
    // request ordinal doubles as the trace's sequence number, so a
    // client can tell a fresh trace from a re-fetch.
    monet::TraceTable table =
        monet::TraceToBats(opts.exec.trace_sink->Merge());
    auto reply = std::make_shared<wire::TraceReply>();
    reply->query_seq = session->StatsEntry().requests;
    reply->rows = table.rows;
    reply->names = std::move(table.names);
    reply->cols = std::move(table.cols);
    session->StoreTrace(std::move(reply));
  }
  if (options_.slow_query_ms > 0) {
    const uint64_t total_micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(exec_end -
                                                              admit)
            .count());
    if (total_micros >= options_.slow_query_ms * 1000) {
      const monet::TraceCounterSnapshot after =
          monet::SnapshotTraceCounters();
      wire::SlowQueryEntry entry;
      entry.session_id = session->id();
      entry.total_micros = total_micros;
      entry.exec_micros = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(exec_end -
                                                                exec_start)
              .count());
      entry.query = mil::ExecutionContext::NormalizeText(request.text);
      entry.bindings_key = request.bindings.CacheKey();
      // Process-wide counter deltas over the execution window: exact
      // when the query ran alone, an attribution hint under concurrency.
      entry.counters = base::StrFormat(
          "tuples_in=%llu tuples_out=%llu morsels=%llu zone_skips=%llu "
          "topk_prunes=%llu bloom_hits=%llu",
          static_cast<unsigned long long>(after.tuples_in -
                                          kernels_before.tuples_in),
          static_cast<unsigned long long>(after.tuples_out -
                                          kernels_before.tuples_out),
          static_cast<unsigned long long>(after.morsel_tasks -
                                          kernels_before.morsel_tasks),
          static_cast<unsigned long long>(after.zone_blocks_skipped -
                                          kernels_before.zone_blocks_skipped),
          static_cast<unsigned long long>(after.topk_pruned -
                                          kernels_before.topk_pruned),
          static_cast<unsigned long long>(after.bloom_hits -
                                          kernels_before.bloom_hits));
      RecordSlowQuery(std::move(entry));
    }
  }
  if (!result.ok()) {
    session->CountError();
    Reply r;
    r.type = wire::FrameType::kError;
    r.payload = std::make_shared<const std::vector<uint8_t>>(
        wire::EncodeError(result.status()));
    return r;
  }
  auto payload = std::make_shared<const std::vector<uint8_t>>(
      wire::EncodeResultReply(result.value()));
  if (payload->size() > options_.max_result_bytes) {
    // Result-size cap: a typed, retryable-by-narrowing failure instead
    // of an unbounded stream.
    session->CountError();
    Reply r;
    r.type = wire::FrameType::kError;
    r.payload = std::make_shared<const std::vector<uint8_t>>(
        wire::EncodeError(base::Status::ResourceExhausted(base::StrFormat(
            "result of %zu bytes exceeds the %llu-byte result cap; "
            "narrow the query",
            payload->size(),
            static_cast<unsigned long long>(options_.max_result_bytes)))));
    return r;
  }
  if (!cache_key.empty() && SessionUsesRecycler(opts)) {
    const uint64_t micros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - exec_start)
            .count());
    recycler->InsertResult(generation, cache_key, payload, micros);
  }
  Reply r;
  r.type = wire::FrameType::kResult;
  r.payload = std::move(payload);
  return r;
}

QueryServer::Reply QueryServer::ServeQuery(
    ServerSession* session, const std::vector<uint8_t>& payload,
    std::chrono::steady_clock::time_point admit) {
  auto request = wire::DecodeQueryRequest(payload);
  if (!request.ok()) {
    session->CountError();
    Reply r;
    r.type = wire::FrameType::kError;
    r.payload = std::make_shared<const std::vector<uint8_t>>(
        wire::EncodeError(request.status()));
    return r;
  }
  session->CountRequest();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests;
  }
  const std::string key = QueryCacheKey(request.value());
  // Worker-side recycler lookup: catches results that landed while
  // this item waited in the queue (the poll loop already answered
  // anything that was cached at dispatch time).
  if (SessionUsesRecycler(session->options())) {
    monet::Recycler* recycler = db_->recycler();
    if (auto hit = recycler->LookupResult(recycler->generation(), key)) {
      Reply r;
      r.type = wire::FrameType::kResult;
      r.payload = std::move(hit);
      return r;
    }
  }
  if (!options_.coalesce_queries) {
    return ExecuteQuery(session, request.value(), key, admit);
  }
  std::shared_ptr<InFlightQuery> entry;
  bool is_leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<InFlightQuery>();
      inflight_[key] = entry;
      is_leader = true;
    }
  }
  if (!is_leader) {
    // A follower's leader is, by construction, already executing on
    // another worker (leadership is taken at execution time), so this
    // wait always has a running thread to make progress — the fixed
    // pool cannot deadlock on itself.
    Reply shared;
    {
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] { return entry->done; });
      shared = entry->reply;
    }
    // Only successful results are shared: a leader's failure may be an
    // artifact of ITS session (a pathological SET, an allocation
    // failure under its config), so a follower re-executes under its
    // own options rather than inheriting another tenant's error.
    if (shared.type != wire::FrameType::kResult) {
      return ExecuteQuery(session, request.value(), key, admit);
    }
    {
      std::lock_guard<std::mutex> slock(mu_);
      ++stats_.coalesced_requests;
    }
    return shared;
  }
  // The leader MUST complete the entry and retire the key on every exit
  // path — an exception escaping execution or marshalling (e.g.
  // bad_alloc on a huge result) would otherwise leave followers (and
  // all future identical queries) waiting on it forever.
  struct Completer {
    QueryServer* server;
    const std::string& key;
    const std::shared_ptr<InFlightQuery>& entry;
    Reply reply = {wire::FrameType::kError,
                   std::make_shared<const std::vector<uint8_t>>(
                       wire::EncodeError(base::Status::Internal(
                           "query leader aborted before completing")))};

    ~Completer() {
      {
        std::lock_guard<std::mutex> lock(entry->mu);
        entry->reply = reply;
        entry->done = true;
        entry->cv.notify_all();
      }
      std::lock_guard<std::mutex> lock(server->inflight_mu_);
      server->inflight_.erase(key);
    }
  } completer{this, key, entry};
  completer.reply = ExecuteQuery(session, request.value(), key, admit);
  return completer.reply;
}

}  // namespace mirror::daemon
