#include "monet/zone_map.h"

#include <algorithm>
#include <cmath>

namespace mirror::monet {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Whether an int64 converts to double without rounding.
bool ExactAsDouble(int64_t v) {
  constexpr int64_t kLimit = int64_t(1) << 53;
  return v > -kLimit && v < kLimit;
}

}  // namespace

double DoubleLowerBound(int64_t v) {
  double d = static_cast<double>(v);
  return ExactAsDouble(v) ? d : std::nextafter(d, -kInf);
}

double DoubleUpperBound(int64_t v) {
  double d = static_cast<double>(v);
  return ExactAsDouble(v) ? d : std::nextafter(d, kInf);
}

double ZoneMap::RangeMax(size_t lo, size_t hi) const {
  if (lo >= hi || block_max.empty()) return -kInf;
  size_t first = lo / block_rows;
  size_t last = std::min((hi - 1) / block_rows, block_max.size() - 1);
  double m = -kInf;
  for (size_t b = first; b <= last; ++b) m = std::max(m, block_max[b]);
  return m;
}

size_t ZoneMap::BlocksIn(size_t lo, size_t hi) const {
  if (lo >= hi) return 0;
  return (hi - 1) / block_rows - lo / block_rows + 1;
}

ZoneMap BuildZoneMap(const Column& c, size_t block_rows) {
  ZoneMap z;
  z.block_rows = block_rows == 0 ? kZoneBlockRows : block_rows;
  size_t n = c.size();
  if (n == 0) return z;
  size_t blocks = (n + z.block_rows - 1) / z.block_rows;
  z.block_min.assign(blocks, kInf);
  z.block_max.assign(blocks, -kInf);
  switch (c.type()) {
    case ValueType::kVoid: {
      // Dense oid sequence: bounds are arithmetic, no scan needed.
      Oid base = c.void_base();
      for (size_t b = 0; b < blocks; ++b) {
        size_t lo = b * z.block_rows;
        size_t hi = std::min(n, lo + z.block_rows);
        z.block_min[b] = static_cast<double>(base + lo);
        z.block_max[b] = static_cast<double>(base + hi - 1);
      }
      break;
    }
    case ValueType::kOid:
    case ValueType::kInt: {
      for (size_t i = 0; i < n; ++i) {
        int64_t v = c.type() == ValueType::kOid
                        ? static_cast<int64_t>(c.OidAt(i))
                        : c.IntAt(i);
        size_t b = i / z.block_rows;
        z.block_min[b] = std::min(z.block_min[b], DoubleLowerBound(v));
        z.block_max[b] = std::max(z.block_max[b], DoubleUpperBound(v));
      }
      break;
    }
    case ValueType::kDbl: {
      for (size_t i = 0; i < n; ++i) {
        double v = c.DblAt(i);
        if (std::isnan(v)) return ZoneMap{};  // NaN defeats interval logic
        size_t b = i / z.block_rows;
        z.block_min[b] = std::min(z.block_min[b], v);
        z.block_max[b] = std::max(z.block_max[b], v);
      }
      break;
    }
    case ValueType::kStr:
      return z;  // strings carry no numeric bounds
  }
  z.min = kInf;
  z.max = -kInf;
  for (size_t b = 0; b < blocks; ++b) {
    z.min = std::min(z.min, z.block_min[b]);
    z.max = std::max(z.max, z.block_max[b]);
  }
  z.valid = true;
  return z;
}

BatZones BuildBatZones(const Bat& b, size_t block_rows) {
  BatZones zones;
  zones.head = BuildZoneMap(b.head(), block_rows);
  zones.tail = BuildZoneMap(b.tail(), block_rows);
  return zones;
}

ZoneMatch ClassifyZone(double bmin, double bmax, double lo, bool lo_inc,
                       double hi, bool hi_inc) {
  if (bmax < lo || (bmax == lo && !lo_inc) || bmin > hi ||
      (bmin == hi && !hi_inc)) {
    return ZoneMatch::kNone;
  }
  bool above_lo = lo_inc ? bmin >= lo : bmin > lo;
  bool below_hi = hi_inc ? bmax <= hi : bmax < hi;
  return (above_lo && below_hi) ? ZoneMatch::kAll : ZoneMatch::kSome;
}

void TopKThreshold::Offer(const std::vector<double>& scores) {
  if (k_ == 0 || scores.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (double s : scores) {
    if (std::isnan(s)) continue;
    if (heap_.size() < k_) {
      heap_.push(s);
    } else if (s > heap_.top()) {
      heap_.pop();
      heap_.push(s);
    }
  }
  if (heap_.size() == k_) {
    // heap_.top() only ever rises (pops happen only for a larger push),
    // so the published bound is monotone.
    bound_.store(heap_.top(), std::memory_order_relaxed);
  }
}

}  // namespace mirror::monet
