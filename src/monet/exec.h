#ifndef MIRROR_MONET_EXEC_H_
#define MIRROR_MONET_EXEC_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "monet/cache_info.h"
#include "monet/candidate.h"
#include "monet/mil.h"
#include "monet/worker_pool.h"

namespace mirror::monet {
class Recycler;    // monet/recycler.h
class QueryTrace;  // monet/trace.h
}  // namespace mirror::monet

namespace mirror::monet::mil {

/// Tuning knobs of the vectorized execution engine. Defaults adapt to
/// the host (see num_threads) with candidate pipelines, morsel splitting
/// and fused aggregation enabled.
struct ExecOptions {
  /// Worker threads scheduling MIL instructions AND morsels within one
  /// instruction. 0 means "auto": std::thread::hardware_concurrency(),
  /// clamped back to 1 when the plan offers no parallelism to exploit
  /// (DAG width < 2 and no morsel-eligible operator), so short serial
  /// plans on small hosts skip the scheduling overhead entirely.
  /// 1 executes in program order on the calling thread (no pool).
  int num_threads = 0;
  /// When true, the selection/semijoin/slice family runs over candidate
  /// lists and tuples are copied only at pipeline breakers. When false,
  /// every operator materializes its result — the classic `Executor`
  /// behavior, kept as the experiment baseline.
  bool use_candidates = true;
  /// Morsel granularity for intra-operator parallelism: a hot kernel
  /// (select family, semijoin probes, join clustering and probes,
  /// materializing gathers, candidate-aware aggregates) whose input
  /// domain exceeds this many tuples is split into ceil(n / morsel_size)
  /// morsels dispatched on the session worker pool. The default derives
  /// from the detected L2 size (cache_info.h) so one morsel's working
  /// set stays cache-resident. 0 disables morsel splitting. Only
  /// effective when more than one worker thread is in play.
  size_t morsel_size = DefaultMorselSize();
  /// When true, aggregates over a candidate view (group-by, prob
  /// combinators, topN, scalar sum/count) read the base BAT at the
  /// candidate positions directly instead of Materialize()-ing first:
  /// the last pipeline breaker of select→aggregate plans disappears.
  /// When false, aggregates materialize their input — the pre-fusion
  /// engine, kept as the benchmark baseline.
  bool fuse_aggregates = true;
  /// When true, the general hash Join runs as the radix-partitioned,
  /// morsel-parallel pipeline and consumes candidate views directly
  /// (JoinCand — select→join plans keep zero Materialize() calls). When
  /// false, joins materialize both inputs and run the pre-radix
  /// single-threaded JoinLegacy — the benchmark baseline.
  bool morsel_joins = true;
  /// Radix partition count for join build sides: 0 derives it from the
  /// estimated L2 budget; an explicit power of two forces it (tests use
  /// this to exercise multi-partition clustering on small inputs).
  size_t radix_partitions = 0;
  /// Shard-parallel execution: when > 1 (and the catalog is non-null),
  /// the engine runs the program over the catalog's N-way oid-range
  /// sharding (`Catalog::Shards`, built lazily on first use). Shard-local
  /// instructions — the select family, semijoins against co-sharded or
  /// replicated sides, joins probing a shared build table, per-head
  /// aggregates, row-aligned maps — fan out one task per shard over the
  /// session pool and leave per-shard fragments in place; fan-in
  /// instructions (scalar folds, TopN, sorts, multiplex maps over
  /// independently derived sides, cross-shard join build sides) gather
  /// fragments order-preservingly first. Results are identical to the
  /// unsharded engine (fragment heads live in disjoint ascending oid
  /// ranges, so concatenation in shard order IS the global value). 0 and
  /// 1 run unsharded; MirrorDb fills in its default shard count for 0
  /// when the database was opened with LoadSharded.
  size_t num_shards = 0;
  /// When true, selective radix membership probes put a per-partition
  /// Bloom filter in front of the bucket chains (see
  /// MorselExec.bloom_probes; profiler counters bloom_builds/bloom_hits).
  bool bloom_probes = true;
  /// When true, catalog zone maps (per-block min/max, built at load time)
  /// prune selections block-wise and bound dense per-head aggregation
  /// ranges; results are identical (pruned blocks provably contain no
  /// qualifying row). When false, every block is scanned — the baseline
  /// for the pruning benchmarks.
  bool zone_maps = true;
  /// When true, ranking plans (prob-aggregate feeding a sole-consumer
  /// descending topN) share a WAND-style rising top-k threshold: the
  /// aggregate drops rows — and with zone maps, skips blocks, morsels and
  /// whole shards — that provably cannot enter the final top k. The
  /// ranked result stays bit-identical, including stable tie order. When
  /// false, ranking plans run unpruned.
  bool topk_prune = true;
  /// Cooperative per-query deadline in milliseconds; 0 disables. The
  /// engine stamps steady_clock::now() + deadline at Run() entry and
  /// checks it at every instruction boundary (sequential, DAG and shard
  /// schedulers) and inside the morsel drivers; an expired query returns
  /// StatusCode::kDeadlineExceeded instead of a result. The daemon
  /// exposes it as the per-session `SET exec.query_deadline_ms` knob.
  uint64_t query_deadline_ms = 0;
  /// Per-query memory budget in bytes; 0 disables enforcement. The engine
  /// threads an atomic byte counter through MorselExec: materializing
  /// gathers, join build arrays and register stores charge approximate
  /// output bytes, morsel drivers stop once the total passes the budget,
  /// and the query returns StatusCode::kResourceExhausted at the next
  /// instruction boundary (the session survives, like a deadline). The
  /// daemon exposes it as `SET exec.memory_budget_bytes`. Peak usage per
  /// query is tracked in KernelStats.peak_query_bytes either way.
  uint64_t memory_budget_bytes = 0;
  /// When true AND `recycler` is set, base-BAT selects with normalizable
  /// interval predicates consult the server-wide recycler: an exact match
  /// replays the cached candidate list, a subsuming cached predicate seeds
  /// the select as a pre-filter domain, and misses publish their list for
  /// future queries. The daemon exposes it as `SET exec.recycle`; results
  /// stay bit-identical either way.
  bool recycle = true;
  /// The server-wide recycler, owned by MirrorDb; null runs without one
  /// (direct engine users, the sharded path — shard-local candidate
  /// positions don't compose across layouts).
  Recycler* recycler = nullptr;
  /// Recycler generation captured at query start (before any catalog
  /// reads); lookups and inserts carrying a stale generation are refused.
  uint64_t recycler_generation = 0;
  /// When true AND `trace_sink` is set, the engine Clear()s the sink at
  /// Run() entry and records one span per executed MIL instruction (per
  /// shard when sharded) plus per-morsel spans from the parallel kernel
  /// drivers; the caller merges the sink after Run() returns (see
  /// monet/trace.h). The daemon exposes it as `SET exec.trace`. With the
  /// knob off, execution pays one null-pointer branch per instruction.
  bool trace = false;
  /// The per-query span sink, owned by the caller (the daemon keeps one
  /// per session); null disables tracing regardless of `trace`.
  QueryTrace* trace_sink = nullptr;
};

/// One register during execution: a materialized BAT, an unmaterialized
/// candidate view over a base BAT (`bat` + `cands`), or a scalar.
struct RegValue {
  BatPtr bat;
  std::shared_ptr<const CandidateList> cands;  // set iff candidate view
  double scalar = 0;
  bool is_scalar = false;
  bool written = false;

  bool is_candidate() const { return cands != nullptr; }
  void Clear() { *this = RegValue(); }
};

/// Session-scoped execution state: the per-query register file (reused
/// across runs to avoid reallocation) and a plan cache keyed by normalized
/// program text, so repeated Moa queries skip re-flattening entirely.
///
/// One context serves one session: a single query runs on it at a time
/// (the engine's worker pool parallelizes WITHIN that query). The plan
/// cache itself is thread-safe. Cached plans are valid for the lifetime of
/// the loaded database; re-loading a set must invalidate them —
/// automatic for sessions registered via MirrorDb::RegisterSession,
/// manual (InvalidatePlans()) otherwise.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Collapses whitespace runs so formatting differences don't defeat the
  /// cache: the canonical cache-key form of a query or program text.
  static std::string NormalizeText(std::string_view text);

  /// Looks up a cached plan; null on miss. Counts toward hit statistics.
  std::shared_ptr<const Program> CachedPlan(const std::string& key) const;

  /// Stores a compiled plan under `key` (replacing any previous entry).
  void CachePlan(const std::string& key, Program program);

  /// Drops every cached plan (call after schema or data reloads).
  void InvalidatePlans();

  size_t plan_cache_size() const;
  uint64_t plan_cache_hits() const { return hits_; }
  uint64_t plan_cache_lookups() const { return lookups_; }

  /// Plan-cache capacity; oldest-by-bucket entries are evicted beyond it.
  static constexpr size_t kMaxPlans = 256;

 private:
  friend class ExecutionEngine;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Program>> plans_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t lookups_ = 0;

  /// Scratch register file borrowed by ExecutionEngine::Run.
  std::vector<RegValue> regs_;

  /// Session worker pool: grows to the largest thread count any engine
  /// requests on this context.
  WorkerPool pool_;
};

/// True for the opcodes the engine can run over candidate vectors (the
/// select/semijoin/slice family). Single source of truth shared with the
/// optimizer's candidate-chain diagnostics.
bool IsCandidatePipelineOp(OpCode op);

/// True for the unary opcodes whose output provably stays inside the
/// input's shard fragment (rows subset or map 1:1, head oids preserved),
/// so the shard engine runs them shard-locally without a gather. Shared
/// with the optimizer's shard-fanout diagnostic; semijoins, joins, topN
/// and scalar folds fan out too but under side conditions the engine
/// checks at run time.
bool IsShardLocalUnaryOp(OpCode op);

/// Data-flow MIL executor: builds the SSA register dependency DAG of a
/// Program and schedules independent instructions across a worker pool;
/// within an instruction, hot kernels split large inputs into morsels on
/// the same pool. The selection family runs over candidate vectors, and
/// aggregates fuse onto candidate views, leaving explicit
/// materialization only at the true pipeline breakers (sort, join
/// sides, map arithmetic, result delivery).
///
/// Replaces the stateless sequential `Executor` as the production path;
/// the old interpreter remains as the E-series baseline and the fuzz
/// suite's second oracle.
class ExecutionEngine {
 public:
  /// The catalog must outlive the engine. May be null if programs use no
  /// kLoadNamed.
  explicit ExecutionEngine(const Catalog* catalog,
                           ExecOptions options = ExecOptions())
      : catalog_(catalog), options_(options) {}

  /// Runs `program`, borrowing `ctx`'s register file (a local scratch
  /// context is used when null). Returns the result register's value,
  /// materialized.
  base::Result<RunResult> Run(const Program& program,
                              ExecutionContext* ctx = nullptr) const;

  const ExecOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  ExecOptions options_;
};

}  // namespace mirror::monet::mil

#endif  // MIRROR_MONET_EXEC_H_
