#ifndef MIRROR_MONET_EXEC_H_
#define MIRROR_MONET_EXEC_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "monet/candidate.h"
#include "monet/mil.h"

namespace mirror::monet::mil {

/// A persistent pool of worker threads draining a task queue. Owned by
/// the session's ExecutionContext so the threads survive across queries:
/// spawning threads per query would dominate short plans.
class WorkerPool {
 public:
  WorkerPool() = default;
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Grows the pool to at least `n` threads (never shrinks).
  void EnsureWorkers(int n);

  /// Enqueues a task; some worker runs it eventually.
  void Submit(std::function<void()> task);

  int size() const;

 private:
  void Loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

/// Tuning knobs of the vectorized execution engine. Defaults reproduce a
/// single-threaded run with candidate pipelines enabled.
struct ExecOptions {
  /// Worker threads scheduling independent MIL instructions. 1 executes
  /// in program order on the calling thread (no pool is spun up).
  int num_threads = 1;
  /// When true, the selection/semijoin/slice family runs over candidate
  /// lists and tuples are copied only at pipeline breakers. When false,
  /// every operator materializes its result — the classic `Executor`
  /// behavior, kept as the experiment baseline.
  bool use_candidates = true;
};

/// One register during execution: a materialized BAT, an unmaterialized
/// candidate view over a base BAT (`bat` + `cands`), or a scalar.
struct RegValue {
  BatPtr bat;
  std::shared_ptr<const CandidateList> cands;  // set iff candidate view
  double scalar = 0;
  bool is_scalar = false;
  bool written = false;

  bool is_candidate() const { return cands != nullptr; }
  void Clear() { *this = RegValue(); }
};

/// Session-scoped execution state: the per-query register file (reused
/// across runs to avoid reallocation) and a plan cache keyed by normalized
/// program text, so repeated Moa queries skip re-flattening entirely.
///
/// One context serves one session: a single query runs on it at a time
/// (the engine's worker pool parallelizes WITHIN that query). The plan
/// cache itself is thread-safe. Cached plans are valid for the lifetime of
/// the loaded database; re-loading a set must be followed by
/// InvalidatePlans().
class ExecutionContext {
 public:
  ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Collapses whitespace runs so formatting differences don't defeat the
  /// cache: the canonical cache-key form of a query or program text.
  static std::string NormalizeText(std::string_view text);

  /// Looks up a cached plan; null on miss. Counts toward hit statistics.
  std::shared_ptr<const Program> CachedPlan(const std::string& key) const;

  /// Stores a compiled plan under `key` (replacing any previous entry).
  void CachePlan(const std::string& key, Program program);

  /// Drops every cached plan (call after schema or data reloads).
  void InvalidatePlans();

  size_t plan_cache_size() const;
  uint64_t plan_cache_hits() const { return hits_; }
  uint64_t plan_cache_lookups() const { return lookups_; }

  /// Plan-cache capacity; oldest-by-bucket entries are evicted beyond it.
  static constexpr size_t kMaxPlans = 256;

 private:
  friend class ExecutionEngine;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Program>> plans_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t lookups_ = 0;

  /// Scratch register file borrowed by ExecutionEngine::Run.
  std::vector<RegValue> regs_;

  /// Session worker pool: grows to the largest thread count any engine
  /// requests on this context.
  WorkerPool pool_;
};

/// True for the opcodes the engine can run over candidate vectors (the
/// select/semijoin/slice family). Single source of truth shared with the
/// optimizer's candidate-chain diagnostics.
bool IsCandidatePipelineOp(OpCode op);

/// Data-flow MIL executor: builds the SSA register dependency DAG of a
/// Program and schedules independent instructions across a worker pool,
/// running the selection family over candidate vectors with explicit
/// materialization only at pipeline breakers (sort, group-agg, join
/// sides, map arithmetic, result delivery).
///
/// Replaces the stateless sequential `Executor` as the production path;
/// the old interpreter remains as the E-series baseline and the fuzz
/// suite's second oracle.
class ExecutionEngine {
 public:
  /// The catalog must outlive the engine. May be null if programs use no
  /// kLoadNamed.
  explicit ExecutionEngine(const Catalog* catalog,
                           ExecOptions options = ExecOptions())
      : catalog_(catalog), options_(options) {}

  /// Runs `program`, borrowing `ctx`'s register file (a local scratch
  /// context is used when null). Returns the result register's value,
  /// materialized.
  base::Result<RunResult> Run(const Program& program,
                              ExecutionContext* ctx = nullptr) const;

  const ExecOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  ExecOptions options_;
};

}  // namespace mirror::monet::mil

#endif  // MIRROR_MONET_EXEC_H_
