#ifndef MIRROR_MONET_RECYCLER_H_
#define MIRROR_MONET_RECYCLER_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "monet/candidate.h"
#include "monet/mil.h"

namespace mirror::monet {

/// Counters of one Recycler, snapshotted under its mutex.
struct RecyclerStats {
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t candidate_hits = 0;             // exact predicate matches
  uint64_t candidate_subsumption_hits = 0; // served as a pre-filter seed
  uint64_t candidate_misses = 0;
  uint64_t admissions_rejected = 0;  // inserts refused by the admission policy
  uint64_t evictions = 0;            // entries displaced to make room
  uint64_t invalidations = 0;        // generation fences taken
  uint64_t bytes_held = 0;           // total bytes of all live entries
  uint64_t result_entries = 0;
  uint64_t candidate_entries = 0;
};

/// A single-column selection normalized to a keep-interval in double
/// space: the canonical form the recycler matches predicates in. Only
/// finite numeric bounds that round-trip exactly through double are
/// representable — the select kernels order int/dbl columns in double
/// space, so interval containment in that space is sound iff no two
/// distinct literals can collapse onto one double (see FromInstr).
struct SelectPredicate {
  std::string bat;  // the base BAT the selection scans (kLoadNamed name)
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_incl = true;
  bool hi_incl = true;

  /// Normalizes a select instruction over the named base BAT. False when
  /// the instruction is not an interval selection (kSelectNeq, string or
  /// non-round-tripping bounds) — such selects bypass the recycler.
  static bool FromInstr(const mil::Instr& instr, std::string load_name,
                        SelectPredicate* out);

  /// True when every value satisfying this predicate also satisfies
  /// `wider` (same BAT): this interval is contained in the wider one, so
  /// the wider predicate's cached candidates are a sound pre-filter.
  bool SubsumedBy(const SelectPredicate& wider) const;

  /// Exact-match key of the interval (bat name excluded — entries are
  /// bucketed per BAT).
  std::string IntervalKey() const;
};

/// The recycler: a server-wide, generation-fenced cache of finished work,
/// shared by every session executing against one MirrorDb (the MonetDB
/// "recycling" direction). Two sections under one memory budget:
///
///  - results: already-encoded RESULT reply bytes keyed by the daemon's
///    coalescing key (normalized query text + bindings), so a hot query
///    executes once per data version and later arrivals are answered
///    straight from the poll loop;
///  - candidates: CandidateLists keyed by normalized single-column select
///    predicates over base BATs. An exact match replays the list; a
///    *subsuming* cached predicate (its interval contains the query's)
///    seeds the narrower select as a pre-filter domain for the existing
///    candidate-aware kernels.
///
/// Generation fencing: every entry belongs to the generation it was
/// computed in. A catalog mutation calls Fence() BEFORE applying (drops
/// every entry computed against the old contents and advances the
/// generation, so in-flight executions that started earlier can no
/// longer insert) and again AFTER applying (executions that straddled
/// the apply window — and may have read half-old, half-new data — are
/// fenced out too). Lookups and inserts carry the generation their
/// execution captured at query start and miss / are refused on mismatch,
/// so no interleaving of concurrent queries and writers can publish or
/// serve a stale entry.
///
/// Admission is cost x frequency under the byte budget: an insert whose
/// popularity-weighted cost cannot displace enough colder entries (LRU
/// order among entries with lower scores) is rejected rather than
/// thrashing the cache. Frequencies survive fences — a hot query is
/// still hot in the next data version.
///
/// All methods are thread-safe.
class Recycler {
 public:
  static constexpr uint64_t kDefaultBudgetBytes = 64ull << 20;

  explicit Recycler(uint64_t budget_bytes = kDefaultBudgetBytes)
      : budget_bytes_(budget_bytes) {}
  Recycler(const Recycler&) = delete;
  Recycler& operator=(const Recycler&) = delete;

  /// Generation current entries are valid for. Capture once at query
  /// start, pass to every Lookup/Insert of that execution.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Drops every entry and advances the generation (see class comment:
  /// call once before and once after applying a catalog mutation).
  /// Returns the new generation.
  uint64_t Fence();

  // -- Result section. ----------------------------------------------------

  /// The cached encoded reply for `key`, or null. Misses when `gen` is
  /// not the current generation (the caller's execution context is
  /// stale).
  std::shared_ptr<const std::vector<uint8_t>> LookupResult(
      uint64_t gen, const std::string& key);

  /// Offers a computed reply for admission. `cost_micros` is the
  /// execution time the cache saves per future hit. Refused (silently,
  /// counted) when `gen` is stale or admission fails.
  void InsertResult(uint64_t gen, const std::string& key,
                    std::shared_ptr<const std::vector<uint8_t>> payload,
                    uint64_t cost_micros);

  // -- Candidate section. -------------------------------------------------

  /// The cached candidate list for `pred`: an exact interval match
  /// (*subsumed = false), else the smallest cached interval containing
  /// it (*subsumed = true — use as a pre-filter domain, not the answer),
  /// else null.
  std::shared_ptr<const CandidateList> LookupCandidates(
      uint64_t gen, const SelectPredicate& pred, bool* subsumed);

  /// Offers a computed candidate list for admission under `pred`.
  void InsertCandidates(uint64_t gen, const SelectPredicate& pred,
                        std::shared_ptr<const CandidateList> list,
                        uint64_t cost_micros);

  void set_budget_bytes(uint64_t budget);
  uint64_t budget_bytes() const;

  RecyclerStats stats() const;

 private:
  struct Entry {
    // Exactly one of `payload` / `list` is set.
    std::shared_ptr<const std::vector<uint8_t>> payload;
    std::shared_ptr<const CandidateList> list;
    SelectPredicate pred;  // candidate entries only
    uint64_t bytes = 0;
    uint64_t cost_micros = 0;
    uint64_t freq = 1;
    uint64_t last_used = 0;

    uint64_t score() const { return (cost_micros + 1) * freq; }
  };

  /// Bumps and returns the frequency count of `key` (kept across fences;
  /// reset wholesale when the table outgrows its cap).
  uint64_t TouchFreq(const std::string& key);

  /// Evicts lower-score entries (coldest first) until `need` bytes fit in
  /// the budget; false (nothing changed beyond evictions) when entries
  /// with score >= `incoming_score` would have to go.
  bool MakeRoom(uint64_t need, uint64_t incoming_score);

  void EraseResult(const std::string& key);
  void EraseCandidate(const std::string& bat, const std::string& ikey);

  /// Publishes the bytes-held gauge to the process-wide profiler.
  void PublishBytesHeld();

  mutable std::mutex mu_;
  std::atomic<uint64_t> generation_{0};
  uint64_t budget_bytes_;
  uint64_t clock_ = 0;  // LRU stamp source
  uint64_t bytes_held_ = 0;
  std::unordered_map<std::string, Entry> results_;
  /// bat name -> interval key -> entry. The per-BAT bucket is scanned for
  /// subsumption (buckets stay small: one per distinct predicate shape).
  std::unordered_map<std::string, std::unordered_map<std::string, Entry>>
      cands_;
  std::unordered_map<std::string, uint64_t> freq_;
  RecyclerStats stats_;
};

}  // namespace mirror::monet

#endif  // MIRROR_MONET_RECYCLER_H_
