#ifndef MIRROR_MONET_TRACE_H_
#define MIRROR_MONET_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "monet/bat.h"

namespace mirror::monet {

/// Per-query execution tracing, in the MonetDB TRACE tradition: profiling
/// data is relational. A traced run records one span per executed MIL
/// instruction (plus finer-grained morsel spans for the parallel kernels)
/// into per-thread buffers; the merged spans convert to a set of
/// void-headed BATs (TraceToBats) that travel over the daemon's TRACE
/// frame and can be stored and queried with the same algebra the engine
/// runs. Tracing is armed per query by ExecOptions.trace — when off, the
/// hot path pays exactly one null-pointer branch per instruction.

/// What a span measures.
enum class TraceSpanKind : uint8_t {
  kInstr = 0,   // one MIL instruction execution (per shard when sharded)
  kMorsel = 1,  // one morsel task a kernel dispatched on the pool
};

/// Sentinel instruction index for spans not tied to a program position
/// (morsel spans: the kernel below the engine does not know its
/// instruction).
constexpr uint32_t kTraceNoInstr = 0xffffffffu;

/// One recorded span. Times are steady-clock nanoseconds relative to the
/// owning QueryTrace's epoch (query start), so spans from every thread
/// share one timeline. The tuple/prune fields are deltas of the global
/// kernel counters across the span: exact when the span ran alone,
/// best-effort attribution when concurrent spans overlap (concurrent
/// kernels bleed into each other's deltas — the totals stay exact).
struct TraceSpan {
  uint32_t instr = kTraceNoInstr;  // MIL instruction index
  TraceSpanKind kind = TraceSpanKind::kInstr;
  int32_t shard = -1;   // shard the work ran against; -1 = global
  uint32_t thread = 0;  // dense per-trace recording-thread id
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  uint64_t morsels = 0;      // morsel tasks the span dispatched
  uint64_t zone_skips = 0;   // zone-map blocks pruned inside the span
  uint64_t topk_prunes = 0;  // top-k morsel + shard prunes inside the span
  uint64_t bloom_hits = 0;   // Bloom-filter probe rejects inside the span
  const char* opcode = "";   // static-storage opcode / kernel label
};

/// Process-wide count of spans ever recorded (relaxed). The knob-off
/// tests check this stays flat: an untraced query must not touch a
/// buffer, let alone allocate one.
uint64_t TraceSpansRecorded();

/// The per-query span sink. One QueryTrace serves one traced execution at
/// a time: the engine Clear()s it at Run() entry, recording threads
/// acquire a private buffer on first touch (one mutex acquisition per
/// thread per query, then lock-free appends), and the owner merges after
/// the run returns. Clear() must not race recording — the engine owns the
/// sink for the duration of the run.
class QueryTrace {
 public:
  QueryTrace();
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Drops all buffers and restamps the epoch; ready for the next query.
  void Clear();

  /// All spans across all thread buffers, sorted by (start_ns, thread).
  std::vector<TraceSpan> Merge() const;

  /// Total spans currently buffered.
  size_t span_count() const;

  /// Steady-clock epoch the span times are relative to.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

  /// Nanoseconds from the epoch to now (what a recorder stamps).
  uint64_t NowNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// The calling thread's buffer for this trace generation, created (and
  /// assigned the next dense thread id) on first touch. The returned
  /// buffer is only ever appended to by the calling thread.
  struct Buffer {
    uint32_t thread_id = 0;
    std::vector<TraceSpan> spans;
  };
  Buffer* Local();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  uint32_t next_thread_ = 0;
  /// Globally unique generation of this (trace, Clear) pair — validates
  /// the thread-local buffer cache in Local() across reuse and across
  /// distinct traces that landed on the same address.
  std::atomic<uint64_t> generation_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span recorder. A null trace is inert (the knob-off path). kInstr
/// spans snapshot the global kernel counters at both ends and store the
/// deltas; kMorsel spans record timing and thread attribution only.
class TraceSpanRecorder {
 public:
  TraceSpanRecorder(QueryTrace* trace, uint32_t instr, const char* opcode,
                    int32_t shard,
                    TraceSpanKind kind = TraceSpanKind::kInstr);
  TraceSpanRecorder(const TraceSpanRecorder&) = delete;
  TraceSpanRecorder& operator=(const TraceSpanRecorder&) = delete;
  ~TraceSpanRecorder();

 private:
  QueryTrace* trace_;
  TraceSpan span_;
  uint64_t in0_ = 0, out0_ = 0, morsel0_ = 0;
  uint64_t zone0_ = 0, topk0_ = 0, bloom0_ = 0;
};

/// The merged trace as a relational table: parallel void-headed BATs, one
/// row per span, in span order. Columns (tail types in parentheses):
///   instr(int) opcode(str) kind(int) shard(int) thread(int)
///   start_ns(int) dur_ns(int) tuples_in(int) tuples_out(int)
///   morsels(int) zone_skips(int) topk_prunes(int) bloom_hits(int)
struct TraceTable {
  std::vector<std::string> names;
  std::vector<Bat> cols;
  size_t rows = 0;
};
TraceTable TraceToBats(const std::vector<TraceSpan>& spans);

}  // namespace mirror::monet

#endif  // MIRROR_MONET_TRACE_H_
